// Package embsan is the public API of the EMBSAN reproduction: an embedded
// operating-systems sanitizer that attaches KASAN- and KCSAN-equivalent
// runtimes to emulated firmware through dynamic instrumentation of the
// emulator's translation templates (EMBSAN-D) or through compile-time
// trapping instrumentation (EMBSAN-C), without porting a sanitizer to each
// kernel.
//
// The typical flow mirrors the paper's two phases:
//
//	img, _ := embsan.BuildFirmware("OpenWRT-x86_64") // or bring your own image
//	inst, _ := embsan.New(embsan.Config{
//		Image:      img.Image,
//		Sanitizers: []string{"kasan", "kcsan"},
//	})
//	_ = inst.Boot(0)     // pre-testing: distil, probe, compile initial state
//	inst.Snapshot()
//	res := inst.Exec(input, 0) // testing: run inputs, collect reports
//	for _, r := range res.Reports {
//		fmt.Print(r.Format(inst.Image()))
//	}
package embsan

import (
	"embsan/internal/core"
	"embsan/internal/distill"
	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/fuzz"
	"embsan/internal/guest/firmware"
	"embsan/internal/kasm"
	"embsan/internal/probe"
	"embsan/internal/san"
)

// Core orchestration types.
type (
	// Config configures one EMBSAN deployment (see core.Config).
	Config = core.Config
	// Instance is a prepared machine with the sanitizer runtime attached.
	Instance = core.Instance
	// ExecResult is the outcome of executing one input.
	ExecResult = core.ExecResult
)

// Sanitizer runtime types.
type (
	// Report is a sanitizer finding.
	Report = san.Report
	// BugType classifies a finding.
	BugType = san.BugType
	// KCSANConfig tunes the concurrency sanitizer.
	KCSANConfig = san.KCSANConfig
)

// Toolchain and emulator types.
type (
	// Image is a linked firmware image.
	Image = kasm.Image
	// Builder assembles firmware.
	Builder = kasm.Builder
	// Machine is the emulated system.
	Machine = emu.Machine
	// MachineConfig sizes a machine.
	MachineConfig = emu.Config
)

// Firmware registry types.
type (
	// Firmware is one Table 1 evaluation image with its seeded bugs.
	Firmware = firmware.Firmware
)

// Fuzzing types.
type (
	// FuzzConfig configures a campaign.
	FuzzConfig = fuzz.Config
	// FuzzResult is the campaign outcome.
	FuzzResult = fuzz.Result
	// Crash is one deduplicated finding.
	Crash = fuzz.Crash
)

// FirmwareNames lists the Table 1 evaluation firmware.
var FirmwareNames = firmware.Names

// New runs the pre-testing probing phase on cfg.Image and prepares the
// testing phase.
func New(cfg Config) (*Instance, error) { return core.New(cfg) }

// BuildFirmware builds one of the bundled Table 1 evaluation firmware.
func BuildFirmware(name string) (*Firmware, error) { return firmware.Build(name) }

// BuildAllFirmware builds every Table 1 firmware.
func BuildAllFirmware() ([]*Firmware, error) { return firmware.BuildAll() }

// Distill produces the merged DSL specification of the named reference
// sanitizers ("kasan", "kcsan"), applying the union merge rules.
func Distill(names ...string) (*dsl.Sanitizer, error) {
	return distill.DistillMerged(names...)
}

// Probe analyses a firmware image and returns its platform configuration
// and initial setup routine (as DSL-expressible artefacts).
func Probe(img *Image, opts probe.Options) (*probe.Result, error) {
	return probe.Probe(img, opts)
}

// NewFuzzer creates a fuzzing campaign against a prepared instance.
func NewFuzzer(cfg FuzzConfig) (*fuzz.Fuzzer, error) { return fuzz.New(cfg) }
