// Command evasm is the standalone EVA32 assembler/disassembler of the
// firmware toolchain.
//
// Usage:
//
//	evasm -o fw.img [-arch arm32e] [-sanitize embsan-c] prog.s
//	evasm -d fw.img
package main

import (
	"flag"
	"fmt"
	"os"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

func main() {
	var (
		out      = flag.String("o", "", "output image path")
		archName = flag.String("arch", "arm32e", "target frontend: arm32e, mips32e, x86e")
		sanitize = flag.String("sanitize", "none", "instrumentation: none, embsan-c, native-kasan, native-kcsan")
		disasm   = flag.Bool("d", false, "disassemble an image instead of assembling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("need exactly one input file"))
	}
	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *disasm {
		img, err := kasm.DecodeImage(input)
		if err != nil {
			fatal(err)
		}
		fmt.Print(kasm.Disassemble(img))
		return
	}

	arch, ok := isa.ArchByName(*archName)
	if !ok {
		fatal(fmt.Errorf("unknown arch %q", *archName))
	}
	mode, err := parseMode(*sanitize)
	if err != nil {
		fatal(err)
	}
	img, err := kasm.Assemble(string(input), kasm.Target{Arch: arch, Sanitize: mode})
	if err != nil {
		fatal(err)
	}
	enc, err := img.Encode()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		*out = "a.img"
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d text bytes, %d data bytes, %d symbols\n",
		*out, len(img.Text), len(img.Data), len(img.Symbols))
}

func parseMode(s string) (kasm.SanitizeMode, error) {
	switch s {
	case "none":
		return kasm.SanNone, nil
	case "embsan-c":
		return kasm.SanEmbsanC, nil
	case "native-kasan":
		return kasm.SanNativeKASAN, nil
	case "native-kcsan":
		return kasm.SanNativeKCSAN, nil
	}
	return 0, fmt.Errorf("unknown sanitize mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evasm:", err)
	os.Exit(1)
}
