package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"

	"embsan/internal/exps"
	"embsan/internal/guest/firmware"
)

// monitorMain runs a fuzzing campaign set with the timeline sampler armed
// while serving a wall-clock liveness view over HTTP: an OpenMetrics
// scrape at /metrics, a server-sent event stream at /events, and — once
// the set finishes — the canonical EMTL timeline at /timeline.emtl plus a
// Chrome counter trace at /trace.json. The served EMTL is byte-identical
// to an offline run of the same options: liveness is a view, never an
// input to the campaigns.
func monitorMain(args []string) {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	var (
		fwName   = fs.String("firmware", "", "bundled Table 1 firmware name")
		all      = fs.Bool("all", false, "run the full registry")
		addr     = fs.String("addr", "127.0.0.1:8377", "HTTP listen address")
		execs    = fs.Int("execs", 30000, "per-campaign execution budget")
		seed     = fs.Int64("seed", 7, "campaign base seed")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		repeats  = fs.Int("repeats", 1, "campaigns per firmware")
		interval = fs.Uint64("interval", 0, "timeline sample period in retired instructions (0 = default)")
		exit     = fs.Bool("exit-when-done", false, "stop serving once the set finishes (otherwise keep serving the artifacts)")
	)
	fs.Parse(args)

	var fws []*firmware.Firmware
	if !*all {
		if *fwName == "" {
			fatal(fmt.Errorf("monitor needs -firmware NAME or -all"))
		}
		fw, err := firmware.Build(*fwName)
		if err != nil {
			fatal(err)
		}
		fws = []*firmware.Firmware{fw}
	}

	m := exps.NewMonitor()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("monitor serving on http://%s (metrics, events, timeline.emtl, trace.json)\n", ln.Addr())
	srv := &http.Server{Handler: m.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	run, err := exps.RunMonitor(fws, exps.CampaignOptions{
		Execs: *execs, Seed: *seed, Workers: *workers, Repeats: *repeats,
		TimelineInterval: *interval,
	}, m)
	if err != nil {
		fatal(err)
	}
	fmt.Print(exps.FormatCampaignStats(run.Campaigns, run.Workers...))
	fmt.Printf("campaign set finished; artifacts downloadable at /timeline.emtl and /trace.json\n")

	if *exit {
		srv.Close()
		return
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}
