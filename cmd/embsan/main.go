// Command embsan runs a firmware image under the EMBSAN sanitizer and
// prints any reports. It accepts either a bundled Table 1 firmware name or
// an image file produced by the toolchain (kasm.Image.Encode).
//
// Usage:
//
//	embsan -firmware OpenWRT-x86_64 [-sanitizers kasan,kcsan] [-trigger N]
//	embsan -image fw.img [-probe-text]
//	embsan lint -firmware NAME | -image FILE | -all | -selftest
//	embsan trace -firmware NAME [-out DIR] [-validate] [-kind K,..] [-hart N] [-window lo:hi]
//	embsan rehost -image FILE [-profile-out F] [-stub-out F] [-campaign N]
//	embsan explain -firmware NAME [-bug FN | -signature SIG | -input FILE] [-out DIR]
//	embsan monitor -firmware NAME | -all [-addr 127.0.0.1:8377] [-execs N] [-exit-when-done]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"embsan"
	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/probe"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		lintMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "rehost" {
		rehostMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		explainMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "monitor" {
		monitorMain(os.Args[2:])
		return
	}
	var (
		fwName     = flag.String("firmware", "", "bundled Table 1 firmware name (see -list)")
		imagePath  = flag.String("image", "", "path to an encoded firmware image")
		sanitizers = flag.String("sanitizers", "kasan", "comma-separated sanitizers: kasan,kcsan")
		trigger    = flag.Int("trigger", -1, "fire seeded bug #N of the firmware (requires -firmware)")
		probeText  = flag.Bool("probe-text", false, "print the Prober's DSL output and exit")
		platform   = flag.String("platform", "", "use a tester-prepared platform DSL file instead of probing")
		list       = flag.Bool("list", false, "list bundled firmware")
		budget     = flag.Uint64("budget", 200_000_000, "instruction budget")
		trace      = flag.Int("trace", 0, "print a disassembled trace of the first N instructions")
	)
	flag.Parse()

	if *list {
		for _, n := range embsan.FirmwareNames {
			fmt.Println(n)
		}
		return
	}

	var img *kasm.Image
	var fw *embsan.Firmware
	switch {
	case *fwName != "":
		var err error
		fw, err = embsan.BuildFirmware(*fwName)
		if err != nil {
			fatal(err)
		}
		img = fw.Image
	case *imagePath != "":
		raw, err := os.ReadFile(*imagePath)
		if err != nil {
			fatal(err)
		}
		img, err = kasm.DecodeImage(raw)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -firmware or -image (try -list)"))
	}

	if *probeText {
		res, err := embsan.Probe(img, probe.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("// probing mode: %s\n%s", res.Mode, res.Text())
		return
	}

	cfg := core.Config{
		Image:      img,
		Sanitizers: strings.Split(*sanitizers, ","),
		Machine:    emu.Config{MaxHarts: 2},
	}
	if *platform != "" {
		text, err := os.ReadFile(*platform)
		if err != nil {
			fatal(err)
		}
		cfg.PlatformText = string(text)
	}
	inst, err := embsan.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *trace > 0 {
		remaining := *trace
		inst.Machine.TraceHook = func(hart int, pc uint32, in isa.Inst) {
			if remaining <= 0 {
				return
			}
			remaining--
			fmt.Printf("[h%d] %08x: %s\n", hart, pc, isa.Disasm(in, pc))
		}
	}
	if err := inst.Boot(*budget); err != nil {
		fatal(err)
	}
	fmt.Printf("firmware %q booted (%s, %d instructions)\n",
		img.Name, img.Arch, inst.Machine.ICount())
	inst.Snapshot()

	if *trigger >= 0 {
		if fw == nil || *trigger >= len(fw.Bugs) {
			fatal(fmt.Errorf("trigger %d out of range", *trigger))
		}
		bug := fw.Bugs[*trigger]
		fmt.Printf("firing seeded bug %d: %s (%s)\n", *trigger, bug.Fn, bug.Location)
		res := inst.Exec(bug.Trigger, *budget)
		printOutcome(inst, res)
		return
	}

	// No trigger: run the firmware until it stops or the budget expires.
	stop := inst.Run(*budget)
	fmt.Printf("stopped: %v\n", stop)
	for _, r := range inst.Reports() {
		fmt.Print(r.Format(img))
	}
	if out := inst.Machine.UART.String(); out != "" {
		fmt.Printf("console: %s\n", out)
	}
}

func printOutcome(inst *embsan.Instance, res embsan.ExecResult) {
	fmt.Printf("executed %d instructions, done=%v\n", res.Insts, res.Done)
	if res.Fault != nil {
		fmt.Printf("guest fault: %v\n", res.Fault)
	}
	for _, r := range res.Reports {
		fmt.Print(r.Format(inst.Image()))
	}
	if len(res.Reports) == 0 && res.Fault == nil {
		fmt.Println("no sanitizer reports")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embsan:", err)
	os.Exit(1)
}
