package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"embsan"
	"embsan/internal/exps"
)

// explainMain implements `embsan explain`: deterministically re-execute an
// input that reproduces a sanitizer report and emit the full forensic
// story — access/alloc/free backtraces from the shadow call stack, the
// faulting object's lifetime timeline, and the last writers of the
// faulting address. The replay is keyed on the virtual clock, so repeated
// invocations (and invocations explaining a crash found by campaigns at
// any worker count) produce byte-identical report text and explain.json.
func explainMain(args []string) {
	fs := flag.NewFlagSet("embsan explain", flag.ExitOnError)
	var (
		fwName    = fs.String("firmware", "", "bundled Table 1 firmware name")
		bugFn     = fs.String("bug", "", "seeded bug function name to replay (e.g. st7789_draw)")
		signature = fs.String("signature", "", "report signature to explain (empty = first report)")
		inputPath = fs.String("input", "", "file holding a raw crasher input to replay")
		seed      = fs.Int64("seed", 0, "base seed (match the campaign that surfaced the bug)")
		execs     = fs.Int("execs", 30000, "campaign budget when hunting an input by signature")
		window    = fs.Uint64("window", 0, "forensic half-window in instructions (0 = default)")
		outDir    = fs.String("out", "", "also write <firmware>.explain.txt/.json into this directory")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *fwName == "" {
		fatal(fmt.Errorf("explain: need -firmware"))
	}
	fw, err := embsan.BuildFirmware(*fwName)
	if err != nil {
		fatal(err)
	}
	opts := exps.ExplainOptions{
		Signature: *signature,
		BugFn:     *bugFn,
		Seed:      *seed,
		Execs:     *execs,
		Window:    *window,
	}
	if *inputPath != "" {
		raw, err := os.ReadFile(*inputPath)
		if err != nil {
			fatal(err)
		}
		opts.Input = raw
	}
	res, err := exps.ExplainReport(fw, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Text)
	fmt.Printf("explained %s: %d forensic records in window [%d, %d], input %x\n",
		res.Report.Signature(), len(res.Records), res.WindowLo, res.WindowHi, res.Input)
	if *outDir != "" {
		base := filepath.Join(*outDir, traceName(fw.Name))
		write := func(suffix string, data []byte) {
			path := base + suffix
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
		}
		write(".explain.txt", []byte(res.Text))
		write(".explain.json", res.JSON)
	}
}
