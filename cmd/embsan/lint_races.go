package main

import (
	"fmt"
	"sort"

	"embsan/internal/guest/firmware"
	"embsan/internal/kasm"
	"embsan/internal/san"
	"embsan/internal/static"
	"embsan/internal/static/races"
)

// racesAnalyze runs the lockset/shared-state analysis on one image.
func racesAnalyze(img *kasm.Image) *races.Result {
	an, err := static.Analyze(img)
	if err != nil {
		fatal(err)
	}
	return races.Analyze(an, races.Options{})
}

// raceExpected reports whether the firmware carries a seeded data race, in
// which case the static triage is REQUIRED to emit candidate pairs.
func raceExpected(fw *firmware.Firmware) bool {
	for _, b := range fw.Bugs {
		if b.Type == san.BugRace {
			return true
		}
	}
	return false
}

// racesImage runs the race triage on one image and prints the verdict with
// symbol xrefs; returns the diagnostic count. The verdict is clean-or-
// expected: firmware with a seeded race must yield candidate pairs, firmware
// without one must yield none. Recorded race-elision metadata is audited
// against a twice-re-derived proof (races.Audit), so a tampered or stale
// record fails here without booting the image.
func racesImage(img *kasm.Image, expectRace bool) int {
	if img.Stripped || len(img.Symbols) == 0 {
		fmt.Printf("%s: note: skipped %s: no symbol anchors\n", img.Name, static.RuleRaces)
		return 0
	}
	r, again := racesAnalyze(img), racesAnalyze(img)
	if err := races.Audit(r, again, img.Meta.RaceElisions); err != nil {
		fmt.Printf("%s: %s: %v\n", img.Name, static.RuleRaces, err)
		return 1
	}
	for _, p := range r.Pairs {
		fmt.Printf("%s: %s: candidate pair %s\n", img.Name, static.RuleRaces, r.DescribePair(p))
	}
	s := r.Stats()
	switch {
	case expectRace && s.Pairs == 0:
		fmt.Printf("%s: %s: firmware seeds a data race but the triage emitted no candidate pairs\n",
			img.Name, static.RuleRaces)
		return 1
	case !expectRace && s.Pairs > 0:
		fmt.Printf("%s: %s: %d unexpected candidate pairs on race-free firmware\n",
			img.Name, static.RuleRaces, s.Pairs)
		return s.Pairs
	}
	verdict := "races clean"
	if expectRace {
		verdict = fmt.Sprintf("races expected (%d seeded candidate pairs)", s.Pairs)
	}
	fmt.Printf("%s: %s (%d objects: %d protected, %d hart-local, %d racy; %d accesses, %d unresolved)\n",
		img.Name, verdict, s.Objects, s.Protected, s.HartLocal, s.Racy, s.Accesses, s.Unresolved)
	return 0
}

// racesAll audits every registry firmware (stock build, so the seeded-bug
// list is attached) plus the race twin as the positive control.
func racesAll() {
	bad := 0
	for _, name := range firmware.Names {
		fw, err := firmware.Build(name)
		if err != nil {
			fatal(err)
		}
		bad += racesImage(fw.Image, raceExpected(fw))
	}
	twin, err := firmware.BuildRaceTwin()
	if err != nil {
		fatal(err)
	}
	bad += racesImage(twin.Image, true)
	exitCode(bad)
}

// racesSelftest proves the race-elision audit has teeth: the honest
// re-derived elision list must audit clean, and a planted bogus lockset — a
// racy access recorded as if a protection proof existed — must be rejected.
func racesSelftest() {
	fw, err := firmware.BuildRaceTwin()
	if err != nil {
		fatal(err)
	}
	r, again := racesAnalyze(fw.Image), racesAnalyze(fw.Image)
	if len(r.Pairs) == 0 {
		fatal(fmt.Errorf("races selftest: seeded race twin yields no candidate pairs"))
	}
	recs, _ := r.Elisions()
	if err := races.Audit(r, again, recs); err != nil {
		fatal(fmt.Errorf("races selftest: honest elision list failed the audit: %v", err))
	}

	// Plant the bogus lockset: take one side of a flagged race pair and
	// record it as protected, as a broken (or malicious) link step would.
	p := r.Pairs[0]
	bogus := append(append([]kasm.RaceElision(nil), recs...), kasm.RaceElision{
		Site:   r.Accesses[p.A].PC,
		Kind:   races.ClassProtected.String(),
		Object: r.Objects[p.Object].Name,
	})
	sort.Slice(bogus, func(i, j int) bool { return bogus[i].Site < bogus[j].Site })
	if err := races.Audit(r, again, bogus); err == nil {
		fatal(fmt.Errorf("races selftest: bogus lockset audited clean"))
	} else {
		fmt.Printf("races selftest: bogus lockset rejected as expected: %v\n", err)
	}
}
