package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"embsan/internal/emu"
	"embsan/internal/exps"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/mystery"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/probe"
	"embsan/internal/static/rehost"
)

// rehostMain implements `embsan rehost`: the static rehosting pipeline for
// foreign closed binaries. The image is lifted (entry, stack, MMIO register
// map, allocator candidates) with no source or metadata access, the
// synthesized bridge device is attached to an otherwise stock machine, and
// the firmware is booted, probed and optionally fuzzed through it.
func rehostMain(args []string) {
	fs := flag.NewFlagSet("rehost", flag.ExitOnError)
	var (
		imagePath  = fs.String("image", "", "path to an encoded firmware image")
		profileOut = fs.String("profile-out", "", "write the lifted profile (rehost profile v1 text) here")
		stubOut    = fs.String("stub-out", "", "write the generated bridge-device Go source here")
		campaign   = fs.Int("campaign", 0, "after booting, fuzz the image for N executions through the bridge")
		workers    = fs.Int("workers", 1, "campaign worker pool size")
		seed       = fs.Int64("seed", 7, "RNG seed")
		budget     = fs.Uint64("budget", 200_000_000, "boot instruction budget")

		emitMystery = fs.String("emit-mystery", "", "write the bundled binary-only mystery image for this frontend (arm32e/mips32e/x86e) to -image-out and exit")
		imageOut    = fs.String("image-out", "", "output path for -emit-mystery")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: embsan rehost -image FILE [-profile-out F] [-stub-out F] [-campaign N]")
		fmt.Fprintln(os.Stderr, "       embsan rehost -emit-mystery ARCH -image-out FILE")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *emitMystery != "" {
		arch, ok := isa.ArchByName(*emitMystery)
		if !ok {
			fatal(fmt.Errorf("unknown frontend %q", *emitMystery))
		}
		if *imageOut == "" {
			fatal(fmt.Errorf("-emit-mystery needs -image-out"))
		}
		fw, err := mystery.Build("mystery-"+*emitMystery, arch)
		if err != nil {
			fatal(err)
		}
		data, err := fw.Image.Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*imageOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("mystery image (%s, stripped) written to %s (%d bytes)\n",
			arch, *imageOut, len(data))
		return
	}

	if *imagePath == "" {
		fs.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*imagePath)
	if err != nil {
		fatal(err)
	}
	img, err := kasm.DecodeImage(raw)
	if err != nil {
		fatal(err)
	}

	// ---- lift ----
	p, err := rehost.Lift(img)
	if err != nil {
		fatal(err)
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	fmt.Print(p.Render())
	if *profileOut != "" {
		if err := os.WriteFile(*profileOut, []byte(p.Render()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *stubOut != "" {
		if err := os.WriteFile(*stubOut, []byte(p.RenderStub()), 0o644); err != nil {
			fatal(err)
		}
	}

	// ---- boot through the synthesized bridge ----
	devices := []emu.DeviceFactory{rehost.Device(p)}
	m, err := emu.New(img, emu.Config{Devices: devices})
	if err != nil {
		fatal(err)
	}
	m.ReadyHook = func(m *emu.Machine) { m.RequestStop() }
	if r := m.Run(*budget); r != emu.StopRequest {
		fatal(fmt.Errorf("boot through the lifted bridge stopped with %v (fault %v)", r, m.Fault()))
	}
	fmt.Printf("\nbooted to ready through the lifted bridge (%d instructions)\n", m.ICount())
	if out := m.UART.String(); out != "" {
		fmt.Printf("console: %q\n", strings.TrimSuffix(out, "\n"))
	}

	// ---- probe: the Prober must confirm the inferred allocator ----
	res, err := probe.Probe(img, probe.Options{Machine: emu.Config{Devices: devices}})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("prober mode: %s (%d dry-run pass(es))\n", res.Mode, res.DryRunPasses)
	if len(res.Platform.Allocs) == 0 {
		fatal(fmt.Errorf("prober classified no allocator behind the lifted bridge"))
	}
	for _, a := range res.Platform.Allocs {
		fmt.Printf("prober allocator: %s entry=%#x size-arg=%s\n", a.Name, a.Entry, a.SizeArg)
	}
	if len(p.Allocs) > 0 && res.Platform.Allocs[0].Entry == p.Allocs[0].Entry {
		fmt.Printf("prober confirms the top static allocator candidate (%#x)\n", p.Allocs[0].Entry)
	} else if len(p.Allocs) > 0 {
		fmt.Printf("warning: prober allocator %#x differs from the top static candidate %#x\n",
			res.Platform.Allocs[0].Entry, p.Allocs[0].Entry)
	}

	// ---- optional campaign ----
	if *campaign > 0 {
		fw := &firmware.Firmware{
			Name: img.Name, BaseOS: "Unknown (rehosted)", Arch: img.Arch,
			InstMode: "EmbSan-D", SourceOpen: false, Fuzzer: "Tardis",
			Frontend: firmware.FrontendBytes, Image: img,
			Machine: emu.Config{Devices: devices},
		}
		run, err := exps.RunCampaignSet([]*firmware.Firmware{fw},
			exps.CampaignOptions{Execs: *campaign, Seed: *seed, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(exps.FormatCampaignStats(run.Campaigns, run.Workers...))
		for _, c := range run.Campaigns {
			for _, crash := range c.Raw.Crashes {
				if crash.Report != nil {
					fmt.Printf("crash: %s (execs=%d)\n", crash.Signature, crash.Execs)
				}
			}
		}
	}
}
