package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"embsan/internal/guest/firmware"
	"embsan/internal/guest/mystery"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/absint"
	"embsan/internal/static/rehost"
)

// lintMain implements `embsan lint`: a static audit of a built image. It
// exits non-zero if any image produces a diagnostic, printing each one in
// symbol-addressed form so a toolchain regression can be located without
// booting the firmware.
func lintMain(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	var (
		fwName    = fs.String("firmware", "", "bundled Table 1 firmware name")
		imagePath = fs.String("image", "", "path to an encoded firmware image")
		all       = fs.Bool("all", false, "lint every registry firmware (EMBSAN-C where the board supports it)")
		selftest  = fs.Bool("selftest", false, "verify the linter catches a deliberately broken build")
		elide     = fs.Bool("elide", false, "apply link-time SANCK elision and audit every elided probe's safety proof")
		rehostAud = fs.Bool("rehost", false, "re-derive the MMIO map from the image and diff it against a recorded rehost profile")
		profile   = fs.String("profile", "", "recorded rehost profile (text) for -rehost")
		racesAud  = fs.Bool("races", false, "run the lockset/shared-state race triage and audit recorded race elisions")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: embsan lint [-elide] -firmware NAME | -image FILE | -all | -selftest")
		fmt.Fprintln(os.Stderr, "       embsan lint -rehost -image FILE -profile FILE | -rehost -selftest")
		fmt.Fprintln(os.Stderr, "       embsan lint -races -firmware NAME | -races -image FILE | -races -all | -races -selftest")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *racesAud {
		switch {
		case *selftest:
			racesSelftest()
		case *all:
			racesAll()
		case *fwName != "":
			fw, err := firmware.Build(*fwName)
			if err != nil {
				fatal(err)
			}
			exitCode(racesImage(fw.Image, raceExpected(fw)))
		case *imagePath != "":
			raw, err := os.ReadFile(*imagePath)
			if err != nil {
				fatal(err)
			}
			img, err := kasm.DecodeImage(raw)
			if err != nil {
				fatal(err)
			}
			exitCode(racesImage(img, false))
		default:
			fs.Usage()
			os.Exit(2)
		}
		return
	}

	if *rehostAud {
		switch {
		case *selftest:
			rehostSelftest()
		case *imagePath != "" && *profile != "":
			raw, err := os.ReadFile(*imagePath)
			if err != nil {
				fatal(err)
			}
			img, err := kasm.DecodeImage(raw)
			if err != nil {
				fatal(err)
			}
			recorded, err := os.ReadFile(*profile)
			if err != nil {
				fatal(err)
			}
			exitCode(rehostAudit(img, string(recorded)))
		default:
			fs.Usage()
			os.Exit(2)
		}
		return
	}

	audit := lintImage
	if *elide {
		audit = auditImage
	}
	switch {
	case *selftest && *elide:
		elideSelftest()
	case *selftest:
		lintSelftest()
	case *all:
		lintAll(*elide, audit)
	case *fwName != "":
		fw, err := firmware.Build(*fwName)
		if err != nil {
			fatal(err)
		}
		img := fw.Image
		if *elide {
			img = elideImage(img)
		}
		exitCode(audit(img))
	case *imagePath != "":
		raw, err := os.ReadFile(*imagePath)
		if err != nil {
			fatal(err)
		}
		img, err := kasm.DecodeImage(raw)
		if err != nil {
			fatal(err)
		}
		exitCode(audit(img))
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func exitCode(bad int) {
	if bad > 0 {
		os.Exit(1)
	}
}

// lintImage audits one image and prints its diagnostics; returns the count.
// Images without EMBSAN-C link metadata (EMBSAN-D builds, stripped or
// rehosted binaries) are not an error: the metadata-dependent rules are
// skipped with an explicit note, so a clean verdict is never mistaken for a
// full instrumentation audit.
func lintImage(img *kasm.Image) int {
	diags, err := static.Lint(img)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", img.Name, d)
	}
	skips := static.LintSkips(img)
	for _, sk := range skips {
		fmt.Printf("%s: note: skipped %s\n", img.Name, sk)
	}
	if len(diags) == 0 {
		verdict := "clean"
		if len(skips) > 0 {
			verdict = "clean (universal checks only)"
		}
		fmt.Printf("%s: %s (%s, %s)\n", img.Name, verdict, img.Arch, img.Meta.Sanitize)
	}
	return len(diags)
}

// rehostAudit re-lifts the image with the static rehosting pass and diffs
// the fresh profile against the recorded one, flagging every divergence —
// the check that a committed profile (or a generated device stub built from
// it) still describes the binary it claims to.
func rehostAudit(img *kasm.Image, recorded string) int {
	p, err := rehost.Lift(img)
	if err != nil {
		fatal(err)
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	bad := diffLines(img.Name, recorded, p.Render())
	if bad == 0 {
		fmt.Printf("%s: rehost profile matches the image\n", img.Name)
	}
	return bad
}

// diffLines prints a line-level diff of the recorded vs re-derived profile
// and returns the number of divergent lines.
func diffLines(name, recorded, fresh string) int {
	rec := strings.Split(strings.TrimRight(recorded, "\n"), "\n")
	got := strings.Split(strings.TrimRight(fresh, "\n"), "\n")
	bad := 0
	for i := 0; i < len(rec) || i < len(got); i++ {
		var r, g string
		if i < len(rec) {
			r = rec[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if r != g {
			bad++
			fmt.Printf("%s: rehost-divergence: line %d: recorded %q, image yields %q\n", name, i+1, r, g)
		}
	}
	return bad
}

// rehostSelftest proves the divergence audit catches a tampered profile: a
// fresh lift must match itself, and a role flip in the recorded text must
// be flagged.
func rehostSelftest() {
	fw, err := mystery.Build("rehost-selftest", isa.ArchX86E)
	if err != nil {
		fatal(err)
	}
	p, err := rehost.Lift(fw.Image)
	if err != nil {
		fatal(err)
	}
	good := p.Render()
	if bad := diffLines(fw.Image.Name, good, p.Render()); bad != 0 {
		fatal(fmt.Errorf("rehost selftest: audit flagged %d divergences on an untouched profile", bad))
	}
	tampered := strings.Replace(good, "rx-status", "boot-status", 1)
	if tampered == good {
		fatal(fmt.Errorf("rehost selftest: could not tamper the profile"))
	}
	if bad := diffLines(fw.Image.Name, tampered, p.Render()); bad == 0 {
		fatal(fmt.Errorf("rehost selftest: audit missed a tampered register role"))
	}
	fmt.Println("rehost selftest: divergence audit catches a tampered profile")
}

// lintAll audits every registry firmware, rebuilt as EMBSAN-C when the
// board is open-source; the closed TP-Link image is linted as shipped.
// With elide, each EMBSAN-C image is first put through the link-time
// elision pass, so the audit exercises the proofs actually deployed.
func lintAll(elide bool, audit func(*kasm.Image) int) {
	bad := 0
	for _, name := range firmware.Names {
		fw, err := firmware.BuildVariant(name, kasm.SanEmbsanC)
		if err != nil {
			// Closed-source boards only exist uninstrumented.
			fw, err = firmware.Build(name)
			if err != nil {
				fatal(err)
			}
		}
		img := fw.Image
		if elide {
			img = elideImage(img)
		}
		bad += audit(img)
	}
	exitCode(bad)
}

// elideImage applies the link-time SANCK elision to an EMBSAN-C image;
// other builds pass through unchanged (they have no probes to drop).
func elideImage(img *kasm.Image) *kasm.Image {
	if img.Meta.Sanitize != kasm.SanEmbsanC || img.Stripped {
		return img
	}
	an, err := static.Analyze(img)
	if err != nil {
		fatal(err)
	}
	els := absint.Analyze(an, absint.Options{}).Elisions(false)
	if len(els) == 0 {
		return img
	}
	out, err := img.ElideSancks(els)
	if err != nil {
		fatal(err)
	}
	return out
}

// auditImage re-derives the safety proof behind every recorded elision and
// prints the diagnostics; returns the count.
func auditImage(img *kasm.Image) int {
	diags, err := absint.Audit(img, nil)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", img.Name, d)
	}
	if len(diags) == 0 {
		fmt.Printf("%s: clean (%s, %s, %d elisions)\n",
			img.Name, img.Arch, img.Meta.Sanitize, len(img.Meta.Elisions))
	}
	return len(diags)
}

// lintSelftest proves the audit has teeth: a clean EMBSAN-C build must lint
// clean, and the same image with one hypercall probe dropped and one global
// redzone zeroed must fail with addressed diagnostics.
func lintSelftest() {
	fw, err := firmware.BuildVariant("OpenWRT-armvirt", kasm.SanEmbsanC)
	if err != nil {
		fatal(err)
	}
	img := fw.Image
	if n := lintImage(img); n != 0 {
		fatal(fmt.Errorf("selftest: clean build produced %d diagnostics", n))
	}

	broken := *img
	broken.Name = img.Name + "+broken"
	broken.Text = append([]byte(nil), img.Text...)
	dropped := false
	for pc := broken.Base; pc < broken.TextEnd(); pc += 4 {
		in, err := isa.Decode(broken.Arch.Word(broken.Text[pc-broken.Base:]), broken.Arch)
		if err != nil || in.Op != isa.OpSANCK {
			continue
		}
		w, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, broken.Arch)
		if err != nil {
			fatal(err)
		}
		broken.Arch.PutWord(broken.Text[pc-broken.Base:], w)
		dropped = true
		break
	}
	if !dropped {
		fatal(fmt.Errorf("selftest: EMBSAN-C image contains no hypercall probe"))
	}
	broken.Meta.Globals = append([]kasm.GlobalMeta(nil), img.Meta.Globals...)
	if len(broken.Meta.Globals) > 0 {
		broken.Meta.Globals[0].Redzone = 0
	}
	if n := lintImage(&broken); n == 0 {
		fatal(fmt.Errorf("selftest: broken build linted clean"))
	}
	fmt.Println("selftest: broken build failed as expected")
}

// elideSelftest proves the elision audit has teeth: a genuinely elided
// EMBSAN-C build must audit clean, and the same image with one *unproven*
// probe dropped — its elision recorded as if a proof existed — must fail.
func elideSelftest() {
	fw, err := firmware.BuildVariant("OpenWRT-armvirt", kasm.SanEmbsanC)
	if err != nil {
		fatal(err)
	}
	an, err := static.Analyze(fw.Image)
	if err != nil {
		fatal(err)
	}
	res := absint.Analyze(an, absint.Options{})
	elided, err := fw.Image.ElideSancks(res.Elisions(false))
	if err != nil {
		fatal(err)
	}
	if n := auditImage(elided); n != 0 {
		fatal(fmt.Errorf("elide selftest: honest elision produced %d diagnostics", n))
	}

	// Drop a probe the prover could NOT discharge and record it as proven.
	var bogus kasm.Elision
	for _, a := range res.Accesses {
		if a.Kind != absint.ProofNone {
			continue
		}
		if _, ok := elided.Meta.ElisionAt(a.PC - 4); ok {
			continue
		}
		prev, ok := an.InstAt(a.PC - 4)
		if !ok || prev.Op != isa.OpSANCK {
			continue
		}
		bogus = kasm.Elision{Site: a.PC - 4, Access: a.PC, Kind: kasm.ElideGlobal, Object: "bogus"}
		break
	}
	if bogus.Site == 0 {
		fatal(fmt.Errorf("elide selftest: no unproven probe to break"))
	}
	broken := *elided
	broken.Name = elided.Name + "+bogus-elision"
	broken.Text = append([]byte(nil), elided.Text...)
	pad, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, broken.Arch)
	if err != nil {
		fatal(err)
	}
	broken.Arch.PutWord(broken.Text[bogus.Site-broken.Base:], pad)
	broken.Meta.Elisions = append([]kasm.Elision(nil), elided.Meta.Elisions...)
	broken.Meta.Elisions = append(broken.Meta.Elisions, bogus)
	sort.Slice(broken.Meta.Elisions, func(i, j int) bool {
		return broken.Meta.Elisions[i].Site < broken.Meta.Elisions[j].Site
	})
	if n := auditImage(&broken); n == 0 {
		fatal(fmt.Errorf("elide selftest: bogus elision audited clean"))
	}
	fmt.Println("elide selftest: bogus elision failed as expected")
}
