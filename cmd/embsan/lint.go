package main

import (
	"flag"
	"fmt"
	"os"

	"embsan/internal/guest/firmware"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// lintMain implements `embsan lint`: a static audit of a built image. It
// exits non-zero if any image produces a diagnostic, printing each one in
// symbol-addressed form so a toolchain regression can be located without
// booting the firmware.
func lintMain(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	var (
		fwName    = fs.String("firmware", "", "bundled Table 1 firmware name")
		imagePath = fs.String("image", "", "path to an encoded firmware image")
		all       = fs.Bool("all", false, "lint every registry firmware (EMBSAN-C where the board supports it)")
		selftest  = fs.Bool("selftest", false, "verify the linter catches a deliberately broken build")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: embsan lint -firmware NAME | -image FILE | -all | -selftest")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	switch {
	case *selftest:
		lintSelftest()
	case *all:
		lintAll()
	case *fwName != "":
		fw, err := firmware.Build(*fwName)
		if err != nil {
			fatal(err)
		}
		exitCode(lintImage(fw.Image))
	case *imagePath != "":
		raw, err := os.ReadFile(*imagePath)
		if err != nil {
			fatal(err)
		}
		img, err := kasm.DecodeImage(raw)
		if err != nil {
			fatal(err)
		}
		exitCode(lintImage(img))
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func exitCode(bad int) {
	if bad > 0 {
		os.Exit(1)
	}
}

// lintImage audits one image and prints its diagnostics; returns the count.
func lintImage(img *kasm.Image) int {
	diags, err := static.Lint(img)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", img.Name, d)
	}
	if len(diags) == 0 {
		fmt.Printf("%s: clean (%s, %s)\n", img.Name, img.Arch, img.Meta.Sanitize)
	}
	return len(diags)
}

// lintAll audits every registry firmware, rebuilt as EMBSAN-C when the
// board is open-source; the closed TP-Link image is linted as shipped.
func lintAll() {
	bad := 0
	for _, name := range firmware.Names {
		fw, err := firmware.BuildVariant(name, kasm.SanEmbsanC)
		if err != nil {
			// Closed-source boards only exist uninstrumented.
			fw, err = firmware.Build(name)
			if err != nil {
				fatal(err)
			}
		}
		bad += lintImage(fw.Image)
	}
	exitCode(bad)
}

// lintSelftest proves the audit has teeth: a clean EMBSAN-C build must lint
// clean, and the same image with one hypercall probe dropped and one global
// redzone zeroed must fail with addressed diagnostics.
func lintSelftest() {
	fw, err := firmware.BuildVariant("OpenWRT-armvirt", kasm.SanEmbsanC)
	if err != nil {
		fatal(err)
	}
	img := fw.Image
	if n := lintImage(img); n != 0 {
		fatal(fmt.Errorf("selftest: clean build produced %d diagnostics", n))
	}

	broken := *img
	broken.Name = img.Name + "+broken"
	broken.Text = append([]byte(nil), img.Text...)
	dropped := false
	for pc := broken.Base; pc < broken.TextEnd(); pc += 4 {
		in, err := isa.Decode(broken.Arch.Word(broken.Text[pc-broken.Base:]), broken.Arch)
		if err != nil || in.Op != isa.OpSANCK {
			continue
		}
		w, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, broken.Arch)
		if err != nil {
			fatal(err)
		}
		broken.Arch.PutWord(broken.Text[pc-broken.Base:], w)
		dropped = true
		break
	}
	if !dropped {
		fatal(fmt.Errorf("selftest: EMBSAN-C image contains no hypercall probe"))
	}
	broken.Meta.Globals = append([]kasm.GlobalMeta(nil), img.Meta.Globals...)
	if len(broken.Meta.Globals) > 0 {
		broken.Meta.Globals[0].Redzone = 0
	}
	if n := lintImage(&broken); n == 0 {
		fatal(fmt.Errorf("selftest: broken build linted clean"))
	}
	fmt.Println("selftest: broken build failed as expected")
}
