package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"embsan"
	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/kasm"
	"embsan/internal/obs"
	"embsan/internal/static"
)

// traceMain implements `embsan trace`: run a firmware with the observability
// layer attached and emit the captured artefacts — a Chrome trace_event JSON
// timeline, a flamegraph folded-stack profile, the SANCK/probe dispatch-cost
// table, and the metrics registry snapshots. Everything is keyed on the
// virtual clock, so two invocations produce byte-identical files.
func traceMain(args []string) {
	fs := flag.NewFlagSet("embsan trace", flag.ExitOnError)
	var (
		fwName     = fs.String("firmware", "", "bundled Table 1 firmware name")
		imagePath  = fs.String("image", "", "path to an encoded firmware image")
		sanitizers = fs.String("sanitizers", "kasan", "comma-separated sanitizers: kasan,kcsan")
		budget     = fs.Uint64("budget", 200_000_000, "instruction budget (boot and free-run)")
		outDir     = fs.String("out", ".", "directory for the emitted artefacts")
		events     = fs.Int("events", obs.DefaultRingEvents, "trace ring capacity (oldest events drop beyond it)")
		validate   = fs.Bool("validate", false, "validate the emitted Chrome trace and fail on schema errors")
		top        = fs.Int("top", 20, "rows in the dispatch-cost table")
		kinds      = fs.String("kind", "", "comma-separated event kinds to export (e.g. mem-probe,report); empty = all")
		hart       = fs.Int("hart", -1, "export only events from this hart (-1 = all)")
		window     = fs.String("window", "", "export only events in the lo:hi virtual-time window (either bound may be empty)")
		metricsFmt = fs.String("metrics-format", "", "metrics artifact format: text, json or openmetrics (empty = text and json)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	var img *kasm.Image
	var fw *embsan.Firmware
	switch {
	case *fwName != "":
		var err error
		fw, err = embsan.BuildFirmware(*fwName)
		if err != nil {
			fatal(err)
		}
		img = fw.Image
	case *imagePath != "":
		raw, err := os.ReadFile(*imagePath)
		if err != nil {
			fatal(err)
		}
		img, err = kasm.DecodeImage(raw)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("trace: need -firmware or -image"))
	}

	// The profiler attributes cost through the statically recovered function
	// table — the same symbols the lint and reachability reports use.
	var funcs []obs.FuncRange
	if an, err := static.Analyze(img); err == nil {
		funcs = make([]obs.FuncRange, len(an.Funcs))
		for i, f := range an.Funcs {
			funcs[i] = obs.FuncRange{Entry: f.Entry, End: f.End, Name: f.Name}
		}
	}

	inst, err := embsan.New(core.Config{
		Image:      img,
		Sanitizers: strings.Split(*sanitizers, ","),
		Machine:    emu.Config{MaxHarts: 2},
	})
	if err != nil {
		fatal(err)
	}

	ring := obs.NewRing(*events)
	prof := obs.NewProfile()
	inst.SetTrace(ring)
	inst.Machine.SetProfile(prof)

	if err := inst.Boot(*budget); err != nil {
		fatal(err)
	}
	inst.Snapshot()

	// Drive the firmware's seeded triggers when it has them (the registry
	// images), otherwise free-run the budget: both are deterministic.
	if fw != nil && len(fw.Bugs) > 0 {
		for i := range fw.Bugs {
			inst.Restore()
			inst.Exec(fw.Bugs[i].Trigger, *budget)
		}
	} else {
		inst.Run(*budget)
	}

	// Export-time filtering: the ring holds the full capture; -kind, -hart
	// and -window cut the exported view without perturbing what was
	// recorded.
	evs := ring.Events()
	filt := obs.NewFilter()
	filtering := false
	if *kinds != "" {
		for _, name := range strings.Split(*kinds, ",") {
			if err := filt.AddKindName(strings.TrimSpace(name)); err != nil {
				fatal(err)
			}
		}
		filtering = true
	}
	if *hart >= 0 {
		filt.Hart = *hart
		filtering = true
	}
	if *window != "" {
		if err := filt.ParseWindow(*window); err != nil {
			fatal(err)
		}
		filtering = true
	}
	if filtering {
		evs = filt.Apply(evs)
	}

	base := filepath.Join(*outDir, traceName(img.Name))
	chrome := obs.ChromeTrace([]obs.JobTrace{{ID: 0, Events: evs, Dropped: ring.Dropped()}})
	if *validate {
		if err := obs.ValidateChrome(chrome); err != nil {
			fatal(fmt.Errorf("trace: emitted Chrome trace fails validation: %w", err))
		}
	}
	write := func(suffix string, data []byte) {
		path := base + suffix
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	write(".trace.json", chrome)
	write(".folded", []byte(prof.Folded(funcs)))
	write(".dispatch.txt", []byte(obs.FormatDispatchTable(prof.DispatchSites(funcs), *top)))
	switch *metricsFmt {
	case "":
		write(".metrics.txt", []byte(inst.Machine.Metrics().Text()))
		write(".metrics.json", inst.Machine.Metrics().JSON())
	case "text":
		write(".metrics.txt", []byte(inst.Machine.Metrics().Text()))
	case "json":
		write(".metrics.json", inst.Machine.Metrics().JSON())
	case "openmetrics":
		write(".metrics.om", inst.Machine.Metrics().OpenMetrics())
	default:
		fatal(fmt.Errorf("trace: unknown -metrics-format %q (text, json, openmetrics)", *metricsFmt))
	}

	fmt.Printf("trace: %d events exported (%d retained, %d dropped), %d guest insts profiled across %d dispatch sites\n",
		len(evs), ring.Len(), ring.Dropped(), prof.TotalInsts(), len(prof.DispatchSites(funcs)))
}

func traceName(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, n)
}
