// Command embsan-bench regenerates the paper's evaluation artefacts:
// every table and the overhead figure, printed as text.
//
// Usage:
//
//	embsan-bench -table 1         # firmware registry (Table 1)
//	embsan-bench -table 2         # known-bug detection matrix (Table 2)
//	embsan-bench -table 3         # fuzzing campaign classification (Table 3)
//	embsan-bench -table 4         # full found-bug list (Table 4)
//	embsan-bench -figure 2        # runtime overhead (Figure 2)
//	embsan-bench -elision         # dispatch savings from static safety proofs
//	embsan-bench -all [-workers 4]
//	embsan-bench -record BENCH_translate.json   # translation fast-path bench
//	embsan-bench -bench-check BENCH_translate.json
//	embsan-bench -record-rehost BENCH_rehost.json   # rehosted replay throughput
//	embsan-bench -rehost-check BENCH_rehost.json
//	embsan-bench -record-races BENCH_races.json     # guided-vs-uniform race finding
//	embsan-bench -races-check BENCH_races.json
//	embsan-bench -record-timeline BENCH_timeline.json   # timeline sampling overhead
//	embsan-bench -timeline-check BENCH_timeline.json
//	embsan-bench -record-trend BENCH_trend.json     # append a cross-PR summary row
//	embsan-bench -trend-check BENCH_trend.json
//
// -record-trend distils the four sibling BENCH_*.json artefacts (looked up
// next to the target path) into one summary row and appends it.
//
// The table 3/4 campaigns run on the deterministic parallel executor
// (internal/sched); -workers sizes its pool without changing any output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"embsan/internal/exps"
	"embsan/internal/guest/firmware"
	"embsan/internal/obs"
	"embsan/internal/sched"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate table N (1-4)")
		figure  = flag.Int("figure", 0, "regenerate figure N (2)")
		all     = flag.Bool("all", false, "regenerate everything")
		execs   = flag.Int("execs", 30000, "campaign budget for tables 3/4")
		progs   = flag.Int("programs", 16, "workload size for figure 2")
		seed    = flag.Int64("seed", 7, "RNG seed")
		workers = flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = serial)")
		elision = flag.Bool("elision", false, "measure sanitizer dispatches elided by static safety proofs")
		trace   = flag.String("trace", "", "capture table 3/4 campaign traces and write a Chrome trace_event JSON to this file")
		metrics = flag.Bool("metrics", false, "append the per-phase virtual-time breakdown to the campaign stats")

		record      = flag.String("record", "", "measure the translation fast paths on every registry firmware and write the bench JSON here")
		recordExecs = flag.Int("record-execs", 8000, "timed replays per engine per firmware for -record")
		benchCheck  = flag.String("bench-check", "", "validate a recorded bench JSON (schema + registry coverage, never values) and smoke the fast paths live")

		recordRehost = flag.String("record-rehost", "", "measure rehosted-firmware replay throughput and write the bench JSON here")
		rehostExecs  = flag.Int("rehost-execs", 4000, "timed replays per firmware for -record-rehost")
		rehostCheck  = flag.String("rehost-check", "", "validate a recorded rehost bench JSON (schema + family coverage, never values)")

		recordRaces = flag.String("record-races", "", "run the guided-vs-uniform race-finding bench on the seeded race twin and write the bench JSON here")
		raceExecs   = flag.Int("race-execs", 2000, "per-campaign execution budget for -record-races")
		racesCheck  = flag.String("races-check", "", "validate a recorded race bench JSON (virtual-clock exec counts are machine-independent)")

		recordTimeline = flag.String("record-timeline", "", "measure timeline-sampling overhead on every registry firmware and write the bench JSON here")
		timelineExecs  = flag.Int("timeline-execs", 2000, "per-campaign execution budget for -record-timeline")
		timelineCheck  = flag.String("timeline-check", "", "validate a recorded timeline bench JSON (schema + registry coverage, never values)")

		recordTrend = flag.String("record-trend", "", "append a summary row distilled from the sibling BENCH_*.json artefacts to this trend JSON")
		trendCheck  = flag.String("trend-check", "", "validate a recorded trend JSON (schema + monotone sequence, never values)")
	)
	flag.Parse()

	run := func(n int) bool { return *all || *table == n }

	var campaigns []*exps.Campaign
	var workerStats []sched.WorkerStats
	needCampaigns := run(3) || *table == 4 || *all

	if run(1) {
		fws, err := firmware.BuildAll()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatTable1(fws))
	}
	if run(2) {
		rows, err := exps.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatTable2(rows))
	}
	if needCampaigns {
		cr, err := exps.RunCampaignSet(nil, exps.CampaignOptions{Execs: *execs, Seed: *seed, Workers: *workers,
			Trace: *trace != "", Metrics: *metrics})
		if err != nil {
			fatal(err)
		}
		campaigns = cr.Campaigns
		workerStats = cr.Workers
		if *trace != "" {
			data := obs.ChromeTrace(exps.JobTraces(campaigns))
			if err := os.WriteFile(*trace, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (%d bytes)\n", *trace, len(data))
		}
	}
	if run(3) {
		fmt.Println(exps.FormatTable3(campaigns))
		fmt.Println(exps.FormatCampaignStats(campaigns, workerStats...))
	}
	if run(4) || (*all && campaigns != nil) {
		fmt.Println(exps.FormatTable4(campaigns))
	}
	if *figure == 2 || *all {
		rows, err := exps.RunOverhead(firmware.Names, exps.OverheadOptions{Programs: *progs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatFigure2(rows))
	}
	if *elision || *all {
		stats, err := exps.RunElisionStats(nil, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatElisionTable(stats))
	}
	if *record != "" {
		tb, err := exps.RunTranslateBench(nil, exps.TranslateBenchOptions{Execs: *recordExecs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(tb, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*record, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatTranslateBench(tb))
		fmt.Printf("bench written to %s\n", *record)
	}
	if *benchCheck != "" {
		benchCheckRun(*benchCheck, *seed)
	}
	if *recordRehost != "" {
		rb, err := exps.RunRehostBench(exps.RehostBenchOptions{Execs: *rehostExecs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(rb, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*recordRehost, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatRehostBench(rb))
		fmt.Printf("bench written to %s\n", *recordRehost)
	}
	if *rehostCheck != "" {
		data, err := os.ReadFile(*rehostCheck)
		if err != nil {
			fatal(err)
		}
		if err := exps.CheckRehostBench(data); err != nil {
			fatal(err)
		}
		fmt.Printf("rehost-check: %s schema and family coverage OK\n", *rehostCheck)
	}
	if *recordRaces != "" {
		rb, err := exps.RunRaceBench(exps.RaceBenchOptions{Execs: *raceExecs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(rb, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*recordRaces, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatRaceBench(rb))
		fmt.Printf("bench written to %s\n", *recordRaces)
	}
	if *racesCheck != "" {
		data, err := os.ReadFile(*racesCheck)
		if err != nil {
			fatal(err)
		}
		if err := exps.CheckRaceBench(data); err != nil {
			fatal(err)
		}
		fmt.Printf("races-check: %s records the guided campaign beating uniform sampling\n", *racesCheck)
	}
	if *recordTimeline != "" {
		tb, err := exps.RunTimelineBench(nil, exps.TimelineBenchOptions{Execs: *timelineExecs, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(tb, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*recordTimeline, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(exps.FormatTimelineBench(tb))
		fmt.Printf("bench written to %s\n", *recordTimeline)
	}
	if *timelineCheck != "" {
		data, err := os.ReadFile(*timelineCheck)
		if err != nil {
			fatal(err)
		}
		if err := exps.CheckTimelineBench(data, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline-check: %s schema and registry coverage OK\n", *timelineCheck)
	}
	if *recordTrend != "" {
		recordTrendRun(*recordTrend)
	}
	if *trendCheck != "" {
		data, err := os.ReadFile(*trendCheck)
		if err != nil {
			fatal(err)
		}
		if err := exps.CheckBenchTrend(data); err != nil {
			fatal(err)
		}
		fmt.Printf("trend-check: %s schema and sequence OK\n", *trendCheck)
	}
	if !*all && *table == 0 && *figure == 0 && !*elision && *record == "" && *benchCheck == "" &&
		*recordRehost == "" && *rehostCheck == "" && *recordRaces == "" && *racesCheck == "" &&
		*recordTimeline == "" && *timelineCheck == "" && *recordTrend == "" && *trendCheck == "" {
		flag.Usage()
	}
}

// recordTrendRun appends one summary row to the trend artefact at path,
// distilled from the four BENCH_*.json files in the same directory.
func recordTrendRun(path string) {
	dir := filepath.Dir(path)
	read := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fatal(fmt.Errorf("trend needs %s next to %s: %w", name, path, err))
		}
		return data
	}
	prev, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	trend, err := exps.AppendBenchTrend(prev,
		read("BENCH_translate.json"), read("BENCH_races.json"),
		read("BENCH_rehost.json"), read("BENCH_timeline.json"))
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(trend, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(exps.FormatBenchTrend(trend))
	fmt.Printf("trend written to %s (%d rows)\n", path, len(trend.Rows))
}

// benchCheckRun is the CI gate on the committed bench artefact: the schema
// and registry coverage must match the current code (measured values are
// machine-dependent and never compared), and a bounded live smoke on one
// EMBSAN-C and one EMBSAN-D firmware must show the fast paths engaging —
// nonzero exit chains followed and dispatches elided.
func benchCheckRun(path string, seed int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if err := exps.CheckTranslateBench(data, nil); err != nil {
		fatal(err)
	}
	fmt.Printf("bench-check: %s schema and registry coverage OK\n", path)

	var fws []*firmware.Firmware
	for _, name := range []string{"OpenWRT-armvirt", "OpenWRT-bcm63xx"} {
		fw, err := firmware.Build(name)
		if err != nil {
			fatal(err)
		}
		fws = append(fws, fw)
	}
	smoke, err := exps.RunTranslateBench(fws, exps.TranslateBenchOptions{Execs: 120, Seed: seed})
	if err != nil {
		fatal(err)
	}
	var chains, elided uint64
	for _, r := range smoke.Rows {
		chains += r.ChainHits
		elided += r.DispatchesElided
	}
	if chains == 0 || elided == 0 {
		fmt.Println(exps.FormatTranslateBench(smoke))
		fatal(fmt.Errorf("fast paths did not engage on the registry smoke (chains=%d elided=%d)", chains, elided))
	}
	fmt.Printf("bench-check: live smoke engaged the fast paths (%d chains, %d dispatches elided)\n", chains, elided)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embsan-bench:", err)
	os.Exit(1)
}
