// Command embsan-fuzz runs an EMBSAN-assisted fuzzing campaign against one
// bundled firmware, mirroring the paper's Table 3/4 pipeline: boot, probe,
// attach the sanitizer runtime, then drive the Syzkaller- or Tardis-style
// frontend until the execution budget is exhausted.
//
// Campaigns run on the deterministic parallel executor (internal/sched):
// -workers sizes the machine pool (default GOMAXPROCS; 1 keeps the serial
// path) and merged results are bit-identical for every worker count.
//
// Usage:
//
//	embsan-fuzz -firmware OpenWRT-bcm63xx [-execs 30000] [-seed 7]
//	embsan-fuzz -all [-workers 4] [-repeats 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"embsan"
	"embsan/internal/exps"
	"embsan/internal/guest/firmware"
	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
	"embsan/internal/sched"
)

func sanitizeName(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, n)
}

func main() {
	var (
		fwName  = flag.String("firmware", "", "bundled firmware name")
		all     = flag.Bool("all", false, "fuzz every Table 1 firmware")
		execs   = flag.Int("execs", 30000, "execution budget per campaign")
		seed    = flag.Int64("seed", 7, "base campaign seed (campaign i uses splitmix64(seed, i))")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		repeats = flag.Int("repeats", 1, "independent campaigns per firmware")
		elide   = flag.Bool("elide", false, "drop provably-safe sanitizer checks (static safety proofs); findings are unchanged")
		outDir  = flag.String("out", "", "save corpus and crash artifacts under this directory")
		trace   = flag.String("trace", "", "capture per-campaign event traces and write a Chrome trace_event JSON to this file")
		metrics = flag.Bool("metrics", false, "print merged campaign metrics and the per-phase virtual-time breakdown")
		tlOut   = flag.String("timeline", "", "sample per-campaign progress timelines and write the canonical EMTL artifact to this file (.emtl; .txt/.json/.om siblings via -timeline-export)")
		tlExp   = flag.String("timeline-export", "", "also export the timeline as comma-separated views: growth (folded text), chrome (counter trace), openmetrics")
	)
	flag.Parse()

	opts := exps.CampaignOptions{Execs: *execs, Seed: *seed, Workers: *workers, Repeats: *repeats, Elide: *elide,
		Trace: *trace != "", Metrics: *metrics, Timeline: *tlOut != ""}
	var campaigns []*exps.Campaign
	var workerStats []sched.WorkerStats
	switch {
	case *all:
		run, err := exps.RunCampaignSet(nil, opts)
		if err != nil {
			fatal(err)
		}
		campaigns = run.Campaigns
		workerStats = run.Workers
	case *fwName != "":
		fw, err := embsan.BuildFirmware(*fwName)
		if err != nil {
			fatal(err)
		}
		run, err := exps.RunCampaignSet([]*firmware.Firmware{fw}, opts)
		if err != nil {
			fatal(err)
		}
		campaigns = run.Campaigns
		workerStats = run.Workers
	default:
		fatal(fmt.Errorf("need -firmware or -all"))
	}

	if *outDir != "" {
		for _, c := range campaigns {
			dir := filepath.Join(*outDir, sanitizeName(c.Firmware.Name))
			if err := c.Raw.SaveArtifacts(dir, c.Firmware.Image); err != nil {
				fatal(err)
			}
			fmt.Printf("artifacts saved to %s\n", dir)
		}
	}

	if *trace != "" {
		data := obs.ChromeTrace(exps.JobTraces(campaigns))
		if err := os.WriteFile(*trace, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d bytes)\n", *trace, len(data))
	}
	if *tlOut != "" {
		jobs := exps.JobTimelines(campaigns)
		data := timeline.Encode(jobs)
		if err := os.WriteFile(*tlOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline written to %s (%d bytes, %d campaigns)\n", *tlOut, len(data), len(jobs))
		base := strings.TrimSuffix(*tlOut, filepath.Ext(*tlOut))
		for _, view := range strings.Split(*tlExp, ",") {
			var out []byte
			var path string
			switch strings.TrimSpace(view) {
			case "":
				continue
			case "growth":
				out, path = []byte(timeline.GrowthCurve(jobs)), base+".txt"
			case "chrome":
				out, path = timeline.ChromeCounters(jobs), base+".json"
			case "openmetrics":
				out, path = timeline.OpenMetrics(jobs), base+".om"
			default:
				fatal(fmt.Errorf("unknown -timeline-export view %q (want growth, chrome, openmetrics)", view))
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("timeline view written to %s (%d bytes)\n", path, len(out))
		}
	}
	if *metrics {
		var regs []*obs.Registry
		for _, c := range campaigns {
			if c.Raw != nil {
				regs = append(regs, c.Raw.Metrics)
			}
		}
		fmt.Print(obs.Merge(regs...).Text())
		fmt.Println()
	}
	fmt.Print(exps.FormatCampaignStats(campaigns, workerStats...))
	fmt.Println()
	for _, c := range campaigns {
		for _, f := range c.Found {
			fmt.Printf("%-24s %-36s %-12s (after %d execs)\n", f.Firmware, f.Location, f.Class, f.Execs)
		}
		for _, m := range c.Missed {
			fmt.Printf("%-24s MISSED: %s\n", c.Firmware.Name, m)
		}
	}
	total := 0
	for _, c := range campaigns {
		total += len(c.Found)
	}
	fmt.Printf("\n%d bugs found across %d firmware\n", total, len(campaigns))
	_ = firmware.Names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embsan-fuzz:", err)
	os.Exit(1)
}
