// Command embsan-fuzz runs an EMBSAN-assisted fuzzing campaign against one
// bundled firmware, mirroring the paper's Table 3/4 pipeline: boot, probe,
// attach the sanitizer runtime, then drive the Syzkaller- or Tardis-style
// frontend until the execution budget is exhausted.
//
// Usage:
//
//	embsan-fuzz -firmware OpenWRT-bcm63xx [-execs 30000] [-seed 7]
//	embsan-fuzz -all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"embsan"
	"embsan/internal/exps"
	"embsan/internal/guest/firmware"
)

func sanitizeName(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, n)
}

func main() {
	var (
		fwName = flag.String("firmware", "", "bundled firmware name")
		all    = flag.Bool("all", false, "fuzz every Table 1 firmware")
		execs  = flag.Int("execs", 30000, "execution budget per firmware")
		seed   = flag.Int64("seed", 7, "campaign RNG seed")
		outDir = flag.String("out", "", "save corpus and crash artifacts under this directory")
	)
	flag.Parse()

	opts := exps.CampaignOptions{Execs: *execs, Seed: *seed}
	var campaigns []*exps.Campaign
	switch {
	case *all:
		cs, err := exps.RunAllCampaigns(opts)
		if err != nil {
			fatal(err)
		}
		campaigns = cs
	case *fwName != "":
		fw, err := embsan.BuildFirmware(*fwName)
		if err != nil {
			fatal(err)
		}
		c, err := exps.RunCampaign(fw, opts)
		if err != nil {
			fatal(err)
		}
		campaigns = []*exps.Campaign{c}
	default:
		fatal(fmt.Errorf("need -firmware or -all"))
	}

	if *outDir != "" {
		for _, c := range campaigns {
			dir := filepath.Join(*outDir, sanitizeName(c.Firmware.Name))
			if err := c.Raw.SaveArtifacts(dir, c.Firmware.Image); err != nil {
				fatal(err)
			}
			fmt.Printf("artifacts saved to %s\n", dir)
		}
	}

	fmt.Print(exps.FormatCampaignStats(campaigns))
	fmt.Println()
	for _, c := range campaigns {
		for _, f := range c.Found {
			fmt.Printf("%-24s %-36s %-12s (after %d execs)\n", f.Firmware, f.Location, f.Class, f.Execs)
		}
		for _, m := range c.Missed {
			fmt.Printf("%-24s MISSED: %s\n", c.Firmware.Name, m)
		}
	}
	total := 0
	for _, c := range campaigns {
		total += len(c.Found)
	}
	fmt.Printf("\n%d bugs found across %d firmware\n", total, len(campaigns))
	_ = firmware.Names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embsan-fuzz:", err)
	os.Exit(1)
}
