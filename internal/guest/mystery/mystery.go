// Package mystery is the 5th guest personality: a binary-only firmware for
// an unknown board, the ground truth the static rehosting pipeline is tested
// against. Unlike the other closed guest (vxworks), it speaks to none of the
// platform devices and issues no hypercalls — all of its I/O goes through a
// foreign MMIO block at 0xF100_0000 that does not exist on a stock machine,
// so the image faults on boot unless a rehosted device is synthesized from
// the binary alone. The firmware carries a custom bump-plus-freelist
// allocator (for the Prober to classify behaviourally), a PC-relative
// service dispatch through a self-relative data table (the CFG-recovery gap
// of the non-mips frontends), and two seeded heap bugs.
package mystery

import (
	"fmt"

	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

const (
	rZ  = isa.RegZero
	rRA = isa.RegRA
	rSP = isa.RegSP
	rA0 = isa.RegA0
	rA1 = isa.RegA1
	rA2 = isa.RegA2
	rA3 = isa.RegA3
	rA4 = isa.RegA4
	rA5 = isa.RegA5
	rA6 = isa.RegA6
	rT0 = isa.RegT0
	rT1 = isa.RegT1
)

// The foreign MMIO block. These constants are the ground truth the lifted
// register map is compared against in tests; the lifter never sees them.
const (
	DeviceBase = 0xF100_0000

	RegClkStatus = DeviceBase + 0x00 // boot poll: firmware waits for bit 0
	RegCtrl      = DeviceBase + 0x04 // boot-time control writes
	RegConsole   = DeviceBase + 0x08 // write-only byte console
	RegRxStatus  = DeviceBase + 0x10 // input poll: nonzero when a frame is pending
	RegRxLen     = DeviceBase + 0x14 // pending frame length
	RegDone      = DeviceBase + 0x18 // completion: result code write ends the frame
	Window       = DeviceBase + 0x1000
	WindowSize   = 0x1000
)

// StackTop is the materialised boot stack pointer (no stack symbol survives
// in the stripped binary; the lifter must recover it from the entry block).
const StackTop = 0x0010_0000

const poolSize = 64 << 10

// li32 converts a full 32-bit address to the signed immediate Li takes.
func li32(v uint32) int32 { return int32(v) }

// Service selector: the low two bits of the first frame byte index the
// dispatch table.
const (
	svcNop  = 0x40
	svcEcho = 0x41
	svcCfg  = 0x42
	svcSess = 0x43
)

// Bug describes one seeded bug with its triggering frame.
type Bug struct {
	Fn       string
	Location string
	Type     san.BugType
	Trigger  []byte
}

// Firmware is a built (and stripped) mystery image.
type Firmware struct {
	Image *kasm.Image // stripped: what the rehosting pipeline gets
	// FullImage keeps the symbols for ground-truth verification in tests.
	FullImage *kasm.Image
	Bugs      []Bug
	Seeds     [][]byte
}

// Build assembles and strips the firmware. The board is closed: mode is
// always SanNone (EMBSAN-D through rehosting).
func Build(name string, arch isa.Arch) (*Firmware, error) {
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: kasm.SanNone})
	emitBoot(b)
	emitConsole(b)
	emitAlloc(b)
	emitLoop(b)
	emitServices(b)

	full, err := b.Link(name)
	if err != nil {
		return nil, fmt.Errorf("mystery: build %s: %w", name, err)
	}

	// cfg frame: [svc, rsv, payload...]. The handler copies the whole
	// payload into a 24-byte heap buffer, trusting it to fit.
	cfgTrig := append([]byte{svcCfg, 0}, make([]byte, 32)...)
	// sess frame: [svc, op, flag]. Flag 0xDD frees the session and then
	// writes a field through the stale pointer.
	sessTrig := []byte{svcSess, 1, 0xDD}

	return &Firmware{
		Image:     full.Strip(),
		FullImage: full,
		Bugs: []Bug{
			{Fn: "mys_cfg", Location: "cfg_store", Type: san.BugOOB, Trigger: cfgTrig},
			{Fn: "mys_sess", Location: "sess_close", Type: san.BugUAF, Trigger: sessTrig},
		},
		Seeds: [][]byte{
			{svcEcho, 1, 2, 3, 4, 5},
			append([]byte{svcCfg, 8}, []byte{1, 2, 3, 4, 5, 6, 7, 8}...),
			{svcSess, 1, 0},
			{svcNop, 0},
		},
	}, nil
}

func emitBoot(b *kasm.Builder) {
	b.Asciz("mys_banner", "mys v1\n")

	b.Func("_start")
	b.Li(rSP, li32(StackTop))
	b.Call("mys_init")
	b.Call("mys_loop")
	b.HALT()

	b.Func("mys_init")
	b.Prologue(16)
	// Wait for the clock/PLL to lock: the boot status poll a synthesized
	// device must satisfy or the firmware never reaches its main loop.
	b.Li(rT0, li32(RegClkStatus))
	b.Label("init.clkwait")
	b.YIELD()
	b.LW(rT1, rT0, 0)
	b.BEQZ(rT1, "init.clkwait")
	// Bring the block out of reset (control writes a device may absorb).
	b.Li(rT1, 3)
	b.SW(rT1, rT0, 4)
	b.Li(rT1, 1)
	b.SW(rT1, rT0, 4)
	b.La(rA0, "mys_banner")
	b.Call("mys_puts")
	// Allocator init + boot allocations: the behavioural observations the
	// closed-mode Prober classifies the allocator from.
	b.La(rT0, "mys_cur")
	b.SW(rZ, rT0, 0)
	b.La(rT0, "mys_fl")
	b.SW(rZ, rT0, 0)
	b.Li(rA0, 40)
	b.Call("mys_alloc")
	b.Li(rA0, 72)
	b.Call("mys_alloc")
	b.SW(rA0, rSP, 0)
	b.Li(rA0, 24)
	b.Call("mys_alloc")
	b.Li(rA0, 56)
	b.Call("mys_alloc")
	b.LW(rA0, rSP, 0)
	b.Call("mys_free")
	b.Epilogue(16)
}

func emitConsole(b *kasm.Builder) {
	// mys_puts(a0 = NUL-terminated string): bytes out the foreign console.
	b.Func("mys_puts")
	b.Li(rT0, li32(RegConsole))
	b.Label("puts.loop")
	b.LBU(rT1, rA0, 0)
	b.BEQZ(rT1, "puts.done")
	b.SB(rT1, rT0, 0)
	b.ADDI(rA0, rA0, 1)
	b.J("puts.loop")
	b.Label("puts.done")
	b.Ret()
}

// emitAlloc emits the custom allocator: a bump cursor over a static pool
// with a first-fit singly linked free list. Block header: word 0 free-list
// link, word 4 total block size.
func emitAlloc(b *kasm.Builder) {
	b.GlobalAlign("mys_pool", poolSize, 8)
	b.GlobalRaw("mys_cur", 4)
	b.GlobalRaw("mys_fl", 4)

	// mys_alloc(a0 = size) -> a0 = ptr or 0.
	b.Func("mys_alloc")
	b.ADDI(rT0, rA0, 15)
	b.ANDI(rT0, rT0, -8) // total incl. 8-byte header, 8-aligned
	b.La(rA2, "mys_fl")
	b.LW(rA3, rA2, 0)
	b.Label("alloc.walk")
	b.BEQZ(rA3, "alloc.bump")
	b.LW(rT1, rA3, 4)
	b.BGEU(rT1, rT0, "alloc.reuse")
	b.MV(rA2, rA3)
	b.LW(rA3, rA3, 0)
	b.J("alloc.walk")
	b.Label("alloc.reuse")
	b.LW(rA4, rA3, 0)
	b.SW(rA4, rA2, 0)
	b.ADDI(rA0, rA3, 8)
	b.Ret()
	b.Label("alloc.bump")
	b.La(rA2, "mys_cur")
	b.LW(rA3, rA2, 0)
	b.ADD(rA4, rA3, rT0)
	b.Li(rT1, poolSize)
	b.BLTU(rT1, rA4, "alloc.fail")
	b.SW(rA4, rA2, 0)
	b.La(rA4, "mys_pool")
	b.ADD(rA3, rA4, rA3)
	b.SW(rT0, rA3, 4)
	b.ADDI(rA0, rA3, 8)
	b.Ret()
	b.Label("alloc.fail")
	b.Li(rA0, 0)
	b.Ret()

	// mys_free(a0 = ptr).
	b.Func("mys_free")
	b.BEQZ(rA0, "free.out")
	b.ADDI(rT0, rA0, -8)
	b.La(rA2, "mys_fl")
	b.LW(rA3, rA2, 0)
	b.SW(rA3, rT0, 0)
	b.SW(rT0, rA2, 0)
	b.Label("free.out")
	b.Ret()
}

// emitLoop emits the main service loop: poll for a frame, copy it out of
// the device window into a heap buffer (the varying-address MMIO reads a
// lifter recovers the window from), dispatch on the low bits of the first
// byte through a self-relative table (PC-relative toolchain idiom), and
// acknowledge through the done register.
func emitLoop(b *kasm.Builder) {
	b.DataWordRel("mys_tab", []string{"mys_nop", "mys_echo", "mys_cfg", "mys_sess"})

	b.Func("mys_loop")
	b.ADDI(rSP, rSP, -32) // never returns; scratch frame only
	b.Li(rA6, li32(RegRxStatus))
	b.Label("loop.poll")
	b.YIELD()
	b.LW(rT0, rA6, 0)
	b.BEQZ(rT0, "loop.poll")
	b.LW(rA1, rA6, 4) // frame length
	b.BEQZ(rA1, "loop.ack0")
	b.SW(rA1, rSP, 4)
	b.MV(rA0, rA1)
	b.Call("mys_alloc") // frame buffer
	b.BEQZ(rA0, "loop.ack0")
	b.SW(rA0, rSP, 8)
	// Copy the frame out of the rx window.
	b.Li(rA5, li32(Window))
	b.MV(rT0, rA0)
	b.LW(rT1, rSP, 4)
	b.ADD(rT1, rA0, rT1)
	b.Label("loop.copy")
	b.BGEU(rT0, rT1, "loop.parsed")
	b.LBU(rA2, rA5, 0)
	b.SB(rA2, rT0, 0)
	b.ADDI(rA5, rA5, 1)
	b.ADDI(rT0, rT0, 1)
	b.J("loop.copy")
	b.Label("loop.parsed")
	b.LW(rA0, rSP, 8)
	b.LBU(rT0, rA0, 0) // service byte
	b.ANDI(rT0, rT0, 3)
	b.SLLI(rT0, rT0, 2)
	b.LaPC(rA3, "mys_tab")
	b.ADD(rT0, rA3, rT0)
	b.LW(rT0, rT0, 0)    // self-relative entry
	b.ADD(rT0, rA3, rT0) // + table base (mod 2^32)
	b.LW(rA1, rSP, 4)
	b.JALR(rRA, rT0, 0) // handler(a0 = frame, a1 = len) -> a0 = result
	b.SW(rA0, rSP, 12)
	b.LW(rA0, rSP, 8)
	b.Call("mys_free")
	b.LW(rA0, rSP, 12)
	b.SW(rA0, rA6, 8) // done register
	b.J("loop.poll")
	b.Label("loop.ack0")
	b.Li(rA0, 0)
	b.SW(rA0, rA6, 8)
	b.J("loop.poll")
}

func emitServices(b *kasm.Builder) {
	// mys_nop(a0 = frame, a1 = len): ignore.
	b.Func("mys_nop")
	b.Li(rA0, 0)
	b.Ret()

	// mys_echo: checksum the payload.
	b.Func("mys_echo")
	b.ADDI(rT0, rA0, 1)
	b.ADD(rT1, rA0, rA1)
	b.Li(rA0, 0)
	b.Label("echo.loop")
	b.BGEU(rT0, rT1, "echo.done")
	b.LBU(rA2, rT0, 0)
	b.ADD(rA0, rA0, rA2)
	b.ADDI(rT0, rT0, 1)
	b.J("echo.loop")
	b.Label("echo.done")
	b.Ret()

	// mys_cfg: copy the frame payload (frame[2:len]) into a 24-byte config
	// block. The reads stay inside the frame, but the payload length is
	// trusted to fit the block — the seeded heap OOB write.
	b.Func("mys_cfg")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.Li(rT0, 2)
	b.BLTU(rA1, rT0, "cfg.out")
	b.Li(rA0, 24)
	b.Call("mys_alloc")
	b.BEQZ(rA0, "cfg.out")
	b.SW(rA0, rSP, 8)
	b.LW(rA3, rSP, 0)
	b.LW(rA2, rSP, 4)
	b.ADDI(rA2, rA2, -2) // payload length, trusted to fit the block
	b.MV(rT0, rA0)       // dst cursor
	b.ADDI(rT1, rA3, 2)
	b.ADD(rA4, rT1, rA2)
	b.Label("cfg.copy")
	b.BGEU(rT1, rA4, "cfg.done")
	b.LBU(rA5, rT1, 0)
	b.SB(rA5, rT0, 0)
	b.ADDI(rT0, rT0, 1)
	b.ADDI(rT1, rT1, 1)
	b.J("cfg.copy")
	b.Label("cfg.done")
	b.LW(rA0, rSP, 8)
	b.Call("mys_free")
	b.Label("cfg.out")
	b.Li(rA0, 1)
	b.Epilogue(32)

	// mys_sess: open a 40-byte session. Flag byte 0xDD takes the "abort"
	// path that frees the session and then stamps its state field — the
	// seeded use-after-free write.
	b.Func("mys_sess")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.Li(rT0, 3)
	b.BLTU(rA1, rT0, "sess.out")
	b.Li(rA0, 40)
	b.Call("mys_alloc")
	b.BEQZ(rA0, "sess.out")
	b.SW(rA0, rSP, 8)
	b.Li(rT0, 0x7E)
	b.SW(rT0, rA0, 0)
	b.LW(rA3, rSP, 0)
	b.LBU(rT0, rA3, 2)
	b.Li(rT1, 0xDD)
	b.BNE(rT0, rT1, "sess.close")
	b.LW(rA0, rSP, 8)
	b.Call("mys_free")
	b.LW(rT0, rSP, 8)
	b.Li(rT1, 0x41)
	b.SW(rT1, rT0, 4) // write through the freed session
	b.J("sess.out")
	b.Label("sess.close")
	b.LW(rA0, rSP, 8)
	b.Call("mys_free")
	b.Label("sess.out")
	b.Li(rA0, 2)
	b.Epilogue(32)
}

// Device returns the hand-written ground-truth bridge for the foreign MMIO
// block: what a correctly synthesized rehost device must behave like. It
// forwards input-path registers to the platform mailbox, the console to the
// UART, and absorbs control writes. Tests use it to validate the guest
// independently of the lifter.
func Device(m *emu.Machine) emu.Device { return &refDevice{m: m} }

type refDevice struct{ m *emu.Machine }

func (d *refDevice) Name() string { return "mystery-ref" }
func (d *refDevice) Contains(addr uint32) bool {
	return addr >= DeviceBase && addr < Window+WindowSize
}

func (d *refDevice) Read(addr, size uint32) uint32 {
	switch {
	case addr >= Window:
		return d.m.Mailbox.Read(emu.MailboxData+(addr-Window), size)
	case addr == RegClkStatus:
		return 1
	case addr == RegRxStatus:
		d.m.MarkReady()
		return d.m.Mailbox.Read(emu.MailboxBase, size)
	case addr == RegRxLen:
		return d.m.Mailbox.Read(emu.MailboxBase+4, size)
	}
	return 0
}

func (d *refDevice) Write(addr, size, val uint32) {
	switch addr {
	case RegConsole:
		d.m.UART.Write(emu.UARTBase, 1, val)
	case RegDone:
		d.m.Mailbox.Write(emu.MailboxBase+8, size, val)
	}
}

func (d *refDevice) Reset() {}
