package mystery

import (
	"strings"
	"testing"

	"embsan/internal/emu"
	"embsan/internal/isa"
)

// bootWithRef builds the firmware for arch and boots the stripped image on
// a machine carrying only the ground-truth bridge device.
func bootWithRef(t *testing.T, arch isa.Arch) (*Firmware, *emu.Machine) {
	t.Helper()
	fw, err := Build("Mystery", arch)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(fw.Image, emu.Config{Devices: []emu.DeviceFactory{Device}})
	if err != nil {
		t.Fatal(err)
	}
	m.ReadyHook = func(m *emu.Machine) { m.RequestStop() }
	if r := m.Run(50_000_000); r != emu.StopRequest {
		t.Fatalf("boot stopped with %v (fault %v), ready=%v", r, m.Fault(), m.ReadyReached)
	}
	if !m.ReadyReached {
		t.Fatal("boot finished without reaching the input poll")
	}
	return fw, m
}

func TestBootsOnAllFrontends(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		t.Run(arch.String(), func(t *testing.T) {
			_, m := bootWithRef(t, arch)
			if out := m.UART.String(); !strings.Contains(out, "mys v1") {
				t.Fatalf("console missing banner: %q", out)
			}
		})
	}
}

// exec posts one frame and runs the machine until the guest acknowledges it
// through the done register.
func exec(t *testing.T, m *emu.Machine, frame []byte) uint32 {
	t.Helper()
	m.ClearStop()
	m.Mailbox.Post(frame)
	if r := m.Run(50_000_000); r != emu.StopRequest {
		t.Fatalf("exec stopped with %v (fault %v)", r, m.Fault())
	}
	done, code := m.Mailbox.Done()
	if !done {
		t.Fatal("frame not acknowledged")
	}
	return code
}

func TestServiceDispatchThroughRelativeTable(t *testing.T) {
	_, m := bootWithRef(t, isa.ArchX86E)

	// Echo: the handler must be reached through the self-relative table and
	// return the payload checksum.
	frame := []byte{svcEcho, 10, 20, 30}
	if code := exec(t, m, frame); code != 60 {
		t.Fatalf("echo returned %d, want 60", code)
	}
	// Nop: distinct table slot, distinct result.
	if code := exec(t, m, []byte{svcNop, 9, 9}); code != 0 {
		t.Fatalf("nop returned %d, want 0", code)
	}
	// Benign cfg and sess frames complete without faulting (the seeded bugs
	// are silent without a sanitizer attached — both stay inside the pool).
	if code := exec(t, m, append([]byte{svcCfg, 8}, make([]byte, 8)...)); code != 1 {
		t.Fatalf("cfg returned %d, want 1", code)
	}
	if code := exec(t, m, []byte{svcSess, 1, 0}); code != 2 {
		t.Fatalf("sess returned %d, want 2", code)
	}
}

func TestStrippedImageHasNoMetadata(t *testing.T) {
	fw, err := Build("Mystery", isa.ArchX86E)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Image.Symbols) != 0 || !fw.Image.Stripped {
		t.Fatal("distributed image must be stripped")
	}
	if len(fw.Image.Meta.AllocFuncs) != 0 || len(fw.Image.Meta.Globals) != 0 {
		t.Fatal("distributed image must carry no link metadata")
	}
	if len(fw.FullImage.Symbols) == 0 {
		t.Fatal("ground-truth image must keep its symbols")
	}
}

func TestBootFaultsWithoutBridgeDevice(t *testing.T) {
	fw, err := Build("Mystery", isa.ArchX86E)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(fw.Image, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Run(1_000_000); r != emu.StopFault {
		t.Fatalf("stock machine ran the foreign image: %v", r)
	}
	if f := m.Fault(); f == nil || f.Kind != emu.FaultUnmapped || f.Addr < DeviceBase {
		t.Fatalf("expected unmapped fault in the foreign block, got %v", m.Fault())
	}
}
