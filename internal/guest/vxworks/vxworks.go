// Package vxworks is the VxWorks guest personality modelled on the TP-Link
// WDR-7660 router of Table 1. It is distributed as closed-source firmware:
// Build returns a stripped image, so the Prober has to classify the
// memPartAlloc/memPartFree allocator behaviourally. The services are the
// two the paper found bugs in — a PPPoE daemon and a DHCP server — both
// parsing attacker-controlled packets with length fields, plus a benign
// forwarding path.
package vxworks

import (
	"fmt"

	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

const (
	rZ  = glib.Z
	rSP = glib.SP
	rA0 = glib.A0
	rA1 = glib.A1
	rA2 = glib.A2
	rA3 = glib.A3
	rA4 = glib.A4
	rT0 = glib.T0
	rT1 = glib.T1
)

const partSize = 96 << 10

// Bug describes one seeded bug with its triggering packet.
type Bug struct {
	Fn       string
	Location string
	Type     san.BugType
	Trigger  []byte
}

// Firmware is a built (and stripped) TP-Link-like image.
type Firmware struct {
	Image *kasm.Image // stripped: closed-source distribution
	// FullImage keeps the symbols for ground-truth verification in tests.
	FullImage *kasm.Image
	Bugs      []Bug
	Seeds     [][]byte
}

// Packet service selector (first byte).
const (
	svcPPPoE = 0x50
	svcDHCP  = 0x44
	svcFwd   = 0x46
)

// Build assembles and strips the firmware. VxWorks firmware cannot be
// rebuilt with instrumentation, so mode is always SanNone (EMBSAN-D).
func Build(name string, arch isa.Arch) (*Firmware, error) {
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: kasm.SanNone})
	glib.AddBoot(b, glib.BootConfig{InitFn: "usrRoot", MainFn: "executor_loop"})
	glib.AddLib(b)
	emitMemPart(b)
	emitInit(b)
	emitServices(b)
	glib.AddByteExecutor(b, "net_input")

	full, err := b.Link(name)
	if err != nil {
		return nil, fmt.Errorf("vxworks: build %s: %w", name, err)
	}
	// A valid PPPoE discovery frame: ver/type 0x11, tag list with a
	// host-uniq tag of 8 bytes.
	pppoeSeed := []byte{svcPPPoE, 0x11, 0, 0,
		0x03, 0x01, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	// A valid DHCP request: op 1, xid, one 4-byte option 50.
	dhcpSeed := []byte{svcDHCP, 1, 0xAA, 0xBB, 50, 4, 10, 0, 0, 1, 0xFF}

	// The triggers oversize a length field past the 64-byte (PPPoE) and
	// 16-byte (DHCP) service buffers.
	pppoeTrig := []byte{svcPPPoE, 0x11, 0, 0, 0x05, 0x01, 80, 0}
	pppoeTrig = append(pppoeTrig, make([]byte, 80)...)
	dhcpTrig := []byte{svcDHCP, 1, 0xAA, 0xBB, 53, 24}
	dhcpTrig = append(dhcpTrig, make([]byte, 24)...)

	return &Firmware{
		Image:     full.Strip(),
		FullImage: full,
		Bugs: []Bug{
			{Fn: "pppoed_input", Location: "pppoed", Type: san.BugOOB, Trigger: pppoeTrig},
			{Fn: "dhcpsd_input", Location: "dhcpsd", Type: san.BugOOB, Trigger: dhcpTrig},
		},
		Seeds: [][]byte{pppoeSeed, dhcpSeed, {svcFwd, 9, 9, 9, 1, 2, 3, 4}},
	}, nil
}

func emitInit(b *kasm.Builder) {
	b.Func("usrRoot")
	b.Prologue(16)
	b.Call("memPartInit")
	// Boot allocations (service control blocks): these give the closed-
	// source Prober the observations its classifier needs.
	alloc := func(size int32) {
		b.La(rA0, "memPartPool")
		b.Li(rA1, size)
		b.Call("memPartAlloc")
	}
	alloc(64)
	alloc(96)
	alloc(48)
	b.SW(rA0, rSP, 0)
	alloc(32)
	// Free one of them so the classifier can pair alloc/free.
	b.LW(rA1, rSP, 0)
	b.La(rA0, "memPartPool")
	b.Call("memPartFree")
	b.Epilogue(16)
}

// emitMemPart emits the VxWorks-style memory partition allocator: a bump
// cursor with a singly linked per-size-agnostic free list consulted first.
func emitMemPart(b *kasm.Builder) {
	b.GlobalAlign("memPartPool", partSize, 8)
	b.GlobalRaw("memPartCursor", 4)
	b.GlobalRaw("memPartFreeList", 4)

	b.Func("memPartInit")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(rT0, "memPartCursor")
		b.SW(rZ, rT0, 0)
		b.La(rT0, "memPartFreeList")
		b.SW(rZ, rT0, 0)
	})
	b.La(rA0, "memPartPool")
	b.LUI(rA1, partSize>>12)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)

	// memPartAlloc(a0 = part, a1 = size) -> a0 = ptr or 0.
	// Block header: one word holding the block's total size.
	b.Func("memPartAlloc")
	b.NoSan(func() {
		b.ADDI(rT0, rA1, 15)
		b.ANDI(rT0, rT0, -8) // total incl. 8-byte header (padded)
		// First-fit from the free list (exact-or-larger).
		b.La(rA2, "memPartFreeList")
		b.LW(rA3, rA2, 0)
		b.Label("memPartAlloc.walk")
		b.BEQZ(rA3, "memPartAlloc.bump")
		b.LW(rT1, rA3, 4) // stored size
		b.BGEU(rT1, rT0, "memPartAlloc.reuse")
		b.ADDI(rA2, rA3, 0)
		b.LW(rA3, rA3, 0)
		b.J("memPartAlloc.walk")
		b.Label("memPartAlloc.reuse")
		b.LW(rA4, rA3, 0)
		b.SW(rA4, rA2, 0)
		b.ADDI(rA0, rA3, 8)
		b.J("memPartAlloc.hook")
		b.Label("memPartAlloc.bump")
		b.La(rA2, "memPartCursor")
		b.LW(rA3, rA2, 0)
		b.ADD(rA4, rA3, rT0)
		b.LUI(rT1, partSize>>12)
		b.BLTU(rT1, rA4, "memPartAlloc.fail")
		b.SW(rA4, rA2, 0)
		b.La(rA4, "memPartPool")
		b.ADD(rA3, rA4, rA3)
		b.SW(rT0, rA3, 4) // header: total size
		b.ADDI(rA0, rA3, 8)
		b.Label("memPartAlloc.hook")
	})
	b.SanAllocHook()
	b.Ret()
	b.NoSan(func() {
		b.Label("memPartAlloc.fail")
		b.Li(rA0, 0)
	})
	b.Ret()
	b.MarkAlloc("memPartAlloc")

	// memPartFree(a0 = part, a1 = ptr).
	b.Func("memPartFree")
	b.Prologue(16)
	b.NoSan(func() {
		b.BEQZ(rA1, "memPartFree.out")
		b.SW(rA1, rSP, 0)
		b.ADDI(rT0, rA1, -8)
		b.MV(rA0, rA1)
		b.LW(rA1, rT0, 4)
		b.ADDI(rA1, rA1, -8)
	})
	b.SanFreeHook()
	b.NoSan(func() {
		b.LW(rA1, rSP, 0)
		b.ADDI(rT0, rA1, -8)
		b.La(rA2, "memPartFreeList")
		b.LW(rA3, rA2, 0)
		b.SW(rA3, rT0, 0)
		b.SW(rT0, rA2, 0)
		b.Label("memPartFree.out")
	})
	b.Epilogue(16)
	b.MarkFree("memPartFree")
}

func emitServices(b *kasm.Builder) {
	// net_input(a0 = frame, a1 = len): service demux on the first byte.
	b.Func("net_input")
	b.Prologue(16)
	b.Li(rT0, 4)
	b.BLTU(rA1, rT0, "net.out")
	b.LBU(rT0, rA0, 0)
	b.Li(rT1, svcPPPoE)
	b.BEQ(rT0, rT1, "net.pppoe")
	b.Li(rT1, svcDHCP)
	b.BEQ(rT0, rT1, "net.dhcp")
	b.Li(rT1, svcFwd)
	b.BEQ(rT0, rT1, "net.fwd")
	b.J("net.out")
	b.Label("net.pppoe")
	b.Call("pppoed_input")
	b.J("net.out")
	b.Label("net.dhcp")
	b.Call("dhcpsd_input")
	b.J("net.out")
	b.Label("net.fwd")
	b.Call("ip_forward")
	b.Label("net.out")
	b.Li(rA0, 0)
	b.Epilogue(16)

	// pppoed_input(a0 = frame, a1 = len): walk the PPPoE tag list, copying
	// each tag payload into a 64-byte session buffer. The tag length field
	// is trusted — tags longer than the buffer overflow it (the seeded
	// Table 4 OOB).
	b.Func("pppoed_input")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.LBU(rT0, rA0, 1)
	b.Li(rT1, 0x11) // PPPoE ver/type
	b.BNE(rT0, rT1, "pppoe.out")
	b.La(rA0, "memPartPool")
	b.Li(rA1, 64)
	b.Call("memPartAlloc") // session buffer
	b.BEQZ(rA0, "pppoe.out")
	b.SW(rA0, rSP, 8)
	b.Li(rA4, 4) // tag cursor
	b.Label("pppoe.tags")
	b.LW(rA3, rSP, 4)
	b.ADDI(rA2, rA4, 4)
	b.BLTU(rA3, rA2, "pppoe.done") // need 4 header bytes
	b.LW(rT0, rSP, 0)
	b.ADD(rT0, rT0, rA4)
	b.LBU(rT1, rT0, 0) // tag type hi
	b.LBU(rA2, rT0, 2) // tag length (one byte in this dialect)
	b.SW(rA4, rSP, 12)
	// Copy the tag payload into the session buffer: length unchecked.
	b.BEQZ(rA2, "pppoe.next")
	b.LW(rA1, rSP, 0)
	b.LW(rA4, rSP, 12)
	b.ADD(rA1, rA1, rA4)
	b.ADDI(rA1, rA1, 4)
	b.LW(rA0, rSP, 8)
	b.SW(rA2, rSP, 16)
	b.Call("memcpy")
	b.LW(rA2, rSP, 16)
	b.Label("pppoe.next")
	b.LW(rA4, rSP, 12)
	b.ADD(rA4, rA4, rA2)
	b.ADDI(rA4, rA4, 4)
	b.J("pppoe.tags")
	b.Label("pppoe.done")
	b.La(rA0, "memPartPool")
	b.LW(rA1, rSP, 8)
	b.Call("memPartFree")
	b.Label("pppoe.out")
	b.Epilogue(32)

	// dhcpsd_input(a0 = frame, a1 = len): parse DHCP options into a
	// 16-byte option buffer; option 53's length is trusted (seeded OOB).
	b.Func("dhcpsd_input")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.LBU(rT0, rA0, 1)
	b.Li(rT1, 1) // BOOTREQUEST
	b.BNE(rT0, rT1, "dhcp.out")
	b.La(rA0, "memPartPool")
	b.Li(rA1, 16)
	b.Call("memPartAlloc")
	b.BEQZ(rA0, "dhcp.out")
	b.SW(rA0, rSP, 8)
	b.Li(rA4, 4) // option cursor
	b.Label("dhcp.opts")
	b.LW(rA3, rSP, 4)
	b.ADDI(rA2, rA4, 2)
	b.BLTU(rA3, rA2, "dhcp.done")
	b.LW(rT0, rSP, 0)
	b.ADD(rT0, rT0, rA4)
	b.LBU(rT1, rT0, 0) // option code
	b.Li(rA2, 0xFF)
	b.BEQ(rT1, rA2, "dhcp.done")
	b.LBU(rA2, rT0, 1) // option length — trusted
	b.SW(rA4, rSP, 12)
	b.Li(rA3, 53)
	b.BNE(rT1, rA3, "dhcp.next")
	// Copy option 53 payload into the 16-byte buffer.
	b.LW(rA1, rSP, 0)
	b.ADD(rA1, rA1, rA4)
	b.ADDI(rA1, rA1, 2)
	b.LW(rA0, rSP, 8)
	b.SW(rA2, rSP, 16)
	b.Call("memcpy")
	b.LW(rA2, rSP, 16)
	b.Label("dhcp.next")
	b.LW(rA4, rSP, 12)
	b.ADD(rA4, rA4, rA2)
	b.ADDI(rA4, rA4, 2)
	b.J("dhcp.opts")
	b.Label("dhcp.done")
	b.La(rA0, "memPartPool")
	b.LW(rA1, rSP, 8)
	b.Call("memPartFree")
	b.Label("dhcp.out")
	b.Epilogue(32)

	// ip_forward: benign — checksum the frame.
	b.Func("ip_forward")
	b.Prologue(16)
	b.MV(rT0, rA0)
	b.ADD(rT1, rA0, rA1)
	b.Li(rA0, 0)
	b.Label("fwd.loop")
	b.BGEU(rT0, rT1, "fwd.done")
	b.LBU(rA2, rT0, 0)
	b.ADD(rA0, rA0, rA2)
	b.ADDI(rT0, rT0, 1)
	b.J("fwd.loop")
	b.Label("fwd.done")
	b.Epilogue(16)
}
