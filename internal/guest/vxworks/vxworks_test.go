package vxworks

import (
	"strings"
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/probe"
	"embsan/internal/san"
)

func boot(t *testing.T, img interface{ MemTop() uint32 }) *core.Instance {
	t.Helper()
	return nil
}

func build(t *testing.T) *Firmware {
	t.Helper()
	fw, err := Build("vxworks-test", isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestShipsStripped(t *testing.T) {
	fw := build(t)
	if !fw.Image.Stripped || fw.Image.Symbols != nil {
		t.Error("closed firmware must ship stripped")
	}
	if fw.FullImage.Stripped {
		t.Error("ground-truth image lost its symbols")
	}
}

func TestClosedProbeClassification(t *testing.T) {
	fw := build(t)
	res, err := probe.Probe(fw.Image, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != probe.ModeDClosed {
		t.Fatalf("mode = %v", res.Mode)
	}
	if len(res.Platform.Allocs) != 1 {
		t.Fatalf("allocs = %+v\nnotes: %v", res.Platform.Allocs, res.Platform.Notes)
	}
	// Verify against the ground truth the tester never sees.
	gt, _ := fw.FullImage.Lookup("memPartAlloc")
	if res.Platform.Allocs[0].Entry != gt.Addr {
		t.Errorf("classified entry %#x, want %#x", res.Platform.Allocs[0].Entry, gt.Addr)
	}
	if res.Platform.Allocs[0].SizeArg != "a1" {
		t.Errorf("size arg = %s, want a1", res.Platform.Allocs[0].SizeArg)
	}
	gtFree, _ := fw.FullImage.Lookup("memPartFree")
	if len(res.Platform.Frees) != 1 || res.Platform.Frees[0].Entry != gtFree.Addr {
		t.Errorf("frees = %+v, want entry %#x", res.Platform.Frees, gtFree.Addr)
	}
}

func TestParserBugsAndBenignTraffic(t *testing.T) {
	fw := build(t)
	inst, err := core.New(core.Config{
		Image:      fw.Image,
		Sanitizers: []string{"kasan"},
		Machine:    emu.Config{MaxHarts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()

	// Benign packets: quiet.
	for i, seed := range fw.Seeds {
		inst.Restore()
		res := inst.Exec(seed, 50_000_000)
		if !res.Done || len(res.Reports) != 0 {
			t.Fatalf("seed %d: done=%v reports=%d", i, res.Done, len(res.Reports))
		}
	}
	// Malformed packets: both overflows detected, with two distinct
	// signatures even though both fire inside the shared memcpy.
	sigs := map[string]bool{}
	for _, bug := range fw.Bugs {
		inst.Restore()
		res := inst.Exec(bug.Trigger, 50_000_000)
		if len(res.Reports) == 0 {
			t.Errorf("%s not detected", bug.Fn)
			continue
		}
		r := res.Reports[0]
		if r.Bug != san.BugOOB {
			t.Errorf("%s: %v", bug.Fn, r.Bug)
		}
		if !strings.HasPrefix(r.Location, "0x") {
			t.Errorf("%s: location %q should be a raw address", bug.Fn, r.Location)
		}
		sigs[r.Signature()] = true
	}
	if len(sigs) != 2 {
		t.Errorf("signatures = %d, want 2 distinct (caller-frame disambiguation)", len(sigs))
	}
}
