package firmware

import (
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/gabi"
	"embsan/internal/kasm"
	"embsan/internal/probe"
	"embsan/internal/san"
)

func TestBuildAllTable1(t *testing.T) {
	fws, err := BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fws) != 11 {
		t.Fatalf("firmware count = %d, want 11 (Table 1)", len(fws))
	}
	if got := TotalSeededBugs(fws); got != 41 {
		t.Errorf("total seeded bugs = %d, want 41 (Table 3/4)", got)
	}
	// Table 1 properties.
	byName := map[string]*Firmware{}
	for _, fw := range fws {
		byName[fw.Name] = fw
	}
	checks := []struct {
		name, os, mode, fuzzer string
		open                   bool
	}{
		{"OpenWRT-armvirt", "Embedded Linux", "EmbSan-C", "Syzkaller", true},
		{"OpenWRT-bcm63xx", "Embedded Linux", "EmbSan-D", "Syzkaller", true},
		{"OpenWRT-x86_64", "Embedded Linux", "EmbSan-C", "Syzkaller", true},
		{"OpenHarmony-rk3566", "Embedded Linux", "EmbSan-C", "Tardis", true},
		{"OpenHarmony-stm32mp1", "LiteOS", "EmbSan-D", "Tardis", true},
		{"InfiniTime", "FreeRTOS", "EmbSan-D", "Tardis", true},
		{"TP-Link WDR-7660", "VxWorks", "EmbSan-D", "Tardis", false},
	}
	for _, c := range checks {
		fw := byName[c.name]
		if fw == nil {
			t.Fatalf("missing %s", c.name)
		}
		if fw.BaseOS != c.os || fw.InstMode != c.mode || fw.Fuzzer != c.fuzzer || fw.SourceOpen != c.open {
			t.Errorf("%s: got (%s,%s,%s,open=%v)", c.name, fw.BaseOS, fw.InstMode, fw.Fuzzer, fw.SourceOpen)
		}
	}
	// The closed-source firmware must ship stripped.
	tp := byName["TP-Link WDR-7660"]
	if !tp.Image.Stripped || tp.Image.Symbols != nil {
		t.Error("TP-Link image is not stripped")
	}
	// C-mode images must carry compile-time metadata; D-mode must not.
	if byName["OpenWRT-armvirt"].Image.Meta.Sanitize != kasm.SanEmbsanC {
		t.Error("armvirt lacks EMBSAN-C instrumentation")
	}
	if byName["OpenWRT-bcm63xx"].Image.Meta.Sanitize != kasm.SanNone {
		t.Error("bcm63xx should be an uninstrumented build")
	}
}

// bootInstance prepares a firmware under EMBSAN with the right sanitizers.
func bootInstance(t *testing.T, fw *Firmware, sanitizers []string) *core.Instance {
	t.Helper()
	inst, err := core.New(core.Config{
		Image:      fw.Image,
		Sanitizers: sanitizers,
		Machine:    emu.Config{MaxHarts: 2},
	})
	if err != nil {
		t.Fatalf("%s: %v", fw.Name, err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatalf("%s: %v", fw.Name, err)
	}
	inst.Snapshot()
	return inst
}

// TestEveryTriggerDetects replays every seeded bug's trigger under EMBSAN
// (the ground-truth check behind Tables 3 and 4). Race bugs need a longer
// campaign and are exercised separately.
func TestEveryTriggerDetects(t *testing.T) {
	fws, err := BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range fws {
		sans := []string{"kasan"}
		inst := bootInstance(t, fw, sans)
		for _, bug := range fw.Bugs {
			if bug.NeedsKCSAN {
				continue
			}
			inst.Restore()
			res := inst.Exec(bug.Trigger, 50_000_000)
			if len(res.Reports) == 0 {
				t.Errorf("%s: %s (%s) not detected (done=%v stop=%v fault=%v)",
					fw.Name, bug.Fn, bug.Location, res.Done, res.Stop, res.Fault)
				continue
			}
			got := res.Reports[0]
			if got.Bug.Short() != bug.Type.Short() {
				t.Errorf("%s: %s: class %s, want %s", fw.Name, bug.Fn, got.Bug.Short(), bug.Type.Short())
			}
		}
	}
}

// TestSeedsAreClean verifies that the initial corpus inputs run to
// completion with no reports on every firmware.
func TestSeedsAreClean(t *testing.T) {
	fws, err := BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range fws {
		inst := bootInstance(t, fw, []string{"kasan"})
		for i, seed := range fw.Seeds {
			inst.Restore()
			res := inst.Exec(seed, 50_000_000)
			if !res.Done {
				t.Errorf("%s: seed %d did not complete (stop=%v fault=%v)", fw.Name, i, res.Stop, res.Fault)
			}
			if len(res.Reports) != 0 {
				t.Errorf("%s: seed %d reported: %s", fw.Name, i, res.Reports[0].Title())
			}
		}
	}
}

// TestClosedFirmwarePipeline checks the full closed-source story: the
// stripped VxWorks image is probed behaviourally and its parser bugs are
// still caught, with raw-address reports.
func TestClosedFirmwarePipeline(t *testing.T) {
	fw, err := Build("TP-Link WDR-7660")
	if err != nil {
		t.Fatal(err)
	}
	res, err := probe.Probe(fw.Image, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != probe.ModeDClosed {
		t.Errorf("mode = %v", res.Mode)
	}
	if len(res.Platform.Allocs) == 0 {
		t.Fatalf("closed probe found no allocator; notes: %v", res.Platform.Notes)
	}
	if res.Platform.Allocs[0].SizeArg != "a1" {
		t.Errorf("memPartAlloc size arg inferred as %s, want a1", res.Platform.Allocs[0].SizeArg)
	}

	inst := bootInstance(t, fw, []string{"kasan"})
	for _, bug := range fw.Bugs {
		inst.Restore()
		r := inst.Exec(bug.Trigger, 50_000_000)
		if len(r.Reports) == 0 {
			t.Errorf("closed firmware: %s not detected", bug.Fn)
			continue
		}
		if loc := r.Reports[0].Location; len(loc) < 2 || loc[:2] != "0x" {
			t.Errorf("closed firmware should report raw addresses, got %q", loc)
		}
	}
}

// TestTable2CapabilitySplit spot-checks the syzbot corpus build in both
// modes (the exhaustive matrix lives in the experiments package).
func TestTable2CapabilitySplit(t *testing.T) {
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanEmbsanC} {
		fw, err := BuildSyzbotCorpus(mode)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := core.New(core.Config{Image: fw.Image, Sanitizers: []string{"kasan"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Boot(100_000_000); err != nil {
			t.Fatal(err)
		}
		inst.Snapshot()
		bug, _ := fw.BugByFn("string") // global OOB
		res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 50_000_000)
		detected := false
		for _, r := range res.Reports {
			if r.Bug == san.BugGlobalOOB {
				detected = true
			}
		}
		wantDetect := mode == kasm.SanEmbsanC
		if detected != wantDetect {
			t.Errorf("mode %s: global OOB detected=%v, want %v", mode, detected, wantDetect)
		}
	}
}
