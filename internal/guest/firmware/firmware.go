// Package firmware is the registry of the eleven evaluation firmware
// images of the paper's Table 1, mapping each to its base OS personality,
// architecture frontend, instrumentation mode, source availability and
// fuzzer frontend, and aggregating every seeded bug for the Table 3/4
// experiments.
package firmware

import (
	"fmt"

	"embsan/internal/emu"
	"embsan/internal/guest/elinux"
	"embsan/internal/guest/freertos"
	"embsan/internal/guest/gabi"
	"embsan/internal/guest/liteos"
	"embsan/internal/guest/vxworks"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// Frontend selects the fuzzing interface a firmware exposes.
type Frontend uint8

const (
	FrontendSyscall Frontend = iota // Syzkaller-style typed syscall programs
	FrontendBytes                   // Tardis-style raw byte inputs
)

func (f Frontend) String() string {
	if f == FrontendBytes {
		return "bytes"
	}
	return "syscall"
}

// Bug is one seeded bug, normalised across personalities.
type Bug struct {
	Fn              string
	Location        string // subsystem path as listed in Table 4
	Type            san.BugType
	Trigger         []byte // mailbox input that fires it
	NeedsKCSAN      bool
	CompileTimeOnly bool
}

// Firmware is one Table 1 row plus everything needed to test it.
type Firmware struct {
	Name       string
	BaseOS     string
	Arch       isa.Arch
	InstMode   string // "EmbSan-C" or "EmbSan-D"
	SourceOpen bool
	Fuzzer     string // "Syzkaller" or "Tardis"
	Frontend   Frontend

	Image    *kasm.Image
	Syscalls []string // syscall-frontend only
	Bugs     []Bug
	Seeds    [][]byte // initial fuzzing corpus

	// Machine carries extra emulator configuration the firmware needs to
	// boot — rehosted images attach their synthesized bridge device here.
	// Registry firmware leave it zero (the stock platform).
	Machine emu.Config
}

// Names lists the Table 1 firmware in table order.
var Names = []string{
	"OpenWRT-armvirt",
	"OpenWRT-bcm63xx",
	"OpenWRT-ipq807x",
	"OpenWRT-mt7629",
	"OpenWRT-rtl839x",
	"OpenWRT-x86_64",
	"OpenHarmony-rk3566",
	"OpenHarmony-stm32mp1",
	"OpenHarmony-stm32f407",
	"InfiniTime",
	"TP-Link WDR-7660",
}

// elinuxBoards maps the Embedded-Linux firmware to their board configs.
var elinuxBoards = map[string]elinux.Board{
	"OpenWRT-armvirt": {
		Arch: isa.ArchARM32E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"nfs_acl_decode", "nft_expr_init", "cfg80211_scan_done",
			"mvneta_rx_desc", "r8169_rx_fill", "atl1c_clean_tx"},
	},
	"OpenWRT-bcm63xx": {
		Arch: isa.ArchMIPS32E, Mode: kasm.SanNone,
		BugFns: []string{"btusb_recv_bulk", "bcm2835_dma_prep", "ahc_parse_msg",
			"btrfs_lookup_csum", "brcmf_fweh_event"},
	},
	"OpenWRT-ipq807x": {
		Arch: isa.ArchARM32E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"bcmgenet_rx_refill", "bcmgenet_xmit", "tcf_action_init",
			"ath10k_htt_rx_pop", "fuse_dev_splice"},
	},
	"OpenWRT-mt7629": {
		Arch: isa.ArchARM32E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"mtk_tx_map", "nfs_readdir_entry", "skb_clone_frag", "mtk_cqdma_issue"},
	},
	"OpenWRT-rtl839x": {
		Arch: isa.ArchMIPS32E, Mode: kasm.SanNone,
		BugFns: []string{"r8169_rx_fill", "btrtl_setup", "nr_insert_socket"},
	},
	"OpenWRT-x86_64": {
		Arch: isa.ArchX86E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"iommu_map_sg", "r8169_rx_fill", "stmmac_rx_buf", "iwl_mvm_scan",
			"b43_dma_rx", "btrfs_sync_log", "btrfs_drop_extents"},
	},
	"OpenHarmony-rk3566": {
		Arch: isa.ArchARM32E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"nfs_idmap_lookup", "nfs_acl_decode", "route4_change"},
	},
}

// Build constructs one registry firmware by name.
func Build(name string) (*Firmware, error) {
	switch name {
	case "OpenWRT-armvirt", "OpenWRT-bcm63xx", "OpenWRT-ipq807x",
		"OpenWRT-mt7629", "OpenWRT-rtl839x", "OpenWRT-x86_64", "OpenHarmony-rk3566":
		board := elinuxBoards[name]
		board.Name = name
		fw, err := elinux.Build(board)
		if err != nil {
			return nil, err
		}
		out := &Firmware{
			Name: name, BaseOS: "Embedded Linux", Arch: board.Arch,
			InstMode: instMode(board.Mode), SourceOpen: true,
			Fuzzer:   fuzzerFor(name),
			Frontend: FrontendSyscall,
			Image:    fw.Image, Syscalls: fw.Syscalls,
			Seeds: elinuxSeeds(fw),
		}
		for _, bug := range fw.Bugs {
			out.Bugs = append(out.Bugs, Bug{
				Fn:              bug.Def.Fn,
				Location:        bug.Def.Module,
				Type:            bug.Def.BugType(),
				Trigger:         gabi.Prog{bug.Trigger()}.Encode(),
				NeedsKCSAN:      bug.Def.NeedsKCSAN(),
				CompileTimeOnly: bug.Def.NeedsCompileTime(),
			})
		}
		return out, nil

	case "OpenHarmony-stm32mp1":
		fw, err := liteos.Build(name, isa.ArchARM32E, kasm.SanNone, liteos.BoardBugs{VFSOpen: true})
		if err != nil {
			return nil, err
		}
		return liteosFirmware(name, isa.ArchARM32E, fw), nil

	case "OpenHarmony-stm32f407":
		fw, err := liteos.Build(name, isa.ArchMIPS32E, kasm.SanNone, liteos.BoardBugs{VFSLink: true, FAT: true})
		if err != nil {
			return nil, err
		}
		return liteosFirmware(name, isa.ArchMIPS32E, fw), nil

	case "InfiniTime":
		fw, err := freertos.Build(name, isa.ArchARM32E, kasm.SanNone)
		if err != nil {
			return nil, err
		}
		out := &Firmware{
			Name: name, BaseOS: "FreeRTOS", Arch: isa.ArchARM32E,
			InstMode: "EmbSan-D", SourceOpen: true, Fuzzer: "Tardis",
			Frontend: FrontendBytes, Image: fw.Image, Seeds: fw.Seeds,
		}
		for _, bug := range fw.Bugs {
			out.Bugs = append(out.Bugs, Bug{
				Fn: bug.Fn, Location: bug.Location, Type: bug.Type, Trigger: bug.Trigger,
			})
		}
		return out, nil

	case "TP-Link WDR-7660":
		fw, err := vxworks.Build(name, isa.ArchARM32E)
		if err != nil {
			return nil, err
		}
		out := &Firmware{
			Name: name, BaseOS: "VxWorks", Arch: isa.ArchARM32E,
			InstMode: "EmbSan-D", SourceOpen: false, Fuzzer: "Tardis",
			Frontend: FrontendBytes, Image: fw.Image, Seeds: fw.Seeds,
		}
		for _, bug := range fw.Bugs {
			out.Bugs = append(out.Bugs, Bug{
				Fn: bug.Fn, Location: bug.Location, Type: bug.Type, Trigger: bug.Trigger,
			})
		}
		return out, nil
	}
	return nil, fmt.Errorf("firmware: unknown firmware %q", name)
}

// BuildVariant rebuilds a registry firmware with a different sanitize mode
// — the overhead experiments need bare and natively-sanitized builds of
// every open-source board. The closed-source TP-Link image only exists
// uninstrumented.
func BuildVariant(name string, mode kasm.SanitizeMode) (*Firmware, error) {
	switch name {
	case "OpenWRT-armvirt", "OpenWRT-bcm63xx", "OpenWRT-ipq807x",
		"OpenWRT-mt7629", "OpenWRT-rtl839x", "OpenWRT-x86_64", "OpenHarmony-rk3566":
		board := elinuxBoards[name]
		board.Name = name + "+" + mode.String()
		board.Mode = mode
		fw, err := elinux.Build(board)
		if err != nil {
			return nil, err
		}
		return &Firmware{
			Name: board.Name, BaseOS: "Embedded Linux", Arch: board.Arch,
			InstMode: instMode(mode), SourceOpen: true, Fuzzer: fuzzerFor(name),
			Frontend: FrontendSyscall, Image: fw.Image, Syscalls: fw.Syscalls,
			Seeds: elinuxSeeds(fw),
		}, nil
	case "OpenHarmony-stm32mp1":
		fw, err := liteos.Build(name+"+"+mode.String(), isa.ArchARM32E, mode, liteos.BoardBugs{VFSOpen: true})
		if err != nil {
			return nil, err
		}
		return liteosFirmware(name+"+"+mode.String(), isa.ArchARM32E, fw), nil
	case "OpenHarmony-stm32f407":
		fw, err := liteos.Build(name+"+"+mode.String(), isa.ArchMIPS32E, mode, liteos.BoardBugs{VFSLink: true, FAT: true})
		if err != nil {
			return nil, err
		}
		return liteosFirmware(name+"+"+mode.String(), isa.ArchMIPS32E, fw), nil
	case "InfiniTime":
		fw, err := freertos.Build(name+"+"+mode.String(), isa.ArchARM32E, mode)
		if err != nil {
			return nil, err
		}
		out := &Firmware{
			Name: name + "+" + mode.String(), BaseOS: "FreeRTOS", Arch: isa.ArchARM32E,
			InstMode: instMode(mode), SourceOpen: true, Fuzzer: "Tardis",
			Frontend: FrontendBytes, Image: fw.Image, Seeds: fw.Seeds,
		}
		return out, nil
	case "TP-Link WDR-7660":
		if mode != kasm.SanNone {
			return nil, fmt.Errorf("firmware: %s is closed-source; cannot rebuild with %s", name, mode)
		}
		return Build(name)
	}
	return nil, fmt.Errorf("firmware: unknown firmware %q", name)
}

// BuildRaceTwin constructs the InfiniTime twin carrying a seeded data race
// (an unlocked step counter shared between the sensor task and the display
// service). It is not part of the Table 1 registry — it exists as ground
// truth for the lockset analysis and the guided-KCSAN benchmarks.
func BuildRaceTwin() (*Firmware, error) {
	fw, err := freertos.BuildRacy("InfiniTime-racy", isa.ArchARM32E, kasm.SanNone)
	if err != nil {
		return nil, err
	}
	out := &Firmware{
		Name: "InfiniTime-racy", BaseOS: "FreeRTOS", Arch: isa.ArchARM32E,
		InstMode: "EmbSan-D", SourceOpen: true, Fuzzer: "Tardis",
		Frontend: FrontendBytes, Image: fw.Image, Seeds: fw.Seeds,
	}
	for _, bug := range fw.Bugs {
		out.Bugs = append(out.Bugs, Bug{
			Fn: bug.Fn, Location: bug.Location, Type: bug.Type,
			Trigger: bug.Trigger, NeedsKCSAN: bug.NeedsKCSAN,
		})
	}
	return out, nil
}

// BuildAll constructs every Table 1 firmware.
func BuildAll() ([]*Firmware, error) {
	out := make([]*Firmware, 0, len(Names))
	for _, n := range Names {
		fw, err := Build(n)
		if err != nil {
			return nil, fmt.Errorf("firmware: %s: %w", n, err)
		}
		out = append(out, fw)
	}
	return out, nil
}

// BuildSyzbotCorpus constructs the Table 2 reproduction build: the
// Embedded Linux kernel carrying the 25 known syzbot bugs, in the given
// instrumentation mode.
func BuildSyzbotCorpus(mode kasm.SanitizeMode) (*elinux.Firmware, error) {
	return elinux.Build(elinux.Board{
		Name: "elinux-syzbot-" + mode.String(), Arch: isa.ArchX86E,
		Mode: mode, Table2: true,
	})
}

func liteosFirmware(name string, arch isa.Arch, fw *liteos.Firmware) *Firmware {
	out := &Firmware{
		Name: name, BaseOS: "LiteOS", Arch: arch,
		InstMode: "EmbSan-D", SourceOpen: true, Fuzzer: "Tardis",
		Frontend: FrontendBytes, Image: fw.Image, Seeds: fw.Seeds,
	}
	for _, bug := range fw.Bugs {
		out.Bugs = append(out.Bugs, Bug{
			Fn: bug.Fn, Location: bug.Location, Type: bug.Type, Trigger: bug.Trigger,
		})
	}
	return out
}

func instMode(m kasm.SanitizeMode) string {
	if m == kasm.SanEmbsanC {
		return "EmbSan-C"
	}
	return "EmbSan-D"
}

func fuzzerFor(name string) string {
	if name == "OpenHarmony-rk3566" {
		return "Tardis"
	}
	return "Syzkaller"
}

// elinuxSeeds builds an initial corpus of benign syscall programs.
func elinuxSeeds(fw *elinux.Firmware) [][]byte {
	var seeds [][]byte
	for i := uint32(0); i < uint32(len(elinux.BenignSyscalls)); i++ {
		p := gabi.Prog{
			{NR: i, NArgs: 4, Args: [4]uint32{16, 2, 3, 4}},
			{NR: (i + 1) % uint32(len(elinux.BenignSyscalls)), NArgs: 4, Args: [4]uint32{80, 1, 0, 0}},
		}
		seeds = append(seeds, p.Encode())
	}
	return seeds
}

// TotalSeededBugs sums the seeded bug count across a firmware set.
func TotalSeededBugs(fws []*Firmware) int {
	n := 0
	for _, fw := range fws {
		n += len(fw.Bugs)
	}
	return n
}
