// Package liteos is the LiteOS guest personality modelled on the
// OpenHarmony stm32 boards of Table 1: a pool-based allocator with the
// LOS_MemAlloc(pool, size) ABI (size in the second argument — the shape
// the Prober's behavioural inference has to recover on closed firmware),
// sequential block headers with linear-scan best-effort allocation and
// next-block coalescing on free, plus VFS and FAT services behind the
// Tardis-style byte executor. Three OOB bugs from Table 4 are seeded.
package liteos

import (
	"fmt"

	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

const (
	rZ  = glib.Z
	rSP = glib.SP
	rA0 = glib.A0
	rA1 = glib.A1
	rA2 = glib.A2
	rA3 = glib.A3
	rA4 = glib.A4
	rT0 = glib.T0
	rT1 = glib.T1
)

const poolSize = 128 << 10

// Block header: {size (total, incl. 8-byte header), used flag}.

// Bug describes one seeded bug with its triggering byte input.
type Bug struct {
	Fn       string
	Location string
	Type     san.BugType
	Trigger  []byte
}

// Firmware is a built LiteOS image.
type Firmware struct {
	Image *kasm.Image
	Bugs  []Bug
	Seeds [][]byte
}

// Service commands.
const (
	cmdVFSOpen  = 0
	cmdVFSLink  = 1
	cmdFATRead  = 2
	cmdShell    = 3
	numCommands = 4
)

const (
	subVFSOpenBug = 0x71
	subVFSLinkBug = 0x72
	subFATBug     = 0x73
)

// BoardBugs selects which seeded bugs are present, matching Table 4:
// stm32mp1 carries only the fs/vfs bug; stm32f407 carries fs/vfs + fs/fat.
type BoardBugs struct {
	VFSOpen bool // fs/vfs (stm32mp1)
	VFSLink bool // fs/vfs (stm32f407)
	FAT     bool // fs/fat (stm32f407)
}

// Build assembles the firmware.
func Build(name string, arch isa.Arch, mode kasm.SanitizeMode, bugs BoardBugs) (*Firmware, error) {
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: mode})
	glib.AddBoot(b, glib.BootConfig{InitFn: "los_init", MainFn: "executor_loop"})
	glib.AddLib(b)
	emitPoolAllocator(b)
	emitInit(b)
	emitServices(b, bugs)
	glib.AddByteExecutor(b, "los_dispatch")

	img, err := b.Link(name)
	if err != nil {
		return nil, fmt.Errorf("liteos: build %s: %w", name, err)
	}
	fw := &Firmware{
		Image: img,
		Seeds: [][]byte{
			{cmdVFSOpen, 0, 0, 0, '/', 'e', 't', 'c', 0},
			{cmdVFSLink, 0, 0, 0, 'a', 'b'},
			{cmdFATRead, 0, 4, 0, 1, 2, 3, 4},
			{cmdShell, 0, 'l', 's'},
		},
	}
	if bugs.VFSOpen {
		fw.Bugs = append(fw.Bugs, Bug{Fn: "los_vfs_open", Location: "fs/vfs", Type: san.BugOOB,
			Trigger: []byte{cmdVFSOpen, subVFSOpenBug, 0, 0, 'x', 0}})
	}
	if bugs.VFSLink {
		fw.Bugs = append(fw.Bugs, Bug{Fn: "los_vfs_link", Location: "fs/vfs", Type: san.BugOOB,
			Trigger: []byte{cmdVFSLink, subVFSLinkBug, 0, 0}})
	}
	if bugs.FAT {
		fw.Bugs = append(fw.Bugs, Bug{Fn: "fatfs_dirread", Location: "fs/fat", Type: san.BugOOB,
			Trigger: []byte{cmdFATRead, subFATBug, 0, 0}})
	}
	return fw, nil
}

func emitInit(b *kasm.Builder) {
	b.Func("los_init")
	b.Prologue(16)
	b.Call("los_pool_init")
	// Boot allocations the dry run observes (size is the second argument).
	b.La(rA0, "m_aucSysMem0")
	b.Li(rA1, 72)
	b.Call("LOS_MemAlloc")
	b.La(rA0, "m_aucSysMem0")
	b.Li(rA1, 28)
	b.Call("LOS_MemAlloc")
	b.La(rA0, "m_aucSysMem0")
	b.Li(rA1, 120)
	b.Call("LOS_MemAlloc")
	b.Epilogue(16)
}

// emitPoolAllocator emits the LOS_Mem* pool allocator: blocks are laid out
// sequentially with {size, used} headers; allocation linearly scans for the
// first free block large enough and splits it; free clears the used flag
// and coalesces with a free successor.
func emitPoolAllocator(b *kasm.Builder) {
	b.GlobalAlign("m_aucSysMem0", poolSize, 8)

	b.Func("los_pool_init")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(rT0, "m_aucSysMem0")
		b.LUI(rT1, poolSize>>12)
		b.SW(rT1, rT0, 0) // one block spanning the pool
		b.SW(rZ, rT0, 4)  // used = 0
	})
	b.La(rA0, "m_aucSysMem0")
	b.LUI(rA1, poolSize>>12)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)

	// LOS_MemAlloc(a0 = pool, a1 = size) -> a0 = ptr or 0.
	b.Func("LOS_MemAlloc")
	b.NoSan(func() {
		b.ADDI(rT0, rA1, 15)
		b.ANDI(rT0, rT0, -8) // total block size incl. header
		b.MV(rA2, rA0)       // cursor = pool
		b.La(rA3, "m_aucSysMem0")
		b.LUI(rA4, poolSize>>12)
		b.ADD(rA3, rA3, rA4) // pool end
		b.Label("LOS_MemAlloc.scan")
		b.BGEU(rA2, rA3, "LOS_MemAlloc.fail")
		b.LW(rA4, rA2, 4) // used?
		b.BNEZ(rA4, "LOS_MemAlloc.next")
		b.LW(rA4, rA2, 0) // block size
		b.BGEU(rA4, rT0, "LOS_MemAlloc.take")
		b.Label("LOS_MemAlloc.next")
		b.LW(rA4, rA2, 0)
		b.ADD(rA2, rA2, rA4)
		b.J("LOS_MemAlloc.scan")
		b.Label("LOS_MemAlloc.take")
		b.LW(rA4, rA2, 0)
		b.SUB(rA4, rA4, rT0) // remainder
		b.SLTIU(rT1, rA4, 24)
		b.BNEZ(rT1, "LOS_MemAlloc.whole")
		// Split: current block shrinks to the request, successor is free.
		b.SW(rT0, rA2, 0)
		b.ADD(rT1, rA2, rT0)
		b.SW(rA4, rT1, 0)
		b.SW(rZ, rT1, 4)
		b.Label("LOS_MemAlloc.whole")
		b.Li(rA4, 1)
		b.SW(rA4, rA2, 4) // used = 1
		b.ADDI(rA0, rA2, 8)
	})
	b.SanAllocHook() // a0 = ptr, a1 = requested size
	b.Ret()
	b.NoSan(func() {
		b.Label("LOS_MemAlloc.fail")
		b.Li(rA0, 0)
	})
	b.Ret()
	b.MarkAlloc("LOS_MemAlloc")

	// LOS_MemFree(a0 = pool, a1 = ptr).
	b.Func("LOS_MemFree")
	b.Prologue(16)
	b.NoSan(func() {
		b.BEQZ(rA1, "LOS_MemFree.out")
		b.SW(rA1, rSP, 0)
		b.ADDI(rT0, rA1, -8)
		b.MV(rA0, rA1)    // hook wants ptr in a0
		b.LW(rA1, rT0, 0) // block size
		b.ADDI(rA1, rA1, -8)
	})
	b.SanFreeHook()
	b.NoSan(func() {
		b.LW(rA1, rSP, 0)
		b.ADDI(rT0, rA1, -8)
		b.SW(rZ, rT0, 4) // used = 0
		// Coalesce with a free successor.
		b.LW(rT1, rT0, 0)
		b.ADD(rA2, rT0, rT1)
		b.La(rA3, "m_aucSysMem0")
		b.LUI(rA4, poolSize>>12)
		b.ADD(rA3, rA3, rA4)
		b.BGEU(rA2, rA3, "LOS_MemFree.out")
		b.LW(rA4, rA2, 4)
		b.BNEZ(rA4, "LOS_MemFree.out")
		b.LW(rA4, rA2, 0)
		b.ADD(rT1, rT1, rA4)
		b.SW(rT1, rT0, 0)
		b.Label("LOS_MemFree.out")
	})
	b.Epilogue(16)
	b.MarkFree("LOS_MemFree")
}

func emitServices(b *kasm.Builder, bugs BoardBugs) {
	// los_dispatch(a0 = buf, a1 = len) -> a0.
	b.Func("los_dispatch")
	b.Prologue(16)
	b.Li(rT0, 2)
	b.BLTU(rA1, rT0, "ldisp.out")
	b.LBU(rT0, rA0, 0)
	b.Li(rT1, numCommands)
	b.BGEU(rT0, rT1, "ldisp.out")
	b.SLLI(rT0, rT0, 2)
	b.La(rT1, "los_svc_table")
	b.ADD(rT1, rT1, rT0)
	b.NoSan(func() { b.LW(rT1, rT1, 0) })
	b.JALR(glib.RA, rT1, 0)
	b.Label("ldisp.out")
	b.Li(rA0, 0)
	b.Epilogue(16)
	b.DataWordSyms("los_svc_table", []string{
		"los_vfs_open", "los_vfs_link", "fatfs_dirread", "los_shell_exec",
	})

	alloc := func(size int32) {
		b.La(rA0, "m_aucSysMem0")
		b.Li(rA1, size)
		b.Call("LOS_MemAlloc")
	}
	free := func() { // ptr already in a1
		b.La(rA0, "m_aucSysMem0")
		b.Call("LOS_MemFree")
	}

	// los_vfs_open(a0 = buf, a1 = len): copy a path into a dentry buffer.
	// Bug (stm32mp1): sub 0x71 writes past the 40-byte dentry.
	b.Func("los_vfs_open")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	alloc(40)
	b.BEQZ(rA0, "vopen.out")
	b.SW(rA0, rSP, 8)
	// Copy up to 32 path bytes.
	b.LW(rA2, rSP, 4)
	b.ADDI(rA2, rA2, -4)
	b.BLT(rA2, rZ, "vopen.nocopy")
	b.Li(rT0, 32)
	b.BLT(rA2, rT0, "vopen.copy")
	b.MV(rA2, rT0)
	b.Label("vopen.copy")
	b.LW(rA1, rSP, 0)
	b.ADDI(rA1, rA1, 4)
	b.Call("memcpy")
	b.Label("vopen.nocopy")
	if bugs.VFSOpen {
		b.LW(rT0, rSP, 0)
		b.LBU(rT0, rT0, 1)
		b.Li(rT1, subVFSOpenBug)
		b.BNE(rT0, rT1, "vopen.free")
		b.LW(rT0, rSP, 8)
		b.Li(rT1, 0x2F)
		b.SB(rT1, rT0, 40) // one past the dentry
	}
	b.Label("vopen.free")
	b.LW(rA1, rSP, 8)
	free()
	b.Label("vopen.out")
	b.Epilogue(32)

	// los_vfs_link(a0 = buf, a1 = len): inode pair bookkeeping.
	// Bug (stm32f407): sub 0x72 reads past a 24-byte inode record.
	b.Func("los_vfs_link")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	alloc(24)
	b.BEQZ(rA0, "vlink.out")
	b.SW(rA0, rSP, 8)
	b.Li(rT0, 0x11)
	b.SW(rT0, rA0, 0)
	b.SW(rT0, rA0, 20)
	if bugs.VFSLink {
		b.LW(rT0, rSP, 0)
		b.LBU(rT0, rT0, 1)
		b.Li(rT1, subVFSLinkBug)
		b.BNE(rT0, rT1, "vlink.free")
		b.LW(rT0, rSP, 8)
		b.LBU(rT1, rT0, 24) // one past the record
	}
	b.Label("vlink.free")
	b.LW(rA1, rSP, 8)
	free()
	b.Label("vlink.out")
	b.Epilogue(32)

	// fatfs_dirread(a0 = buf, a1 = len): directory entry scan.
	// Bug (stm32f407): sub 0x73 writes past a 56-byte dirent buffer.
	b.Func("fatfs_dirread")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	alloc(56)
	b.BEQZ(rA0, "fat.out")
	b.SW(rA0, rSP, 8)
	b.SW(rA0, rSP, 12)
	// Benign: fill the dirent with the request header.
	b.MV(rT0, rA0)
	b.LW(rT1, rSP, 0)
	b.LW(rA2, rT1, 0)
	b.SW(rA2, rT0, 0)
	b.SW(rA2, rT0, 48)
	if bugs.FAT {
		b.LW(rT0, rSP, 0)
		b.LBU(rT0, rT0, 1)
		b.Li(rT1, subFATBug)
		b.BNE(rT0, rT1, "fat.free")
		b.LW(rT0, rSP, 8)
		b.Li(rT1, 0x3A)
		b.SH(rT1, rT0, 56) // two bytes past the dirent
	}
	b.Label("fat.free")
	b.LW(rA1, rSP, 8)
	free()
	b.Label("fat.out")
	b.Epilogue(32)

	// los_shell_exec: benign computation + console echo.
	b.Func("los_shell_exec")
	b.Prologue(16)
	b.LBU(rT0, rA0, 1)
	b.ANDI(rT0, rT0, 31)
	b.ADDI(rT0, rT0, 4)
	b.Li(rA2, 0)
	b.Label("shell.loop")
	b.SLLI(rT1, rA2, 2)
	b.XOR(rA2, rA2, rT1)
	b.ADDI(rA2, rA2, 13)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "shell.loop")
	b.Epilogue(16)
}
