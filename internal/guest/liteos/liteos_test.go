package liteos

import (
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/probe"
	"embsan/internal/san"
)

func boot(t *testing.T, bugs BoardBugs, sans []string) (*Firmware, *core.Instance) {
	t.Helper()
	fw, err := Build("liteos-test", isa.ArchARM32E, kasm.SanNone, bugs)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.New(core.Config{
		Image:      fw.Image,
		Sanitizers: sans,
		Machine:    emu.Config{MaxHarts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	return fw, inst
}

func TestProberRecognisesPoolABI(t *testing.T) {
	fw, _ := boot(t, BoardBugs{}, []string{"kasan"})
	res, err := probe.Probe(fw.Image, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platform.Allocs) != 1 || res.Platform.Allocs[0].Name != "LOS_MemAlloc" {
		t.Fatalf("allocs = %+v", res.Platform.Allocs)
	}
	if res.Platform.Allocs[0].SizeArg != "a1" {
		t.Errorf("size arg = %s, want a1 (pool-based ABI)", res.Platform.Allocs[0].SizeArg)
	}
	if len(res.Platform.Frees) != 1 || res.Platform.Frees[0].PtrArg != "a1" {
		t.Errorf("frees = %+v", res.Platform.Frees)
	}
	// Boot makes three allocations; the init routine must replay them.
	var allocs int
	for _, op := range res.Init.Ops {
		if op.Kind == 3 { // dsl.InitAlloc
			allocs++
		}
	}
	if allocs != 3 {
		t.Errorf("init replays %d allocs, want 3", allocs)
	}
}

func TestBoardBugSelection(t *testing.T) {
	mp1, _ := Build("mp1", isa.ArchARM32E, kasm.SanNone, BoardBugs{VFSOpen: true})
	if len(mp1.Bugs) != 1 || mp1.Bugs[0].Fn != "los_vfs_open" {
		t.Errorf("mp1 bugs = %+v", mp1.Bugs)
	}
	f407, _ := Build("f407", isa.ArchMIPS32E, kasm.SanNone, BoardBugs{VFSLink: true, FAT: true})
	if len(f407.Bugs) != 2 {
		t.Errorf("f407 bugs = %+v", f407.Bugs)
	}
}

func TestAllTriggersDetect(t *testing.T) {
	fw, inst := boot(t, BoardBugs{VFSOpen: true, VFSLink: true, FAT: true}, []string{"kasan"})
	for _, bug := range fw.Bugs {
		inst.Restore()
		res := inst.Exec(bug.Trigger, 50_000_000)
		if len(res.Reports) == 0 {
			t.Errorf("%s not detected", bug.Fn)
			continue
		}
		if res.Reports[0].Bug != san.BugOOB {
			t.Errorf("%s: %v", bug.Fn, res.Reports[0].Bug)
		}
	}
}

func TestCoalescingAllocatorSurvivesChurn(t *testing.T) {
	// The pool allocator coalesces on free: repeated service rounds must
	// neither exhaust the pool nor trip the sanitizer.
	fw, inst := boot(t, BoardBugs{}, []string{"kasan"})
	for i := 0; i < 300; i++ {
		seed := fw.Seeds[i%len(fw.Seeds)]
		res := inst.Exec(seed, 50_000_000)
		if !res.Done {
			t.Fatalf("round %d: stop=%v fault=%v", i, res.Stop, res.Fault)
		}
		if len(res.Reports) != 0 {
			t.Fatalf("round %d: %s", i, res.Reports[0].Title())
		}
	}
}
