package elinux

// The seeded-bug catalogue. Table2Bugs reproduces the 25 syzbot-derived
// KASAN bugs of the paper's Table 2 (function name, bug type and kernel
// version label). FuzzBugs reproduces the Embedded-Linux share of the 41
// previously unknown bugs of Table 4, keyed by the subsystem locations the
// paper lists.

// Table2Bugs are the known-bug reproduction targets.
var Table2Bugs = []BugDef{
	{Fn: "ringbuf_map_alloc", Module: "kernel/bpf", Kind: KindHeapOOBWrite, Gate: 0x11, AllocSize: 44, KernelVer: "5.17-rc2"},
	{Fn: "ieee80211_scan_rx", Module: "net/mac80211", Kind: KindUAFRead, Gate: 0x12, AllocSize: 56, KernelVer: "5.19"},
	{Fn: "bpf_prog_test_run_xdp", Module: "kernel/bpf", Kind: KindHeapOOBWrite, Gate: 0x13, AllocSize: 92, KernelVer: "5.17-rc1"},
	{Fn: "btrfs_scan_one_device", Module: "fs/btrfs", Kind: KindUAFRead, Gate: 0x14, AllocSize: 120, KernelVer: "5.17"},
	{Fn: "post_one_notification", Module: "kernel/watch_queue", Kind: KindUAFWrite, Gate: 0x15, AllocSize: 40, KernelVer: "5.19-rc1"},
	{Fn: "post_watch_notification", Module: "kernel/watch_queue", Kind: KindUAFRead, Gate: 0x16, AllocSize: 40, KernelVer: "5.19-rc1"},
	{Fn: "watch_queue_set_filter", Module: "kernel/watch_queue", Kind: KindHeapOOBWrite, Gate: 0x17, AllocSize: 60, KernelVer: "5.17-rc6"},
	{Fn: "free_pages", Module: "mm/page_alloc", Kind: KindNullDeref, Gate: 0x18, KernelVer: "5.17-rc8"},
	{Fn: "vxlan_vnifilter_dump_dev", Module: "drivers/net/vxlan", Kind: KindHeapOOBRead, Gate: 0x19, AllocSize: 76, KernelVer: "5.17"},
	{Fn: "imageblit", Module: "drivers/video/fbdev", Kind: KindHeapOOBWrite, Gate: 0x1A, AllocSize: 108, KernelVer: "5.19"},
	{Fn: "bpf_jit_free", Module: "kernel/bpf", Kind: KindHeapOOBRead, Gate: 0x1B, AllocSize: 252, KernelVer: "5.19-rc4"},
	{Fn: "null_skcipher_crypt", Module: "crypto", Kind: KindUAFRead, Gate: 0x1C, AllocSize: 36, KernelVer: "5.17-rc6"},
	{Fn: "bio_poll", Module: "block", Kind: KindUAFRead, Gate: 0x1D, AllocSize: 68, KernelVer: "5.18-rc6"},
	{Fn: "blk_mq_sched_free_rqs", Module: "block", Kind: KindUAFWrite, Gate: 0x1E, AllocSize: 84, KernelVer: "5.18"},
	{Fn: "do_sync_mmap_readahead", Module: "mm/filemap", Kind: KindUAFRead, Gate: 0x1F, AllocSize: 100, KernelVer: "5.18-rc7"},
	{Fn: "filp_close", Module: "fs", Kind: KindUAFRead, Gate: 0x21, AllocSize: 52, KernelVer: "5.18"},
	{Fn: "setup_rw_floppy", Module: "drivers/block/floppy", Kind: KindUAFRead, Gate: 0x22, AllocSize: 28, KernelVer: "5.17-rc4"},
	{Fn: "driver_register", Module: "drivers/base", Kind: KindUAFRead, Gate: 0x23, AllocSize: 44, KernelVer: "5.18-next"},
	{Fn: "dev_uevent", Module: "drivers/base", Kind: KindUAFRead, Gate: 0x24, AllocSize: 60, KernelVer: "5.17-rc4"},
	{Fn: "run_unpack", Module: "fs/ntfs3", Kind: KindHeapOOBRead, Gate: 0x25, AllocSize: 124, KernelVer: "6.0"},
	{Fn: "ath9k_hif_usb_rx_cb", Module: "drivers/net/wireless/ath", Kind: KindUAFRead, Gate: 0x26, AllocSize: 140, KernelVer: "5.19"},
	{Fn: "vma_adjust", Module: "mm/mmap", Kind: KindUAFWrite, Gate: 0x27, AllocSize: 88, KernelVer: "5.19-rc1"},
	{Fn: "nilfs_mdt_destroy", Module: "fs/nilfs2", Kind: KindUAFRead, Gate: 0x28, AllocSize: 72, KernelVer: "6.0-rc7"},
	// The last two are global out-of-bounds bugs: detectable only with
	// compile-time redzones (EMBSAN-C, native KASAN) — the Table 2 split.
	{Fn: "fbcon_get_font", Module: "drivers/video/fbdev/core", Kind: KindGlobalOOBRead, Gate: 0x29, KernelVer: "5.7-rc5"},
	{Fn: "string", Module: "lib/vsprintf", Kind: KindGlobalOOBRead, Gate: 0x2A, KernelVer: "4.17-rc1"},
}

// FuzzBugs is the Embedded-Linux share of Table 4: previously unknown bugs
// planted for the fuzzing campaign, keyed by function name.
var FuzzBugs = []BugDef{
	{Fn: "nfs_acl_decode", Module: "fs/nfs_common", Kind: KindHeapOOBWrite, Gate: 0x31, AllocSize: 44},
	{Fn: "nft_expr_init", Module: "net/netfilter", Kind: KindHeapOOBWrite, Gate: 0x32, AllocSize: 60},
	{Fn: "cfg80211_scan_done", Module: "net/wireless", Kind: KindHeapOOBRead, Gate: 0x33, AllocSize: 92},
	{Fn: "mvneta_rx_desc", Module: "drivers/net/ethernet/marvell", Kind: KindHeapOOBWrite, Gate: 0x34, AllocSize: 76},
	{Fn: "r8169_rx_fill", Module: "drivers/net/ethernet/realtek", Kind: KindHeapOOBWrite, Gate: 0x35, AllocSize: 52},
	{Fn: "atl1c_clean_tx", Module: "drivers/net/ethernet/atheros", Kind: KindDoubleFree, Gate: 0x36, AllocSize: 36},
	{Fn: "btusb_recv_bulk", Module: "drivers/bluetooth", Kind: KindHeapOOBWrite, Gate: 0x37, AllocSize: 68},
	{Fn: "bcm2835_dma_prep", Module: "drivers/dma/bcm2835-dma", Kind: KindHeapOOBWrite, Gate: 0x38, AllocSize: 84},
	{Fn: "ahc_parse_msg", Module: "drivers/scsi/aic7xxx", Kind: KindHeapOOBRead, Gate: 0x39, AllocSize: 28},
	{Fn: "btrfs_lookup_csum", Module: "fs/btrfs", Kind: KindUAFRead, Gate: 0x3A, AllocSize: 108},
	{Fn: "brcmf_fweh_event", Module: "drivers/net/wireless/broadcom", Kind: KindUAFRead, Gate: 0x3B, AllocSize: 56},
	{Fn: "bcmgenet_rx_refill", Module: "drivers/net/ethernet/broadcom", Kind: KindHeapOOBWrite, Gate: 0x3C, AllocSize: 100},
	{Fn: "bcmgenet_xmit", Module: "drivers/net/ethernet/broadcom", Kind: KindHeapOOBWrite, Gate: 0x3D, AllocSize: 44},
	{Fn: "tcf_action_init", Module: "net/sched", Kind: KindHeapOOBWrite, Gate: 0x3E, AllocSize: 52},
	{Fn: "ath10k_htt_rx_pop", Module: "drivers/net/wireless/ath", Kind: KindUAFRead, Gate: 0x3F, AllocSize: 116},
	{Fn: "fuse_dev_splice", Module: "fs/fuse", Kind: KindDoubleFree, Gate: 0x41, AllocSize: 40},
	{Fn: "mtk_tx_map", Module: "drivers/net/ethernet/mediatek", Kind: KindHeapOOBWrite, Gate: 0x42, AllocSize: 68},
	{Fn: "nfs_readdir_entry", Module: "fs/nfs", Kind: KindHeapOOBRead, Gate: 0x43, AllocSize: 124},
	{Fn: "skb_clone_frag", Module: "net/core", Kind: KindDoubleFree, Gate: 0x44, AllocSize: 64},
	{Fn: "mtk_cqdma_issue", Module: "drivers/dma/mediatek", Kind: KindDoubleFree, Gate: 0x45, AllocSize: 32},
	{Fn: "btrtl_setup", Module: "drivers/net/bluetooth/realtek", Kind: KindUAFRead, Gate: 0x46, AllocSize: 48},
	{Fn: "nr_insert_socket", Module: "fs/netrom", Kind: KindDoubleFree, Gate: 0x47, AllocSize: 56},
	{Fn: "iommu_map_sg", Module: "drivers/iommu", Kind: KindHeapOOBWrite, Gate: 0x48, AllocSize: 72},
	{Fn: "stmmac_rx_buf", Module: "drivers/net/ethernet/stmicro", Kind: KindHeapOOBWrite, Gate: 0x49, AllocSize: 96},
	{Fn: "iwl_mvm_scan", Module: "drivers/net/wireless/intel/iwlwifi", Kind: KindHeapOOBRead, Gate: 0x4A, AllocSize: 140},
	{Fn: "b43_dma_rx", Module: "drivers/net/wireless/broadcom/b43", Kind: KindHeapOOBWrite, Gate: 0x4B, AllocSize: 60},
	{Fn: "btrfs_sync_log", Module: "fs/btrfs", Kind: KindRace, Gate: 0x4C},
	{Fn: "btrfs_drop_extents", Module: "fs/btrfs", Kind: KindRace, Gate: 0x4D},
	{Fn: "nfs_idmap_lookup", Module: "fs/nfs", Kind: KindHeapOOBWrite, Gate: 0x4E, AllocSize: 36},
	{Fn: "route4_change", Module: "net/sched", Kind: KindUAFRead, Gate: 0x4F, AllocSize: 80},
}

// FuzzBugByFn looks up a fuzz-campaign bug definition.
func FuzzBugByFn(fn string) (BugDef, bool) {
	for _, d := range FuzzBugs {
		if d.Fn == fn {
			return d, true
		}
	}
	return BugDef{}, false
}
