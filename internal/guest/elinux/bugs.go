package elinux

import (
	"fmt"

	"embsan/internal/guest/glib"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// Kind is the mechanical shape of a seeded bug.
type Kind uint8

const (
	KindHeapOOBWrite Kind = iota
	KindHeapOOBRead
	KindUAFRead
	KindUAFWrite
	KindDoubleFree
	KindGlobalOOBWrite
	KindGlobalOOBRead
	KindNullDeref
	KindRace
)

// BugDef declares one seeded bug: a guest function named after the paper's
// report location, guarded by a one-byte trigger condition on its first
// argument, reachable through its own syscall-table entry.
type BugDef struct {
	Fn        string // function name, as reported by the sanitizer
	Module    string // subsystem path, e.g. "net/netfilter"
	Kind      Kind
	Gate      uint32 // triggers when (arg0 & 0xFF) == Gate
	AllocSize int32  // object size for heap bugs
	KernelVer string // Table 2 label, "" for the fuzzing targets
}

// BugType maps the mechanical kind to the report classification the
// sanitizer should produce.
func (d BugDef) BugType() san.BugType {
	switch d.Kind {
	case KindHeapOOBWrite, KindHeapOOBRead:
		return san.BugOOB
	case KindUAFRead, KindUAFWrite:
		return san.BugUAF
	case KindDoubleFree:
		return san.BugDoubleFree
	case KindGlobalOOBWrite, KindGlobalOOBRead:
		return san.BugGlobalOOB
	case KindNullDeref:
		return san.BugNullDeref
	case KindRace:
		return san.BugRace
	}
	return san.BugOOB
}

// NeedsCompileTime reports whether only compile-time-instrumented builds
// (EMBSAN-C, native KASAN) can catch the bug — the Table 2 capability split.
func (d BugDef) NeedsCompileTime() bool {
	return d.Kind == KindGlobalOOBWrite || d.Kind == KindGlobalOOBRead
}

// NeedsKCSAN reports whether the bug is a data race.
func (d BugDef) NeedsKCSAN() bool { return d.Kind == KindRace }

const (
	rZ  = glib.Z
	rRA = glib.RA
	rSP = glib.SP
	rA0 = glib.A0
	rA1 = glib.A1
	rA2 = glib.A2
	rA3 = glib.A3
	rT0 = glib.T0
	rT1 = glib.T1
)

// emitBug generates the guest function for one bug definition.
func emitBug(b *kasm.Builder, d BugDef) {
	out := d.Fn + ".out"
	b.Func(d.Fn)
	b.Prologue(16)
	// The trigger gate: a one-byte comparison on the first argument, the
	// kind of shallow input condition driver parsers are full of.
	b.ANDI(rT0, rA0, 0xFF)
	b.Li(rT1, int32(d.Gate))
	b.BNE(rT0, rT1, out)

	switch d.Kind {
	case KindHeapOOBWrite:
		b.Li(rA0, d.AllocSize)
		b.Call("kmalloc")
		b.BEQZ(rA0, out)
		b.SW(rA0, rSP, 0)
		b.Li(rT1, 0x41)
		b.SB(rT1, rA0, d.AllocSize) // one past the object
		b.LW(rA0, rSP, 0)
		b.Call("kfree")

	case KindHeapOOBRead:
		b.Li(rA0, d.AllocSize)
		b.Call("kmalloc")
		b.BEQZ(rA0, out)
		b.SW(rA0, rSP, 0)
		b.LBU(rT1, rA0, d.AllocSize)
		b.LW(rA0, rSP, 0)
		b.Call("kfree")

	case KindUAFRead, KindUAFWrite:
		b.Li(rA0, d.AllocSize)
		b.Call("kmalloc")
		b.BEQZ(rA0, out)
		b.SW(rA0, rSP, 0)
		b.Call("kfree")
		b.LW(rA1, rSP, 0)
		if d.Kind == KindUAFRead {
			b.LW(rT1, rA1, 0)
		} else {
			b.Li(rT1, 0x42)
			b.SW(rT1, rA1, 0)
		}

	case KindDoubleFree:
		b.Li(rA0, d.AllocSize)
		b.Call("kmalloc")
		b.BEQZ(rA0, out)
		b.SW(rA0, rSP, 0)
		b.Call("kfree")
		b.LW(rA0, rSP, 0)
		b.Call("kfree")

	case KindGlobalOOBWrite:
		b.La(rT0, d.Fn+"_table")
		b.Li(rT1, 0x43)
		b.SB(rT1, rT0, globalObjSize) // into the (compile-time) redzone

	case KindGlobalOOBRead:
		b.La(rT0, d.Fn+"_table")
		b.LBU(rT1, rT0, globalObjSize)

	case KindNullDeref:
		b.LW(rT1, rZ, 8)

	case KindRace:
		// Pound a shared statistic without synchronisation; the background
		// kthread does the same, so a sampled watchpoint collides.
		b.La(rT0, "racy_stat")
		b.Li(rT1, 64)
		lp := d.Fn + ".race"
		b.Label(lp)
		b.LW(rA1, rT0, 0)
		b.ADDI(rA1, rA1, 1)
		b.SW(rA1, rT0, 0)
		b.ADDI(rT1, rT1, -1)
		b.BNEZ(rT1, lp)
	}

	b.Label(out)
	b.Li(rA0, 0)
	b.Epilogue(16)

	if d.Kind == KindGlobalOOBWrite || d.Kind == KindGlobalOOBRead {
		b.Global(d.Fn+"_table", globalObjSize)
	}
}

// globalObjSize is the payload size of the per-bug global tables.
const globalObjSize = 24

func checkBugDefs(defs []BugDef) error {
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.Fn] {
			return fmt.Errorf("elinux: duplicate bug function %q", d.Fn)
		}
		seen[d.Fn] = true
		if d.Gate > 0xFF {
			return fmt.Errorf("elinux: %s: gate %#x out of byte range", d.Fn, d.Gate)
		}
	}
	return nil
}
