package elinux

import (
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/gabi"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

func buildFW(t *testing.T, board Board) *Firmware {
	t.Helper()
	fw, err := Build(board)
	if err != nil {
		t.Fatalf("build %s: %v", board.Name, err)
	}
	return fw
}

func newInstance(t *testing.T, fw *Firmware, sanitizers []string, stop bool) *core.Instance {
	t.Helper()
	inst, err := core.New(core.Config{
		Image:        fw.Image,
		Sanitizers:   sanitizers,
		StopOnReport: stop,
		Machine:      emu.Config{MaxHarts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(50_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	return inst
}

func TestBuildAllModes(t *testing.T) {
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanEmbsanC, kasm.SanNativeKASAN, kasm.SanNativeKCSAN} {
		fw := buildFW(t, Board{
			Name: "test-" + mode.String(), Arch: isa.ArchARM32E, Mode: mode,
			BugFns: []string{"nfs_acl_decode", "btrfs_sync_log"},
		})
		if len(fw.Bugs) != 2 {
			t.Errorf("%s: bugs = %d", mode, len(fw.Bugs))
		}
		if _, ok := fw.SyscallNR("vfs_read"); !ok {
			t.Errorf("%s: missing benign syscalls", mode)
		}
	}
}

func TestBenignWorkloadIsClean(t *testing.T) {
	fw := buildFW(t, Board{Name: "clean", Arch: isa.ArchARM32E, Mode: kasm.SanNone})
	inst := newInstance(t, fw, []string{"kasan"}, false)
	var prog gabi.Prog
	for i := uint32(0); i < 6; i++ {
		for nr := range BenignSyscalls {
			prog = append(prog, gabi.Record{
				NR: uint32(nr), NArgs: 4,
				Args: [4]uint32{i * 33, i + 1, i + 2, i % 3},
			})
		}
	}
	res := inst.Exec(prog.Encode(), 50_000_000)
	if !res.Done {
		t.Fatalf("executor never finished: stop=%v fault=%v", res.Stop, res.Fault)
	}
	if res.DoneCode != uint32(len(prog)) {
		t.Errorf("executed %d records, want %d", res.DoneCode, len(prog))
	}
	if len(res.Reports) != 0 {
		t.Errorf("benign workload reported: %s", res.Reports[0].Title())
	}
}

// runBug executes one bug trigger under the given configuration.
func runBug(t *testing.T, fw *Firmware, fn string, sanitizers []string) []*san.Report {
	t.Helper()
	bug, ok := fw.BugByFn(fn)
	if !ok {
		t.Fatalf("bug %s not in firmware", fn)
	}
	inst := newInstance(t, fw, sanitizers, false)
	res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 20_000_000)
	return res.Reports
}

func TestHeapBugDetectionDMode(t *testing.T) {
	fw := buildFW(t, Board{Name: "d-mode", Arch: isa.ArchMIPS32E, Mode: kasm.SanNone, Table2: true})
	cases := map[string]san.BugType{
		"ringbuf_map_alloc": san.BugOOB,
		"ieee80211_scan_rx": san.BugUAF,
		"free_pages":        san.BugNullDeref,
	}
	for fn, want := range cases {
		reps := runBug(t, fw, fn, []string{"kasan"})
		if len(reps) == 0 {
			t.Errorf("%s: not detected under EMBSAN-D", fn)
			continue
		}
		if reps[0].Bug != want {
			t.Errorf("%s: bug = %v, want %v", fn, reps[0].Bug, want)
		}
		if loc := reps[0].Location; len(loc) < len(fn) || loc[:len(fn)] != fn {
			t.Errorf("%s: location = %q", fn, loc)
		}
	}
	// Global OOB must be missed without compile-time redzones.
	if reps := runBug(t, fw, "fbcon_get_font", []string{"kasan"}); len(reps) != 0 {
		t.Errorf("global OOB detected under EMBSAN-D: %s", reps[0].Title())
	}
}

func TestGlobalBugDetectionCMode(t *testing.T) {
	fw := buildFW(t, Board{Name: "c-mode", Arch: isa.ArchARM32E, Mode: kasm.SanEmbsanC, Table2: true})
	for _, fn := range []string{"fbcon_get_font", "string"} {
		reps := runBug(t, fw, fn, []string{"kasan"})
		if len(reps) == 0 {
			t.Errorf("%s: not detected under EMBSAN-C", fn)
			continue
		}
		if reps[0].Bug != san.BugGlobalOOB {
			t.Errorf("%s: bug = %v", fn, reps[0].Bug)
		}
	}
	// And the ordinary heap bugs still fire through the SANCK fast path.
	if reps := runBug(t, fw, "watch_queue_set_filter", []string{"kasan"}); len(reps) == 0 {
		t.Error("heap OOB missed under EMBSAN-C")
	}
}

func TestDoubleFreeDetection(t *testing.T) {
	fw := buildFW(t, Board{
		Name: "df", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"skb_clone_frag"},
	})
	reps := runBug(t, fw, "skb_clone_frag", []string{"kasan"})
	if len(reps) == 0 || reps[0].Bug != san.BugDoubleFree {
		t.Fatalf("double free not detected: %v", reps)
	}
}

func TestRaceBugDetection(t *testing.T) {
	fw := buildFW(t, Board{
		Name: "race", Arch: isa.ArchX86E, Mode: kasm.SanEmbsanC,
		BugFns: []string{"btrfs_sync_log"},
	})
	bug, _ := fw.BugByFn("btrfs_sync_log")
	inst, err := core.New(core.Config{
		Image:      fw.Image,
		Sanitizers: []string{"kasan", "kcsan"},
		Machine:    emu.Config{MaxHarts: 2, Seed: 11},
		KCSAN:      san.KCSANConfig{SampleInterval: 13, Delay: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(50_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	// Fire the racy handler repeatedly; the kthread provides the partner.
	var prog gabi.Prog
	for i := 0; i < 30; i++ {
		prog = append(prog, bug.Trigger())
	}
	res := inst.Exec(prog.Encode(), 100_000_000)
	var race *san.Report
	for _, r := range res.Reports {
		if r.Bug == san.BugRace {
			race = r
		}
	}
	if race == nil {
		t.Fatalf("race not detected (reports: %d, done=%v)", len(res.Reports), res.Done)
	}
	if race.Tool != san.ToolKCSAN {
		t.Errorf("race tool = %v", race.Tool)
	}
}

func TestSnapshotIsolationBetweenExecs(t *testing.T) {
	fw := buildFW(t, Board{Name: "iso", Arch: isa.ArchARM32E, Mode: kasm.SanNone, Table2: true})
	inst := newInstance(t, fw, []string{"kasan"}, false)
	bug, _ := fw.BugByFn("ringbuf_map_alloc")
	for i := 0; i < 3; i++ {
		if i > 0 {
			inst.Restore()
		}
		res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 20_000_000)
		if len(res.Reports) != 1 {
			t.Fatalf("run %d: reports = %d", i, len(res.Reports))
		}
	}
	// After restore, a clean program must produce no reports.
	inst.Restore()
	clean := gabi.Prog{{NR: 2, NArgs: 1, Args: [4]uint32{5}}}
	res := inst.Exec(clean.Encode(), 20_000_000)
	if len(res.Reports) != 0 {
		t.Errorf("stale report after restore: %s", res.Reports[0].Title())
	}
}

func TestUntriggeredGateIsQuiet(t *testing.T) {
	fw := buildFW(t, Board{Name: "gate", Arch: isa.ArchARM32E, Mode: kasm.SanNone, Table2: true})
	inst := newInstance(t, fw, []string{"kasan"}, false)
	bug, _ := fw.BugByFn("ringbuf_map_alloc")
	rec := bug.Trigger()
	rec.Args[0]++ // miss the gate
	res := inst.Exec(gabi.Prog{rec}.Encode(), 20_000_000)
	if !res.Done || len(res.Reports) != 0 {
		t.Errorf("gated bug fired without its trigger: done=%v reports=%d", res.Done, len(res.Reports))
	}
}

// TestTable2SignaturesDistinct: every Table 2 bug must produce its own
// report signature, or deduplication would fold findings together.
func TestTable2SignaturesDistinct(t *testing.T) {
	fw := buildFW(t, Board{Name: "sigs", Arch: isa.ArchARM32E, Mode: kasm.SanNone, Table2: true})
	inst := newInstance(t, fw, []string{"kasan"}, false)
	sigs := map[string]string{}
	for _, bug := range fw.Bugs {
		if bug.Def.NeedsCompileTime() || bug.Def.NeedsKCSAN() {
			continue
		}
		inst.Restore()
		res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 20_000_000)
		if len(res.Reports) == 0 {
			t.Errorf("%s: no report", bug.Def.Fn)
			continue
		}
		sig := res.Reports[0].Signature()
		if prev, dup := sigs[sig]; dup {
			t.Errorf("signature collision: %s and %s both give %q", prev, bug.Def.Fn, sig)
		}
		sigs[sig] = bug.Def.Fn
	}
}

func TestBugCatalogConsistency(t *testing.T) {
	if len(Table2Bugs) != 25 {
		t.Errorf("Table2Bugs = %d, want 25", len(Table2Bugs))
	}
	if len(FuzzBugs) != 30 {
		t.Errorf("FuzzBugs = %d, want 30 (Embedded Linux share of Table 4)", len(FuzzBugs))
	}
	globals := 0
	for _, d := range Table2Bugs {
		if d.NeedsCompileTime() {
			globals++
		}
		if d.KernelVer == "" {
			t.Errorf("%s: missing kernel version label", d.Fn)
		}
	}
	if globals != 2 {
		t.Errorf("Table 2 global-OOB bugs = %d, want 2", globals)
	}
	if err := checkBugDefs(append(append([]BugDef{}, Table2Bugs...), FuzzBugs...)); err != nil {
		t.Error(err)
	}
}
