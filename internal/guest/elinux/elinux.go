// Package elinux is the Embedded Linux guest personality: a slab allocator
// (kmalloc size-class caches over a backing pool), a syscall surface with
// realistic benign workloads, an optional background kthread, and the
// seeded-bug subsystems of the paper's evaluation. Firmware images built
// from it stand in for the OpenWRT and OpenHarmony-rk3566 boards of Table 1.
package elinux

import (
	"fmt"

	"embsan/internal/guest/gabi"
	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// Slab layout: six size classes, each owning a 64 KiB region of the pool.
const (
	numCaches   = 6
	cacheRegion = 64 << 10
	poolSize    = numCaches * cacheRegion
)

// Board selects the content of one firmware build.
type Board struct {
	Name   string
	Arch   isa.Arch
	Mode   kasm.SanitizeMode
	BugFns []string // fuzzing-campaign bugs (FuzzBugs entries) to include
	Table2 bool     // include the 25-bug syzbot reproduction corpus
}

// Bug is one seeded bug as present in a built firmware.
type Bug struct {
	Def BugDef
	NR  uint32 // syscall number dispatching to Def.Fn
}

// Trigger returns a syscall record that fires the bug.
func (bug Bug) Trigger() gabi.Record {
	return gabi.Record{NR: bug.NR, NArgs: 1, Args: [gabi.MaxArgs]uint32{bug.Def.Gate}}
}

// Firmware is a built image plus its testing interface description.
type Firmware struct {
	Image    *kasm.Image
	Syscalls []string // index = syscall number
	Bugs     []Bug
}

// BenignSyscalls are always present: the realistic workload surface the
// overhead measurements replay.
var BenignSyscalls = []string{
	"vfs_read", "vfs_write", "proc_status", "netlink_echo",
	"pipe_rw", "clock_gettime", "crypto_digest", "page_rw",
}

// Build assembles the firmware for a board.
func Build(board Board) (*Firmware, error) {
	var defs []BugDef
	if board.Table2 {
		defs = append(defs, Table2Bugs...)
	}
	for _, fn := range board.BugFns {
		d, ok := FuzzBugByFn(fn)
		if !ok {
			return nil, fmt.Errorf("elinux: unknown bug %q", fn)
		}
		defs = append(defs, d)
	}
	if err := checkBugDefs(defs); err != nil {
		return nil, err
	}
	hasRace := false
	for _, d := range defs {
		if d.Kind == KindRace {
			hasRace = true
		}
	}

	b := kasm.NewBuilder(kasm.Target{Arch: board.Arch, Sanitize: board.Mode})
	glib.AddBoot(b, glib.BootConfig{InitFn: "kernel_init", MainFn: "executor_loop"})
	glib.AddLib(b)
	emitInit(b, hasRace)
	emitSlab(b)
	emitPageAllocator(b)
	emitBenign(b)
	if hasRace {
		emitKthread(b)
	}
	for _, d := range defs {
		emitBug(b, d)
	}

	syscalls := append([]string{}, BenignSyscalls...)
	for _, d := range defs {
		syscalls = append(syscalls, d.Fn)
	}
	b.DataWordSyms("syscall_table", syscalls)
	glib.AddSyscallExecutor(b, "syscall_table", len(syscalls))

	img, err := b.Link(board.Name)
	if err != nil {
		return nil, fmt.Errorf("elinux: build %s: %w", board.Name, err)
	}
	fw := &Firmware{Image: img, Syscalls: syscalls}
	for i, d := range defs {
		fw.Bugs = append(fw.Bugs, Bug{Def: d, NR: uint32(len(BenignSyscalls) + i)})
	}
	return fw, nil
}

// SyscallNR resolves a syscall name to its number in this build.
func (fw *Firmware) SyscallNR(name string) (uint32, bool) {
	for i, n := range fw.Syscalls {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

// BugByFn finds a seeded bug instance by function name.
func (fw *Firmware) BugByFn(fn string) (Bug, bool) {
	for _, bug := range fw.Bugs {
		if bug.Def.Fn == fn {
			return bug, true
		}
	}
	return Bug{}, false
}

func emitInit(b *kasm.Builder, hasRace bool) {
	b.Func("kernel_init")
	b.Prologue(16)
	b.Call("kmem_init")
	b.Call("page_init")
	if hasRace {
		b.Li(rA0, 1)
		b.La(rA1, "kthread_entry")
		b.La(rA2, "kthread_stack")
		b.Li(rT0, 8188)
		b.ADD(rA2, rA2, rT0)
		b.HCALL(isa.HcallSpawn)
	}
	b.Epilogue(16)
}

// emitSlab emits the kmalloc size-class allocator.
func emitSlab(b *kasm.Builder) {
	b.GlobalRaw("slab_pool", poolSize)
	b.GlobalRaw("kmem_caches", numCaches*16) // {size, cursor, freelist, base}
	b.DataWords("kmem_sizes", []uint32{32, 64, 128, 256, 512, 1024})

	b.Func("kmem_init")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(rT0, "kmem_caches")
		b.La(rT1, "kmem_sizes")
		b.La(rA1, "slab_pool")
		b.Li(rA2, numCaches)
		b.Label("kmem_init.loop")
		b.LW(rA3, rT1, 0)
		b.SW(rA3, rT0, 0)  // slot size
		b.SW(rZ, rT0, 4)   // cursor
		b.SW(rZ, rT0, 8)   // freelist
		b.SW(rA1, rT0, 12) // region base
		b.LUI(rA3, cacheRegion>>12)
		b.ADD(rA1, rA1, rA3)
		b.ADDI(rT0, rT0, 16)
		b.ADDI(rT1, rT1, 4)
		b.ADDI(rA2, rA2, -1)
		b.BNEZ(rA2, "kmem_init.loop")
	})
	// Hand the arena to the sanitizer (compile-time instrumented builds).
	b.La(rA0, "slab_pool")
	b.LUI(rA1, poolSize>>12)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)

	// kmalloc(a0 = size) -> a0 = object or 0.
	b.Func("kmalloc")
	b.NoSan(func() {
		b.MV(rA1, rA0) // keep the requested size for the hook
		b.La(rT0, "kmem_caches")
		b.Li(rA2, numCaches)
		b.Label("kmalloc.find")
		b.LW(rT1, rT0, 0)
		b.BGEU(rT1, rA0, "kmalloc.found")
		b.ADDI(rT0, rT0, 16)
		b.ADDI(rA2, rA2, -1)
		b.BNEZ(rA2, "kmalloc.find")
		b.Li(rA0, 0)
		b.Ret()
		b.Label("kmalloc.found")
		b.LW(rA3, rT0, 8) // freelist head
		b.BEQZ(rA3, "kmalloc.bump")
		b.LW(rA2, rA3, 0) // next link lives inside the freed object
		b.SW(rA2, rT0, 8)
		b.MV(rA0, rA3)
		b.J("kmalloc.hook")
		b.Label("kmalloc.bump")
		b.LW(rA3, rT0, 4) // cursor
		b.ADD(rA2, rA3, rT1)
		b.LUI(rT1, cacheRegion>>12)
		b.BLTU(rT1, rA2, "kmalloc.fail")
		b.SW(rA2, rT0, 4)
		b.LW(rA2, rT0, 12) // base
		b.ADD(rA0, rA2, rA3)
		b.Label("kmalloc.hook")
	})
	b.SanAllocHook() // a0 = ptr, a1 = requested size
	b.Ret()
	b.NoSan(func() {
		b.Label("kmalloc.fail")
		b.Li(rA0, 0)
	})
	b.Ret()
	b.MarkAlloc("kmalloc")

	// kfree(a0 = ptr).
	b.Func("kfree")
	b.Prologue(16)
	b.NoSan(func() {
		b.BEQZ(rA0, "kfree.out")
		b.La(rT0, "slab_pool")
		b.SUB(rT1, rA0, rT0)
		b.SRLI(rT1, rT1, 16)
		b.SLTIU(rA2, rT1, numCaches)
		b.BEQZ(rA2, "kfree.out") // not a slab pointer
		b.SLLI(rT1, rT1, 4)
		b.La(rA2, "kmem_caches")
		b.ADD(rT0, rA2, rT1) // t0 = cache (callee-safe across the hook)
		b.SW(rA0, rSP, 0)
		b.LW(rA1, rT0, 0) // slot size
	})
	b.SanFreeHook() // a0 = ptr, a1 = slot size
	b.NoSan(func() {
		b.LW(rA0, rSP, 0)
		b.LW(rA3, rT0, 8)
		b.SW(rA3, rA0, 0) // link through the freed object
		b.SW(rA0, rT0, 8)
		b.Label("kfree.out")
	})
	b.Epilogue(16)
	b.MarkFree("kfree")
}

// Page allocator: a free list of 4 KiB pages over the mem_map arena —
// the second allocator tier real kernels have underneath the slab.
const (
	pageSize = 4096
	numPages = 48
)

func emitPageAllocator(b *kasm.Builder) {
	b.GlobalAlign("mem_map", numPages*pageSize, pageSize)
	b.GlobalRaw("page_free_list", 4)

	// page_init: thread every page onto the free list.
	b.Func("page_init")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(rT0, "mem_map")
		b.Li(rT1, numPages)
		b.Li(rA2, 0) // running head
		b.Label("page_init.loop")
		b.SW(rA2, rT0, 0) // page->next = head
		b.MV(rA2, rT0)
		b.LUI(rA3, pageSize>>12)
		b.ADD(rT0, rT0, rA3)
		b.ADDI(rT1, rT1, -1)
		b.BNEZ(rT1, "page_init.loop")
		b.La(rT0, "page_free_list")
		b.SW(rA2, rT0, 0)
	})
	b.La(rA0, "mem_map")
	b.LUI(rA1, numPages*pageSize>>12)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)

	// alloc_pages(a0 = bytes) -> a0 = page or 0. Single-page requests only;
	// the byte argument keeps the allocator-interface shape the Prober
	// expects (size in, pointer out).
	b.Func("alloc_pages")
	b.NoSan(func() {
		b.MV(rA1, rA0) // requested size for the hook
		b.La(rT0, "page_free_list")
		b.LW(rA0, rT0, 0)
		b.BEQZ(rA0, "alloc_pages.out")
		b.LW(rA2, rA0, 0) // next
		b.SW(rA2, rT0, 0)
		b.Label("alloc_pages.out")
	})
	b.SanAllocHook()
	b.Ret()
	b.MarkAlloc("alloc_pages")

	// __free_pages(a0 = page).
	b.Func("__free_pages")
	b.Prologue(16)
	b.NoSan(func() {
		b.BEQZ(rA0, "__free_pages.out")
		b.SW(rA0, rSP, 0)
		b.LUI(rA1, pageSize>>12) // page-sized object for the hook
	})
	b.SanFreeHook()
	b.NoSan(func() {
		b.LW(rA0, rSP, 0)
		b.La(rT0, "page_free_list")
		b.LW(rA2, rT0, 0)
		b.SW(rA2, rA0, 0)
		b.SW(rA0, rT0, 0)
		b.Label("__free_pages.out")
	})
	b.Epilogue(16)
	b.MarkFree("__free_pages")
}

// emitBenign emits the realistic non-buggy syscall surface.
func emitBenign(b *kasm.Builder) {
	b.DataBytes("file_cache", benignPattern())

	// vfs_read(a0 = size seed, a1 = fill byte): allocate, memset, read
	// back, free.
	b.Func("vfs_read")
	b.Prologue(16)
	b.SW(rA1, rSP, 0)
	b.ANDI(rA0, rA0, 127)
	b.ADDI(rA0, rA0, 16)
	b.SW(rA0, rSP, 4)
	b.Call("kmalloc")
	b.BEQZ(rA0, "vfs_read.out")
	b.SW(rA0, rSP, 8)
	b.LW(rA1, rSP, 0)
	b.LW(rA2, rSP, 4)
	b.Call("memset")
	b.LW(rA0, rSP, 8)
	b.LW(rT0, rA0, 0)
	b.LW(rT1, rA0, 8)
	b.ADD(rT0, rT0, rT1)
	b.LW(rA0, rSP, 8)
	b.Call("kfree")
	b.Label("vfs_read.out")
	b.Li(rA0, 0)
	b.Epilogue(16)

	// vfs_write(a0 = size seed): allocate, memcpy from the page cache, free.
	b.Func("vfs_write")
	b.Prologue(16)
	b.ANDI(rA0, rA0, 63)
	b.ADDI(rA0, rA0, 8)
	b.SW(rA0, rSP, 4)
	b.Call("kmalloc")
	b.BEQZ(rA0, "vfs_write.out")
	b.SW(rA0, rSP, 8)
	b.La(rA1, "file_cache")
	b.LW(rA2, rSP, 4)
	b.Call("memcpy")
	b.LW(rA0, rSP, 8)
	b.Call("kfree")
	b.Label("vfs_write.out")
	b.Li(rA0, 0)
	b.Epilogue(16)

	// proc_status(a0 = iterations seed, a1..a3 mixed in): pure computation.
	b.Func("proc_status")
	b.ANDI(rT0, rA0, 63)
	b.ADDI(rT0, rT0, 8)
	b.Li(rA0, 0)
	b.Label("proc_status.loop")
	b.ADD(rA0, rA0, rA1)
	b.XOR(rA0, rA0, rA2)
	b.SLLI(rT1, rA0, 3)
	b.ADD(rA0, rA0, rT1)
	b.ADD(rA0, rA0, rA3)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "proc_status.loop")
	b.Ret()

	// pipe_rw(a0 = value, a1 = count seed): push values through a ring
	// buffer and drain them (pure global-memory traffic, no allocation).
	b.GlobalRaw("pipe_ring", 256)
	b.GlobalRaw("pipe_head", 4)
	b.Func("pipe_rw")
	b.ANDI(rT0, rA1, 15)
	b.ADDI(rT0, rT0, 4) // 4..19 pushes
	b.La(rA2, "pipe_ring")
	b.La(rA3, "pipe_head")
	b.Label("pipe_rw.push")
	b.LW(rT1, rA3, 0)
	b.ANDI(rT1, rT1, 63)
	b.SLLI(rA1, rT1, 2)
	b.ADD(rA1, rA2, rA1)
	b.SW(rA0, rA1, 0)
	b.LW(rA0, rA1, 0) // read back (consumer side)
	b.ADDI(rA0, rA0, 1)
	b.LW(rT1, rA3, 0)
	b.ADDI(rT1, rT1, 1)
	b.SW(rT1, rA3, 0)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "pipe_rw.push")
	b.Ret()

	// clock_gettime: read the cycle counter into a timespec-ish global.
	b.GlobalRaw("wall_clock", 8)
	b.Func("clock_gettime")
	b.CSRR(rT0, isa.CSRCycles)
	b.La(rT1, "wall_clock")
	b.SW(rT0, rT1, 0)
	b.SRLI(rT0, rT0, 10)
	b.SW(rT0, rT1, 4)
	b.LW(rA0, rT1, 0)
	b.Ret()

	// crypto_digest(a0..a3): an ALU-heavy mixing loop (hash-like load).
	b.Func("crypto_digest")
	b.ANDI(rT0, rA1, 31)
	b.ADDI(rT0, rT0, 16)
	b.Li(rT1, 0x6A09)
	b.Label("crypto_digest.round")
	b.XOR(rT1, rT1, rA0)
	b.SLLI(rA2, rT1, 5)
	b.SRLI(rA3, rT1, 27)
	b.OR(rT1, rA2, rA3) // rotl 5
	b.ADD(rT1, rT1, rA0)
	b.ADDI(rA0, rA0, 0x11)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "crypto_digest.round")
	b.MV(rA0, rT1)
	b.Ret()

	// page_rw(a0 = fill): grab a page, memset a chunk of it, sum it back,
	// release it — the page-allocator tier of the workload.
	b.Func("page_rw")
	b.Prologue(16)
	b.SW(rA0, rSP, 0)
	b.Li(rA0, 512)
	b.Call("alloc_pages")
	b.BEQZ(rA0, "page_rw.out")
	b.SW(rA0, rSP, 8)
	b.LW(rA1, rSP, 0)
	b.Li(rA2, 256)
	b.Call("memset")
	b.LW(rT0, rSP, 8)
	b.LW(rA0, rT0, 0)
	b.LW(rT1, rT0, 128)
	b.ADD(rA0, rA0, rT1)
	b.LW(rA0, rSP, 8)
	b.Call("__free_pages")
	b.Label("page_rw.out")
	b.Li(rA0, 0)
	b.Epilogue(16)

	// netlink_echo(a0..a3): a small allocate/store/load/free round trip.
	b.Func("netlink_echo")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.SW(rA2, rSP, 8)
	b.Li(rA0, 48)
	b.Call("kmalloc")
	b.BEQZ(rA0, "netlink_echo.out")
	b.LW(rT0, rSP, 0)
	b.SW(rT0, rA0, 0)
	b.LW(rT0, rSP, 4)
	b.SW(rT0, rA0, 4)
	b.LW(rT0, rSP, 8)
	b.SW(rT0, rA0, 8)
	b.LW(rT1, rA0, 0)
	b.LW(rT0, rA0, 4)
	b.ADD(rT1, rT1, rT0)
	b.Call("kfree")
	b.Label("netlink_echo.out")
	b.Li(rA0, 0)
	b.Epilogue(32)
}

// emitKthread emits the background kernel thread that shares racy_stat with
// the race-seeded syscall handlers.
func emitKthread(b *kasm.Builder) {
	b.GlobalRaw("racy_stat", 4)
	b.GlobalRaw("kthread_stack", 8192)
	b.Func("kthread_entry")
	b.La(rT0, "racy_stat")
	b.Label("kthread.loop")
	b.LW(rT1, rT0, 0)
	b.ADDI(rT1, rT1, 1)
	b.SW(rT1, rT0, 0)
	b.YIELD()
	b.J("kthread.loop")
}

func benignPattern() []byte {
	out := make([]byte, 256)
	for i := range out {
		out[i] = byte(i * 7)
	}
	return out
}
