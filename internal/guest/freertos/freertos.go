// Package freertos is the FreeRTOS guest personality modelled on the
// InfiniTime smartwatch firmware of Table 1: a heap_4-style free-list
// allocator (pvPortMalloc / vPortFree), a background sensor task on a
// second hart, and byte-stream services (littlefs block reads, SPI
// transfers, St7789 LCD drawing) driven through the Tardis-style byte
// executor. Three bugs from Table 4 are seeded: two OOB accesses and one
// use-after-free.
package freertos

import (
	"fmt"

	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

const (
	rZ  = glib.Z
	rSP = glib.SP
	rA0 = glib.A0
	rA1 = glib.A1
	rA2 = glib.A2
	rA3 = glib.A3
	rA4 = glib.A4
	rT0 = glib.T0
	rT1 = glib.T1
)

const heapSize = 128 << 10

// Bug describes one seeded bug with its triggering byte input.
type Bug struct {
	Fn       string
	Location string
	Type     san.BugType
	Trigger  []byte
	// NeedsKCSAN marks bugs only the concurrency sanitizer can observe:
	// the trigger input alone does not fault, the race must also be
	// caught in flight by a watchpoint.
	NeedsKCSAN bool
}

// Firmware is a built InfiniTime-like image.
type Firmware struct {
	Image *kasm.Image
	Bugs  []Bug
	Seeds [][]byte // benign inputs that exercise every service (fuzzing corpus)
}

// Service command bytes (first input byte).
const (
	cmdLFSRead  = 0
	cmdSPI      = 1
	cmdLCD      = 2
	cmdSensor   = 3
	cmdRender   = 4
	cmdDisplay  = 5
	numCommands = 6
)

// Trigger sub-command bytes (second input byte) for the seeded bugs.
const (
	subLFSBug = 0x61
	subSPIBug = 0x62
	subLCDBug = 0x63
)

// Build assembles the firmware.
func Build(name string, arch isa.Arch, mode kasm.SanitizeMode) (*Firmware, error) {
	return build(name, arch, mode, false)
}

// BuildRacy assembles the firmware twin with a seeded data race: an
// unlocked step counter shared between the sensor task (hart 1) and the
// display service (hart 0). It is the lockset analysis's ground truth —
// the static triage must flag the pair, and a guided KCSAN campaign must
// find it dynamically.
func BuildRacy(name string, arch isa.Arch, mode kasm.SanitizeMode) (*Firmware, error) {
	return build(name, arch, mode, true)
}

func build(name string, arch isa.Arch, mode kasm.SanitizeMode, racy bool) (*Firmware, error) {
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: mode})
	glib.AddBoot(b, glib.BootConfig{InitFn: "rtos_init", MainFn: "executor_loop"})
	glib.AddLib(b)
	emitHeap4(b)
	emitQueue(b, racy)
	emitInit(b)
	emitServices(b)
	emitSensorTask(b, racy)
	glib.AddByteExecutor(b, "infinitime_dispatch")

	img, err := b.Link(name)
	if err != nil {
		return nil, fmt.Errorf("freertos: build %s: %w", name, err)
	}
	fw := &Firmware{
		Image: img,
		Bugs: []Bug{
			{Fn: "lfs_bd_read", Location: "src/libs/littlefs/", Type: san.BugOOB,
				Trigger: []byte{cmdLFSRead, subLFSBug, 0, 0, 1, 2, 3, 4}},
			{Fn: "spi_transfer", Location: "src/drivers/Spi", Type: san.BugOOB,
				Trigger: []byte{cmdSPI, subSPIBug, 0, 0}},
			{Fn: "st7789_draw", Location: "src/drivers/St7789", Type: san.BugUAF,
				Trigger: []byte{cmdLCD, subLCDBug, 0, 0}},
		},
		Seeds: [][]byte{
			{cmdLFSRead, 0, 0, 0, 9, 8, 7, 6, 5, 4, 3, 2},
			{cmdSPI, 1, 0, 0, 1, 1},
			{cmdLCD, 2, 0, 0},
			{cmdSensor, 0},
			{cmdRender, 0, 16},
			{cmdDisplay, 0},
		},
	}
	if racy {
		fw.Bugs = append(fw.Bugs, Bug{
			Fn: "display_update", Location: "src/displayapp/", Type: san.BugRace,
			Trigger: []byte{cmdDisplay, 0}, NeedsKCSAN: true,
		})
	}
	return fw, nil
}

func emitInit(b *kasm.Builder) {
	b.GlobalRaw("sensor_stack", 4096)
	b.Func("rtos_init")
	b.Prologue(16)
	b.Call("port_heap_init")
	// Boot allocations: the display and touch buffers every RTOS firmware
	// makes (and which the Prober's dry run observes).
	b.Li(rA0, 96)
	b.Call("pvPortMalloc")
	b.Li(rA0, 40)
	b.Call("pvPortMalloc")
	// Start the sensor task on hart 1.
	b.Li(rA0, 1)
	b.La(rA1, "sensor_task")
	b.La(rA2, "sensor_stack")
	b.Li(rT0, 4092)
	b.ADD(rA2, rA2, rT0)
	b.HCALL(isa.HcallSpawn)
	b.Epilogue(16)
}

// emitHeap4 emits the heap_4-style allocator: a singly linked free list of
// {next, size} blocks, first-fit with tail splitting.
func emitHeap4(b *kasm.Builder) {
	b.GlobalAlign("ucHeap", heapSize, 8)
	b.GlobalRaw("xHeapFree", 4)

	b.Func("port_heap_init")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(rT0, "ucHeap")
		b.La(rT1, "xHeapFree")
		b.SW(rT0, rT1, 0)
		b.SW(rZ, rT0, 0) // next = nil
		b.LUI(rA2, heapSize>>12)
		b.SW(rA2, rT0, 4) // one block spanning the heap
	})
	b.La(rA0, "ucHeap")
	b.LUI(rA1, heapSize>>12)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)

	// pvPortMalloc(a0 = size) -> a0 = ptr or 0.
	b.Func("pvPortMalloc")
	b.NoSan(func() {
		b.MV(rA1, rA0) // requested size for the hook
		b.ADDI(rT0, rA0, 15)
		b.ANDI(rT0, rT0, -8) // total block size incl. 8-byte header
		b.La(rA2, "xHeapFree")
		b.LW(rA3, rA2, 0)
		b.Label("pvPortMalloc.walk")
		b.BEQZ(rA3, "pvPortMalloc.fail")
		b.LW(rT1, rA3, 4)
		b.BGEU(rT1, rT0, "pvPortMalloc.take")
		b.MV(rA2, rA3) // prev link holder (next field at offset 0)
		b.LW(rA3, rA3, 0)
		b.J("pvPortMalloc.walk")
		b.Label("pvPortMalloc.take")
		b.SUB(rT1, rT1, rT0) // remainder
		b.SLTIU(rA4, rT1, 24)
		b.BNEZ(rA4, "pvPortMalloc.whole")
		// Split: shrink the free block in place, allocate its tail.
		b.SW(rT1, rA3, 4)
		b.ADD(rA4, rA3, rT1)
		b.SW(rT0, rA4, 4)
		b.ADDI(rA0, rA4, 8)
		b.J("pvPortMalloc.hook")
		b.Label("pvPortMalloc.whole")
		b.LW(rA4, rA3, 0)
		b.SW(rA4, rA2, 0) // unlink
		b.ADDI(rA0, rA3, 8)
		b.Label("pvPortMalloc.hook")
	})
	b.SanAllocHook()
	b.Ret()
	b.NoSan(func() {
		b.Label("pvPortMalloc.fail")
		b.Li(rA0, 0)
	})
	b.Ret()
	b.MarkAlloc("pvPortMalloc")

	// vPortFree(a0 = ptr).
	b.Func("vPortFree")
	b.Prologue(16)
	b.NoSan(func() {
		b.BEQZ(rA0, "vPortFree.out")
		b.SW(rA0, rSP, 0)
		b.ADDI(rT0, rA0, -8)
		b.LW(rA1, rT0, 4)
		b.ADDI(rA1, rA1, -8) // payload size for the hook
	})
	b.SanFreeHook()
	b.NoSan(func() {
		b.LW(rA0, rSP, 0)
		b.ADDI(rT0, rA0, -8)
		b.La(rA2, "xHeapFree")
		b.LW(rA3, rA2, 0)
		b.SW(rA3, rT0, 0)
		b.SW(rT0, rA2, 0)
		b.Label("vPortFree.out")
	})
	b.Epilogue(16)
	b.MarkFree("vPortFree")
}

func emitServices(b *kasm.Builder) {
	// infinitime_dispatch(a0 = buf, a1 = len) -> a0 = status.
	b.Func("infinitime_dispatch")
	b.Prologue(16)
	b.Li(rT0, 2)
	b.BLTU(rA1, rT0, "dispatch.out")
	b.LBU(rT0, rA0, 0) // command byte
	b.Li(rT1, numCommands)
	b.BGEU(rT0, rT1, "dispatch.out")
	b.SLLI(rT0, rT0, 2)
	b.La(rT1, "svc_table")
	b.ADD(rT1, rT1, rT0)
	b.NoSan(func() { b.LW(rT1, rT1, 0) })
	b.JALR(glib.RA, rT1, 0)
	b.Label("dispatch.out")
	b.Li(rA0, 0)
	b.Epilogue(16)
	b.DataWordSyms("svc_table", []string{
		"lfs_bd_read", "spi_transfer", "st7789_draw", "hr_sensor_read",
		"render_frame", "display_update",
	})

	// lfs_bd_read(a0 = buf, a1 = len): copy a "block" into a cache buffer.
	// Bug: sub-command 0x61 writes one byte past the 64-byte cache.
	b.Func("lfs_bd_read")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.Li(rA0, 64)
	b.Call("pvPortMalloc")
	b.BEQZ(rA0, "lfs.out")
	b.SW(rA0, rSP, 8)
	// Copy up to 48 payload bytes from the request.
	b.LW(rA2, rSP, 4)
	b.ADDI(rA2, rA2, -4)
	b.BLT(rA2, rZ, "lfs.nobody")
	b.Li(rT0, 48)
	b.BLT(rA2, rT0, "lfs.copy")
	b.MV(rA2, rT0)
	b.Label("lfs.copy")
	b.LW(rA1, rSP, 0)
	b.ADDI(rA1, rA1, 4)
	b.Call("memcpy") // a0 = cache (still), a1 = req+4, a2 = n
	b.Label("lfs.nobody")
	// The seeded bug.
	b.LW(rT0, rSP, 0)
	b.LBU(rT0, rT0, 1) // sub-command
	b.Li(rT1, subLFSBug)
	b.BNE(rT0, rT1, "lfs.free")
	b.LW(rT0, rSP, 8)
	b.Li(rT1, 0x7E)
	b.SB(rT1, rT0, 64) // one past the cache block
	b.Label("lfs.free")
	b.LW(rA0, rSP, 8)
	b.Call("vPortFree")
	b.Label("lfs.out")
	b.Epilogue(32)

	// spi_transfer(a0 = buf, a1 = len): allocate a DMA descriptor.
	// Bug: sub-command 0x62 stores one word past the 32-byte descriptor.
	b.Func("spi_transfer")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.Li(rA0, 32)
	b.Call("pvPortMalloc")
	b.BEQZ(rA0, "spi.out")
	b.SW(rA0, rSP, 8)
	b.Li(rT0, 0x51)
	b.SW(rT0, rA0, 0)
	b.SW(rT0, rA0, 28)
	b.LW(rT0, rSP, 0)
	b.LBU(rT0, rT0, 1)
	b.Li(rT1, subSPIBug)
	b.BNE(rT0, rT1, "spi.free")
	b.LW(rT0, rSP, 8)
	b.Li(rT1, 0x52)
	b.SW(rT1, rT0, 32) // one word past the descriptor
	b.Label("spi.free")
	b.LW(rA0, rSP, 8)
	b.Call("vPortFree")
	b.Label("spi.out")
	b.Epilogue(32)

	// st7789_draw(a0 = buf, a1 = len): allocate and free a line buffer.
	// Bug: sub-command 0x63 reads the buffer after the free.
	b.Func("st7789_draw")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.Li(rA0, 48)
	b.Call("pvPortMalloc")
	b.BEQZ(rA0, "lcd.out")
	b.SW(rA0, rSP, 8)
	b.Li(rT0, 0xFF)
	b.SB(rT0, rA0, 0)
	b.Call("vPortFree") // a0 is still the buffer
	b.LW(rT0, rSP, 0)
	b.LBU(rT0, rT0, 1)
	b.Li(rT1, subLCDBug)
	b.BNE(rT0, rT1, "lcd.out")
	b.LW(rT0, rSP, 8)
	b.LW(rT1, rT0, 0) // use after free
	b.Label("lcd.out")
	b.Epilogue(32)

	// hr_sensor_read: benign — publish a reading atomically.
	b.GlobalRaw("hr_reading", 4)
	b.Func("hr_sensor_read")
	b.La(rT0, "hr_reading")
	b.CSRR(rT1, isa.CSRRand)
	b.ANDI(rT1, rT1, 255)
	b.AMOSWAPW(rZ, rT0, rT1)
	b.Ret()

	// render_frame(a0 = buf, a1 = len): benign — memset a canvas strip.
	b.GlobalRaw("canvas", 2048)
	b.Func("render_frame")
	b.Prologue(16)
	b.LBU(rT0, rA0, 2)
	b.ANDI(rT0, rT0, 127)
	b.ADDI(rA2, rT0, 64) // strip length
	b.La(rA0, "canvas")
	b.Li(rA1, 0x20)
	b.Call("memset")
	b.La(rT0, "canvas")
	b.LW(rT1, rT0, 0)
	b.Epilogue(16)
}

// emitQueue emits a FreeRTOS-style fixed-capacity message queue guarded by
// a spinlock: {lock, head, count, items[16]}. The sensor task produces
// into it, the display service consumes.
func emitQueue(b *kasm.Builder, racy bool) {
	const qCap = 16
	b.GlobalRaw("xSensorQueue", 12+qCap*4)
	if racy {
		b.GlobalRaw("step_count", 4)
	}

	// xQueueSend(a0 = queue, a1 = item) -> a0 = 1 ok / 0 full.
	b.Func("xQueueSend")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.SW(rA1, rSP, 4)
	b.Call("spin_lock") // a0 = &queue.lock
	b.LW(rT0, rSP, 0)
	b.LW(rT1, rT0, 8) // count
	b.Li(rA2, qCap)
	b.BGEU(rT1, rA2, "xQueueSend.full")
	// slot = (head + count) % cap
	b.LW(rA2, rT0, 4)
	b.ADD(rA2, rA2, rT1)
	b.ANDI(rA2, rA2, qCap-1)
	b.SLLI(rA2, rA2, 2)
	b.ADD(rA2, rT0, rA2)
	b.LW(rA3, rSP, 4)
	b.SW(rA3, rA2, 12)
	b.ADDI(rT1, rT1, 1)
	b.SW(rT1, rT0, 8)
	b.LW(rA0, rSP, 0)
	b.Call("spin_unlock")
	b.Li(rA0, 1)
	b.Epilogue(32)
	b.Label("xQueueSend.full")
	b.LW(rA0, rSP, 0)
	b.Call("spin_unlock")
	b.Li(rA0, 0)
	b.Epilogue(32)

	// xQueueReceive(a0 = queue) -> a0 = item, a1 = 1 ok / 0 empty.
	b.Func("xQueueReceive")
	b.Prologue(32)
	b.SW(rA0, rSP, 0)
	b.Call("spin_lock")
	b.LW(rT0, rSP, 0)
	b.LW(rT1, rT0, 8) // count
	b.BEQZ(rT1, "xQueueReceive.empty")
	b.LW(rA2, rT0, 4) // head
	b.SLLI(rA3, rA2, 2)
	b.ADD(rA3, rT0, rA3)
	b.LW(rA3, rA3, 12) // item
	b.SW(rA3, rSP, 4)
	b.ADDI(rA2, rA2, 1)
	b.ANDI(rA2, rA2, qCap-1)
	b.SW(rA2, rT0, 4)
	b.ADDI(rT1, rT1, -1)
	b.SW(rT1, rT0, 8)
	b.LW(rA0, rSP, 0)
	b.Call("spin_unlock")
	b.LW(rA0, rSP, 4)
	b.Li(rA1, 1)
	b.Epilogue(32)
	b.Label("xQueueReceive.empty")
	b.LW(rA0, rSP, 0)
	b.Call("spin_unlock")
	b.Li(rA0, 0)
	b.Li(rA1, 0)
	b.Epilogue(32)

	// display_update: drain up to 8 queued samples into the frame stat.
	b.GlobalRaw("frame_stat", 4)
	b.Func("display_update")
	b.Prologue(16)
	b.Li(rT0, 8)
	b.Label("display.loop")
	b.SW(rT0, rSP, 0)
	b.La(rA0, "xSensorQueue")
	b.Call("xQueueReceive")
	b.BEQZ(rA1, "display.done")
	b.La(rT1, "frame_stat")
	b.LW(rA2, rT1, 0)
	b.ADD(rA2, rA2, rA0)
	b.SW(rA2, rT1, 0)
	b.LW(rT0, rSP, 0)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "display.loop")
	b.Label("display.done")
	if racy {
		// The seeded data race: an unlocked read-modify-write of the step
		// counter the sensor task increments concurrently on hart 1.
		b.La(rT1, "step_count")
		b.LW(rA2, rT1, 0)
		b.ADDI(rA2, rA2, 1)
		b.SW(rA2, rT1, 0)
	}
	b.Li(rA0, 0)
	b.Epilogue(16)
}

// emitSensorTask emits the background FreeRTOS task (hart 1): it publishes
// samples through an atomic cell and produces into the sensor queue.
func emitSensorTask(b *kasm.Builder, racy bool) {
	b.Func("sensor_task")
	b.Label("sensor.loop")
	b.CSRR(rT1, isa.CSRRand)
	b.ANDI(rT1, rT1, 255)
	b.La(rT0, "hr_reading")
	b.AMOSWAPW(rZ, rT0, rT1)
	if racy {
		// The other side of the seeded race: an unlocked increment of the
		// shared step counter from hart 1.
		b.La(rT0, "step_count")
		b.LW(rA2, rT0, 0)
		b.ADDI(rA2, rA2, 1)
		b.SW(rA2, rT0, 0)
	}
	b.La(rA0, "xSensorQueue")
	b.MV(rA1, rT1)
	b.Call("xQueueSend")
	b.YIELD()
	b.J("sensor.loop")
}
