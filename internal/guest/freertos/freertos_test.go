package freertos

import (
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

func boot(t *testing.T, mode kasm.SanitizeMode, sans []string) (*Firmware, *core.Instance) {
	t.Helper()
	fw, err := Build("infinitime-test", isa.ArchARM32E, mode)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.New(core.Config{
		Image:       fw.Image,
		Sanitizers:  sans,
		NoSanitizer: len(sans) == 0,
		Machine:     emu.Config{MaxHarts: 2, Seed: 5},
		KCSAN:       san.KCSANConfig{SampleInterval: 20, Delay: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	return fw, inst
}

func TestSeedsCleanUnderKASANAndKCSAN(t *testing.T) {
	// The sensor task and the display service share the queue through a
	// spinlock; neither KASAN nor KCSAN may flag the benign services.
	fw, inst := boot(t, kasm.SanNone, []string{"kasan", "kcsan"})
	for round := 0; round < 3; round++ {
		for i, seed := range fw.Seeds {
			res := inst.Exec(seed, 50_000_000)
			if !res.Done {
				t.Fatalf("seed %d round %d: stop=%v fault=%v", i, round, res.Stop, res.Fault)
			}
			if len(res.Reports) != 0 {
				t.Fatalf("seed %d round %d: %s", i, round, res.Reports[0].Title())
			}
		}
	}
}

func TestQueueDeliversSamples(t *testing.T) {
	fw, inst := boot(t, kasm.SanNone, nil)
	// Let the sensor task run for a while, then drain via the display
	// service; the frame stat must have accumulated something.
	inst.Run(200_000)
	res := inst.Exec(fw.Seeds[5], 50_000_000) // cmdDisplay
	if !res.Done {
		t.Fatalf("display: %v %v", res.Stop, res.Fault)
	}
	stat, ok := fw.Image.Lookup("frame_stat")
	if !ok {
		t.Fatal("no frame_stat")
	}
	v, _ := inst.Machine.ReadWord(stat.Addr)
	if v == 0 {
		t.Error("display service drained nothing from the sensor queue")
	}
}

func TestTriggersDetectPerMode(t *testing.T) {
	want := map[string]san.BugType{
		"lfs_bd_read":  san.BugOOB,
		"spi_transfer": san.BugOOB,
		"st7789_draw":  san.BugUAF,
	}
	// EMBSAN-D on the stock build, EMBSAN-C on a rebuilt image.
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanEmbsanC} {
		fw, inst := boot(t, mode, []string{"kasan"})
		for _, bug := range fw.Bugs {
			inst.Restore()
			res := inst.Exec(bug.Trigger, 50_000_000)
			if len(res.Reports) == 0 {
				t.Errorf("%s/%s: not detected", mode, bug.Fn)
				continue
			}
			if res.Reports[0].Bug != want[bug.Fn] {
				t.Errorf("%s/%s: %v, want %v", mode, bug.Fn, res.Reports[0].Bug, want[bug.Fn])
			}
		}
	}
}

func TestNativeKASANBaselineDetects(t *testing.T) {
	fw, inst := boot(t, kasm.SanNativeKASAN, nil)
	for _, bug := range fw.Bugs {
		inst.Restore()
		inst.Machine.SanDev.Reset()
		res := inst.Exec(bug.Trigger, 50_000_000)
		if len(res.Reports) == 0 {
			t.Errorf("native: %s not detected (done=%v)", bug.Fn, res.Done)
		}
	}
}

func TestHeap4SplitsAndReuses(t *testing.T) {
	// White-box check of the allocator: repeated alloc/free cycles through
	// the services must not exhaust the 128 KiB heap (free-list reuse).
	fw, inst := boot(t, kasm.SanNone, []string{"kasan"})
	for i := 0; i < 200; i++ {
		res := inst.Exec(fw.Seeds[0], 50_000_000) // lfs: alloc 64 + free
		if !res.Done || len(res.Reports) != 0 {
			t.Fatalf("cycle %d: done=%v reports=%d", i, res.Done, len(res.Reports))
		}
	}
}
