package gabi

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Prog{
		{NR: 3, NArgs: 2, Args: [4]uint32{1, 2, 0, 0}},
		{NR: 0xFFFF, NArgs: 4, Args: [4]uint32{0xDEADBEEF, 0, 1, 0x7FFFFFFF}},
	}
	enc := p.Encode()
	if len(enc) != 2*RecordSize {
		t.Fatalf("encoded length = %d", len(enc))
	}
	dec := Decode(enc)
	if len(dec) != 2 || dec[0] != p[0] || dec[1] != p[1] {
		t.Errorf("round trip mismatch: %+v", dec)
	}
}

func TestDecodeIgnoresTrailingPartialRecord(t *testing.T) {
	p := Prog{{NR: 1}}
	enc := append(p.Encode(), 0xAA, 0xBB)
	dec := Decode(enc)
	if len(dec) != 1 {
		t.Errorf("partial record decoded: %d records", len(dec))
	}
}

func TestWireFormatIsLittleEndian(t *testing.T) {
	enc := Prog{{NR: 0x01020304}}.Encode()
	if !bytes.Equal(enc[:4], []byte{4, 3, 2, 1}) {
		t.Errorf("NR bytes = % x", enc[:4])
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(nr, a0, a1, a2, a3 uint32, n uint8) bool {
		p := make(Prog, int(n%16))
		for i := range p {
			p[i] = Record{NR: nr + uint32(i), NArgs: uint32(i % 5), Args: [4]uint32{a0, a1, a2, a3}}
		}
		dec := Decode(p.Encode())
		if len(dec) != len(p) {
			return false
		}
		for i := range p {
			if dec[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
