// Package gabi defines the host↔guest testing ABI: the syscall-record
// encoding the fuzzing executor inside every firmware consumes from the
// mailbox device. Word fields are little-endian regardless of guest
// architecture because the mailbox data window is a device, not RAM.
package gabi

import "encoding/binary"

// RecordSize is the wire size of one syscall record.
const RecordSize = 24

// MaxArgs is the number of argument slots per record.
const MaxArgs = 4

// Record is one syscall invocation.
type Record struct {
	NR    uint32
	NArgs uint32
	Args  [MaxArgs]uint32
}

// Prog is a sequence of records — the syscall-fuzzing input unit.
type Prog []Record

// Encode serialises the program for the mailbox.
func (p Prog) Encode() []byte {
	out := make([]byte, 0, len(p)*RecordSize)
	var buf [RecordSize]byte
	for _, r := range p {
		binary.LittleEndian.PutUint32(buf[0:], r.NR)
		binary.LittleEndian.PutUint32(buf[4:], r.NArgs)
		for i, a := range r.Args {
			binary.LittleEndian.PutUint32(buf[8+4*i:], a)
		}
		out = append(out, buf[:]...)
	}
	return out
}

// Decode parses a mailbox buffer back into a program (whole records only).
func Decode(b []byte) Prog {
	n := len(b) / RecordSize
	p := make(Prog, 0, n)
	for i := 0; i < n; i++ {
		off := i * RecordSize
		r := Record{
			NR:    binary.LittleEndian.Uint32(b[off:]),
			NArgs: binary.LittleEndian.Uint32(b[off+4:]),
		}
		for j := 0; j < MaxArgs; j++ {
			r.Args[j] = binary.LittleEndian.Uint32(b[off+8+4*j:])
		}
		p = append(p, r)
	}
	return p
}
