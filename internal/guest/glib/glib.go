// Package glib is the common guest runtime library shared by all firmware
// personalities: boot code, string/memory routines, a console, spinlocks,
// the fuzzing executor scaffolding, and — for natively sanitized builds —
// complete in-guest KASAN and KCSAN runtimes (the reference baselines the
// paper compares EMBSAN against).
package glib

import (
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// Register aliases, exported so the guest personalities read naturally.
const (
	Z  = isa.RegZero
	RA = isa.RegRA
	SP = isa.RegSP
	A0 = isa.RegA0
	A1 = isa.RegA1
	A2 = isa.RegA2
	A3 = isa.RegA3
	A4 = isa.RegA4
	A5 = isa.RegA5
	A6 = isa.RegA6
	A7 = isa.RegA7
	T0 = isa.RegT0
	T1 = isa.RegT1
	K0 = isa.RegK0
	K1 = isa.RegK1
	K2 = isa.RegK2
)

// MMIO base addresses as signed immediates for Li.
const (
	UARTLi     = int32(int64(emu.UARTBase) - (1 << 32))
	MailboxLi  = int32(int64(emu.MailboxBase) - (1 << 32))
	MailDataLi = int32(int64(emu.MailboxData) - (1 << 32))
	TestDevLi  = int32(int64(emu.TestDevBase) - (1 << 32))
	SanDevLi   = int32(int64(emu.SanDevBase) - (1 << 32))
)

// BootConfig parameterises the common boot path.
type BootConfig struct {
	InitFn    string // called before the ready hypercall
	MainFn    string // called after ready; normally the executor loop
	StackSize uint32 // boot stack size (default 16 KiB)
}

// AddBoot emits _start: stack setup, native-sanitizer init, OS init, the
// ready-to-run hypercall, then the main loop.
func AddBoot(b *kasm.Builder, cfg BootConfig) {
	if cfg.StackSize == 0 {
		cfg.StackSize = 16 << 10
	}
	b.GlobalRaw("__boot_stack", cfg.StackSize)
	b.Func("_start")
	b.La(SP, "__boot_stack")
	b.Li(T0, int32(cfg.StackSize-16))
	b.ADD(SP, SP, T0)
	switch b.Mode() {
	case kasm.SanNativeKASAN:
		b.Call("__kasan_init")
	case kasm.SanNativeKCSAN:
		b.Call("__kcsan_init")
	}
	if cfg.InitFn != "" {
		b.Call(cfg.InitFn)
	}
	b.Ready()
	if cfg.MainFn != "" {
		b.Call(cfg.MainFn)
	}
	b.HALT()
}

// AddLib emits the shared runtime routines. Call once per build, after
// AddBoot. The native sanitizer runtimes are added automatically when the
// build mode requires them.
func AddLib(b *kasm.Builder) {
	addMem(b)
	addConsole(b)
	addLocks(b)
	switch b.Mode() {
	case kasm.SanNativeKASAN:
		addNativeKASAN(b)
	case kasm.SanNativeKCSAN:
		addNativeKCSAN(b)
	}
}

// addMem emits memcpy/memset/bzero. The bodies are uninstrumented library
// code guarded by a single range-interceptor hook, exactly like the real
// __asan_memcpy interceptors — compilers do not instrument the inner loops.
func addMem(b *kasm.Builder) {
	// memcpy(a0=dst, a1=src, a2=len) -> a0
	b.Func("memcpy")
	b.Prologue(16) // the interceptor hook is a call in native builds
	b.SanMemcpyHook()
	b.NoSan(func() {
		b.MV(T0, A0)      // cursor dst
		b.MV(T1, A1)      // cursor src
		b.ADD(A3, A0, A2) // end dst
		// Word-at-a-time when both pointers share alignment and len >= 4.
		b.OR(A4, T0, T1)
		b.ANDI(A4, A4, 3)
		b.BNEZ(A4, "memcpy.bytes")
		b.Label("memcpy.words")
		b.ADDI(A4, T0, 4)
		b.BLTU(A3, A4, "memcpy.bytes") // fewer than 4 bytes left
		b.LW(A5, T1, 0)
		b.SW(A5, T0, 0)
		b.ADDI(T0, T0, 4)
		b.ADDI(T1, T1, 4)
		b.J("memcpy.words")
		b.Label("memcpy.bytes")
		b.BGEU(T0, A3, "memcpy.done")
		b.LBU(A5, T1, 0)
		b.SB(A5, T0, 0)
		b.ADDI(T0, T0, 1)
		b.ADDI(T1, T1, 1)
		b.J("memcpy.bytes")
		b.Label("memcpy.done")
	})
	b.Epilogue(16)

	// memset(a0=dst, a1=val, a2=len) -> a0
	b.Func("memset")
	b.Prologue(16)
	b.SanMemsetHook()
	b.NoSan(func() {
		b.MV(T0, A0)
		b.ADD(A3, A0, A2)
		b.Label("memset.loop")
		b.BGEU(T0, A3, "memset.done")
		b.SB(A1, T0, 0)
		b.ADDI(T0, T0, 1)
		b.J("memset.loop")
		b.Label("memset.done")
	})
	b.Epilogue(16)

	// bzero(a0=dst, a1=len)
	b.Func("bzero")
	b.MV(A2, A1)
	b.Li(A1, 0)
	b.J("memset")
}

// addConsole emits puts/put_hex/panic on the UART.
func addConsole(b *kasm.Builder) {
	// puts(a0 = NUL-terminated string)
	b.Func("puts")
	b.NoSan(func() {
		b.Li(T0, UARTLi)
		b.Label("puts.loop")
		b.LBU(T1, A0, 0)
		b.BEQZ(T1, "puts.done")
		b.SB(T1, T0, 0)
		b.ADDI(A0, A0, 1)
		b.J("puts.loop")
		b.Label("puts.done")
	})
	b.Ret()

	// put_hex(a0 = word): prints 8 hex digits.
	b.Func("put_hex")
	b.NoSan(func() {
		b.Li(T0, UARTLi)
		b.Li(A2, 8)
		b.Label("put_hex.loop")
		b.SRLI(T1, A0, 28)
		b.SLTIU(A3, T1, 10)
		b.BEQZ(A3, "put_hex.alpha")
		b.ADDI(T1, T1, '0')
		b.J("put_hex.emit")
		b.Label("put_hex.alpha")
		b.ADDI(T1, T1, 'a'-10)
		b.Label("put_hex.emit")
		b.SB(T1, T0, 0)
		b.SLLI(A0, A0, 4)
		b.ADDI(A2, A2, -1)
		b.BNEZ(A2, "put_hex.loop")
	})
	b.Ret()

	// panic(a0 = message): print and stop the machine.
	b.Func("panic")
	b.Call("puts")
	b.Li(A0, 2)
	b.HCALL(isa.HcallExit)
	b.HALT()
}

// addLocks emits spin_lock/spin_unlock (a0 = lock word address). Both sides
// use atomics so the concurrency sanitizer treats them as marked accesses.
func addLocks(b *kasm.Builder) {
	b.Func("spin_lock")
	b.Li(T1, 1)
	b.Label("spin_lock.retry")
	b.AMOSWAPW(T0, A0, T1)
	b.BEQZ(T0, "spin_lock.got")
	b.YIELD()
	b.J("spin_lock.retry")
	b.Label("spin_lock.got")
	b.FENCE()
	b.Ret()

	b.Func("spin_unlock")
	b.FENCE()
	b.AMOSWAPW(Z, A0, Z)
	b.Ret()
}

// AddSyscallExecutor emits the guest executor loop used by the syscall
// fuzzing frontend. It polls the mailbox, decodes fixed-size records
// (nr, nargs, arg0..arg3 — 24 bytes each, little-endian device order) and
// dispatches through tableSym, a DataWordSyms table with tableLen entries.
// The done register receives the number of executed calls.
func AddSyscallExecutor(b *kasm.Builder, tableSym string, tableLen int) {
	b.Func("executor_loop")
	b.Li(A6, MailboxLi)
	b.Label("exec.poll")
	b.YIELD()
	b.LW(T0, A6, 0) // status
	b.BEQZ(T0, "exec.poll")
	b.LW(A7, A6, 4) // length in bytes
	b.Li(A5, MailDataLi)
	b.Li(A4, 0) // executed count
	b.Label("exec.next")
	// Need 24 bytes for a record.
	b.ADDI(T0, A7, -24)
	b.BLT(T0, Z, "exec.done")
	b.ADDI(A7, A7, -24)
	b.LW(T0, A5, 0) // syscall nr
	// Bounds-check the syscall number.
	b.Li(T1, int32(tableLen))
	b.BGEU(T0, T1, "exec.skip")
	// Load args.
	b.LW(A0, A5, 8)
	b.LW(A1, A5, 12)
	b.LW(A2, A5, 16)
	b.LW(A3, A5, 20)
	// Dispatch: t1 = table[nr].
	b.SLLI(T0, T0, 2)
	b.La(T1, tableSym)
	b.ADD(T1, T1, T0)
	b.NoSan(func() { b.LW(T1, T1, 0) }) // table read is kernel metadata
	b.ADDI(A5, A5, 24)
	// Save loop registers the handler may clobber.
	b.ADDI(SP, SP, -16)
	b.SW(A4, SP, 0)
	b.SW(A5, SP, 4)
	b.SW(A6, SP, 8)
	b.SW(A7, SP, 12)
	b.JALR(RA, T1, 0)
	b.LW(A4, SP, 0)
	b.LW(A5, SP, 4)
	b.LW(A6, SP, 8)
	b.LW(A7, SP, 12)
	b.ADDI(SP, SP, 16)
	b.ADDI(A4, A4, 1)
	b.J("exec.next")
	b.Label("exec.skip")
	b.ADDI(A5, A5, 24)
	b.J("exec.next")
	b.Label("exec.done")
	b.SW(A4, A6, 8) // done register <- executed count
	b.J("exec.poll")
}

// AddByteExecutor emits the guest executor loop used by the byte-input
// (Tardis-style) fuzzing frontend: each mailbox input is handed to
// handler(a0 = data ptr, a1 = len) as one packet/request.
func AddByteExecutor(b *kasm.Builder, handler string) {
	b.Func("executor_loop")
	b.Li(A6, MailboxLi)
	b.Label("bexec.poll")
	b.YIELD()
	b.LW(T0, A6, 0)
	b.BEQZ(T0, "bexec.poll")
	b.LW(A1, A6, 4)
	b.Li(A0, MailDataLi)
	b.ADDI(SP, SP, -16)
	b.SW(A6, SP, 0)
	b.Call(handler)
	b.LW(A6, SP, 0)
	b.ADDI(SP, SP, 16)
	b.SW(A0, A6, 8) // done <- handler result
	b.J("bexec.poll")
}
