package glib

import (
	"fmt"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// In-guest sanitizer runtimes. These are the "native KASAN/KCSAN"
// implementations the evaluation compares EMBSAN against: the compile-time
// instrumentation pass expands every memory access into a call to
// __kasan_loadN/__kasan_storeN (or __kcsan_load/__kcsan_store), and these
// routines maintain shadow state entirely inside the guest, reporting
// violations through the SanDev device.
//
// The per-access entry points follow a special ABI: the address arrives in
// k0, the link register is k2 and k1 is scratch; architectural state beyond
// the reserved registers is never touched (the per-hart scratch CSRs hold
// the spilled link). All bodies are NoSan/AllowReserved: the sanitizer must
// not sanitize itself.

// Shadow layout: one byte per 8-byte granule covering all of RAM.
const (
	nativeRAMTopHi = 0x1000 // %hi(16 MiB): accesses at or above are skipped
)

// addNativeKASAN emits the complete in-guest KASAN runtime.
func addNativeKASAN(b *kasm.Builder) {
	ramSize := uint32(16 << 20)
	b.GlobalAlign("__kasan_shadow", ramSize/san.Granularity, 4096)

	// Per-access checks for every size/direction combination.
	for _, e := range []struct {
		name string
		size int32
	}{
		{kasm.SymKasanLoad1, 1}, {kasm.SymKasanLoad2, 2}, {kasm.SymKasanLoad4, 4},
		{kasm.SymKasanStore1, 1}, {kasm.SymKasanStore2, 2}, {kasm.SymKasanStore4, 4},
	} {
		emitKasanCheck(b, e.name, e.size)
	}

	// __kasan_poison(a0=addr, a1=size, a2=code): shadow[g] = code for every
	// granule overlapping [addr, addr+size). Uses only a-registers.
	b.Func("__kasan_poison")
	b.NoSan(func() {
		b.BEQZ(A1, "__kasan_poison.done")
		b.ADD(A3, A0, A1)
		b.ADDI(A3, A3, 7)
		b.SRLI(A3, A3, 3) // end granule index (exclusive)
		b.SRLI(A4, A0, 3) // start granule index
		b.La(A5, "__kasan_shadow")
		b.ADD(A3, A3, A5)
		b.ADD(A4, A4, A5)
		b.Label("__kasan_poison.loop")
		b.BGEU(A4, A3, "__kasan_poison.done")
		b.SB(A2, A4, 0)
		b.ADDI(A4, A4, 1)
		b.J("__kasan_poison.loop")
		b.Label("__kasan_poison.done")
	})
	b.Ret()

	// __kasan_unpoison(a0=addr, a1=size): full granules become 0; a partial
	// trailing granule records its valid byte count.
	b.Func("__kasan_unpoison")
	b.NoSan(func() {
		b.BEQZ(A1, "__kasan_unpoison.done")
		b.ADD(A3, A0, A1) // end address
		b.SRLI(A4, A0, 3)
		b.La(A5, "__kasan_shadow")
		b.ADD(A4, A4, A5) // cursor shadow ptr
		b.SRLI(A6, A3, 3)
		b.ADD(A6, A6, A5) // full-granule end shadow ptr
		b.Label("__kasan_unpoison.loop")
		b.BGEU(A4, A6, "__kasan_unpoison.tail")
		b.SB(Z, A4, 0)
		b.ADDI(A4, A4, 1)
		b.J("__kasan_unpoison.loop")
		b.Label("__kasan_unpoison.tail")
		b.ANDI(A3, A3, 7)
		b.BEQZ(A3, "__kasan_unpoison.done")
		b.SB(A3, A4, 0)
		b.Label("__kasan_unpoison.done")
	})
	b.Ret()

	// __kasan_alloc(a0=ptr, a1=size): allocator hook.
	b.Func("__kasan_alloc")
	b.J("__kasan_unpoison")

	// __kasan_free(a0=ptr, a1=size): allocator hook.
	b.Func("__kasan_free")
	b.Li(A2, int32(san.CodeHeapFree))
	b.J("__kasan_poison")

	// __kasan_range(a0=addr, a1=len): granule-walk a whole region, report
	// the first violation. Preserves a0/a1; clobbers a2..a6.
	b.Func("__kasan_range")
	b.NoSan(func() {
		b.BEQZ(A1, "__kasan_range.done")
		// Device memory has no shadow: skip ranges outside RAM.
		b.LUI(A2, nativeRAMTopHi)
		b.BGEU(A0, A2, "__kasan_range.done")
		b.ADD(A4, A0, A1) // end
		b.MV(A3, A0)      // cursor
		b.La(A5, "__kasan_shadow")
		b.Label("__kasan_range.loop")
		b.BGEU(A3, A4, "__kasan_range.done")
		b.SRLI(A2, A3, 3)
		b.ADD(A2, A2, A5)
		b.LBU(A2, A2, 0)
		b.BEQZ(A2, "__kasan_range.next")
		b.SLTIU(A6, A2, 8)
		b.BEQZ(A6, "__kasan_range.bad")
		// Partial granule: first invalid byte = granule start + valid count.
		b.ANDI(A6, A3, -8)
		b.ADD(A6, A6, A2)
		b.BGEU(A6, A4, "__kasan_range.next")
		b.Label("__kasan_range.bad")
		b.Li(A6, SanDevLi)
		b.SW(A3, A6, 0) // addr
		b.SW(A2, A6, 4) // shadow code
		b.SW(RA, A6, 8) // pc: the interceptor call site
		b.Li(A2, san.NativeKindKASAN)
		b.SW(A2, A6, 12)
		b.SW(A2, A6, 16) // commit
		b.J("__kasan_range.done")
		b.Label("__kasan_range.next")
		b.ANDI(A6, A3, -8)
		b.ADDI(A3, A6, 8)
		b.J("__kasan_range.loop")
		b.Label("__kasan_range.done")
	})
	b.Ret()

	// __kasan_memcpy_check(a0=dst, a1=src, a2=len): preserves a0..a2.
	b.Func("__kasan_memcpy_check")
	b.NoSan(func() {
		b.ADDI(SP, SP, -16)
		b.SW(RA, SP, 12)
		b.SW(A0, SP, 0)
		b.SW(A1, SP, 4)
		b.SW(A2, SP, 8)
		b.MV(A1, A2)
		b.Call("__kasan_range") // dst, len
		b.LW(A0, SP, 4)
		b.LW(A1, SP, 8)
		b.Call("__kasan_range") // src, len
		b.LW(A0, SP, 0)
		b.LW(A1, SP, 4)
		b.LW(A2, SP, 8)
		b.LW(RA, SP, 12)
		b.ADDI(SP, SP, 16)
	})
	b.Ret()

	// __kasan_memset_check(a0=dst, a1=val, a2=len): preserves a0..a2.
	b.Func("__kasan_memset_check")
	b.NoSan(func() {
		b.ADDI(SP, SP, -16)
		b.SW(RA, SP, 12)
		b.SW(A0, SP, 0)
		b.SW(A1, SP, 4)
		b.SW(A2, SP, 8)
		b.MV(A1, A2)
		b.Call("__kasan_range")
		b.LW(A0, SP, 0)
		b.LW(A1, SP, 4)
		b.LW(A2, SP, 8)
		b.LW(RA, SP, 12)
		b.ADDI(SP, SP, 16)
	})
	b.Ret()

	// __kasan_init: poison the NULL guard page, then walk the compile-time
	// global table poisoning redzones and unpoisoning the objects.
	b.Func("__kasan_init")
	b.NoSan(func() {
		b.ADDI(SP, SP, -16)
		b.SW(RA, SP, 12)
		b.Li(A0, 0)
		b.Li(A1, 0x1000)
		b.Li(A2, int32(san.CodeNull))
		b.Call("__kasan_poison")
		b.La(T0, "__kasan_global_table")
		b.LW(T1, T0, 0) // count
		b.ADDI(T0, T0, 4)
		b.Label("__kasan_init.loop")
		b.BEQZ(T1, "__kasan_init.done")
		// Left redzone: poison(addr - rz, rz, global).
		b.LW(A0, T0, 0)
		b.LW(A1, T0, 8)
		b.SUB(A0, A0, A1)
		b.Li(A2, int32(san.CodeGlobalRedzone))
		b.Call("__kasan_poison")
		// Right redzone: poison(addr + size, rz, global).
		b.LW(A0, T0, 0)
		b.LW(A1, T0, 4)
		b.ADD(A0, A0, A1)
		b.LW(A1, T0, 8)
		b.Li(A2, int32(san.CodeGlobalRedzone))
		b.Call("__kasan_poison")
		// Object itself stays addressable.
		b.LW(A0, T0, 0)
		b.LW(A1, T0, 4)
		b.Call("__kasan_unpoison")
		b.ADDI(T0, T0, 12)
		b.ADDI(T1, T1, -1)
		b.J("__kasan_init.loop")
		b.Label("__kasan_init.done")
		b.LW(RA, SP, 12)
		b.ADDI(SP, SP, 16)
	})
	b.Ret()
}

// emitKasanCheck writes one per-access check entry point. ABI: k0 = addr,
// k2 = link, k1 scratch; no other state is touched.
func emitKasanCheck(b *kasm.Builder, name string, size int32) {
	ok := name + ".ok"
	bad := name + ".bad"
	b.Func(name)
	b.AllowReserved(func() {
		b.NoSan(func() {
			b.CSRW(K2, isa.CSRScratch0)
			// Skip device memory / out-of-RAM addresses.
			b.LUI(K1, nativeRAMTopHi)
			b.BGEU(K0, K1, ok)
			b.SRLI(K1, K0, 3)
			b.La(K2, "__kasan_shadow")
			b.ADD(K1, K1, K2)
			b.LBU(K1, K1, 0)
			b.BEQZ(K1, ok)
			// Slow path: partial-granule validity.
			b.SLTIU(K2, K1, 8)
			b.BEQZ(K2, bad)
			b.ANDI(K2, K0, 7)
			b.ADDI(K2, K2, size-1)
			b.BLT(K2, K1, ok)
			b.Label(bad)
			b.LUI(K2, int32(0xF0005)) // SanDev base
			b.SW(K0, K2, 0)           // addr
			b.SW(K1, K2, 4)           // shadow code
			b.CSRR(K1, isa.CSRScratch0)
			b.SW(K1, K2, 8) // pc (the access instruction)
			b.ADDI(K1, Z, san.NativeKindKASAN)
			b.SW(K1, K2, 12)
			b.SW(K1, K2, 16) // commit
			b.Label(ok)
			b.CSRR(K2, isa.CSRScratch0)
			b.JALR(Z, K2, 0)
		})
	})
}

// addNativeKCSAN emits the in-guest KCSAN runtime: per-hart soft
// watchpoints in guest memory, a scan of all slots on every access, and
// sampled arming with a spin-delay window.
func addNativeKCSAN(b *kasm.Builder) {
	const maxHarts = 4
	const slotSize = 16 // addr, write, observed, pad
	b.GlobalAlign("__kcsan_watch", maxHarts*slotSize, 16)
	b.GlobalRaw("__kcsan_ctr", 4)

	b.Func("__kcsan_init")
	b.Ret() // the watch table lives in zero-initialised bss

	b.Func(kasm.SymKcsanStore)
	b.AllowReserved(func() {
		b.NoSan(func() {
			b.CSRW(K2, isa.CSRScratch0)
			b.ADDI(K1, Z, 1)
			b.CSRW(K1, isa.CSRScratch1) // my access is a write
			b.J("__kcsan_check")
		})
	})

	b.Func(kasm.SymKcsanLoad)
	b.AllowReserved(func() {
		b.NoSan(func() {
			b.CSRW(K2, isa.CSRScratch0)
			b.CSRW(Z, isa.CSRScratch1)
			// fall through
		})
	})

	b.Func("__kcsan_check")
	b.AllowReserved(func() {
		b.NoSan(func() {
			ret := "__kcsan_check.ret"
			// Skip device memory.
			b.LUI(K1, nativeRAMTopHi)
			b.BGEU(K0, K1, ret)
			b.La(K2, "__kcsan_watch")
			// Scan every hart's slot for a conflicting watchpoint.
			for i := 0; i < maxHarts; i++ {
				next := fmt.Sprintf("__kcsan_check.n%d", i)
				race := fmt.Sprintf("__kcsan_check.race%d", i)
				off := int32(i * slotSize)
				b.LW(K1, K2, off)
				b.BNE(K1, K0, next)
				b.CSRR(K1, isa.CSRHartID)
				b.XORI(K1, K1, int32(i))
				b.BEQZ(K1, next) // our own watchpoint: not a conflict
				// Conflict if either side writes.
				b.CSRR(K1, isa.CSRScratch1)
				b.BNEZ(K1, race)
				b.LW(K1, K2, off+4) // watchpoint's write flag
				b.BEQZ(K1, next)    // read/read: not a race
				b.Label(race)
				b.ADDI(K1, Z, 1)
				b.SW(K1, K2, off+8) // mark observed
				// Report through the SanDev.
				b.LUI(K1, int32(0xF0005))
				b.SW(K0, K1, 0) // addr
				b.CSRR(K0, isa.CSRScratch0)
				b.SW(K0, K1, 8) // pc
				b.ADDI(K0, Z, san.NativeKindKCSAN)
				b.SW(K0, K1, 12)
				b.SW(K0, K1, 16) // commit
				b.J(ret)
				b.Label(next)
			}
			// Sampling: arm our own slot every 64th access.
			b.La(K1, "__kcsan_ctr")
			b.LW(K2, K1, 0)
			b.ADDI(K2, K2, 1)
			b.SW(K2, K1, 0)
			b.ANDI(K2, K2, 63)
			b.BNEZ(K2, ret)
			// Arm: slot = watch + hart*16.
			b.CSRR(K1, isa.CSRHartID)
			b.SLLI(K1, K1, 4)
			b.La(K2, "__kcsan_watch")
			b.ADD(K2, K2, K1)
			b.SW(K0, K2, 0) // addr
			b.CSRR(K1, isa.CSRScratch1)
			b.SW(K1, K2, 4) // write flag
			b.SW(Z, K2, 8)  // observed = 0
			// Delay window: spin so other harts get scheduled.
			b.ADDI(K1, Z, 200)
			b.Label("__kcsan_check.delay")
			b.ADDI(K1, K1, -1)
			b.BNEZ(K1, "__kcsan_check.delay")
			// Disarm and check whether anyone hit the watchpoint.
			b.LW(K1, K2, 8)
			b.SW(Z, K2, 0)
			b.BEQZ(K1, ret)
			b.LUI(K1, int32(0xF0005))
			b.SW(K0, K1, 0)
			b.CSRR(K0, isa.CSRScratch0)
			b.SW(K0, K1, 8)
			b.ADDI(K0, Z, san.NativeKindKCSAN)
			b.SW(K0, K1, 12)
			b.SW(K0, K1, 16)
			b.Label(ret)
			b.CSRR(K2, isa.CSRScratch0)
			b.JALR(Z, K2, 0)
		})
	})
}
