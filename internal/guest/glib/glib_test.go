package glib

import (
	"testing"

	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

func run(t *testing.T, b *kasm.Builder, name string, budget uint64) *emu.Machine {
	t.Helper()
	img, err := b.Link(name)
	if err != nil {
		t.Fatalf("link %s: %v", name, err)
	}
	m, err := emu.New(img, emu.Config{MaxHarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(budget)
	return m
}

func TestBootAndConsole(t *testing.T) {
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanEmbsanC, kasm.SanNativeKASAN, kasm.SanNativeKCSAN} {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})
		AddBoot(b, BootConfig{InitFn: "noop", MainFn: "hello"})
		AddLib(b)
		b.Func("noop")
		b.Ret()
		b.Func("hello")
		b.Prologue(16)
		b.La(A0, "msg")
		b.Call("puts")
		b.Li(A0, 0xBEEF)
		b.Call("put_hex")
		b.Epilogue(16)
		b.Asciz("msg", "hi:")
		m := run(t, b, "boot-"+mode.String(), 1_000_000)
		if m.StopReason() != emu.StopHalted {
			t.Fatalf("%s: stop=%v fault=%v", mode, m.StopReason(), m.Fault())
		}
		if got := m.UART.String(); got != "hi:0000beef" {
			t.Errorf("%s: uart = %q", mode, got)
		}
		if !m.ReadyReached {
			t.Errorf("%s: ready not reached", mode)
		}
	}
}

func TestMemRoutines(t *testing.T) {
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanNativeKASAN} {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})
		AddBoot(b, BootConfig{MainFn: "main"})
		AddLib(b)
		b.GlobalRaw("src", 64)
		b.GlobalRaw("dst", 64)
		b.Func("main")
		b.Prologue(16)
		// memset(src, 0x5A, 33)
		b.La(A0, "src")
		b.Li(A1, 0x5A)
		b.Li(A2, 33)
		b.Call("memset")
		// memcpy(dst, src, 33)
		b.La(A0, "dst")
		b.La(A1, "src")
		b.Li(A2, 33)
		b.Call("memcpy")
		// verify dst[32] == 0x5A and dst[33] == 0
		b.La(T0, "dst")
		b.LBU(A0, T0, 32)
		b.LBU(T1, T0, 33)
		b.SLLI(T1, T1, 8)
		b.OR(A0, A0, T1)
		b.HCALL(isa.HcallExit)
		m := run(t, b, "mem-"+mode.String(), 1_000_000)
		if m.ExitCode() != 0x5A {
			t.Errorf("%s: exit = %#x, want 0x5a", mode, m.ExitCode())
		}
	}
}

func TestNativeKASANDetectsHeapBugs(t *testing.T) {
	// A native-KASAN build with a hand-rolled allocation: unpoison 24 bytes
	// inside a poisoned arena, then read one byte past it.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNativeKASAN})
	AddBoot(b, BootConfig{InitFn: "arena_init", MainFn: "main"})
	AddLib(b)
	b.GlobalRaw("arena", 4096)
	b.Func("arena_init")
	b.Prologue(16)
	b.La(A0, "arena")
	b.Li(A1, 4096)
	b.SanPoisonHook(int32(san.CodeHeapUninit))
	b.Epilogue(16)
	b.Func("main")
	b.Prologue(16)
	// alloc: unpoison [arena, arena+24)
	b.La(A0, "arena")
	b.Li(A1, 24)
	b.Call("__kasan_alloc")
	b.La(T0, "arena")
	b.LBU(A0, T0, 23) // fine
	b.LBU(A0, T0, 24) // one past: must report
	b.Li(A0, 0)
	b.HCALL(isa.HcallExit)
	img, err := b.Link("native-oob")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})
	m.Run(1_000_000)
	if len(m.SanDev.Reports) != 1 {
		t.Fatalf("native reports = %d, want 1", len(m.SanDev.Reports))
	}
	reps := san.ConvertNative(img, m.SanDev.Reports)
	if reps[0].Bug != san.BugOOB {
		t.Errorf("native bug = %v (info=%#x)", reps[0].Bug, m.SanDev.Reports[0].Info)
	}
	arena, _ := img.Lookup("arena")
	if reps[0].Addr != arena.Addr+24 {
		t.Errorf("native report addr = %#x, want %#x", reps[0].Addr, arena.Addr+24)
	}
}

func TestNativeKASANGlobalRedzones(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNativeKASAN})
	AddBoot(b, BootConfig{MainFn: "main"})
	AddLib(b)
	b.Global("gobj", 20) // redzoned + registered in the global table
	b.Func("main")
	b.La(T0, "gobj")
	b.LBU(A0, T0, 19) // fine
	b.LBU(A0, T0, 20) // partial-granule tail: flagged
	b.LBU(A0, T0, 24) // right redzone: flagged
	b.Li(A0, 0)
	b.HCALL(isa.HcallExit)
	img, err := b.Link("native-global")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})
	m.Run(1_000_000)
	if len(m.SanDev.Reports) != 2 {
		t.Fatalf("native reports = %d, want 2", len(m.SanDev.Reports))
	}
	reps := san.ConvertNative(img, m.SanDev.Reports)
	if reps[1].Bug != san.BugGlobalOOB {
		t.Errorf("second report = %v, want global OOB", reps[1].Bug)
	}
}

func TestNativeKASANStackRedzones(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNativeKASAN})
	AddBoot(b, BootConfig{MainFn: "main"})
	AddLib(b)
	b.Func("main")
	b.Prologue(16)
	b.ADDI(SP, SP, -64)
	b.GuardedBuffer(16, 24, A1)
	b.Li(T1, 0x33)
	b.SB(T1, A1, 23) // in bounds
	b.SB(T1, A1, 24) // one past -> right stack redzone
	b.UnguardBuffer(16, 24)
	b.ADDI(SP, SP, 64)
	// After unguarding, the same bytes must be accessible again.
	b.ADDI(A1, SP, -48)
	b.LBU(T1, A1, 0)
	b.Epilogue(16)
	img, err := b.Link("native-stack")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})
	if r := m.Run(1_000_000); r != emu.StopHalted {
		t.Fatalf("stop=%v fault=%v", r, m.Fault())
	}
	reps := san.ConvertNative(img, m.SanDev.Reports)
	if len(reps) != 1 || reps[0].Bug != san.BugStackOOB {
		t.Fatalf("native stack reports = %+v", reps)
	}
}

func TestNativeKCSANDetectsRace(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNativeKCSAN})
	AddBoot(b, BootConfig{MainFn: "main"})
	AddLib(b)
	b.GlobalRaw("shared", 4)
	b.GlobalRaw("wstack", 4096)
	b.Func("main")
	b.Li(A0, 1)
	b.La(A1, "pound")
	b.La(A2, "wstack")
	b.ADDI(A2, A2, 2044)
	b.HCALL(isa.HcallSpawn)
	b.Call("pound")
	b.Li(A0, 0)
	b.HCALL(isa.HcallExit)
	b.Func("pound")
	b.La(T0, "shared")
	b.Li(T1, 3000)
	b.Label("pound.l")
	b.LW(A0, T0, 0)
	b.ADDI(A0, A0, 1)
	b.SW(A0, T0, 0)
	b.ADDI(T1, T1, -1)
	b.BNEZ(T1, "pound.l")
	b.Ret()
	img, err := b.Link("native-race")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{MaxHarts: 2, Seed: 7})
	m.Run(20_000_000)
	if len(m.SanDev.Reports) == 0 {
		t.Fatal("native KCSAN found no race")
	}
	reps := san.ConvertNative(img, m.SanDev.Reports)
	if reps[0].Bug != san.BugRace {
		t.Errorf("native bug = %v", reps[0].Bug)
	}
}

func TestSyscallExecutor(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	AddBoot(b, BootConfig{MainFn: "executor_loop"})
	AddLib(b)
	b.GlobalRaw("acc", 4)
	AddSyscallExecutor(b, "syscall_table", 2)
	b.Func("sys_add") // acc += a0
	b.La(T0, "acc")
	b.LW(T1, T0, 0)
	b.ADD(T1, T1, A0)
	b.SW(T1, T0, 0)
	b.Ret()
	b.Func("sys_mul") // acc *= a0
	b.La(T0, "acc")
	b.LW(T1, T0, 0)
	b.MUL(T1, T1, A0)
	b.SW(T1, T0, 0)
	b.Ret()
	b.DataWordSyms("syscall_table", []string{"sys_add", "sys_mul"})
	img, err := b.Link("exec")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})

	// Program: add(5); mul(3); add(1); plus one out-of-range nr (skipped).
	rec := func(nr, a0 uint32) []byte {
		out := make([]byte, 24)
		le := func(off int, v uint32) {
			out[off] = byte(v)
			out[off+1] = byte(v >> 8)
			out[off+2] = byte(v >> 16)
			out[off+3] = byte(v >> 24)
		}
		le(0, nr)
		le(4, 1)
		le(8, a0)
		return out
	}
	var input []byte
	input = append(input, rec(0, 5)...)
	input = append(input, rec(1, 3)...)
	input = append(input, rec(9, 7)...) // out of range -> skipped
	input = append(input, rec(0, 1)...)
	m.Mailbox.Post(input)
	m.Run(1_000_000)
	done, code := m.Mailbox.Done()
	if !done || code != 3 {
		t.Fatalf("done=%v executed=%d, want 3", done, code)
	}
	acc, _ := img.Lookup("acc")
	v, _ := m.ReadWord(acc.Addr)
	if v != 16 { // (0+5)*3+1
		t.Errorf("acc = %d, want 16", v)
	}
}

func TestByteExecutor(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	AddBoot(b, BootConfig{MainFn: "executor_loop"})
	AddLib(b)
	AddByteExecutor(b, "handle")
	b.Func("handle") // returns sum of bytes
	b.MV(T0, A0)
	b.ADD(T1, A0, A1)
	b.Li(A0, 0)
	b.Label("h.loop")
	b.BGEU(T0, T1, "h.done")
	b.LBU(A2, T0, 0)
	b.ADD(A0, A0, A2)
	b.ADDI(T0, T0, 1)
	b.J("h.loop")
	b.Label("h.done")
	b.Ret()
	img, err := b.Link("bexec")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})
	m.Mailbox.Post([]byte{10, 20, 30})
	m.Run(1_000_000)
	done, code := m.Mailbox.Done()
	if !done || code != 60 {
		t.Fatalf("done=%v code=%d", done, code)
	}
}

func TestSpinLocks(t *testing.T) {
	// Two harts increment a counter 500 times each under a spinlock; no
	// updates may be lost.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	AddBoot(b, BootConfig{MainFn: "main"})
	AddLib(b)
	b.GlobalRaw("lock", 4)
	b.GlobalRaw("count", 4)
	b.GlobalRaw("done1", 4)
	b.GlobalRaw("wstack", 4096)
	b.Func("main")
	b.Prologue(16)
	b.Li(A0, 1)
	b.La(A1, "worker")
	b.La(A2, "wstack")
	b.ADDI(A2, A2, 2044)
	b.HCALL(isa.HcallSpawn)
	b.Call("work")
	b.La(T0, "done1")
	b.Label("main.wait")
	b.YIELD()
	b.LW(T1, T0, 0)
	b.BEQZ(T1, "main.wait")
	b.La(T0, "count")
	b.LW(A0, T0, 0)
	b.HCALL(isa.HcallExit)
	b.Func("worker") // spawned entry: never returns
	b.Call("work")
	b.La(T0, "done1")
	b.Li(T1, 1)
	b.SW(T1, T0, 0)
	b.HALT()
	b.Func("work")
	b.Prologue(16)
	b.Li(T0, 500)
	b.Label("work.loop")
	b.SW(T0, SP, 0)
	b.La(A0, "lock")
	b.Call("spin_lock")
	b.La(T1, "count")
	b.LW(A1, T1, 0)
	b.ADDI(A1, A1, 1)
	b.SW(A1, T1, 0)
	b.La(A0, "lock")
	b.Call("spin_unlock")
	b.LW(T0, SP, 0)
	b.ADDI(T0, T0, -1)
	b.BNEZ(T0, "work.loop")
	b.Epilogue(16)
	img, err := b.Link("locks")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{MaxHarts: 2, Seed: 3})
	if r := m.Run(50_000_000); r != emu.StopExit {
		t.Fatalf("stop=%v fault=%v", r, m.Fault())
	}
	if m.ExitCode() != 1000 {
		t.Errorf("count = %d, want 1000 (lost updates)", m.ExitCode())
	}
}
