package obs

import (
	"bytes"
	"strings"
	"testing"
)

func mkEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			ICnt: uint64(100 + i),
			PC:   uint32(0x1000 + 4*i),
			Addr: uint32(0x8000 + i),
			Arg:  uint32(i),
			Kind: Kind(1 + i%int(evMax)),
			Hart: uint8(i % 2),
		}
	}
	return out
}

// TestRingBasics: events come back oldest-first and Reset empties the ring
// without reallocating.
func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	evs := mkEvents(5)
	for _, e := range evs {
		r.Emit(e)
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	got := r.Events()
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatalf("reset did not empty the ring")
	}
}

// TestRingWraparound: overflowing the ring drops the oldest events, keeps
// the newest in order, and counts the drops — and the binary export of the
// wrapped ring still decodes cleanly.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	evs := mkEvents(11)
	for _, e := range evs {
		r.Emit(e)
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d, want 4", r.Len())
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped=%d, want 7", r.Dropped())
	}
	got := r.Events()
	for i := 0; i < 4; i++ {
		if got[i] != evs[7+i] {
			t.Fatalf("event %d = %+v, want %+v (oldest dropped first)", i, got[i], evs[7+i])
		}
	}
	dec, dropped, err := DecodeEvents(r.Encode())
	if err != nil {
		t.Fatalf("wrapped ring export does not decode: %v", err)
	}
	if dropped != 7 || len(dec) != 4 {
		t.Fatalf("decoded dropped=%d len=%d", dropped, len(dec))
	}
	for i := range dec {
		if dec[i] != got[i] {
			t.Fatalf("decoded event %d = %+v, want %+v", i, dec[i], got[i])
		}
	}
}

// TestEmitZeroAlloc: an emit into a live ring allocates nothing — the
// guarantee the zero-alloc-off-by-default tracing budget rests on (the off
// path is a single nil check before this call).
func TestEmitZeroAlloc(t *testing.T) {
	r := NewRing(16)
	e := Event{ICnt: 1, PC: 2, Addr: 3, Arg: 4, Kind: EvTBEnter, Hart: 0}
	if allocs := testing.AllocsPerRun(1000, func() { r.Emit(e) }); allocs != 0 {
		t.Fatalf("Ring.Emit allocates %.1f times per call, want 0", allocs)
	}
	c := &Counter{}
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f times per call, want 0", allocs)
	}
}

// TestCodecRoundTrip: encode→decode is the identity, and decode rejects
// truncation, bad magic and corrupt kinds instead of panicking.
func TestCodecRoundTrip(t *testing.T) {
	evs := mkEvents(9)
	enc := EncodeEvents(evs, 42)
	dec, dropped, err := DecodeEvents(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 42 || len(dec) != len(evs) {
		t.Fatalf("dropped=%d len=%d", dropped, len(dec))
	}
	for i := range evs {
		if dec[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, dec[i], evs[i])
		}
	}
	if !bytes.Equal(EncodeEvents(dec, dropped), enc) {
		t.Fatal("re-encode is not canonical")
	}

	for name, mangle := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)-1] },
		"bad magic":  func(b []byte) []byte { b[0] = 'X'; return b },
		"bad kind":   func(b []byte) []byte { b[headerSize+20] = 0xFF; return b },
		"zero kind":  func(b []byte) []byte { b[headerSize+20] = 0; return b },
		"bad length": func(b []byte) []byte { return append(b, 0) },
		"short":      func(b []byte) []byte { return b[:3] },
	} {
		bad := mangle(append([]byte(nil), enc...))
		if _, _, err := DecodeEvents(bad); err == nil {
			t.Errorf("%s input decoded without error", name)
		}
	}
}

// TestRegistrySnapshots: text and JSON snapshots are sorted, stable and
// carry every instrument class.
func TestRegistrySnapshots(t *testing.T) {
	r := NewRegistry()
	r.Counter("emu.tb.hits").Add(3)
	r.Counter("emu.tb.misses").Inc()
	r.Gauge("fuzz.corpus.size").Set(17)
	h := r.Histogram("fuzz.exec.insts", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	wantText := "counter emu.tb.hits 3\n" +
		"counter emu.tb.misses 1\n" +
		"gauge fuzz.corpus.size 17\n" +
		"hist fuzz.exec.insts count=3 sum=5055 le10=1 le100=1 inf=1\n"
	if got := r.Text(); got != wantText {
		t.Fatalf("text snapshot:\n%s\nwant:\n%s", got, wantText)
	}
	wantJSON := `{"counters":{"emu.tb.hits":3,"emu.tb.misses":1},` +
		`"gauges":{"fuzz.corpus.size":17},` +
		`"histograms":{"fuzz.exec.insts":{"count":3,"sum":5055,"bounds":[10,100],"counts":[1,1,1]}}}` + "\n"
	if got := string(r.JSON()); got != wantJSON {
		t.Fatalf("json snapshot:\n%s\nwant:\n%s", got, wantJSON)
	}
	// Registration is idempotent: same instrument, not a fresh one.
	if r.Counter("emu.tb.hits").Value() != 3 {
		t.Fatal("re-registration lost the counter value")
	}
}

// TestRegistryMerge: counters and histogram buckets sum; gauges total.
func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(2)
	b.Counter("x").Add(5)
	b.Counter("y").Inc()
	a.Gauge("g").Set(3)
	b.Gauge("g").Set(4)
	a.Histogram("h", []uint64{8}).Observe(4)
	b.Histogram("h", []uint64{8}).Observe(400)

	m := Merge(a, b, nil)
	if got := m.Counter("x").Value(); got != 7 {
		t.Fatalf("x=%d", got)
	}
	if got := m.Counter("y").Value(); got != 1 {
		t.Fatalf("y=%d", got)
	}
	if got := m.Gauge("g").Value(); got != 7 {
		t.Fatalf("g=%d", got)
	}
	h := m.Histogram("h", nil)
	if h.Count() != 2 || h.Sum() != 404 {
		t.Fatalf("h count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestProfileAttribution: per-PC cost folds onto the containing functions,
// out-of-range PCs land in [unknown], and the folded/text outputs are
// deterministic.
func TestProfileAttribution(t *testing.T) {
	funcs := []FuncRange{
		{Entry: 0x1000, End: 0x1100, Name: "alpha"},
		{Entry: 0x1100, End: 0x1200, Name: "beta"},
	}
	p := NewProfile()
	p.AddInsts(0x1000, 40)
	p.AddInsts(0x1080, 10)
	p.AddInsts(0x1100, 20)
	p.AddInsts(0x9000, 5) // unattributed
	p.AddDispatch(0x1104)
	p.AddDispatch(0x1104)
	p.AddDispatch(0x1010)

	if p.TotalInsts() != 75 || p.TotalDispatches() != 3 {
		t.Fatalf("totals: insts=%d disp=%d", p.TotalInsts(), p.TotalDispatches())
	}
	wantFolded := "[unknown] 5\nalpha 50\nbeta 20\n"
	if got := p.Folded(funcs); got != wantFolded {
		t.Fatalf("folded:\n%s\nwant:\n%s", got, wantFolded)
	}
	costs := p.ByFunc(funcs)
	if len(costs) != 3 || costs[0].Name != "alpha" || costs[0].Insts != 50 {
		t.Fatalf("byfunc = %+v", costs)
	}
	sites := p.DispatchSites(funcs)
	if len(sites) != 2 || sites[0].PC != 0x1104 || sites[0].Count != 2 || sites[0].Fn != "beta+0x4" {
		t.Fatalf("sites = %+v", sites)
	}
	tbl := FormatDispatchTable(sites, 10)
	if !strings.Contains(tbl, "beta+0x4") || !strings.Contains(tbl, "total dispatches: 3 across 2 sites") {
		t.Fatalf("dispatch table:\n%s", tbl)
	}
}

// TestChromeTraceExport: the exporter passes its own validator, timestamps
// survive virtual-clock rewinds (snapshot restores), and the bytes are a
// pure function of the input.
func TestChromeTraceExport(t *testing.T) {
	events := []Event{
		{ICnt: 100, PC: 0x1000, Kind: EvTBEnter, Hart: 0},
		{ICnt: 110, PC: 0x1000, Kind: EvTBExit, Hart: 0},
		{ICnt: 112, PC: 0x1010, Addr: 0x8000, Arg: PackAccess(4, true, false), Kind: EvSanck, Hart: 1},
		{ICnt: 50, Kind: EvRestore, Hart: 0}, // clock rewind
		{ICnt: 55, PC: 0x1000, Kind: EvTBEnter, Hart: 0},
		{ICnt: 70, PC: 0x1000, Kind: EvTBExit, Hart: 0},
	}
	jobs := []JobTrace{{ID: 0, Events: events, Dropped: 3}}
	out := ChromeTrace(jobs)
	if err := ValidateChrome(out); err != nil {
		t.Fatalf("export does not validate: %v\n%s", err, out)
	}
	if !bytes.Equal(out, ChromeTrace(jobs)) {
		t.Fatal("export is not deterministic")
	}
	// A genuinely broken document must fail the validator.
	if err := ValidateChrome([]byte(`{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":0,"tid":0}]}`)); err == nil {
		t.Fatal("bad phase passed validation")
	}
	if err := ValidateChrome([]byte(`{}`)); err == nil {
		t.Fatal("missing traceEvents passed validation")
	}
	if err := ValidateChrome([]byte(`{"traceEvents":[` +
		`{"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},` +
		`{"name":"b","ph":"i","ts":2,"pid":0,"tid":0,"s":"t"}]}`)); err == nil {
		t.Fatal("backwards time passed validation")
	}
}

// TestPhases: the Any gate that keeps campaign-stat output byte-compatible
// when metrics are off.
func TestPhases(t *testing.T) {
	if (Phases{}).Any() {
		t.Fatal("zero phases report work")
	}
	if !(Phases{Sanitize: 1}).Any() {
		t.Fatal("non-zero phases report none")
	}
}
