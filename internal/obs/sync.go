package obs

import "sync"

// SyncRegistry wraps a Registry behind a mutex for the one place the
// observability layer is legitimately cross-goroutine: a live scrape
// endpoint (the monitor's /metrics) reading instruments that campaign
// callbacks bump from worker goroutines. Everything else in this package
// stays unsynchronised by ownership — a SyncRegistry is a view-side
// side channel, never part of a campaign's deterministic state.
//
// The API is deliberately closure-shaped: instrument handles never
// escape the lock, so there is no way to bump a counter outside it.
type SyncRegistry struct {
	mu sync.Mutex
	r  *Registry
}

// NewSyncRegistry creates an empty synchronised registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{r: NewRegistry()}
}

// Do runs fn with the underlying registry under the lock. fn must not
// retain the registry or any instrument past its return.
func (s *SyncRegistry) Do(fn func(*Registry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.r)
}

// Text renders the locked registry's stable text snapshot.
func (s *SyncRegistry) Text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Text()
}

// JSON renders the locked registry's deterministic JSON snapshot.
func (s *SyncRegistry) JSON() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.JSON()
}

// OpenMetrics renders the locked registry in the OpenMetrics text
// exposition — the monitor's scrape endpoint.
func (s *SyncRegistry) OpenMetrics() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.OpenMetrics()
}
