package timeline

import (
	"fmt"
	"strings"
)

// Exporters. All three render the merged timeline (jobs in campaign-
// index order) by hand in deterministic order, so the bytes are a pure
// function of the samples — the same discipline as obs.ChromeTrace.

// growthSeries are the per-sample curves the text and OpenMetrics
// exporters emit, in fixed order.
var growthSeries = []struct {
	name string
	help string
	get  func(Sample) uint64
}{
	{"cover", "translation-block coverage", func(s Sample) uint64 { return s.CoverBlocks }},
	{"corpus", "retained corpus inputs", func(s Sample) uint64 { return s.CorpusSize }},
	{"execs", "fuzzer executions driven", func(s Sample) uint64 { return s.Execs }},
	{"found", "deduplicated crash findings", func(s Sample) uint64 { return s.Found }},
}

// GrowthCurve renders the timeline as folded growth-curve text: one
// `campaign-<id>;<metric>;<vclock> <value>` line per sample per curve —
// the flamegraph folded-stack shape, so the usual folded-file tooling
// (sort, uniq, flamegraph.pl-style collapsers) applies directly.
func GrowthCurve(jobs []JobTimeline) string {
	var b strings.Builder
	for _, j := range jobs {
		for _, s := range j.Samples {
			for _, g := range growthSeries {
				fmt.Fprintf(&b, "campaign-%d;%s;%d %d\n", j.ID, g.name, s.VClock, g.get(s))
			}
		}
		for _, m := range j.Marks {
			fmt.Fprintf(&b, "campaign-%d;mark;%s;%d %d\n", j.ID, m.Kind, m.VClock, m.Value)
		}
	}
	return b.String()
}

// ChromeCounters renders the timeline as Chrome trace_event counter
// events ("ph":"C"): each campaign is a process, each growth curve a
// counter track, with the virtual clock as the timestamp axis (the
// campaign clock is cumulative, so lanes are monotone without the
// rewind normalisation the event exporter needs). Marks render as
// instant events on tid 0. The output passes obs.ValidateChrome.
func ChromeCounters(jobs []JobTimeline) []byte {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	for _, j := range jobs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"campaign-%d"}}`, j.ID, j.ID))
		for _, s := range j.Samples {
			for _, g := range growthSeries {
				emit(fmt.Sprintf(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"tid":0,"args":{%q:%d}}`,
					g.name, s.VClock, j.ID, g.name, g.get(s)))
			}
		}
		// Marks live on their own lane (tid 1): their clocks interleave
		// with — and may precede — the counter track's, and the validator
		// checks monotonicity per (pid, tid) lane.
		for _, m := range j.Marks {
			emit(fmt.Sprintf(`{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":1,"s":"p","args":{"value":%d}}`,
				m.Kind.String(), m.VClock, j.ID, m.Value))
		}
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// OpenMetrics renders the timeline in the OpenMetrics text exposition
// with explicit timestamps: each growth curve is a gauge family labelled
// by campaign, and the sample timestamp is the virtual clock (retired
// guest instructions — the repo's determinism contract forbids wall
// clocks in artefacts, and OpenMetrics only requires timestamps to be
// monotone per series, which the cumulative campaign clock is). Ends
// with the mandatory "# EOF" terminator.
func OpenMetrics(jobs []JobTimeline) []byte {
	var b strings.Builder
	for _, g := range growthSeries {
		name := "embsan_timeline_" + g.name
		fmt.Fprintf(&b, "# HELP %s %s over campaign virtual time\n", name, g.help)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		for _, j := range jobs {
			for _, s := range j.Samples {
				fmt.Fprintf(&b, "%s{campaign=\"%d\"} %d %d\n", name, j.ID, g.get(s), s.VClock)
			}
		}
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}
