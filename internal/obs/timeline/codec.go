package timeline

import (
	"encoding/binary"
	"fmt"
)

// EMTL: the canonical binary timeline format. Like the EMTR trace and
// EMFX forensics codecs, the encoding is canonical — there is exactly one
// byte string for a given merged timeline, and decoding rejects anything
// that is not such a byte string — so encode∘decode and decode∘encode
// are both identities on their domains (FuzzTimelineRoundTrip enforces
// this).
//
//	header: "EMTL" | u16 version | u16 reserved=0 | u32 jobCount
//	job:    u32 id | u64 interval | u32 nSamples | u32 nMarks
//	        nSamples × sample | nMarks × mark
//	sample: 15 × u64 (the Sample vector, field order as declared)
//	mark:   u8 kind | u64 vclock | u64 value
const (
	timelineMagic   = "EMTL"
	timelineVersion = 1
	tlHeaderSize    = 12
	tlJobHeaderSize = 20
	tlSampleSize    = sampleWords * 8
	tlMarkSize      = 17
)

// Encode serialises the merged timeline (jobs in campaign-index order).
func Encode(jobs []JobTimeline) []byte {
	size := tlHeaderSize
	for _, j := range jobs {
		size += tlJobHeaderSize + tlSampleSize*len(j.Samples) + tlMarkSize*len(j.Marks)
	}
	out := make([]byte, size)
	copy(out, timelineMagic)
	binary.LittleEndian.PutUint16(out[4:], timelineVersion)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(jobs)))
	off := tlHeaderSize
	for _, j := range jobs {
		binary.LittleEndian.PutUint32(out[off:], uint32(j.ID))
		binary.LittleEndian.PutUint64(out[off+4:], j.Interval)
		binary.LittleEndian.PutUint32(out[off+12:], uint32(len(j.Samples)))
		binary.LittleEndian.PutUint32(out[off+16:], uint32(len(j.Marks)))
		off += tlJobHeaderSize
		for i := range j.Samples {
			for w, v := range j.Samples[i].words() {
				binary.LittleEndian.PutUint64(out[off+8*w:], v)
			}
			off += tlSampleSize
		}
		for _, m := range j.Marks {
			out[off] = byte(m.Kind)
			binary.LittleEndian.PutUint64(out[off+1:], m.VClock)
			binary.LittleEndian.PutUint64(out[off+9:], m.Value)
			off += tlMarkSize
		}
	}
	return out
}

// words flattens the fixed vector in declaration order.
func (s *Sample) words() [sampleWords]uint64 {
	return [sampleWords]uint64{
		s.VClock, s.Execs, s.CoverBlocks, s.CorpusSize, s.Found,
		s.Translate, s.Execute, s.Sanitize, s.Snapshot,
		s.ChainHits, s.Dispatches, s.ChecksElided, s.ChecksRun,
		s.KCSANEvals, s.KCSANArmed,
	}
}

func sampleFromWords(w [sampleWords]uint64) Sample {
	return Sample{
		VClock: w[0], Execs: w[1], CoverBlocks: w[2], CorpusSize: w[3], Found: w[4],
		Translate: w[5], Execute: w[6], Sanitize: w[7], Snapshot: w[8],
		ChainHits: w[9], Dispatches: w[10], ChecksElided: w[11], ChecksRun: w[12],
		KCSANEvals: w[13], KCSANArmed: w[14],
	}
}

// Decode parses an EMTL artefact. It never panics on malformed input.
func Decode(b []byte) ([]JobTimeline, error) {
	if len(b) < tlHeaderSize {
		return nil, fmt.Errorf("timeline: artefact too short (%d bytes)", len(b))
	}
	if string(b[:4]) != timelineMagic {
		return nil, fmt.Errorf("timeline: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != timelineVersion {
		return nil, fmt.Errorf("timeline: unsupported version %d", v)
	}
	if r := binary.LittleEndian.Uint16(b[6:]); r != 0 {
		return nil, fmt.Errorf("timeline: reserved header bytes set (%#x)", r)
	}
	nJobs := binary.LittleEndian.Uint32(b[8:])
	off := tlHeaderSize
	if int64(nJobs) > int64(len(b)-tlHeaderSize)/tlJobHeaderSize {
		return nil, fmt.Errorf("timeline: %d jobs cannot fit in %d bytes", nJobs, len(b))
	}
	jobs := make([]JobTimeline, 0, nJobs)
	for ji := uint32(0); ji < nJobs; ji++ {
		if len(b)-off < tlJobHeaderSize {
			return nil, fmt.Errorf("timeline: job %d header truncated", ji)
		}
		j := JobTimeline{
			ID:       int(binary.LittleEndian.Uint32(b[off:])),
			Interval: binary.LittleEndian.Uint64(b[off+4:]),
		}
		nSamples := int(binary.LittleEndian.Uint32(b[off+12:]))
		nMarks := int(binary.LittleEndian.Uint32(b[off+16:]))
		off += tlJobHeaderSize
		need := tlSampleSize*nSamples + tlMarkSize*nMarks
		if len(b)-off < need {
			return nil, fmt.Errorf("timeline: job %d body truncated (%d of %d bytes)", ji, len(b)-off, need)
		}
		if nSamples > 0 {
			j.Samples = make([]Sample, nSamples)
			for i := range j.Samples {
				var w [sampleWords]uint64
				for k := range w {
					w[k] = binary.LittleEndian.Uint64(b[off+8*k:])
				}
				j.Samples[i] = sampleFromWords(w)
				off += tlSampleSize
			}
		}
		if nMarks > 0 {
			j.Marks = make([]Mark, nMarks)
			for i := range j.Marks {
				m := Mark{
					Kind:   MarkKind(b[off]),
					VClock: binary.LittleEndian.Uint64(b[off+1:]),
					Value:  binary.LittleEndian.Uint64(b[off+9:]),
				}
				if !m.Kind.Valid() {
					return nil, fmt.Errorf("timeline: job %d mark %d has unknown kind %d", ji, i, m.Kind)
				}
				j.Marks[i] = m
				off += tlMarkSize
			}
		}
		jobs = append(jobs, j)
	}
	if off != len(b) {
		return nil, fmt.Errorf("timeline: %d trailing bytes after %d jobs", len(b)-off, nJobs)
	}
	return jobs, nil
}
