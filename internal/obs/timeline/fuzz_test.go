package timeline

import (
	"bytes"
	"testing"
)

// FuzzTimelineRoundTrip fuzzes the EMTL codec the same way the obs
// package fuzzes EMTR: any input that decodes must re-encode to exactly
// the same bytes (the encoding is canonical), and the decoded jobs must
// survive a second round trip. Inputs that do not decode must fail with
// an error, never a panic.
func FuzzTimelineRoundTrip(f *testing.F) {
	f.Add(Encode(nil))
	f.Add(Encode(mkJobs()))
	f.Add(Encode([]JobTimeline{{ID: 7, Interval: 1 << 20}}))
	f.Add(Encode([]JobTimeline{{
		ID: 0, Interval: 1,
		Samples: mkSamples(2, 2, 1),
		Marks:   []Mark{{Kind: MarkCorpusNovelty, VClock: 2, Value: 9}},
	}}))
	f.Add([]byte("EMTL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := Decode(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		enc := Encode(jobs)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode→encode is not the identity:\n in: %x\nout: %x", data, enc)
		}
		jobs2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if len(jobs2) != len(jobs) {
			t.Fatalf("second decode diverged: %d jobs vs %d", len(jobs2), len(jobs))
		}
		for i := range jobs {
			a, b := jobs[i], jobs2[i]
			if a.ID != b.ID || a.Interval != b.Interval ||
				len(a.Samples) != len(b.Samples) || len(a.Marks) != len(b.Marks) {
				t.Fatalf("job %d diverged: %+v vs %+v", i, a, b)
			}
			for k := range a.Samples {
				if a.Samples[k] != b.Samples[k] {
					t.Fatalf("job %d sample %d diverged", i, k)
				}
			}
			for k := range a.Marks {
				if a.Marks[k] != b.Marks[k] {
					t.Fatalf("job %d mark %d diverged", i, k)
				}
			}
		}
	})
}
