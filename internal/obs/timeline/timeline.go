// Package timeline is EMBSAN's deterministic campaign-progress telemetry:
// a fixed metric vector sampled every K retired guest instructions on the
// campaign's cumulative virtual clock. Where internal/obs answers "what
// happened at instruction N", timeline answers "how did the campaign
// evolve" — coverage growth, corpus size, dispatch mix, fast-path and
// elision rates over virtual time.
//
// The design constraints are the obs package's, inherited verbatim:
//
//  1. Virtual time only. The sample clock is cumulative retired guest
//     instructions across a campaign's executions (the machine's own
//     icnt rewinds on every snapshot restore, so the fuzzer accumulates
//     per-exec instruction counts instead). A job's timeline is a pure
//     function of its campaign index; merging per-campaign timelines in
//     index order yields bytes identical for every worker count.
//
//  2. Zero cost when off, zero alloc when on. The emit site in the
//     fuzzer's execution loop is one nil check; an Advance below the
//     next sample threshold is one comparison; a crossing Advance writes
//     into a preallocated sample buffer. The same discipline
//     obs.TestEmitZeroAlloc pins for ring emits applies here.
//
// On top of the sampler sit the plateau/novelty detector (detect.go),
// the canonical EMTL codec (codec.go) and the growth-curve, Chrome
// counter-event and OpenMetrics exporters (export.go).
package timeline

import "embsan/internal/obs"

// Sample is the fixed metric vector captured at each sampling point. All
// fields are cumulative campaign-relative counts (raw counters, never
// rates — rates are derived at export time so merged or decimated
// timelines stay exact). The vector is fixed-width on purpose: the EMTL
// codec serialises it as 15 little-endian u64 words.
type Sample struct {
	// VClock is the sample timestamp: cumulative retired guest
	// instructions since the campaign started.
	VClock uint64

	// Campaign progress.
	Execs       uint64 // fuzzer executions driven
	CoverBlocks uint64 // distinct translation-block entry PCs covered
	CorpusSize  uint64 // coverage-expanding inputs retained
	Found       uint64 // deduplicated crash findings

	// Dispatch mix per pipeline phase, in the obs.Phases work units:
	// instruction words decoded, instructions retired, sanitizer
	// dispatches, snapshot pages copied back.
	Translate uint64
	Execute   uint64
	Sanitize  uint64
	Snapshot  uint64

	// Fast-path accounting: block transfers resolved by a patched exit
	// chain vs dispatcher entries (chain-hit% = ChainHits/(ChainHits+
	// Dispatches)).
	ChainHits  uint64
	Dispatches uint64

	// Elision accounting: sanitizer checks skipped by static safety
	// proofs vs checks dispatched (elision% = Elided/(Elided+Checks)).
	ChecksElided uint64
	ChecksRun    uint64

	// KCSAN sampling: accesses that reached the arming decision and
	// watchpoints actually armed (arming rate = Armed/Evals).
	KCSANEvals uint64
	KCSANArmed uint64
}

// sampleWords is the number of u64 words in the fixed vector (codec.go
// depends on it; extending Sample means bumping the EMTL version).
const sampleWords = 15

// ChainHitRate returns the fraction of block transfers resolved by an
// exit chain; ok is false when no transfers were recorded.
func (s Sample) ChainHitRate() (float64, bool) {
	t := s.ChainHits + s.Dispatches
	if t == 0 {
		return 0, false
	}
	return float64(s.ChainHits) / float64(t), true
}

// ElisionRate returns the fraction of sanitizer checks elided by static
// proofs; ok is false when no checks were seen.
func (s Sample) ElisionRate() (float64, bool) {
	t := s.ChecksElided + s.ChecksRun
	if t == 0 {
		return 0, false
	}
	return float64(s.ChecksElided) / float64(t), true
}

// ArmingRate returns the fraction of KCSAN sampling decisions that armed
// a watchpoint; ok is false when KCSAN never evaluated an access.
func (s Sample) ArmingRate() (float64, bool) {
	if s.KCSANEvals == 0 {
		return 0, false
	}
	return float64(s.KCSANArmed) / float64(s.KCSANEvals), true
}

// JobTimeline is one campaign's sampled timeline, addressed by the
// campaign index the scheduler merges results on. Concatenating
// JobTimelines in index order is the canonical merged timeline — byte
// identical for every worker count because each job's samples are.
type JobTimeline struct {
	ID       int
	Interval uint64 // effective sample period (doubles under decimation)
	Samples  []Sample
	Marks    []Mark
}

// DefaultInterval is the default sample period in retired instructions.
const DefaultInterval = 1 << 20

// DefaultMaxSamples bounds the per-campaign sample buffer; beyond it the
// sampler decimates (keeps every other sample, doubles the interval), so
// arbitrarily long campaigns stay bounded without losing determinism.
const DefaultMaxSamples = 2048

// Sampler captures one job's timeline. A sampler belongs to exactly one
// scheduler worker (the obs.Ring ownership rule); Reset rewinds it
// between jobs so the buffer is reused without leaking samples across
// campaigns. Advance is the hot-path entry: the fuzzer calls it after
// every execution with the cumulative instruction clock, and a call
// below the next threshold is a single comparison.
type Sampler struct {
	baseInterval uint64
	interval     uint64
	next         uint64
	samples      []Sample
	det          detector
	marks        []Mark
	ring         *obs.Ring    // stall/novelty events, when tracing is on
	live         func(Sample) // wall-clock view hook (embsan monitor); never feeds back
	liveMark     func(Mark)   // wall-clock mark hook, same contract as live
}

// NewSampler creates a sampler with the given period (retired
// instructions per sample; <=0 means DefaultInterval) holding at most
// maxSamples samples (<=0 means DefaultMaxSamples).
func NewSampler(interval uint64, maxSamples int) *Sampler {
	if interval == 0 {
		interval = DefaultInterval
	}
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	if maxSamples < 2 {
		maxSamples = 2 // decimation needs room to halve
	}
	s := &Sampler{
		baseInterval: interval,
		samples:      make([]Sample, 0, maxSamples),
		marks:        make([]Mark, 0, 64),
	}
	s.Reset(nil, DetectOptions{})
	return s
}

// Reset rewinds the sampler for a new job: samples, marks and detector
// state clear, the interval returns to its base value (decimation may
// have doubled it), and the optional ring receives the job's stall and
// novelty trace events. The live hook is cleared too — it is per-job.
func (s *Sampler) Reset(ring *obs.Ring, det DetectOptions) {
	s.interval = s.baseInterval
	s.next = s.baseInterval
	s.samples = s.samples[:0]
	s.marks = s.marks[:0]
	s.det = detector{opts: det.withDefaults()}
	s.ring = ring
	s.live = nil
	s.liveMark = nil
}

// SetLive installs a per-sample observer for wall-clock liveness views
// (the monitor's SSE stream). The hook sees each sample as it is taken
// but must never feed back into campaign state: the canonical timeline
// stays a pure function of (firmware, seed, options) with or without it.
func (s *Sampler) SetLive(fn func(Sample)) { s.live = fn }

// SetLiveMark installs a per-mark observer with the same contract as
// SetLive: the monitor's stall/novelty notifications, never campaign
// state.
func (s *Sampler) SetLiveMark(fn func(Mark)) { s.liveMark = fn }

// Interval returns the effective sample period (base, or doubled by
// decimation).
func (s *Sampler) Interval() uint64 { return s.interval }

// BaseInterval returns the configured sample period before any
// decimation doubling.
func (s *Sampler) BaseInterval() uint64 { return s.baseInterval }

// Cap returns the sample buffer capacity the sampler was built with.
func (s *Sampler) Cap() int { return cap(s.samples) }

// Advance is the per-execution emit site. When vclock has crossed the
// next sample threshold it takes one sample, filling the vector through
// fill (which must only read campaign state); otherwise it returns after
// one comparison. It never allocates once the sampler is constructed.
func (s *Sampler) Advance(vclock uint64, fill func(*Sample)) {
	if vclock < s.next {
		return
	}
	s.take(vclock, fill)
	s.next = (vclock/s.interval + 1) * s.interval
}

// Flush takes a terminal sample at vclock unless the last sample already
// sits there, so every campaign ends with its final state on record (and
// short campaigns below one interval still produce a timeline).
func (s *Sampler) Flush(vclock uint64, fill func(*Sample)) {
	if n := len(s.samples); n > 0 && s.samples[n-1].VClock == vclock {
		return
	}
	s.take(vclock, fill)
}

func (s *Sampler) take(vclock uint64, fill func(*Sample)) {
	if len(s.samples) == cap(s.samples) {
		s.decimate()
	}
	s.samples = append(s.samples, Sample{VClock: vclock})
	sm := &s.samples[len(s.samples)-1]
	fill(sm)
	sm.VClock = vclock
	s.marks = s.det.step(*sm, s.marks)
	for i := len(s.marks) - s.det.emitted; i < len(s.marks); i++ {
		if s.ring != nil {
			s.ring.Emit(s.marks[i].event())
		}
		if s.liveMark != nil {
			s.liveMark(s.marks[i])
		}
	}
	if s.live != nil {
		s.live(*sm)
	}
}

// decimate halves the retained samples (keeping even indices) and
// doubles the interval — a pure function of the sample stream, so a
// decimated timeline is still identical across worker counts. Marks are
// never decimated: they were detected on the full-resolution stream.
func (s *Sampler) decimate() {
	keep := 0
	for i := 0; i < len(s.samples); i += 2 {
		s.samples[keep] = s.samples[i]
		keep++
	}
	s.samples = s.samples[:keep]
	s.interval *= 2
}

// Samples returns a copy of the captured timeline.
func (s *Sampler) Samples() []Sample {
	return append([]Sample(nil), s.samples...)
}

// Marks returns a copy of the detected plateau/novelty marks.
func (s *Sampler) Marks() []Mark {
	return append([]Mark(nil), s.marks...)
}
