package timeline

import (
	"bytes"
	"strings"
	"testing"

	"embsan/internal/obs"
)

// mkSamples builds a synthetic timeline: cover grows on the first grow
// samples, then plateaus.
func mkSamples(n, grow int, interval uint64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		c := grow
		if i < grow {
			c = i + 1
		}
		out[i] = Sample{
			VClock: uint64(i+1) * interval, Execs: uint64(i+1) * 10,
			CoverBlocks: uint64(c), CorpusSize: uint64(c), Found: uint64(i / 7),
			Translate: uint64(i) * 3, Execute: uint64(i+1) * interval,
			Sanitize: uint64(i) * 2, Snapshot: uint64(i),
			ChainHits: uint64(i) * 5, Dispatches: uint64(i) + 1,
			ChecksElided: uint64(i), ChecksRun: uint64(i) * 4,
			KCSANEvals: uint64(i) * 9, KCSANArmed: uint64(i),
		}
	}
	return out
}

// feed replays a sample slice through a sampler via Advance+Flush the way
// the fuzzer would, using each sample's own VClock as the clock.
func feed(s *Sampler, samples []Sample) {
	for _, sm := range samples {
		cur := sm
		s.Advance(cur.VClock, func(dst *Sample) { *dst = cur })
	}
	if n := len(samples); n > 0 {
		last := samples[n-1]
		s.Flush(last.VClock, func(dst *Sample) { *dst = last })
	}
}

func TestSamplerAdvance(t *testing.T) {
	s := NewSampler(100, 0)
	fill := func(dst *Sample) { dst.Execs = 42 }

	s.Advance(99, fill) // below threshold: no sample
	if got := s.Samples(); len(got) != 0 {
		t.Fatalf("sample below threshold: %+v", got)
	}
	s.Advance(100, fill)
	s.Advance(150, fill) // still inside the next period
	s.Advance(250, fill) // crosses 200
	got := s.Samples()
	if len(got) != 2 || got[0].VClock != 100 || got[1].VClock != 250 {
		t.Fatalf("unexpected samples: %+v", got)
	}
	if got[0].Execs != 42 {
		t.Fatalf("fill not applied: %+v", got[0])
	}

	// Flush records the terminal state once, and dedupes an exact repeat.
	s.Flush(260, fill)
	s.Flush(260, fill)
	if got := s.Samples(); len(got) != 3 || got[2].VClock != 260 {
		t.Fatalf("flush: %+v", got)
	}
}

func TestSamplerFlushShortCampaign(t *testing.T) {
	// A campaign shorter than one interval still produces a timeline.
	s := NewSampler(1<<40, 0)
	s.Advance(5000, func(dst *Sample) { dst.Execs = 1 })
	s.Flush(5000, func(dst *Sample) { dst.Execs = 1 })
	if got := s.Samples(); len(got) != 1 || got[0].VClock != 5000 {
		t.Fatalf("short campaign timeline: %+v", got)
	}
}

func TestSamplerReset(t *testing.T) {
	s := NewSampler(10, 8)
	feed(s, mkSamples(20, 20, 10))
	if len(s.Samples()) == 0 || len(s.Marks()) == 0 {
		t.Fatal("want samples and marks before reset")
	}
	if s.Interval() == s.BaseInterval() {
		t.Fatal("20 samples into cap 8 should have decimated")
	}
	s.Reset(nil, DetectOptions{})
	if len(s.Samples()) != 0 || len(s.Marks()) != 0 {
		t.Fatal("reset must clear samples and marks")
	}
	if s.Interval() != s.BaseInterval() {
		t.Fatalf("reset must rewind decimation: interval %d base %d", s.Interval(), s.BaseInterval())
	}
}

func TestAdvanceZeroAlloc(t *testing.T) {
	s := NewSampler(100, 1024)
	fill := func(dst *Sample) { dst.Execs++ }
	// Warm one sample so the detector baseline is set.
	s.Advance(100, fill)

	if allocs := testing.AllocsPerRun(1000, func() { s.Advance(1, fill) }); allocs != 0 {
		t.Fatalf("below-threshold Advance allocates %v per run", allocs)
	}
	clock := uint64(100)
	if allocs := testing.AllocsPerRun(500, func() {
		clock += 100
		s.Advance(clock, fill)
	}); allocs != 0 {
		t.Fatalf("sampling Advance allocates %v per run", allocs)
	}
}

func TestDecimation(t *testing.T) {
	s := NewSampler(10, 8)
	full := mkSamples(64, 64, 10)
	feed(s, full)
	got := s.Samples()
	if len(got) > 8 {
		t.Fatalf("decimation failed to bound the buffer: %d samples", len(got))
	}
	if s.Interval() <= s.BaseInterval() {
		t.Fatalf("interval did not double: %d", s.Interval())
	}
	// Clocks stay strictly increasing and the terminal sample survives.
	for i := 1; i < len(got); i++ {
		if got[i].VClock <= got[i-1].VClock {
			t.Fatalf("non-monotone decimated clocks: %+v", got)
		}
	}
	if got[len(got)-1].VClock != full[len(full)-1].VClock {
		t.Fatalf("terminal sample lost: last=%d want %d", got[len(got)-1].VClock, full[len(full)-1].VClock)
	}
	// Marks survive decimation even when the sample point they anchor to
	// has been thinned away: plateau early, then run long enough for the
	// buffer to decimate several times.
	s2 := NewSampler(10, 8)
	s2.Reset(nil, DetectOptions{StallSamples: 2})
	feed(s2, mkSamples(64, 2, 10))
	stall, ok := FirstStall(s2.Marks())
	if !ok {
		t.Fatal("stall mark lost to decimation")
	}
	if last := s2.Samples()[len(s2.Samples())-1].VClock; stall >= last {
		t.Fatalf("stall %d should predate the terminal sample %d", stall, last)
	}
}

func TestDetectMatchesSampler(t *testing.T) {
	// Without decimation, the sampler's incremental marks are exactly
	// Detect over its recorded samples.
	for _, stall := range []int{0, 3, 8} {
		s := NewSampler(10, 4096)
		s.Reset(nil, DetectOptions{StallSamples: stall})
		samples := mkSamples(40, 6, 10)
		feed(s, samples)
		got := s.Marks()
		want := Detect(s.Samples(), DetectOptions{StallSamples: stall})
		if len(got) != len(want) {
			t.Fatalf("stall=%d: %d marks vs Detect's %d", stall, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stall=%d mark %d: %+v vs %+v", stall, i, got[i], want[i])
			}
		}
	}
}

func TestDetectStallAndRearm(t *testing.T) {
	interval := uint64(10)
	var samples []Sample
	add := func(cover, corpus uint64) {
		samples = append(samples, Sample{
			VClock: uint64(len(samples)+1) * interval, CoverBlocks: cover, CorpusSize: corpus,
		})
	}
	add(5, 2) // baseline: no marks
	for i := 0; i < 3; i++ {
		add(5, 2) // plateau
	}
	add(5, 3) // corpus novelty only
	add(9, 3) // cover novelty clears the plateau counter
	for i := 0; i < 3; i++ {
		add(9, 3) // second plateau
	}

	marks := Detect(samples, DetectOptions{StallSamples: 3})
	want := []Mark{
		{MarkStall, 4 * interval, 5},
		{MarkCorpusNovelty, 5 * interval, 3},
		{MarkCoverNovelty, 6 * interval, 9},
		{MarkStall, 9 * interval, 9},
	}
	if len(marks) != len(want) {
		t.Fatalf("marks: got %+v want %+v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("mark %d: got %+v want %+v", i, marks[i], want[i])
		}
	}

	if v, ok := FirstStall(marks); !ok || v != 4*interval {
		t.Fatalf("FirstStall = %d, %v", v, ok)
	}
	if _, ok := FirstStall(nil); ok {
		t.Fatal("FirstStall on empty marks")
	}
}

func TestMarkEvents(t *testing.T) {
	ring := obs.NewRing(64)
	s := NewSampler(10, 0)
	s.Reset(ring, DetectOptions{StallSamples: 2})
	feed(s, mkSamples(8, 2, 10))
	var stalls, novelty int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.EvStall:
			stalls++
		case obs.EvNovelty:
			novelty++
		}
	}
	if stalls == 0 || novelty == 0 {
		t.Fatalf("ring events: %d stalls, %d novelty", stalls, novelty)
	}
	if got, want := len(ring.Events()), len(s.Marks()); got != want {
		t.Fatalf("ring carries %d events for %d marks", got, want)
	}
}

func TestLiveHooks(t *testing.T) {
	s := NewSampler(10, 0)
	s.Reset(nil, DetectOptions{StallSamples: 2})
	var liveSamples []Sample
	var liveMarks []Mark
	s.SetLive(func(sm Sample) { liveSamples = append(liveSamples, sm) })
	s.SetLiveMark(func(m Mark) { liveMarks = append(liveMarks, m) })
	feed(s, mkSamples(8, 2, 10))
	if len(liveSamples) != len(s.Samples()) {
		t.Fatalf("live saw %d samples, recorded %d", len(liveSamples), len(s.Samples()))
	}
	if len(liveMarks) != len(s.Marks()) {
		t.Fatalf("live saw %d marks, recorded %d", len(liveMarks), len(s.Marks()))
	}
	s.Reset(nil, DetectOptions{})
	n := len(liveSamples)
	feed(s, mkSamples(3, 3, 10))
	if len(liveSamples) != n {
		t.Fatal("Reset must clear the live hooks")
	}
}

func TestRates(t *testing.T) {
	s := Sample{ChainHits: 3, Dispatches: 1, ChecksElided: 1, ChecksRun: 3, KCSANEvals: 8, KCSANArmed: 2}
	if r, ok := s.ChainHitRate(); !ok || r != 0.75 {
		t.Fatalf("ChainHitRate = %v, %v", r, ok)
	}
	if r, ok := s.ElisionRate(); !ok || r != 0.25 {
		t.Fatalf("ElisionRate = %v, %v", r, ok)
	}
	if r, ok := s.ArmingRate(); !ok || r != 0.25 {
		t.Fatalf("ArmingRate = %v, %v", r, ok)
	}
	var zero Sample
	if _, ok := zero.ChainHitRate(); ok {
		t.Fatal("zero ChainHitRate ok")
	}
	if _, ok := zero.ElisionRate(); ok {
		t.Fatal("zero ElisionRate ok")
	}
	if _, ok := zero.ArmingRate(); ok {
		t.Fatal("zero ArmingRate ok")
	}
}

func mkJobs() []JobTimeline {
	samples := mkSamples(12, 4, 1000)
	return []JobTimeline{
		{ID: 0, Interval: 1000, Samples: samples, Marks: Detect(samples, DetectOptions{StallSamples: 3})},
		{ID: 1, Interval: 2000, Samples: mkSamples(3, 3, 2000)},
		{ID: 2, Interval: 500},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	jobs := mkJobs()
	enc := Encode(jobs)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(jobs) {
		t.Fatalf("decoded %d jobs, want %d", len(dec), len(jobs))
	}
	for i, j := range jobs {
		d := dec[i]
		if d.ID != j.ID || d.Interval != j.Interval ||
			len(d.Samples) != len(j.Samples) || len(d.Marks) != len(j.Marks) {
			t.Fatalf("job %d header diverged: %+v vs %+v", i, d, j)
		}
		for k := range j.Samples {
			if d.Samples[k] != j.Samples[k] {
				t.Fatalf("job %d sample %d: %+v vs %+v", i, k, d.Samples[k], j.Samples[k])
			}
		}
		for k := range j.Marks {
			if d.Marks[k] != j.Marks[k] {
				t.Fatalf("job %d mark %d: %+v vs %+v", i, k, d.Marks[k], j.Marks[k])
			}
		}
	}
	if reenc := Encode(dec); !bytes.Equal(reenc, enc) {
		t.Fatal("encode∘decode is not the identity")
	}
	if _, err := Decode(Encode(nil)); err != nil {
		t.Fatalf("empty timeline round trip: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	good := Encode(mkJobs())
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:8],
		"bad magic":   append([]byte("EMTR"), good[4:]...),
		"bad version": func() []byte { b := append([]byte(nil), good...); b[4] = 9; return b }(),
		"reserved":    func() []byte { b := append([]byte(nil), good...); b[6] = 1; return b }(),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0),
		"job bomb":    func() []byte { b := append([]byte(nil), good[:12]...); b[8] = 0xff; b[9] = 0xff; return b }(),
		"bad mark": func() []byte {
			b := append([]byte(nil), good...)
			// Last 17 bytes are the final mark of job 0... jobs 1 and 2
			// have no marks, so the last mark byte region belongs to job 0.
			// Corrupt the kind byte of the first mark instead: locate it by
			// re-encoding a marks-only job.
			return b
		}(),
	}
	delete(cases, "bad mark")
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// Unknown mark kind, constructed directly.
	j := []JobTimeline{{ID: 0, Interval: 1, Marks: []Mark{{Kind: MarkStall, VClock: 1, Value: 2}}}}
	b := Encode(j)
	b[len(b)-tlMarkSize] = 0xee
	if _, err := Decode(b); err == nil {
		t.Error("decode accepted unknown mark kind")
	}
	b[len(b)-tlMarkSize] = 0
	if _, err := Decode(b); err == nil {
		t.Error("decode accepted zero mark kind")
	}
}

func TestGrowthCurveShape(t *testing.T) {
	jobs := mkJobs()
	out := GrowthCurve(jobs)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	wantLines := 0
	for _, j := range jobs {
		wantLines += len(j.Samples)*len(growthSeries) + len(j.Marks)
	}
	if len(lines) != wantLines {
		t.Fatalf("%d folded lines, want %d", len(lines), wantLines)
	}
	if !strings.HasPrefix(lines[0], "campaign-0;cover;") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(out, ";mark;stall;") {
		t.Fatal("stall mark missing from folded output")
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "campaign-") || !strings.Contains(l, " ") {
			t.Fatalf("malformed folded line %q", l)
		}
	}
	if GrowthCurve(nil) != "" {
		t.Fatal("empty timeline should fold to nothing")
	}
}

func TestChromeCountersValidate(t *testing.T) {
	data := ChromeCounters(mkJobs())
	if err := obs.ValidateChrome(data); err != nil {
		t.Fatalf("ChromeCounters output invalid: %v\n%s", err, data)
	}
	if !bytes.Contains(data, []byte(`"ph":"C"`)) {
		t.Fatal("no counter events")
	}
	if !bytes.Contains(data, []byte(`"ph":"i"`)) {
		t.Fatal("no mark instants")
	}
	if err := obs.ValidateChrome(ChromeCounters(nil)); err != nil {
		t.Fatalf("empty ChromeCounters invalid: %v", err)
	}
}

func TestOpenMetricsShape(t *testing.T) {
	out := string(OpenMetrics(mkJobs()))
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("missing # EOF terminator")
	}
	for _, g := range growthSeries {
		if !strings.Contains(out, "# HELP embsan_timeline_"+g.name+" ") {
			t.Fatalf("missing HELP for %s", g.name)
		}
		if !strings.Contains(out, "# TYPE embsan_timeline_"+g.name+" gauge") {
			t.Fatalf("missing TYPE for %s", g.name)
		}
	}
	if !strings.Contains(out, `embsan_timeline_cover{campaign="0"} `) {
		t.Fatal("missing campaign-labelled series")
	}
	// Timestamps (the virtual clock) are the last field of each sample line.
	for _, l := range strings.Split(out, "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		if fields := strings.Fields(l); len(fields) != 3 {
			t.Fatalf("sample line %q: want name value timestamp", l)
		}
	}
}

func TestMarkKindString(t *testing.T) {
	if MarkStall.String() != "stall" || MarkCoverNovelty.String() != "cover-novelty" ||
		MarkCorpusNovelty.String() != "corpus-novelty" {
		t.Fatal("mark names drifted")
	}
	if MarkKind(0).Valid() || MarkKind(99).Valid() {
		t.Fatal("invalid kinds accepted")
	}
	if MarkKind(0).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}
