package timeline

import "embsan/internal/obs"

// Plateau/novelty detection. The detector is a pure function of the
// sample stream: Detect(samples, opts) over a finished timeline yields
// exactly the marks the sampler's incremental path emitted while the
// campaign ran (the sampler and Detect share the detector below). This
// is the input contract for the adaptive check-sampling controller
// (ROADMAP item 3): stalls say when to widen sampling, novelty says when
// to re-arm it, and both are deterministic, so the controller stays
// inside the worker-count byte-identity oracles.
//
// Note Detect sees the stream it is given: the sampler detects on the
// full-resolution stream as samples are taken, so after decimation the
// sampler's recorded marks are the authoritative set (they may reference
// sample points the decimated timeline no longer carries).

// MarkKind classifies one detector finding.
type MarkKind uint8

const (
	// MarkStall flags a coverage plateau: StallSamples consecutive
	// samples without a new cover block. Value is the plateaued block
	// count.
	MarkStall MarkKind = iota + 1
	// MarkCoverNovelty flags a sample that grew coverage — after a
	// stall, this is the controller's re-arm signal. Value is the new
	// block count.
	MarkCoverNovelty
	// MarkCorpusNovelty flags a sample that grew the corpus. Value is
	// the new corpus size.
	MarkCorpusNovelty

	markMax = MarkCorpusNovelty
)

var markNames = [...]string{
	MarkStall:         "stall",
	MarkCoverNovelty:  "cover-novelty",
	MarkCorpusNovelty: "corpus-novelty",
}

// String returns the stable exporter name of the kind.
func (k MarkKind) String() string {
	if k >= 1 && k <= markMax {
		return markNames[k]
	}
	return "unknown"
}

// Valid reports whether k is a defined mark kind.
func (k MarkKind) Valid() bool { return k >= 1 && k <= markMax }

// Mark is one detector finding, stamped with the virtual clock of the
// sample that triggered it.
type Mark struct {
	Kind   MarkKind
	VClock uint64
	Value  uint64
}

// event renders the mark as a trace event: stalls become EvStall (Arg =
// plateau length in samples is not carried — Value is, in Addr), novelty
// becomes EvNovelty with Arg 0 (cover) or 1 (corpus).
func (m Mark) event() obs.Event {
	e := obs.Event{ICnt: m.VClock, Addr: uint32(m.Value)}
	switch m.Kind {
	case MarkStall:
		e.Kind = obs.EvStall
	case MarkCoverNovelty:
		e.Kind = obs.EvNovelty
	case MarkCorpusNovelty:
		e.Kind = obs.EvNovelty
		e.Arg = 1
	}
	return e
}

// DetectOptions tunes the detector.
type DetectOptions struct {
	// StallSamples is how many consecutive samples without a new cover
	// block flag a stall (default 8). A cleared stall (cover novelty)
	// re-arms the detector, so long campaigns can stall repeatedly.
	StallSamples int
}

// DefaultStallSamples is the default plateau threshold.
const DefaultStallSamples = 8

func (o DetectOptions) withDefaults() DetectOptions {
	if o.StallSamples <= 0 {
		o.StallSamples = DefaultStallSamples
	}
	return o
}

// detector is the incremental implementation shared by the sampler and
// Detect. The first sample is the baseline and emits nothing.
type detector struct {
	opts       DetectOptions
	seen       bool
	prevCover  uint64
	prevCorpus uint64
	sinceCover int
	stalled    bool
	emitted    int // marks appended by the most recent step
}

func (d *detector) step(s Sample, marks []Mark) []Mark {
	d.emitted = 0
	if !d.seen {
		d.seen = true
		d.prevCover = s.CoverBlocks
		d.prevCorpus = s.CorpusSize
		return marks
	}
	if s.CoverBlocks > d.prevCover {
		marks = append(marks, Mark{Kind: MarkCoverNovelty, VClock: s.VClock, Value: s.CoverBlocks})
		d.emitted++
		d.sinceCover = 0
		d.stalled = false
	} else {
		d.sinceCover++
		if !d.stalled && d.sinceCover >= d.opts.StallSamples {
			marks = append(marks, Mark{Kind: MarkStall, VClock: s.VClock, Value: s.CoverBlocks})
			d.emitted++
			d.stalled = true
		}
	}
	if s.CorpusSize > d.prevCorpus {
		marks = append(marks, Mark{Kind: MarkCorpusNovelty, VClock: s.VClock, Value: s.CorpusSize})
		d.emitted++
	}
	d.prevCover = s.CoverBlocks
	d.prevCorpus = s.CorpusSize
	return marks
}

// Detect runs the plateau/novelty detector over a recorded timeline and
// returns the marks — a pure function of (samples, opts), independent of
// when or where the samples were captured.
func Detect(samples []Sample, opts DetectOptions) []Mark {
	d := detector{opts: opts.withDefaults()}
	var marks []Mark
	for _, s := range samples {
		marks = d.step(s, marks)
	}
	return marks
}

// FirstStall returns the virtual clock of the first stall mark; ok is
// false when the campaign never plateaued.
func FirstStall(marks []Mark) (uint64, bool) {
	for _, m := range marks {
		if m.Kind == MarkStall {
			return m.VClock, true
		}
	}
	return 0, false
}
