package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Chrome trace_event exporter. Events become a chrome://tracing /
// Perfetto-loadable JSON object: each job is a process (pid = job index),
// each hart a thread (tid), and the timestamp axis is the virtual clock —
// one guest instruction = one microsecond of timeline. Translation blocks
// render as B/E duration slices; everything else is an instant event.
//
// The JSON is built by hand in event order with no maps, so the bytes are
// a pure function of the event streams: two runs of the same campaign
// export identical files.

// ChromeTrace renders jobs (in the caller's order — canonically job-index
// order) as a trace_event JSON document.
func ChromeTrace(jobs []JobTrace) []byte {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
		b.WriteString(s)
	}
	for _, j := range jobs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"campaign-%d"}}`, j.ID, j.ID))
		if j.Dropped > 0 {
			emit(fmt.Sprintf(`{"name":"ring-dropped","ph":"i","ts":0,"pid":%d,"tid":0,"s":"p","args":{"dropped":%d}}`, j.ID, j.Dropped))
		}
		// The raw virtual clock rewinds on every snapshot restore (each
		// fuzzer execution rewinds icnt for determinism), which a timeline
		// viewer cannot render. Timestamps are therefore normalised to a
		// monotone per-job timeline: forward progress accumulates, rewinds
		// pin to the current position. The mapping is a pure function of
		// the event stream, so exports stay bit-identical; the raw icnt is
		// kept in args for correlating sanitizer reports.
		var ts, prevRaw uint64
		for i, e := range j.Events {
			if i == 0 {
				prevRaw = e.ICnt
			}
			if e.ICnt >= prevRaw {
				ts += e.ICnt - prevRaw
			}
			prevRaw = e.ICnt
			switch e.Kind {
			case EvTBEnter:
				emit(fmt.Sprintf(`{"name":"tb","ph":"B","ts":%d,"pid":%d,"tid":%d,"args":{"pc":"%#08x","icnt":%d}}`,
					ts, j.ID, e.Hart, e.PC, e.ICnt))
			case EvTBExit:
				emit(fmt.Sprintf(`{"name":"tb","ph":"E","ts":%d,"pid":%d,"tid":%d,"args":{"pc":"%#08x","exit":%d,"icnt":%d}}`,
					ts, j.ID, e.Hart, e.PC, e.Arg, e.ICnt))
			default:
				emit(fmt.Sprintf(`{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"pc":"%#08x","addr":"%#08x","arg":%d,"icnt":%d}}`,
					e.Kind.String(), ts, j.ID, e.Hart, e.PC, e.Addr, e.Arg, e.ICnt))
			}
		}
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}

// chromeEvent is the schema subset ValidateChrome checks.
type chromeEvent struct {
	Name *string  `json:"name"`
	Ph   *string  `json:"ph"`
	Ts   *float64 `json:"ts"`
	Pid  *int64   `json:"pid"`
	Tid  *int64   `json:"tid"`
}

var validPhases = map[string]bool{"B": true, "E": true, "i": true, "M": true, "X": true, "C": true}

// ValidateChrome checks that data is a well-formed trace_event document:
// it parses, carries a traceEvents array, every event has name/ph/pid/tid
// (and a non-negative ts unless it is metadata), the phase is one this
// exporter produces, and within each (pid, tid) lane timestamps never go
// backwards — the virtual clock is monotone, so a regression means a
// corrupted export.
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace does not parse: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	type lane struct{ pid, tid int64 }
	lastTs := map[lane]float64{}
	for i, raw := range doc.TraceEvents {
		var e chromeEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("obs: event %d does not parse: %w", i, err)
		}
		if e.Name == nil || e.Ph == nil || e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("obs: event %d missing a required field (name/ph/pid/tid)", i)
		}
		if !validPhases[*e.Ph] {
			return fmt.Errorf("obs: event %d has unknown phase %q", i, *e.Ph)
		}
		if *e.Ph == "M" {
			continue // metadata events carry no timestamp
		}
		if e.Ts == nil || *e.Ts < 0 {
			return fmt.Errorf("obs: event %d has a missing or negative ts", i)
		}
		l := lane{*e.Pid, *e.Tid}
		if prev, ok := lastTs[l]; ok && *e.Ts < prev {
			return fmt.Errorf("obs: event %d time went backwards in lane pid=%d tid=%d (%v < %v)",
				i, l.pid, l.tid, *e.Ts, prev)
		}
		lastTs[l] = *e.Ts
	}
	return nil
}
