// Package obs is EMBSAN's deterministic observability layer: virtual-time
// event tracing, a metrics registry, and a guest PC profiler shared by the
// emulator, the sanitizer runtime, the campaign scheduler and the
// experiment drivers.
//
// The design constraint everything else follows from is the determinism
// contract of the parallel executor (internal/sched): a campaign's
// observable output must be a pure function of its index, regardless of
// worker count. Wall-clock time would break that instantly, so the trace
// clock is the guest instruction counter — the same virtual clock that
// already drives KCSAN watchpoint stalls and CSRCycles reads. Two runs of
// the same campaign produce bit-identical event streams, and a per-job
// stream is independent of which pooled machine happened to execute it.
//
// The second constraint is that tracing is zero-alloc and near-zero-cost
// when off: every emit site in the hot interpreter loop is guarded by a
// single nil pointer check, and an emit into a live ring is a struct store
// into a preallocated buffer. Instruments (counters, gauges, histograms)
// are plain structs bumped through a pointer — the same machine code the
// ad-hoc counter fields they replaced compiled to.
package obs

// Kind identifies one trace event class.
type Kind uint8

const (
	// EvTBEnter marks entry into a translation block (PC = block leader).
	EvTBEnter Kind = iota + 1
	// EvTBExit marks leaving a translation block (PC = block leader,
	// Arg = exit cause: done/yield/stall/stop/halt as a small ordinal).
	EvTBExit
	// EvSanck is one SANCK trap dispatched to the sanitizer runtime
	// (EMBSAN-C path). Arg packs size | write<<8 | atomic<<9.
	EvSanck
	// EvMemProbe is one load/store/atomic dispatched to the Mem probe
	// (EMBSAN-D path). Arg packs size | write<<8 | atomic<<9.
	EvMemProbe
	// EvAllocEnter marks an intercepted allocator entry (Arg = request size).
	EvAllocEnter
	// EvAllocExit marks an intercepted allocator return
	// (Addr = returned pointer, Arg = request size).
	EvAllocExit
	// EvFree marks an intercepted free (Addr = freed pointer).
	EvFree
	// EvPoison is a shadow poison (Addr/Arg = range, PC = poison code).
	EvPoison
	// EvUnpoison is a shadow unpoison (Addr/Arg = range).
	EvUnpoison
	// EvSnapshot marks a machine snapshot capture.
	EvSnapshot
	// EvRestore marks a machine snapshot restore; its ICnt is the restored
	// (rewound) instruction counter, so it is deterministic per job even on
	// a pooled machine.
	EvRestore
	// EvReport is a new (deduplicated) sanitizer report
	// (Arg = bug type ordinal).
	EvReport
	// EvQuarantine marks a freed chunk entering the sanitizer quarantine
	// (Addr = chunk base, Arg = chunk size, PC = freeing call site).
	EvQuarantine
	// EvFrame attaches one shadow-call-stack frame to the immediately
	// preceding event in the same stream: Addr = the frame's call-site PC,
	// Arg = frame index (0 = innermost), PC = the parent event's PC so a
	// windowed cut without the parent still attributes. Emitted only under
	// forensic tracing (san.Runtime.ArmForensics).
	EvFrame
	// EvStall flags a coverage plateau detected by the timeline sampler:
	// N consecutive samples without a new cover block. ICnt is the
	// campaign-cumulative virtual clock of the flagging sample (not the
	// machine's rewinding icnt), Addr the plateaued block count.
	EvStall
	// EvNovelty flags a timeline novelty event: Arg 0 = a new cover
	// block (the re-arm signal after a stall), Arg 1 = corpus growth.
	// ICnt/Addr as for EvStall.
	EvNovelty

	evMax = EvNovelty
)

var kindNames = [...]string{
	EvTBEnter:    "tb",
	EvTBExit:     "tb",
	EvSanck:      "sanck",
	EvMemProbe:   "mem-probe",
	EvAllocEnter: "alloc-enter",
	EvAllocExit:  "alloc-exit",
	EvFree:       "free",
	EvPoison:     "poison",
	EvUnpoison:   "unpoison",
	EvSnapshot:   "snapshot",
	EvRestore:    "restore",
	EvReport:     "report",
	EvQuarantine: "quarantine",
	EvFrame:      "frame",
	EvStall:      "stall",
	EvNovelty:    "novelty",
}

// String returns the stable exporter name of the kind.
func (k Kind) String() string {
	if k >= 1 && k <= evMax {
		return kindNames[k]
	}
	return "unknown"
}

// Valid reports whether k is a defined event kind.
func (k Kind) Valid() bool { return k >= 1 && k <= evMax }

// PackAccess encodes a memory-access shape into an Event.Arg.
func PackAccess(size uint32, write, atomic bool) uint32 {
	v := size & 0xFF
	if write {
		v |= 1 << 8
	}
	if atomic {
		v |= 1 << 9
	}
	return v
}

// Event is one fixed-size trace record. ICnt is the virtual timestamp: the
// machine's retired-guest-instruction counter at emit time.
type Event struct {
	ICnt uint64
	PC   uint32
	Addr uint32
	Arg  uint32
	Kind Kind
	Hart uint8
}

// Ring is a bounded event buffer owned by exactly one goroutine — in the
// campaign executor, by one scheduler worker. There is no locking anywhere:
// "lock-free" here is by ownership, the same invariant that makes one
// Machine private to one worker. When the ring is full the oldest events
// are overwritten; Dropped counts them.
type Ring struct {
	buf  []Event
	head uint64 // total events ever retained
	// filter, when set, decides at emit time whether an event is retained.
	// Focused forensic tracing uses it to keep a bounded ring from wrapping
	// past the window of interest; the hot path pays one nil check. It takes
	// the event by value — a pointer would escape the parameter to the heap
	// and cost an allocation per emit even with no filter installed.
	filter func(Event) bool
}

// DefaultRingEvents is the default per-job ring capacity.
const DefaultRingEvents = 1 << 16

// NewRing creates a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit appends e, overwriting the oldest event when full, and reports
// whether the event was retained (an installed filter may reject it).
// Emitters of dependent events — EvFrame records attached to an allocator
// or report event — must consult the result so a filtered-out parent never
// leaves orphaned children in the stream. It never allocates.
func (r *Ring) Emit(e Event) bool {
	if r.filter != nil && !r.filter(e) {
		return false
	}
	r.buf[r.head%uint64(len(r.buf))] = e
	r.head++
	return true
}

// SetFilter installs (or, with nil, removes) an emit-time retention
// predicate. The filter must be a pure function of the event for traces to
// stay deterministic. Reset does not clear it.
func (r *Ring) SetFilter(f func(Event) bool) { r.filter = f }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.head < uint64(len(r.buf)) {
		return int(r.head)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 {
	if r.head <= uint64(len(r.buf)) {
		return 0
	}
	return r.head - uint64(len(r.buf))
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Reset discards all events, keeping the buffer.
func (r *Ring) Reset() { r.head = 0 }

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	n := r.Len()
	out := make([]Event, n)
	if r.head <= uint64(len(r.buf)) {
		copy(out, r.buf[:n])
		return out
	}
	start := r.head % uint64(len(r.buf))
	copy(out, r.buf[start:])
	copy(out[len(r.buf)-int(start):], r.buf[:start])
	return out
}

// JobTrace is one job's captured event stream, addressed by the job index
// the scheduler merges results on. Concatenating JobTraces in index order
// is the canonical merged trace: it is identical for every worker count
// because each job's stream is.
type JobTrace struct {
	ID      int
	Events  []Event
	Dropped uint64
}

// Phases is a virtual-time cost breakdown of one campaign, in deterministic
// work units per phase: guest instruction words decoded (translate), guest
// instructions retired (execute), sanitizer dispatches — SANCK traps plus
// Mem-probe invocations — (sanitize), and snapshot pages copied back
// (restore).
type Phases struct {
	Translate uint64
	Execute   uint64
	Sanitize  uint64
	Snapshot  uint64
}

// Any reports whether any phase recorded work.
func (p Phases) Any() bool {
	return p.Translate != 0 || p.Execute != 0 || p.Sanitize != 0 || p.Snapshot != 0
}
