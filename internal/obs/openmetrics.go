package obs

import (
	"fmt"
	"strings"
)

// OpenMetrics renders the registry in the OpenMetrics text exposition
// format (the Prometheus wire format), so campaign metrics can be scraped
// or diffed with standard tooling. The mapping follows the conventions the
// format expects:
//
//   - dotted instrument names become underscore-separated metric names
//     ("emu.tb.hits" -> "emu_tb_hits");
//   - every metric family carries a "# HELP" line (scrapers like
//     Prometheus expect the metadata pair) followed by its "# TYPE"
//     line;
//   - counters get the counter type and a "_total"-suffixed sample;
//   - gauges stay as-is;
//   - histograms expose cumulative "_bucket" samples with le labels
//     (inclusive upper bounds, closing with le="+Inf"), plus "_sum" and
//     "_count".
//
// Like Text and JSON, the output is byte-deterministic: names are sorted
// within each instrument class and no timestamps are emitted — the trace
// clock is virtual, and wall-clock stamps would break reproducibility.
// The exposition ends with the mandatory "# EOF" terminator.
func (r *Registry) OpenMetrics() []byte {
	cs, gs, hs := r.sortedNames()
	var b strings.Builder
	for _, n := range cs {
		m := metricName(n)
		fmt.Fprintf(&b, "# HELP %s EMBSAN counter instrument\n", m)
		fmt.Fprintf(&b, "# TYPE %s counter\n", m)
		fmt.Fprintf(&b, "%s_total %d\n", m, r.counters[n].v)
	}
	for _, n := range gs {
		m := metricName(n)
		fmt.Fprintf(&b, "# HELP %s EMBSAN gauge instrument\n", m)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", m)
		fmt.Fprintf(&b, "%s %d\n", m, r.gauges[n].v)
	}
	for _, n := range hs {
		m := metricName(n)
		h := r.hists[n]
		fmt.Fprintf(&b, "# HELP %s EMBSAN histogram instrument\n", m)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		cum := uint64(0)
		for i, bd := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, bd, cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.n)
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

func metricName(dotted string) string {
	return strings.ReplaceAll(dotted, ".", "_")
}
