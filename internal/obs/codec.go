package obs

import (
	"encoding/binary"
	"fmt"
)

// Binary trace format: a fixed 20-byte header followed by fixed 22-byte
// little-endian event records. The encoding is canonical — there is exactly
// one byte string for a given event stream, and decoding rejects anything
// that is not such a byte string (bad magic, bad version, unknown kinds,
// length mismatches) — so encode∘decode and decode∘encode are both
// identities on their domains (obs.FuzzTraceRoundTrip enforces this).
//
//	header:  "EMTR" | u16 version | u16 reserved=0 | u32 count | u64 dropped
//	record:  u64 icnt | u32 pc | u32 addr | u32 arg | u8 kind | u8 hart

const (
	traceMagic   = "EMTR"
	traceVersion = 1
	headerSize   = 20
	recordSize   = 22
)

// EncodeEvents serialises events plus the ring's dropped count.
func EncodeEvents(events []Event, dropped uint64) []byte {
	out := make([]byte, headerSize+recordSize*len(events))
	copy(out, traceMagic)
	binary.LittleEndian.PutUint16(out[4:], traceVersion)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(events)))
	binary.LittleEndian.PutUint64(out[12:], dropped)
	off := headerSize
	for _, e := range events {
		binary.LittleEndian.PutUint64(out[off:], e.ICnt)
		binary.LittleEndian.PutUint32(out[off+8:], e.PC)
		binary.LittleEndian.PutUint32(out[off+12:], e.Addr)
		binary.LittleEndian.PutUint32(out[off+16:], e.Arg)
		out[off+20] = byte(e.Kind)
		out[off+21] = e.Hart
		off += recordSize
	}
	return out
}

// Encode serialises the ring's retained events (oldest first).
func (r *Ring) Encode() []byte { return EncodeEvents(r.Events(), r.Dropped()) }

// DecodeEvents parses a binary trace, returning the events and the dropped
// count. It never panics on malformed input.
func DecodeEvents(b []byte) ([]Event, uint64, error) {
	if len(b) < headerSize {
		return nil, 0, fmt.Errorf("obs: trace too short (%d bytes)", len(b))
	}
	if string(b[:4]) != traceMagic {
		return nil, 0, fmt.Errorf("obs: bad trace magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != traceVersion {
		return nil, 0, fmt.Errorf("obs: unsupported trace version %d", v)
	}
	if r := binary.LittleEndian.Uint16(b[6:]); r != 0 {
		return nil, 0, fmt.Errorf("obs: reserved header bytes set (%#x)", r)
	}
	count := binary.LittleEndian.Uint32(b[8:])
	dropped := binary.LittleEndian.Uint64(b[12:])
	want := headerSize + recordSize*int(count)
	if len(b) != want {
		return nil, 0, fmt.Errorf("obs: trace length %d does not match %d events (want %d)", len(b), count, want)
	}
	events := make([]Event, count)
	off := headerSize
	for i := range events {
		e := Event{
			ICnt: binary.LittleEndian.Uint64(b[off:]),
			PC:   binary.LittleEndian.Uint32(b[off+8:]),
			Addr: binary.LittleEndian.Uint32(b[off+12:]),
			Arg:  binary.LittleEndian.Uint32(b[off+16:]),
			Kind: Kind(b[off+20]),
			Hart: b[off+21],
		}
		if !e.Kind.Valid() {
			return nil, 0, fmt.Errorf("obs: event %d has unknown kind %d", i, e.Kind)
		}
		events[i] = e
		off += recordSize
	}
	return events, dropped, nil
}
