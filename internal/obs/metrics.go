package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing instrument. It is not synchronised:
// like everything else in this package, a counter is owned by one goroutine
// (one Machine, one scheduler worker).
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time instrument.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the value.
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-bucket distribution: bounds are inclusive upper
// limits, with an implicit +Inf bucket at the end. Bounds are fixed at
// registration so merged snapshots line up bucket-for-bucket.
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    uint64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Buckets returns the bounds and per-bucket counts (last count is +Inf).
func (h *Histogram) Buckets() ([]uint64, []uint64) { return h.bounds, h.counts }

// Registry holds named instruments. Names follow the
// "<subsystem>.<object>.<metric>" scheme (e.g. "emu.tb.hits"); registration
// is idempotent, so instruments can be looked up again by name. Snapshots
// iterate names in sorted order, making every export byte-deterministic.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (bounds must be ascending).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

func (r *Registry) sortedNames() (cs, gs, hs []string) {
	for n := range r.counters {
		cs = append(cs, n)
	}
	for n := range r.gauges {
		gs = append(gs, n)
	}
	for n := range r.hists {
		hs = append(hs, n)
	}
	sort.Strings(cs)
	sort.Strings(gs)
	sort.Strings(hs)
	return
}

// Text renders the stable text snapshot: one instrument per line, sorted by
// name within each instrument class.
func (r *Registry) Text() string {
	cs, gs, hs := r.sortedNames()
	var b strings.Builder
	for _, n := range cs {
		fmt.Fprintf(&b, "counter %s %d\n", n, r.counters[n].v)
	}
	for _, n := range gs {
		fmt.Fprintf(&b, "gauge %s %d\n", n, r.gauges[n].v)
	}
	for _, n := range hs {
		h := r.hists[n]
		fmt.Fprintf(&b, "hist %s count=%d sum=%d", n, h.n, h.sum)
		for i, bd := range h.bounds {
			fmt.Fprintf(&b, " le%d=%d", bd, h.counts[i])
		}
		fmt.Fprintf(&b, " inf=%d\n", h.counts[len(h.bounds)])
	}
	return b.String()
}

// JSON renders the snapshot as deterministic JSON (keys in sorted order;
// built by hand so no map iteration order leaks into the bytes).
func (r *Registry) JSON() []byte {
	cs, gs, hs := r.sortedNames()
	var b strings.Builder
	b.WriteString("{\"counters\":{")
	for i, n := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", n, r.counters[n].v)
	}
	b.WriteString("},\"gauges\":{")
	for i, n := range gs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", n, r.gauges[n].v)
	}
	b.WriteString("},\"histograms\":{")
	for i, n := range hs {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.hists[n]
		fmt.Fprintf(&b, "%q:{\"count\":%d,\"sum\":%d,\"bounds\":[", n, h.n, h.sum)
		for j, bd := range h.bounds {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", bd)
		}
		b.WriteString("],\"counts\":[")
		for j, c := range h.counts {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", c)
		}
		b.WriteString("]}")
	}
	b.WriteString("}}\n")
	return []byte(b.String())
}

// Merge sums the instruments of srcs into a fresh registry: counters and
// histogram buckets add, gauges add (a merged gauge is the total across
// workers). Histograms with mismatched bounds keep the first registration's
// bounds and fold every sample through Observe-equivalent bucket addition
// only when the bounds agree; mismatches are summed into count/sum alone.
func Merge(srcs ...*Registry) *Registry {
	out := NewRegistry()
	for _, src := range srcs {
		if src == nil {
			continue
		}
		for n, c := range src.counters {
			out.Counter(n).Add(c.v)
		}
		for n, g := range src.gauges {
			out.Gauge(n).Add(g.v)
		}
		for n, h := range src.hists {
			dst := out.Histogram(n, h.bounds)
			dst.n += h.n
			dst.sum += h.sum
			if len(dst.counts) == len(h.counts) {
				for i := range h.counts {
					dst.counts[i] += h.counts[i]
				}
			}
		}
	}
	return out
}
