package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("emu.tb.hits").Add(1234)
	r.Counter("emu.tb.misses").Add(7)
	r.Counter("sched.worker.jobs").Add(42)
	r.Gauge("campaign.corpus.size").Set(19)
	h := r.Histogram("fuzz.exec.insts", []uint64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(150)
	h.Observe(150)
	h.Observe(99999)
	return r
}

func TestOpenMetricsGolden(t *testing.T) {
	got := goldenRegistry().OpenMetrics()
	path := filepath.Join("testdata", "metrics.openmetrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("OpenMetrics output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestOpenMetricsShape(t *testing.T) {
	out := string(goldenRegistry().OpenMetrics())
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("missing # EOF terminator")
	}
	for _, want := range []string{
		"# HELP emu_tb_hits EMBSAN counter instrument\n",
		"# HELP campaign_corpus_size EMBSAN gauge instrument\n",
		"# HELP fuzz_exec_insts EMBSAN histogram instrument\n",
		"# TYPE emu_tb_hits counter\n",
		"emu_tb_hits_total 1234\n",
		"# TYPE campaign_corpus_size gauge\n",
		"campaign_corpus_size 19\n",
		"# TYPE fuzz_exec_insts histogram\n",
		// Buckets are cumulative: 1 sample <=100, +2 <=1000, +0 <=10000,
		// +1 overflow.
		"fuzz_exec_insts_bucket{le=\"100\"} 1\n",
		"fuzz_exec_insts_bucket{le=\"1000\"} 3\n",
		"fuzz_exec_insts_bucket{le=\"10000\"} 3\n",
		"fuzz_exec_insts_bucket{le=\"+Inf\"} 4\n",
		"fuzz_exec_insts_sum 100349\n",
		"fuzz_exec_insts_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") {
		t.Error("dotted name leaked into exposition")
	}
}

func TestOpenMetricsDeterministic(t *testing.T) {
	a := goldenRegistry().OpenMetrics()
	b := goldenRegistry().OpenMetrics()
	if !bytes.Equal(a, b) {
		t.Error("two expositions of identical registries differ")
	}
}
