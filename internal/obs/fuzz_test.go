package obs

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip fuzzes the binary ring-buffer codec: any input that
// decodes must re-encode to exactly the same bytes (the encoding is
// canonical), and the decoded events must survive a second round trip.
// Inputs that do not decode must fail with an error, never a panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(EncodeEvents(nil, 0))
	f.Add(EncodeEvents(mkEvents(3), 0))
	f.Add(EncodeEvents(mkEvents(17), 99))
	f.Add([]byte("EMTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		events, dropped, err := DecodeEvents(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		enc := EncodeEvents(events, dropped)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode→encode is not the identity:\n in: %x\nout: %x", data, enc)
		}
		events2, dropped2, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if dropped2 != dropped || len(events2) != len(events) {
			t.Fatalf("second decode diverged: dropped %d vs %d, len %d vs %d",
				dropped2, dropped, len(events2), len(events))
		}
		for i := range events {
			if events2[i] != events[i] {
				t.Fatalf("event %d diverged: %+v vs %+v", i, events2[i], events[i])
			}
		}
	})
}
