package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestSyncRegistryConcurrent hammers a SyncRegistry from writer
// goroutines (the monitor's campaign callbacks) while readers scrape
// Text/JSON/OpenMetrics — the exact shape `embsan monitor` runs under.
// Run with -race; the tier-1 suite does.
func TestSyncRegistryConcurrent(t *testing.T) {
	s := NewSyncRegistry()
	const writers, readers, rounds = 4, 3, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("monitor.campaign.%d.execs", w)
			for i := 0; i < rounds; i++ {
				s.Do(func(r *Registry) {
					r.Counter("monitor.samples").Inc()
					r.Gauge(name).Set(int64(i))
				})
			}
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					_ = s.Text()
				case 1:
					_ = s.JSON()
				default:
					if om := s.OpenMetrics(); !bytes.HasSuffix(om, []byte("# EOF\n")) {
						t.Error("scrape missing # EOF")
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	var total uint64
	s.Do(func(r *Registry) { total = r.Counter("monitor.samples").Value() })
	if total != writers*rounds {
		t.Fatalf("monitor.samples = %d, want %d", total, writers*rounds)
	}
	if !strings.Contains(s.Text(), "monitor.campaign.0.execs") {
		t.Fatal("gauge missing from snapshot")
	}
}
