// Package forensics reconstructs bug stories from obs event streams: it
// folds backtrace frames into their parent events, rebuilds object lifetime
// timelines (alloc → poison → free → quarantine → re-alloc) for a faulting
// chunk, and collects the last writers of a faulting address. Everything
// here is a pure function of the recorded events, so two byte-identical
// traces yield byte-identical forensics — the property `embsan explain`
// builds its determinism guarantee on.
package forensics

import (
	"embsan/internal/obs"
	"embsan/internal/san"
)

// Record is one forensic event: an obs.Event with the backtrace the
// sanitizer runtime attached to it (EvFrame children) folded back in.
type Record struct {
	Event obs.Event
	// Stack holds call-site PCs, innermost first; nil when the event
	// carried no frames.
	Stack []uint32
}

// Fold collapses EvFrame events into their parent records. A frame belongs
// to the immediately preceding non-frame event when timestamps match and
// its index continues the parent's stack (the runtime emits frames
// innermost-first, directly after the parent). Frames that lost their
// parent — a windowed cut through the stream — are dropped rather than
// misattached.
func Fold(events []obs.Event) []Record {
	out := make([]Record, 0, len(events))
	for _, e := range events {
		if e.Kind == obs.EvFrame {
			if n := len(out); n > 0 {
				p := &out[n-1]
				if p.Event.ICnt == e.ICnt && int(e.Arg) == len(p.Stack) {
					p.Stack = append(p.Stack, e.Addr)
				}
			}
			continue
		}
		out = append(out, Record{Event: e})
	}
	return out
}

// Flatten is the inverse of Fold: records become events with their stacks
// re-expanded to EvFrame children. Fold(Flatten(recs)) is the identity for
// any record list; Flatten(Fold(evs)) is the identity for streams whose
// frames all have parents.
func Flatten(recs []Record) []obs.Event {
	var out []obs.Event
	for _, r := range recs {
		out = append(out, r.Event)
		for i, pc := range r.Stack {
			out = append(out, obs.Event{ICnt: r.Event.ICnt, PC: r.Event.PC,
				Addr: pc, Arg: uint32(i), Kind: obs.EvFrame, Hart: r.Event.Hart})
		}
	}
	return out
}

// ObjectTimeline reconstructs the lifetime of the chunk at base (size
// bytes) from a folded record stream: allocations returning the base,
// frees and quarantine transitions of it, and shadow poison transitions
// overlapping it, in stream order. A second allocation of the same base is
// classified "realloc" — the slot-reuse step that turns a stale pointer
// into a use-after-free of someone else's object.
func ObjectTimeline(recs []Record, base, size uint32) []san.TimelineEntry {
	if size == 0 {
		size = 1
	}
	var out []san.TimelineEntry
	allocs := 0
	for _, r := range recs {
		e := r.Event
		switch e.Kind {
		case obs.EvAllocExit:
			if e.Addr != base {
				continue
			}
			name := "alloc"
			if allocs > 0 {
				name = "realloc"
			}
			allocs++
			out = append(out, san.TimelineEntry{ICnt: e.ICnt, Event: name,
				PC: e.PC, Addr: e.Addr, Size: e.Arg, Hart: e.Hart, Stack: r.Stack})
		case obs.EvFree:
			if e.Addr != base {
				continue
			}
			out = append(out, san.TimelineEntry{ICnt: e.ICnt, Event: "free",
				PC: e.PC, Addr: e.Addr, Hart: e.Hart, Stack: r.Stack})
		case obs.EvQuarantine:
			if e.Addr != base {
				continue
			}
			out = append(out, san.TimelineEntry{ICnt: e.ICnt, Event: "quarantine",
				Addr: e.Addr, Size: e.Arg, Hart: e.Hart})
		case obs.EvPoison, obs.EvUnpoison:
			// Addr/Arg is the poisoned range; PC carries the poison code,
			// not a program counter, so it is deliberately not propagated.
			if e.Addr >= base+size || e.Addr+e.Arg <= base {
				continue
			}
			name := "poison"
			if e.Kind == obs.EvUnpoison {
				name = "unpoison"
			}
			out = append(out, san.TimelineEntry{ICnt: e.ICnt, Event: name,
				Addr: e.Addr, Size: e.Arg, Hart: e.Hart})
		}
	}
	return out
}

// LastWriters returns the trailing max write accesses overlapping
// [addr, addr+size) at or before until, in chronological order — the
// "who last touched this memory" window of a KASAN-style report. Reads are
// ignored; the faulting access itself (at until) is included when it was a
// write, since the stream cannot distinguish it from a racing peer.
func LastWriters(recs []Record, addr, size uint32, until uint64, max int) []san.TimelineEntry {
	if size == 0 {
		size = 1
	}
	if max <= 0 {
		max = 8
	}
	var out []san.TimelineEntry
	for _, r := range recs {
		e := r.Event
		if e.ICnt > until {
			break
		}
		if e.Kind != obs.EvMemProbe && e.Kind != obs.EvSanck {
			continue
		}
		asz := e.Arg & 0xFF
		write := e.Arg&(1<<8) != 0
		if !write || asz == 0 {
			continue
		}
		if e.Addr >= addr+size || e.Addr+asz <= addr {
			continue
		}
		out = append(out, san.TimelineEntry{ICnt: e.ICnt, Event: "write",
			PC: e.PC, Addr: e.Addr, Size: asz, Hart: e.Hart})
	}
	if len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
