package forensics

import (
	"reflect"
	"testing"

	"embsan/internal/obs"
)

// ev builds an event tersely for fixtures.
func ev(icnt uint64, kind obs.Kind, pc, addr, arg uint32, hart uint8) obs.Event {
	return obs.Event{ICnt: icnt, PC: pc, Addr: addr, Arg: arg, Kind: kind, Hart: hart}
}

// frame builds an EvFrame child for a parent at icnt with parent PC.
func frame(icnt uint64, parentPC, framePC uint32, idx uint32) obs.Event {
	return obs.Event{ICnt: icnt, PC: parentPC, Addr: framePC, Arg: idx, Kind: obs.EvFrame}
}

func TestFoldAttachesFrames(t *testing.T) {
	events := []obs.Event{
		ev(100, obs.EvAllocExit, 0x80, 0x2000, 32, 0),
		frame(100, 0x80, 0x140, 0),
		frame(100, 0x80, 0x104, 1),
		ev(200, obs.EvFree, 0x90, 0x2000, 0, 0),
		frame(200, 0x90, 0x150, 0),
	}
	recs := Fold(events)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if want := []uint32{0x140, 0x104}; !reflect.DeepEqual(recs[0].Stack, want) {
		t.Errorf("alloc stack = %#x, want %#x", recs[0].Stack, want)
	}
	if want := []uint32{0x150}; !reflect.DeepEqual(recs[1].Stack, want) {
		t.Errorf("free stack = %#x, want %#x", recs[1].Stack, want)
	}
}

func TestFoldDropsOrphanFrames(t *testing.T) {
	// A windowed cut can leave frames with no parent (stream starts with
	// them) or with a mismatched parent (timestamp or index gap). None may
	// attach.
	events := []obs.Event{
		frame(50, 0x80, 0x140, 0), // no parent at all
		ev(100, obs.EvAllocExit, 0x80, 0x2000, 32, 0),
		frame(101, 0x80, 0x140, 0), // wrong icnt
		frame(100, 0x80, 0x150, 1), // index gap (stack is empty, wants 0)
	}
	recs := Fold(events)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Stack != nil {
		t.Errorf("orphan frames attached: %#x", recs[0].Stack)
	}
}

func TestFoldFlattenRoundTrip(t *testing.T) {
	events := []obs.Event{
		ev(100, obs.EvAllocExit, 0x80, 0x2000, 32, 0),
		frame(100, 0x80, 0x140, 0),
		frame(100, 0x80, 0x104, 1),
		ev(150, obs.EvMemProbe, 0x200, 0x2004, 4|1<<8, 1),
		ev(200, obs.EvReport, 0x300, 0x2004, 3, 1),
		// Frames carry the parent's hart (the runtime emits them on the
		// reporting hart), which Flatten reproduces.
		{ICnt: 200, PC: 0x300, Addr: 0x2f0, Arg: 0, Kind: obs.EvFrame, Hart: 1},
	}
	recs := Fold(events)
	back := Flatten(recs)
	if !reflect.DeepEqual(back, events) {
		t.Errorf("Flatten(Fold(events)) != events:\n got %v\nwant %v", back, events)
	}
	if again := Fold(back); !reflect.DeepEqual(again, recs) {
		t.Errorf("Fold(Flatten(recs)) != recs")
	}
}

func TestObjectTimeline(t *testing.T) {
	const base, size = 0x2000, 32
	recs := Fold([]obs.Event{
		ev(10, obs.EvAllocExit, 0x80, base, size, 0),
		frame(10, 0x80, 0x140, 0),
		ev(12, obs.EvUnpoison, 0, base, size, 0),
		ev(20, obs.EvAllocExit, 0x80, 0x3000, 16, 0), // different object: ignored
		ev(30, obs.EvFree, 0x90, base, 0, 1),
		ev(31, obs.EvPoison, 0xFB, base, size, 1), // PC = poison code, not a PC
		ev(32, obs.EvQuarantine, 0x90, base, size, 1),
		ev(40, obs.EvAllocExit, 0x84, base, 24, 0), // slot reuse
	})
	tl := ObjectTimeline(recs, base, size)
	var got []string
	for _, te := range tl {
		got = append(got, te.Event)
	}
	want := []string{"alloc", "unpoison", "free", "poison", "quarantine", "realloc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timeline events = %v, want %v", got, want)
	}
	if tl[0].Stack == nil || tl[0].Stack[0] != 0x140 {
		t.Errorf("alloc entry lost its stack: %#x", tl[0].Stack)
	}
	if tl[3].PC != 0 {
		t.Errorf("poison entry PC = %#x, want 0 (poison codes are not PCs)", tl[3].PC)
	}
	if tl[5].Size != 24 {
		t.Errorf("realloc size = %d, want 24", tl[5].Size)
	}
}

func TestLastWriters(t *testing.T) {
	const addr = 0x2004
	var events []obs.Event
	// Ten writes to the address, interleaved (in stream order — the trace
	// clock is monotonic) with reads and unrelated writes; only the last 8
	// writes at or before icnt 100 qualify.
	for i := uint64(1); i <= 5; i++ {
		events = append(events, ev(i*10, obs.EvMemProbe, 0x200, addr, 4|1<<8, 0))
	}
	events = append(events,
		ev(55, obs.EvMemProbe, 0x210, addr, 4, 0),        // read: ignored
		ev(56, obs.EvMemProbe, 0x220, 0x9000, 4|1<<8, 0), // elsewhere: ignored
		ev(57, obs.EvSanck, 0x230, addr-2, 4|1<<8, 1),    // overlapping sanck write
	)
	for i := uint64(6); i <= 10; i++ {
		events = append(events, ev(i*10, obs.EvMemProbe, 0x200, addr, 4|1<<8, 0))
	}
	events = append(events,
		ev(200, obs.EvMemProbe, 0x240, addr, 4|1<<8, 0), // after until: ignored
	)
	recs := Fold(events)
	ws := LastWriters(recs, addr, 4, 100, 8)
	if len(ws) != 8 {
		t.Fatalf("got %d writers, want 8", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].ICnt < ws[i-1].ICnt {
			t.Fatalf("writers not chronological: %d after %d", ws[i].ICnt, ws[i-1].ICnt)
		}
	}
	// The overlapping EvSanck write at icnt 57 must be in the window.
	found := false
	for _, w := range ws {
		if w.ICnt == 57 && w.Hart == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("overlapping sanck write missing from %v", ws)
	}
	if last := ws[len(ws)-1]; last.ICnt != 100 {
		t.Errorf("last writer at icnt %d, want 100", last.ICnt)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := Fold([]obs.Event{
		ev(10, obs.EvAllocExit, 0x80, 0x2000, 32, 0),
		frame(10, 0x80, 0x140, 0),
		frame(10, 0x80, 0x104, 1),
		ev(30, obs.EvFree, 0x90, 0x2000, 0, 1),
		ev(40, obs.EvReport, 0x300, 0x2004, 3, 1),
	})
	b, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("decode(encode(recs)) != recs:\n got %v\nwant %v", back, recs)
	}
	b2, err := EncodeRecords(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(b) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	good, err := EncodeRecords([]Record{{Event: ev(1, obs.EvFree, 2, 3, 0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":          good[:8],
		"bad magic":      append([]byte("XXXX"), good[4:]...),
		"bad version":    append(append([]byte{}, good[:4]...), append([]byte{9, 0}, good[6:]...)...),
		"trailing bytes": append(append([]byte{}, good...), 0),
		"truncated":      good[:len(good)-1],
	}
	for name, b := range cases {
		if _, err := DecodeRecords(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// A bare frame event may not appear as a top-level record.
	if _, err := EncodeRecords([]Record{{Event: ev(1, obs.EvFrame, 2, 3, 0, 0)}}); err == nil {
		t.Error("encode accepted a bare frame record")
	}
}
