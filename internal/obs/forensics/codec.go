package forensics

import (
	"encoding/binary"
	"fmt"

	"embsan/internal/obs"
)

// Binary forensic-record format, mirroring the EMTR trace codec: a fixed
// 12-byte header followed by variable-length little-endian records (the
// 22-byte event layout of EMTR plus the folded backtrace). The encoding is
// canonical — exactly one byte string per record list, and decoding
// rejects anything that is not such a byte string — so encode∘decode and
// decode∘encode are identities on their domains (FuzzExplainRoundTrip
// enforces this).
//
//	header:  "EMFX" | u16 version | u16 reserved=0 | u32 count
//	record:  u64 icnt | u32 pc | u32 addr | u32 arg | u8 kind | u8 hart |
//	         u16 nframes | nframes × u32 frame
const (
	fxMagic      = "EMFX"
	fxVersion    = 1
	fxHeaderSize = 12
	fxEventSize  = 22
	// fxMaxFrames bounds a record's backtrace. The emulator's shadow call
	// stack is capped far below this; the bound exists so malformed inputs
	// cannot request absurd allocations.
	fxMaxFrames = 1024
)

// EncodeRecords serialises a folded record list. Records whose stacks
// exceed fxMaxFrames frames or whose events carry EvFrame (frames are
// folded, never top-level) are rejected.
func EncodeRecords(recs []Record) ([]byte, error) {
	size := fxHeaderSize
	for i, r := range recs {
		if r.Event.Kind == obs.EvFrame {
			return nil, fmt.Errorf("forensics: record %d is a bare frame event", i)
		}
		if len(r.Stack) > fxMaxFrames {
			return nil, fmt.Errorf("forensics: record %d has %d frames (max %d)", i, len(r.Stack), fxMaxFrames)
		}
		size += fxEventSize + 2 + 4*len(r.Stack)
	}
	out := make([]byte, size)
	copy(out, fxMagic)
	binary.LittleEndian.PutUint16(out[4:], fxVersion)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(recs)))
	off := fxHeaderSize
	for _, r := range recs {
		e := r.Event
		binary.LittleEndian.PutUint64(out[off:], e.ICnt)
		binary.LittleEndian.PutUint32(out[off+8:], e.PC)
		binary.LittleEndian.PutUint32(out[off+12:], e.Addr)
		binary.LittleEndian.PutUint32(out[off+16:], e.Arg)
		out[off+20] = byte(e.Kind)
		out[off+21] = e.Hart
		binary.LittleEndian.PutUint16(out[off+22:], uint16(len(r.Stack)))
		off += fxEventSize + 2
		for _, pc := range r.Stack {
			binary.LittleEndian.PutUint32(out[off:], pc)
			off += 4
		}
	}
	return out, nil
}

// DecodeRecords parses a binary forensic record list. It never panics on
// malformed input.
func DecodeRecords(b []byte) ([]Record, error) {
	if len(b) < fxHeaderSize {
		return nil, fmt.Errorf("forensics: record stream too short (%d bytes)", len(b))
	}
	if string(b[:4]) != fxMagic {
		return nil, fmt.Errorf("forensics: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != fxVersion {
		return nil, fmt.Errorf("forensics: unsupported version %d", v)
	}
	if r := binary.LittleEndian.Uint16(b[6:]); r != 0 {
		return nil, fmt.Errorf("forensics: reserved header bytes set (%#x)", r)
	}
	count := int(binary.LittleEndian.Uint32(b[8:]))
	recs := make([]Record, 0, count)
	off := fxHeaderSize
	for i := 0; i < count; i++ {
		if len(b)-off < fxEventSize+2 {
			return nil, fmt.Errorf("forensics: record %d truncated", i)
		}
		e := obs.Event{
			ICnt: binary.LittleEndian.Uint64(b[off:]),
			PC:   binary.LittleEndian.Uint32(b[off+8:]),
			Addr: binary.LittleEndian.Uint32(b[off+12:]),
			Arg:  binary.LittleEndian.Uint32(b[off+16:]),
			Kind: obs.Kind(b[off+20]),
			Hart: b[off+21],
		}
		if !e.Kind.Valid() {
			return nil, fmt.Errorf("forensics: record %d has unknown kind %d", i, e.Kind)
		}
		if e.Kind == obs.EvFrame {
			return nil, fmt.Errorf("forensics: record %d is a bare frame event", i)
		}
		n := int(binary.LittleEndian.Uint16(b[off+22:]))
		if n > fxMaxFrames {
			return nil, fmt.Errorf("forensics: record %d has %d frames (max %d)", i, n, fxMaxFrames)
		}
		off += fxEventSize + 2
		if len(b)-off < 4*n {
			return nil, fmt.Errorf("forensics: record %d frame list truncated", i)
		}
		var stack []uint32
		for f := 0; f < n; f++ {
			stack = append(stack, binary.LittleEndian.Uint32(b[off:]))
			off += 4
		}
		recs = append(recs, Record{Event: e, Stack: stack})
	}
	if off != len(b) {
		return nil, fmt.Errorf("forensics: %d trailing bytes after %d records", len(b)-off, count)
	}
	return recs, nil
}
