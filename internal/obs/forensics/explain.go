package forensics

import (
	"fmt"
	"strings"

	"embsan/internal/core"
	"embsan/internal/obs"
	"embsan/internal/san"
)

// Options configures one Explain run.
type Options struct {
	// Signature selects which report to explain (Report.Signature); empty
	// means the first report the input produces.
	Signature string
	// Input is the distilled/minimized executor input reproducing the bug.
	Input []byte
	// Budget bounds each replay pass in guest instructions (0 = 4M).
	Budget uint64
	// Window is the virtual-time half-window, in instructions around the
	// report, inside which memory accesses are traced (0 = 4096). Allocator
	// and shadow events for the faulting object are kept regardless of
	// window, so the lifetime timeline reaches back to the original
	// allocation.
	Window uint64
	// RingSize is the focused trace ring capacity in events (0 = 65536).
	RingSize int
}

// Explanation is the deterministic forensic story of one report: the
// enriched report, the focused record stream it was reconstructed from,
// and the rendered artifacts. All fields are pure functions of (firmware,
// input, seed), so two runs — on any worker topology — produce
// byte-identical Text and JSON.
type Explanation struct {
	Report  *san.Report
	Records []Record
	// WindowLo/WindowHi is the traced virtual-time window.
	WindowLo, WindowHi uint64
	// Text is the full KASAN-style report with forensic sections.
	Text string
}

// Explain replays input on a booted, snapshotted instance and reconstructs
// the forensic story of the selected report. Two passes: the first locates
// the report's virtual timestamp with tracing off (full speed); the second
// re-executes with forensic capture armed and an emit-time filter focusing
// the ring on the faulting object and the window around the fault. The
// second pass must reproduce the report at the identical instruction count
// — anything else is a determinism violation and an error, never a silent
// wrong answer.
//
// The instance's trace ring and forensic arming are restored to off on
// return; the machine is left wherever the second pass stopped (callers
// Restore before reuse, as after any Exec).
func Explain(inst *core.Instance, opts Options) (*Explanation, error) {
	if inst.Runtime == nil {
		return nil, fmt.Errorf("forensics: instance has no sanitizer runtime")
	}
	budget := opts.Budget
	if budget == 0 {
		budget = 4 << 20
	}
	window := opts.Window
	if window == 0 {
		window = 4096
	}
	ringSize := opts.RingSize
	if ringSize == 0 {
		ringSize = 1 << 16
	}
	seed := inst.Machine.Seed()

	// Pass 1: untraced replay to locate the report on the virtual clock.
	inst.Restore()
	inst.Machine.Reseed(seed)
	res := inst.Exec(opts.Input, budget)
	r1 := pickReport(res.Reports, opts.Signature)
	if r1 == nil {
		return nil, fmt.Errorf("forensics: input did not reproduce report %q (%d reports, stop=%v)",
			opts.Signature, len(res.Reports), res.Stop)
	}
	lo := uint64(0)
	if r1.ICnt > window {
		lo = r1.ICnt - window
	}
	hi := r1.ICnt + window

	// Pass 2: focused forensic replay. The filter keeps the faulting
	// object's allocator and shadow events for all time (they are rare and
	// carry the timeline), memory accesses only when they overlap the
	// faulting range inside the window, and report/frame events always;
	// translation-block noise is dropped entirely so the ring never wraps.
	fSize := r1.Size
	if fSize == 0 {
		fSize = 1
	}
	chunkLo, chunkHi := r1.Addr, r1.Addr+fSize
	if r1.ChunkAddr != 0 {
		chunkLo, chunkHi = r1.ChunkAddr, r1.ChunkAddr+r1.ChunkSize
	}
	ring := obs.NewRing(ringSize)
	ring.SetFilter(func(e obs.Event) bool {
		switch e.Kind {
		case obs.EvAllocExit, obs.EvFree, obs.EvQuarantine:
			return e.Addr >= chunkLo && e.Addr < chunkHi
		case obs.EvPoison, obs.EvUnpoison:
			return e.Addr < chunkHi && e.Addr+e.Arg > chunkLo
		case obs.EvMemProbe, obs.EvSanck:
			sz := e.Arg & 0xFF
			if sz == 0 {
				sz = 1
			}
			return e.ICnt >= lo && e.ICnt <= hi &&
				e.Addr < r1.Addr+fSize && e.Addr+sz > r1.Addr
		case obs.EvReport, obs.EvFrame:
			return true
		}
		return false
	})
	inst.Restore()
	inst.Machine.Reseed(seed)
	inst.SetTrace(ring)
	inst.ArmForensics(true)
	res2 := inst.Exec(opts.Input, budget)
	inst.ArmForensics(false)
	inst.SetTrace(nil)
	r2 := pickReport(res2.Reports, opts.Signature)
	if r2 == nil {
		return nil, fmt.Errorf("forensics: forensic replay lost report %q", opts.Signature)
	}
	if r2.ICnt != r1.ICnt || r2.Signature() != r1.Signature() {
		return nil, fmt.Errorf("forensics: nondeterministic replay: %q at icnt %d vs %q at icnt %d",
			r1.Signature(), r1.ICnt, r2.Signature(), r2.ICnt)
	}
	if ring.Dropped() > 0 {
		return nil, fmt.Errorf("forensics: focused ring overflowed (%d dropped); raise RingSize", ring.Dropped())
	}

	recs := Fold(ring.Events())
	report := *r2
	report.Timeline = ObjectTimeline(recs, chunkLo, chunkHi-chunkLo)
	report.LastWriters = LastWriters(recs, r2.Addr, r2.Size, r2.ICnt, 8)
	return &Explanation{
		Report:   &report,
		Records:  recs,
		WindowLo: lo,
		WindowHi: hi,
		Text:     report.Format(inst.Image()),
	}, nil
}

// pickReport returns the first report matching sig, or the first report
// when sig is empty.
func pickReport(reports []*san.Report, sig string) *san.Report {
	for _, r := range reports {
		if sig == "" || r.Signature() == sig {
			return r
		}
	}
	return nil
}

// JSON renders the explanation as canonical machine-readable bytes: fixed
// key order, no whitespace variance, symbolized PCs. Byte-identical for
// byte-identical explanations — the artifact `make explain-check` compares
// across runs.
func (x *Explanation) JSON(symbolize func(uint32) string) []byte {
	if symbolize == nil {
		symbolize = func(pc uint32) string { return fmt.Sprintf("%#08x", pc) }
	}
	r := x.Report
	var b strings.Builder
	b.WriteString("{")
	fmt.Fprintf(&b, "%q:%s,", "signature", jsonStr(r.Signature()))
	fmt.Fprintf(&b, "%q:%s,", "title", jsonStr(r.Title()))
	fmt.Fprintf(&b, "%q:%s,", "tool", jsonStr(r.Tool.String()))
	fmt.Fprintf(&b, "%q:%s,", "bug", jsonStr(r.Bug.String()))
	fmt.Fprintf(&b, "%q:%d,", "icnt", r.ICnt)
	fmt.Fprintf(&b, "%q:%d,", "hart", r.Hart)
	fmt.Fprintf(&b, "%q:%s,", "pc", jsonStr(symbolize(r.PC)))
	fmt.Fprintf(&b, "%q:\"%#08x\",", "addr", r.Addr)
	fmt.Fprintf(&b, "%q:%d,", "size", r.Size)
	fmt.Fprintf(&b, "%q:%t,", "write", r.Write)
	fmt.Fprintf(&b, "%q:{%q:\"%#08x\",%q:%d},", "chunk", "addr", r.ChunkAddr, "size", r.ChunkSize)
	fmt.Fprintf(&b, "%q:[%d,%d],", "window", x.WindowLo, x.WindowHi)
	fmt.Fprintf(&b, "%q:{", "stacks")
	fmt.Fprintf(&b, "%q:", "access")
	jsonFrames(&b, r.Stack, symbolize)
	fmt.Fprintf(&b, ",%q:", "alloc")
	jsonFrames(&b, r.AllocStack, symbolize)
	fmt.Fprintf(&b, ",%q:", "free")
	jsonFrames(&b, r.FreeStack, symbolize)
	b.WriteString("},")
	fmt.Fprintf(&b, "%q:", "timeline")
	jsonTimeline(&b, r.Timeline, symbolize)
	fmt.Fprintf(&b, ",%q:", "last_writers")
	jsonTimeline(&b, r.LastWriters, symbolize)
	fmt.Fprintf(&b, ",%q:%d", "records", len(x.Records))
	b.WriteString("}\n")
	return []byte(b.String())
}

func jsonFrames(b *strings.Builder, frames []uint32, symbolize func(uint32) string) {
	b.WriteString("[")
	for i, pc := range frames {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(jsonStr(symbolize(pc)))
	}
	b.WriteString("]")
}

func jsonTimeline(b *strings.Builder, entries []san.TimelineEntry, symbolize func(uint32) string) {
	b.WriteString("[")
	for i, te := range entries {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, "{%q:%d,%q:%s,%q:\"%#08x\",%q:%d,%q:%d",
			"icnt", te.ICnt, "event", jsonStr(te.Event), "addr", te.Addr,
			"size", te.Size, "hart", te.Hart)
		if te.PC != 0 {
			fmt.Fprintf(b, ",%q:%s", "pc", jsonStr(symbolize(te.PC)))
		}
		if len(te.Stack) > 0 {
			fmt.Fprintf(b, ",%q:", "stack")
			jsonFrames(b, te.Stack, symbolize)
		}
		b.WriteString("}")
	}
	b.WriteString("]")
}

// jsonStr escapes a string for JSON output; symbols and signatures are
// ASCII but quoting is delegated to %q semantics for safety.
func jsonStr(s string) string { return fmt.Sprintf("%q", s) }
