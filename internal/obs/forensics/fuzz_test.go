package forensics

import (
	"bytes"
	"reflect"
	"testing"

	"embsan/internal/obs"
)

func mustEncode(t testing.TB, recs []Record) []byte {
	b, err := EncodeRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzExplainRoundTrip fuzzes the forensic-record codec `embsan explain`
// persists its evidence in: any input that decodes must re-encode to
// exactly the same bytes (the encoding is canonical), and the decoded
// records must survive a second round trip. Inputs that do not decode must
// fail with an error, never a panic.
func FuzzExplainRoundTrip(f *testing.F) {
	f.Add(mustEncode(f, nil))
	f.Add(mustEncode(f, Fold([]obs.Event{
		ev(10, obs.EvAllocExit, 0x80, 0x2000, 32, 0),
		frame(10, 0x80, 0x140, 0),
		frame(10, 0x80, 0x104, 1),
		ev(30, obs.EvFree, 0x90, 0x2000, 0, 1),
		ev(40, obs.EvReport, 0x300, 0x2004, 3, 1),
		frame(40, 0x300, 0x2f0, 0),
	})))
	f.Add([]byte("EMFX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		enc, err := EncodeRecords(recs)
		if err != nil {
			t.Fatalf("decoded records failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode→encode is not the identity:\n in: %x\nout: %x", data, enc)
		}
		recs2, err := DecodeRecords(enc)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("second decode diverged")
		}
	})
}
