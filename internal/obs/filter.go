package obs

import (
	"fmt"
	"math"
	"strings"
)

// Filter selects trace events at export time. The zero value matches
// nothing useful — build one with NewFilter, which matches everything, and
// narrow it down. Export-time filtering never perturbs what was recorded:
// the ring holds the full stream and the filter is applied to a copy, so
// the same capture can be cut different ways.
type Filter struct {
	// Kinds, when non-nil, retains only events of the listed kinds.
	Kinds map[Kind]bool
	// Hart, when >= 0, retains only events from that hart.
	Hart int
	// Lo and Hi bound the virtual-time window: events with
	// Lo <= ICnt <= Hi are retained.
	Lo, Hi uint64
}

// NewFilter returns a filter matching every event.
func NewFilter() Filter {
	return Filter{Hart: -1, Hi: math.MaxUint64}
}

// Match reports whether e passes the filter.
func (f Filter) Match(e Event) bool {
	if e.ICnt < f.Lo || e.ICnt > f.Hi {
		return false
	}
	if f.Hart >= 0 && int(e.Hart) != f.Hart {
		return false
	}
	if f.Kinds != nil && !f.Kinds[e.Kind] {
		return false
	}
	return true
}

// Apply returns the events passing the filter, in input order. The input is
// never mutated; with an all-matching filter the result is still a fresh
// slice.
func (f Filter) Apply(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if f.Match(e) {
			out = append(out, e)
		}
	}
	return out
}

// AddKindName adds every kind whose exporter name is name (names are not
// unique: "tb" covers both EvTBEnter and EvTBExit). Unknown names are an
// error listing the valid set.
func (f *Filter) AddKindName(name string) error {
	if f.Kinds == nil {
		f.Kinds = make(map[Kind]bool)
	}
	found := false
	for k := Kind(1); k <= evMax; k++ {
		if k.String() == name {
			f.Kinds[k] = true
			found = true
		}
	}
	if !found {
		return fmt.Errorf("obs: unknown event kind %q (valid: %s)", name, strings.Join(KindNames(), ", "))
	}
	return nil
}

// ParseWindow parses a "lo:hi" ICnt range; either bound may be empty for
// unbounded ("1000:", ":5000", "1000:5000").
func (f *Filter) ParseWindow(s string) error {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("obs: window %q is not lo:hi", s)
	}
	f.Lo, f.Hi = 0, math.MaxUint64
	if lo != "" {
		if _, err := fmt.Sscanf(lo, "%d", &f.Lo); err != nil {
			return fmt.Errorf("obs: bad window low bound %q", lo)
		}
	}
	if hi != "" {
		if _, err := fmt.Sscanf(hi, "%d", &f.Hi); err != nil {
			return fmt.Errorf("obs: bad window high bound %q", hi)
		}
	}
	if f.Lo > f.Hi {
		return fmt.Errorf("obs: empty window %q", s)
	}
	return nil
}

// KindNames returns the distinct exporter names of all event kinds, in kind
// order.
func KindNames() []string {
	var out []string
	seen := make(map[string]bool)
	for k := Kind(1); k <= evMax; k++ {
		if n := k.String(); !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
