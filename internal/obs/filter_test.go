package obs

import (
	"math"
	"testing"
)

// recordedRing captures a small deterministic stream spanning kinds, harts
// and a virtual-time range — the fixture the export filters cut.
func recordedRing() *Ring {
	r := NewRing(64)
	r.Emit(Event{ICnt: 100, PC: 0x1000, Kind: EvTBEnter, Hart: 0})
	r.Emit(Event{ICnt: 110, PC: 0x1000, Kind: EvTBExit, Hart: 0})
	r.Emit(Event{ICnt: 120, PC: 0x1010, Addr: 0x8000, Arg: PackAccess(4, true, false), Kind: EvMemProbe, Hart: 0})
	r.Emit(Event{ICnt: 130, PC: 0x1020, Addr: 0x8000, Arg: 16, Kind: EvAllocExit, Hart: 1})
	r.Emit(Event{ICnt: 140, PC: 0x1030, Addr: 0x8000, Kind: EvFree, Hart: 1})
	r.Emit(Event{ICnt: 150, PC: 0x1030, Addr: 0x8000, Arg: 16, Kind: EvQuarantine, Hart: 1})
	r.Emit(Event{ICnt: 160, PC: 0x1040, Addr: 0x8004, Kind: EvReport, Hart: 0})
	return r
}

func TestFilterByKind(t *testing.T) {
	f := NewFilter()
	if err := f.AddKindName("free"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddKindName("quarantine"); err != nil {
		t.Fatal(err)
	}
	got := f.Apply(recordedRing().Events())
	if len(got) != 2 || got[0].Kind != EvFree || got[1].Kind != EvQuarantine {
		t.Fatalf("kind filter kept %+v", got)
	}
	// "tb" is a shared exporter name covering both enter and exit.
	f2 := NewFilter()
	if err := f2.AddKindName("tb"); err != nil {
		t.Fatal(err)
	}
	if got := f2.Apply(recordedRing().Events()); len(got) != 2 {
		t.Fatalf("tb filter kept %d events, want 2", len(got))
	}
	if err := new(Filter).AddKindName("bogus"); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

func TestFilterByHart(t *testing.T) {
	f := NewFilter()
	f.Hart = 1
	got := f.Apply(recordedRing().Events())
	if len(got) != 3 {
		t.Fatalf("hart filter kept %d events, want 3", len(got))
	}
	for _, e := range got {
		if e.Hart != 1 {
			t.Fatalf("hart filter leaked %+v", e)
		}
	}
}

func TestFilterByWindow(t *testing.T) {
	cases := []struct {
		window string
		want   int
	}{
		{"120:150", 4},
		{"120:", 5},
		{":110", 2},
		{"0:99", 0},
	}
	for _, c := range cases {
		f := NewFilter()
		if err := f.ParseWindow(c.window); err != nil {
			t.Fatalf("%s: %v", c.window, err)
		}
		if got := f.Apply(recordedRing().Events()); len(got) != c.want {
			t.Errorf("window %s kept %d events, want %d", c.window, len(got), c.want)
		}
	}
	var f Filter
	if err := f.ParseWindow("200:100"); err == nil {
		t.Error("inverted window accepted")
	}
	if err := f.ParseWindow("nope"); err == nil {
		t.Error("malformed window accepted")
	}
}

func TestFilterCompose(t *testing.T) {
	f := NewFilter()
	f.Hart = 1
	if err := f.AddKindName("free"); err != nil {
		t.Fatal(err)
	}
	if err := f.ParseWindow("100:200"); err != nil {
		t.Fatal(err)
	}
	got := f.Apply(recordedRing().Events())
	if len(got) != 1 || got[0].ICnt != 140 {
		t.Fatalf("composed filter kept %+v", got)
	}
}

func TestFilterDoesNotMutateInput(t *testing.T) {
	events := recordedRing().Events()
	f := NewFilter()
	f.Hart = 0
	_ = f.Apply(events)
	if len(events) != 7 {
		t.Fatalf("input mutated: %d events", len(events))
	}
}

func TestEmitTimeFilter(t *testing.T) {
	r := NewRing(8)
	r.SetFilter(func(e Event) bool { return e.Kind != EvTBEnter })
	if r.Emit(Event{Kind: EvTBEnter}) {
		t.Error("filtered emit reported retained")
	}
	if !r.Emit(Event{Kind: EvReport}) {
		t.Error("passing emit reported dropped")
	}
	if r.Len() != 1 || r.Events()[0].Kind != EvReport {
		t.Fatalf("ring holds %+v", r.Events())
	}
	// Filtered events do not count as wraparound drops.
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
	r.SetFilter(nil)
	if !r.Emit(Event{Kind: EvTBEnter}) {
		t.Error("emit rejected after filter removal")
	}
}

func TestKindNamesCoverAllKinds(t *testing.T) {
	names := KindNames()
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "unknown" {
			t.Fatal("unknown leaked into KindNames")
		}
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
	for k := Kind(1); k <= evMax; k++ {
		if !seen[k.String()] {
			t.Errorf("kind %d name %q missing", k, k.String())
		}
	}
	// Every name must round-trip through AddKindName.
	for _, n := range names {
		f := NewFilter()
		if err := f.AddKindName(n); err != nil {
			t.Errorf("AddKindName(%q): %v", n, err)
		}
	}
}

func TestNewFilterMatchesEverything(t *testing.T) {
	f := NewFilter()
	if f.Hi != math.MaxUint64 || f.Hart != -1 {
		t.Fatalf("NewFilter = %+v", f)
	}
	if got := f.Apply(recordedRing().Events()); len(got) != 7 {
		t.Fatalf("all-pass filter kept %d of 7", len(got))
	}
}
