package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Profile attributes virtual-instruction and sanitizer-dispatch cost to
// guest PCs. The emulator feeds it live — per translation block executed
// and per SANCK/Mem dispatch fired — so it sees everything even when the
// trace ring has wrapped. Like the trace, its clock is virtual: "cost" is
// retired guest instructions, not host nanoseconds, which is what makes
// two profiles of the same campaign bit-identical.
type Profile struct {
	insts map[uint32]uint64 // per block-leader PC: guest instructions retired
	disp  map[uint32]uint64 // per access-site PC: sanitizer dispatches fired
}

// NewProfile creates an empty profile.
func NewProfile() *Profile {
	return &Profile{insts: map[uint32]uint64{}, disp: map[uint32]uint64{}}
}

// AddInsts attributes n retired instructions to the block at pc.
func (p *Profile) AddInsts(pc uint32, n uint64) { p.insts[pc] += n }

// AddDispatch records one sanitizer dispatch at the access site pc.
func (p *Profile) AddDispatch(pc uint32) { p.disp[pc]++ }

// TotalInsts returns the total attributed instruction count.
func (p *Profile) TotalInsts() uint64 {
	var t uint64
	for _, n := range p.insts {
		t += n
	}
	return t
}

// TotalDispatches returns the total recorded dispatch count.
func (p *Profile) TotalDispatches() uint64 {
	var t uint64
	for _, n := range p.disp {
		t += n
	}
	return t
}

// FuncRange is one recovered static function, as produced by
// internal/static function recovery ([Entry, End) with the symbol or
// synthesised name). The profiler takes ranges rather than an Analysis so
// obs stays dependency-free.
type FuncRange struct {
	Entry uint32
	End   uint32
	Name  string
}

// unknownFrame is the attribution bucket for PCs outside every range.
const unknownFrame = "[unknown]"

// attribute maps pc to the containing function name. funcs must be sorted
// by Entry.
func attribute(funcs []FuncRange, pc uint32) string {
	i := sort.Search(len(funcs), func(i int) bool { return funcs[i].Entry > pc })
	if i > 0 && pc < funcs[i-1].End {
		return funcs[i-1].Name
	}
	return unknownFrame
}

// FuncCost is one function's attributed totals.
type FuncCost struct {
	Name       string
	Insts      uint64
	Dispatches uint64
}

// ByFunc folds the per-PC profile onto functions. funcs must be sorted by
// Entry (static.Analysis.Funcs already is). Rows are sorted by descending
// instruction cost, ties broken by name, so the output is deterministic.
func (p *Profile) ByFunc(funcs []FuncRange) []FuncCost {
	agg := map[string]*FuncCost{}
	get := func(name string) *FuncCost {
		fc, ok := agg[name]
		if !ok {
			fc = &FuncCost{Name: name}
			agg[name] = fc
		}
		return fc
	}
	for pc, n := range p.insts {
		get(attribute(funcs, pc)).Insts += n
	}
	for pc, n := range p.disp {
		get(attribute(funcs, pc)).Dispatches += n
	}
	out := make([]FuncCost, 0, len(agg))
	for _, fc := range agg {
		out = append(out, *fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Insts != out[j].Insts {
			return out[i].Insts > out[j].Insts
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Folded renders the flamegraph-compatible folded-stack form: one
// "stack count" line per function, where the stack is the single recovered
// frame and the count is retired guest instructions. Lines are sorted by
// name so two runs of the same campaign emit byte-identical files.
func (p *Profile) Folded(funcs []FuncRange) string {
	agg := map[string]uint64{}
	for pc, n := range p.insts {
		agg[attribute(funcs, pc)] += n
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, agg[n])
	}
	return b.String()
}

// DispatchSite is one must-check access site: a PC whose sanitizer dispatch
// the static prover did not (or could not) elide, ranked by how often it
// fired.
type DispatchSite struct {
	PC    uint32
	Fn    string // containing function + offset, "[unknown]" when unattributed
	Count uint64
}

// DispatchSites returns every dispatching site ranked by descending count,
// ties broken by ascending PC. Sites that appear here at all are the
// residue the elision pass left behind — the data PartiSan-style
// partitioning decisions would be driven by.
func (p *Profile) DispatchSites(funcs []FuncRange) []DispatchSite {
	out := make([]DispatchSite, 0, len(p.disp))
	for pc, n := range p.disp {
		fn := unknownFrame
		if name := attribute(funcs, pc); name != unknownFrame {
			i := sort.Search(len(funcs), func(i int) bool { return funcs[i].Entry > pc })
			fn = fmt.Sprintf("%s+%#x", name, pc-funcs[i-1].Entry)
		}
		out = append(out, DispatchSite{PC: pc, Fn: fn, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// FormatDispatchTable renders the per-site dispatch-cost table: the top
// sites by dispatch count with their share of all dispatches. top <= 0
// means every site.
func FormatDispatchTable(sites []DispatchSite, top int) string {
	var total uint64
	for _, s := range sites {
		total += s.Count
	}
	if top <= 0 || top > len(sites) {
		top = len(sites)
	}
	var b strings.Builder
	b.WriteString("Hottest must-check sanitizer dispatch sites\n")
	fmt.Fprintf(&b, "%-4s %-10s %12s %7s  %s\n", "rank", "pc", "dispatches", "share", "site")
	for i := 0; i < top; i++ {
		s := sites[i]
		share := 0.0
		if total > 0 {
			share = float64(s.Count) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-4d %#08x %12d %6.1f%%  %s\n", i+1, s.PC, s.Count, share, s.Fn)
	}
	fmt.Fprintf(&b, "total dispatches: %d across %d sites\n", total, len(sites))
	return b.String()
}
