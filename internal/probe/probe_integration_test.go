package probe

import (
	"testing"

	"embsan/internal/dsl"
	"embsan/internal/guest/firmware"
)

// TestProbeAllTable1Firmware probes every registry image in its natural
// mode and validates the produced DSL: the broad integration pass the
// pre-testing phase runs for each evaluation target.
func TestProbeAllTable1Firmware(t *testing.T) {
	fws, err := firmware.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, fw := range fws {
		res, err := Probe(fw.Image, Options{})
		if err != nil {
			t.Errorf("%s: %v", fw.Name, err)
			continue
		}
		// The mode must match the Table 1 classification.
		switch {
		case fw.Image.Meta.Sanitize.String() == "embsan-c":
			if res.Mode != ModeC {
				t.Errorf("%s: mode %v, want embsan-c", fw.Name, res.Mode)
			}
		case !fw.SourceOpen:
			if res.Mode != ModeDClosed {
				t.Errorf("%s: mode %v, want closed", fw.Name, res.Mode)
			}
		default:
			if res.Mode != ModeDOpen {
				t.Errorf("%s: mode %v, want open", fw.Name, res.Mode)
			}
		}
		// Every firmware must yield at least one allocator and one heap.
		if len(res.Platform.Allocs) == 0 {
			t.Errorf("%s: no allocator found; notes: %v", fw.Name, res.Platform.Notes)
		}
		if len(res.Platform.Heaps) == 0 {
			t.Errorf("%s: no heap region found", fw.Name)
		}
		// The artefacts must round-trip through DSL text.
		file, err := dsl.Parse(res.Text())
		if err != nil {
			t.Errorf("%s: artefacts do not parse: %v", fw.Name, err)
			continue
		}
		if err := file.Validate(); err != nil {
			t.Errorf("%s: %v", fw.Name, err)
		}
		// Allocator entries must point at function starts inside text.
		for _, a := range res.Platform.Allocs {
			if a.Entry < fw.Image.Base || a.Entry >= fw.Image.TextEnd() {
				t.Errorf("%s: alloc entry %#x outside text", fw.Name, a.Entry)
			}
			if len(a.Exits) == 0 {
				t.Errorf("%s: alloc %s has no exits", fw.Name, a.Name)
			}
		}
	}
}
