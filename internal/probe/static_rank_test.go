package probe

import (
	"testing"

	"embsan/internal/guest/vxworks"
	"embsan/internal/isa"
)

// TestProbeDClosedVxworksMatchesOpenTwin is the stripped-firmware acceptance
// check: closed-mode probing of the shipped (stripped) TP-Link image, driven
// by statically ranked allocator candidates, must classify the same
// allocator and free set that symbol-based open probing recovers from the
// unstripped twin of the same build.
func TestProbeDClosedVxworksMatchesOpenTwin(t *testing.T) {
	fw, err := vxworks.Build("TP-Link WDR-7660", isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}

	closed, err := Probe(fw.Image, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Mode != ModeDClosed {
		t.Fatalf("stripped image probed as %v, want closed", closed.Mode)
	}
	open, err := Probe(fw.FullImage, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if open.Mode != ModeDOpen {
		t.Fatalf("unstripped twin probed as %v, want open", open.Mode)
	}

	entrySet := func(allocEntries []uint32) map[uint32]bool {
		m := map[uint32]bool{}
		for _, e := range allocEntries {
			m[e] = true
		}
		return m
	}
	var closedAllocs, openAllocs, closedFrees, openFrees []uint32
	for _, a := range closed.Platform.Allocs {
		closedAllocs = append(closedAllocs, a.Entry)
	}
	for _, a := range open.Platform.Allocs {
		openAllocs = append(openAllocs, a.Entry)
	}
	for _, f := range closed.Platform.Frees {
		closedFrees = append(closedFrees, f.Entry)
	}
	for _, f := range open.Platform.Frees {
		openFrees = append(openFrees, f.Entry)
	}
	if len(closedAllocs) == 0 {
		t.Fatalf("closed probing found no allocator; notes: %v", closed.Platform.Notes)
	}
	ca, oa := entrySet(closedAllocs), entrySet(openAllocs)
	if len(ca) != len(oa) {
		t.Fatalf("allocator sets differ: closed %#x vs open %#x", closedAllocs, openAllocs)
	}
	for e := range ca {
		if !oa[e] {
			t.Fatalf("closed-classified allocator %#x not in open set %#x", e, openAllocs)
		}
	}
	cf, of := entrySet(closedFrees), entrySet(openFrees)
	if len(cf) != len(of) {
		t.Fatalf("free sets differ: closed %#x vs open %#x", closedFrees, openFrees)
	}
	for e := range cf {
		if !of[e] {
			t.Fatalf("closed-classified free %#x not in open set %#x", e, openFrees)
		}
	}

	// Ground truth: the classified allocator is memPartAlloc with the
	// VxWorks pool ABI (size in a1), inferred without symbols.
	gt, ok := fw.FullImage.Lookup("memPartAlloc")
	if !ok {
		t.Fatal("memPartAlloc missing from unstripped twin")
	}
	if closed.Platform.Allocs[0].Entry != gt.Addr {
		t.Fatalf("classified allocator %#x, want memPartAlloc at %#x",
			closed.Platform.Allocs[0].Entry, gt.Addr)
	}
	if closed.Platform.Allocs[0].SizeArg != "a1" {
		t.Fatalf("inferred size arg %s, want a1", closed.Platform.Allocs[0].SizeArg)
	}
}

// TestProbeDClosedStaticRankFewerPasses asserts the point of consuming the
// static analyzer: the default schedule boots the stripped firmware strictly
// fewer times than the baseline multi-pass refinement while producing an
// identical probing Result.
func TestProbeDClosedStaticRankFewerPasses(t *testing.T) {
	fw, err := vxworks.Build("TP-Link WDR-7660", isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}

	ranked, err := Probe(fw.Image, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Probe(fw.Image, Options{NoStaticRank: true})
	if err != nil {
		t.Fatal(err)
	}

	if baseline.DryRunPasses != 3 {
		t.Fatalf("baseline schedule used %d dry-run passes, want 3", baseline.DryRunPasses)
	}
	if ranked.DryRunPasses != 1 {
		t.Fatalf("static schedule used %d dry-run passes, want 1 (summary corroborated)",
			ranked.DryRunPasses)
	}
	if ranked.DryRunPasses >= baseline.DryRunPasses {
		t.Fatalf("static schedule not cheaper: %d vs %d passes",
			ranked.DryRunPasses, baseline.DryRunPasses)
	}
	if got, want := ranked.Text(), baseline.Text(); got != want {
		t.Fatalf("schedules disagree on the probing result:\n--- static rank ---\n%s\n--- baseline ---\n%s",
			got, want)
	}
}
