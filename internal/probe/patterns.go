package probe

import "strings"

// Per-OS allocator interface knowledge used for open-source firmware. With
// source available the signatures are known, so the argument registers come
// from the table rather than from behavioural inference.
type allocPattern struct {
	name    string
	sizeArg string
	retArg  string
}

type freePattern struct {
	name    string
	ptrArg  string
	sizeArg string // "" when the interface carries no size
}

var allocPatterns = []allocPattern{
	// Embedded Linux
	{"kmalloc", "a0", "a0"},
	{"__kmalloc", "a0", "a0"},
	{"kmem_cache_alloc", "a1", "a0"},
	{"alloc_pages", "a0", "a0"},
	// FreeRTOS
	{"pvPortMalloc", "a0", "a0"},
	// LiteOS (pool-based: size is the second argument)
	{"LOS_MemAlloc", "a1", "a0"},
	// VxWorks
	{"memPartAlloc", "a1", "a0"},
	// generic libc-style
	{"malloc", "a0", "a0"},
}

var freePatterns = []freePattern{
	{"kfree", "a0", ""},
	{"kmem_cache_free", "a1", ""},
	{"__free_pages", "a0", ""},
	{"vPortFree", "a0", ""},
	{"LOS_MemFree", "a1", ""},
	{"memPartFree", "a1", ""},
	{"free", "a0", ""},
}

// heapSymbolPatterns matches the well-known heap backing-store symbols of
// the supported embedded operating systems.
var heapSymbolPatterns = []string{
	"slab_pool",   // our Embedded Linux personality
	"mem_map",     // page allocator backing store
	"ucHeap",      // FreeRTOS heap_4
	"m_aucSysMem", // LiteOS system memory pool
	"memPartPool", // VxWorks memory partition
	"heap",        // generic
}

func matchAlloc(sym string) (allocPattern, bool) {
	for _, p := range allocPatterns {
		if sym == p.name {
			return p, true
		}
	}
	return allocPattern{}, false
}

func matchFree(sym string) (freePattern, bool) {
	for _, p := range freePatterns {
		if sym == p.name {
			return p, true
		}
	}
	return freePattern{}, false
}

func matchHeapSymbol(sym string) bool {
	ls := strings.ToLower(sym)
	for _, p := range heapSymbolPatterns {
		if strings.Contains(ls, strings.ToLower(p)) {
			return true
		}
	}
	return false
}
