// Package probe implements EMBSAN's Embedded Platform Configuration Prober.
// It determines the platform details of a target firmware — instruction-set
// frontend, memory layout, allocator interception points, the ready-to-run
// point and the pre-ready allocation history — and emits them as a DSL
// platform specification plus an initial setup routine.
//
// Following the paper (§3.2), firmware falls into three categories with
// distinct strategies:
//
//  1. ModeC — open source with compile-time sanitizer instrumentation: the
//     build metadata names the annotated allocator entry points, and a dry
//     run records every dummy-library action issued before the ready point.
//  2. ModeDOpen — open source without sanitizer instrumentation: allocator
//     and heap symbols are identified from the symbol table via per-OS name
//     patterns, then confirmed by a dry run.
//  3. ModeDClosed — closed binary-only firmware: a multi-pass dry run
//     discovers call targets, traces their arguments and return values, and
//     classifies allocator-like functions behaviourally; tester hints
//     supply whatever prior knowledge the heuristics cannot recover.
package probe

import (
	"fmt"
	"sort"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// Mode selects the probing strategy.
type Mode uint8

const (
	// ModeAuto picks the strategy from the image's metadata and symbols.
	ModeAuto Mode = iota
	ModeC
	ModeDOpen
	ModeDClosed
)

func (m Mode) String() string {
	switch m {
	case ModeC:
		return "embsan-c"
	case ModeDOpen:
		return "embsan-d/open"
	case ModeDClosed:
		return "embsan-d/closed"
	}
	return "auto"
}

// Hint is tester-provided prior knowledge for closed-source probing.
type Hint struct {
	Kind    string // "alloc", "free" or "heap"
	Name    string
	Entry   uint32
	SizeArg string
	RetArg  string
	PtrArg  string
	Region  dsl.Region
}

// Options configures a probing run.
type Options struct {
	Mode         Mode
	Hints        []Hint
	DryRunBudget uint64 // instruction budget for the dry run (default 50M)

	// Machine configures the emulated machine used for dry runs. Rehosted
	// images need their synthesized bridge device attached here, or the
	// firmware never reaches its ready point. The zero value is the stock
	// platform.
	Machine emu.Config

	// NoStaticRank disables the static allocator-candidate ranking in
	// closed-source probing, falling back to the baseline multi-pass dry-run
	// schedule (discovery, trace, confirmation). Both schedules produce
	// identical Results; the baseline just boots the firmware more often.
	NoStaticRank bool
}

// Result is the Prober's output: the platform specification and the initial
// setup routine, both expressible in the DSL.
type Result struct {
	Platform *dsl.Platform
	Init     *dsl.Init
	Mode     Mode

	// DryRunPasses counts how many times the firmware was booted during
	// probing (closed-source mode only; the open modes always boot once).
	DryRunPasses int
}

// Text renders the result as DSL source.
func (r *Result) Text() string {
	return dsl.Print(&dsl.File{
		Platforms: []*dsl.Platform{r.Platform},
		Inits:     []*dsl.Init{r.Init},
	})
}

// Probe analyses the firmware image.
func Probe(img *kasm.Image, opts Options) (*Result, error) {
	if opts.DryRunBudget == 0 {
		opts.DryRunBudget = 50_000_000
	}
	mode := opts.Mode
	if mode == ModeAuto {
		switch {
		case img.Meta.Sanitize == kasm.SanEmbsanC:
			mode = ModeC
		case len(img.Symbols) > 0:
			mode = ModeDOpen
		default:
			mode = ModeDClosed
		}
	}
	var (
		res *Result
		err error
	)
	switch mode {
	case ModeC:
		res, err = probeC(img, opts)
	case ModeDOpen:
		res, err = probeDOpen(img, opts)
	case ModeDClosed:
		res, err = probeDClosed(img, opts)
	default:
		return nil, fmt.Errorf("probe: bad mode %v", mode)
	}
	if err != nil {
		return nil, err
	}
	res.Mode = mode
	if err := (&dsl.File{Platforms: []*dsl.Platform{res.Platform}}).Validate(); err != nil {
		return nil, fmt.Errorf("probe: produced invalid platform: %w", err)
	}
	return res, nil
}

// ---- shared static analysis ----

// decodeAt decodes the instruction at pc, returning ok=false outside text.
func decodeAt(img *kasm.Image, pc uint32) (isa.Inst, bool) {
	if pc < img.Base || pc+4 > img.TextEnd() {
		return isa.Inst{}, false
	}
	in, err := isa.Decode(img.Arch.Word(img.Text[pc-img.Base:]), img.Arch)
	return in, err == nil
}

// findExits scans [start, end) for return instructions (jalr zero, ra, 0).
func findExits(img *kasm.Image, start, end uint32) []uint32 {
	var exits []uint32
	for pc := start; pc < end; pc += 4 {
		if in, ok := decodeAt(img, pc); ok &&
			in.Op == isa.OpJALR && in.Rd == isa.RegZero && in.Rs1 == isa.RegRA && in.Imm == 0 {
			exits = append(exits, pc)
		}
	}
	return exits
}

// callTargets statically enumerates JAL-with-link targets — the function
// entry points reachable through direct calls.
func callTargets(img *kasm.Image) []uint32 {
	set := map[uint32]bool{}
	for pc := img.Base; pc < img.TextEnd(); pc += 4 {
		in, ok := decodeAt(img, pc)
		if !ok || in.Op != isa.OpJAL || in.Rd != isa.RegRA {
			continue
		}
		target := pc + uint32(in.Imm)*4
		if target >= img.Base && target < img.TextEnd() {
			set[target] = true
		}
	}
	out := make([]uint32, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// funcEnd estimates where the function starting at entry ends, given the
// sorted set of discovered entries (closed-source range estimation).
func funcEnd(entries []uint32, entry, textEnd uint32) uint32 {
	i := sort.Search(len(entries), func(i int) bool { return entries[i] > entry })
	if i < len(entries) {
		return entries[i]
	}
	return textEnd
}

// dryRun executes the firmware until its ready point (or the budget runs
// out) with the given recorder installed, and reports whether ready was hit.
func dryRun(img *kasm.Image, opts Options, setup func(*emu.Machine)) (*emu.Machine, bool, error) {
	m, err := emu.New(img, opts.Machine)
	if err != nil {
		return nil, false, err
	}
	stopAtReady := false
	m.ReadyHook = func(m *emu.Machine) {
		stopAtReady = true
		m.RequestStop()
	}
	if setup != nil {
		setup(m)
	}
	r := m.Run(opts.DryRunBudget)
	if r == emu.StopFault {
		return m, false, fmt.Errorf("probe: dry run faulted: %v", m.Fault())
	}
	return m, stopAtReady || m.ReadyReached, nil
}

// heapFromPointers derives a heap region estimate from observed allocator
// return values. The estimate is deliberately tight: over-approximating the
// heap poisons unrelated data and produces false positives, whereas memory
// past the estimate is simply un-sanitized until an allocation lands there
// (OnAlloc unpoisons wherever the allocator actually returns).
func heapFromPointers(ptrs []uint32, ramSize uint32) (dsl.Region, bool) {
	if len(ptrs) == 0 {
		return dsl.Region{}, false
	}
	lo, hi := ptrs[0], ptrs[0]
	for _, p := range ptrs {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	const headroom = 1024
	lo &^= 15
	hi = (hi + headroom + 15) &^ 15
	if hi > ramSize {
		hi = ramSize
	}
	return dsl.Region{Start: lo, End: hi}, true
}
