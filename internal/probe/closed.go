package probe

import (
	"fmt"
	"sort"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// probeDClosed handles category 3: closed-source binary-only firmware. Call
// targets are enumerated statically; a dry run traces every called
// function's arguments and return value; a behavioural classifier then
// identifies allocator-like and free-like functions; and tester hints fill
// in whatever the heuristics cannot recover.
//
// Two dry-run schedules exist:
//
//   - The baseline (Options.NoStaticRank) is the paper's multi-pass
//     refinement: a discovery pass finds which call targets actually run
//     before ready, a trace pass records their arguments and returns, and a
//     confirmation pass re-runs with hooks on the classified allocator's
//     entry and exits to validate the classification dynamically. Three
//     boots of the firmware.
//   - The default schedule consumes the static analyzer instead: the ranked
//     allocator candidates replace the discovery pass (hooks go on ranked
//     entries directly), and the candidate's static dataflow summary
//     replaces the confirmation pass when it corroborates the behavioural
//     verdict. One boot, with a second only if the static summary and the
//     dynamic classification disagree.
//
// Both schedules observe the same calls — hooks on never-executed entries
// record nothing — and share one deterministic classifier, so they produce
// identical Results; only Result.DryRunPasses differs.
func probeDClosed(img *kasm.Image, opts Options) (*Result, error) {
	entries := callTargets(img)
	if len(entries) == 0 {
		return nil, fmt.Errorf("probe: no call targets discovered in %q", img.Name)
	}

	passes := 0
	var an *static.Analysis
	var hookSet []uint32
	if opts.NoStaticRank {
		// ---- pass 1 (baseline): discovery — which targets run before ready?
		live, err := discoverLive(img, opts, entries)
		if err != nil {
			return nil, err
		}
		passes++
		hookSet = live
	} else {
		// Static ranking replaces the discovery pass: hook the ranked
		// candidates directly (every direct-call target has fan-in and is
		// ranked; unexecuted ones simply record nothing).
		var err error
		an, err = static.Analyze(img)
		if err != nil {
			return nil, err
		}
		ranked := map[uint32]bool{}
		for _, c := range an.RankAllocCandidates() {
			ranked[c.Entry] = true
		}
		for _, e := range entries {
			if ranked[e] {
				hookSet = append(hookSet, e)
			}
		}
	}

	// ---- trace pass: record every hooked call's arguments and return ----
	observations, err := traceCalls(img, opts, hookSet)
	if err != nil {
		return nil, err
	}
	passes++

	// ---- classification (deterministic: sorted entries, ties to the
	// lowest entry address and lowest argument index) ----
	plat := basePlatform(img)
	plat.Notes = append(plat.Notes,
		"closed-source firmware: interception points classified behaviourally")

	obsEntries := make([]uint32, 0, len(observations))
	for entry := range observations {
		obsEntries = append(obsEntries, entry)
	}
	sort.Slice(obsEntries, func(i, j int) bool { return obsEntries[i] < obsEntries[j] })

	returnedPtrs := map[uint32]uint32{} // ptr -> size (from the classified allocator)
	var allocEntry uint32
	var allPtrs []uint32

	type cand struct {
		entry   uint32
		sizeArg int
		score   int
		n       int
	}
	var best cand
	for _, entry := range obsEntries {
		oo := observations[entry]
		if len(oo) < 2 {
			continue
		}
		// Returns must look like fresh pointers: nonzero, in RAM, distinct.
		seen := map[uint32]bool{}
		ok := true
		for _, o := range oo {
			if o.ret < emu.NullGuardSize || o.ret >= emu.DefaultRAMSize || seen[o.ret] {
				ok = false
				break
			}
			seen[o.ret] = true
		}
		if !ok {
			continue
		}
		// Which argument correlates with the spacing of consecutive returns?
		for argIdx := 0; argIdx < 4; argIdx++ {
			score := 0
			for i := 0; i+1 < len(oo); i++ {
				sz := oo[i].args[argIdx]
				delta := oo[i+1].ret - oo[i].ret
				if sz > 0 && sz <= 1<<16 && delta >= sz && delta <= sz+64 {
					score++
				}
			}
			if score > best.score {
				best = cand{entry: entry, sizeArg: argIdx, score: score, n: len(oo)}
			}
		}
	}
	if best.score > 0 && best.score*2 >= best.n-1 {
		allocEntry = best.entry
		end := funcEnd(entries, allocEntry, img.TextEnd())
		exits := findExits(img, allocEntry, end)

		// Validate the classification: the baseline re-runs the firmware with
		// hooks on the allocator's entry and exits; the static path accepts
		// the static dataflow summary as corroboration when it agrees, and
		// only falls back to the dynamic pass when it does not.
		confirmed := false
		if !opts.NoStaticRank && staticCorroborates(an, allocEntry) {
			confirmed = true
		}
		if !confirmed {
			ok, err := confirmAlloc(img, opts, allocEntry, exits, observations[allocEntry])
			if err != nil {
				return nil, err
			}
			passes++
			confirmed = ok
		}
		if confirmed {
			sizeReg := isa.RegName(uint8(isa.RegA0 + best.sizeArg))
			plat.Allocs = append(plat.Allocs, dsl.AllocFn{
				Name:    fmt.Sprintf("fn_%#x", allocEntry),
				Entry:   allocEntry,
				Exits:   exits,
				SizeArg: sizeReg,
				RetArg:  "a0",
			})
			plat.Suppress = append(plat.Suppress, dsl.Region{Start: allocEntry, End: end})
			for _, o := range observations[allocEntry] {
				returnedPtrs[o.ret] = o.args[best.sizeArg]
				allPtrs = append(allPtrs, o.ret)
			}
			plat.Notes = append(plat.Notes, fmt.Sprintf(
				"fn_%#x classified as allocator (size in %s, %d/%d observations consistent)",
				allocEntry, sizeReg, best.score, best.n-1))
		} else {
			allocEntry = 0
		}
	}

	// Free-like: a function taking a previously returned pointer.
	freed := map[uint32]bool{}
	for _, entry := range obsEntries {
		oo := observations[entry]
		if entry == allocEntry || len(oo) == 0 {
			continue
		}
		for argIdx := 0; argIdx < 4; argIdx++ {
			hits := 0
			for _, o := range oo {
				if _, isPtr := returnedPtrs[o.args[argIdx]]; isPtr {
					hits++
				}
			}
			if hits == len(oo) && hits > 0 {
				end := funcEnd(entries, entry, img.TextEnd())
				plat.Frees = append(plat.Frees, dsl.FreeFn{
					Name:   fmt.Sprintf("fn_%#x", entry),
					Entry:  entry,
					PtrArg: isa.RegName(uint8(isa.RegA0 + argIdx)),
				})
				plat.Suppress = append(plat.Suppress, dsl.Region{Start: entry, End: end})
				for _, o := range oo {
					freed[o.args[argIdx]] = true
				}
				break
			}
		}
	}

	if est, ok := heapFromPointers(allPtrs, emu.DefaultRAMSize); ok {
		plat.Heaps = append(plat.Heaps, est)
	}

	// ---- tester hints (manual intervention) ----
	for _, h := range opts.Hints {
		switch h.Kind {
		case "alloc":
			a := dsl.AllocFn{Name: h.Name, Entry: h.Entry, SizeArg: h.SizeArg, RetArg: h.RetArg}
			if a.RetArg == "" {
				a.RetArg = "a0"
			}
			if a.SizeArg == "" {
				a.SizeArg = "a0"
			}
			end := funcEnd(entries, h.Entry, img.TextEnd())
			a.Exits = findExits(img, h.Entry, end)
			replaced := false
			for i := range plat.Allocs {
				if plat.Allocs[i].Entry == h.Entry {
					plat.Allocs[i] = a
					replaced = true
				}
			}
			if !replaced {
				plat.Allocs = append(plat.Allocs, a)
				plat.Suppress = append(plat.Suppress, dsl.Region{Start: h.Entry, End: end})
			}
			plat.Notes = append(plat.Notes, fmt.Sprintf("alloc %q provided by tester hint", h.Name))
		case "free":
			f := dsl.FreeFn{Name: h.Name, Entry: h.Entry, PtrArg: h.PtrArg}
			if f.PtrArg == "" {
				f.PtrArg = "a0"
			}
			plat.Frees = append(plat.Frees, f)
			end := funcEnd(entries, h.Entry, img.TextEnd())
			plat.Suppress = append(plat.Suppress, dsl.Region{Start: h.Entry, End: end})
			plat.Notes = append(plat.Notes, fmt.Sprintf("free %q provided by tester hint", h.Name))
		case "heap":
			plat.Heaps = append(plat.Heaps, h.Region)
			plat.Notes = append(plat.Notes, "heap region provided by tester hint")
		}
	}

	if len(plat.Allocs) == 0 {
		plat.Notes = append(plat.Notes,
			"no allocator classified; provide an alloc hint to enable heap sanitizing")
	}

	// ---- initial setup routine ----
	init := &dsl.Init{Platform: plat.Name, Ops: []dsl.InitOp{{Kind: dsl.InitShadow}}}
	for _, h := range plat.Heaps {
		init.Ops = append(init.Ops, dsl.InitOp{
			Kind: dsl.InitPoison, Addr: h.Start, Size: h.Size(), Code: "heap_uninit",
		})
	}
	if allocEntry != 0 {
		for _, o := range observations[allocEntry] {
			if !freed[o.ret] {
				init.Ops = append(init.Ops, dsl.InitOp{
					Kind: dsl.InitAlloc, Addr: o.ret, Size: o.args[best.sizeArg],
				})
			}
		}
	}
	return &Result{Platform: plat, Init: init, DryRunPasses: passes}, nil
}

// obs is one traced invocation of a hooked entry.
type obs struct {
	args [4]uint32
	ret  uint32
	seq  int
}

// discoverLive is the baseline's first dry-run pass: cheap counting hooks on
// every static call target, returning the subset that executes before ready.
func discoverLive(img *kasm.Image, opts Options, entries []uint32) ([]uint32, error) {
	counts := map[uint32]int{}
	_, ready, err := dryRun(img, opts, func(m *emu.Machine) {
		for _, e := range entries {
			entry := e
			m.HookPC(entry, func(m *emu.Machine, h *emu.Hart) {
				counts[entry]++
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, fmt.Errorf("probe: %q never reached its ready point", img.Name)
	}
	var live []uint32
	for _, e := range entries {
		if counts[e] > 0 {
			live = append(live, e)
		}
	}
	return live, nil
}

// traceCalls dry-runs the firmware with entry hooks on hookSet, pairing
// each invocation with its return via a lazily installed return-site hook,
// and records arguments and return value per entry. Entries that never
// execute contribute nothing, so schedules hooking supersets of the live
// set observe identical call histories.
func traceCalls(img *kasm.Image, opts Options, hookSet []uint32) (map[uint32][]obs, error) {
	type frame struct {
		entry uint32
		args  [4]uint32
		ra    uint32
	}
	observations := map[uint32][]obs{}
	stacks := map[int][]frame{}
	seq := 0
	hookedRets := map[uint32]bool{}

	_, ready, err := dryRun(img, opts, func(m *emu.Machine) {
		retHook := func(m *emu.Machine, h *emu.Hart) {
			st := stacks[h.ID]
			pc := h.PC
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].ra == pc {
					f := st[i]
					stacks[h.ID] = append(st[:i], st[i+1:]...)
					seq++
					observations[f.entry] = append(observations[f.entry], obs{
						args: f.args, ret: h.Regs[isa.RegA0], seq: seq,
					})
					break
				}
			}
		}
		for _, e := range hookSet {
			entry := e
			m.HookPC(entry, func(m *emu.Machine, h *emu.Hart) {
				ra := h.Regs[isa.RegRA]
				stacks[h.ID] = append(stacks[h.ID], frame{
					entry: entry,
					args:  [4]uint32{h.Regs[isa.RegA0], h.Regs[isa.RegA1], h.Regs[isa.RegA2], h.Regs[isa.RegA3]},
					ra:    ra,
				})
				if !hookedRets[ra] {
					hookedRets[ra] = true
					m.HookPC(ra, retHook)
				}
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, fmt.Errorf("probe: %q never reached its ready point", img.Name)
	}
	for _, oo := range observations {
		sort.Slice(oo, func(i, j int) bool { return oo[i].seq < oo[j].seq })
	}
	return observations, nil
}

// staticCorroborates reports whether the static dataflow summary agrees
// that entry is allocator-shaped (pointer-returning with a size-like
// argument), which lets the static schedule skip the dynamic confirmation
// pass.
func staticCorroborates(an *static.Analysis, entry uint32) bool {
	f, ok := an.FuncAt(entry)
	if !ok {
		return false
	}
	if len(f.Exits) == 0 {
		return false
	}
	return an.Summarize(f).AllocShaped()
}

// confirmAlloc is the baseline's third dry-run pass: re-run with hooks on
// the classified allocator's entry and exits and check that every traced
// return value is seen leaving through a recovered exit.
func confirmAlloc(img *kasm.Image, opts Options, entry uint32, exits []uint32, traced []obs) (bool, error) {
	hits := 0
	rets := map[uint32]bool{}
	_, ready, err := dryRun(img, opts, func(m *emu.Machine) {
		m.HookPC(entry, func(m *emu.Machine, h *emu.Hart) {
			hits++
		})
		for _, x := range exits {
			m.HookPC(x, func(m *emu.Machine, h *emu.Hart) {
				rets[h.Regs[isa.RegA0]] = true
			})
		}
	})
	if err != nil {
		return false, err
	}
	if !ready {
		return false, fmt.Errorf("probe: %q never reached its ready point", img.Name)
	}
	if hits < len(traced) {
		return false, nil
	}
	for _, o := range traced {
		if !rets[o.ret] {
			return false, nil
		}
	}
	return true, nil
}
