package probe

import (
	"fmt"
	"sort"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// probeC handles category 1: open-source firmware built with compile-time
// sanitizer instrumentation against the trapping dummy sanitizer library.
// The build metadata names the annotated allocator functions; the dry run
// records every dummy-library action issued before the ready point and
// compiles them into the initial setup routine.
func probeC(img *kasm.Image, opts Options) (*Result, error) {
	if img.Meta.Sanitize != kasm.SanEmbsanC {
		return nil, fmt.Errorf("probe: image %q is not an EMBSAN-C build", img.Name)
	}
	plat := basePlatform(img)
	addAnnotatedFunctions(img, plat)
	addHeapSymbols(img, plat)

	// Dry run: intercept and record all pre-ready dummy-library actions.
	type liveAlloc struct{ addr, size uint32 }
	var order []uint32
	live := map[uint32]liveAlloc{}
	var poisons []dsl.InitOp

	_, ready, err := dryRun(img, opts, func(m *emu.Machine) {
		m.HandleHypercall(isa.HcallSanAlloc, func(m *emu.Machine, h *emu.Hart) {
			a := liveAlloc{h.Regs[isa.RegA0], h.Regs[isa.RegA1]}
			if _, seen := live[a.addr]; !seen {
				order = append(order, a.addr)
			}
			live[a.addr] = a
		})
		m.HandleHypercall(isa.HcallSanFree, func(m *emu.Machine, h *emu.Hart) {
			delete(live, h.Regs[isa.RegA0])
		})
		m.HandleHypercall(isa.HcallSanPoison, func(m *emu.Machine, h *emu.Hart) {
			poisons = append(poisons, dsl.InitOp{
				Kind: dsl.InitPoison,
				Addr: h.Regs[isa.RegA0],
				Size: h.Regs[isa.RegA1],
			})
		})
	})
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, fmt.Errorf("probe: %q never reached its ready point", img.Name)
	}

	init := &dsl.Init{Platform: plat.Name, Ops: []dsl.InitOp{{Kind: dsl.InitShadow}}}
	init.Ops = append(init.Ops, poisons...)
	for _, addr := range order {
		if a, ok := live[addr]; ok {
			init.Ops = append(init.Ops, dsl.InitOp{Kind: dsl.InitAlloc, Addr: a.addr, Size: a.size})
		}
	}
	return &Result{Platform: plat, Init: init, DryRunPasses: 1}, nil
}

// probeDOpen handles category 2: open-source firmware without sanitizer
// instrumentation. Allocator and heap symbols are found via the per-OS name
// patterns, then confirmed by a dry run that also records the pre-ready
// allocation history.
func probeDOpen(img *kasm.Image, opts Options) (*Result, error) {
	if len(img.Symbols) == 0 {
		return nil, fmt.Errorf("probe: image %q has no symbols; use closed-source probing", img.Name)
	}
	plat := basePlatform(img)
	addAnnotatedFunctions(img, plat)
	addHeapSymbols(img, plat)
	if len(plat.Allocs) == 0 {
		plat.Notes = append(plat.Notes,
			"no allocator matched the known interface patterns; manual intervention required")
	}

	// Dry run: hook the matched allocators, confirm their behaviour and
	// record the pre-ready allocation history.
	type pend struct{ size uint32 }
	type liveAlloc struct{ addr, size uint32 }
	pending := map[int][]pend{} // hart -> stack (per alloc fn is overkill here)
	var order []uint32
	live := map[uint32]liveAlloc{}
	var ptrs []uint32

	_, ready, err := dryRun(img, opts, func(m *emu.Machine) {
		for i := range plat.Allocs {
			a := plat.Allocs[i]
			sizeReg, _ := isa.RegByName(a.SizeArg)
			retReg, _ := isa.RegByName(a.RetArg)
			m.HookPC(a.Entry, func(m *emu.Machine, h *emu.Hart) {
				pending[h.ID] = append(pending[h.ID], pend{h.Regs[sizeReg]})
			})
			for _, exit := range a.Exits {
				m.HookPC(exit, func(m *emu.Machine, h *emu.Hart) {
					st := pending[h.ID]
					if len(st) == 0 {
						return
					}
					p := st[len(st)-1]
					pending[h.ID] = st[:len(st)-1]
					ptr := h.Regs[retReg]
					if ptr == 0 {
						return
					}
					ptrs = append(ptrs, ptr)
					if _, seen := live[ptr]; !seen {
						order = append(order, ptr)
					}
					live[ptr] = liveAlloc{ptr, p.size}
				})
			}
		}
		for i := range plat.Frees {
			f := plat.Frees[i]
			ptrReg, _ := isa.RegByName(f.PtrArg)
			m.HookPC(f.Entry, func(m *emu.Machine, h *emu.Hart) {
				delete(live, h.Regs[ptrReg])
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, fmt.Errorf("probe: %q never reached its ready point", img.Name)
	}

	// Confirm the heap bounds against observed behaviour; extend if the
	// allocator handed out pointers outside the symbol-derived region.
	if est, ok := heapFromPointers(ptrs, emu.DefaultRAMSize); ok {
		covered := false
		for _, h := range plat.Heaps {
			if h.Contains(est.Start) && h.Contains(est.End-1) {
				covered = true
			}
		}
		if !covered && len(plat.Heaps) == 0 {
			plat.Heaps = append(plat.Heaps, est)
			plat.Notes = append(plat.Notes, "heap bounds estimated from dry-run observations")
		}
	}

	init := &dsl.Init{Platform: plat.Name, Ops: []dsl.InitOp{{Kind: dsl.InitShadow}}}
	for _, h := range plat.Heaps {
		init.Ops = append(init.Ops, dsl.InitOp{
			Kind: dsl.InitPoison, Addr: h.Start, Size: h.Size(), Code: "heap_uninit",
		})
	}
	for _, addr := range order {
		if a, ok := live[addr]; ok {
			init.Ops = append(init.Ops, dsl.InitOp{Kind: dsl.InitAlloc, Addr: a.addr, Size: a.size})
		}
	}
	return &Result{Platform: plat, Init: init, DryRunPasses: 1}, nil
}

// ---- shared symbol-driven construction ----

func basePlatform(img *kasm.Image) *dsl.Platform {
	return &dsl.Platform{
		Name: img.Name,
		Arch: img.Arch.String(),
		RAM:  emu.DefaultRAMSize,
	}
}

// addAnnotatedFunctions fills allocator/free interception points from the
// symbol table (and, for EMBSAN-C builds, the metadata annotations).
func addAnnotatedFunctions(img *kasm.Image, plat *dsl.Platform) {
	annotated := map[string]bool{}
	for _, n := range img.Meta.AllocFuncs {
		annotated[n] = true
	}
	for _, n := range img.Meta.FreeFuncs {
		annotated[n] = true
	}
	var suppressFns []kasm.Symbol
	for _, s := range img.Symbols {
		if s.Kind != kasm.SymFunc {
			continue
		}
		if p, ok := static.MatchAllocName(s.Name); ok || annotated[s.Name] && isAllocName(s.Name) {
			if !ok {
				p = static.AllocSig{Name: s.Name, SizeArg: "a0", RetArg: "a0"}
			}
			plat.Allocs = append(plat.Allocs, dsl.AllocFn{
				Name:    s.Name,
				Entry:   s.Addr,
				Exits:   findExits(img, s.Addr, s.Addr+s.Size),
				SizeArg: p.SizeArg,
				RetArg:  p.RetArg,
			})
			suppressFns = append(suppressFns, s)
			continue
		}
		if p, ok := static.MatchFreeName(s.Name); ok {
			plat.Frees = append(plat.Frees, dsl.FreeFn{
				Name:    s.Name,
				Entry:   s.Addr,
				PtrArg:  p.PtrArg,
				SizeArg: p.SizeArg,
			})
			suppressFns = append(suppressFns, s)
		}
	}
	// Suppress allocator internals, including everything they call.
	plat.Suppress = append(plat.Suppress, suppressClosure(img, suppressFns)...)
}

func isAllocName(n string) bool {
	_, ok := static.MatchAllocName(n)
	return ok
}

// suppressClosure returns the code ranges of the given functions plus the
// transitive closure of their direct callees — the allocator's internal
// helpers must not have their heap-metadata accesses checked.
func suppressClosure(img *kasm.Image, roots []kasm.Symbol) []dsl.Region {
	byAddr := map[uint32]kasm.Symbol{}
	for _, s := range img.Symbols {
		if s.Kind == kasm.SymFunc {
			byAddr[s.Addr] = s
		}
	}
	seen := map[uint32]bool{}
	var out []dsl.Region
	var walk func(s kasm.Symbol, depth int)
	walk = func(s kasm.Symbol, depth int) {
		if seen[s.Addr] || depth > 4 {
			return
		}
		seen[s.Addr] = true
		out = append(out, dsl.Region{Start: s.Addr, End: s.Addr + s.Size})
		for pc := s.Addr; pc < s.Addr+s.Size; pc += 4 {
			in, ok := decodeAt(img, pc)
			if !ok || in.Op != isa.OpJAL || in.Rd != isa.RegRA {
				continue
			}
			if callee, ok := byAddr[pc+uint32(in.Imm)*4]; ok {
				walk(callee, depth+1)
			}
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func addHeapSymbols(img *kasm.Image, plat *dsl.Platform) {
	for _, s := range img.Symbols {
		if s.Kind == kasm.SymObject && static.MatchHeapSymbol(s.Name) && s.Size >= 1024 {
			plat.Heaps = append(plat.Heaps, dsl.Region{Start: s.Addr, End: s.Addr + s.Size})
		}
	}
}
