package probe

import (
	"strings"
	"testing"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

const (
	rZ  = isa.RegZero
	rSP = isa.RegSP
	rA0 = isa.RegA0
	rA1 = isa.RegA1
	rT0 = isa.RegT0
	rT1 = isa.RegT1
)

// miniOS builds a small firmware with a bump allocator, three boot-time
// allocations (one freed), a ready point, and a post-ready heap OOB.
//
// allocName/freeName/heapName pick the OS personality's symbols; sizeInA1
// selects a pool-style ABI (LOS_MemAlloc(pool, size)) to exercise argument
// inference.
func miniOS(t *testing.T, mode kasm.SanitizeMode, allocName, freeName, heapName string, sizeInA1 bool) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})
	b.GlobalRaw("boot_stack", 4096)
	b.GlobalRaw(heapName, 8192)
	b.GlobalRaw("heap_next", 4)
	b.GlobalRaw("saved", 8)

	sizeReg := uint8(rA0)
	if sizeInA1 {
		sizeReg = rA1
	}
	doAlloc := func(size int32) {
		if sizeInA1 {
			b.Li(rA0, 0x1111) // pool handle (ignored)
		}
		b.Li(sizeReg, size)
		b.Call(allocName)
	}

	b.Func("_start")
	b.La(rSP, "boot_stack")
	b.ADDI(rSP, rSP, 2044)
	b.NoSan(func() {
		b.La(rT0, "heap_next")
		b.La(rT1, heapName)
		b.SW(rT1, rT0, 0)
	})
	// Boot allocations: 24 (kept), 64 (kept), 16 (freed). The first object
	// occupies a 32-byte slot, leaving 8 poisoned slack bytes — the place a
	// redzone-less EMBSAN-D build can still catch an off-by-one.
	doAlloc(24)
	b.La(rT0, "saved")
	b.SW(rA0, rT0, 0)
	doAlloc(64)
	b.La(rT0, "saved")
	b.SW(rA0, rT0, 4)
	doAlloc(16)
	if sizeInA1 {
		b.MV(rA1, rA0)
		b.Li(rA0, 0x1111)
	}
	b.Call(freeName)
	b.Ready()
	// Post-ready bug: overflow the first boot object by one byte.
	b.La(rT0, "saved")
	b.LW(rA0, rT0, 0)
	b.Li(rT1, 0x41)
	b.SB(rT1, rA0, 24)
	b.Li(rA0, 0)
	b.HCALL(isa.HcallExit)

	// Allocator: 16-byte-aligned bump.
	b.Func(allocName)
	b.NoSan(func() {
		if sizeInA1 {
			b.MV(rA0, rA1) // size to a0; keep a1 = size for the hook
		} else {
			b.MV(rA1, rA0) // a1 = size for the hook
		}
		b.La(rT0, "heap_next")
		b.LW(rT1, rT0, 0)
		b.ADDI(rA0, rA1, 15)
		b.SRLI(rA0, rA0, 4)
		b.SLLI(rA0, rA0, 4)
		b.ADD(rA0, rA0, rT1)
		b.SW(rA0, rT0, 0)
		b.MV(rA0, rT1)
	})
	b.SanAllocHook()
	b.Ret()
	b.MarkAlloc(allocName)

	b.Func(freeName)
	b.NoSan(func() {
		if sizeInA1 {
			b.MV(rA0, rA1)
		}
	})
	b.SanFreeHook()
	b.Ret()
	b.MarkFree(freeName)

	img, err := b.Link("mini-" + allocName)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func TestProbeDOpenLinuxStyle(t *testing.T) {
	img := miniOS(t, kasm.SanNone, "kmalloc", "kfree", "slab_pool", false)
	res, err := Probe(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeDOpen {
		t.Errorf("mode = %v", res.Mode)
	}
	p := res.Platform
	if len(p.Allocs) != 1 || p.Allocs[0].Name != "kmalloc" || p.Allocs[0].SizeArg != "a0" {
		t.Fatalf("allocs = %+v", p.Allocs)
	}
	km, _ := img.Lookup("kmalloc")
	if p.Allocs[0].Entry != km.Addr || len(p.Allocs[0].Exits) == 0 {
		t.Errorf("alloc entry/exits: %+v (want entry %#x)", p.Allocs[0], km.Addr)
	}
	if len(p.Frees) != 1 || p.Frees[0].Name != "kfree" {
		t.Errorf("frees = %+v", p.Frees)
	}
	heap, _ := img.Lookup("slab_pool")
	if len(p.Heaps) != 1 || p.Heaps[0].Start != heap.Addr {
		t.Errorf("heaps = %+v, want start %#x", p.Heaps, heap.Addr)
	}
	if len(p.Suppress) < 2 {
		t.Errorf("suppress = %+v", p.Suppress)
	}
	// Init: shadow + heap poison + the two live boot allocations.
	var allocs int
	for _, op := range res.Init.Ops {
		if op.Kind == dsl.InitAlloc {
			allocs++
		}
	}
	if allocs != 2 {
		t.Errorf("init records %d live allocs, want 2 (one was freed)", allocs)
	}
	// The result must round-trip through the DSL.
	if _, err := dsl.Parse(res.Text()); err != nil {
		t.Errorf("probe output does not parse: %v\n%s", err, res.Text())
	}
}

func TestProbeDOpenLiteOSStyle(t *testing.T) {
	img := miniOS(t, kasm.SanNone, "LOS_MemAlloc", "LOS_MemFree", "m_aucSysMem0", true)
	res, err := Probe(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Platform.Allocs[0].SizeArg != "a1" {
		t.Errorf("LiteOS size arg = %s, want a1 (pool-based ABI)", res.Platform.Allocs[0].SizeArg)
	}
}

func TestProbeCRecordsDummyLibraryActions(t *testing.T) {
	img := miniOS(t, kasm.SanEmbsanC, "kmalloc", "kfree", "slab_pool", false)
	res, err := Probe(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeC {
		t.Errorf("mode = %v", res.Mode)
	}
	var allocs []dsl.InitOp
	for _, op := range res.Init.Ops {
		if op.Kind == dsl.InitAlloc {
			allocs = append(allocs, op)
		}
	}
	if len(allocs) != 2 {
		t.Fatalf("recorded allocs = %+v, want 2 live", allocs)
	}
	if allocs[0].Size != 24 || allocs[1].Size != 64 {
		t.Errorf("recorded sizes = %d, %d", allocs[0].Size, allocs[1].Size)
	}
}

func TestProbeDClosedClassifiesAllocator(t *testing.T) {
	img := miniOS(t, kasm.SanNone, "kmalloc", "kfree", "slab_pool", false).Strip()
	res, err := Probe(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeDClosed {
		t.Errorf("mode = %v", res.Mode)
	}
	p := res.Platform
	if len(p.Allocs) != 1 {
		t.Fatalf("allocs = %+v\nnotes: %v", p.Allocs, p.Notes)
	}
	// The classifier does not know names, but it must find the right entry.
	full := miniOS(t, kasm.SanNone, "kmalloc", "kfree", "slab_pool", false)
	km, _ := full.Lookup("kmalloc")
	if p.Allocs[0].Entry != km.Addr {
		t.Errorf("classified entry %#x, want %#x", p.Allocs[0].Entry, km.Addr)
	}
	if p.Allocs[0].SizeArg != "a0" {
		t.Errorf("inferred size arg = %s", p.Allocs[0].SizeArg)
	}
	if len(p.Frees) != 1 {
		t.Errorf("frees = %+v", p.Frees)
	}
	if len(p.Heaps) != 1 {
		t.Fatalf("heaps = %+v", p.Heaps)
	}
	heap, _ := full.Lookup("slab_pool")
	if !p.Heaps[0].Contains(heap.Addr) {
		t.Errorf("heap estimate %+v misses the real heap at %#x", p.Heaps[0], heap.Addr)
	}
}

func TestProbeDClosedPoolABIInference(t *testing.T) {
	// Pool-style allocator: the size is in a1; behavioural correlation must
	// figure that out without symbols.
	img := miniOS(t, kasm.SanNone, "LOS_MemAlloc", "LOS_MemFree", "m_aucSysMem0", true).Strip()
	res, err := Probe(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platform.Allocs) != 1 || res.Platform.Allocs[0].SizeArg != "a1" {
		t.Fatalf("inferred allocs = %+v\nnotes: %v", res.Platform.Allocs, res.Platform.Notes)
	}
}

func TestProbeDClosedHints(t *testing.T) {
	img := miniOS(t, kasm.SanNone, "kmalloc", "kfree", "slab_pool", false)
	km, _ := img.Lookup("kmalloc")
	stripped := img.Strip()
	res, err := Probe(stripped, Options{
		Mode: ModeDClosed,
		Hints: []Hint{
			{Kind: "alloc", Name: "vendor_alloc", Entry: km.Addr, SizeArg: "a0", RetArg: "a0"},
			{Kind: "heap", Region: dsl.Region{Start: 0x8000, End: 0x10000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Platform.Allocs {
		if a.Name == "vendor_alloc" && a.Entry == km.Addr {
			found = true
		}
	}
	if !found {
		t.Errorf("hint-provided alloc missing: %+v", res.Platform.Allocs)
	}
	noteText := strings.Join(res.Platform.Notes, " | ")
	if !strings.Contains(noteText, "tester hint") {
		t.Errorf("hints not annotated: %s", noteText)
	}
}

// TestProbeToSanitizerPipeline is the full EMBSAN-D pre-testing flow: probe
// an uninstrumented image, feed the resulting DSL to the sanitizer runtime,
// and verify the post-ready heap OOB is caught with the pre-ready boot
// allocations intact.
func TestProbeToSanitizerPipeline(t *testing.T) {
	for _, closed := range []bool{false, true} {
		img := miniOS(t, kasm.SanNone, "kmalloc", "kfree", "slab_pool", false)
		target := img
		if closed {
			target = img.Strip()
		}
		res, err := Probe(target, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip the artefacts through DSL text, as the real pipeline does.
		file, err := dsl.Parse(res.Text())
		if err != nil {
			t.Fatalf("closed=%v: %v", closed, err)
		}
		spec, err := dsl.Parse(`
sanitizer kasan {
  intercept load(addr: ptr, size: u32) -> check;
  intercept store(addr: ptr, size: u32) -> check;
  intercept func kmalloc(size: u32) ret ptr -> alloc;
  intercept func kfree(ptr: ptr) -> free;
}`)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(target, emu.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := san.Attach(m, san.Options{
			Spec:     spec.Sanitizers[0],
			Platform: file.Platforms[0],
			Init:     file.Inits[0],
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := m.Run(10_000_000); r != emu.StopExit {
			t.Fatalf("closed=%v: stop=%v fault=%v", closed, r, m.Fault())
		}
		reps := rt.Reports()
		if len(reps) == 0 {
			t.Fatalf("closed=%v: post-ready OOB not detected", closed)
		}
		if reps[0].Bug != san.BugOOB {
			t.Errorf("closed=%v: bug = %v", closed, reps[0].Bug)
		}
		if closed && !strings.HasPrefix(reps[0].Location, "0x") {
			t.Errorf("closed image must report raw addresses, got %q", reps[0].Location)
		}
		if !closed && !strings.HasPrefix(reps[0].Location, "_start") {
			t.Errorf("open image must symbolize, got %q", reps[0].Location)
		}
	}
}
