// Package distill implements EMBSAN's Sanitizer Common Function Distiller.
// It parses the header files of a reference sanitizer implementation to
// enumerate its interception APIs, parses the source files to build the
// interfaces' call graph and identify external resources, classifies each
// API's operational semantics, and emits the result as a DSL sanitizer
// specification. Multiple specifications merge under the union rules of the
// paper (§3.1), implemented in the dsl package.
package distill

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"embsan/internal/dsl"
)

// Prototype is one C function prototype from a header file.
type Prototype struct {
	Ret    string
	Name   string
	Params []Param
}

// Param is one C parameter.
type Param struct {
	Type string
	Name string
}

// CallGraph maps function name to the set of functions it calls.
type CallGraph map[string]map[string]bool

// Reaches reports whether from transitively calls to.
func (g CallGraph) Reaches(from, to string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(f string) bool {
		if f == to {
			return true
		}
		if seen[f] {
			return false
		}
		seen[f] = true
		for callee := range g[f] {
			if walk(callee) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

var (
	protoRe  = regexp.MustCompile(`(?m)^\s*([A-Za-z_][\w\s\*]*?)\s*\*?\s*([A-Za-z_]\w*)\s*\(([^)]*)\)\s*;`)
	defineRe = regexp.MustCompile(`(?m)^\s*#define\s+([A-Za-z_]\w*)\s+(\d+)`)
	fnDefRe  = regexp.MustCompile(`(?m)^\s*(?:static\s+)?[A-Za-z_][\w\s\*]*?\*?\s*([A-Za-z_]\w*)\s*\(([^)]*)\)\s*\{`)
	callRe   = regexp.MustCompile(`([A-Za-z_]\w*)\s*\(`)
)

// ParseHeader extracts the prototypes and numeric #defines from header text.
func ParseHeader(src string) ([]Prototype, map[string]uint32) {
	var protos []Prototype
	for _, m := range protoRe.FindAllStringSubmatch(src, -1) {
		p := Prototype{Ret: normalizeType(m[1]), Name: m[2]}
		params := strings.TrimSpace(m[3])
		if params != "" && params != "void" {
			for _, raw := range strings.Split(params, ",") {
				p.Params = append(p.Params, parseParam(raw))
			}
		}
		protos = append(protos, p)
	}
	defines := map[string]uint32{}
	for _, m := range defineRe.FindAllStringSubmatch(src, -1) {
		if v, err := strconv.ParseUint(m[2], 10, 32); err == nil {
			defines[m[1]] = uint32(v)
		}
	}
	return protos, defines
}

func parseParam(raw string) Param {
	raw = strings.TrimSpace(raw)
	// The last identifier is the name; everything before is the type.
	idx := strings.LastIndexFunc(raw, func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	})
	if idx < 0 || idx == len(raw)-1 && !strings.ContainsAny(raw, " *") {
		return Param{Type: normalizeType(raw), Name: ""}
	}
	return Param{Type: normalizeType(raw[:idx+1]), Name: raw[idx+1:]}
}

// normalizeType maps C type spellings to the DSL type vocabulary.
func normalizeType(t string) string {
	t = strings.TrimSpace(t)
	t = strings.ReplaceAll(t, "const", "")
	t = strings.ReplaceAll(t, "volatile", "")
	t = strings.ReplaceAll(t, "struct", "")
	t = strings.Join(strings.Fields(t), " ")
	switch {
	case strings.Contains(t, "*"), strings.Contains(t, "long"),
		t == "uintptr_t", t == "void *":
		return "ptr"
	case t == "size_t", t == "unsigned int", t == "u32", t == "gfp_t", t == "int":
		return "u32"
	case t == "u16", t == "unsigned short":
		return "u16"
	case t == "u8", t == "bool", t == "char", t == "unsigned char":
		return "u8"
	case t == "void":
		return ""
	}
	return "u32"
}

// ParseCallGraph extracts the function call graph from source text.
func ParseCallGraph(src string) CallGraph {
	g := CallGraph{}
	defs := fnDefRe.FindAllStringSubmatchIndex(src, -1)
	for i, d := range defs {
		name := src[d[2]:d[3]]
		bodyStart := d[1]
		bodyEnd := len(src)
		if i+1 < len(defs) {
			bodyEnd = defs[i+1][0]
		}
		body := src[bodyStart:bodyEnd]
		calls := map[string]bool{}
		for _, c := range callRe.FindAllStringSubmatch(body, -1) {
			if c[1] != name && !isKeyword(c[1]) {
				calls[c[1]] = true
			}
		}
		g[name] = calls
	}
	return g
}

func isKeyword(s string) bool {
	switch s {
	case "if", "while", "for", "switch", "return", "sizeof":
		return true
	}
	return false
}

var (
	asanSizedRe = regexp.MustCompile(`^__(?:asan|tsan)_(load|store|read|write)(\d+)`)
)

// Distill converts a reference sanitizer implementation into its DSL
// specification.
func Distill(name, header, source string) (*dsl.Sanitizer, error) {
	protos, defines := ParseHeader(header)
	if len(protos) == 0 {
		return nil, fmt.Errorf("distill: no interception APIs found in %s header", name)
	}
	graph := ParseCallGraph(source)

	s := &dsl.Sanitizer{Name: name}
	add := func(it *dsl.Intercept) {
		for _, have := range s.Intercepts {
			if have.Key() == it.Key() {
				return
			}
		}
		s.Intercepts = append(s.Intercepts, it)
	}
	memArgs := func() []dsl.Arg {
		return []dsl.Arg{{Name: "addr", Type: "ptr"}, {Name: "size", Type: "u32"}}
	}

	reachesReport := func(api string) bool {
		return graph.Reaches(api, name+"_report") || graph.Reaches(api, "kasan_report") ||
			graph.Reaches(api, "kcsan_report")
	}

	for _, p := range protos {
		switch {
		case asanSizedRe.MatchString(p.Name):
			m := asanSizedRe.FindStringSubmatch(p.Name)
			kind := dsl.InterceptLoad
			if m[1] == "store" || m[1] == "write" {
				kind = dsl.InterceptStore
			}
			if !reachesReport(p.Name) {
				continue
			}
			add(&dsl.Intercept{Kind: kind, Args: memArgs(), Action: dsl.ActionCheck,
				Sources: []string{name}})

		case strings.HasSuffix(p.Name, "_check_read"):
			if reachesReport(p.Name) {
				add(&dsl.Intercept{Kind: dsl.InterceptLoad, Args: memArgs(),
					Action: dsl.ActionCheck, Sources: []string{name}})
			}

		case strings.HasSuffix(p.Name, "_check_write"):
			if reachesReport(p.Name) {
				add(&dsl.Intercept{Kind: dsl.InterceptStore, Args: memArgs(),
					Action: dsl.ActionCheck, Sources: []string{name}})
			}

		case strings.HasSuffix(p.Name, "_check_access"):
			// A combined access checker covers loads, stores and atomics;
			// the type argument discriminates at run time.
			if !reachesReport(p.Name) {
				continue
			}
			args := append(memArgs(), dsl.Arg{Name: "type", Type: "u32"})
			add(&dsl.Intercept{Kind: dsl.InterceptLoad, Args: args, Action: dsl.ActionCheck, Sources: []string{name}})
			add(&dsl.Intercept{Kind: dsl.InterceptStore, Args: args, Action: dsl.ActionCheck, Sources: []string{name}})
			add(&dsl.Intercept{Kind: dsl.InterceptAtomic, Args: args, Action: dsl.ActionCheck, Sources: []string{name}})

		case strings.Contains(p.Name, "atomic") && strings.Contains(p.Name, "load"),
			strings.Contains(p.Name, "atomic") && strings.Contains(p.Name, "store"):
			add(&dsl.Intercept{Kind: dsl.InterceptAtomic, Args: memArgs(),
				Action: dsl.ActionCheck, Sources: []string{name}})

		case strings.Contains(p.Name, "kmalloc") || strings.Contains(p.Name, "alloc"):
			fn := hookTarget(p.Name)
			add(&dsl.Intercept{
				Kind: dsl.InterceptFunc, Func: fn,
				Args:   []dsl.Arg{{Name: "size", Type: "u32"}},
				Ret:    "ptr",
				Action: dsl.ActionAlloc, Sources: []string{name},
			})

		case strings.Contains(p.Name, "kfree") || strings.Contains(p.Name, "free"):
			fn := hookTarget(p.Name)
			add(&dsl.Intercept{
				Kind: dsl.InterceptFunc, Func: fn,
				Args:   []dsl.Arg{{Name: "ptr", Type: "ptr"}},
				Action: dsl.ActionFree, Sources: []string{name},
			})
		}
	}

	// External resources from the #define constants.
	if g, ok := defines["KASAN_SHADOW_GRANULE"]; ok {
		s.Resources = append(s.Resources, dsl.Resource{
			Name: "shadow", Params: map[string]uint32{"granularity": g},
		})
	}
	if q, ok := defines["KASAN_QUARANTINE_SLOTS"]; ok {
		s.Resources = append(s.Resources, dsl.Resource{
			Name: "quarantine", Params: map[string]uint32{"slots": q},
		})
	}
	if w, ok := defines["KCSAN_NUM_WATCHPOINTS"]; ok {
		s.Resources = append(s.Resources, dsl.Resource{
			Name: "watchpoints", Params: map[string]uint32{"slots": w},
		})
	}
	if d, ok := defines["KCSAN_UDELAY_TASK"]; ok {
		s.Resources = append(s.Resources, dsl.Resource{
			Name: "delay", Params: map[string]uint32{"task": d},
		})
	}

	if len(s.Intercepts) == 0 {
		return nil, fmt.Errorf("distill: %s: no interception points classified", name)
	}
	return s, nil
}

// hookTarget maps a sanitizer hook name to the kernel function it
// intercepts: kasan_kmalloc hooks kmalloc, kasan_kfree hooks kfree.
func hookTarget(hook string) string {
	for _, prefix := range []string{"__kasan_", "kasan_", "__kcsan_", "kcsan_", "__"} {
		if strings.HasPrefix(hook, prefix) {
			return strings.TrimPrefix(hook, prefix)
		}
	}
	return hook
}

// DistillReference distills one of the bundled reference sanitizers.
func DistillReference(name string) (*dsl.Sanitizer, error) {
	h, s, ok := Reference(name)
	if !ok {
		return nil, fmt.Errorf("distill: unknown reference sanitizer %q", name)
	}
	return Distill(name, h, s)
}

// DistillMerged distills several reference sanitizers and merges them into a
// single specification under the union rules.
func DistillMerged(names ...string) (*dsl.Sanitizer, error) {
	var specs []*dsl.Sanitizer
	for _, n := range names {
		s, err := DistillReference(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	if len(specs) == 1 {
		return specs[0], nil
	}
	return dsl.MergeSanitizers(strings.Join(names, "+"), specs), nil
}
