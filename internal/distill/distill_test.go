package distill

import (
	"strings"
	"testing"

	"embsan/internal/dsl"
)

func TestParseHeaderPrototypes(t *testing.T) {
	protos, defines := ParseHeader(ReferenceKASANHeader)
	byName := map[string]Prototype{}
	for _, p := range protos {
		byName[p.Name] = p
	}
	if _, ok := byName["__asan_load4"]; !ok {
		t.Fatalf("missing __asan_load4 in %v", protos)
	}
	ck := byName["__kasan_check_read"]
	if len(ck.Params) != 2 || ck.Params[0].Type != "ptr" || ck.Params[1].Type != "u32" {
		t.Errorf("__kasan_check_read params = %+v", ck.Params)
	}
	km := byName["kasan_kmalloc"]
	if len(km.Params) != 3 || km.Params[1].Name != "size" {
		t.Errorf("kasan_kmalloc params = %+v", km.Params)
	}
	if defines["KASAN_SHADOW_GRANULE"] != 8 {
		t.Errorf("defines = %v", defines)
	}
}

func TestCallGraph(t *testing.T) {
	g := ParseCallGraph(ReferenceKASANSource)
	if !g.Reaches("__asan_load1", "kasan_report") {
		t.Error("__asan_load1 should reach kasan_report")
	}
	if !g.Reaches("__kasan_check_write", "kasan_report") {
		t.Error("__kasan_check_write should reach kasan_report")
	}
	if g.Reaches("kasan_kfree", "kasan_report") {
		t.Error("kasan_kfree should not reach kasan_report")
	}
	if !g.Reaches("kasan_kfree", "kasan_quarantine_put") {
		t.Error("kasan_kfree should reach kasan_quarantine_put")
	}
	// Self-recursion and keywords must not break traversal.
	g2 := ParseCallGraph(`void a(void) { if (x) a(); b(); } void b(void) { while (1) c(); }`)
	if !g2.Reaches("a", "c") {
		t.Error("a should reach c through b")
	}
}

func TestDistillKASAN(t *testing.T) {
	s, err := DistillReference("kasan")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]*dsl.Intercept{}
	for _, it := range s.Intercepts {
		keys[it.Key()] = it
	}
	for _, want := range []string{"load", "store", "func:kmalloc", "func:kfree"} {
		if keys[want] == nil {
			t.Errorf("missing intercept %s (have %v)", want, keysOf(keys))
		}
	}
	if keys["func:kmalloc"].Action != dsl.ActionAlloc || keys["func:kmalloc"].Ret != "ptr" {
		t.Errorf("kmalloc intercept: %+v", keys["func:kmalloc"])
	}
	if keys["func:kfree"].Action != dsl.ActionFree {
		t.Errorf("kfree intercept: %+v", keys["func:kfree"])
	}
	var shadow, quar bool
	for _, r := range s.Resources {
		if r.Name == "shadow" && r.Params["granularity"] == 8 {
			shadow = true
		}
		if r.Name == "quarantine" && r.Params["slots"] == 256 {
			quar = true
		}
	}
	if !shadow || !quar {
		t.Errorf("resources = %+v", s.Resources)
	}
	// The spec must be expressible in the DSL.
	text := dsl.Print(&dsl.File{Sanitizers: []*dsl.Sanitizer{s}})
	if _, err := dsl.Parse(text); err != nil {
		t.Errorf("distilled spec does not parse: %v\n%s", err, text)
	}
}

func TestDistillKCSAN(t *testing.T) {
	s, err := DistillReference("kcsan")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, it := range s.Intercepts {
		keys[it.Key()] = true
	}
	for _, want := range []string{"load", "store", "atomic"} {
		if !keys[want] {
			t.Errorf("missing intercept %s", want)
		}
	}
	var wp bool
	for _, r := range s.Resources {
		if r.Name == "watchpoints" && r.Params["slots"] == 4 {
			wp = true
		}
	}
	if !wp {
		t.Errorf("resources = %+v", s.Resources)
	}
}

func TestDistillMergedSpec(t *testing.T) {
	m, err := DistillMerged("kasan", "kcsan")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "kasan+kcsan" {
		t.Errorf("merged name = %q", m.Name)
	}
	var load *dsl.Intercept
	for _, it := range m.Intercepts {
		if it.Key() == "load" {
			load = it
		}
	}
	if load == nil {
		t.Fatal("no merged load intercept")
	}
	if strings.Join(load.Sources, ",") != "kasan,kcsan" {
		t.Errorf("load sources = %v", load.Sources)
	}
	// KCSAN's extra type argument must survive the union, annotated.
	var typeArg *dsl.Arg
	for i := range load.Args {
		if load.Args[i].Name == "type" {
			typeArg = &load.Args[i]
		}
	}
	if typeArg == nil || strings.Join(typeArg.Sources, ",") != "kcsan" {
		t.Errorf("type arg = %+v", typeArg)
	}
	// Resource union: shadow + quarantine + watchpoints + delay.
	if len(m.Resources) != 4 {
		t.Errorf("merged resources = %+v", m.Resources)
	}
}

func TestDistillUBSAN(t *testing.T) {
	s, err := DistillReference("ubsan")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, it := range s.Intercepts {
		keys[it.Key()] = true
	}
	for _, want := range []string{"load", "store", "atomic"} {
		if !keys[want] {
			t.Errorf("ubsan spec missing intercept %s", want)
		}
	}
	// Three-way merge: kasan + kcsan + ubsan must still be a valid spec.
	m, err := DistillMerged("kasan", "kcsan", "ubsan")
	if err != nil {
		t.Fatal(err)
	}
	text := dsl.Print(&dsl.File{Sanitizers: []*dsl.Sanitizer{m}})
	if _, err := dsl.Parse(text); err != nil {
		t.Errorf("three-way merged spec does not parse: %v\n%s", err, text)
	}
}

func TestDistillErrors(t *testing.T) {
	if _, err := DistillReference("msan"); err == nil {
		t.Error("unknown sanitizer accepted")
	}
	if _, err := Distill("x", "/* nothing */", ""); err == nil {
		t.Error("empty header accepted")
	}
}

func TestNormalizeType(t *testing.T) {
	cases := map[string]string{
		"unsigned long":         "ptr",
		"const volatile void *": "ptr",
		"size_t":                "u32",
		"unsigned int":          "u32",
		"gfp_t":                 "u32",
		"u8":                    "u8",
		"bool":                  "u8",
		"void":                  "",
	}
	for in, want := range cases {
		if got := normalizeType(in); got != want {
			t.Errorf("normalizeType(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHookTarget(t *testing.T) {
	cases := map[string]string{
		"kasan_kmalloc":  "kmalloc",
		"kasan_kfree":    "kfree",
		"__kasan_poison": "poison",
		"plain":          "plain",
	}
	for in, want := range cases {
		if got := hookTarget(in); got != want {
			t.Errorf("hookTarget(%q) = %q, want %q", in, got, want)
		}
	}
}

func keysOf(m map[string]*dsl.Intercept) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
