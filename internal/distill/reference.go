package distill

// Reference sanitizer implementations, as extracted from an OS kernel tree.
// The pre-testing probing phase feeds these header and source files to the
// Distiller, which produces the interception-API specifications in the DSL.
// They are deliberately written in kernel style: the Distiller has to cope
// with real prototype shapes, hook indirection and per-size API variants.

// ReferenceKASANHeader is the interception interface of the reference KASAN.
const ReferenceKASANHeader = `
/* kasan.h — reference Kernel Address Sanitizer interface */
#define KASAN_SHADOW_GRANULE 8
#define KASAN_QUARANTINE_SLOTS 256

void __asan_load1(unsigned long addr);
void __asan_load2(unsigned long addr);
void __asan_load4(unsigned long addr);
void __asan_store1(unsigned long addr);
void __asan_store2(unsigned long addr);
void __asan_store4(unsigned long addr);

void __kasan_check_read(const volatile void *p, unsigned int size);
void __kasan_check_write(const volatile void *p, unsigned int size);

void *kasan_kmalloc(const void *object, size_t size, gfp_t flags);
void kasan_kfree(void *object);
void kasan_poison(const void *addr, size_t size, u8 value);
void kasan_unpoison(const void *addr, size_t size);
`

// ReferenceKASANSource is the reference KASAN core, used for call-graph
// construction and logic distillation.
const ReferenceKASANSource = `
/* kasan.c — reference core */
static u8 *kasan_shadow_start;

static bool kasan_check_region(unsigned long addr, size_t size, bool write)
{
	u8 shadow = kasan_shadow_start[addr >> 3];
	if (shadow != 0)
		return kasan_slow_path(addr, size, write);
	return true;
}

static bool kasan_slow_path(unsigned long addr, size_t size, bool write)
{
	kasan_report(addr, size, write);
	return false;
}

void __asan_load1(unsigned long addr) { kasan_check_region(addr, 1, false); }
void __asan_load2(unsigned long addr) { kasan_check_region(addr, 2, false); }
void __asan_load4(unsigned long addr) { kasan_check_region(addr, 4, false); }
void __asan_store1(unsigned long addr) { kasan_check_region(addr, 1, true); }
void __asan_store2(unsigned long addr) { kasan_check_region(addr, 2, true); }
void __asan_store4(unsigned long addr) { kasan_check_region(addr, 4, true); }

void __kasan_check_read(const volatile void *p, unsigned int size)
{
	kasan_check_region((unsigned long)p, size, false);
}

void __kasan_check_write(const volatile void *p, unsigned int size)
{
	kasan_check_region((unsigned long)p, size, true);
}

void *kasan_kmalloc(const void *object, size_t size, gfp_t flags)
{
	kasan_unpoison(object, size);
	kasan_track_alloc(object, size);
	return (void *)object;
}

void kasan_kfree(void *object)
{
	kasan_poison(object, kasan_object_size(object), KASAN_FREE);
	kasan_quarantine_put(object);
}
`

// ReferenceKCSANHeader is the interception interface of the reference KCSAN.
const ReferenceKCSANHeader = `
/* kcsan.h — reference Kernel Concurrency Sanitizer interface */
#define KCSAN_NUM_WATCHPOINTS 4
#define KCSAN_UDELAY_TASK 80

void __kcsan_check_access(const volatile void *ptr, size_t size, int type);
void __tsan_read1(void *addr);
void __tsan_read2(void *addr);
void __tsan_read4(void *addr);
void __tsan_write1(void *addr);
void __tsan_write2(void *addr);
void __tsan_write4(void *addr);
void __tsan_atomic32_load(const int *ptr, int memorder);
void __tsan_atomic32_store(int *ptr, int v, int memorder);
`

// ReferenceKCSANSource is the reference KCSAN core.
const ReferenceKCSANSource = `
/* kcsan.c — reference core */
static struct kcsan_watchpoint watchpoints[KCSAN_NUM_WATCHPOINTS];

static void kcsan_setup_watchpoint(unsigned long ptr, size_t size, int type)
{
	kcsan_delay();
	if (kcsan_watch_conflict(ptr, size))
		kcsan_report(ptr, size, type);
}

void __kcsan_check_access(const volatile void *ptr, size_t size, int type)
{
	kcsan_setup_watchpoint((unsigned long)ptr, size, type);
}

void __tsan_read1(void *addr) { __kcsan_check_access(addr, 1, 0); }
void __tsan_read2(void *addr) { __kcsan_check_access(addr, 2, 0); }
void __tsan_read4(void *addr) { __kcsan_check_access(addr, 4, 0); }
void __tsan_write1(void *addr) { __kcsan_check_access(addr, 1, 1); }
void __tsan_write2(void *addr) { __kcsan_check_access(addr, 2, 1); }
void __tsan_write4(void *addr) { __kcsan_check_access(addr, 4, 1); }
void __tsan_atomic32_load(const int *ptr, int memorder) { __kcsan_check_access(ptr, 4, 2); }
void __tsan_atomic32_store(int *ptr, int v, int memorder) { __kcsan_check_access(ptr, 4, 3); }
`

// ReferenceUBSANHeader is a third sanitizer used to demonstrate the
// adaptability claim of the paper's discussion section: new sanitizer
// functionalities plug in by distilling their interface and writing the
// runtime logic — no kernel porting.
const ReferenceUBSANHeader = `
/* ubsan.h — reference undefined-behaviour (alignment) checker interface */
#define UBSAN_ALIGNMENT 1

void __ubsan_check_access(const volatile void *ptr, size_t size, int type);
`

// ReferenceUBSANSource is the reference alignment-checker core.
const ReferenceUBSANSource = `
/* ubsan.c — reference core */
static void ubsan_check_alignment(unsigned long ptr, size_t size, int type)
{
	if (ptr & (size - 1))
		ubsan_report(ptr, size, type);
}

void __ubsan_check_access(const volatile void *ptr, size_t size, int type)
{
	ubsan_check_alignment((unsigned long)ptr, size, type);
}
`

// Reference returns the reference implementation texts for a sanitizer name.
func Reference(name string) (header, source string, ok bool) {
	switch name {
	case "kasan":
		return ReferenceKASANHeader, ReferenceKASANSource, true
	case "kcsan":
		return ReferenceKCSANHeader, ReferenceKCSANSource, true
	case "ubsan":
		return ReferenceUBSANHeader, ReferenceUBSANSource, true
	}
	return "", "", false
}
