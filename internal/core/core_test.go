package core

import (
	"strings"
	"testing"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// tinyFirmware builds a minimal bootable image with a named allocator and
// one post-ready OOB triggered through the mailbox.
func tinyFirmware(t *testing.T, mode kasm.SanitizeMode) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})
	glib.AddBoot(b, glib.BootConfig{InitFn: "init", MainFn: "executor_loop"})
	glib.AddLib(b)
	b.GlobalRaw("slab_pool", 8192)
	b.GlobalRaw("next", 4)

	b.Func("init")
	b.Prologue(16)
	b.NoSan(func() {
		b.La(glib.T0, "next")
		b.La(glib.T1, "slab_pool")
		b.SW(glib.T1, glib.T0, 0)
	})
	b.La(glib.A0, "slab_pool")
	b.Li(glib.A1, 8192)
	b.SanPoisonHook(0xFC)
	b.Epilogue(16)

	b.Func("kmalloc")
	b.NoSan(func() {
		b.MV(glib.A1, glib.A0)
		b.La(glib.T0, "next")
		b.LW(glib.T1, glib.T0, 0)
		b.ADDI(glib.A0, glib.A1, 15)
		b.SRLI(glib.A0, glib.A0, 4)
		b.SLLI(glib.A0, glib.A0, 4)
		b.ADD(glib.A0, glib.A0, glib.T1)
		b.SW(glib.A0, glib.T0, 0)
		b.MV(glib.A0, glib.T1)
	})
	b.SanAllocHook()
	b.Ret()
	b.MarkAlloc("kmalloc")

	glib.AddByteExecutor(b, "handler")
	b.Func("handler") // any input: alloc 20, write [20]
	b.Prologue(16)
	b.Li(glib.A0, 20)
	b.Call("kmalloc")
	b.Li(glib.T0, 1)
	b.SB(glib.T0, glib.A0, 20)
	b.Li(glib.A0, 0)
	b.Epilogue(16)

	img, err := b.Link("tiny-" + mode.String())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil image accepted")
	}
}

func TestBootFailsWithoutReady(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.HALT() // never signals ready
	img, err := b.Link("noready")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{Image: img, NoSanitizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(1_000_000); err == nil {
		t.Error("Boot succeeded without a ready point")
	}
}

func TestPipelineRoundTripsThroughDSL(t *testing.T) {
	img := tinyFirmware(t, kasm.SanNone)
	inst, err := New(Config{Image: img, Sanitizers: []string{"kasan"}})
	if err != nil {
		t.Fatal(err)
	}
	// The probing artefacts must be valid DSL.
	text := inst.Probed.Text()
	file, err := dsl.Parse(text)
	if err != nil {
		t.Fatalf("probe artefacts do not parse: %v\n%s", err, text)
	}
	if len(file.Platforms) != 1 || len(file.Platforms[0].Allocs) != 1 {
		t.Errorf("platform: %+v", file.Platforms)
	}
	// The merged sanitizer spec carries the distilled resources.
	foundShadow := false
	for _, r := range inst.Spec.Resources {
		if r.Name == "shadow" {
			foundShadow = true
		}
	}
	if !foundShadow {
		t.Error("distilled spec lacks the shadow resource")
	}
}

func TestExecDetectsAndIsolates(t *testing.T) {
	img := tinyFirmware(t, kasm.SanNone)
	inst, err := New(Config{Image: img, Sanitizers: []string{"kasan"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(10_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	for i := 0; i < 2; i++ {
		inst.Restore()
		res := inst.Exec([]byte{1, 2, 3}, 10_000_000)
		if !res.Crashed() || len(res.Reports) != 1 {
			t.Fatalf("run %d: crashed=%v reports=%d", i, res.Crashed(), len(res.Reports))
		}
		if !strings.HasPrefix(res.Reports[0].Location, "handler") {
			t.Errorf("location = %q", res.Reports[0].Location)
		}
	}
}

// TestTesterPreparedPlatformDSL: pre-probed DSL descriptions substitute for
// the Prober (the tester-prepared path of §3.4), including editing them —
// here the tester removes the allocator, losing heap tracking.
func TestTesterPreparedPlatformDSL(t *testing.T) {
	img := tinyFirmware(t, kasm.SanNone)
	// First, obtain descriptions the normal way.
	ref, err := New(Config{Image: img, Sanitizers: []string{"kasan"}})
	if err != nil {
		t.Fatal(err)
	}
	text := ref.Probed.Text()

	// Feed them back as tester-prepared input.
	inst, err := New(Config{Image: img, Sanitizers: []string{"kasan"}, PlatformText: text})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Probed != nil {
		t.Error("prober ran despite tester-prepared descriptions")
	}
	if err := inst.Boot(10_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	res := inst.Exec([]byte{1}, 10_000_000)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d with prepared descriptions", len(res.Reports))
	}

	// Garbage descriptions are rejected up front.
	if _, err := New(Config{Image: img, Sanitizers: []string{"kasan"}, PlatformText: "not dsl"}); err == nil {
		t.Error("invalid platform text accepted")
	}
	if _, err := New(Config{Image: img, Sanitizers: []string{"kasan"},
		PlatformText: "init { shadow_init; }"}); err == nil {
		t.Error("platform-less text accepted")
	}
}

func TestExecBudgetExpires(t *testing.T) {
	// A firmware whose executor never signals done: Exec must stop at the
	// instruction budget.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	glib.AddBoot(b, glib.BootConfig{MainFn: "spin"})
	glib.AddLib(b)
	b.Func("spin")
	b.Label("spin.l")
	b.J("spin.l")
	img, err := b.Link("spin")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{Image: img, NoSanitizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(1_000_000); err != nil {
		t.Fatal(err)
	}
	res := inst.Exec([]byte{1}, 20_000)
	if res.Done {
		t.Error("spin firmware reported done")
	}
	if res.Insts < 20_000 || res.Insts > 30_000 {
		t.Errorf("budget not respected: %d insts", res.Insts)
	}
}

func TestNoSanitizerCollectsNativeReports(t *testing.T) {
	img := tinyFirmware(t, kasm.SanNativeKASAN)
	inst, err := New(Config{Image: img, NoSanitizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Runtime != nil || inst.Probed != nil {
		t.Error("NoSanitizer attached a runtime anyway")
	}
	if err := inst.Boot(10_000_000); err != nil {
		t.Fatal(err)
	}
	res := inst.Exec([]byte{1}, 10_000_000)
	if len(res.Reports) == 0 {
		t.Fatal("native in-guest reports not collected")
	}
}

func TestEmbsanCUsesHypercallFastPath(t *testing.T) {
	img := tinyFirmware(t, kasm.SanEmbsanC)
	inst, err := New(Config{Image: img, Sanitizers: []string{"kasan"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(10_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	res := inst.Exec([]byte{9}, 10_000_000)
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	_ = emu.StopExit
}
