// Package core orchestrates EMBSAN's two-phase workflow: the pre-testing
// probing phase (distil the sanitizer specifications, probe the platform
// configuration, compile the initial state) and the testing phase (attach
// the Common Sanitizer Runtime to the emulator and run the firmware under
// fuzzing or replay).
package core

import (
	"fmt"

	"embsan/internal/distill"
	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/kasm"
	"embsan/internal/obs"
	"embsan/internal/probe"
	"embsan/internal/san"
	"embsan/internal/static"
	"embsan/internal/static/absint"
	"embsan/internal/static/races"
)

// Config describes one EMBSAN deployment on one firmware image.
type Config struct {
	Image *kasm.Image
	// Sanitizers names the reference sanitizers to distil and merge
	// (e.g. "kasan", "kcsan"). Empty means {"kasan"}.
	Sanitizers []string
	// Machine overrides the emulator configuration.
	Machine emu.Config
	// Probe overrides the probing options (hints for closed firmware, etc.).
	Probe probe.Options
	// PlatformText, when non-empty, is pre-prepared DSL source (a platform
	// block and optionally an init block) used instead of running the
	// Prober — the tester-prepared descriptions of the paper's §3.4.
	PlatformText string
	// StopOnReport stops the machine at the first sanitizer report.
	StopOnReport bool
	// Quarantine overrides the KASAN quarantine capacity.
	Quarantine int
	// KCSAN overrides the concurrency-sanitizer tuning. Zero values fall
	// back to the distilled resource parameters.
	KCSAN san.KCSANConfig
	// NoSanitizer runs the firmware bare (baseline measurement) or relies
	// on a natively-sanitized build's in-guest runtime.
	NoSanitizer bool
	// NoRaceGuidance disables the static lockset guidance of the
	// concurrency sanitizer: KCSAN samples uniformly instead of boosting
	// unprotected sites and skipping proven-safe ones. This is the
	// measurement baseline for the guided-vs-uniform benchmarks.
	NoRaceGuidance bool
	// Elide applies the static safety proofs (internal/static/absint) to
	// the deployment: EMBSAN-C images have provably-safe SANCK traps
	// replaced by pads at link time, EMBSAN-D machines skip Mem-probe
	// dispatch for proven access sites. When the sanitizer set includes
	// engines sensitive to the dispatch stream itself (kcsan's sampling,
	// ubsan's alignment checks), only device-memory proofs — which the
	// runtime ignores before any engine runs — are applied.
	Elide bool
}

// Instance is a prepared EMBSAN deployment: an emulated machine with the
// sanitizer runtime attached and the probing artefacts retained.
type Instance struct {
	Machine *emu.Machine
	Runtime *san.Runtime // nil when NoSanitizer
	Spec    *dsl.Sanitizer
	Probed  *probe.Result // nil when NoSanitizer

	img *kasm.Image
}

// New runs the pre-testing probing phase and prepares the testing phase.
func New(cfg Config) (*Instance, error) {
	if cfg.Image == nil {
		return nil, fmt.Errorf("core: no firmware image")
	}
	img := cfg.Image
	restricted := false
	for _, s := range cfg.Sanitizers {
		if s == "kcsan" || s == "ubsan" {
			restricted = true
		}
	}
	if cfg.Elide && !cfg.NoSanitizer && img.Meta.Sanitize == kasm.SanEmbsanC && !img.Stripped {
		// EMBSAN-C: rewrite provably-safe SANCK traps into pads before the
		// machine loads the text. Proof failures degrade to no elision.
		if an, err := static.Analyze(img); err == nil {
			if els := absint.Analyze(an, absint.Options{}).Elisions(restricted); len(els) > 0 {
				if elided, err := img.ElideSancks(els); err == nil {
					img = elided
				}
			}
		}
	}
	m, err := emu.New(img, cfg.Machine)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Machine: m, img: img}
	if cfg.NoSanitizer {
		return inst, nil
	}

	names := cfg.Sanitizers
	if len(names) == 0 {
		names = []string{"kasan"}
	}
	spec, err := distill.DistillMerged(names...)
	if err != nil {
		return nil, err
	}
	inst.Spec = spec

	var platformText string
	if cfg.PlatformText != "" {
		platformText = cfg.PlatformText
	} else {
		// Dry runs inside the Prober must see the same extra devices as
		// the testing machine — a rehosted image never boots without its
		// synthesized bridge.
		if cfg.Probe.Machine.Devices == nil {
			cfg.Probe.Machine.Devices = cfg.Machine.Devices
		}
		probed, err := probe.Probe(cfg.Image, cfg.Probe)
		if err != nil {
			return nil, err
		}
		inst.Probed = probed
		platformText = probed.Text()
	}

	// The components communicate in the DSL, exactly like the paper's
	// pipeline: parse the (probed or tester-prepared) descriptions.
	file, err := dsl.Parse(platformText)
	if err != nil {
		return nil, fmt.Errorf("core: platform descriptions do not parse: %w", err)
	}
	if len(file.Platforms) != 1 {
		return nil, fmt.Errorf("core: platform descriptions must contain exactly one platform block")
	}

	opts := san.Options{
		Spec:         spec,
		Platform:     file.Platforms[0],
		StopOnReport: cfg.StopOnReport,
		Quarantine:   cfg.Quarantine,
		KCSAN:        cfg.KCSAN,
	}
	if len(file.Inits) > 0 {
		opts.Init = file.Inits[0]
	}
	if cfg.Image.Meta.Sanitize == kasm.SanEmbsanC {
		opts.Hypercalls = true
		opts.Globals = cfg.Image.Meta.Globals
	}
	// Derive engine tuning from the distilled resource parameters unless
	// the caller overrode them.
	for _, r := range spec.Resources {
		switch r.Name {
		case "quarantine":
			if opts.Quarantine == 0 {
				opts.Quarantine = int(r.Params["slots"])
			}
		case "watchpoints":
			if opts.KCSAN.Slots == 0 {
				opts.KCSAN.Slots = int(r.Params["slots"])
			}
		case "delay":
			if opts.KCSAN.Delay == 0 {
				// The reference expresses the stall in microseconds; scale
				// to instructions on the emulated core.
				opts.KCSAN.Delay = uint64(r.Params["task"]) * 16
			}
		}
	}

	rt, err := san.Attach(m, opts)
	if err != nil {
		return nil, err
	}
	inst.Runtime = rt

	if rt.KCSANEngine() != nil && !cfg.NoRaceGuidance && !img.Stripped && len(img.Symbols) > 0 {
		// Lockset guidance for the concurrency sanitizer: boost watchpoint
		// arming at statically unprotected/mixed sites, never arm at proven
		// always-protected or hart-local ones. The weights apply whether or
		// not elision is on, so elide-on/off campaigns arm identically; the
		// Elide mode additionally skips proven-safe sites' KCSAN dispatch
		// outright and records the proofs in the link metadata.
		if an, err := static.Analyze(img); err == nil {
			rr := races.Analyze(an, races.Options{Taint: elideTaint(opts)})
			if prio := rr.SitePriorities(races.DefaultBoost); len(prio) > 0 {
				m.SetRaceSitePriorities(prio)
			}
			if cfg.Elide {
				if recs, pcs := rr.Elisions(); len(pcs) > 0 {
					rt.SetRaceElisions(pcs)
					cp := *img
					cp.Meta.RaceElisions = recs
					img = &cp
					inst.img = img
				}
			}
		}
	}

	if cfg.Elide && img.Meta.Sanitize == kasm.SanNone && !opts.Hypercalls {
		// EMBSAN-D: the binary carries no instrumentation metadata, so the
		// prover's taint set — regions the runtime poisons dynamically —
		// comes from the probed platform description instead: the heap
		// regions plus every poisoned or allocated init range (padded for
		// the runtime's redzones). Proven access sites then skip the
		// delegate dispatch in the translated blocks entirely.
		taint := elideTaint(opts)
		if an, err := static.Analyze(img); err == nil {
			res := absint.Analyze(an, absint.Options{Taint: taint})
			if pcs := res.SafeAccessPCs(restricted); len(pcs) > 0 {
				m.SetSafeAccessPCs(pcs)
			}
		}
	}
	return inst, nil
}

// elideTaint collects the address ranges an EMBSAN-D runtime may poison at
// run time, which the static prover must treat as never provably safe.
func elideTaint(opts san.Options) []kasm.AddrRange {
	var taint []kasm.AddrRange
	for _, h := range opts.Platform.Heaps {
		taint = append(taint, kasm.AddrRange{Start: h.Start, End: h.End})
	}
	if opts.Init != nil {
		// Allocations get runtime redzones on both sides; pad the taint so
		// redzone-adjacent globals are not proven against stale layout.
		const slack = 64
		for _, op := range opts.Init.Ops {
			switch op.Kind {
			case dsl.InitPoison, dsl.InitAlloc:
				start := op.Addr
				if start >= slack {
					start -= slack
				} else {
					start = 0
				}
				taint = append(taint, kasm.AddrRange{Start: start, End: op.Addr + op.Size + slack})
			}
		}
	}
	return taint
}

// Boot runs the firmware until its ready-to-run point.
func (i *Instance) Boot(budget uint64) error {
	prev := i.Machine.ReadyHook
	i.Machine.ReadyHook = func(m *emu.Machine) {
		if prev != nil {
			prev(m)
		}
		m.RequestStop()
	}
	r := i.Machine.Run(budget)
	i.Machine.ReadyHook = prev
	if !i.Machine.ReadyReached {
		return fmt.Errorf("core: firmware %q did not reach ready (stop=%v, fault=%v)",
			i.img.Name, r, i.Machine.Fault())
	}
	i.Machine.ClearStop()
	return nil
}

// Run resumes execution with the given instruction budget (0 = unlimited).
func (i *Instance) Run(budget uint64) emu.StopReason {
	return i.Machine.Run(budget)
}

// Reports returns the sanitizer findings: the host runtime's reports, plus
// any reports a natively-sanitized guest pushed through the report device.
func (i *Instance) Reports() []*san.Report {
	var out []*san.Report
	if i.Runtime != nil {
		out = append(out, i.Runtime.Reports()...)
	}
	out = append(out, san.ConvertNative(i.img, i.Machine.SanDev.Reports)...)
	return out
}

// Snapshot captures machine and sanitizer state in lockstep.
func (i *Instance) Snapshot() {
	i.Machine.Snapshot()
	if i.Runtime != nil {
		i.Runtime.Snapshot()
	}
}

// Restore rewinds machine and sanitizer state in lockstep.
func (i *Instance) Restore() {
	i.Machine.Restore()
	if i.Runtime != nil {
		i.Runtime.Restore()
	}
}

// SetTrace attaches (or, with nil, detaches) an obs event ring to the whole
// deployment: the emulator's TB/dispatch/snapshot events and the sanitizer
// runtime's allocator/shadow/report events land in one virtual-time stream.
func (i *Instance) SetTrace(r *obs.Ring) {
	i.Machine.SetTrace(r)
	if i.Runtime != nil {
		i.Runtime.SetTrace(r)
	}
}

// ArmForensics turns forensic provenance capture on or off for the whole
// deployment: chunk alloc/free backtraces, EvFrame children on traced
// allocator/report events, and EvQuarantine transitions. No-op without a
// sanitizer runtime.
func (i *Instance) ArmForensics(on bool) {
	if i.Runtime != nil {
		i.Runtime.ArmForensics(on)
	}
}

// EnableInlineFastPath arms the machine's in-template shadow fast path for
// the given access-site PCs — normally the hottest dispatch sites from an
// obs.Profile of a representative run. It returns false when the deployment
// cannot skip delegate dispatch behaviourally (no sanitizer runtime, or an
// engine mix that observes clean dispatches — see
// san.Runtime.InstallInlineFastPath).
func (i *Instance) EnableInlineFastPath(pcs []uint32) bool {
	if i.Runtime == nil {
		return false
	}
	return i.Runtime.InstallInlineFastPath(pcs)
}

// Image returns the firmware image under test.
func (i *Instance) Image() *kasm.Image { return i.img }

// ExecResult is the outcome of one input execution.
type ExecResult struct {
	Stop     emu.StopReason
	Done     bool   // the guest executor signalled completion
	DoneCode uint32 // the guest-reported result
	Reports  []*san.Report
	Fault    *emu.Fault
	Insts    uint64 // guest instructions consumed
}

// Crashed reports whether the execution surfaced a bug: a sanitizer report
// or a raw guest fault.
func (r *ExecResult) Crashed() bool { return len(r.Reports) > 0 || r.Fault != nil }

// Exec posts one input to the firmware's executor mailbox and runs until
// the guest signals completion, something stops the machine, or the
// instruction budget runs out. The caller is responsible for Restore
// between executions when isolation is wanted.
func (i *Instance) Exec(input []byte, budget uint64) ExecResult {
	start := i.Machine.ICount()
	i.Machine.Mailbox.Post(input)
	const slice = 4096
	remaining := budget
	for {
		step := uint64(slice)
		if budget > 0 && remaining < step {
			step = remaining
		}
		r := i.Machine.Run(step)
		if done, code := i.Machine.Mailbox.Done(); done {
			return ExecResult{
				Stop: r, Done: true, DoneCode: code,
				Reports: i.Reports(), Fault: i.Machine.Fault(),
				Insts: i.Machine.ICount() - start,
			}
		}
		if r != emu.StopBudget || (budget > 0 && i.Machine.ICount()-start >= budget) {
			return ExecResult{
				Stop: r, Reports: i.Reports(), Fault: i.Machine.Fault(),
				Insts: i.Machine.ICount() - start,
			}
		}
		if budget > 0 {
			remaining = budget - (i.Machine.ICount() - start)
		}
	}
}
