package exps

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"embsan/internal/fuzz"
	"embsan/internal/guest/firmware"
	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
)

// Monitor is the wall-clock liveness hub behind `embsan monitor`: campaign
// workers publish timeline samples, plateau/novelty marks, crash findings
// and campaign completions into it as they happen, and HTTP clients read
// them back as an OpenMetrics scrape (/metrics), a server-sent event
// stream (/events) and downloadable artifacts (/timeline.emtl,
// /trace.json).
//
// Everything here is a view. The monitor hangs off the sampler's live
// hooks and the fuzzer's OnCrash callback, which feed nothing back into
// campaign state: the canonical timeline and every campaign outcome stay
// pure functions of (firmware, seed, options), byte-identical with the
// monitor attached or not. That is also why slow subscribers lose events
// (a full channel drops, never blocks a worker) — the artifact downloads,
// not the SSE stream, are the complete record.
type Monitor struct {
	mu   sync.Mutex
	subs map[chan MonitorEvent]struct{}
	reg  *obs.SyncRegistry

	// set by Finish; artifact endpoints serve 503 until then
	emtl  []byte
	trace []byte
	stats string
	done  bool
}

// NewMonitor creates an idle monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		subs: make(map[chan MonitorEvent]struct{}),
		reg:  obs.NewSyncRegistry(),
	}
}

// MonitorEvent is one liveness notification, JSON-encoded onto the SSE
// stream. Type selects which optional field is set: "sample", "mark",
// "crash", "campaign" (one campaign finished) or "done" (the whole set
// finished and the artifacts are downloadable).
type MonitorEvent struct {
	Type     string           `json:"type"`
	Campaign int              `json:"campaign"`
	Firmware string           `json:"firmware,omitempty"`
	Sample   *timeline.Sample `json:"sample,omitempty"`
	Mark     *MonitorMark     `json:"mark,omitempty"`
	Crash    *MonitorCrash    `json:"crash,omitempty"`
	Found    int              `json:"found,omitempty"` // campaign events: bugs found
}

// MonitorMark is a plateau/novelty mark in SSE form.
type MonitorMark struct {
	Kind   string `json:"kind"`
	VClock uint64 `json:"vclock"`
	Value  uint64 `json:"value"`
}

// MonitorCrash is a deduplicated finding in SSE form.
type MonitorCrash struct {
	Signature string `json:"signature"`
	Execs     int    `json:"execs"`
}

// Subscribe registers a liveness listener and returns its event channel
// plus a cancel function. The channel is buffered; events that arrive
// while it is full are dropped for this subscriber.
func (m *Monitor) Subscribe() (<-chan MonitorEvent, func()) {
	ch := make(chan MonitorEvent, 256)
	m.mu.Lock()
	m.subs[ch] = struct{}{}
	m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		delete(m.subs, ch)
		m.mu.Unlock()
	}
}

// publish fans ev out to every subscriber, dropping for the slow ones.
func (m *Monitor) publish(ev MonitorEvent) {
	m.mu.Lock()
	for ch := range m.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	m.mu.Unlock()
}

func (m *Monitor) publishSample(campaign int, fw string, s timeline.Sample) {
	m.reg.Do(func(r *obs.Registry) {
		r.Counter("monitor.samples").Inc()
		p := fmt.Sprintf("monitor.campaign.%d.", campaign)
		r.Gauge(p + "vclock").Set(int64(s.VClock))
		r.Gauge(p + "execs").Set(int64(s.Execs))
		r.Gauge(p + "cover.blocks").Set(int64(s.CoverBlocks))
		r.Gauge(p + "corpus").Set(int64(s.CorpusSize))
		r.Gauge(p + "found").Set(int64(s.Found))
	})
	sc := s
	m.publish(MonitorEvent{Type: "sample", Campaign: campaign, Firmware: fw, Sample: &sc})
}

func (m *Monitor) publishMark(campaign int, fw string, mk timeline.Mark) {
	m.reg.Do(func(r *obs.Registry) { r.Counter("monitor.marks").Inc() })
	m.publish(MonitorEvent{Type: "mark", Campaign: campaign, Firmware: fw,
		Mark: &MonitorMark{Kind: mk.Kind.String(), VClock: mk.VClock, Value: mk.Value}})
}

func (m *Monitor) publishCrash(campaign int, fw string, c *fuzz.Crash) {
	m.reg.Do(func(r *obs.Registry) { r.Counter("monitor.crashes").Inc() })
	m.publish(MonitorEvent{Type: "crash", Campaign: campaign, Firmware: fw,
		Crash: &MonitorCrash{Signature: c.Signature, Execs: c.Execs}})
}

func (m *Monitor) publishCampaign(campaign int, c *Campaign) {
	m.reg.Do(func(r *obs.Registry) { r.Counter("monitor.campaigns").Inc() })
	m.publish(MonitorEvent{Type: "campaign", Campaign: campaign,
		Firmware: c.Firmware.Name, Found: len(c.Found)})
}

// Finish stores the finished set's canonical artifacts — the EMTL
// timeline, the Chrome counter trace and the formatted stats table — and
// notifies subscribers. The artifact endpoints serve them from here on.
func (m *Monitor) Finish(emtl, trace []byte, stats string) {
	m.mu.Lock()
	m.emtl = emtl
	m.trace = trace
	m.stats = stats
	m.done = true
	m.mu.Unlock()
	m.publish(MonitorEvent{Type: "done"})
}

// snapshot returns the artifact state under the lock.
func (m *Monitor) snapshot() (emtl, trace []byte, stats string, done bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.emtl, m.trace, m.stats, m.done
}

// Handler returns the monitor's HTTP mux:
//
//	/              status summary (and the stats table once finished)
//	/metrics       OpenMetrics scrape of the live registry
//	/events        SSE stream of MonitorEvents
//	/timeline.emtl canonical EMTL timeline (503 until the run finishes)
//	/trace.json    Chrome counter trace (503 until the run finishes)
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _, stats, done := m.snapshot()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !done {
			fmt.Fprintln(w, "embsan monitor: campaign set running")
			fmt.Fprintln(w, "endpoints: /metrics /events /timeline.emtl /trace.json")
			return
		}
		fmt.Fprintln(w, "embsan monitor: campaign set finished")
		fmt.Fprint(w, stats)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.Write(m.reg.OpenMetrics())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		ch, cancel := m.Subscribe()
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		// A subscriber attaching after Finish still learns the run is done.
		if _, _, _, done := m.snapshot(); done {
			fmt.Fprint(w, "event: done\ndata: {\"type\":\"done\"}\n\n")
			fl.Flush()
			return
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case ev := <-ch:
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				fl.Flush()
				if ev.Type == "done" {
					return
				}
			}
		}
	})
	artifact := func(pick func() []byte, ctype string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			_, _, _, done := m.snapshot()
			if !done {
				http.Error(w, "campaign set still running", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", ctype)
			w.Write(pick())
		}
	}
	mux.HandleFunc("/timeline.emtl", artifact(func() []byte { e, _, _, _ := m.snapshot(); return e }, "application/octet-stream"))
	mux.HandleFunc("/trace.json", artifact(func() []byte { _, t, _, _ := m.snapshot(); return t }, "application/json"))
	return mux
}

// RunMonitor runs a campaign set with the timeline sampler armed and the
// monitor attached, then seals the canonical artifacts into the monitor.
// The returned run — and the EMTL the monitor serves — is byte-identical
// to the same options run offline without a monitor: liveness is a view,
// never an input.
func RunMonitor(fws []*firmware.Firmware, opts CampaignOptions, m *Monitor) (*CampaignRun, error) {
	opts.Timeline = true
	opts.Monitor = m
	run, err := RunCampaignSet(fws, opts)
	if err != nil {
		return nil, err
	}
	jt := JobTimelines(run.Campaigns)
	m.Finish(timeline.Encode(jt), timeline.ChromeCounters(jt),
		FormatCampaignStats(run.Campaigns, run.Workers...))
	return run, nil
}
