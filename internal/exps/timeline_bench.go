package exps

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"embsan/internal/guest/firmware"
	"embsan/internal/obs/timeline"
	"embsan/internal/sched"
)

// TimelineBenchSchema names the BENCH_timeline.json wire format; `make
// bench-check` diffs this string (never the measured values) against the
// committed artefact.
const TimelineBenchSchema = "embsan/bench-timeline/v1"

// TimelineBench is the recorded timeline-sampling overhead benchmark: for
// every firmware, the fuzzing campaign throughput with the sampler armed
// against the identical campaign with it off. It is serialised to
// BENCH_timeline.json by `embsan-bench -record-timeline` so the repository
// carries the sampling cost alongside the throughput trajectory.
type TimelineBench struct {
	Schema string             `json:"schema"`
	Execs  int                `json:"execs"` // per-campaign budget per round
	Seed   int64              `json:"seed"`
	Rows   []TimelineBenchRow `json:"rows"`
	// OverheadFrac aggregates the rows: 1 - sum(timeline rates)/sum(base
	// rates). Negative means the armed runs measured faster (noise).
	OverheadFrac float64 `json:"overhead_frac"`
}

// TimelineBenchRow is one firmware's measurement. Samples and Marks come
// from the armed run's canonical timeline, so the artefact also records
// how much telemetry the budget produced.
type TimelineBenchRow struct {
	Firmware            string  `json:"firmware"`
	BaseExecsPerSec     float64 `json:"base_execs_per_sec"`
	TimelineExecsPerSec float64 `json:"timeline_execs_per_sec"`
	OverheadFrac        float64 `json:"overhead_frac"`
	Samples             int     `json:"samples"`
	Marks               int     `json:"marks"`
}

// TimelineBenchOptions bounds the bench.
type TimelineBenchOptions struct {
	Execs    int    // campaign budget per round (default 2000)
	Rounds   int    // alternating off/on rounds; best rate wins (default 2)
	Seed     int64  // campaign base seed (default 7)
	Interval uint64 // sample period (default timeline.DefaultInterval)
}

// RunTimelineBench measures every firmware in fws (nil = the full Table 1
// registry). Each engine side owns its own warmed deployment — the armed
// side flushes translation state at campaign start (the determinism cost
// the timeline pays), and sharing a machine would leak that flush into the
// baseline's next round — and the sides alternate timed rounds with the
// best rate kept, the same minimum-time estimator the translate bench
// uses. Both sides run the bit-identical campaign (same derived seed), so
// the ratio isolates sampling overhead.
func RunTimelineBench(fws []*firmware.Firmware, opts TimelineBenchOptions) (*TimelineBench, error) {
	if opts.Execs <= 0 {
		opts.Execs = 2000
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	if fws == nil {
		var err error
		fws, err = firmware.BuildAll()
		if err != nil {
			return nil, err
		}
	}
	out := &TimelineBench{Schema: TimelineBenchSchema, Execs: opts.Execs, Seed: opts.Seed}
	var baseSum, tlSum float64
	for _, fw := range fws {
		row, err := timelineBenchRow(fw, opts)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
		baseSum += row.BaseExecsPerSec
		tlSum += row.TimelineExecsPerSec
	}
	if baseSum > 0 {
		out.OverheadFrac = 1 - tlSum/baseSum
	}
	return out, nil
}

func timelineBenchRow(fw *firmware.Firmware, opts TimelineBenchOptions) (*TimelineBenchRow, error) {
	base, err := warmUp(fw, opts.Seed, false, false, false)
	if err != nil {
		return nil, err
	}
	armed, err := warmUp(fw, opts.Seed, false, false, false)
	if err != nil {
		return nil, err
	}
	seed := sched.Split(opts.Seed, 0)
	sampler := timeline.NewSampler(opts.Interval, 0)

	round := func(w *warmed, x runExtras) (float64, *Campaign, error) {
		start := time.Now()
		c, err := w.runX(fw, seed, opts.Execs, x)
		if err != nil {
			return 0, nil, err
		}
		return float64(c.Stats.Execs) / time.Since(start).Seconds(), c, nil
	}

	row := &TimelineBenchRow{Firmware: fw.Name}
	for r := 0; r < opts.Rounds; r++ {
		br, _, err := round(base, runExtras{})
		if err != nil {
			return nil, err
		}
		if br > row.BaseExecsPerSec {
			row.BaseExecsPerSec = br
		}
		sampler.Reset(nil, timeline.DetectOptions{})
		tr, tc, err := round(armed, runExtras{tl: sampler})
		if err != nil {
			return nil, err
		}
		if tr > row.TimelineExecsPerSec {
			row.TimelineExecsPerSec = tr
		}
		row.Samples = len(tc.Timeline)
		row.Marks = len(tc.TimelineMarks)
	}
	if row.Samples == 0 {
		return nil, fmt.Errorf("exps: %s: armed campaign produced no timeline samples", fw.Name)
	}
	if row.BaseExecsPerSec > 0 {
		row.OverheadFrac = 1 - row.TimelineExecsPerSec/row.BaseExecsPerSec
	}
	return row, nil
}

// FormatTimelineBench renders the bench as a table.
func FormatTimelineBench(tb *TimelineBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timeline sampling overhead (%d execs per campaign, seed %d)\n", tb.Execs, tb.Seed)
	fmt.Fprintf(&b, "%-24s %11s %11s %9s %8s %6s\n",
		"Firmware", "off e/s", "on e/s", "overhead", "samples", "marks")
	for _, r := range tb.Rows {
		fmt.Fprintf(&b, "%-24s %11.1f %11.1f %8.2f%% %8d %6d\n",
			r.Firmware, r.BaseExecsPerSec, r.TimelineExecsPerSec,
			r.OverheadFrac*100, r.Samples, r.Marks)
	}
	fmt.Fprintf(&b, "aggregate overhead: %.2f%%\n", tb.OverheadFrac*100)
	return b.String()
}

// CheckTimelineBench validates a recorded artefact structurally — schema,
// registry coverage, positive rates, non-empty timelines — without
// comparing any measured value.
func CheckTimelineBench(data []byte, names []string) error {
	var tb TimelineBench
	if err := json.Unmarshal(data, &tb); err != nil {
		return fmt.Errorf("exps: timeline bench artefact unreadable: %w", err)
	}
	if tb.Schema != TimelineBenchSchema {
		return fmt.Errorf("exps: timeline bench artefact schema %q, code expects %q — re-record with `make bench-trend`",
			tb.Schema, TimelineBenchSchema)
	}
	if len(tb.Rows) == 0 {
		return fmt.Errorf("exps: timeline bench artefact has no rows")
	}
	have := map[string]bool{}
	for _, r := range tb.Rows {
		if r.Firmware == "" || r.BaseExecsPerSec <= 0 || r.TimelineExecsPerSec <= 0 || r.Samples <= 0 {
			return fmt.Errorf("exps: timeline bench artefact row %+v is malformed", r)
		}
		have[r.Firmware] = true
	}
	if names == nil {
		names = firmware.Names
	}
	var missing []string
	for _, n := range names {
		if !have[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exps: timeline bench artefact missing firmware rows: %s — re-record with `make bench-trend`",
			strings.Join(missing, ", "))
	}
	return nil
}

// BenchTrendSchema names the BENCH_trend.json wire format.
const BenchTrendSchema = "embsan/bench-trend/v1"

// BenchTrend is the cross-PR performance trajectory: one summary row per
// recording, distilled from the four per-subsystem bench artefacts. `make
// bench-trend` appends a row after re-recording, so the committed file
// accumulates the repo's throughput history.
type BenchTrend struct {
	Schema string          `json:"schema"`
	Rows   []BenchTrendRow `json:"rows"`
}

// BenchTrendRow is one recording's summary.
type BenchTrendRow struct {
	Seq int `json:"seq"` // strictly increasing recording index
	// From BENCH_translate.json: mean fast-engine campaign replay
	// throughput and mean exit-chain hit rate across firmware.
	FastExecsPerSec float64 `json:"fast_execs_per_sec"`
	ChainHitRate    float64 `json:"chain_hit_rate"`
	// From BENCH_rehost.json: mean replay throughput of the rehosted
	// deployments.
	RehostExecsPerSec float64 `json:"rehost_execs_per_sec"`
	// From BENCH_races.json: execs the lockset-guided KCSAN needed to fire
	// the seeded race (0 = missed when recorded).
	GuidedRaceExecs int `json:"guided_race_execs"`
	// From BENCH_timeline.json: aggregate sampling overhead and total
	// samples recorded.
	TimelineOverheadFrac float64 `json:"timeline_overhead_frac"`
	TimelineSamples      int     `json:"timeline_samples"`
}

// AppendBenchTrend parses the four bench artefacts, distils one summary
// row, and appends it to the previous trend (prev may be nil or empty for
// a fresh file). The returned trend is ready to serialise.
func AppendBenchTrend(prev, translate, races, rehost, timelineData []byte) (*BenchTrend, error) {
	trend := &BenchTrend{Schema: BenchTrendSchema}
	if len(prev) > 0 {
		if err := json.Unmarshal(prev, trend); err != nil {
			return nil, fmt.Errorf("exps: previous trend artefact unreadable: %w", err)
		}
		if trend.Schema != BenchTrendSchema {
			return nil, fmt.Errorf("exps: previous trend artefact schema %q, code expects %q",
				trend.Schema, BenchTrendSchema)
		}
	}

	var tb TranslateBench
	if err := json.Unmarshal(translate, &tb); err != nil || tb.Schema != TranslateBenchSchema {
		return nil, fmt.Errorf("exps: trend needs a valid BENCH_translate.json (err %v, schema %q)", err, tb.Schema)
	}
	var rb RaceBench
	if err := json.Unmarshal(races, &rb); err != nil || rb.Schema != RaceBenchSchema {
		return nil, fmt.Errorf("exps: trend needs a valid BENCH_races.json (err %v, schema %q)", err, rb.Schema)
	}
	var hb RehostBench
	if err := json.Unmarshal(rehost, &hb); err != nil || hb.Schema != RehostBenchSchema {
		return nil, fmt.Errorf("exps: trend needs a valid BENCH_rehost.json (err %v, schema %q)", err, hb.Schema)
	}
	var lb TimelineBench
	if err := json.Unmarshal(timelineData, &lb); err != nil || lb.Schema != TimelineBenchSchema {
		return nil, fmt.Errorf("exps: trend needs a valid BENCH_timeline.json (err %v, schema %q)", err, lb.Schema)
	}

	row := BenchTrendRow{Seq: 1, GuidedRaceExecs: rb.GuidedExecs,
		TimelineOverheadFrac: lb.OverheadFrac}
	if n := len(trend.Rows); n > 0 {
		row.Seq = trend.Rows[n-1].Seq + 1
	}
	for _, r := range tb.Rows {
		row.FastExecsPerSec += r.FastExecsPerSec / float64(len(tb.Rows))
		row.ChainHitRate += r.ChainHitRate / float64(len(tb.Rows))
	}
	for _, r := range hb.Rows {
		row.RehostExecsPerSec += r.ExecsPerSec / float64(len(hb.Rows))
	}
	for _, r := range lb.Rows {
		row.TimelineSamples += r.Samples
	}
	trend.Rows = append(trend.Rows, row)
	return trend, nil
}

// FormatBenchTrend renders the trajectory as a table.
func FormatBenchTrend(t *BenchTrend) string {
	var b strings.Builder
	b.WriteString("Cross-PR performance trajectory\n")
	fmt.Fprintf(&b, "%4s %12s %10s %12s %11s %12s %9s\n",
		"seq", "fast e/s", "chain-hit", "rehost e/s", "race execs", "tl overhead", "samples")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%4d %12.1f %9.1f%% %12.1f %11d %11.2f%% %9d\n",
			r.Seq, r.FastExecsPerSec, r.ChainHitRate*100, r.RehostExecsPerSec,
			r.GuidedRaceExecs, r.TimelineOverheadFrac*100, r.TimelineSamples)
	}
	return b.String()
}

// CheckBenchTrend validates a trend artefact: schema, at least one row,
// strictly increasing sequence numbers, sane summary fields. Measured
// values are never compared.
func CheckBenchTrend(data []byte) error {
	var t BenchTrend
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("exps: trend artefact unreadable: %w", err)
	}
	if t.Schema != BenchTrendSchema {
		return fmt.Errorf("exps: trend artefact schema %q, code expects %q — re-record with `make bench-trend`",
			t.Schema, BenchTrendSchema)
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("exps: trend artefact has no rows")
	}
	prev := 0
	for _, r := range t.Rows {
		if r.Seq <= prev {
			return fmt.Errorf("exps: trend artefact sequence not increasing at seq %d", r.Seq)
		}
		prev = r.Seq
		if r.FastExecsPerSec <= 0 || r.RehostExecsPerSec <= 0 || r.TimelineSamples <= 0 {
			return fmt.Errorf("exps: trend artefact row %+v is malformed", r)
		}
	}
	return nil
}
