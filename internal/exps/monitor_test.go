package exps

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
)

// TestMonitorEndpoints drives the full `embsan monitor` surface headless
// (this is what `make monitor-check` runs): subscribe to the SSE stream,
// run a monitored campaign set, then verify the scrape, the status page
// and the artifact downloads — and that the served EMTL is byte-identical
// to an offline run of the same options, the monitor's core contract.
func TestMonitorEndpoints(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	opts := CampaignOptions{
		Execs: 200, Seed: 3, Workers: 2, Repeats: 2,
		TimelineInterval: 20_000, StallSamples: 4,
	}

	m := NewMonitor()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Attach an SSE client before the run starts so it sees live events.
	sseEvents := make(chan string, 1024)
	sseReq, err := http.NewRequest("GET", srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	go func() {
		defer close(sseEvents)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				sseEvents <- strings.TrimPrefix(line, "event: ")
			}
		}
	}()

	run, err := RunMonitor(fws, opts, m)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the SSE stream: the server closes it after "done".
	counts := map[string]int{}
	timeout := time.After(10 * time.Second)
	for {
		var ev string
		var ok bool
		select {
		case ev, ok = <-sseEvents:
		case <-timeout:
			t.Fatal("SSE stream did not finish")
		}
		if !ok {
			break
		}
		counts[ev]++
	}
	if counts["sample"] == 0 {
		t.Error("SSE stream carried no sample events")
	}
	if counts["campaign"] != len(run.Campaigns) {
		t.Errorf("SSE stream carried %d campaign events for %d campaigns",
			counts["campaign"], len(run.Campaigns))
	}
	if counts["done"] != 1 {
		t.Errorf("SSE stream carried %d done events", counts["done"])
	}

	get := func(path string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	// /metrics: a parseable OpenMetrics scrape with the live gauges.
	code, ctype, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(ctype, "openmetrics-text") {
		t.Errorf("/metrics: code %d type %q", code, ctype)
	}
	if !bytes.HasSuffix(body, []byte("# EOF\n")) {
		t.Error("/metrics missing # EOF terminator")
	}
	for _, want := range []string{"monitor_samples_total", "monitor_campaign_0_execs", "monitor_campaigns_total"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}

	// Status page carries the finished stats table.
	code, _, body = get("/")
	if code != http.StatusOK || !bytes.Contains(body, []byte("finished")) {
		t.Errorf("/: code %d body %q", code, body)
	}
	if !bytes.Contains(body, []byte("InfiniTime")) {
		t.Error("/ missing the stats table")
	}

	// /timeline.emtl: decodes, and byte-equals an offline run of the very
	// same options with no monitor attached — liveness is a view.
	code, _, emtl := get("/timeline.emtl")
	if code != http.StatusOK {
		t.Fatalf("/timeline.emtl: code %d", code)
	}
	jobs, err := timeline.Decode(emtl)
	if err != nil {
		t.Fatalf("served EMTL does not decode: %v", err)
	}
	if len(jobs) != len(run.Campaigns) {
		t.Errorf("served EMTL has %d jobs for %d campaigns", len(jobs), len(run.Campaigns))
	}
	offOpts := opts
	offOpts.Timeline = true
	offOpts.Monitor = nil
	offOpts.Workers = 1 // different worker count on purpose
	offline, err := RunCampaignSet(fws, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(emtl, timeline.Encode(JobTimelines(offline.Campaigns))) {
		t.Error("served EMTL diverged from an offline run of the same options")
	}

	// /trace.json: a valid Chrome counter trace.
	code, ctype, trace := get("/trace.json")
	if code != http.StatusOK || !strings.Contains(ctype, "json") {
		t.Errorf("/trace.json: code %d type %q", code, ctype)
	}
	if err := obs.ValidateChrome(trace); err != nil {
		t.Errorf("/trace.json invalid: %v", err)
	}

	// Unknown paths 404.
	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code %d, want 404", code)
	}

	// A late SSE subscriber immediately learns the run is done.
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(late, []byte("event: done")) {
		t.Errorf("late subscriber missed the done event: %q", late)
	}
}

// TestMonitorArtifactsGatedUntilDone: artifact endpoints 503 while the
// set is (notionally) still running.
func TestMonitorArtifactsGatedUntilDone(t *testing.T) {
	m := NewMonitor()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	for _, path := range []string{"/timeline.emtl", "/trace.json"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before Finish: code %d, want 503", path, resp.StatusCode)
		}
	}
	m.Finish([]byte("EMTL"), []byte("{}"), "stats")
	resp, err := http.Get(srv.URL + "/timeline.emtl")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte("EMTL")) {
		t.Errorf("sealed artifact not served: code %d body %q", resp.StatusCode, body)
	}
}
