package exps

import (
	"bytes"
	"strings"
	"testing"

	"embsan/internal/obs"
)

// TestCampaignTraceDeterministicAcrossWorkers: with tracing on, the
// per-campaign event streams — merged by campaign index — are identical at
// workers=1 and workers=4, and so is the Chrome export built from them. The
// campaign outcomes themselves also still fingerprint identically, i.e.
// tracing does not perturb the determinism contract it observes.
func TestCampaignTraceDeterministicAcrossWorkers(t *testing.T) {
	fws := buildSubset(t, "InfiniTime", "OpenWRT-bcm63xx")
	opts := CampaignOptions{Execs: 200, Seed: 3, Repeats: 2, Trace: true}

	type run struct {
		fp     string
		jobs   []obs.JobTrace
		chrome []byte
	}
	runs := make([]run, 0, 2)
	for _, workers := range []int{1, 4} {
		opts.Workers = workers
		cr, err := RunCampaignSet(fws, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		jobs := JobTraces(cr.Campaigns)
		if len(jobs) != len(cr.Campaigns) {
			t.Fatalf("workers=%d: %d traces for %d campaigns", workers, len(jobs), len(cr.Campaigns))
		}
		runs = append(runs, run{
			fp:     campaignFingerprint(cr.Campaigns),
			jobs:   jobs,
			chrome: obs.ChromeTrace(jobs),
		})
	}

	if runs[0].fp != runs[1].fp {
		t.Error("campaign outcomes diverged between worker counts with tracing on")
	}
	for ji := range runs[0].jobs {
		a, b := runs[0].jobs[ji], runs[1].jobs[ji]
		if a.ID != b.ID || a.Dropped != b.Dropped || len(a.Events) != len(b.Events) {
			t.Fatalf("job %d: stream shape diverged (id %d/%d, dropped %d/%d, len %d/%d)",
				ji, a.ID, b.ID, a.Dropped, b.Dropped, len(a.Events), len(b.Events))
		}
		for ei := range a.Events {
			if a.Events[ei] != b.Events[ei] {
				t.Fatalf("job %d event %d diverged: %+v vs %+v", ji, ei, a.Events[ei], b.Events[ei])
			}
		}
	}
	if !bytes.Equal(runs[0].chrome, runs[1].chrome) {
		t.Error("Chrome export bytes diverged between worker counts")
	}
	if err := obs.ValidateChrome(runs[0].chrome); err != nil {
		t.Errorf("merged campaign trace fails Chrome validation: %v", err)
	}
}

// TestCampaignTraceWraparound: a deliberately tiny ring overflows, drops the
// oldest events, and the exported stream still validates — wraparound
// degrades coverage of the timeline, never its integrity.
func TestCampaignTraceWraparound(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	cr, err := RunCampaignSet(fws, CampaignOptions{
		Execs: 200, Seed: 3, Workers: 1, Trace: true, TraceEvents: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := cr.Campaigns[0]
	if c.TraceDropped == 0 {
		t.Fatal("64-event ring did not overflow on a full campaign")
	}
	if len(c.Trace) != 64 {
		t.Fatalf("retained %d events, want the full ring (64)", len(c.Trace))
	}
	if err := obs.ValidateChrome(obs.ChromeTrace(JobTraces(cr.Campaigns))); err != nil {
		t.Fatalf("wrapped trace fails Chrome validation: %v", err)
	}
	if _, _, err := obs.DecodeEvents(obs.EncodeEvents(c.Trace, c.TraceDropped)); err != nil {
		t.Fatalf("wrapped trace fails binary round trip: %v", err)
	}
}

// TestTraceOffIsNoop: enabling then disabling observability leaves campaign
// outcomes fingerprints-identical to a never-traced run, and a traced run
// reports phase work while an untraced one reports none. This is the
// paired check `make obs-check` drives.
func TestTraceOffIsNoop(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	base := CampaignOptions{Execs: 200, Seed: 3, Workers: 1}

	off, err := RunCampaignSet(fws, base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Trace = true
	traced.Metrics = true
	on, err := RunCampaignSet(fws, traced)
	if err != nil {
		t.Fatal(err)
	}

	if campaignFingerprint(off.Campaigns) != campaignFingerprint(on.Campaigns) {
		t.Error("tracing changed campaign outcomes")
	}
	if off.Campaigns[0].Phases.Any() {
		t.Error("untraced campaign carries a phase breakdown")
	}
	p := on.Campaigns[0].Phases
	if !p.Any() || p.Execute == 0 || p.Sanitize == 0 {
		t.Errorf("traced campaign phase breakdown is empty or partial: %+v", p)
	}

	// The stat table gains phase columns only when phases were recorded.
	offStats := FormatCampaignStats(off.Campaigns, off.Workers...)
	onStats := FormatCampaignStats(on.Campaigns, on.Workers...)
	for _, col := range []string{"translate", "sanitize", "snapshot"} {
		if strings.Contains(offStats, col) {
			t.Errorf("metrics-off stats leak the %q column:\n%s", col, offStats)
		}
		if !strings.Contains(onStats, col) {
			t.Errorf("metrics-on stats missing the %q column:\n%s", col, onStats)
		}
	}

	// Reports captured under tracing carry their virtual timestamp and the
	// reporting worker.
	for _, c := range on.Campaigns {
		for _, cr := range c.Raw.Crashes {
			if cr.Report == nil {
				continue
			}
			if cr.Report.ICnt == 0 {
				t.Errorf("report %s has no virtual timestamp", cr.Signature)
			}
		}
	}
}
