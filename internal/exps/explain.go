package exps

import (
	"fmt"

	"embsan/internal/guest/firmware"
	"embsan/internal/obs/forensics"
	"embsan/internal/sched"
)

// ExplainOptions selects the report to explain and how to find an input
// reproducing it.
type ExplainOptions struct {
	// Signature is the report signature (Report.Signature) to explain.
	// Empty means the first report the chosen input produces.
	Signature string
	// BugFn names a seeded bug (firmware.Bug.Fn) whose trigger is replayed
	// as the input. Empty means derive the input another way.
	BugFn string
	// Input, when non-nil, is replayed directly (a distilled crasher from a
	// previous campaign artifact).
	Input []byte
	// Execs bounds the input-hunting campaign when neither BugFn nor Input
	// is given (default 30000).
	Execs int
	// Seed is the base seed — the same value a campaign on this firmware
	// used, so explain replays the exact deployment.
	Seed int64
	// Window is the forensic half-window in instructions (0 = default).
	Window uint64
	// Elide matches the campaign's CampaignOptions.Elide so the deployment
	// under explain is the deployment that reported.
	Elide bool
}

// ExplainResult is one explained report with its rendered artifacts.
type ExplainResult struct {
	*forensics.Explanation
	Firmware *firmware.Firmware
	Input    []byte // the input that was replayed
	JSON     []byte // canonical explain.json bytes
}

// ExplainReport reconstructs the forensic story of one report on fw: it
// warms the identical deployment a campaign would use, resolves an input
// that reproduces the report (seeded trigger, explicit crasher, or a
// bounded hunting campaign), and runs the deterministic two-pass forensic
// replay. The result — text and JSON — is a pure function of (firmware,
// options): campaigns find the crasher bit-identically for every worker
// count, and the replay itself is serial, so `embsan explain` output is
// byte-identical no matter how the campaign that surfaced the bug was
// scheduled.
func ExplainReport(fw *firmware.Firmware, opts ExplainOptions) (*ExplainResult, error) {
	w, err := warmUp(fw, opts.Seed, opts.Elide, false, false)
	if err != nil {
		return nil, err
	}
	input := opts.Input
	sig := opts.Signature
	switch {
	case input != nil:
		// Explicit crasher; sig (possibly empty) selects among its reports.
	case opts.BugFn != "":
		b := seededBug(fw, opts.BugFn)
		if b == nil {
			return nil, fmt.Errorf("exps: %s has no seeded bug %q", fw.Name, opts.BugFn)
		}
		input = b.Trigger
		if sig == "" {
			// The warm-up labelled each trigger's signature; reuse it so a
			// multi-report trigger still explains the seeded bug.
			for s, sb := range w.sigToBug {
				if sb == b {
					sig = s
					break
				}
			}
		}
	default:
		execs := opts.Execs
		if execs == 0 {
			execs = 30000
		}
		c, err := w.runOne(fw, sched.Split(opts.Seed, 0), execs)
		if err != nil {
			return nil, err
		}
		for _, crash := range c.Raw.Crashes {
			if crash.Report == nil {
				continue
			}
			if sig != "" && crash.Signature != sig {
				continue
			}
			sig = crash.Signature
			input = crash.Minimized
			if input == nil {
				input = crash.Input
			}
			break
		}
		if input == nil {
			return nil, fmt.Errorf("exps: %s: campaign found no crash matching %q", fw.Name, opts.Signature)
		}
	}

	// Pin the machine seed to the warm-up value so the replay's virtual
	// clock is independent of whether a hunting campaign ran in between.
	w.inst.Machine.Reseed(uint64(opts.Seed) + 1)
	exp, err := forensics.Explain(w.inst, forensics.Options{
		Signature: sig,
		Input:     input,
		Window:    opts.Window,
	})
	if err != nil {
		return nil, err
	}
	return &ExplainResult{
		Explanation: exp,
		Firmware:    fw,
		Input:       input,
		JSON:        exp.JSON(w.inst.Image().Symbolize),
	}, nil
}
