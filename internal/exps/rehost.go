package exps

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/mystery"
	"embsan/internal/isa"
	"embsan/internal/static/rehost"
)

// RehostArches lists the frontends the mystery image is lifted on — the
// rehosted campaign family runs one campaign per frontend, mirroring how
// the registry covers each frontend with real boards.
var RehostArches = []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E}

// RehostNames lists the rehosted campaign family in table order. The family
// is deliberately NOT part of firmware.Names: the registry is the paper's
// Table 1, and the mystery guest exists to prove the lifting pipeline, not
// to pad the table.
func RehostNames() []string {
	names := make([]string, len(RehostArches))
	for i, a := range RehostArches {
		names[i] = "Mystery-" + a.String()
	}
	return names
}

// BuildRehosted runs the full static rehosting pipeline on one frontend:
// build the mystery guest, throw away everything but the stripped image,
// lift it, and wrap the result as a registry-shaped firmware whose machine
// config carries the synthesized bridge device. Everything downstream
// (probing, warm-up, campaigns, benches) then treats it exactly like any
// other closed EMBSAN-D firmware. The seeded-bug list and corpus come from
// the guest's ground truth — they describe what a campaign should find, not
// how to boot the image, so using them does not leak into the lift.
func BuildRehosted(arch isa.Arch) (*firmware.Firmware, *rehost.Profile, error) {
	name := "Mystery-" + arch.String()
	fw, err := mystery.Build(name, arch)
	if err != nil {
		return nil, nil, err
	}
	p, err := rehost.Lift(fw.Image)
	if err != nil {
		return nil, nil, fmt.Errorf("exps: rehost %s: %w", name, err)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("exps: rehost %s: %w", name, err)
	}
	out := &firmware.Firmware{
		Name: name, BaseOS: "Unknown (rehosted)", Arch: arch,
		InstMode: "EmbSan-D", SourceOpen: false, Fuzzer: "Tardis",
		Frontend: firmware.FrontendBytes,
		Image:    fw.Image,
		Seeds:    fw.Seeds,
		Machine:  emu.Config{Devices: []emu.DeviceFactory{rehost.Device(p)}},
	}
	for _, b := range fw.Bugs {
		out.Bugs = append(out.Bugs, firmware.Bug{
			Fn: b.Fn, Location: b.Location, Type: b.Type, Trigger: b.Trigger,
		})
	}
	return out, p, nil
}

// BuildAllRehosted lifts the mystery image on every frontend.
func BuildAllRehosted() ([]*firmware.Firmware, error) {
	out := make([]*firmware.Firmware, 0, len(RehostArches))
	for _, a := range RehostArches {
		fw, _, err := BuildRehosted(a)
		if err != nil {
			return nil, err
		}
		out = append(out, fw)
	}
	return out, nil
}

// RunRehostCampaigns fuzzes the rehosted family on the parallel executor.
// The deployments run through the identical closed-source pipeline as the
// TP-Link campaigns — behavioural allocator probing, EMBSAN-D attachment,
// snapshot-pooled workers — with the lifted bridge as the only extra piece,
// and the merged result is bit-identical for every worker count.
func RunRehostCampaigns(opts CampaignOptions) (*CampaignRun, error) {
	fws, err := BuildAllRehosted()
	if err != nil {
		return nil, err
	}
	return RunCampaignSet(fws, opts)
}

// RehostBenchSchema names the BENCH_rehost.json wire format; `make
// bench-check` diffs it (never the measured values) against the committed
// artefact.
const RehostBenchSchema = "embsan/bench-rehost/v1"

// RehostBench is the recorded rehosted-firmware replay benchmark: the
// deterministic replay throughput of each lifted deployment, plus the
// lifted map's shape so the artefact documents what was being served. It is
// serialised to BENCH_rehost.json by `embsan-bench -record`.
type RehostBench struct {
	Schema string           `json:"schema"`
	Execs  int              `json:"execs"` // timed replays per firmware
	Seed   int64            `json:"seed"`
	Rows   []RehostBenchRow `json:"rows"`
}

// RehostBenchRow is one lifted deployment's measurement. Registers, Windows
// and Allocs describe the inferred profile the bridge served; BridgeReads
// and BridgeWrites count the MMIO traffic the replay workload actually
// pushed through it (from the machine's device counters).
type RehostBenchRow struct {
	Firmware     string  `json:"firmware"`
	ExecsPerSec  float64 `json:"execs_per_sec"`
	Registers    int     `json:"registers"`
	Windows      int     `json:"windows"`
	Allocs       int     `json:"allocs"`
	BridgeReads  uint64  `json:"bridge_reads"`
	BridgeWrites uint64  `json:"bridge_writes"`
}

// RehostBenchOptions bounds the bench.
type RehostBenchOptions struct {
	Execs  int   // timed replays per round (default 4000)
	Rounds int   // timed rounds; best rate wins (default 3)
	Seed   int64 // warm-up base seed (default 7)
}

// RunRehostBench measures each rehosted deployment on its deterministic
// replay workload (every seeded-bug trigger plus every corpus seed, one
// Restore+Exec each, cycled until the budget is spent). One untimed settle
// pass precedes the timed rounds and the best rate is kept — the same
// minimum-time estimator as the translation bench.
func RunRehostBench(opts RehostBenchOptions) (*RehostBench, error) {
	if opts.Execs <= 0 {
		opts.Execs = 4000
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	out := &RehostBench{Schema: RehostBenchSchema, Execs: opts.Execs, Seed: opts.Seed}
	for _, arch := range RehostArches {
		fw, p, err := BuildRehosted(arch)
		if err != nil {
			return nil, err
		}
		row, err := rehostBenchRow(fw, p, opts)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func rehostBenchRow(fw *firmware.Firmware, p *rehost.Profile, opts RehostBenchOptions) (*RehostBenchRow, error) {
	var inputs [][]byte
	for i := range fw.Bugs {
		inputs = append(inputs, fw.Bugs[i].Trigger)
	}
	inputs = append(inputs, fw.Seeds...)

	w, err := warmUp(fw, opts.Seed, false, false, false)
	if err != nil {
		return nil, err
	}
	inst := w.inst
	for _, in := range inputs {
		inst.Restore()
		inst.Exec(in, 100_000_000)
	}

	var rate float64
	var ctr emu.Counters
	for r := 0; r < opts.Rounds; r++ {
		before := inst.Machine.Counters()
		start := time.Now()
		for n := 0; n < opts.Execs; {
			for _, in := range inputs {
				inst.Restore()
				inst.Exec(in, 100_000_000)
				if n++; n >= opts.Execs {
					break
				}
			}
		}
		if rr := float64(opts.Execs) / time.Since(start).Seconds(); rr > rate {
			rate, ctr = rr, inst.Machine.Counters().Sub(before)
		}
	}
	return &RehostBenchRow{
		Firmware:     fw.Name,
		ExecsPerSec:  rate,
		Registers:    len(p.Registers),
		Windows:      len(p.Windows),
		Allocs:       len(p.Allocs),
		BridgeReads:  ctr.DeviceReads,
		BridgeWrites: ctr.DeviceWrites,
	}, nil
}

// FormatRehostBench renders the bench as a table.
func FormatRehostBench(rb *RehostBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rehosted replay throughput (%d replays per firmware, seed %d)\n", rb.Execs, rb.Seed)
	fmt.Fprintf(&b, "%-20s %11s %5s %4s %6s %12s %12s\n",
		"Firmware", "execs/s", "regs", "wins", "allocs", "dev-reads", "dev-writes")
	for _, r := range rb.Rows {
		fmt.Fprintf(&b, "%-20s %11.1f %5d %4d %6d %12d %12d\n",
			r.Firmware, r.ExecsPerSec, r.Registers, r.Windows, r.Allocs,
			r.BridgeReads, r.BridgeWrites)
	}
	return b.String()
}

// CheckRehostBench validates a recorded artefact against the current code
// without comparing any measured value: the schema must match, every
// rehosted firmware must have a structurally sane row, and every row must
// show a non-trivial lifted map being served (a rehosted image that pushed
// zero MMIO traffic through its bridge never actually booted).
func CheckRehostBench(data []byte) error {
	var rb RehostBench
	if err := json.Unmarshal(data, &rb); err != nil {
		return fmt.Errorf("exps: rehost bench artefact unreadable: %w", err)
	}
	if rb.Schema != RehostBenchSchema {
		return fmt.Errorf("exps: rehost bench artefact schema %q, code expects %q — re-record with `make bench-record`",
			rb.Schema, RehostBenchSchema)
	}
	have := map[string]bool{}
	for _, r := range rb.Rows {
		if r.Firmware == "" || r.ExecsPerSec <= 0 {
			return fmt.Errorf("exps: rehost bench artefact row %+v is malformed", r)
		}
		if r.Registers == 0 || r.Allocs == 0 {
			return fmt.Errorf("exps: rehost bench artefact row %s records an empty lifted map", r.Firmware)
		}
		if r.BridgeReads == 0 {
			return fmt.Errorf("exps: rehost bench artefact row %s shows no MMIO traffic through the bridge", r.Firmware)
		}
		have[r.Firmware] = true
	}
	var missing []string
	for _, n := range RehostNames() {
		if !have[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exps: rehost bench artefact missing rows: %s — re-record with `make bench-record`",
			strings.Join(missing, ", "))
	}
	return nil
}
