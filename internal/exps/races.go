package exps

import (
	"encoding/json"
	"fmt"
	"strings"

	"embsan/internal/guest/firmware"
	"embsan/internal/san"
	"embsan/internal/sched"
	"embsan/internal/static"
	"embsan/internal/static/races"
)

// RaceBenchSchema names the BENCH_races.json wire format; `make races-check`
// validates the committed artefact against it.
const RaceBenchSchema = "embsan/bench-races/v1"

// RaceBench is the guided-vs-uniform race-finding record: the seeded
// freertos race twin fuzzed twice with identical budgets and seeds, once
// with the static lockset guidance and once with uniform KCSAN sampling.
// Execution is fully virtual, so both exec counts are machine-independent.
type RaceBench struct {
	Schema       string `json:"schema"`
	Firmware     string `json:"firmware"`
	Execs        int    `json:"execs"` // per-campaign budget
	Seed         int64  `json:"seed"`
	StaticPairs  int    `json:"static_pairs"`  // candidate pairs the triage emits
	GuidedExecs  int    `json:"guided_execs"`  // execs consumed until the race fired (0 = missed)
	UniformExecs int    `json:"uniform_execs"` // same, uniform sampling
}

// RaceBenchOptions bounds the bench.
type RaceBenchOptions struct {
	Execs int   // per-campaign execution budget (default 2000)
	Seed  int64 // base seed (default 7)
}

// RunRaceBench builds the race twin, checks the static triage flags the
// seeded pair, then measures how many executions guided and uniform KCSAN
// campaigns each need to catch the race in flight.
func RunRaceBench(opts RaceBenchOptions) (*RaceBench, error) {
	if opts.Execs <= 0 {
		opts.Execs = 2000
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	fw, err := firmware.BuildRaceTwin()
	if err != nil {
		return nil, err
	}
	an, err := static.Analyze(fw.Image)
	if err != nil {
		return nil, err
	}
	pairs := len(races.Analyze(an, races.Options{}).Pairs)
	if pairs == 0 {
		return nil, fmt.Errorf("exps: static triage emitted no candidate pairs for %s", fw.Name)
	}
	guided, err := raceFindExecs(fw, opts, false)
	if err != nil {
		return nil, err
	}
	uniform, err := raceFindExecs(fw, opts, true)
	if err != nil {
		return nil, err
	}
	return &RaceBench{
		Schema: RaceBenchSchema, Firmware: fw.Name,
		Execs: opts.Execs, Seed: opts.Seed,
		StaticPairs: pairs, GuidedExecs: guided, UniformExecs: uniform,
	}, nil
}

// raceFindExecs runs one campaign on the twin and returns the executions
// consumed when the first race report fired (0 = the budget missed it).
func raceFindExecs(fw *firmware.Firmware, opts RaceBenchOptions, noGuide bool) (int, error) {
	w, err := warmUp(fw, opts.Seed, false, false, noGuide)
	if err != nil {
		return 0, err
	}
	c, err := w.runOne(fw, sched.Split(opts.Seed, 0), opts.Execs)
	if err != nil {
		return 0, err
	}
	found := 0
	for _, crash := range c.Raw.Crashes {
		if crash.Report == nil || crash.Report.Bug != san.BugRace {
			continue
		}
		if found == 0 || crash.Execs < found {
			found = crash.Execs
		}
	}
	return found, nil
}

// FormatRaceBench renders the bench.
func FormatRaceBench(rb *RaceBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guided vs uniform KCSAN on %s (budget %d execs, seed %d)\n",
		rb.Firmware, rb.Execs, rb.Seed)
	fmt.Fprintf(&b, "static candidate pairs: %d\n", rb.StaticPairs)
	cell := func(n int) string {
		if n == 0 {
			return "missed"
		}
		return fmt.Sprintf("%d execs", n)
	}
	fmt.Fprintf(&b, "guided:  race found after %s\n", cell(rb.GuidedExecs))
	fmt.Fprintf(&b, "uniform: race found after %s\n", cell(rb.UniformExecs))
	return b.String()
}

// CheckRaceBench validates a recorded artefact: the schema must match, the
// static triage must have flagged the pair, and the guided campaign must
// have found the seeded race in strictly fewer executions than uniform
// sampling. Both campaigns are virtual-clock deterministic, so the recorded
// counts are reproducible on any machine.
func CheckRaceBench(data []byte) error {
	var rb RaceBench
	if err := json.Unmarshal(data, &rb); err != nil {
		return fmt.Errorf("exps: race bench artefact unreadable: %w", err)
	}
	if rb.Schema != RaceBenchSchema {
		return fmt.Errorf("exps: race bench artefact schema %q, code expects %q — re-record with `make bench-record`",
			rb.Schema, RaceBenchSchema)
	}
	if rb.StaticPairs == 0 {
		return fmt.Errorf("exps: race bench artefact records no static candidate pairs")
	}
	if rb.GuidedExecs <= 0 {
		return fmt.Errorf("exps: race bench artefact: guided campaign missed the seeded race")
	}
	if rb.UniformExecs > 0 && rb.GuidedExecs >= rb.UniformExecs {
		return fmt.Errorf("exps: race bench artefact: guided (%d execs) not faster than uniform (%d execs)",
			rb.GuidedExecs, rb.UniformExecs)
	}
	return nil
}
