package exps

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTimelineBenchRecordAndCheck exercises the record → serialise →
// validate cycle on one firmware with a small budget. Timing is
// machine-dependent, so only structure and counter invariants are
// asserted — the overhead number itself is the committed artefact's job.
func TestTimelineBenchRecordAndCheck(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	tb, err := RunTimelineBench(fws, TimelineBenchOptions{Execs: 150, Rounds: 1, Seed: 7, Interval: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema != TimelineBenchSchema || len(tb.Rows) != 1 {
		t.Fatalf("unexpected bench shape: %+v", tb)
	}
	row := tb.Rows[0]
	if row.BaseExecsPerSec <= 0 || row.TimelineExecsPerSec <= 0 {
		t.Errorf("non-positive throughput: %+v", row)
	}
	if row.Samples == 0 {
		t.Errorf("armed run produced no samples: %+v", row)
	}
	if !strings.Contains(FormatTimelineBench(tb), "aggregate overhead") {
		t.Error("format missing the aggregate line")
	}

	data, err := json.MarshalIndent(tb, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTimelineBench(data, []string{"InfiniTime"}); err != nil {
		t.Errorf("valid artefact rejected: %v", err)
	}
	if err := CheckTimelineBench(data, []string{"InfiniTime", "OpenWRT-bcm63xx"}); err == nil {
		t.Error("artefact missing a required firmware row was accepted")
	}
	stale := bytes.Replace(data, []byte(TimelineBenchSchema), []byte("embsan/bench-timeline/v0"), 1)
	if err := CheckTimelineBench(stale, []string{"InfiniTime"}); err == nil {
		t.Error("stale schema accepted")
	}
	if err := CheckTimelineBench([]byte("{"), nil); err == nil {
		t.Error("truncated JSON accepted")
	}
}

// TestBenchTrendAppendAndCheck drives AppendBenchTrend with synthetic
// minimal artefacts through two recordings and validates the result.
func TestBenchTrendAppendAndCheck(t *testing.T) {
	translate, _ := json.Marshal(TranslateBench{Schema: TranslateBenchSchema,
		Rows: []TranslateBenchRow{{Firmware: "A", FastExecsPerSec: 100, ChainHitRate: 0.5}}})
	races, _ := json.Marshal(RaceBench{Schema: RaceBenchSchema, GuidedExecs: 42})
	rehost, _ := json.Marshal(RehostBench{Schema: RehostBenchSchema,
		Rows: []RehostBenchRow{{Firmware: "A", ExecsPerSec: 80}}})
	tl, _ := json.Marshal(TimelineBench{Schema: TimelineBenchSchema, OverheadFrac: 0.01,
		Rows: []TimelineBenchRow{{Firmware: "A", BaseExecsPerSec: 100, TimelineExecsPerSec: 99, Samples: 7}}})

	trend, err := AppendBenchTrend(nil, translate, races, rehost, tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.Rows) != 1 || trend.Rows[0].Seq != 1 {
		t.Fatalf("fresh trend shape: %+v", trend)
	}
	r := trend.Rows[0]
	if r.FastExecsPerSec != 100 || r.ChainHitRate != 0.5 || r.RehostExecsPerSec != 80 ||
		r.GuidedRaceExecs != 42 || r.TimelineSamples != 7 {
		t.Errorf("distilled row wrong: %+v", r)
	}

	prev, _ := json.Marshal(trend)
	trend2, err := AppendBenchTrend(prev, translate, races, rehost, tl)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend2.Rows) != 2 || trend2.Rows[1].Seq != 2 {
		t.Fatalf("appended trend shape: %+v", trend2)
	}
	if !strings.Contains(FormatBenchTrend(trend2), "trajectory") {
		t.Error("format missing header")
	}

	data, _ := json.Marshal(trend2)
	if err := CheckBenchTrend(data); err != nil {
		t.Errorf("valid trend rejected: %v", err)
	}
	if err := CheckBenchTrend([]byte(`{"schema":"embsan/bench-trend/v0","rows":[]}`)); err == nil {
		t.Error("stale schema accepted")
	}
	if err := CheckBenchTrend([]byte(`{"schema":"embsan/bench-trend/v1","rows":[]}`)); err == nil {
		t.Error("empty trend accepted")
	}
	bad, _ := json.Marshal(BenchTrend{Schema: BenchTrendSchema,
		Rows: []BenchTrendRow{{Seq: 1, FastExecsPerSec: 1, RehostExecsPerSec: 1, TimelineSamples: 1},
			{Seq: 1, FastExecsPerSec: 1, RehostExecsPerSec: 1, TimelineSamples: 1}}})
	if err := CheckBenchTrend(bad); err == nil {
		t.Error("non-increasing sequence accepted")
	}

	// Append refuses malformed inputs.
	if _, err := AppendBenchTrend(nil, []byte("{"), races, rehost, tl); err == nil {
		t.Error("bad translate artefact accepted")
	}
	if _, err := AppendBenchTrend([]byte(`{"schema":"wrong"}`), translate, races, rehost, tl); err == nil {
		t.Error("bad previous trend accepted")
	}
}
