package exps

import (
	"fmt"
	"strings"

	"embsan/internal/guest/firmware"
)

// FormatTable1 renders the firmware registry as the paper's Table 1.
func FormatTable1(fws []*firmware.Firmware) string {
	var b strings.Builder
	b.WriteString("Table 1: embedded firmware used in EMBSAN's evaluation\n")
	fmt.Fprintf(&b, "%-24s %-15s %-12s %-10s %-7s %-10s\n",
		"Firmware", "Base OS", "Architecture", "Inst. Mode", "Source", "Fuzzer")
	for _, fw := range fws {
		src := "Open"
		if !fw.SourceOpen {
			src = "Closed"
		}
		fmt.Fprintf(&b, "%-24s %-15s %-12s %-10s %-7s %-10s\n",
			fw.Name, fw.BaseOS, archName(fw), fw.InstMode, src, fw.Fuzzer)
	}
	return b.String()
}

func archName(fw *firmware.Firmware) string {
	switch fw.Arch.String() {
	case "arm32e":
		return "ARM"
	case "mips32e":
		return "MIPS"
	case "x86e":
		return "x86"
	}
	return fw.Arch.String()
}
