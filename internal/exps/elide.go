package exps

import (
	"fmt"
	"strings"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// The elision experiment measures what the static safety proofs buy at run
// time: each firmware is deployed twice with identical seeds — once plain,
// once with core.Config.Elide — and the same deterministic boot + input
// replay is driven through both. The FENCE-pad rewrite (EMBSAN-C) and the
// safe-site translation (EMBSAN-D) keep the instruction stream bit-identical,
// so the two runs differ only in how many sanitizer dispatches fire, which
// is exactly the pair of counters the table below compares.

// ElisionStat is the measured dispatch saving on one firmware.
type ElisionStat struct {
	Firmware string
	Mode     string // "embsan-c" or "embsan-d"
	// Dispatch counts the dynamic sanitizer dispatches of the plain run:
	// SANCK traps for EMBSAN-C, Mem-probe deliveries for EMBSAN-D.
	Dispatch uint64
	// Elided counts the dispatches the proofs removed in the elided run:
	// executed FENCE pads, or proven accesses that skipped the probe.
	Elided uint64
	// Reports is the number of sanitizer reports, identical in both runs
	// by construction (the experiment fails otherwise).
	Reports int
}

// Frac returns the elided fraction of the plain run's dispatches.
func (s ElisionStat) Frac() float64 {
	total := s.Dispatch
	if total == 0 {
		return 0
	}
	return float64(s.Elided) / float64(total)
}

// RunElisionStats deploys each firmware (nil = all Table 1 firmware) twice —
// plain and elided — replays the same deterministic input set through both,
// and tallies the dispatch saving. It returns an error if the two runs of
// any firmware disagree on report count or on the dispatch-conservation
// identity plain.dispatch == elided.dispatch + elided.elided, both of which
// the pad-preserving rewrite guarantees.
func RunElisionStats(fws []*firmware.Firmware, seed int64) ([]ElisionStat, error) {
	if fws == nil {
		var err error
		fws, err = firmware.BuildAll()
		if err != nil {
			return nil, err
		}
	}
	var out []ElisionStat
	for _, fw := range fws {
		plain, preports, err := elisionRun(fw, seed, false)
		if err != nil {
			return nil, err
		}
		elided, ereports, err := elisionRun(fw, seed, true)
		if err != nil {
			return nil, err
		}
		st := ElisionStat{Firmware: fw.Name, Reports: len(preports)}
		if fw.Image.Meta.Sanitize == kasm.SanEmbsanC {
			st.Mode = "embsan-c"
			st.Dispatch = plain.SanckTraps
			st.Elided = elided.SanckElided
			if plain.SanckTraps != elided.SanckTraps+elided.SanckElided {
				return nil, fmt.Errorf("exps: %s: trap conservation broken: %d plain vs %d+%d elided",
					fw.Name, plain.SanckTraps, elided.SanckTraps, elided.SanckElided)
			}
		} else {
			st.Mode = "embsan-d"
			st.Dispatch = plain.MemProbes
			st.Elided = elided.MemElided
			if plain.MemProbes != elided.MemProbes+elided.MemElided {
				return nil, fmt.Errorf("exps: %s: probe conservation broken: %d plain vs %d+%d elided",
					fw.Name, plain.MemProbes, elided.MemProbes, elided.MemElided)
			}
		}
		if len(preports) != len(ereports) {
			return nil, fmt.Errorf("exps: %s: elision changed findings: %d vs %d reports",
				fw.Name, len(preports), len(ereports))
		}
		for i := range preports {
			if preports[i] != ereports[i] {
				return nil, fmt.Errorf("exps: %s: elision changed finding %d: %s vs %s",
					fw.Name, i, preports[i], ereports[i])
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// elisionRun boots fw once and replays its bug triggers and seed corpus in a
// fixed order, returning the cumulative dispatch counters and the report
// signatures in encounter order. The configuration matches warmUp so the
// measured stream is the one the campaigns execute.
func elisionRun(fw *firmware.Firmware, seed int64, elide bool) (emu.Counters, []string, error) {
	sans := []string{"kasan"}
	for _, b := range fw.Bugs {
		if b.NeedsKCSAN {
			sans = []string{"kasan", "kcsan"}
			break
		}
	}
	inst, err := core.New(core.Config{
		Image:        fw.Image,
		Sanitizers:   sans,
		StopOnReport: true,
		Machine:      emu.Config{MaxHarts: 2, Seed: uint64(seed) + 1},
		KCSAN:        san.KCSANConfig{SampleInterval: 13, Delay: 600},
		Elide:        elide,
	})
	if err != nil {
		return emu.Counters{}, nil, err
	}
	if err := inst.Boot(200_000_000); err != nil {
		return emu.Counters{}, nil, err
	}
	inst.Snapshot()
	var sigs []string
	replay := func(input []byte) {
		inst.Restore()
		res := inst.Exec(input, 100_000_000)
		for _, r := range res.Reports {
			sigs = append(sigs, r.Signature())
		}
	}
	for _, b := range fw.Bugs {
		if b.NeedsKCSAN {
			continue // racing triggers depend on watchpoint timing, not layout
		}
		replay(b.Trigger)
	}
	for _, s := range fw.Seeds {
		replay(s)
	}
	return inst.Machine.Counters(), sigs, nil
}

// FormatElisionTable renders the per-firmware dispatch savings.
func FormatElisionTable(stats []ElisionStat) string {
	var b strings.Builder
	b.WriteString("Sanitizer dispatches elided by static safety proofs\n")
	fmt.Fprintf(&b, "%-24s %-9s %12s %12s %7s %8s\n",
		"Firmware", "mode", "dispatches", "elided", "frac", "reports")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-24s %-9s %12d %12d %6.1f%% %8d\n",
			s.Firmware, s.Mode, s.Dispatch, s.Elided, s.Frac()*100, s.Reports)
	}
	return b.String()
}
