package exps

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
)

// TranslateBenchSchema names the BENCH_translate.json wire format. Bump it
// whenever the row shape changes: `make bench-check` diffs this string (never
// the measured values, which are machine-dependent) against the committed
// artefact, so a schema drift fails CI until the artefact is re-recorded.
const TranslateBenchSchema = "embsan/bench-translate/v1"

// TranslateBench is the recorded translation fast-path benchmark: for every
// firmware, the replay throughput of the full engine against the
// NoFastPaths baseline on the identical deterministic workload. It is
// serialised to BENCH_translate.json by `embsan-bench -record` so the
// repository carries a throughput trajectory across engine changes.
type TranslateBench struct {
	Schema string              `json:"schema"`
	Execs  int                 `json:"execs"` // replays per engine per firmware
	Seed   int64               `json:"seed"`
	Rows   []TranslateBenchRow `json:"rows"`
}

// TranslateBenchRow is one firmware's measurement. The counter-derived
// fields come from the fast engine's run: DispatchesElided is the number of
// block transfers and access checks that skipped the dispatcher entirely
// (exit chains followed + inline shadow settles + shared-cache TB imports),
// and ChainHitRate is the fraction of block transfers resolved by an exit
// chain instead of a dispatcher entry.
type TranslateBenchRow struct {
	Firmware         string  `json:"firmware"`
	BaseExecsPerSec  float64 `json:"base_execs_per_sec"`
	FastExecsPerSec  float64 `json:"fast_execs_per_sec"`
	Speedup          float64 `json:"speedup"`
	ChainHitRate     float64 `json:"chain_hit_rate"`
	DispatchesElided uint64  `json:"dispatches_elided"`
	ChainHits        uint64  `json:"chain_hits"`
	InlineFast       uint64  `json:"inline_fast"`
	SharedTBHits     uint64  `json:"shared_tb_hits"`
}

// TranslateBenchOptions bounds the bench.
type TranslateBenchOptions struct {
	Execs  int   // timed replays per engine per round (default 8000)
	Rounds int   // alternating base/fast rounds; best rate wins (default 3)
	Seed   int64 // warm-up base seed (default 7)
}

// RunTranslateBench measures every firmware in fws (nil = the full Table 1
// registry). The workload is the firmware's deterministic replay set — every
// non-racing seeded-bug trigger plus every corpus seed, one Restore+Exec
// each, cycled until the budget is spent — so both engines execute the
// bit-identical instruction stream and the throughput ratio isolates the
// translation fast paths from fuzzer mutation noise. Each engine gets one
// untimed settle pass first so neither side pays first-translation cost
// inside the timed window, and the engines then alternate timed rounds with
// the best rate kept per side — the standard minimum-time estimator, which
// cancels GC pauses and scheduler drift that a single long window folds in.
func RunTranslateBench(fws []*firmware.Firmware, opts TranslateBenchOptions) (*TranslateBench, error) {
	if opts.Execs <= 0 {
		opts.Execs = 8000
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	if fws == nil {
		var err error
		fws, err = firmware.BuildAll()
		if err != nil {
			return nil, err
		}
	}
	out := &TranslateBench{Schema: TranslateBenchSchema, Execs: opts.Execs, Seed: opts.Seed}
	for _, fw := range fws {
		row, err := translateBenchRow(fw, opts)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func translateBenchRow(fw *firmware.Firmware, opts TranslateBenchOptions) (*TranslateBenchRow, error) {
	var inputs [][]byte
	for i := range fw.Bugs {
		if !fw.Bugs[i].NeedsKCSAN {
			inputs = append(inputs, fw.Bugs[i].Trigger)
		}
	}
	inputs = append(inputs, fw.Seeds...)
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exps: %s: no deterministic replay workload", fw.Name)
	}

	prepare := func(noFast bool) (*warmed, error) {
		w, err := warmUp(fw, opts.Seed, false, noFast, false)
		if err != nil {
			return nil, err
		}
		// Settle pass: arming the inline sites flushed the fast engine's TB
		// cache, and the first replay of each input translates cold paths on
		// both engines. One untimed cycle pushes that outside the windows.
		for _, in := range inputs {
			w.inst.Restore()
			w.inst.Exec(in, 100_000_000)
		}
		return w, nil
	}
	round := func(w *warmed) (float64, emu.Counters) {
		inst := w.inst
		before := inst.Machine.Counters()
		start := time.Now()
		for n := 0; n < opts.Execs; {
			for _, in := range inputs {
				inst.Restore()
				inst.Exec(in, 100_000_000)
				if n++; n >= opts.Execs {
					break
				}
			}
		}
		rate := float64(opts.Execs) / time.Since(start).Seconds()
		return rate, inst.Machine.Counters().Sub(before)
	}

	base, err := prepare(true)
	if err != nil {
		return nil, err
	}
	fast, err := prepare(false)
	if err != nil {
		return nil, err
	}
	var baseRate, fastRate float64
	var baseCtr, fastCtr emu.Counters
	for r := 0; r < opts.Rounds; r++ {
		if br, bc := round(base); br > baseRate {
			baseRate, baseCtr = br, bc
		}
		if fr, fc := round(fast); fr > fastRate {
			fastRate, fastCtr = fr, fc
		}
	}
	if baseCtr.ChainHits|baseCtr.InlineFast|baseCtr.SharedTBHits != 0 {
		return nil, fmt.Errorf("exps: %s: NoFastPaths baseline engaged fast paths: %+v", fw.Name, baseCtr)
	}

	row := &TranslateBenchRow{
		Firmware:         fw.Name,
		BaseExecsPerSec:  baseRate,
		FastExecsPerSec:  fastRate,
		Speedup:          fastRate / baseRate,
		ChainHits:        fastCtr.ChainHits,
		InlineFast:       fastCtr.InlineFast,
		SharedTBHits:     fastCtr.SharedTBHits,
		DispatchesElided: fastCtr.ChainHits + fastCtr.InlineFast + fastCtr.SharedTBHits,
	}
	if transfers := fastCtr.ChainHits + fastCtr.Dispatches; transfers > 0 {
		row.ChainHitRate = float64(fastCtr.ChainHits) / float64(transfers)
	}
	return row, nil
}

// FormatTranslateBench renders the bench as a table.
func FormatTranslateBench(tb *TranslateBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Translation fast paths (%d replays per engine, seed %d)\n", tb.Execs, tb.Seed)
	fmt.Fprintf(&b, "%-24s %11s %11s %8s %10s %14s\n",
		"Firmware", "base e/s", "fast e/s", "speedup", "chain-hit", "elided")
	for _, r := range tb.Rows {
		fmt.Fprintf(&b, "%-24s %11.1f %11.1f %7.2fx %9.1f%% %14d\n",
			r.Firmware, r.BaseExecsPerSec, r.FastExecsPerSec, r.Speedup,
			r.ChainHitRate*100, r.DispatchesElided)
	}
	return b.String()
}

// CheckTranslateBench validates a recorded bench artefact against the
// current code without comparing any measured value: the schema string must
// match, every firmware in names (nil = the full registry) must have a row,
// every row must be structurally sane, and at least one row must show the
// fast paths engaged. This is the CI gate that keeps BENCH_translate.json
// from silently rotting when the row shape or the registry changes.
func CheckTranslateBench(data []byte, names []string) error {
	var tb TranslateBench
	if err := json.Unmarshal(data, &tb); err != nil {
		return fmt.Errorf("exps: bench artefact unreadable: %w", err)
	}
	if tb.Schema != TranslateBenchSchema {
		return fmt.Errorf("exps: bench artefact schema %q, code expects %q — re-record with `make bench-record`",
			tb.Schema, TranslateBenchSchema)
	}
	if len(tb.Rows) == 0 {
		return fmt.Errorf("exps: bench artefact has no rows")
	}
	have := map[string]bool{}
	var elided uint64
	for _, r := range tb.Rows {
		if r.Firmware == "" || r.BaseExecsPerSec <= 0 || r.FastExecsPerSec <= 0 || r.Speedup <= 0 {
			return fmt.Errorf("exps: bench artefact row %+v is malformed", r)
		}
		have[r.Firmware] = true
		elided += r.DispatchesElided
	}
	if elided == 0 {
		return fmt.Errorf("exps: bench artefact shows zero dispatches elided — fast paths never engaged when recorded")
	}
	if names == nil {
		names = firmware.Names
	}
	var missing []string
	for _, n := range names {
		if !have[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exps: bench artefact missing firmware rows: %s — re-record with `make bench-record`",
			strings.Join(missing, ", "))
	}
	return nil
}
