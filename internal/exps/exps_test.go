package exps

import (
	"fmt"
	"strings"
	"testing"

	"embsan/internal/guest/elinux"
	"embsan/internal/guest/firmware"
)

// TestTable2KnownBugMatrix is the paper's Table 2: all 25 bugs detected by
// EMBSAN-C and native KASAN; EMBSAN-D detects everything except the two
// global out-of-bounds bugs.
func TestTable2KnownBugMatrix(t *testing.T) {
	rows, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(rows))
	}
	for _, r := range rows {
		wantD := !r.Def.NeedsCompileTime()
		if !r.EmbsanC {
			t.Errorf("%s: EMBSAN-C missed it", r.Def.Fn)
		}
		if !r.NativeKASAN {
			t.Errorf("%s: native KASAN missed it", r.Def.Fn)
		}
		if r.EmbsanD != wantD {
			t.Errorf("%s: EMBSAN-D detected=%v, want %v", r.Def.Fn, r.EmbsanD, wantD)
		}
	}
	text := FormatTable2(rows)
	for _, want := range []string{"fbcon_get_font", "5.7-rc5", "ringbuf_map_alloc", "Use-after-free"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

// TestTable3And4Campaigns runs the fuzzing campaigns on every Table 1
// firmware and checks the 41 seeded bugs are found and classified like the
// paper's Tables 3 and 4.
func TestTable3And4Campaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are long; run without -short")
	}
	cs, err := RunAllCampaigns(CampaignOptions{Execs: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range cs {
		total += len(c.Found)
		for _, missed := range c.Missed {
			t.Errorf("%s: seeded bug %s not found by the campaign", c.Firmware.Name, missed)
		}
		// Classification must match the seeded ground truth.
		for _, f := range c.Found {
			for _, seed := range c.Firmware.Bugs {
				if seed.Fn == f.Fn && seed.Type.Short() != f.Class {
					t.Errorf("%s: %s classified %s, want %s", c.Firmware.Name, f.Fn, f.Class, seed.Type.Short())
				}
			}
		}
	}
	if total != 41 {
		t.Errorf("total bugs found = %d, want 41\n%s", total, FormatCampaignStats(cs))
	}
	t3 := FormatTable3(cs)
	if !strings.Contains(t3, "Total: 41 bugs") {
		t.Errorf("Table 3 total mismatch:\n%s", t3)
	}
	t4 := FormatTable4(cs)
	for _, want := range []string{"pppoed", "dhcpsd", "src/libs/littlefs/", "fs/vfs", "fs/btrfs"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

// TestFigure2OverheadShape measures the overhead series on a representative
// firmware subset and checks the paper's qualitative shape: every sanitizer
// configuration slows execution down, and KCSAN costs more than KASAN.
func TestFigure2OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement is long; run without -short")
	}
	// Wall-clock measurement on a shared machine can eat a scheduler
	// preemption; allow one re-measurement before declaring the shape wrong.
	var problems []string
	for attempt := 0; attempt < 2; attempt++ {
		rows, err := RunOverhead([]string{"OpenWRT-x86_64", "OpenWRT-bcm63xx", "InfiniTime"},
			OverheadOptions{Programs: 8, Repeats: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		problems = checkFigure2Shape(rows)
		if len(problems) == 0 {
			out := FormatFigure2(rows)
			if !strings.Contains(out, "Grouped slowdown ranges") {
				t.Error("figure text missing groupings")
			}
			return
		}
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// checkFigure2Shape asserts the paper's qualitative claims: every EMBSAN
// configuration costs something, KCSAN costs more than KASAN, and the
// Embedded Linux native baselines show measurable overhead (Figure 2 has
// native baselines only for Linux; RTOS native builds are informational —
// their background tasks dominate short workloads).
func checkFigure2Shape(rows []OverheadRow) []string {
	var out []string
	for _, r := range rows {
		if v := r.Slowdown[CfgEmbsanKASAN]; v < 1.05 {
			out = append(out, fmt.Sprintf("%s: EMBSAN KASAN slowdown %.2fx — expected measurable overhead", r.Firmware, v))
		}
		if kcsan, ok := r.Slowdown[CfgEmbsanKCSAN]; ok {
			if kcsan <= r.Slowdown[CfgEmbsanKASAN] {
				out = append(out, fmt.Sprintf("%s: KCSAN (%.2fx) should cost more than KASAN (%.2fx)",
					r.Firmware, kcsan, r.Slowdown[CfgEmbsanKASAN]))
			}
		}
		if r.BaseOS == "Embedded Linux" {
			if nk, ok := r.Slowdown[CfgNativeKASAN]; ok && nk < 1.05 {
				out = append(out, fmt.Sprintf("%s: native KASAN slowdown %.2fx — expected measurable overhead", r.Firmware, nk))
			}
		}
	}
	return out
}

func TestTable1Format(t *testing.T) {
	fws, err := firmware.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTable1(fws)
	for _, want := range []string{"OpenWRT-armvirt", "VxWorks", "Closed", "Tardis", "MIPS"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2TypeNames(t *testing.T) {
	if table2TypeName(elinux.BugDef{Kind: elinux.KindNullDeref}) != "Null-pointer-deref" {
		t.Error("null deref name")
	}
	if table2TypeName(elinux.BugDef{Kind: elinux.KindUAFRead}) != "Use-after-free" {
		t.Error("uaf name")
	}
	if table2TypeName(elinux.BugDef{Kind: elinux.KindGlobalOOBRead}) != "Out-of-bounds" {
		t.Error("oob name")
	}
}
