package exps

import (
	"testing"

	"embsan/internal/guest/firmware"
	"embsan/internal/san"
	"embsan/internal/sched"
)

// TestRaceBenchGuidedBeatsUniform is the ground-truth experiment: the
// seeded freertos race is flagged statically and found dynamically, and
// the lockset-guided campaign needs strictly fewer executions than uniform
// sampling. Both campaigns are virtual-clock deterministic, so the margin
// is stable across machines.
func TestRaceBenchGuidedBeatsUniform(t *testing.T) {
	rb, err := RunRaceBench(RaceBenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatRaceBench(rb))
	if rb.StaticPairs == 0 {
		t.Fatal("static triage emitted no candidate pairs")
	}
	if rb.GuidedExecs == 0 {
		t.Fatal("guided campaign missed the seeded race")
	}
	if rb.UniformExecs != 0 && rb.GuidedExecs >= rb.UniformExecs {
		t.Errorf("guided (%d execs) not faster than uniform (%d execs)",
			rb.GuidedExecs, rb.UniformExecs)
	}
}

// TestRaceGuidedCampaignDeterministicAcrossWorkers: guided-KCSAN campaigns
// on the race twin merge byte-identically for every worker count — the
// static priority map must not break the worker-count oracle.
func TestRaceGuidedCampaignDeterministicAcrossWorkers(t *testing.T) {
	fw, err := firmware.BuildRaceTwin()
	if err != nil {
		t.Fatal(err)
	}
	fws := []*firmware.Firmware{fw}
	opts := CampaignOptions{Execs: 350, Seed: 3, Repeats: 2}

	prints := make([]string, 0, 2)
	for _, workers := range []int{1, 4} {
		opts.Workers = workers
		run, err := RunCampaignSet(fws, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints = append(prints, campaignFingerprint(run.Campaigns))
	}
	if prints[0] != prints[1] {
		t.Errorf("guided campaigns diverged across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			prints[0], prints[1])
	}
}

// raceAddrs collects the distinct racing addresses one campaign caught. A
// race is identified by the contended address, not the report signature:
// the same race reports from whichever side observed the collision first,
// and guidance legitimately shifts which side that is.
func raceAddrs(t *testing.T, fw *firmware.Firmware, execs int, seed int64, noGuide bool) map[uint32]bool {
	t.Helper()
	w, err := warmUp(fw, seed, false, false, noGuide)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.runOne(fw, sched.Split(seed, 0), execs)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[uint32]bool{}
	for _, crash := range c.Raw.Crashes {
		if crash.Report != nil && crash.Report.Bug == san.BugRace {
			addrs[crash.Report.Addr] = true
		}
	}
	return addrs
}

// TestRaceGuidanceNoFalseElision: every race the uniform campaign catches,
// the guided campaign catches too at the same budget — guidance may only
// move the sampling budget away from proven-safe sites, never away from a
// real race.
func TestRaceGuidanceNoFalseElision(t *testing.T) {
	fw, err := firmware.BuildRaceTwin()
	if err != nil {
		t.Fatal(err)
	}
	const execs, seed = 2000, 7
	uniform := raceAddrs(t, fw, execs, seed, true)
	guided := raceAddrs(t, fw, execs, seed, false)
	if len(uniform) == 0 {
		t.Fatal("uniform campaign found no races; differential is vacuous")
	}
	for addr := range uniform {
		if !guided[addr] {
			t.Errorf("uniform caught a race at %#x but guided did not — a real race was elided", addr)
		}
	}
}
