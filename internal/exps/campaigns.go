package exps

import (
	"fmt"
	"sort"
	"strings"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/fuzz"
	"embsan/internal/guest/firmware"
	"embsan/internal/san"
)

// CampaignOptions tunes the Table 3/4 fuzzing campaigns. The paper ran
// 7-day campaigns; the reproduction bounds each firmware by executions.
type CampaignOptions struct {
	Execs int   // per-firmware execution budget (default 30000)
	Seed  int64 // deterministic campaigns
}

// FoundBug is one campaign finding attributed to a seeded bug.
type FoundBug struct {
	Firmware string
	BaseOS   string
	Arch     string
	Location string
	Fn       string
	Class    string // OOB Access / UAF / Double Free / Race
	Execs    int    // executions consumed when found
}

// Campaign is the outcome for one firmware.
type Campaign struct {
	Firmware *firmware.Firmware
	Stats    fuzz.Stats
	Found    []FoundBug
	Missed   []string // seeded bugs the campaign did not reach
	Corpus   [][]byte
	Raw      *fuzz.Result // full fuzzer output (for artifact persistence)
}

// RunCampaign fuzzes one firmware with EMBSAN attached, exactly like the
// paper's evaluation: Syzkaller-style programs for Embedded Linux,
// Tardis-style byte inputs for the RTOS firmware, KCSAN enabled where the
// firmware can race.
func RunCampaign(fw *firmware.Firmware, opts CampaignOptions) (*Campaign, error) {
	if opts.Execs == 0 {
		opts.Execs = 30000
	}
	sans := []string{"kasan"}
	for _, b := range fw.Bugs {
		if b.NeedsKCSAN {
			sans = []string{"kasan", "kcsan"}
			break
		}
	}
	inst, err := core.New(core.Config{
		Image:        fw.Image,
		Sanitizers:   sans,
		StopOnReport: true,
		Machine:      emu.Config{MaxHarts: 2, Seed: uint64(opts.Seed) + 1},
		KCSAN:        san.KCSANConfig{SampleInterval: 13, Delay: 600},
	})
	if err != nil {
		return nil, fmt.Errorf("exps: %s: %w", fw.Name, err)
	}
	if err := inst.Boot(200_000_000); err != nil {
		return nil, fmt.Errorf("exps: %s: %w", fw.Name, err)
	}
	inst.Snapshot()

	// Ground-truth labelling: replay each seeded trigger once to learn the
	// crash signature it produces — this is how campaign findings are
	// attributed even on stripped firmware, where reports carry raw
	// addresses instead of function names.
	sigToBug := map[string]*firmware.Bug{}
	for i := range fw.Bugs {
		b := &fw.Bugs[i]
		if b.NeedsKCSAN {
			continue // races are attributed by function name below
		}
		inst.Restore()
		res := inst.Exec(b.Trigger, 100_000_000)
		if len(res.Reports) > 0 {
			sigToBug[res.Reports[0].Signature()] = b
		}
	}
	inst.Restore()

	fcfg := fuzz.Config{
		Instance: inst,
		Seeds:    fw.Seeds,
		Seed:     opts.Seed,
		MaxExecs: opts.Execs,
	}
	if fw.Frontend == firmware.FrontendSyscall {
		fcfg.Frontend = fuzz.FrontendSyscall
		fcfg.Syscalls = len(fw.Syscalls)
	} else {
		fcfg.Frontend = fuzz.FrontendBytes
		// Byte inputs are cheap to execute and the parsers gate on multiple
		// header bytes; give the mutation-driven frontend a larger budget.
		fcfg.MaxExecs = opts.Execs * 2
	}
	f, err := fuzz.New(fcfg)
	if err != nil {
		return nil, err
	}
	res := f.Run()

	c := &Campaign{Firmware: fw, Stats: res.Stats, Corpus: res.Corpus, Raw: res}
	foundFns := map[string]bool{}
	for _, crash := range res.Crashes {
		if crash.Report == nil {
			continue
		}
		seed := sigToBug[crash.Signature]
		if seed == nil {
			seed = seededBug(fw, locationFn(crash.Report.Location))
		}
		if seed == nil || foundFns[seed.Fn] {
			continue
		}
		foundFns[seed.Fn] = true
		c.Found = append(c.Found, FoundBug{
			Firmware: fw.Name, BaseOS: fw.BaseOS, Arch: fw.Arch.String(),
			Location: seed.Location, Fn: seed.Fn,
			Class: crash.Report.Bug.Short(), Execs: crash.Execs,
		})
	}
	for _, b := range fw.Bugs {
		if !foundFns[b.Fn] {
			c.Missed = append(c.Missed, b.Fn)
		}
	}
	sort.Slice(c.Found, func(i, j int) bool { return c.Found[i].Fn < c.Found[j].Fn })
	return c, nil
}

// RunAllCampaigns fuzzes every Table 1 firmware.
func RunAllCampaigns(opts CampaignOptions) ([]*Campaign, error) {
	fws, err := firmware.BuildAll()
	if err != nil {
		return nil, err
	}
	var out []*Campaign
	for _, fw := range fws {
		c, err := RunCampaign(fw, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func locationFn(loc string) string {
	if i := strings.IndexByte(loc, '+'); i > 0 {
		return loc[:i]
	}
	return loc
}

func seededBug(fw *firmware.Firmware, fn string) *firmware.Bug {
	for i := range fw.Bugs {
		if fw.Bugs[i].Fn == fn {
			return &fw.Bugs[i]
		}
	}
	return nil
}

// Table 3 classes, in the paper's column order.
var table3Classes = []string{"OOB Access", "UAF", "Double Free", "Race"}

// FormatTable3 renders the per-firmware classification of found bugs.
func FormatTable3(cs []*Campaign) string {
	var b strings.Builder
	b.WriteString("Table 3: classification of new bugs found by EMBSAN\n")
	fmt.Fprintf(&b, "%-24s %-11s %-5s %-12s %-5s\n", "Firmware", "OOB Access", "UAF", "Double Free", "Race")
	total := 0
	for _, c := range cs {
		counts := map[string]int{}
		for _, f := range c.Found {
			counts[f.Class]++
			total++
		}
		cell := func(class string) string {
			if n := counts[class]; n > 0 {
				return fmt.Sprintf("%d", n)
			}
			return ""
		}
		fmt.Fprintf(&b, "%-24s %-11s %-5s %-12s %-5s\n", c.Firmware.Name,
			cell("OOB Access"), cell("UAF"), cell("Double Free"), cell("Race"))
	}
	fmt.Fprintf(&b, "Total: %d bugs\n", total)
	return b.String()
}

// FormatTable4 renders the full bug list.
func FormatTable4(cs []*Campaign) string {
	var b strings.Builder
	b.WriteString("Table 4: previously unknown bugs found during fuzzing\n")
	fmt.Fprintf(&b, "%-24s %-15s %-8s %-36s %-12s\n", "Firmware", "Base OS", "Arch", "Location", "Bug Type")
	for _, c := range cs {
		for _, f := range c.Found {
			fmt.Fprintf(&b, "%-24s %-15s %-8s %-36s %-12s\n",
				f.Firmware, f.BaseOS, f.Arch, f.Location, f.Class)
		}
	}
	return b.String()
}

// FormatCampaignStats summarises fuzzing effort.
func FormatCampaignStats(cs []*Campaign) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %7s\n", "Firmware", "execs", "corpus", "blocks", "found", "missed")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-24s %8d %8d %8d %8d %7d\n", c.Firmware.Name,
			c.Stats.Execs, c.Stats.CorpusSize, c.Stats.CoverBlocks, len(c.Found), len(c.Missed))
	}
	return b.String()
}
