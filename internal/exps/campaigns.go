package exps

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/fuzz"
	"embsan/internal/guest/firmware"
	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
	"embsan/internal/san"
	"embsan/internal/sched"
	"embsan/internal/static"
	"embsan/internal/static/absint"
)

// CampaignOptions tunes the Table 3/4 fuzzing campaigns. The paper ran
// 7-day campaigns; the reproduction bounds each firmware by executions.
type CampaignOptions struct {
	Execs int   // per-campaign execution budget (default 30000)
	Seed  int64 // base seed; campaign i runs with sched.Split(Seed, i)
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS, 1 = serial).
	// Merged results are identical for every value.
	Workers int
	// Repeats runs each firmware that many times (default 1) with
	// independent derived seeds — the multi-campaign workloads of the
	// throughput experiments.
	Repeats int
	// Elide applies the static safety proofs to the deployment
	// (core.Config.Elide): provably-safe SANCK traps are dropped from
	// EMBSAN-C images and proven access sites skip delegate dispatch on
	// EMBSAN-D machines. Bug findings are unchanged; only the trap/probe
	// counters move.
	Elide bool
	// Trace captures a per-campaign obs event stream (Campaign.Trace).
	// Campaign outcomes are unchanged — each job's stream is a pure function
	// of its index, so determinism across worker counts holds with tracing
	// on or off.
	Trace bool
	// TraceEvents bounds each campaign's ring (default obs.DefaultRingEvents);
	// overflow drops the oldest events and bumps Campaign.TraceDropped.
	TraceEvents int
	// Metrics computes the per-phase virtual-time breakdown
	// (Campaign.Phases) even when full event tracing is off.
	Metrics bool
	// NoFastPaths runs the campaigns on the pre-fast-path engine: TB
	// chaining and the shared translation cache are disabled on the pooled
	// machines and no inline shadow sites are armed. Campaign outcomes are
	// identical with it on or off — the differential oracle tests assert
	// exactly that — so the flag exists for those oracles and for recording
	// the bench baseline, not for production use.
	NoFastPaths bool
	// NoRaceGuidance runs KCSAN with uniform sampling instead of the static
	// lockset guidance (core.Config.NoRaceGuidance) — the baseline side of
	// the guided-vs-uniform race benchmarks.
	NoRaceGuidance bool
	// Forensics arms forensic provenance capture (core.Instance.ArmForensics)
	// for the campaign: crash reports carry allocation and free backtraces
	// stamped from the shadow call stack. Purely host-side, so campaign
	// outcomes (found bugs, coverage, execs) are unchanged; only the report
	// extras and the worker frame counters move.
	Forensics bool
	// Timeline samples the campaign-progress metric vector every
	// TimelineInterval retired instructions on the campaign's cumulative
	// virtual clock (Campaign.Timeline). Like Trace, each campaign's
	// timeline is a pure function of its index, so the merged timeline is
	// byte-identical across worker counts.
	Timeline bool
	// TimelineInterval is the sample period in retired instructions
	// (default timeline.DefaultInterval).
	TimelineInterval uint64
	// TimelineSamples bounds each campaign's sample buffer (default
	// timeline.DefaultMaxSamples); beyond it the sampler decimates.
	TimelineSamples int
	// StallSamples tunes the plateau detector: a stall mark fires after
	// this many consecutive samples without a new cover block (default
	// timeline.DefaultStallSamples).
	StallSamples int
	// Monitor, when set, receives wall-clock liveness events (samples,
	// marks, crashes, campaign completions) as the set runs — the embsan
	// monitor's SSE feed. Purely view-side: the canonical timeline and
	// campaign outcomes are unchanged with or without it.
	Monitor *Monitor
}

// FoundBug is one campaign finding attributed to a seeded bug.
type FoundBug struct {
	Firmware string
	BaseOS   string
	Arch     string
	Location string
	Fn       string
	Class    string // OOB Access / UAF / Double Free / Race
	Execs    int    // executions consumed when found
}

// Campaign is the outcome for one firmware.
type Campaign struct {
	Firmware *firmware.Firmware
	Stats    fuzz.Stats
	Found    []FoundBug
	Missed   []string // seeded bugs the campaign did not reach
	Corpus   [][]byte
	Raw      *fuzz.Result // full fuzzer output (for artifact persistence)

	// Observability extras, populated only when CampaignOptions.Trace /
	// .Metrics ask for them. Phases is a worker-local diagnostic — its
	// translate and snapshot components depend on how warm the pooled
	// machine's TB cache was — so none of these fields participate in
	// campaign-result comparisons.
	Trace        []obs.Event
	TraceDropped uint64
	Phases       obs.Phases

	// Engine is the machine-counter delta accumulated by this campaign:
	// dispatch, chaining, inline and shared-cache accounting included. Like
	// Phases it is a worker-local diagnostic (shared-cache hits depend on
	// which worker translated first) and participates in no campaign-result
	// comparison; the bench recorder reads it to report dispatches elided.
	Engine emu.Counters

	// Timeline extras, populated when CampaignOptions.Timeline asks for
	// them. Unlike Phases these DO uphold the determinism contract: the
	// samples are cut on the virtual clock from campaign-relative counter
	// deltas, so a campaign's timeline is identical on every worker count
	// and participates in the byte-identity oracles.
	Timeline         []timeline.Sample
	TimelineMarks    []timeline.Mark
	TimelineInterval uint64
}

// warmed is one worker-held firmware deployment: booted once, ground-truth
// labelled, snapshotted. Campaigns rewind it with Restore + Reseed instead
// of re-constructing and re-booting the machine — the snapshot-pooling that
// makes the parallel executor fast. A warmed value is private to one
// scheduler worker (sched's one-Machine-per-goroutine invariant).
type warmed struct {
	inst     *core.Instance
	sigToBug map[string]*firmware.Bug
	reach    static.ReachReport // static coverage upper bound, computed once
	leaders  []uint32           // reachable block-leader PCs (the bound's members)
	proof    absint.Stats       // static safety-proof tally, computed once
}

// inlineHotDispatches is the profiler threshold for arming the in-template
// shadow fast path: access sites that dispatched at least this often during
// the warm-up workload (boot + trigger labelling) are considered hot. The
// warm-up is deliberately short, so the bar is low: a site a single trigger
// replay crosses a handful of times is a loop body or shared parser path
// that a 30k-exec campaign will cross millions of times. The threshold only
// trades speed — unarmed sites dispatch normally.
const inlineHotDispatches = 4

// warmUp boots fw and labels its seeded bugs. The machine seed depends only
// on the base seed, so every worker warming the same firmware reaches the
// bit-identical snapshot. Unless noFast asks for the pre-fast-path engine,
// the warm-up workload is profiled and the hottest dispatch sites are armed
// with the inline shadow fast path — a pure function of (fw, baseSeed,
// elide), so pooled machines on every worker arm the same sites.
func warmUp(fw *firmware.Firmware, baseSeed int64, elide, noFast, noGuide bool) (*warmed, error) {
	sans := []string{"kasan"}
	for _, b := range fw.Bugs {
		if b.NeedsKCSAN {
			sans = []string{"kasan", "kcsan"}
			break
		}
	}
	// Start from the firmware's own machine config (rehosted images carry
	// their synthesized bridge device there) and layer the campaign tuning
	// on top.
	mcfg := fw.Machine
	mcfg.MaxHarts = 2
	mcfg.Seed = uint64(baseSeed) + 1
	mcfg.NoChain = noFast
	mcfg.NoSharedTB = noFast
	inst, err := core.New(core.Config{
		Image:          fw.Image,
		Sanitizers:     sans,
		StopOnReport:   true,
		Machine:        mcfg,
		KCSAN:          san.KCSANConfig{SampleInterval: 13, Delay: 600},
		Elide:          elide,
		NoRaceGuidance: noGuide,
	})
	if err != nil {
		return nil, fmt.Errorf("exps: %s: %w", fw.Name, err)
	}
	var prof *obs.Profile
	if !noFast {
		prof = obs.NewProfile()
		inst.Machine.SetProfile(prof)
	}
	if err := inst.Boot(200_000_000); err != nil {
		return nil, fmt.Errorf("exps: %s: %w", fw.Name, err)
	}
	inst.Snapshot()

	// Ground-truth labelling: replay each seeded trigger once to learn the
	// crash signature it produces — this is how campaign findings are
	// attributed even on stripped firmware, where reports carry raw
	// addresses instead of function names.
	w := &warmed{inst: inst, sigToBug: map[string]*firmware.Bug{}}
	// The static reachability report bounds what any campaign on this
	// firmware can cover; computed once here so every runOne shares it.
	if an, err := static.Analyze(fw.Image); err == nil {
		w.reach = an.Reach()
		w.leaders = an.ReachableLeaders()
		// The safety-proof tally feeds the stats table's `prove` column. It
		// is a property of the image alone, so it is computed here once.
		w.proof = absint.Analyze(an, absint.Options{}).Stats
	}
	for i := range fw.Bugs {
		b := &fw.Bugs[i]
		if b.NeedsKCSAN {
			continue // races are attributed by function name below
		}
		inst.Restore()
		res := inst.Exec(b.Trigger, 100_000_000)
		if len(res.Reports) > 0 {
			w.sigToBug[res.Reports[0].Signature()] = b
		}
	}
	if prof != nil {
		// The warm-up workload's dispatch-cost table picks the inline
		// fast-path candidates; campaigns then run unprofiled.
		inst.Machine.SetProfile(nil)
		var hot []uint32
		for _, site := range prof.DispatchSites(nil) {
			if site.Count >= inlineHotDispatches {
				hot = append(hot, site.PC)
			}
		}
		if len(hot) > 0 {
			inst.EnableInlineFastPath(hot)
		}
	}
	return w, nil
}

// runExtras carries the optional observability attachments of one campaign
// run: the worker's timeline sampler (already Reset for this job) and a
// wall-clock crash notification hook for the monitor.
type runExtras struct {
	tl      *timeline.Sampler
	onCrash func(*fuzz.Crash)
}

// runOne executes one campaign with the given derived seed on the warmed
// deployment. The Restore+Reseed pair makes the outcome a pure function of
// (firmware, base seed, campaign seed, execs) — independent of whatever
// ran on the pooled machine before.
func (w *warmed) runOne(fw *firmware.Firmware, seed int64, execs int) (*Campaign, error) {
	return w.runX(fw, seed, execs, runExtras{})
}

// runX is runOne with observability extras attached.
func (w *warmed) runX(fw *firmware.Firmware, seed int64, execs int, x runExtras) (*Campaign, error) {
	inst := w.inst
	before := inst.Machine.Counters()
	inst.Restore()
	inst.Machine.Reseed(uint64(seed))
	if x.tl != nil {
		// The timeline samples translate/chain counters into a
		// determinism-bearing artifact, so the pooled machine's TB cache
		// and exit chains must start cold: a second campaign on a warm
		// machine would otherwise translate less and chain more than the
		// same campaign run first, and the merged timeline would depend on
		// worker count. Guest-visible outcomes are unchanged.
		inst.Machine.FlushTBs()
	}

	fcfg := fuzz.Config{
		Instance:          inst,
		Seeds:             fw.Seeds,
		Seed:              seed,
		MaxExecs:          execs,
		ReachableLeaders:  w.leaders,
		ProvenAccesses:    w.proof.ReachableProven,
		ReachableAccesses: w.proof.ReachableAccesses,
	}
	if fw.Frontend == firmware.FrontendSyscall {
		fcfg.Frontend = fuzz.FrontendSyscall
		fcfg.Syscalls = len(fw.Syscalls)
	} else {
		fcfg.Frontend = fuzz.FrontendBytes
		// Byte inputs are cheap to execute and the parsers gate on multiple
		// header bytes; give the mutation-driven frontend a larger budget.
		fcfg.MaxExecs = execs * 2
	}
	fcfg.Timeline = x.tl
	f, err := fuzz.New(fcfg)
	if err != nil {
		return nil, err
	}
	f.OnCrash = x.onCrash
	res := f.Run()

	c := &Campaign{Firmware: fw, Stats: res.Stats, Corpus: res.Corpus, Raw: res,
		Engine: inst.Machine.Counters().Sub(before)}
	if x.tl != nil {
		c.Timeline = x.tl.Samples()
		c.TimelineMarks = x.tl.Marks()
		c.TimelineInterval = x.tl.Interval()
	}
	foundFns := map[string]bool{}
	for _, crash := range res.Crashes {
		if crash.Report == nil {
			continue
		}
		seeded := w.sigToBug[crash.Signature]
		if seeded == nil {
			seeded = seededBug(fw, locationFn(crash.Report.Location))
		}
		if seeded == nil || foundFns[seeded.Fn] {
			continue
		}
		foundFns[seeded.Fn] = true
		c.Found = append(c.Found, FoundBug{
			Firmware: fw.Name, BaseOS: fw.BaseOS, Arch: fw.Arch.String(),
			Location: seeded.Location, Fn: seeded.Fn,
			Class: crash.Report.Bug.Short(), Execs: crash.Execs,
		})
	}
	for _, b := range fw.Bugs {
		if !foundFns[b.Fn] {
			c.Missed = append(c.Missed, b.Fn)
		}
	}
	sort.Slice(c.Found, func(i, j int) bool { return c.Found[i].Fn < c.Found[j].Fn })
	return c, nil
}

// RunCampaign fuzzes one firmware with EMBSAN attached, exactly like the
// paper's evaluation: Syzkaller-style programs for Embedded Linux,
// Tardis-style byte inputs for the RTOS firmware, KCSAN enabled where the
// firmware can race. It is the serial single-campaign path; the result
// equals campaign index 0 of a set run.
func RunCampaign(fw *firmware.Firmware, opts CampaignOptions) (*Campaign, error) {
	if opts.Execs == 0 {
		opts.Execs = 30000
	}
	w, err := warmUp(fw, opts.Seed, opts.Elide, opts.NoFastPaths, opts.NoRaceGuidance)
	if err != nil {
		return nil, err
	}
	if opts.Forensics {
		w.inst.ArmForensics(true)
	}
	var x runExtras
	if opts.Timeline {
		x.tl = timeline.NewSampler(opts.TimelineInterval, opts.TimelineSamples)
		x.tl.Reset(nil, timeline.DetectOptions{StallSamples: opts.StallSamples})
	}
	return w.runX(fw, sched.Split(opts.Seed, 0), opts.Execs, x)
}

// CampaignRun is the merged outcome of a scheduled campaign set.
type CampaignRun struct {
	Campaigns []*Campaign // in campaign-index order
	Workers   []sched.WorkerStats
}

// RunCampaignSet fuzzes every firmware in fws (nil = all Table 1 firmware)
// opts.Repeats times each on the parallel executor. Campaign index i covers
// firmware i/Repeats with seed sched.Split(opts.Seed, i); the merged result
// is bit-identical for every worker count.
func RunCampaignSet(fws []*firmware.Firmware, opts CampaignOptions) (*CampaignRun, error) {
	if opts.Execs == 0 {
		opts.Execs = 30000
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 1
	}
	if fws == nil {
		var err error
		fws, err = firmware.BuildAll()
		if err != nil {
			return nil, err
		}
	}
	n := len(fws) * opts.Repeats
	out := make([]*Campaign, n)
	ws, err := sched.Run(sched.Options{Workers: opts.Workers}, n, func(w *sched.Worker, i int) error {
		fw := fws[i/opts.Repeats]
		// Elided and non-elided deployments of the same firmware must not
		// share a pooled machine: their texts and probe sets differ.
		key := fw.Name
		if opts.Elide {
			key += "+elide"
		}
		if opts.NoFastPaths {
			key += "+nofp"
		}
		if opts.NoRaceGuidance {
			key += "+uniform"
		}
		if opts.Forensics {
			// Forensic arming stamps chunk backtraces as the campaign runs;
			// a pooled machine must not leak stamped chunks into an unarmed
			// campaign of the same firmware (or vice versa).
			key += "+forensics"
		}
		wm, err := sched.Pooled(w, key, func() (*warmed, error) {
			return warmUp(fw, opts.Seed, opts.Elide, opts.NoFastPaths, opts.NoRaceGuidance)
		})
		if err != nil {
			return err
		}
		var ring *obs.Ring
		if opts.Trace {
			events := opts.TraceEvents
			if events <= 0 {
				events = obs.DefaultRingEvents
			}
			ring = w.TraceRing(events)
			ring.Reset()
			wm.inst.SetTrace(ring)
		}
		if opts.Forensics {
			wm.inst.ArmForensics(true)
		}
		var x runExtras
		if opts.Timeline {
			x.tl = w.TimelineSampler(opts.TimelineInterval, opts.TimelineSamples)
			x.tl.Reset(ring, timeline.DetectOptions{StallSamples: opts.StallSamples})
			if m := opts.Monitor; m != nil {
				idx, name := i, fw.Name
				x.tl.SetLive(func(s timeline.Sample) { m.publishSample(idx, name, s) })
				x.tl.SetLiveMark(func(mk timeline.Mark) { m.publishMark(idx, name, mk) })
			}
		}
		if m := opts.Monitor; m != nil {
			idx, name := i, fw.Name
			x.onCrash = func(cr *fuzz.Crash) { m.publishCrash(idx, name, cr) }
		}
		c, err := wm.runX(fw, sched.Split(opts.Seed, i), opts.Execs, x)
		if opts.Forensics {
			wm.inst.ArmForensics(false)
		}
		if ring != nil {
			wm.inst.SetTrace(nil)
		}
		if err != nil {
			return err
		}
		out[i] = c
		if ring != nil {
			c.Trace = ring.Events()
			c.TraceDropped = ring.Dropped()
		}
		if opts.Trace || opts.Metrics {
			c.Phases = obs.Phases{
				Translate: c.Engine.TransInsts,
				Execute:   c.Stats.Insts,
				Sanitize:  c.Engine.SanckTraps + c.Engine.MemProbes,
				Snapshot:  c.Engine.RestorePages,
			}
		}
		for _, crash := range c.Raw.Crashes {
			if crash.Report != nil {
				crash.Report.Worker = w.ID()
			}
		}
		ctr := w.Inst()
		ctr.Jobs.Inc()
		ctr.Execs.Add(uint64(c.Stats.Execs))
		ctr.Resets.Add(c.Engine.Restores)
		ctr.TBHits.Add(c.Engine.TBHits)
		ctr.Reports.Add(uint64(len(c.Raw.Crashes)))
		for _, crash := range c.Raw.Crashes {
			if r := crash.Report; r != nil {
				ctr.Frames.Add(uint64(len(r.Stack) + len(r.AllocStack) + len(r.FreeStack)))
			}
		}
		if m := opts.Monitor; m != nil {
			m.publishCampaign(i, c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &CampaignRun{Campaigns: out, Workers: ws}, nil
}

// RunAllCampaigns fuzzes every Table 1 firmware on the parallel executor.
func RunAllCampaigns(opts CampaignOptions) ([]*Campaign, error) {
	run, err := RunCampaignSet(nil, opts)
	if err != nil {
		return nil, err
	}
	return run.Campaigns, nil
}

func locationFn(loc string) string {
	if i := strings.IndexByte(loc, '+'); i > 0 {
		return loc[:i]
	}
	return loc
}

func seededBug(fw *firmware.Firmware, fn string) *firmware.Bug {
	for i := range fw.Bugs {
		if fw.Bugs[i].Fn == fn {
			return &fw.Bugs[i]
		}
	}
	return nil
}

// Table 3 classes, in the paper's column order.
var table3Classes = []string{"OOB Access", "UAF", "Double Free", "Race"}

// FormatTable3 renders the per-firmware classification of found bugs.
func FormatTable3(cs []*Campaign) string {
	var b strings.Builder
	b.WriteString("Table 3: classification of new bugs found by EMBSAN\n")
	fmt.Fprintf(&b, "%-24s %-11s %-5s %-12s %-5s\n", "Firmware", "OOB Access", "UAF", "Double Free", "Race")
	total := 0
	for _, c := range cs {
		counts := map[string]int{}
		for _, f := range c.Found {
			counts[f.Class]++
			total++
		}
		cell := func(class string) string {
			if n := counts[class]; n > 0 {
				return fmt.Sprintf("%d", n)
			}
			return ""
		}
		fmt.Fprintf(&b, "%-24s %-11s %-5s %-12s %-5s\n", c.Firmware.Name,
			cell("OOB Access"), cell("UAF"), cell("Double Free"), cell("Race"))
	}
	fmt.Fprintf(&b, "Total: %d bugs\n", total)
	return b.String()
}

// FormatTable4 renders the full bug list.
func FormatTable4(cs []*Campaign) string {
	var b strings.Builder
	b.WriteString("Table 4: previously unknown bugs found during fuzzing\n")
	fmt.Fprintf(&b, "%-24s %-15s %-8s %-36s %-12s\n", "Firmware", "Base OS", "Arch", "Location", "Bug Type")
	for _, c := range cs {
		for _, f := range c.Found {
			fmt.Fprintf(&b, "%-24s %-15s %-8s %-36s %-12s\n",
				f.Firmware, f.BaseOS, f.Arch, f.Location, f.Class)
		}
	}
	return b.String()
}

// JobTraces collects the campaigns' captured event streams in campaign-index
// order — the canonical merged trace the exporters consume.
func JobTraces(cs []*Campaign) []obs.JobTrace {
	var out []obs.JobTrace
	for i, c := range cs {
		if c == nil || len(c.Trace) == 0 {
			continue
		}
		out = append(out, obs.JobTrace{ID: i, Events: c.Trace, Dropped: c.TraceDropped})
	}
	return out
}

// JobTimelines collects the campaigns' sampled timelines in campaign-index
// order — the canonical merged timeline the EMTL codec and the exporters
// consume. Byte-identical across worker counts because each campaign's
// samples are.
func JobTimelines(cs []*Campaign) []timeline.JobTimeline {
	var out []timeline.JobTimeline
	for i, c := range cs {
		if c == nil || len(c.Timeline) == 0 {
			continue
		}
		out = append(out, timeline.JobTimeline{
			ID: i, Interval: c.TimelineInterval,
			Samples: c.Timeline, Marks: c.TimelineMarks,
		})
	}
	return out
}

// wallClockRates matches the padded throughput tokens FormatCampaignStats
// renders from wall-clock worker lifetimes ("  123.4/s", and the "-/s" it
// prints for a zero lifetime). The "execs/s" column header has no digit
// before the slash, so it survives masking.
var wallClockRates = regexp.MustCompile(` *[0-9.\-]+/s`)

// MaskWallClock replaces every wall-clock throughput token in a formatted
// stats table with a constant so byte-identity oracles can compare outputs
// across runs and worker counts: throughput is real time, everything else
// in the table is virtual and deterministic.
func MaskWallClock(s string) string {
	return wallClockRates.ReplaceAllString(s, " -/s")
}

// FormatCampaignStats summarises fuzzing effort, and — when the campaigns
// ran on the parallel executor — the per-worker pool accounting. When any
// campaign carries a virtual-time phase breakdown (CampaignOptions.Trace or
// .Metrics), per-phase columns are appended; when any campaign carries a
// sampled timeline, a stall@ column reports the virtual clock of its first
// detected coverage plateau. Only the worker table's execs/s column reads
// wall clock — byte-identity oracles mask it with MaskWallClock; every
// other cell is deterministic.
func FormatCampaignStats(cs []*Campaign, workers ...sched.WorkerStats) string {
	phases := false
	stalls := false
	for _, c := range cs {
		if c.Phases.Any() {
			phases = true
		}
		if len(c.Timeline) > 0 {
			stalls = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %7s %7s %8s %7s", "Firmware", "execs", "corpus", "blocks", "cover", "prove", "found", "missed")
	if phases {
		fmt.Fprintf(&b, " %10s %12s %10s %9s", "translate", "execute", "sanitize", "snapshot")
	}
	if stalls {
		fmt.Fprintf(&b, " %12s", "stall@")
	}
	b.WriteString("\n")
	for _, c := range cs {
		cover := "-"
		if frac, ok := c.Stats.Coverage(); ok {
			cover = fmt.Sprintf("%.1f%%", frac*100)
		}
		prove := "-"
		if frac, ok := c.Stats.ProofDensity(); ok {
			prove = fmt.Sprintf("%.1f%%", frac*100)
		}
		fmt.Fprintf(&b, "%-24s %8d %8d %8d %7s %7s %8d %7d", c.Firmware.Name,
			c.Stats.Execs, c.Stats.CorpusSize, c.Stats.CoverBlocks, cover, prove, len(c.Found), len(c.Missed))
		if phases {
			fmt.Fprintf(&b, " %10d %12d %10d %9d",
				c.Phases.Translate, c.Phases.Execute, c.Phases.Sanitize, c.Phases.Snapshot)
		}
		if stalls {
			cell := "-"
			if at, ok := timeline.FirstStall(c.TimelineMarks); ok {
				cell = fmt.Sprintf("%d", at)
			}
			fmt.Fprintf(&b, " %12s", cell)
		}
		b.WriteString("\n")
	}
	if len(workers) > 0 {
		fmt.Fprintf(&b, "\nWorker pool (%d workers):\n", len(workers))
		fmt.Fprintf(&b, "%-8s %9s %10s %9s %12s %8s %10s\n", "worker", "jobs", "execs", "resets", "tb-hits", "reports", "execs/s")
		rate := func(c sched.Counters) string {
			if c.Elapsed <= 0 {
				return "-/s"
			}
			return fmt.Sprintf("%.1f/s", float64(c.Execs)/c.Elapsed.Seconds())
		}
		for _, w := range workers {
			fmt.Fprintf(&b, "%-8d %9d %10d %9d %12d %8d %10s\n",
				w.Worker, w.Jobs, w.Execs, w.Resets, w.TBHits, w.Reports, rate(w.Counters))
		}
		t := sched.MergeStats(workers)
		fmt.Fprintf(&b, "%-8s %9d %10d %9d %12d %8d %10s\n", "total", t.Jobs, t.Execs, t.Resets, t.TBHits, t.Reports, rate(t))
	}
	return b.String()
}
