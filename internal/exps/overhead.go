package exps

import (
	"fmt"
	"strings"
	"time"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/elinux"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/gabi"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// OverheadOptions tunes the Figure 2 measurement.
type OverheadOptions struct {
	Programs int // workload programs per firmware (default 16)
	Repeats  int // measurement repetitions, best-of (default 3)
	Seed     int64
}

// Overhead configuration labels (the Figure 2 series).
const (
	CfgBare        = "bare"
	CfgEmbsanKASAN = "embsan-kasan"
	CfgNativeKASAN = "native-kasan"
	CfgEmbsanKCSAN = "embsan-kcsan"
	CfgNativeKCSAN = "native-kcsan"
)

// OverheadRow is the measurement for one firmware.
type OverheadRow struct {
	Firmware string
	BaseOS   string
	Arch     string
	InstMode string
	Bare     time.Duration
	Slowdown map[string]float64 // config -> time(config)/time(bare)
}

// RunOverhead measures the runtime overhead of every sanitizer
// configuration on the named firmware (Figure 2). The workload is a fixed
// benign corpus replayed under each configuration; the natively-sanitized
// baselines run the same corpus on rebuilt images.
func RunOverhead(names []string, opts OverheadOptions) ([]OverheadRow, error) {
	if opts.Programs == 0 {
		opts.Programs = 16
	}
	if opts.Repeats == 0 {
		opts.Repeats = 3
	}
	var rows []OverheadRow
	for _, name := range names {
		row, err := overheadFor(name, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func overheadFor(name string, opts OverheadOptions) (*OverheadRow, error) {
	table1, err := firmware.Build(name)
	if err != nil {
		return nil, err
	}
	workload := buildWorkload(table1, opts)

	row := &OverheadRow{
		Firmware: name, BaseOS: table1.BaseOS, Arch: table1.Arch.String(),
		InstMode: table1.InstMode, Slowdown: map[string]float64{},
	}

	// Bare: uninstrumented build, no sanitizer attached.
	bare, err := buildVariantOrSame(name, table1, kasm.SanNone)
	if err != nil {
		return nil, err
	}
	bareTime, err := measure(bare, workload, nil, opts.Repeats)
	if err != nil {
		return nil, fmt.Errorf("exps: overhead %s bare: %w", name, err)
	}
	row.Bare = bareTime

	addCfg := func(label string, fw *firmware.Firmware, sans []string) error {
		t, err := measure(fw, workload, sans, opts.Repeats)
		if err != nil {
			return fmt.Errorf("exps: overhead %s %s: %w", name, label, err)
		}
		row.Slowdown[label] = float64(t) / float64(bareTime)
		return nil
	}

	// EMBSAN KASAN on the firmware's Table 1 instrumentation mode.
	if err := addCfg(CfgEmbsanKASAN, table1, []string{"kasan"}); err != nil {
		return nil, err
	}
	// EMBSAN KCSAN (Embedded Linux firmware, as in the paper).
	if table1.BaseOS == "Embedded Linux" {
		if err := addCfg(CfgEmbsanKCSAN, table1, []string{"kcsan"}); err != nil {
			return nil, err
		}
	}
	// Native baselines need source: rebuild with in-guest sanitizers.
	if table1.SourceOpen {
		nk, err := firmware.BuildVariant(name, kasm.SanNativeKASAN)
		if err != nil {
			return nil, err
		}
		if err := addCfg(CfgNativeKASAN, nk, nil); err != nil {
			return nil, err
		}
		if table1.BaseOS == "Embedded Linux" {
			nc, err := firmware.BuildVariant(name, kasm.SanNativeKCSAN)
			if err != nil {
				return nil, err
			}
			if err := addCfg(CfgNativeKCSAN, nc, nil); err != nil {
				return nil, err
			}
		}
	}
	return row, nil
}

func buildVariantOrSame(name string, table1 *firmware.Firmware, mode kasm.SanitizeMode) (*firmware.Firmware, error) {
	if table1.Image.Meta.Sanitize == mode {
		return table1, nil
	}
	return firmware.BuildVariant(name, mode)
}

// buildWorkload produces the deterministic benign corpus the paper calls
// "the merged corpus acquired after completing the previous experiment".
func buildWorkload(fw *firmware.Firmware, opts OverheadOptions) [][]byte {
	var out [][]byte
	if fw.Frontend == firmware.FrontendSyscall {
		benign := uint32(len(elinux.BenignSyscalls))
		for i := 0; i < opts.Programs; i++ {
			var p gabi.Prog
			for j := 0; j < 6; j++ {
				k := uint32(i*6 + j)
				p = append(p, gabi.Record{
					NR:    k % benign,
					NArgs: 4,
					Args:  [4]uint32{k * 13 % 200, k % 7, k % 11, k % 5},
				})
			}
			out = append(out, p.Encode())
		}
		return out
	}
	// Byte frontends: pad the seed requests into heavier service loads so
	// the measurement is not dominated by executor polling.
	for i := 0; i < opts.Programs; i++ {
		seed := fw.Seeds[i%len(fw.Seeds)]
		in := append([]byte(nil), seed...)
		for len(in) < 96 {
			in = append(in, byte(7*len(in)))
		}
		out = append(out, in)
	}
	return out
}

// measure boots the firmware in the given configuration and times the
// workload replay (best of n repetitions).
func measure(fw *firmware.Firmware, workload [][]byte, sans []string, repeats int) (time.Duration, error) {
	inst, err := core.New(core.Config{
		Image:       fw.Image,
		Sanitizers:  sans,
		NoSanitizer: len(sans) == 0,
		Machine:     emu.Config{MaxHarts: 2},
		KCSAN:       san.KCSANConfig{SampleInterval: 20, Delay: 2000},
	})
	if err != nil {
		return 0, err
	}
	if err := inst.Boot(500_000_000); err != nil {
		return 0, err
	}
	inst.Snapshot()

	// The corpus replays on the live system (as in the paper) — no snapshot
	// restore between inputs, so the measurement reflects execution cost,
	// not reset cost. The workload is benign and state-neutral.
	replay := func() error {
		for _, input := range workload {
			res := inst.Exec(input, 100_000_000)
			if !res.Done {
				return fmt.Errorf("workload input did not complete (stop=%v fault=%v)", res.Stop, res.Fault)
			}
		}
		return nil
	}
	// Warm the translation caches once before timing.
	if err := replay(); err != nil {
		return 0, err
	}
	// Time adaptively: repeat the workload until each sample is long
	// enough to dominate timer noise, then take the best of n.
	const minSample = 25 * time.Millisecond
	best := time.Duration(0)
	for r := 0; r < repeats; r++ {
		iters := 0
		start := time.Now()
		for {
			if err := replay(); err != nil {
				return 0, err
			}
			iters++
			if time.Since(start) >= minSample {
				break
			}
		}
		per := time.Since(start) / time.Duration(iters)
		if best == 0 || per < best {
			best = per
		}
	}
	return best, nil
}

// FormatFigure2 renders the overhead series with the paper's groupings.
func FormatFigure2(rows []OverheadRow) string {
	var b strings.Builder
	b.WriteString("Figure 2: runtime overhead (slowdown vs. uninstrumented emulation)\n")
	fmt.Fprintf(&b, "%-24s %-15s %-8s %-9s %12s %12s %12s %12s\n",
		"Firmware", "Base OS", "Arch", "Mode", CfgEmbsanKASAN, CfgNativeKASAN, CfgEmbsanKCSAN, CfgNativeKCSAN)
	cell := func(r OverheadRow, cfg string) string {
		if v, ok := r.Slowdown[cfg]; ok {
			return fmt.Sprintf("%.2fx", v)
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-15s %-8s %-9s %12s %12s %12s %12s\n",
			r.Firmware, r.BaseOS, r.Arch, r.InstMode,
			cell(r, CfgEmbsanKASAN), cell(r, CfgNativeKASAN),
			cell(r, CfgEmbsanKCSAN), cell(r, CfgNativeKCSAN))
	}

	// Grouped ranges, as the paper reports them.
	b.WriteString("\nGrouped slowdown ranges:\n")
	groups := []struct {
		label  string
		filter func(OverheadRow) bool
		cfg    string
	}{
		{"EMBSAN-C KASAN (Embedded Linux)", func(r OverheadRow) bool {
			return r.BaseOS == "Embedded Linux" && r.InstMode == "EmbSan-C"
		}, CfgEmbsanKASAN},
		{"EMBSAN-D KASAN (Embedded Linux)", func(r OverheadRow) bool {
			return r.BaseOS == "Embedded Linux" && r.InstMode == "EmbSan-D"
		}, CfgEmbsanKASAN},
		{"native KASAN  (Embedded Linux)", func(r OverheadRow) bool {
			return r.BaseOS == "Embedded Linux"
		}, CfgNativeKASAN},
		{"EMBSAN KCSAN  (Embedded Linux)", func(r OverheadRow) bool {
			return r.BaseOS == "Embedded Linux"
		}, CfgEmbsanKCSAN},
		{"native KCSAN  (Embedded Linux)", func(r OverheadRow) bool {
			return r.BaseOS == "Embedded Linux"
		}, CfgNativeKCSAN},
		{"EMBSAN KASAN  (LiteOS/FreeRTOS/VxWorks)", func(r OverheadRow) bool {
			return r.BaseOS != "Embedded Linux"
		}, CfgEmbsanKASAN},
	}
	for _, g := range groups {
		lo, hi := 0.0, 0.0
		for _, r := range rows {
			if !g.filter(r) {
				continue
			}
			v, ok := r.Slowdown[g.cfg]
			if !ok {
				continue
			}
			if lo == 0 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 {
			fmt.Fprintf(&b, "  %-42s %.1fx - %.1fx\n", g.label, lo, hi)
		}
	}
	return b.String()
}
