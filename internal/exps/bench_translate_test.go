package exps

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTranslateBenchRecordAndCheck exercises the record → serialise →
// validate cycle on one firmware with a small replay budget. Timing values
// are machine-dependent, so the test asserts structure and the counter
// invariants only — the speedup itself is the committed artefact's job.
func TestTranslateBenchRecordAndCheck(t *testing.T) {
	fws := buildSubset(t, "OpenWRT-armvirt")
	tb, err := RunTranslateBench(fws, TranslateBenchOptions{Execs: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema != TranslateBenchSchema || len(tb.Rows) != 1 {
		t.Fatalf("unexpected bench shape: %+v", tb)
	}
	row := tb.Rows[0]
	if row.BaseExecsPerSec <= 0 || row.FastExecsPerSec <= 0 {
		t.Errorf("non-positive throughput: %+v", row)
	}
	if row.ChainHits == 0 || row.DispatchesElided == 0 {
		t.Errorf("fast paths did not engage: %+v", row)
	}
	if row.ChainHitRate <= 0 || row.ChainHitRate > 1 {
		t.Errorf("chain-hit rate %v outside (0,1]", row.ChainHitRate)
	}

	data, err := json.MarshalIndent(tb, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTranslateBench(data, []string{"OpenWRT-armvirt"}); err != nil {
		t.Errorf("valid artefact rejected: %v", err)
	}
	if err := CheckTranslateBench(data, []string{"OpenWRT-armvirt", "InfiniTime"}); err == nil {
		t.Error("artefact missing a required firmware row was accepted")
	}
	stale := bytes.Replace(data, []byte(TranslateBenchSchema), []byte("embsan/bench-translate/v0"), 1)
	if err := CheckTranslateBench(stale, []string{"OpenWRT-armvirt"}); err == nil {
		t.Error("stale schema accepted")
	}
	if err := CheckTranslateBench([]byte("{"), nil); err == nil {
		t.Error("truncated JSON accepted")
	}
}
