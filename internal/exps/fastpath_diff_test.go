package exps

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"embsan/internal/emu"
)

// The translation-engine fast paths — TB exit chaining, the in-template
// shadow check and the process-global translation cache — are pure
// accelerations: they may only change how fast the machine gets through a
// block graph, never anything a campaign can observe. The tests in this file
// are the differential oracle for that contract. The slow reference is the
// same engine with CampaignOptions.NoFastPaths / emu.Config.{NoChain,
// NoSharedTB} set and no inline sites armed, i.e. the pre-fast-path
// dispatcher on every transfer.

// execDigest canonically serialises everything one execution exposes: the
// stop state, the retired-instruction count, the report signatures, and
// digests of guest RAM and of the sanitizer shadow. Fast and slow engines
// must agree on every field after every execution.
func execDigest(w *warmed, input []byte) string {
	inst := w.inst
	inst.Restore()
	res := inst.Exec(input, 100_000_000)
	ram, err := inst.Machine.ReadBytes(emu.NullGuardSize, inst.Machine.RAMSize()-emu.NullGuardSize)
	if err != nil {
		return "ram-unreadable: " + err.Error()
	}
	ramSum := sha256.Sum256(ram)
	var shadowSum [sha256.Size]byte
	if rt := inst.Runtime; rt != nil && rt.KASANEngine() != nil {
		shadowSum = sha256.Sum256(rt.KASANEngine().Shadow().Bytes())
	}
	var sigs strings.Builder
	for _, r := range res.Reports {
		sigs.WriteString(r.Signature())
		sigs.WriteByte(';')
	}
	return fmt.Sprintf("stop=%v done=%v code=%d insts=%d icnt=%d fault=%v reports=%s ram=%x shadow=%x",
		res.Stop, res.Done, res.DoneCode, res.Insts, inst.Machine.ICount(),
		inst.Machine.Fault(), sigs.String(), ramSum, shadowSum)
}

// TestFastPathLockstepOracle runs the fast and the slow engine in lockstep
// over the same deterministic workload — every seeded bug trigger and every
// corpus seed, one Restore+Exec each — and requires byte-identical execution
// digests at every step. The firmware picks cover all three deployment
// shapes: EMBSAN-C (inline SANCK sites), EMBSAN-D (inline Mem-probe sites)
// and an RTOS image.
func TestFastPathLockstepOracle(t *testing.T) {
	for _, name := range []string{"OpenWRT-armvirt", "OpenWRT-bcm63xx", "InfiniTime"} {
		t.Run(name, func(t *testing.T) {
			fw := buildSubset(t, name)[0]
			fast, err := warmUp(fw, 7, false, false, false)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := warmUp(fw, 7, false, true, false)
			if err != nil {
				t.Fatal(err)
			}
			before := fast.inst.Machine.Counters()
			step := 0
			replay := func(input []byte) {
				step++
				f, s := execDigest(fast, input), execDigest(slow, input)
				if f != s {
					t.Fatalf("step %d diverged:\n--- fast ---\n%s\n--- slow ---\n%s", step, f, s)
				}
			}
			for _, b := range fw.Bugs {
				if b.NeedsKCSAN {
					continue // racing triggers depend on watchpoint timing
				}
				replay(b.Trigger)
			}
			for _, s := range fw.Seeds {
				replay(s)
			}
			d := fast.inst.Machine.Counters().Sub(before)
			if d.ChainHits == 0 {
				t.Errorf("fast engine followed no exit chains over %d executions (%d dispatches)",
					step, d.Dispatches)
			}
			slowD := slow.inst.Machine.Counters()
			if slowD.ChainHits != 0 || slowD.InlineFast != 0 || slowD.SharedTBHits != 0 {
				t.Errorf("slow engine engaged fast paths: chain=%d inline=%d shared=%d",
					slowD.ChainHits, slowD.InlineFast, slowD.SharedTBHits)
			}
		})
	}
}

// TestFastPathInlineEngages: on a pure-KASAN deployment, the warm-up
// profiler must actually arm hot access sites and the armed template must
// settle clean dispatches without the delegate — otherwise the inline fast
// path silently never runs and the lockstep oracle above proves nothing
// about it.
func TestFastPathInlineEngages(t *testing.T) {
	var inline uint64
	for _, name := range []string{"OpenWRT-armvirt", "OpenWRT-bcm63xx"} {
		fw := buildSubset(t, name)[0]
		fast, err := warmUp(fw, 7, false, false, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range fw.Seeds {
			fast.inst.Restore()
			fast.inst.Exec(s, 100_000_000)
		}
		inline += fast.inst.Machine.Counters().InlineFast
	}
	if inline == 0 {
		t.Error("no inline fast-path hit on any pure-KASAN deployment")
	}
}

// TestFastPathCampaignDiffSmoke is the always-on campaign-level oracle: two
// firmware, full tracing, fast vs slow, byte-identical fingerprints, bug
// tables and per-campaign event streams. The registry-wide version below
// covers the remaining firmware without -short.
func TestFastPathCampaignDiffSmoke(t *testing.T) {
	fws := buildSubset(t, "InfiniTime", "OpenWRT-bcm63xx")
	base := CampaignOptions{Execs: 350, Seed: 3, Repeats: 2, Workers: 1, Trace: true, Metrics: true}

	fast := base
	runFast, err := RunCampaignSet(fws, fast)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.NoFastPaths = true
	runSlow, err := RunCampaignSet(fws, slow)
	if err != nil {
		t.Fatal(err)
	}
	compareCampaignRuns(t, runFast.Campaigns, runSlow.Campaigns)

	var chained uint64
	for _, c := range runFast.Campaigns {
		chained += c.Engine.ChainHits
	}
	if chained == 0 {
		t.Error("fast campaigns followed no exit chains")
	}
	for _, c := range runSlow.Campaigns {
		e := c.Engine
		if e.ChainHits != 0 || e.InlineFast != 0 || e.InlineSlow != 0 || e.SharedTBHits != 0 {
			t.Errorf("%s: NoFastPaths campaign engaged fast paths: %+v", c.Firmware.Name, e)
		}
	}
}

// TestFastPathCampaignTablesIdentical is the registry-wide end-to-end
// oracle, the fast-path analogue of TestElideCampaignTablesIdentical: the
// full Table 3/4 campaigns with the fast paths on must reproduce the slow
// engine's tables byte for byte — same 41 bugs, same executions, same
// coverage.
func TestFastPathCampaignTablesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are long; run without -short")
	}
	opts := CampaignOptions{Execs: 30000, Seed: 7, Workers: 1, Metrics: true}
	runFast, err := RunCampaignSet(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NoFastPaths = true
	runSlow, err := RunCampaignSet(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range runFast.Campaigns {
		total += len(c.Found)
	}
	if total != 41 {
		t.Errorf("fast campaigns found %d bugs, want 41\n%s", total, FormatCampaignStats(runFast.Campaigns))
	}
	compareCampaignRuns(t, runFast.Campaigns, runSlow.Campaigns)
}

// compareCampaignRuns asserts that two campaign sets are observably
// identical: fingerprints (stats, findings, crashes, corpora), the rendered
// bug tables, the schedule-independent phase components and — when captured —
// the virtual-time event streams, event by event. The translate phase is
// deliberately exempt: it measures TB-cache warmth, which the fast paths
// exist to change.
func compareCampaignRuns(t *testing.T, fast, slow []*Campaign) {
	t.Helper()
	if f, s := campaignFingerprint(fast), campaignFingerprint(slow); f != s {
		t.Errorf("campaign fingerprints diverged:\n--- fast ---\n%s\n--- slow ---\n%s", f, s)
	}
	if f, s := FormatTable3(fast), FormatTable3(slow); f != s {
		t.Errorf("Table 3 diverged:\n--- fast ---\n%s\n--- slow ---\n%s", f, s)
	}
	if f, s := FormatTable4(fast), FormatTable4(slow); f != s {
		t.Errorf("Table 4 diverged:\n--- fast ---\n%s\n--- slow ---\n%s", f, s)
	}
	for i := range fast {
		fc, sc := fast[i], slow[i]
		if fc.Phases.Execute != sc.Phases.Execute ||
			fc.Phases.Sanitize != sc.Phases.Sanitize ||
			fc.Phases.Snapshot != sc.Phases.Snapshot {
			t.Errorf("campaign %d (%s): phases diverged: fast %+v, slow %+v",
				i, fc.Firmware.Name, fc.Phases, sc.Phases)
		}
		if fc.Engine.SanckTraps != sc.Engine.SanckTraps || fc.Engine.MemProbes != sc.Engine.MemProbes {
			t.Errorf("campaign %d (%s): dispatch accounting diverged: fast sanck=%d mem=%d, slow sanck=%d mem=%d",
				i, fc.Firmware.Name, fc.Engine.SanckTraps, fc.Engine.MemProbes,
				sc.Engine.SanckTraps, sc.Engine.MemProbes)
		}
		if len(fc.Trace) != len(sc.Trace) {
			t.Errorf("campaign %d (%s): %d fast events vs %d slow", i, fc.Firmware.Name, len(fc.Trace), len(sc.Trace))
			continue
		}
		for j := range fc.Trace {
			if fc.Trace[j] != sc.Trace[j] {
				t.Errorf("campaign %d (%s): event %d diverged: fast %+v, slow %+v",
					i, fc.Firmware.Name, j, fc.Trace[j], sc.Trace[j])
				break
			}
		}
	}
}
