package exps

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"embsan/internal/guest/firmware"
)

// campaignFingerprint canonically serialises everything a campaign
// produced: stats, the attributed findings, the deduplicated crash set and
// a digest of the corpus. Two runs merge identically iff their
// fingerprints are byte-identical.
func campaignFingerprint(cs []*Campaign) string {
	h := sha256.New()
	out := ""
	for i, c := range cs {
		fmt.Fprintf(h, "campaign %d %s\n", i, c.Firmware.Name)
		fmt.Fprintf(h, "stats %+v\n", c.Stats)
		for _, f := range c.Found {
			fmt.Fprintf(h, "found %+v\n", f)
		}
		for _, m := range c.Missed {
			fmt.Fprintf(h, "missed %s\n", m)
		}
		sigs := make([]string, 0, len(c.Raw.Crashes))
		for _, cr := range c.Raw.Crashes {
			sigs = append(sigs, fmt.Sprintf("%s execs=%d min=%x", cr.Signature, cr.Execs, cr.Minimized))
		}
		sort.Strings(sigs)
		for _, s := range sigs {
			fmt.Fprintf(h, "crash %s\n", s)
		}
		for _, in := range c.Corpus {
			h.Write(in)
			h.Write([]byte{0})
		}
		out += fmt.Sprintf("%s: execs=%d corpus=%d blocks=%d found=%d\n",
			c.Firmware.Name, c.Stats.Execs, c.Stats.CorpusSize, c.Stats.CoverBlocks, len(c.Found))
	}
	return fmt.Sprintf("%s%x", out, h.Sum(nil))
}

// TestCampaignDeterminismAcrossWorkers: the scheduler's merged stats and
// report sets are byte-identical at workers=1, workers=4 and
// workers=GOMAXPROCS — the bit-reproducibility contract of the seed
// splitting plus pooled snapshot/restore design.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	fws := buildSubset(t, "InfiniTime", "OpenWRT-bcm63xx")
	opts := CampaignOptions{Execs: 350, Seed: 3, Repeats: 2}

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	prints := make([]string, len(counts))
	for i, workers := range counts {
		opts.Workers = workers
		run, err := RunCampaignSet(fws, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(run.Campaigns) != len(fws)*opts.Repeats {
			t.Fatalf("workers=%d: %d campaigns, want %d", workers, len(run.Campaigns), len(fws)*opts.Repeats)
		}
		prints[i] = campaignFingerprint(run.Campaigns)
	}
	for i := 1; i < len(counts); i++ {
		if prints[i] != prints[0] {
			t.Errorf("workers=%d diverged from workers=%d:\n--- workers=%d ---\n%s\n--- workers=%d ---\n%s",
				counts[i], counts[0], counts[0], prints[0], counts[i], prints[i])
		}
	}
}

// TestCampaignRepeatsUseIndependentSeeds: repeated campaigns on one
// firmware get distinct derived seeds, so they explore differently (the
// whole point of seed splitting) while each remaining reproducible.
func TestCampaignRepeatsUseIndependentSeeds(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	run, err := RunCampaignSet(fws, CampaignOptions{Execs: 350, Seed: 3, Repeats: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := run.Campaigns[0], run.Campaigns[1]
	if campaignFingerprint([]*Campaign{a}) == campaignFingerprint([]*Campaign{b}) {
		t.Error("repeat campaigns produced identical outcomes; derived seeds look shared")
	}
}

// TestWorkerStatsAccounted: the pool surfaces non-trivial per-worker
// counters that add up to the merged campaign stats.
func TestWorkerStatsAccounted(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	run, err := RunCampaignSet(fws, CampaignOptions{Execs: 350, Seed: 3, Repeats: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantExecs uint64
	for _, c := range run.Campaigns {
		wantExecs += uint64(c.Stats.Execs)
	}
	var total uint64
	for _, w := range run.Workers {
		total += w.Execs
		if w.Jobs > 0 && w.Resets == 0 {
			t.Errorf("worker %d ran %d jobs with zero machine resets", w.Worker, w.Jobs)
		}
	}
	if total != wantExecs {
		t.Errorf("per-worker execs sum to %d, campaigns report %d", total, wantExecs)
	}
	if run.Workers[0].Jobs+run.Workers[1].Jobs != 3 {
		t.Errorf("jobs split %d/%d, want 3 total", run.Workers[0].Jobs, run.Workers[1].Jobs)
	}
	stats := FormatCampaignStats(run.Campaigns, run.Workers...)
	for _, want := range []string{"Worker pool (2 workers)", "tb-hits", "total"} {
		if !strings.Contains(stats, want) {
			t.Errorf("FormatCampaignStats missing %q:\n%s", want, stats)
		}
	}
}

func buildSubset(t *testing.T, names ...string) []*firmware.Firmware {
	t.Helper()
	var fws []*firmware.Firmware
	for _, n := range names {
		fw, err := firmware.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		fws = append(fws, fw)
	}
	return fws
}
