// Package exps is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section from the bundled firmware,
// sanitizer runtimes and fuzzers, and formats them the way the paper
// reports them. EXPERIMENTS.md records paper-vs-measured for each.
package exps

import (
	"fmt"
	"strings"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/elinux"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/gabi"
	"embsan/internal/kasm"
)

// Table2Row is one row of the known-bug detection matrix.
type Table2Row struct {
	Def         elinux.BugDef
	EmbsanC     bool
	EmbsanD     bool
	NativeKASAN bool
}

// RunTable2 replays the 25 syzbot-derived bug reproducers under EMBSAN-C,
// EMBSAN-D and the native (in-guest) KASAN baseline.
func RunTable2() ([]Table2Row, error) {
	type config struct {
		name string
		mode kasm.SanitizeMode
		san  bool // attach the host runtime
	}
	configs := []config{
		{"embsan-c", kasm.SanEmbsanC, true},
		{"embsan-d", kasm.SanNone, true},
		{"native", kasm.SanNativeKASAN, false},
	}

	// Build and boot the three kernels once; snapshot for per-bug replay.
	type prepared struct {
		inst *core.Instance
		fw   *elinux.Firmware
	}
	var preps []prepared
	for _, c := range configs {
		fw, err := firmware.BuildSyzbotCorpus(c.mode)
		if err != nil {
			return nil, fmt.Errorf("exps: table2 %s: %w", c.name, err)
		}
		inst, err := core.New(core.Config{
			Image:       fw.Image,
			Sanitizers:  []string{"kasan"},
			NoSanitizer: !c.san,
			Machine:     emu.Config{MaxHarts: 2},
		})
		if err != nil {
			return nil, fmt.Errorf("exps: table2 %s: %w", c.name, err)
		}
		if err := inst.Boot(200_000_000); err != nil {
			return nil, fmt.Errorf("exps: table2 %s: %w", c.name, err)
		}
		inst.Snapshot()
		preps = append(preps, prepared{inst, fw})
	}

	var rows []Table2Row
	for _, def := range elinux.Table2Bugs {
		row := Table2Row{Def: def}
		for i := range configs {
			p := preps[i]
			bug, ok := p.fw.BugByFn(def.Fn)
			if !ok {
				return nil, fmt.Errorf("exps: table2: %s missing from corpus", def.Fn)
			}
			p.inst.Restore()
			res := p.inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 50_000_000)
			detected := len(res.Reports) > 0
			switch i {
			case 0:
				row.EmbsanC = detected
			case 1:
				row.EmbsanD = detected
			case 2:
				row.NativeKASAN = detected
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the matrix like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: sanitizing capabilities on previously found bugs\n")
	fmt.Fprintf(&b, "%-20s %-10s %-26s %-9s %-9s %-6s\n",
		"Bug Type", "Kernel", "Location", "EmbSan-C", "EmbSan-D", "KASAN")
	yn := func(v bool) string {
		if v {
			return "Yes"
		}
		return "No"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-10s %-26s %-9s %-9s %-6s\n",
			table2TypeName(r.Def), r.Def.KernelVer, r.Def.Fn,
			yn(r.EmbsanC), yn(r.EmbsanD), yn(r.NativeKASAN))
	}
	return b.String()
}

func table2TypeName(d elinux.BugDef) string {
	switch d.Kind {
	case elinux.KindNullDeref:
		return "Null-pointer-deref"
	case elinux.KindUAFRead, elinux.KindUAFWrite:
		return "Use-after-free"
	default:
		return "Out-of-bounds"
	}
}
