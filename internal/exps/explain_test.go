package exps

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"embsan/internal/san"
)

// TestExplainSeededUAF replays the InfiniTime st7789_draw use-after-free
// trigger through the forensic pipeline and checks the reconstructed story
// against the known ground truth: the access reaches the driver through
// executor_loop → infinitime_dispatch → st7789_draw, the object was
// allocated and freed inside st7789_draw, and the timeline walks
// alloc → free → quarantine.
func TestExplainSeededUAF(t *testing.T) {
	fw := buildSubset(t, "InfiniTime")[0]
	res, err := ExplainReport(fw, ExplainOptions{BugFn: "st7789_draw", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Bug != san.BugUAF {
		t.Fatalf("bug = %v, want use-after-free", r.Bug)
	}
	if len(r.Stack) < 3 {
		t.Fatalf("access backtrace has %d frames, want >= 3:\n%s", len(r.Stack), res.Text)
	}
	if len(r.AllocStack) == 0 || len(r.FreeStack) == 0 {
		t.Fatalf("missing alloc/free backtraces:\n%s", res.Text)
	}
	// The known call chain must appear, innermost first, in the rendered
	// access backtrace.
	for _, fn := range []string{"st7789_draw", "infinitime_dispatch", "executor_loop"} {
		if !strings.Contains(res.Text, fn) {
			t.Errorf("report text missing %q:\n%s", fn, res.Text)
		}
	}
	access := strings.Index(res.Text, "Access backtrace:")
	dispatch := strings.Index(res.Text[access:], "infinitime_dispatch")
	loop := strings.Index(res.Text[access:], "executor_loop")
	if dispatch < 0 || loop < 0 || dispatch > loop {
		t.Errorf("access backtrace not in innermost-first order (dispatch@%d loop@%d):\n%s",
			dispatch, loop, res.Text)
	}
	// Timeline: the chunk's life must include its allocation, its free and
	// the quarantine transition, in that order.
	var seq []string
	for _, te := range r.Timeline {
		seq = append(seq, te.Event)
	}
	joined := strings.Join(seq, " ")
	for _, want := range []string{"alloc", "free", "quarantine"} {
		if !strings.Contains(joined, want) {
			t.Errorf("timeline %v missing %q", seq, want)
		}
	}
	if ai, fi := strings.Index(joined, "alloc"), strings.Index(joined, "free"); ai > fi {
		t.Errorf("timeline out of order: %v", seq)
	}
	for _, section := range []string{"Access backtrace:", "Allocation backtrace:", "Free backtrace:", "Object timeline:"} {
		if !strings.Contains(res.Text, section) {
			t.Errorf("report text missing section %q:\n%s", section, res.Text)
		}
	}
	if !bytes.Contains(res.JSON, []byte(`"signature":"KASAN:use-after-free:st7789_draw"`)) {
		t.Errorf("explain.json missing signature: %s", res.JSON)
	}
}

// TestExplainDeterministicAcrossWorkers is the end-to-end determinism
// contract of `embsan explain`: hunt the crash with campaigns at workers=1,
// 4 and GOMAXPROCS, explain the minimized crasher each time, and require
// the report text and explain.json to be byte-identical — plus a repeat run
// at one configuration to catch any residual state in the pooled machines.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0), 1} // trailing 1 = repeat run
	var texts []string
	var jsons [][]byte
	for _, workers := range counts {
		fws := buildSubset(t, "InfiniTime")
		run, err := RunCampaignSet(fws, CampaignOptions{Execs: 350, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var crashSig string
		var crashInput []byte
		for _, cr := range run.Campaigns[0].Raw.Crashes {
			if cr.Report != nil {
				crashSig, crashInput = cr.Signature, cr.Minimized
				break
			}
		}
		if crashInput == nil {
			t.Fatalf("workers=%d: campaign found no crash", workers)
		}
		res, err := ExplainReport(fws[0], ExplainOptions{
			Signature: crashSig, Input: crashInput, Seed: 3,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		texts = append(texts, res.Text)
		jsons = append(jsons, res.JSON)
	}
	for i := 1; i < len(counts); i++ {
		if texts[i] != texts[0] {
			t.Errorf("workers=%d report text diverged:\n--- workers=%d ---\n%s\n--- workers=%d ---\n%s",
				counts[i], counts[0], texts[0], counts[i], texts[i])
		}
		if !bytes.Equal(jsons[i], jsons[0]) {
			t.Errorf("workers=%d explain.json diverged:\n%s\nvs\n%s", counts[i], jsons[0], jsons[i])
		}
	}
}

// TestCampaignForensicsOption: forensic arming changes only the report
// extras — campaign outcomes are fingerprint-identical with it on or off,
// crash reports gain backtraces, and the workers account the frames.
func TestCampaignForensicsOption(t *testing.T) {
	base, err := RunCampaignSet(buildSubset(t, "InfiniTime"),
		CampaignOptions{Execs: 350, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for1, err := RunCampaignSet(buildSubset(t, "InfiniTime"),
		CampaignOptions{Execs: 350, Seed: 3, Workers: 1, Forensics: true})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := campaignFingerprint(base.Campaigns), campaignFingerprint(for1.Campaigns); a != b {
		t.Errorf("forensic arming changed campaign outcomes:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}
	frames := uint64(0)
	for _, w := range for1.Workers {
		frames += w.Frames
	}
	if frames == 0 {
		t.Error("forensic campaign accounted zero backtrace frames")
	}
	foundStack := false
	for _, cr := range for1.Campaigns[0].Raw.Crashes {
		if cr.Report != nil && len(cr.Report.Stack) > 0 {
			foundStack = true
		}
	}
	if !foundStack {
		t.Error("no crash report carries an access backtrace under forensics")
	}
}
