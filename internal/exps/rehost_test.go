package exps

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// TestRehostCampaignsFindSeededBugs is the rehosting pipeline's acceptance
// test: the mystery image is lifted with no source or metadata access, the
// Prober classifies its allocator behaviourally through the synthesized
// bridge, and a standard campaign then finds both seeded heap bugs on every
// frontend.
func TestRehostCampaignsFindSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("full rehost campaigns are long; run without -short")
	}
	run, err := RunRehostCampaigns(CampaignOptions{Execs: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Campaigns) != len(RehostArches) {
		t.Fatalf("%d campaigns, want %d", len(run.Campaigns), len(RehostArches))
	}
	for _, c := range run.Campaigns {
		for _, missed := range c.Missed {
			t.Errorf("%s: seeded bug %s not found by the campaign", c.Firmware.Name, missed)
		}
		for _, f := range c.Found {
			switch f.Fn {
			case "mys_cfg":
				if f.Class != "OOB Access" {
					t.Errorf("%s: %s classified %q, want OOB Access", c.Firmware.Name, f.Fn, f.Class)
				}
			case "mys_sess":
				if f.Class != "UAF" {
					t.Errorf("%s: %s classified %q, want UAF", c.Firmware.Name, f.Fn, f.Class)
				}
			default:
				t.Errorf("%s: unexpected finding %+v", c.Firmware.Name, f)
			}
		}
	}
	stats := FormatCampaignStats(run.Campaigns, run.Workers...)
	for _, want := range []string{"Mystery-arm32e", "Mystery-mips32e", "Mystery-x86e"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats table missing %q:\n%s", want, stats)
		}
	}
}

// TestRehostCampaignDeterminismAcrossWorkers: the rehosted family obeys the
// same bit-reproducibility contract as the registry — merged stats and
// report sets are byte-identical for every worker count.
func TestRehostCampaignDeterminismAcrossWorkers(t *testing.T) {
	opts := CampaignOptions{Execs: 400, Seed: 11}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	prints := make([]string, len(counts))
	for i, workers := range counts {
		opts.Workers = workers
		run, err := RunRehostCampaigns(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints[i] = campaignFingerprint(run.Campaigns)
	}
	for i := 1; i < len(counts); i++ {
		if prints[i] != prints[0] {
			t.Errorf("workers=%d diverged from workers=%d:\n%s\n---\n%s",
				counts[i], counts[0], prints[0], prints[i])
		}
	}
}

// TestRehostBenchRoundTrip: the recorder produces a checkable artefact and
// the checker rejects a schema drift.
func TestRehostBenchRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("bench measurement is long; run without -short")
	}
	rb, err := RunRehostBench(RehostBenchOptions{Execs: 200, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRehostBench(data); err != nil {
		t.Fatalf("fresh artefact fails its own check: %v", err)
	}
	text := FormatRehostBench(rb)
	for _, r := range rb.Rows {
		if r.BridgeReads == 0 {
			t.Errorf("%s: no MMIO reads through the bridge", r.Firmware)
		}
		if !strings.Contains(text, r.Firmware) {
			t.Errorf("formatted bench missing %q", r.Firmware)
		}
	}
	bad := strings.Replace(string(data), RehostBenchSchema, "embsan/bench-rehost/v0", 1)
	if err := CheckRehostBench([]byte(bad)); err == nil {
		t.Error("checker accepted a drifted schema")
	}
}
