package exps

import (
	"strings"
	"testing"
)

// TestElisionSmoke measures the dispatch saving on one EMBSAN-C firmware:
// the proofs must elide a non-trivial share of the dynamic SANCK traps
// without changing a single report, and the conservation identity
// (plain traps == elided traps + elided pads) is checked inside
// RunElisionStats itself.
func TestElisionSmoke(t *testing.T) {
	fws := buildSubset(t, "OpenWRT-armvirt")
	stats, err := RunElisionStats(fws, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d stats, want 1", len(stats))
	}
	s := stats[0]
	if s.Mode != "embsan-c" {
		t.Errorf("armvirt measured in mode %q, want embsan-c", s.Mode)
	}
	if s.Dispatch == 0 {
		t.Fatalf("plain run dispatched no SANCK traps")
	}
	if s.Elided == 0 {
		t.Errorf("proofs elided no dynamic traps (of %d)", s.Dispatch)
	}
	if f := s.Frac(); f <= 0 || f > 1 {
		t.Errorf("elided fraction %f out of range", f)
	}
	out := FormatElisionTable(stats)
	for _, want := range []string{"Firmware", "dispatches", "elided", "OpenWRT-armvirt"} {
		if !strings.Contains(out, want) {
			t.Errorf("elision table missing %q:\n%s", want, out)
		}
	}
}

// TestElisionRegistryRate measures the full registry: every firmware obeys
// the conservation identities and report identity (checked inside
// RunElisionStats), and on at least one firmware the proofs remove >= 15%
// of the dynamic sanitizer dispatches — the headline saving the static
// pass is for.
func TestElisionRegistryRate(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-wide elision runs are long; run without -short")
	}
	stats, err := RunElisionStats(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 11 {
		t.Fatalf("got %d stats, want 11", len(stats))
	}
	best := 0.0
	for _, s := range stats {
		if s.Dispatch == 0 {
			t.Errorf("%s: plain run dispatched nothing", s.Firmware)
		}
		if f := s.Frac(); f > best {
			best = f
		}
	}
	if best < 0.15 {
		t.Errorf("best elided fraction %.1f%% < 15%%:\n%s", best*100, FormatElisionTable(stats))
	}
}

// TestElideCampaignTablesIdentical is the end-to-end oracle for the whole
// elision pipeline: the full Table 3/4 campaigns, run plain and elided,
// must produce byte-identical bug tables — the proofs may only remove
// dispatch work, never a finding, an execution count or a coverage block.
func TestElideCampaignTablesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns are long; run without -short")
	}
	plain, err := RunAllCampaigns(CampaignOptions{Execs: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	elided, err := RunAllCampaigns(CampaignOptions{Execs: 30000, Seed: 7, Elide: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range elided {
		total += len(c.Found)
	}
	if total != 41 {
		t.Errorf("elided campaigns found %d bugs, want 41\n%s", total, FormatCampaignStats(elided))
	}
	if p, e := FormatTable3(plain), FormatTable3(elided); p != e {
		t.Errorf("Table 3 diverged under elision:\n--- plain ---\n%s\n--- elided ---\n%s", p, e)
	}
	if p, e := FormatTable4(plain), FormatTable4(elided); p != e {
		t.Errorf("Table 4 diverged under elision:\n--- plain ---\n%s\n--- elided ---\n%s", p, e)
	}
}
