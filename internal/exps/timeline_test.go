package exps

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
)

// timelineTestOpts samples aggressively (every 20k retired instructions)
// so short test campaigns still cut several samples per job.
func timelineTestOpts() CampaignOptions {
	return CampaignOptions{
		Execs: 200, Seed: 3, Repeats: 2,
		Timeline: true, TimelineInterval: 20_000, StallSamples: 4,
	}
}

// TestTimelineDeterministicAcrossWorkers: with the sampler armed, the
// merged timeline — campaigns' samples and marks concatenated in index
// order and EMTL-encoded — is byte-identical at workers=1, workers=4 and
// workers=GOMAXPROCS for every registry firmware, and the campaign
// outcomes still fingerprint identically. This is the oracle behind the
// FlushTBs cold-start rule in runX: without it, pooled-machine TB warmth
// would leak schedule-dependent translate/chain counts into the samples.
func TestTimelineDeterministicAcrossWorkers(t *testing.T) {
	opts := timelineTestOpts()
	opts.Execs = 120

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	type run struct {
		fp   string
		emtl []byte
	}
	runs := make([]run, 0, len(counts))
	for _, workers := range counts {
		opts.Workers = workers
		cr, err := RunCampaignSet(nil, opts) // nil = the full Table 1 registry
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		jobs := JobTimelines(cr.Campaigns)
		if len(jobs) != len(cr.Campaigns) {
			t.Fatalf("workers=%d: %d timelines for %d campaigns", workers, len(jobs), len(cr.Campaigns))
		}
		for _, j := range jobs {
			for i := 1; i < len(j.Samples); i++ {
				if j.Samples[i].VClock <= j.Samples[i-1].VClock {
					t.Fatalf("workers=%d job %d: non-monotone sample clocks", workers, j.ID)
				}
			}
		}
		runs = append(runs, run{fp: campaignFingerprint(cr.Campaigns), emtl: timeline.Encode(jobs)})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].fp != runs[0].fp {
			t.Errorf("workers=%d: campaign outcomes diverged from workers=%d with timeline on",
				counts[i], counts[0])
		}
		if !bytes.Equal(runs[i].emtl, runs[0].emtl) {
			t.Errorf("workers=%d: merged EMTL bytes diverged from workers=%d", counts[i], counts[0])
		}
	}

	// The canonical artefact round-trips.
	jobs, err := timeline.Decode(runs[0].emtl)
	if err != nil {
		t.Fatalf("merged EMTL failed to decode: %v", err)
	}
	if !bytes.Equal(timeline.Encode(jobs), runs[0].emtl) {
		t.Error("EMTL round trip is not the identity on campaign output")
	}
}

// TestTimelineOffIsNoop: arming the sampler leaves campaign outcomes
// fingerprint-identical to an unsampled run, and the stall@ stats column
// appears only when timelines were recorded.
func TestTimelineOffIsNoop(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	base := CampaignOptions{Execs: 200, Seed: 3, Workers: 1}

	off, err := RunCampaignSet(fws, base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Timeline = true
	on.TimelineInterval = 20_000
	onRun, err := RunCampaignSet(fws, on)
	if err != nil {
		t.Fatal(err)
	}

	if campaignFingerprint(off.Campaigns) != campaignFingerprint(onRun.Campaigns) {
		t.Error("timeline sampling changed campaign outcomes")
	}
	if len(off.Campaigns[0].Timeline) != 0 {
		t.Error("unsampled campaign carries timeline samples")
	}
	if len(onRun.Campaigns[0].Timeline) == 0 {
		t.Fatal("sampled campaign recorded no samples")
	}

	offStats := FormatCampaignStats(off.Campaigns, off.Workers...)
	onStats := FormatCampaignStats(onRun.Campaigns, onRun.Workers...)
	if strings.Contains(offStats, "stall@") {
		t.Errorf("timeline-off stats leak the stall@ column:\n%s", offStats)
	}
	if !strings.Contains(onStats, "stall@") {
		t.Errorf("timeline-on stats missing the stall@ column:\n%s", onStats)
	}

	// The terminal sample agrees with the merged campaign stats.
	c := onRun.Campaigns[0]
	last := c.Timeline[len(c.Timeline)-1]
	if last.CoverBlocks != uint64(c.Stats.CoverBlocks) ||
		last.CorpusSize != uint64(c.Stats.CorpusSize) {
		t.Errorf("terminal sample %+v disagrees with campaign stats %+v", last, c.Stats)
	}
	if last.Execute == 0 || last.Dispatches == 0 {
		t.Errorf("terminal sample missing engine accounting: %+v", last)
	}
}

// TestTimelineSamplerOutlivesEventRing: a deliberately tiny trace ring
// wraps and drops events, but the timeline sampler — whose buffer
// decimates instead of dropping — still records the identical samples a
// big-ring run does. Degrading one observability channel never degrades
// the other.
func TestTimelineSamplerOutlivesEventRing(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	opts := timelineTestOpts()
	opts.Workers = 1
	opts.Repeats = 1
	opts.Trace = true
	opts.TraceEvents = 64

	small, err := RunCampaignSet(fws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if small.Campaigns[0].TraceDropped == 0 {
		t.Fatal("64-event ring did not overflow; the test needs wraparound")
	}

	opts.TraceEvents = 0 // default-size ring
	big, err := RunCampaignSet(fws, opts)
	if err != nil {
		t.Fatal(err)
	}

	a := timeline.Encode(JobTimelines(small.Campaigns))
	b := timeline.Encode(JobTimelines(big.Campaigns))
	if !bytes.Equal(a, b) {
		t.Error("ring wraparound perturbed the sampled timeline")
	}
	// The stall/novelty events the sampler emitted into the wrapped ring
	// still validate as part of the campaign's trace.
	if err := obs.ValidateChrome(obs.ChromeTrace(JobTraces(small.Campaigns))); err != nil {
		t.Errorf("wrapped trace with timeline marks fails validation: %v", err)
	}
}

// TestTimelineExportsFromCampaign: the three exporters render real
// campaign output, and the Chrome counter export validates.
func TestTimelineExportsFromCampaign(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	opts := timelineTestOpts()
	opts.Workers = 1
	opts.Repeats = 1
	cr, err := RunCampaignSet(fws, opts)
	if err != nil {
		t.Fatal(err)
	}
	jobs := JobTimelines(cr.Campaigns)
	if err := obs.ValidateChrome(timeline.ChromeCounters(jobs)); err != nil {
		t.Errorf("campaign ChromeCounters invalid: %v", err)
	}
	if out := timeline.GrowthCurve(jobs); !strings.Contains(out, "campaign-0;cover;") {
		t.Errorf("growth curve missing cover series:\n%s", out)
	}
	om := string(timeline.OpenMetrics(jobs))
	if !strings.HasSuffix(om, "# EOF\n") || !strings.Contains(om, "embsan_timeline_execs{campaign=\"0\"}") {
		t.Errorf("OpenMetrics export malformed:\n%s", om)
	}
}

// TestMaskWallClock: the mask rewrites every throughput token — rendered
// rates and the zero-elapsed placeholder alike — and leaves the execs/s
// header and all virtual-time cells alone.
func TestMaskWallClock(t *testing.T) {
	in := "worker jobs execs/s\n0 4   1234.5/s\n1 2    -/s\ntotal 6  617.3/s\n"
	got := MaskWallClock(in)
	if strings.Contains(got, "1234.5/s") || strings.Contains(got, "617.3/s") {
		t.Errorf("rates survived masking: %q", got)
	}
	if !strings.Contains(got, "execs/s") {
		t.Errorf("header did not survive masking: %q", got)
	}
	if MaskWallClock(got) != got {
		t.Errorf("mask is not idempotent: %q", got)
	}
}

// TestCampaignStatsRatesMasked: a real formatted table carries an execs/s
// column whose wall-clock cells differ run to run, but masks to a stable
// byte string.
func TestCampaignStatsRatesMasked(t *testing.T) {
	fws := buildSubset(t, "InfiniTime")
	opts := CampaignOptions{Execs: 120, Seed: 3, Workers: 1}
	a, err := RunCampaignSet(fws, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaignSet(fws, opts)
	if err != nil {
		t.Fatal(err)
	}
	sa := FormatCampaignStats(a.Campaigns, a.Workers...)
	sb := FormatCampaignStats(b.Campaigns, b.Workers...)
	if !strings.Contains(sa, "execs/s") {
		t.Fatalf("stats table missing execs/s column:\n%s", sa)
	}
	if MaskWallClock(sa) != MaskWallClock(sb) {
		t.Errorf("masked stats diverged:\n--- a ---\n%s\n--- b ---\n%s", MaskWallClock(sa), MaskWallClock(sb))
	}
}
