package dsl

import "testing"

// FuzzParseRoundTrip throws arbitrary source at the spec parser. Parse must
// never panic, and whatever it accepts must reach the printer fixpoint:
// printing the parsed file yields canonical source that re-parses and
// re-prints byte-identically.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add(sampleSrc)
	f.Add(`sanitizer s { intercept load(addr: ptr) -> check; }`)
	f.Add(`platform "p" { arch mips32e; ram 0x10000; }`)
	f.Add(`init for "p" { shadow_init; poison 0x100 16 code heap; }`)
	f.Add(`// only a comment`)
	f.Add(`sanitizer s {`)
	f.Add("platform \"\x00\xff\" { ram 1; }")
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(parsed)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if p2 := Print(again); p2 != printed {
			t.Fatalf("print is not a fixpoint:\nfirst:  %q\nsecond: %q", printed, p2)
		}
	})
}
