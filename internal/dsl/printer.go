package dsl

import (
	"fmt"
	"strings"
)

// Print renders the file as canonical DSL text; Parse(Print(f)) is the
// identity on well-formed files.
func Print(f *File) string {
	var b strings.Builder
	for _, s := range f.Sanitizers {
		printSanitizer(&b, s)
	}
	for _, p := range f.Platforms {
		printPlatform(&b, p)
	}
	for _, in := range f.Inits {
		printInit(&b, in)
	}
	return b.String()
}

func printSources(b *strings.Builder, src []string) {
	if len(src) == 0 {
		return
	}
	fmt.Fprintf(b, " [%s]", strings.Join(src, ", "))
}

func printSanitizer(b *strings.Builder, s *Sanitizer) {
	fmt.Fprintf(b, "sanitizer %s {\n", quoteName(s.Name))
	for _, it := range s.Intercepts {
		b.WriteString("  intercept ")
		if it.Kind == InterceptFunc {
			fmt.Fprintf(b, "func %s", it.Func)
		} else {
			b.WriteString(it.Kind.String())
		}
		b.WriteString("(")
		for i, a := range it.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %s", a.Name, a.Type)
			printSources(b, a.Sources)
		}
		b.WriteString(")")
		if it.Ret != "" {
			fmt.Fprintf(b, " ret %s", it.Ret)
		}
		fmt.Fprintf(b, " -> %s", it.Action)
		printSources(b, it.Sources)
		b.WriteString(";\n")
	}
	for _, r := range s.Resources {
		fmt.Fprintf(b, "  resource %s {", r.Name)
		keys := make([]string, 0, len(r.Params))
		for k := range r.Params {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s = %d;", k, r.Params[k])
		}
		b.WriteString(" }\n")
	}
	b.WriteString("}\n")
}

func printPlatform(b *strings.Builder, p *Platform) {
	fmt.Fprintf(b, "platform %q {\n", p.Name)
	fmt.Fprintf(b, "  arch %s;\n", p.Arch)
	if p.RAM != 0 {
		fmt.Fprintf(b, "  ram %#x;\n", p.RAM)
	}
	if p.Ready != 0 {
		fmt.Fprintf(b, "  ready %#x;\n", p.Ready)
	}
	for _, h := range p.Heaps {
		fmt.Fprintf(b, "  heap %#x .. %#x;\n", h.Start, h.End)
	}
	for _, a := range p.Allocs {
		fmt.Fprintf(b, "  alloc %q entry %#x", a.Name, a.Entry)
		if a.SizeArg != "" {
			fmt.Fprintf(b, " size %s", a.SizeArg)
		}
		if a.RetArg != "" {
			fmt.Fprintf(b, " ret %s", a.RetArg)
		}
		if len(a.Exits) > 0 {
			b.WriteString(" exits [")
			for i, e := range a.Exits {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "%#x", e)
			}
			b.WriteString("]")
		}
		b.WriteString(";\n")
	}
	for _, f := range p.Frees {
		fmt.Fprintf(b, "  free %q entry %#x", f.Name, f.Entry)
		if f.PtrArg != "" {
			fmt.Fprintf(b, " ptr %s", f.PtrArg)
		}
		if f.SizeArg != "" {
			fmt.Fprintf(b, " size %s", f.SizeArg)
		}
		b.WriteString(";\n")
	}
	for _, r := range p.Suppress {
		fmt.Fprintf(b, "  suppress %#x .. %#x;\n", r.Start, r.End)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(b, "  note %q;\n", n)
	}
	b.WriteString("}\n")
}

func printInit(b *strings.Builder, in *Init) {
	b.WriteString("init")
	if in.Platform != "" {
		fmt.Fprintf(b, " for %q", in.Platform)
	}
	b.WriteString(" {\n")
	for _, op := range in.Ops {
		switch op.Kind {
		case InitShadow:
			b.WriteString("  shadow_init;\n")
		default:
			fmt.Fprintf(b, "  %s %#x %d", op.Kind, op.Addr, op.Size)
			if op.Code != "" {
				fmt.Fprintf(b, " code %s", op.Code)
			}
			b.WriteString(";\n")
		}
	}
	b.WriteString("}\n")
}

// quoteName renders a name as a bare identifier when possible, quoting it
// otherwise (merged specs carry composite names like "kasan+kcsan").
func quoteName(n string) string {
	if n == "" {
		return `""`
	}
	for i, r := range n {
		ok := isIdentPart(r)
		if i == 0 {
			ok = isIdentStart(r)
		}
		if !ok {
			return fmt.Sprintf("%q", n)
		}
	}
	return n
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
