package dsl

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genSpec builds a pseudo-random but well-formed sanitizer spec.
func genSpec(r *rand.Rand) *Sanitizer {
	name := fmt.Sprintf("san%d", r.Intn(1000))
	s := &Sanitizer{Name: name}
	kinds := []InterceptKind{InterceptLoad, InterceptStore, InterceptAtomic}
	used := map[string]bool{}
	for _, k := range kinds {
		if r.Intn(2) == 0 {
			continue
		}
		it := &Intercept{Kind: k, Action: Action(r.Intn(3))}
		for a := 0; a < 1+r.Intn(3); a++ {
			it.Args = append(it.Args, Arg{
				Name: fmt.Sprintf("arg%d", a),
				Type: []string{"ptr", "u32", "u16", "u8"}[r.Intn(4)],
			})
		}
		s.Intercepts = append(s.Intercepts, it)
	}
	for i := 0; i < r.Intn(3); i++ {
		fn := fmt.Sprintf("fn_%d", r.Intn(100))
		if used["func:"+fn] {
			continue
		}
		used["func:"+fn] = true
		s.Intercepts = append(s.Intercepts, &Intercept{
			Kind: InterceptFunc, Func: fn,
			Args:   []Arg{{Name: "size", Type: "u32"}},
			Ret:    "ptr",
			Action: ActionAlloc,
		})
	}
	if len(s.Intercepts) == 0 {
		s.Intercepts = append(s.Intercepts, &Intercept{
			Kind: InterceptLoad, Action: ActionCheck,
			Args: []Arg{{Name: "addr", Type: "ptr"}},
		})
	}
	if r.Intn(2) == 0 {
		s.Resources = append(s.Resources, Resource{
			Name:   "shadow",
			Params: map[string]uint32{"granularity": uint32(1 << r.Intn(5))},
		})
	}
	return s
}

// Property: any generated spec survives Print -> Parse -> Print unchanged.
func TestQuickSpecPrintParseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		file := &File{Sanitizers: []*Sanitizer{genSpec(r)}}
		text := Print(file)
		parsed, err := Parse(text)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, text)
			return false
		}
		return Print(parsed) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging a spec with itself is idempotent on the interception
// point set (same keys, same argument names).
func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genSpec(r)
		m := MergeSanitizers("m", []*Sanitizer{s, s})
		if len(m.Intercepts) != len(s.Intercepts) {
			return false
		}
		for i, it := range m.Intercepts {
			if it.Key() != s.Intercepts[i].Key() {
				return false
			}
			if len(it.Args) != len(s.Intercepts[i].Args) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merge is insensitive to input order for the point set.
func TestQuickMergeOrderInsensitiveKeys(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genSpec(r), genSpec(r)
		m1 := MergeSanitizers("m", []*Sanitizer{a, b})
		m2 := MergeSanitizers("m", []*Sanitizer{b, a})
		keys := func(s *Sanitizer) map[string]bool {
			out := map[string]bool{}
			for _, it := range s.Intercepts {
				out[it.Key()] = true
			}
			return out
		}
		k1, k2 := keys(m1), keys(m2)
		if len(k1) != len(k2) {
			return false
		}
		for k := range k1 {
			if !k2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
