package dsl

import "fmt"

// Parse parses DSL source into a File.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokIdent, "sanitizer"):
			s, err := p.parseSanitizer()
			if err != nil {
				return nil, err
			}
			f.Sanitizers = append(f.Sanitizers, s)
		case p.at(tokIdent, "platform"):
			pl, err := p.parsePlatform()
			if err != nil {
				return nil, err
			}
			f.Platforms = append(f.Platforms, pl)
		case p.at(tokIdent, "init"):
			in, err := p.parseInit()
			if err != nil {
				return nil, err
			}
			f.Inits = append(f.Inits, in)
		default:
			return nil, p.errf("expected sanitizer, platform or init, got %s", p.peek())
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokKind, text string) bool {
	t := p.peek()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch k {
		case tokIdent:
			want = "identifier"
		case tokNumber:
			want = "number"
		case tokString:
			want = "string"
		}
	}
	return token{}, p.errf("expected %s, got %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("dsl: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) parseName() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokString {
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected name, got %s", t)
}

func (p *parser) parseNumber() (uint32, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	return t.num, nil
}

// parseSources parses an optional source annotation: [a, b, c].
func (p *parser) parseSources() ([]string, error) {
	if !p.accept(tokPunct, "[") {
		return nil, nil
	}
	var out []string
	for {
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if p.accept(tokPunct, "]") {
			return out, nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseSanitizer() (*Sanitizer, error) {
	p.next() // "sanitizer"
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	s := &Sanitizer{Name: name}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		switch {
		case p.at(tokIdent, "intercept"):
			it, err := p.parseIntercept()
			if err != nil {
				return nil, err
			}
			s.Intercepts = append(s.Intercepts, it)
		case p.at(tokIdent, "resource"):
			r, err := p.parseResource()
			if err != nil {
				return nil, err
			}
			s.Resources = append(s.Resources, r)
		default:
			return nil, p.errf("expected intercept or resource, got %s", p.peek())
		}
	}
	return s, nil
}

func (p *parser) parseIntercept() (*Intercept, error) {
	p.next() // "intercept"
	it := &Intercept{}
	kind, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	switch kind.text {
	case "load":
		it.Kind = InterceptLoad
	case "store":
		it.Kind = InterceptStore
	case "atomic":
		it.Kind = InterceptAtomic
	case "func":
		it.Kind = InterceptFunc
		fn, err := p.parseName()
		if err != nil {
			return nil, err
		}
		it.Func = fn
	default:
		return nil, p.errf("unknown intercept kind %q", kind.text)
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, ")") {
		var a Arg
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		a.Name = n.text
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		ty, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		a.Type = ty.text
		if a.Sources, err = p.parseSources(); err != nil {
			return nil, err
		}
		it.Args = append(it.Args, a)
		if !p.at(tokPunct, ")") {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(tokIdent, "ret") {
		ty, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		it.Ret = ty.text
	}
	if _, err := p.expect(tokPunct, "->"); err != nil {
		return nil, err
	}
	act, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	switch act.text {
	case "check":
		it.Action = ActionCheck
	case "alloc":
		it.Action = ActionAlloc
	case "free":
		it.Action = ActionFree
	case "none":
		it.Action = ActionNone
	default:
		return nil, p.errf("unknown action %q", act.text)
	}
	if it.Sources, err = p.parseSources(); err != nil {
		return nil, err
	}
	_, err = p.expect(tokPunct, ";")
	return it, err
}

func (p *parser) parseResource() (Resource, error) {
	p.next() // "resource"
	r := Resource{Params: map[string]uint32{}}
	n, err := p.parseName()
	if err != nil {
		return r, err
	}
	r.Name = n
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return r, err
	}
	for !p.accept(tokPunct, "}") {
		k, err := p.expect(tokIdent, "")
		if err != nil {
			return r, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return r, err
		}
		v, err := p.parseNumber()
		if err != nil {
			return r, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return r, err
		}
		r.Params[k.text] = v
	}
	return r, nil
}

func (p *parser) parseRegion() (Region, error) {
	start, err := p.parseNumber()
	if err != nil {
		return Region{}, err
	}
	if _, err := p.expect(tokPunct, ".."); err != nil {
		return Region{}, err
	}
	end, err := p.parseNumber()
	if err != nil {
		return Region{}, err
	}
	return Region{Start: start, End: end}, nil
}

func (p *parser) parsePlatform() (*Platform, error) {
	p.next() // "platform"
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	pl := &Platform{Name: name}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		kw, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "arch":
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			pl.Arch = a.text
		case "ram":
			if pl.RAM, err = p.parseNumber(); err != nil {
				return nil, err
			}
		case "ready":
			if pl.Ready, err = p.parseNumber(); err != nil {
				return nil, err
			}
		case "heap":
			r, err := p.parseRegion()
			if err != nil {
				return nil, err
			}
			pl.Heaps = append(pl.Heaps, r)
		case "suppress":
			r, err := p.parseRegion()
			if err != nil {
				return nil, err
			}
			pl.Suppress = append(pl.Suppress, r)
		case "note":
			n, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			pl.Notes = append(pl.Notes, n.text)
		case "alloc":
			a, err := p.parseAllocFn()
			if err != nil {
				return nil, err
			}
			pl.Allocs = append(pl.Allocs, a)
		case "free":
			f, err := p.parseFreeFn()
			if err != nil {
				return nil, err
			}
			pl.Frees = append(pl.Frees, f)
		default:
			return nil, p.errf("unknown platform field %q", kw.text)
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

func (p *parser) parseAllocFn() (AllocFn, error) {
	var a AllocFn
	n, err := p.parseName()
	if err != nil {
		return a, err
	}
	a.Name = n
	for p.at(tokIdent, "") && !p.at(tokIdent, ";") {
		kw := p.peek().text
		switch kw {
		case "entry":
			p.next()
			if a.Entry, err = p.parseNumber(); err != nil {
				return a, err
			}
		case "size":
			p.next()
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return a, err
			}
			a.SizeArg = r.text
		case "ret":
			p.next()
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return a, err
			}
			a.RetArg = r.text
		case "exits":
			p.next()
			if _, err := p.expect(tokPunct, "["); err != nil {
				return a, err
			}
			for !p.accept(tokPunct, "]") {
				v, err := p.parseNumber()
				if err != nil {
					return a, err
				}
				a.Exits = append(a.Exits, v)
				if !p.at(tokPunct, "]") {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return a, err
					}
				}
			}
		default:
			return a, nil
		}
	}
	return a, nil
}

func (p *parser) parseFreeFn() (FreeFn, error) {
	var f FreeFn
	n, err := p.parseName()
	if err != nil {
		return f, err
	}
	f.Name = n
	for p.at(tokIdent, "") {
		kw := p.peek().text
		switch kw {
		case "entry":
			p.next()
			if f.Entry, err = p.parseNumber(); err != nil {
				return f, err
			}
		case "ptr":
			p.next()
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return f, err
			}
			f.PtrArg = r.text
		case "size":
			p.next()
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return f, err
			}
			f.SizeArg = r.text
		default:
			return f, nil
		}
	}
	return f, nil
}

func (p *parser) parseInit() (*Init, error) {
	p.next() // "init"
	in := &Init{}
	if p.accept(tokIdent, "for") {
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		in.Platform = n
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		kw, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var op InitOp
		switch kw.text {
		case "shadow_init":
			op.Kind = InitShadow
		case "poison", "unpoison", "alloc":
			switch kw.text {
			case "poison":
				op.Kind = InitPoison
			case "unpoison":
				op.Kind = InitUnpoison
			case "alloc":
				op.Kind = InitAlloc
			}
			if op.Addr, err = p.parseNumber(); err != nil {
				return nil, err
			}
			if op.Size, err = p.parseNumber(); err != nil {
				return nil, err
			}
			if p.accept(tokIdent, "code") {
				c, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				op.Code = c.text
			}
		default:
			return nil, p.errf("unknown init op %q", kw.text)
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		in.Ops = append(in.Ops, op)
	}
	return in, nil
}
