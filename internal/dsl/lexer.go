package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation or "->" / ".."
)

type token struct {
	kind tokKind
	text string
	num  uint32
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
			l.emit(tokPunct, "->")
			l.pos += 2
		case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.':
			l.emit(tokPunct, "..")
			l.pos += 2
		case strings.ContainsRune("{}():;,[]=", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("dsl: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

// lexString reads a double-quoted string with Go escape syntax — the
// exact inverse of the printer's %q, so any printed spec re-lexes to the
// original value (non-ASCII bytes round-trip through \x escapes).
func (l *lexer) lexString() error {
	start := l.pos + 1
	i := start
	for i < len(l.src) && l.src[i] != '"' {
		if l.src[i] == '\n' {
			return fmt.Errorf("dsl: line %d: unterminated string", l.line)
		}
		if l.src[i] == '\\' && i+1 < len(l.src) && l.src[i+1] != '\n' {
			i++ // the escaped character cannot close the string
		}
		i++
	}
	if i >= len(l.src) {
		return fmt.Errorf("dsl: line %d: unterminated string", l.line)
	}
	raw := l.src[start:i]
	text := raw
	if strings.ContainsRune(raw, '\\') {
		un, err := strconv.Unquote(`"` + raw + `"`)
		if err != nil {
			return fmt.Errorf("dsl: line %d: bad string escape in %q", l.line, raw)
		}
		text = un
	}
	l.emit(tokString, text)
	l.pos = i + 1
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	base := 10
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base = 16
		l.pos += 2
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos], base) {
		l.pos++
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(text, "0x"), "0X"), base, 32)
	if err != nil {
		return fmt.Errorf("dsl: line %d: bad number %q", l.line, text)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: uint32(v), line: l.line})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos])
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte, base int) bool {
	if base == 16 {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return c >= '0' && c <= '9'
}
