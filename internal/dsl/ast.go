// Package dsl implements EMBSAN's in-house domain-specific language. The
// Distiller emits sanitizer interception specifications in it, the Prober
// emits platform configurations and initial setup routines in it, and the
// Common Sanitizer Runtime compiles it into live emulator hooks — the DSL
// is the actual interchange format between the pipeline stages, as in the
// paper.
package dsl

import (
	"fmt"
	"sort"
	"strings"
)

// File is a parsed DSL file: any mix of sanitizer, platform and init blocks.
type File struct {
	Sanitizers []*Sanitizer
	Platforms  []*Platform
	Inits      []*Init
}

// InterceptKind says where an interception point attaches.
type InterceptKind uint8

const (
	// InterceptLoad/Store/Atomic attach to instruction classes.
	InterceptLoad InterceptKind = iota
	InterceptStore
	InterceptAtomic
	// InterceptFunc attaches to a named guest function.
	InterceptFunc
)

func (k InterceptKind) String() string {
	switch k {
	case InterceptLoad:
		return "load"
	case InterceptStore:
		return "store"
	case InterceptAtomic:
		return "atomic"
	case InterceptFunc:
		return "func"
	}
	return "?"
}

// Action is what the runtime does at an interception point.
type Action uint8

const (
	ActionCheck Action = iota // validate the operation
	ActionAlloc               // record an allocation (ptr, size)
	ActionFree                // record a deallocation (ptr)
	ActionNone
)

func (a Action) String() string {
	switch a {
	case ActionCheck:
		return "check"
	case ActionAlloc:
		return "alloc"
	case ActionFree:
		return "free"
	}
	return "none"
}

// Arg is one argument of an interception API. Sources records which
// sanitizers contributed the argument — the annotation the paper's merge
// rules require when arguments are unioned.
type Arg struct {
	Name    string
	Type    string
	Sources []string
}

// Intercept is one interception point of a sanitizer specification.
type Intercept struct {
	Kind    InterceptKind
	Func    string // for InterceptFunc
	Args    []Arg
	Ret     string // return type, "" if none
	Action  Action
	Sources []string // sanitizers that requested this point
}

// Key identifies an interception point for merging.
func (it *Intercept) Key() string {
	if it.Kind == InterceptFunc {
		return "func:" + it.Func
	}
	return it.Kind.String()
}

// Resource is an external resource a sanitizer needs (e.g. shadow memory).
type Resource struct {
	Name   string
	Params map[string]uint32
}

// Sanitizer is a distilled sanitizer specification.
type Sanitizer struct {
	Name       string
	Intercepts []*Intercept
	Resources  []Resource
}

// Region is a half-open address range.
type Region struct {
	Start, End uint32
}

func (r Region) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }
func (r Region) Size() uint32              { return r.End - r.Start }

// AllocFn describes a discovered or declared allocator entry point.
type AllocFn struct {
	Name    string
	Entry   uint32
	Exits   []uint32 // return-instruction addresses inside the function
	SizeArg string   // register holding the requested size at entry
	RetArg  string   // register holding the returned pointer at exit
}

// FreeFn describes a deallocator entry point.
type FreeFn struct {
	Name    string
	Entry   uint32
	PtrArg  string
	SizeArg string // "" when the free interface carries no size
}

// Platform is a probed platform configuration.
type Platform struct {
	Name     string
	Arch     string
	RAM      uint32
	Ready    uint32 // PC of the ready-to-run point (0 = use the ready hypercall)
	Heaps    []Region
	Allocs   []AllocFn
	Frees    []FreeFn
	Suppress []Region // code ranges whose accesses are not checked (allocator internals)
	Notes    []string // manual-intervention annotations
}

// InitOpKind enumerates initial-setup operations.
type InitOpKind uint8

const (
	InitShadow   InitOpKind = iota // initialise shadow memory
	InitPoison                     // poison [Addr, Addr+Size) with Code
	InitUnpoison                   // unpoison [Addr, Addr+Size)
	InitAlloc                      // replay a recorded pre-ready allocation
)

func (k InitOpKind) String() string {
	switch k {
	case InitShadow:
		return "shadow_init"
	case InitPoison:
		return "poison"
	case InitUnpoison:
		return "unpoison"
	case InitAlloc:
		return "alloc"
	}
	return "?"
}

// InitOp is one step of the initial setup routine.
type InitOp struct {
	Kind InitOpKind
	Addr uint32
	Size uint32
	Code string // poison code name, for InitPoison
}

// Init is the initial setup routine recorded by the Prober's dry run.
type Init struct {
	Platform string // the platform this routine belongs to
	Ops      []InitOp
}

// ---- merge rules (§3.1) ----

// MergeSanitizers combines several sanitizer specifications into one, using
// the paper's rules: the interception-point set is the union of the
// individual sets; per point, the argument list is the union of the
// individual argument lists; arguments that share target data are combined
// and annotated with their source APIs.
func MergeSanitizers(name string, in []*Sanitizer) *Sanitizer {
	out := &Sanitizer{Name: name}
	points := map[string]*Intercept{}
	var order []string
	resources := map[string]Resource{}
	var resOrder []string

	for _, s := range in {
		for _, it := range s.Intercepts {
			key := it.Key()
			dst, ok := points[key]
			if !ok {
				cp := *it
				cp.Args = append([]Arg(nil), it.Args...)
				for i := range cp.Args {
					cp.Args[i].Sources = mergeSources(cp.Args[i].Sources, []string{s.Name})
				}
				cp.Sources = []string{s.Name}
				points[key] = &cp
				order = append(order, key)
				continue
			}
			dst.Sources = mergeSources(dst.Sources, []string{s.Name})
			// Union the argument lists; arguments with the same name share
			// target data and are combined into one annotated argument.
			for _, a := range it.Args {
				found := false
				for i := range dst.Args {
					if dst.Args[i].Name == a.Name {
						found = true
						dst.Args[i].Sources = mergeSources(dst.Args[i].Sources, []string{s.Name})
						// Take the largest possible union of the data: a
						// wider type wins.
						if typeWidth(a.Type) > typeWidth(dst.Args[i].Type) {
							dst.Args[i].Type = a.Type
						}
					}
				}
				if !found {
					na := a
					na.Sources = mergeSources(a.Sources, []string{s.Name})
					dst.Args = append(dst.Args, na)
				}
			}
			// The strongest action wins: check < free < alloc ordering is
			// arbitrary but stable; in practice actions agree per point.
			if dst.Action == ActionNone {
				dst.Action = it.Action
			}
		}
		for _, r := range s.Resources {
			if have, ok := resources[r.Name]; ok {
				// Union parameters, keeping the larger value (e.g. the finer
				// granularity requirement expressed as a smaller number
				// stays — callers encode requirements so that max works).
				for k, v := range r.Params {
					if v > have.Params[k] {
						have.Params[k] = v
					}
				}
				continue
			}
			cp := Resource{Name: r.Name, Params: map[string]uint32{}}
			for k, v := range r.Params {
				cp.Params[k] = v
			}
			resources[r.Name] = cp
			resOrder = append(resOrder, r.Name)
		}
	}
	for _, key := range order {
		out.Intercepts = append(out.Intercepts, points[key])
	}
	for _, rn := range resOrder {
		out.Resources = append(out.Resources, resources[rn])
	}
	return out
}

func mergeSources(a, b []string) []string {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func typeWidth(t string) int {
	switch strings.ToLower(t) {
	case "u8":
		return 1
	case "u16":
		return 2
	case "u32", "ptr":
		return 4
	case "u64":
		return 8
	}
	return 4
}

// Validate performs structural checks on a file.
func (f *File) Validate() error {
	seen := map[string]bool{}
	for _, s := range f.Sanitizers {
		if s.Name == "" {
			return fmt.Errorf("dsl: sanitizer with empty name")
		}
		if seen["san:"+s.Name] {
			return fmt.Errorf("dsl: duplicate sanitizer %q", s.Name)
		}
		seen["san:"+s.Name] = true
		pts := map[string]bool{}
		for _, it := range s.Intercepts {
			if it.Kind == InterceptFunc && it.Func == "" {
				return fmt.Errorf("dsl: sanitizer %q: func intercept without a name", s.Name)
			}
			if pts[it.Key()] {
				return fmt.Errorf("dsl: sanitizer %q: duplicate intercept %q", s.Name, it.Key())
			}
			pts[it.Key()] = true
		}
	}
	for _, p := range f.Platforms {
		if p.Name == "" || p.Arch == "" {
			return fmt.Errorf("dsl: platform needs name and arch")
		}
		for _, h := range p.Heaps {
			if h.End <= h.Start {
				return fmt.Errorf("dsl: platform %q: empty heap region %#x..%#x", p.Name, h.Start, h.End)
			}
		}
		for _, a := range p.Allocs {
			if a.Entry == 0 {
				return fmt.Errorf("dsl: platform %q: alloc %q without entry", p.Name, a.Name)
			}
		}
	}
	return nil
}
