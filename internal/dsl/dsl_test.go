package dsl

import (
	"strings"
	"testing"
)

const sampleSrc = `
// KASAN specification, distilled.
sanitizer kasan {
  intercept load(addr: ptr, size: u32) -> check;
  intercept store(addr: ptr, size: u32) -> check;
  intercept atomic(addr: ptr, size: u32) -> check;
  intercept func kmalloc(size: u32) ret ptr -> alloc;
  intercept func kfree(ptr: ptr) -> free;
  resource shadow { granularity = 8; }
}

platform "openwrt-x86_64" {
  arch x86e;
  ram 0x1000000;
  ready 0x1234;
  heap 0x200000 .. 0x600000;
  alloc "kmalloc" entry 0x1040 size a0 ret a0 exits [0x10a0, 0x10c4];
  free "kfree" entry 0x1100 ptr a0 size a1;
  suppress 0x1040 .. 0x1200;
  note "heap bounds confirmed by dry run";
}

init for "openwrt-x86_64" {
  shadow_init;
  poison 0x200000 4194304 code heap;
  alloc 0x200010 64;
}
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Sanitizers) != 1 || len(f.Platforms) != 1 || len(f.Inits) != 1 {
		t.Fatalf("blocks: %d/%d/%d", len(f.Sanitizers), len(f.Platforms), len(f.Inits))
	}
	s := f.Sanitizers[0]
	if s.Name != "kasan" || len(s.Intercepts) != 5 {
		t.Fatalf("sanitizer: %s, %d intercepts", s.Name, len(s.Intercepts))
	}
	km := s.Intercepts[3]
	if km.Kind != InterceptFunc || km.Func != "kmalloc" || km.Action != ActionAlloc || km.Ret != "ptr" {
		t.Errorf("kmalloc intercept: %+v", km)
	}
	if len(s.Resources) != 1 || s.Resources[0].Params["granularity"] != 8 {
		t.Errorf("resources: %+v", s.Resources)
	}
	p := f.Platforms[0]
	if p.Arch != "x86e" || p.RAM != 0x1000000 || p.Ready != 0x1234 {
		t.Errorf("platform header: %+v", p)
	}
	if len(p.Heaps) != 1 || p.Heaps[0] != (Region{0x200000, 0x600000}) {
		t.Errorf("heaps: %+v", p.Heaps)
	}
	a := p.Allocs[0]
	if a.Name != "kmalloc" || a.Entry != 0x1040 || a.SizeArg != "a0" || a.RetArg != "a0" ||
		len(a.Exits) != 2 || a.Exits[1] != 0x10c4 {
		t.Errorf("alloc: %+v", a)
	}
	fr := p.Frees[0]
	if fr.PtrArg != "a0" || fr.SizeArg != "a1" || fr.Entry != 0x1100 {
		t.Errorf("free: %+v", fr)
	}
	in := f.Inits[0]
	if in.Platform != "openwrt-x86_64" || len(in.Ops) != 3 {
		t.Fatalf("init: %+v", in)
	}
	if in.Ops[1].Kind != InitPoison || in.Ops[1].Code != "heap" || in.Ops[1].Size != 4194304 {
		t.Errorf("poison op: %+v", in.Ops[1])
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(f)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Print(f2) != text {
		t.Errorf("print not canonical:\n%s\n----\n%s", text, Print(f2))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`sanitizer {`,
		`sanitizer s { intercept bogus() -> check; }`,
		`sanitizer s { intercept load(addr ptr) -> check; }`,
		`sanitizer s { intercept load(addr: ptr) -> explode; }`,
		`platform "p" { arch }`,
		`platform "p" { arch arm32e; heap 5 .. 2; }`, // empty region fails Validate
		`init { rewind 0 0; }`,
		`garbage`,
		`sanitizer s { intercept load(a: ptr) -> check; intercept load(a: ptr) -> check; }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestMergeSanitizersUnionRules(t *testing.T) {
	kasan, err := Parse(`
sanitizer kasan {
  intercept load(addr: ptr, size: u32) -> check;
  intercept store(addr: ptr, size: u32) -> check;
  intercept func kmalloc(size: u32) ret ptr -> alloc;
  resource shadow { granularity = 8; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	kcsan, err := Parse(`
sanitizer kcsan {
  intercept load(addr: ptr, size: u32, is_atomic: u8) -> check;
  intercept store(addr: ptr, size: u32) -> check;
  intercept atomic(addr: ptr, size: u32) -> check;
  resource shadow { granularity = 8; }
  resource watchpoints { slots = 4; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := MergeSanitizers("merged", []*Sanitizer{kasan.Sanitizers[0], kcsan.Sanitizers[0]})

	// Union of interception points: load, store, kmalloc, atomic.
	if len(m.Intercepts) != 4 {
		t.Fatalf("merged intercepts = %d, want 4", len(m.Intercepts))
	}
	byKey := map[string]*Intercept{}
	for _, it := range m.Intercepts {
		byKey[it.Key()] = it
	}
	ld := byKey["load"]
	if ld == nil {
		t.Fatal("no merged load intercept")
	}
	// Argument union: addr, size from both; is_atomic only from kcsan.
	if len(ld.Args) != 3 {
		t.Fatalf("load args = %+v", ld.Args)
	}
	var isAtomic *Arg
	for i := range ld.Args {
		if ld.Args[i].Name == "is_atomic" {
			isAtomic = &ld.Args[i]
		}
		if ld.Args[i].Name == "addr" {
			if strings.Join(ld.Args[i].Sources, ",") != "kasan,kcsan" {
				t.Errorf("addr sources = %v", ld.Args[i].Sources)
			}
		}
	}
	if isAtomic == nil || strings.Join(isAtomic.Sources, ",") != "kcsan" {
		t.Errorf("is_atomic annotation wrong: %+v", isAtomic)
	}
	if strings.Join(ld.Sources, ",") != "kasan,kcsan" {
		t.Errorf("load sources = %v", ld.Sources)
	}
	if strings.Join(byKey["atomic"].Sources, ",") != "kcsan" {
		t.Errorf("atomic sources = %v", byKey["atomic"].Sources)
	}
	if strings.Join(byKey["func:kmalloc"].Sources, ",") != "kasan" {
		t.Errorf("kmalloc sources = %v", byKey["func:kmalloc"].Sources)
	}
	// Resource union: one shadow, one watchpoints.
	if len(m.Resources) != 2 {
		t.Errorf("resources = %+v", m.Resources)
	}
	// The merged spec must survive printing and reparsing.
	text := Print(&File{Sanitizers: []*Sanitizer{m}})
	if _, err := Parse(text); err != nil {
		t.Errorf("merged spec does not reparse: %v\n%s", err, text)
	}
}

func TestMergeWiderTypeWins(t *testing.T) {
	a := &Sanitizer{Name: "a", Intercepts: []*Intercept{{
		Kind: InterceptLoad, Args: []Arg{{Name: "size", Type: "u8"}}, Action: ActionCheck,
	}}}
	b := &Sanitizer{Name: "b", Intercepts: []*Intercept{{
		Kind: InterceptLoad, Args: []Arg{{Name: "size", Type: "u32"}}, Action: ActionCheck,
	}}}
	m := MergeSanitizers("m", []*Sanitizer{a, b})
	if m.Intercepts[0].Args[0].Type != "u32" {
		t.Errorf("merged type = %s, want u32 (largest union of the data)", m.Intercepts[0].Args[0].Type)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{0x100, 0x200}
	if !r.Contains(0x100) || r.Contains(0x200) || r.Contains(0xFF) || !r.Contains(0x1FF) {
		t.Error("Region.Contains boundary behaviour wrong")
	}
	if r.Size() != 0x100 {
		t.Errorf("size = %#x", r.Size())
	}
}
