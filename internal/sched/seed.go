package sched

// Split derives the seed for campaign index i from a base seed using the
// splitmix64 finalizer. Campaigns seeded this way are statistically
// independent of each other yet bit-reproducible from (base, index) alone,
// which is what lets the executor hand campaign i to any worker in any
// order and still merge identical results.
func Split(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
