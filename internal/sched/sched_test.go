package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunCompletesAllJobs: every index runs exactly once for any pool size.
func TestRunCompletesAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 97
			var ran [n]atomic.Int32
			ws, err := Run(Options{Workers: workers}, n, func(w *Worker, i int) error {
				ran[i].Add(1)
				w.Inst().Jobs.Inc()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Errorf("job %d ran %d times", i, got)
				}
			}
			if total := MergeStats(ws); total.Jobs != n {
				t.Errorf("merged jobs = %d, want %d", total.Jobs, n)
			}
		})
	}
}

// TestRunZeroJobs: an empty job list is a no-op, not a hang.
func TestRunZeroJobs(t *testing.T) {
	ws, err := Run(Options{Workers: 4}, 0, func(w *Worker, i int) error {
		t.Error("job ran")
		return nil
	})
	if err != nil || len(ws) != 0 {
		t.Fatalf("ws=%v err=%v", ws, err)
	}
}

// TestRunErrorIsLowestIndex: the reported error is deterministic — the
// lowest failing index wins regardless of scheduling.
func TestRunErrorIsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(Options{Workers: workers}, 40, func(w *Worker, i int) error {
			if i%10 == 3 { // 3, 13, 23, 33 fail
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// Workers abort after the first failure; with >1 workers a later
		// failing index may already be in flight, but index 3 always runs
		// (claimed before any abort can outrun the first 4 claims when
		// workers <= 4) and must be the one reported.
		if got := err.Error(); got != "job 3 failed" {
			t.Errorf("workers=%d: err = %q, want job 3", workers, got)
		}
	}
}

// TestPooledBuildsOncePerWorker: the pool memoises per key and evicts LRU
// beyond PoolCap.
func TestPooledBuildsOncePerWorker(t *testing.T) {
	w := newWorker(0, 2)
	builds := 0
	get := func(key string) string {
		v, err := Pooled(w, key, func() (string, error) {
			builds++
			return "v:" + key, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get("a") != "v:a" || get("a") != "v:a" || get("b") != "v:b" {
		t.Fatal("wrong pooled values")
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2", builds)
	}
	get("c") // evicts "a" (cap 2, LRU)
	get("b") // still pooled
	if builds != 3 {
		t.Fatalf("builds = %d, want 3 (b evicted too early)", builds)
	}
	get("a") // rebuilt after eviction
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 (a not evicted)", builds)
	}
}

// TestPooledBuildErrorNotCached: a failed build is retried.
func TestPooledBuildErrorNotCached(t *testing.T) {
	w := newWorker(0, 0)
	calls := 0
	build := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, fmt.Errorf("transient")
		}
		return 7, nil
	}
	if _, err := Pooled(w, "k", build); err == nil {
		t.Fatal("expected error")
	}
	v, err := Pooled(w, "k", build)
	if err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

// TestSplitDeterministicAndDispersed: Split is reproducible, index-
// sensitive, and never maps distinct small indices to the same seed.
func TestSplitDeterministicAndDispersed(t *testing.T) {
	if Split(7, 0) != Split(7, 0) {
		t.Fatal("Split not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := Split(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Split(7,%d) == Split(7,%d)", i, prev)
		}
		seen[s] = i
	}
	if Split(7, 1) == Split(8, 1) {
		t.Error("base seed ignored")
	}
}

// TestRunWorkerCountCapped: more workers than jobs must not deadlock or
// run anything twice.
func TestRunWorkerCountCapped(t *testing.T) {
	var ran atomic.Int32
	ws, err := Run(Options{Workers: 64}, 3, func(w *Worker, i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran = %d, want 3", ran.Load())
	}
	if len(ws) > 3 {
		t.Fatalf("spawned %d workers for 3 jobs", len(ws))
	}
	_ = runtime.GOMAXPROCS(0)
}
