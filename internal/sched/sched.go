// Package sched is EMBSAN's deterministic parallel campaign executor. It
// runs independent, index-addressed jobs (fuzzing campaigns, replay sweeps,
// overhead probes) across a pool of workers, where each worker owns warmed
// emulated machines that are reset between jobs via snapshot/restore
// instead of full re-construction.
//
// Determinism contract: a job must be a pure function of its index — seeds
// are derived per index with Split, and pooled machines are fully rewound
// (Machine.Restore + Machine.Reseed, Runtime.Restore) before reuse — so
// merged results are bit-identical regardless of worker count or which
// worker happens to claim which job.
//
// Race invariant: one Machine per goroutine, merge by index. Each worker
// exclusively owns its pooled machines and its counters; a job writes its
// result only at its own index; the caller reads merged results in index
// order only after Run returns. The only cross-goroutine traffic is the
// atomic job cursor and the per-index result/error slots, each touched by
// exactly one job.
package sched

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes the executor.
type Options struct {
	// Workers is the pool size. <= 0 means GOMAXPROCS; 1 runs every job
	// inline on the calling goroutine (the serial path).
	Workers int
	// PoolCap bounds how many warmed values each worker keeps (default 4).
	// Eviction is least-recently-used and only affects warm-up cost, never
	// results.
	PoolCap int
}

const defaultPoolCap = 4

// Counters is per-worker accounting, filled in by jobs via
// Worker.Counters and surfaced by the campaign stat formatters.
type Counters struct {
	Jobs    int    // jobs completed
	Execs   uint64 // fuzzer executions driven
	Resets  uint64 // snapshot restores (machine resets)
	TBHits  uint64 // translation-block cache hits
	Reports uint64 // sanitizer/fault findings recorded
}

// WorkerStats is one worker's final accounting.
type WorkerStats struct {
	Worker int
	Counters
}

// Worker is the per-goroutine context handed to every job it runs.
type Worker struct {
	id       int
	counters Counters
	poolCap  int
	pool     map[string]*list.Element
	order    *list.List // front = most recently used
}

type poolEntry struct {
	key   string
	value any
}

func newWorker(id, poolCap int) *Worker {
	if poolCap <= 0 {
		poolCap = defaultPoolCap
	}
	return &Worker{id: id, poolCap: poolCap, pool: make(map[string]*list.Element), order: list.New()}
}

// ID returns the worker's pool index (0-based).
func (w *Worker) ID() int { return w.id }

// Counters exposes the worker's accounting for jobs to add to.
func (w *Worker) Counters() *Counters { return &w.counters }

// Pooled returns the worker-local value for key, constructing it with
// build on first use. Values are private to one worker — this is what
// upholds the one-Machine-per-goroutine invariant — and the least
// recently used value is dropped once the worker holds more than PoolCap.
func Pooled[T any](w *Worker, key string, build func() (T, error)) (T, error) {
	if el, ok := w.pool[key]; ok {
		w.order.MoveToFront(el)
		return el.Value.(*poolEntry).value.(T), nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	w.pool[key] = w.order.PushFront(&poolEntry{key: key, value: v})
	for w.order.Len() > w.poolCap {
		oldest := w.order.Back()
		w.order.Remove(oldest)
		delete(w.pool, oldest.Value.(*poolEntry).key)
	}
	return v, nil
}

// Run executes jobs 0..n-1 across the worker pool and returns per-worker
// stats. fn must uphold the determinism contract above. When any job
// fails, workers stop claiming new jobs, in-flight jobs finish, and the
// error of the lowest failing index is returned (deterministic across
// schedules).
func Run(opts Options, n int, fn func(w *Worker, index int) error) ([]WorkerStats, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: negative job count %d", n)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil, nil
	}

	errs := make([]error, n)
	if workers <= 1 {
		// Serial path: same pooling and seed derivation, no goroutines.
		w := newWorker(0, opts.PoolCap)
		for i := 0; i < n; i++ {
			if err := fn(w, i); err != nil {
				return []WorkerStats{{Worker: 0, Counters: w.counters}}, err
			}
		}
		return []WorkerStats{{Worker: 0, Counters: w.counters}}, nil
	}

	var (
		cursor  atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
	)
	stats := make([]WorkerStats, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := newWorker(wi, opts.PoolCap)
			for !aborted.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				if err := fn(w, i); err != nil {
					errs[i] = err
					aborted.Store(true)
				}
			}
			stats[wi] = WorkerStats{Worker: wi, Counters: w.counters}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// MergeStats sums per-worker counters into one total.
func MergeStats(ws []WorkerStats) Counters {
	var total Counters
	for _, w := range ws {
		total.Jobs += w.Jobs
		total.Execs += w.Execs
		total.Resets += w.Resets
		total.TBHits += w.TBHits
		total.Reports += w.Reports
	}
	return total
}
