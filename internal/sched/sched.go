// Package sched is EMBSAN's deterministic parallel campaign executor. It
// runs independent, index-addressed jobs (fuzzing campaigns, replay sweeps,
// overhead probes) across a pool of workers, where each worker owns warmed
// emulated machines that are reset between jobs via snapshot/restore
// instead of full re-construction.
//
// Determinism contract: a job must be a pure function of its index — seeds
// are derived per index with Split, and pooled machines are fully rewound
// (Machine.Restore + Machine.Reseed, Runtime.Restore) before reuse — so
// merged results are bit-identical regardless of worker count or which
// worker happens to claim which job.
//
// Race invariant: one Machine per goroutine, merge by index. Each worker
// exclusively owns its pooled machines and its counters; a job writes its
// result only at its own index; the caller reads merged results in index
// order only after Run returns. The only cross-goroutine traffic is the
// atomic job cursor and the per-index result/error slots, each touched by
// exactly one job.
package sched

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
)

// Options tunes the executor.
type Options struct {
	// Workers is the pool size. <= 0 means GOMAXPROCS; 1 runs every job
	// inline on the calling goroutine (the serial path).
	Workers int
	// PoolCap bounds how many warmed values each worker keeps (default 4).
	// Eviction is least-recently-used and only affects warm-up cost, never
	// results.
	PoolCap int
}

const defaultPoolCap = 4

// Counters is a snapshot of one worker's accounting, surfaced by the
// campaign stat formatters. Jobs bump the live instruments (Worker.Inst)
// instead; the snapshot is taken once per worker when Run returns.
type Counters struct {
	Jobs    int    // jobs completed
	Execs   uint64 // fuzzer executions driven
	Resets  uint64 // snapshot restores (machine resets)
	TBHits  uint64 // translation-block cache hits
	Reports uint64 // sanitizer/fault findings recorded
	Frames  uint64 // backtrace frames attached to findings (forensics)
	// Elapsed is the worker's wall-clock lifetime. It is view-side only —
	// throughput columns divide Execs by it — and must never feed any
	// byte-identity oracle (see exps.MaskWallClock).
	Elapsed time.Duration
}

// WorkerStats is one worker's final accounting.
type WorkerStats struct {
	Worker int
	Counters
}

// Instruments is the worker's live accounting, backed by the worker's
// obs.Registry. Each counter is owned by exactly one worker goroutine, so
// bumping it is race-free without atomics.
type Instruments struct {
	Jobs    *obs.Counter
	Execs   *obs.Counter
	Resets  *obs.Counter
	TBHits  *obs.Counter
	Reports *obs.Counter
	Frames  *obs.Counter
}

// Worker is the per-goroutine context handed to every job it runs.
type Worker struct {
	id      int
	metrics *obs.Registry
	inst    Instruments
	ring    *obs.Ring
	sampler *timeline.Sampler
	start   time.Time
	poolCap int
	pool    map[string]*list.Element
	order   *list.List // front = most recently used
}

type poolEntry struct {
	key   string
	value any
}

func newWorker(id, poolCap int) *Worker {
	if poolCap <= 0 {
		poolCap = defaultPoolCap
	}
	w := &Worker{id: id, metrics: obs.NewRegistry(), start: time.Now(),
		poolCap: poolCap,
		pool:    make(map[string]*list.Element), order: list.New()}
	w.inst = Instruments{
		Jobs:    w.metrics.Counter("sched.worker.jobs"),
		Execs:   w.metrics.Counter("sched.worker.execs"),
		Resets:  w.metrics.Counter("sched.worker.resets"),
		TBHits:  w.metrics.Counter("sched.worker.tb_hits"),
		Reports: w.metrics.Counter("sched.worker.reports"),
		Frames:  w.metrics.Counter("sched.worker.frames"),
	}
	return w
}

// ID returns the worker's pool index (0-based).
func (w *Worker) ID() int { return w.id }

// Inst exposes the worker's live accounting instruments for jobs to bump.
func (w *Worker) Inst() Instruments { return w.inst }

// Metrics is the worker-private registry behind Inst. Callers may register
// additional worker-scoped instruments in it and merge registries across
// workers after Run returns.
func (w *Worker) Metrics() *obs.Registry { return w.metrics }

// TraceRing returns the worker's event ring, lazily allocated at the given
// capacity (events). The ring is worker-private; jobs that capture traces
// Reset it at job start and copy events out at job end, so the buffer is
// reused across jobs without its contents leaking between them.
func (w *Worker) TraceRing(capacity int) *obs.Ring {
	if w.ring == nil || w.ring.Cap() != capacity {
		w.ring = obs.NewRing(capacity)
	}
	return w.ring
}

// TimelineSampler returns the worker's timeline sampler, lazily allocated
// with the given interval and sample capacity. Like TraceRing it is
// worker-private and reused across jobs: the job Resets it at start and
// copies samples out at end, so the preallocated buffers never leak
// between jobs and a steady-state campaign set allocates nothing per job.
func (w *Worker) TimelineSampler(interval uint64, maxSamples int) *timeline.Sampler {
	// Normalise like NewSampler does, so passing zeros on every job reuses
	// one default-shaped sampler instead of reallocating each time.
	if interval == 0 {
		interval = timeline.DefaultInterval
	}
	if maxSamples <= 0 {
		maxSamples = timeline.DefaultMaxSamples
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	if w.sampler == nil || w.sampler.BaseInterval() != interval || w.sampler.Cap() != maxSamples {
		w.sampler = timeline.NewSampler(interval, maxSamples)
	}
	return w.sampler
}

// stats snapshots the live instruments into the stable Counters form.
func (w *Worker) stats() Counters {
	return Counters{
		Jobs:    int(w.inst.Jobs.Value()),
		Execs:   w.inst.Execs.Value(),
		Resets:  w.inst.Resets.Value(),
		TBHits:  w.inst.TBHits.Value(),
		Reports: w.inst.Reports.Value(),
		Frames:  w.inst.Frames.Value(),
		Elapsed: time.Since(w.start),
	}
}

// Pooled returns the worker-local value for key, constructing it with
// build on first use. Values are private to one worker — this is what
// upholds the one-Machine-per-goroutine invariant — and the least
// recently used value is dropped once the worker holds more than PoolCap.
func Pooled[T any](w *Worker, key string, build func() (T, error)) (T, error) {
	if el, ok := w.pool[key]; ok {
		w.order.MoveToFront(el)
		return el.Value.(*poolEntry).value.(T), nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	w.pool[key] = w.order.PushFront(&poolEntry{key: key, value: v})
	for w.order.Len() > w.poolCap {
		oldest := w.order.Back()
		w.order.Remove(oldest)
		delete(w.pool, oldest.Value.(*poolEntry).key)
	}
	return v, nil
}

// Run executes jobs 0..n-1 across the worker pool and returns per-worker
// stats. fn must uphold the determinism contract above. When any job
// fails, workers stop claiming new jobs, in-flight jobs finish, and the
// error of the lowest failing index is returned (deterministic across
// schedules).
func Run(opts Options, n int, fn func(w *Worker, index int) error) ([]WorkerStats, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: negative job count %d", n)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil, nil
	}

	errs := make([]error, n)
	if workers <= 1 {
		// Serial path: same pooling and seed derivation, no goroutines.
		w := newWorker(0, opts.PoolCap)
		for i := 0; i < n; i++ {
			if err := fn(w, i); err != nil {
				return []WorkerStats{{Worker: 0, Counters: w.stats()}}, err
			}
		}
		return []WorkerStats{{Worker: 0, Counters: w.stats()}}, nil
	}

	var (
		cursor  atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
	)
	stats := make([]WorkerStats, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := newWorker(wi, opts.PoolCap)
			for !aborted.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				if err := fn(w, i); err != nil {
					errs[i] = err
					aborted.Store(true)
				}
			}
			stats[wi] = WorkerStats{Worker: wi, Counters: w.stats()}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// MergeStats sums per-worker counters into one total. Elapsed is the
// maximum across workers — the pool's wall-clock makespan — because the
// workers ran concurrently and summing their lifetimes would overstate
// the denominator of any aggregate throughput figure.
func MergeStats(ws []WorkerStats) Counters {
	var total Counters
	for _, w := range ws {
		total.Jobs += w.Jobs
		total.Execs += w.Execs
		total.Resets += w.Resets
		total.TBHits += w.TBHits
		total.Reports += w.Reports
		total.Frames += w.Frames
		if w.Elapsed > total.Elapsed {
			total.Elapsed = w.Elapsed
		}
	}
	return total
}
