// Package isa defines the EVA32 instruction set architecture used by every
// guest firmware in this repository, together with the three binary
// architecture frontends (arm32e, mips32e, x86e) that the emulator and the
// toolchain understand.
//
// EVA32 is a 32-bit load/store RISC machine with sixteen general-purpose
// registers and fixed-width 32-bit instructions. All three architecture
// frontends decode to the same canonical micro-operation set; they differ in
// the opcode byte assignment and in byte order, which is exactly the level of
// diversity EMBSAN's multi-architecture support has to bridge (per-arch
// decoding plus per-arch trap instruction selection).
package isa

import "fmt"

// Op is a canonical EVA32 micro-operation.
type Op uint8

// Canonical operations. The numeric values double as the canonical-frontend
// opcode byte assignment; the other frontends permute these bytes.
const (
	OpInvalid Op = iota

	// Register-register ALU.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpMUL
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpSLT
	OpSLTU

	// Register-immediate ALU.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU

	// Upper-immediate.
	OpLUI
	OpAUIPC

	// Loads.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW

	// Stores.
	OpSB
	OpSH
	OpSW

	// Branches (target = pc + imm*4).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // rd = pc+4; pc += imm20*4
	OpJALR // rd = pc+4; pc = (rs1+imm) &^ 1

	// Atomics (word-sized).
	OpAMOADDW  // rd = mem[rs1]; mem[rs1] += rs2
	OpAMOSWAPW // rd = mem[rs1]; mem[rs1] = rs2
	OpAMOORW   // rd = mem[rs1]; mem[rs1] |= rs2
	OpAMOANDW  // rd = mem[rs1]; mem[rs1] &= rs2
	OpLRW      // load-reserved
	OpSCW      // store-conditional: rd = 0 on success, 1 on failure

	// System.
	OpECALL  // environment call into the guest kernel (unused trap in bare firmware)
	OpEBREAK // debugger breakpoint; halts the hart with a fault
	OpHCALL  // hypercall to the host (the vmcall analogue); imm selects the service
	OpHALT   // stop this hart
	OpFENCE  // memory fence; an ordering no-op on this machine
	OpCSRR   // rd = CSR[imm]
	OpCSRW   // CSR[imm] = rs1 (scratch CSRs only)
	OpYIELD  // hint: relinquish the current scheduling quantum

	// Sanitizer check pseudo-instruction, emitted only by EMBSAN-C builds.
	// The host interprets it directly: check access at rs1+imm, with the
	// access size and direction packed into rd (see SanckInfo). It never
	// touches guest architectural state, which is what lets the compile-time
	// instrumentation avoid spilling live registers.
	OpSANCK

	opMax
)

// NumOps is the number of canonical operations (including OpInvalid).
const NumOps = int(opMax)

// Register numbers and their ABI names.
const (
	RegZero = 0  // hardwired zero
	RegRA   = 1  // return address
	RegSP   = 2  // stack pointer
	RegA0   = 3  // argument/return 0
	RegA1   = 4  // argument 1
	RegA2   = 5  // argument 2
	RegA3   = 6  // argument 3
	RegA4   = 7  // argument 4
	RegA5   = 8  // argument 5
	RegA6   = 9  // argument 6
	RegA7   = 10 // argument 7
	RegT0   = 11 // temporary 0
	RegT1   = 12 // temporary 1
	RegK0   = 13 // sanitizer-reserved scratch 0 (general s0 in unsanitized builds)
	RegK1   = 14 // sanitizer-reserved scratch 1 (general s1 in unsanitized builds)
	RegK2   = 15 // sanitizer-reserved link   (general s2 in unsanitized builds)

	NumRegs = 16
)

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "a0", "a1", "a2", "a3", "a4",
	"a5", "a6", "a7", "t0", "t1", "k0", "k1", "k2",
}

// RegName returns the ABI name of register r.
func RegName(r uint8) string {
	if int(r) < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// RegByName maps an ABI register name to its number.
func RegByName(name string) (uint8, bool) {
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	// Accept raw rN spellings too.
	var n int
	if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && n >= 0 && n < NumRegs {
		return uint8(n), true
	}
	return 0, false
}

// Inst is a decoded canonical instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended imm12, or imm20 for LUI/AUIPC/JAL
}

// Class groups operations for instrumentation-probe selection: the EMBSAN
// runtime registers probes per class and the translation engine inserts
// callbacks only where a class has a registered probe.
type Class uint8

const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassAtomic
	ClassBranch
	ClassJump
	ClassSystem
	ClassSanck

	NumClasses
)

// ClassOf reports the instrumentation class of op.
func ClassOf(op Op) Class {
	switch op {
	case OpLB, OpLBU, OpLH, OpLHU, OpLW, OpLRW:
		return ClassLoad
	case OpSB, OpSH, OpSW, OpSCW:
		return ClassStore
	case OpAMOADDW, OpAMOSWAPW, OpAMOORW, OpAMOANDW:
		return ClassAtomic
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR:
		return ClassJump
	case OpECALL, OpEBREAK, OpHCALL, OpHALT, OpFENCE, OpCSRR, OpCSRW, OpYIELD:
		return ClassSystem
	case OpSANCK:
		return ClassSanck
	default:
		return ClassALU
	}
}

// AccessSize returns the memory access width in bytes for load/store/atomic
// operations, and 0 for everything else.
func AccessSize(op Op) uint32 {
	switch op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpSW, OpLRW, OpSCW, OpAMOADDW, OpAMOSWAPW, OpAMOORW, OpAMOANDW:
		return 4
	}
	return 0
}

// IsWrite reports whether op writes memory (atomics count as writes).
func IsWrite(op Op) bool {
	switch op {
	case OpSB, OpSH, OpSW, OpSCW, OpAMOADDW, OpAMOSWAPW, OpAMOORW, OpAMOANDW:
		return true
	}
	return false
}

// Terminates reports whether op ends a translation block.
func Terminates(op Op) bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU,
		OpJAL, OpJALR, OpECALL, OpEBREAK, OpHALT, OpYIELD:
		return true
	}
	return false
}

// CSR numbers readable through OpCSRR.
const (
	CSRHartID   = 0 // current hart index
	CSRCycles   = 1 // retired-instruction counter (low 32 bits)
	CSRNHarts   = 2 // number of harts on the machine
	CSRRand     = 3 // deterministic per-machine pseudo-random stream
	CSRScratch0 = 8 // per-hart scratch (read/write)
	CSRScratch1 = 9 // per-hart scratch (read/write)
)

// Hypercall numbers (the imm field of OpHCALL). Numbers below 64 are
// reserved for the platform; the sanitizer dummy-library calls that
// EMBSAN-C links against live at 64 and above.
const (
	HcallExit    = 1 // a0 = exit code; stops the whole machine
	HcallPutc    = 2 // a0 = byte to emit on the host console
	HcallReady   = 3 // firmware reached its ready-to-run state
	HcallSpawn   = 4 // start hart a0 at pc a1 with sp a2
	HcallBugMark = 5 // test hook: a0 = seeded-bug identifier being triggered

	// Dummy sanitizer library (EMBSAN-C linkage). Each entry corresponds to
	// one interception API distilled from the reference sanitizer sources.
	HcallSanAlloc    = 64 // a0 = ptr, a1 = size
	HcallSanFree     = 65 // a0 = ptr
	HcallSanCacheNew = 66 // a0 = object size, a1 = redzone size
	HcallSanPoison   = 67 // a0 = addr, a1 = size, a2 = code
	HcallSanUnpoison = 68 // a0 = addr, a1 = size
	HcallSanMemcpy   = 69 // a0 = dst, a1 = src, a2 = len (range interceptor)
	HcallSanMemset   = 70 // a0 = dst, a1 = val, a2 = len
)

// SanckInfo packs/unpacks the rd field of OpSANCK.
// Layout: bit0 = write flag, bits1..2 = log2(size), bit3 = atomic flag.
func SanckInfo(size uint32, write, atomic bool) uint8 {
	var l uint8
	switch size {
	case 1:
		l = 0
	case 2:
		l = 1
	case 4:
		l = 2
	default:
		panic(fmt.Sprintf("isa: invalid SANCK size %d", size))
	}
	v := l << 1
	if write {
		v |= 1
	}
	if atomic {
		v |= 8
	}
	return v
}

// SanckDecode is the inverse of SanckInfo.
func SanckDecode(rd uint8) (size uint32, write, atomic bool) {
	return 1 << ((rd >> 1) & 3), rd&1 == 1, rd&8 != 0
}

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpMUL: "mul", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpSLT: "slt", OpSLTU: "sltu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai", OpSLTI: "slti", OpSLTIU: "sltiu",
	OpLUI: "lui", OpAUIPC: "auipc",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu", OpLW: "lw",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpAMOADDW: "amoadd.w", OpAMOSWAPW: "amoswap.w", OpAMOORW: "amoor.w", OpAMOANDW: "amoand.w",
	OpLRW: "lr.w", OpSCW: "sc.w",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpHCALL: "hcall", OpHALT: "halt",
	OpFENCE: "fence", OpCSRR: "csrr", OpCSRW: "csrw", OpYIELD: "yield",
	OpSANCK: "sanck",
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// OpByName maps an assembler mnemonic to its canonical operation.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name && n != "" {
			return Op(i), true
		}
	}
	return OpInvalid, false
}
