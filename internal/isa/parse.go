package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDisasm is the inverse of Disasm: it parses one line of disassembly
// back into a canonical instruction. pc must be the address the line was
// disassembled at, since Disasm renders branch and jump targets as absolute
// addresses. Fields that Disasm does not print (e.g. rd of a plain store)
// parse back as zero, matching how the toolchain encodes them.
func ParseDisasm(s string, pc uint32) (Inst, error) {
	fields := strings.Fields(strings.ReplaceAll(s, ",", " "))
	if len(fields) == 0 {
		return Inst{}, fmt.Errorf("isa: empty disassembly line")
	}
	op, ok := OpByName(fields[0])
	if !ok {
		return Inst{}, fmt.Errorf("isa: unknown mnemonic %q", fields[0])
	}
	in := Inst{Op: op}
	args := fields[1:]

	argErr := func() (Inst, error) {
		return Inst{}, fmt.Errorf("isa: malformed %s operands %q", op.Name(), strings.Join(args, " "))
	}
	need := func(n int) bool { return len(args) == n }
	reg := func(tok string) (uint8, bool) { return RegByName(tok) }
	num := func(tok string) (int64, bool) {
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(tok, 0, 32)
			if uerr != nil {
				return 0, false
			}
			return int64(u), true
		}
		return v, true
	}
	// mem parses "off(reg)" or "(reg)".
	mem := func(tok string) (uint8, int32, bool) {
		open := strings.IndexByte(tok, '(')
		if open < 0 || !strings.HasSuffix(tok, ")") {
			return 0, 0, false
		}
		r, ok := reg(tok[open+1 : len(tok)-1])
		if !ok {
			return 0, 0, false
		}
		var off int64
		if open > 0 {
			off, ok = num(tok[:open])
			if !ok {
				return 0, 0, false
			}
		}
		return r, int32(off), true
	}
	// target converts an absolute address back to a word-relative immediate.
	target := func(tok string) (int32, bool) {
		v, ok := num(tok)
		if !ok {
			return 0, false
		}
		return int32(uint32(v)-pc) / 4, true
	}

	switch ClassOf(op) {
	case ClassLoad:
		if op == OpLRW {
			if !need(2) {
				return argErr()
			}
			rd, ok1 := reg(args[0])
			rs1, _, ok2 := mem(args[1])
			if !ok1 || !ok2 {
				return argErr()
			}
			in.Rd, in.Rs1 = rd, rs1
			return in, nil
		}
		if !need(2) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		rs1, off, ok2 := mem(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, off
		return in, nil
	case ClassStore:
		if op == OpSCW {
			if !need(3) {
				return argErr()
			}
			rd, ok1 := reg(args[0])
			rs2, ok2 := reg(args[1])
			rs1, _, ok3 := mem(args[2])
			if !ok1 || !ok2 || !ok3 {
				return argErr()
			}
			in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
			return in, nil
		}
		if !need(2) {
			return argErr()
		}
		rs2, ok1 := reg(args[0])
		rs1, off, ok2 := mem(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rs1, in.Rs2, in.Imm = rs1, rs2, off
		return in, nil
	case ClassAtomic:
		if !need(3) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		rs2, ok2 := reg(args[1])
		rs1, _, ok3 := mem(args[2])
		if !ok1 || !ok2 || !ok3 {
			return argErr()
		}
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		return in, nil
	case ClassBranch:
		if !need(3) {
			return argErr()
		}
		rs1, ok1 := reg(args[0])
		rs2, ok2 := reg(args[1])
		imm, ok3 := target(args[2])
		if !ok1 || !ok2 || !ok3 {
			return argErr()
		}
		in.Rs1, in.Rs2, in.Imm = rs1, rs2, imm
		return in, nil
	case ClassSanck:
		// "sanck w4, off(rs1)" / "r1" / "ar4" — direction, size, base.
		if !need(2) {
			return argErr()
		}
		dir := args[0]
		atomic := strings.HasPrefix(dir, "a") && len(dir) > 2
		if atomic {
			dir = dir[1:]
		}
		if len(dir) < 2 || (dir[0] != 'r' && dir[0] != 'w') {
			return argErr()
		}
		size, ok1 := num(dir[1:])
		rs1, off, ok2 := mem(args[1])
		if !ok1 || !ok2 || (size != 1 && size != 2 && size != 4) {
			return argErr()
		}
		in.Rd = SanckInfo(uint32(size), dir[0] == 'w', atomic)
		in.Rs1, in.Imm = rs1, off
		return in, nil
	}

	switch op {
	case OpLUI, OpAUIPC:
		if !need(2) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		v, ok2 := num(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		imm := int32(v) & 0xFFFFF
		if imm&(1<<19) != 0 {
			imm |= ^int32(0xFFFFF)
		}
		in.Rd, in.Imm = rd, imm
		return in, nil
	case OpJAL:
		if !need(2) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		imm, ok2 := target(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rd, in.Imm = rd, imm
		return in, nil
	case OpJALR:
		if !need(2) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		rs1, off, ok2 := mem(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, off
		return in, nil
	case OpHCALL, OpECALL:
		if !need(1) {
			return argErr()
		}
		v, ok := num(args[0])
		if !ok {
			return argErr()
		}
		in.Imm = int32(v)
		return in, nil
	case OpCSRR:
		if !need(2) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		v, ok2 := num(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rd, in.Imm = rd, int32(v)
		return in, nil
	case OpCSRW:
		if !need(2) {
			return argErr()
		}
		rs1, ok1 := reg(args[0])
		v, ok2 := num(args[1])
		if !ok1 || !ok2 {
			return argErr()
		}
		in.Rs1, in.Imm = rs1, int32(v)
		return in, nil
	case OpEBREAK, OpHALT, OpFENCE, OpYIELD:
		if !need(0) {
			return argErr()
		}
		return in, nil
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpSLTI, OpSLTIU:
		if !need(3) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		rs1, ok2 := reg(args[1])
		v, ok3 := num(args[2])
		if !ok1 || !ok2 || !ok3 {
			return argErr()
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, int32(v)
		return in, nil
	default: // register-register ALU
		if !need(3) {
			return argErr()
		}
		rd, ok1 := reg(args[0])
		rs1, ok2 := reg(args[1])
		rs2, ok3 := reg(args[2])
		if !ok1 || !ok2 || !ok3 {
			return argErr()
		}
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		return in, nil
	}
}
