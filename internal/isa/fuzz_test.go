package isa

import "testing"

// FuzzDecode feeds arbitrary instruction words to every architecture
// frontend. Decode must never panic, and any word it accepts must survive
// the Encode round-trip bit-exactly (the decoder is a bijection on the
// accepted subset) and disassemble without panicking.
func FuzzDecode(f *testing.F) {
	for _, w := range []uint32{
		0x00000000, 0xFFFFFFFF, 0x01234567, 0xA5000000,
		0x40000000, 0x7FF00FFF, 0x80000800,
	} {
		for a := Arch(0); a < NumArchs; a++ {
			f.Add(w, uint8(a))
		}
	}
	f.Fuzz(func(t *testing.T, word uint32, archSel uint8) {
		arch := Arch(archSel % uint8(NumArchs))
		inst, err := Decode(word, arch)
		if err != nil {
			return
		}
		_ = Disasm(inst, 0x1000)
		back, err := Encode(inst, arch)
		if err != nil {
			t.Fatalf("%s: decoded %#08x to %+v but cannot re-encode: %v", arch, word, inst, err)
		}
		if back != word {
			t.Fatalf("%s: round trip %#08x -> %+v -> %#08x", arch, word, inst, back)
		}
	})
}
