package isa

import (
	"encoding/binary"
	"fmt"
)

// Arch identifies one of the binary architecture frontends. Every frontend
// decodes to the same canonical operation set but uses its own opcode byte
// assignment and byte order, so firmware images are not binary-portable
// between architectures — the property that forces EMBSAN to carry per-arch
// decode tables and per-arch trap instruction selection.
type Arch uint8

const (
	// ArchARM32E is the little-endian reference frontend.
	ArchARM32E Arch = iota
	// ArchMIPS32E is big-endian with a rotated opcode space.
	ArchMIPS32E
	// ArchX86E is little-endian with an XOR-scrambled opcode space.
	ArchX86E

	NumArchs
)

var archNames = [NumArchs]string{"arm32e", "mips32e", "x86e"}

func (a Arch) String() string {
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch%d", a)
}

// ArchByName maps a frontend name to its Arch value.
func ArchByName(name string) (Arch, bool) {
	for i, n := range archNames {
		if n == name {
			return Arch(i), true
		}
	}
	return 0, false
}

// ByteOrder returns the byte order the frontend uses for both instruction
// words and data accesses.
func (a Arch) ByteOrder() binary.ByteOrder {
	if a == ArchMIPS32E {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// opcode scrambling per frontend. Each table is a bijection over the byte
// space; decode applies the inverse.
func (a Arch) scramble(op byte) byte {
	switch a {
	case ArchMIPS32E:
		return op + 0x40 // rotate
	case ArchX86E:
		return op ^ 0xA5
	default:
		return op
	}
}

func (a Arch) unscramble(b byte) byte {
	switch a {
	case ArchMIPS32E:
		return b - 0x40
	case ArchX86E:
		return b ^ 0xA5
	default:
		return b
	}
}

// Instruction word layout (canonical, before opcode scrambling):
//
//	[31:24] opcode
//	[23:20] rd
//	[19:16] rs1
//	[15:12] rs2
//	[11:0]  imm12 (sign-extended)
//
// U-format operations (LUI, AUIPC, JAL) reuse [19:0] as a sign-extended
// imm20, keeping rd in [23:20].

// isUFormat reports whether op carries a 20-bit immediate.
func isUFormat(op Op) bool {
	return op == OpLUI || op == OpAUIPC || op == OpJAL
}

// Encode packs a canonical instruction into a 32-bit word for arch.
func Encode(inst Inst, arch Arch) (uint32, error) {
	if inst.Op == OpInvalid || int(inst.Op) >= NumOps {
		return 0, fmt.Errorf("isa: cannot encode invalid op %d", inst.Op)
	}
	if inst.Rd >= NumRegs || inst.Rs1 >= NumRegs || inst.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %s", inst.Op.Name())
	}
	w := uint32(arch.scramble(byte(inst.Op))) << 24
	w |= uint32(inst.Rd&0xF) << 20
	if isUFormat(inst.Op) {
		if inst.Imm < -(1<<19) || inst.Imm >= 1<<20 {
			return 0, fmt.Errorf("isa: imm20 overflow %d in %s", inst.Imm, inst.Op.Name())
		}
		w |= uint32(inst.Imm) & 0xFFFFF
		return w, nil
	}
	if inst.Imm < -(1<<11) || inst.Imm >= 1<<11 {
		return 0, fmt.Errorf("isa: imm12 overflow %d in %s", inst.Imm, inst.Op.Name())
	}
	w |= uint32(inst.Rs1&0xF) << 16
	w |= uint32(inst.Rs2&0xF) << 12
	w |= uint32(inst.Imm) & 0xFFF
	return w, nil
}

// Decode unpacks a 32-bit word fetched from an arch-flavoured image.
func Decode(word uint32, arch Arch) (Inst, error) {
	op := Op(arch.unscramble(byte(word >> 24)))
	if op == OpInvalid || int(op) >= NumOps {
		return Inst{}, fmt.Errorf("isa: illegal opcode byte %#02x (%s)", byte(word>>24), arch)
	}
	inst := Inst{Op: op, Rd: uint8(word>>20) & 0xF}
	if isUFormat(op) {
		imm := int32(word & 0xFFFFF)
		if imm&(1<<19) != 0 {
			imm |= ^int32(0xFFFFF) // sign-extend 20 bits
		}
		inst.Imm = imm
		return inst, nil
	}
	inst.Rs1 = uint8(word>>16) & 0xF
	inst.Rs2 = uint8(word>>12) & 0xF
	imm := int32(word & 0xFFF)
	if imm&(1<<11) != 0 {
		imm |= ^int32(0xFFF) // sign-extend 12 bits
	}
	inst.Imm = imm
	return inst, nil
}

// PutWord stores a 32-bit instruction or data word using the frontend's
// byte order.
func (a Arch) PutWord(dst []byte, w uint32) {
	a.ByteOrder().PutUint32(dst, w)
}

// Word loads a 32-bit word using the frontend's byte order.
func (a Arch) Word(src []byte) uint32 {
	return a.ByteOrder().Uint32(src)
}

// Disasm renders inst as assembler text at pc (pc is used to resolve
// branch/jump targets into absolute addresses for readability).
func Disasm(inst Inst, pc uint32) string {
	n := inst.Op.Name()
	rd, r1, r2 := RegName(inst.Rd), RegName(inst.Rs1), RegName(inst.Rs2)
	switch ClassOf(inst.Op) {
	case ClassLoad:
		if inst.Op == OpLRW {
			return fmt.Sprintf("%s %s, (%s)", n, rd, r1)
		}
		return fmt.Sprintf("%s %s, %d(%s)", n, rd, inst.Imm, r1)
	case ClassStore:
		if inst.Op == OpSCW {
			return fmt.Sprintf("%s %s, %s, (%s)", n, rd, r2, r1)
		}
		return fmt.Sprintf("%s %s, %d(%s)", n, r2, inst.Imm, r1)
	case ClassAtomic:
		return fmt.Sprintf("%s %s, %s, (%s)", n, rd, r2, r1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %#x", n, r1, r2, uint32(int64(pc)+int64(inst.Imm)*4))
	case ClassSanck:
		size, wr, at := SanckDecode(inst.Rd)
		dir := "r"
		if wr {
			dir = "w"
		}
		if at {
			dir = "a" + dir
		}
		return fmt.Sprintf("%s %s%d, %d(%s)", n, dir, size, inst.Imm, r1)
	}
	switch inst.Op {
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, %#x", n, rd, uint32(inst.Imm)&0xFFFFF)
	case OpJAL:
		return fmt.Sprintf("%s %s, %#x", n, rd, uint32(int64(pc)+int64(inst.Imm)*4))
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", n, rd, inst.Imm, r1)
	case OpHCALL, OpECALL:
		return fmt.Sprintf("%s %d", n, inst.Imm)
	case OpCSRR:
		return fmt.Sprintf("%s %s, %d", n, rd, inst.Imm)
	case OpCSRW:
		return fmt.Sprintf("%s %s, %d", n, r1, inst.Imm)
	case OpEBREAK, OpHALT, OpFENCE, OpYIELD:
		return n
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpSLTI, OpSLTIU:
		return fmt.Sprintf("%s %s, %s, %d", n, rd, r1, inst.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", n, rd, r1, r2)
	}
}
