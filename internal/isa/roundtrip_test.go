package isa_test

import (
	"testing"

	"embsan/internal/guest/firmware"
	"embsan/internal/isa"
)

// synthProgram returns one representative instruction per canonical
// operation (plus extra operand variants), with only the fields Disasm
// prints populated — the encoding ignores the rest.
func synthProgram(t *testing.T) []isa.Inst {
	t.Helper()
	var prog []isa.Inst
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		switch isa.ClassOf(op) {
		case isa.ClassLoad:
			if op == isa.OpLRW {
				prog = append(prog, isa.Inst{Op: op, Rd: 5, Rs1: 6})
			} else {
				prog = append(prog, isa.Inst{Op: op, Rd: 5, Rs1: 6, Imm: -8})
			}
		case isa.ClassStore:
			if op == isa.OpSCW {
				prog = append(prog, isa.Inst{Op: op, Rd: 5, Rs1: 6, Rs2: 7})
			} else {
				prog = append(prog, isa.Inst{Op: op, Rs1: 6, Rs2: 7, Imm: 12})
			}
		case isa.ClassAtomic:
			prog = append(prog, isa.Inst{Op: op, Rd: 5, Rs1: 6, Rs2: 7})
		case isa.ClassBranch:
			prog = append(prog, isa.Inst{Op: op, Rs1: 5, Rs2: 6, Imm: -3})
		case isa.ClassSanck:
			prog = append(prog,
				isa.Inst{Op: op, Rd: isa.SanckInfo(4, true, false), Rs1: 6, Imm: 16},
				isa.Inst{Op: op, Rd: isa.SanckInfo(1, false, false), Rs1: 2, Imm: -4},
				isa.Inst{Op: op, Rd: isa.SanckInfo(4, false, true), Rs1: 3})
		default:
			switch op {
			case isa.OpJAL:
				prog = append(prog,
					isa.Inst{Op: op, Rd: isa.RegRA, Imm: 100},
					isa.Inst{Op: op, Rd: isa.RegZero, Imm: -20})
			case isa.OpJALR:
				prog = append(prog, isa.Inst{Op: op, Rd: isa.RegZero, Rs1: isa.RegRA})
			case isa.OpLUI, isa.OpAUIPC:
				prog = append(prog,
					isa.Inst{Op: op, Rd: 4, Imm: 0x12345},
					isa.Inst{Op: op, Rd: 4, Imm: -1})
			case isa.OpHCALL, isa.OpECALL:
				prog = append(prog, isa.Inst{Op: op, Imm: 64})
			case isa.OpCSRR:
				prog = append(prog, isa.Inst{Op: op, Rd: 5, Imm: 1})
			case isa.OpCSRW:
				prog = append(prog, isa.Inst{Op: op, Rs1: 5, Imm: 8})
			case isa.OpEBREAK, isa.OpHALT, isa.OpFENCE, isa.OpYIELD:
				prog = append(prog, isa.Inst{Op: op})
			case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
				isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpSLTIU:
				prog = append(prog, isa.Inst{Op: op, Rd: 4, Rs1: 5, Imm: -42})
			default:
				prog = append(prog, isa.Inst{Op: op, Rd: 4, Rs1: 5, Rs2: 6})
			}
		}
	}
	return prog
}

// roundTripText asserts decode → Disasm → ParseDisasm → Encode reproduces
// every word of text byte-identically.
func roundTripText(t *testing.T, arch isa.Arch, base uint32, text []byte) {
	t.Helper()
	for off := 0; off+4 <= len(text); off += 4 {
		pc := base + uint32(off)
		word := arch.Word(text[off:])
		in, err := isa.Decode(word, arch)
		if err != nil {
			t.Fatalf("pc %#x: decode %#08x: %v", pc, word, err)
		}
		line := isa.Disasm(in, pc)
		parsed, err := isa.ParseDisasm(line, pc)
		if err != nil {
			t.Fatalf("pc %#x: parse %q: %v", pc, line, err)
		}
		back, err := isa.Encode(parsed, arch)
		if err != nil {
			t.Fatalf("pc %#x: re-encode %q: %v", pc, line, err)
		}
		if back != word {
			t.Fatalf("pc %#x (%s): round trip %#08x -> %q -> %#08x", pc, arch, word, line, back)
		}
	}
}

// TestDisasmRoundTripAllOps covers every canonical operation in every
// frontend: assemble, decode, disassemble, reparse, reassemble —
// byte-identical.
func TestDisasmRoundTripAllOps(t *testing.T) {
	prog := synthProgram(t)
	for arch := isa.Arch(0); arch < isa.NumArchs; arch++ {
		const base = 0x1000
		text := make([]byte, 4*len(prog))
		for i, in := range prog {
			w, err := isa.Encode(in, arch)
			if err != nil {
				t.Fatalf("%s: encode %s: %v", arch, in.Op.Name(), err)
			}
			arch.PutWord(text[4*i:], w)
		}
		roundTripText(t, arch, base, text)
	}
}

// TestDisasmRoundTripFirmware round-trips the full text section of one
// built firmware per frontend.
func TestDisasmRoundTripFirmware(t *testing.T) {
	for _, name := range []string{
		"OpenWRT-armvirt", // arm32e
		"OpenWRT-bcm63xx", // mips32e
		"OpenWRT-x86_64",  // x86e
	} {
		fw, err := firmware.Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		roundTripText(t, fw.Image.Arch, fw.Image.Base, fw.Image.Text)
	}
}
