package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: RegA0, Rs1: RegA1, Rs2: RegA2},
		{Op: OpADDI, Rd: RegT0, Rs1: RegSP, Imm: -16},
		{Op: OpLUI, Rd: RegA0, Imm: 0xF0000 - (1 << 20)}, // negative imm20 bit pattern
		{Op: OpLUI, Rd: RegA0, Imm: 0x12345},
		{Op: OpJAL, Rd: RegRA, Imm: -1024},
		{Op: OpLW, Rd: RegA0, Rs1: RegSP, Imm: 8},
		{Op: OpSW, Rs1: RegSP, Rs2: RegA0, Imm: -4},
		{Op: OpBEQ, Rs1: RegA0, Rs2: RegZero, Imm: 12},
		{Op: OpHCALL, Imm: HcallSanAlloc},
		{Op: OpSANCK, Rd: SanckInfo(4, true, false), Rs1: RegA1, Imm: 36},
		{Op: OpAMOSWAPW, Rd: RegT0, Rs1: RegA0, Rs2: RegT1},
		{Op: OpCSRR, Rd: RegA0, Imm: CSRHartID},
		{Op: OpHALT},
	}
	for _, arch := range []Arch{ArchARM32E, ArchMIPS32E, ArchX86E} {
		for _, in := range cases {
			w, err := Encode(in, arch)
			if err != nil {
				t.Fatalf("%s: encode %+v: %v", arch, in, err)
			}
			got, err := Decode(w, arch)
			if err != nil {
				t.Fatalf("%s: decode %#x: %v", arch, w, err)
			}
			if isUFormat(in.Op) {
				// rs1/rs2 are folded into imm for U-format; only compare the rest.
				if got.Op != in.Op || got.Rd != in.Rd || got.Imm != in.Imm {
					t.Errorf("%s: roundtrip %+v -> %+v", arch, in, got)
				}
				continue
			}
			if got != in {
				t.Errorf("%s: roundtrip %+v -> %+v", arch, in, got)
			}
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	if _, err := Encode(Inst{Op: OpADDI, Imm: 4096}, ArchARM32E); err == nil {
		t.Error("imm12 overflow not rejected")
	}
	if _, err := Encode(Inst{Op: OpJAL, Imm: 1 << 20}, ArchARM32E); err == nil {
		t.Error("imm20 overflow not rejected")
	}
	if _, err := Encode(Inst{Op: OpInvalid}, ArchARM32E); err == nil {
		t.Error("invalid op not rejected")
	}
}

func TestArchEncodingsDiffer(t *testing.T) {
	in := Inst{Op: OpLW, Rd: RegA0, Rs1: RegSP, Imm: 4}
	wa, _ := Encode(in, ArchARM32E)
	wm, _ := Encode(in, ArchMIPS32E)
	wx, _ := Encode(in, ArchX86E)
	if wa == wm || wa == wx || wm == wx {
		t.Errorf("frontends must produce distinct encodings: %#x %#x %#x", wa, wm, wx)
	}
	// Cross-decoding must yield a different (or invalid) instruction.
	if got, err := Decode(wa, ArchX86E); err == nil && got == in {
		t.Error("x86e decoded an arm32e word to the same instruction")
	}
}

func TestScrambleIsBijective(t *testing.T) {
	for _, a := range []Arch{ArchARM32E, ArchMIPS32E, ArchX86E} {
		seen := map[byte]bool{}
		for i := 0; i < 256; i++ {
			s := a.scramble(byte(i))
			if seen[s] {
				t.Fatalf("%s: scramble collision at %d", a, i)
			}
			seen[s] = true
			if a.unscramble(s) != byte(i) {
				t.Fatalf("%s: unscramble(scramble(%d)) != %d", a, i, i)
			}
		}
	}
}

func TestSanckInfoRoundTrip(t *testing.T) {
	for _, size := range []uint32{1, 2, 4} {
		for _, wr := range []bool{false, true} {
			for _, at := range []bool{false, true} {
				rd := SanckInfo(size, wr, at)
				gs, gw, ga := SanckDecode(rd)
				if gs != size || gw != wr || ga != at {
					t.Errorf("SanckInfo(%d,%v,%v) -> %d -> (%d,%v,%v)", size, wr, at, rd, gs, gw, ga)
				}
			}
		}
	}
}

func TestClassAndAccessMetadata(t *testing.T) {
	if ClassOf(OpLW) != ClassLoad || ClassOf(OpSW) != ClassStore ||
		ClassOf(OpAMOADDW) != ClassAtomic || ClassOf(OpJAL) != ClassJump ||
		ClassOf(OpBEQ) != ClassBranch || ClassOf(OpHCALL) != ClassSystem ||
		ClassOf(OpSANCK) != ClassSanck || ClassOf(OpADD) != ClassALU {
		t.Error("ClassOf misclassifies")
	}
	if AccessSize(OpLB) != 1 || AccessSize(OpLH) != 2 || AccessSize(OpLW) != 4 ||
		AccessSize(OpAMOADDW) != 4 || AccessSize(OpADD) != 0 {
		t.Error("AccessSize wrong")
	}
	if IsWrite(OpLW) || !IsWrite(OpSW) || !IsWrite(OpAMOSWAPW) || !IsWrite(OpSCW) {
		t.Error("IsWrite wrong")
	}
	if !Terminates(OpJAL) || !Terminates(OpBEQ) || !Terminates(OpHALT) || Terminates(OpADD) {
		t.Error("Terminates wrong")
	}
}

func TestRegNames(t *testing.T) {
	for i := uint8(0); i < NumRegs; i++ {
		name := RegName(i)
		got, ok := RegByName(name)
		if !ok || got != i {
			t.Errorf("RegByName(RegName(%d)) = %d, %v", i, got, ok)
		}
	}
	if r, ok := RegByName("r7"); !ok || r != 7 {
		t.Error("raw rN spelling not accepted")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("bogus register accepted")
	}
}

func TestOpNamesRoundTrip(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.Name(), got, ok, op)
		}
	}
}

// Property: every 12-bit immediate survives an encode/decode round trip for
// every frontend, for a representative I-format op.
func TestQuickImmRoundTrip(t *testing.T) {
	f := func(raw int16, archSel uint8) bool {
		imm := int32(raw) % 2048 // [-2047, 2047]
		arch := Arch(archSel % uint8(NumArchs))
		in := Inst{Op: OpADDI, Rd: RegA0, Rs1: RegA1, Imm: imm}
		w, err := Encode(in, arch)
		if err != nil {
			return false
		}
		out, err := Decode(w, arch)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding any word either fails or yields an instruction that
// re-encodes to the same word (decode is a partial inverse of encode).
func TestQuickDecodeEncodeConsistency(t *testing.T) {
	f := func(w uint32, archSel uint8) bool {
		arch := Arch(archSel % uint8(NumArchs))
		in, err := Decode(w, arch)
		if err != nil {
			return true // illegal opcodes are allowed to fail
		}
		// Canonicalize: fields ignored on re-encode may differ (e.g. high imm
		// bits beyond the field width never exist after decode).
		back, err := Encode(in, arch)
		return err == nil && back == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := map[string]Inst{
		"lw a0, 8(sp)":        {Op: OpLW, Rd: RegA0, Rs1: RegSP, Imm: 8},
		"sw a0, -4(sp)":       {Op: OpSW, Rs1: RegSP, Rs2: RegA0, Imm: -4},
		"add a0, a1, a2":      {Op: OpADD, Rd: RegA0, Rs1: RegA1, Rs2: RegA2},
		"addi t0, sp, -16":    {Op: OpADDI, Rd: RegT0, Rs1: RegSP, Imm: -16},
		"hcall 3":             {Op: OpHCALL, Imm: 3},
		"halt":                {Op: OpHALT},
		"beq a0, zero, 0x10c": {Op: OpBEQ, Rs1: RegA0, Rs2: RegZero, Imm: 3},
	}
	for want, in := range cases {
		if got := Disasm(in, 0x100); got != want {
			t.Errorf("Disasm(%+v) = %q, want %q", in, got, want)
		}
	}
}
