package san

import "testing"

// Table-driven edge cases for the unified shadow: zero-size accesses,
// accesses straddling a redzone boundary, the last addressable byte of RAM,
// and snapshot round-trips of poisoned state.
func TestShadowEdgeCases(t *testing.T) {
	const ram = 1 << 16
	tests := []struct {
		name    string
		prep    func(s *Shadow)
		addr    uint32
		size    uint32
		wantOK  bool
		wantBad uint32 // checked only when !wantOK
	}{
		{
			name:   "zero-size access on poisoned memory is ok",
			prep:   func(s *Shadow) { s.Poison(0x100, 64, CodeHeapRedzone) },
			addr:   0x100,
			size:   0,
			wantOK: true,
		},
		{
			name:   "zero-size poison is a no-op",
			prep:   func(s *Shadow) { s.Poison(0x100, 0, CodeHeapRedzone) },
			addr:   0x100,
			size:   8,
			wantOK: true,
		},
		{
			name:   "zero-size unpoison is a no-op",
			prep:   func(s *Shadow) { s.Poison(0x100, 8, CodeHeapFree); s.Unpoison(0x100, 0) },
			addr:   0x100,
			size:   1,
			wantOK: false, wantBad: 0x100,
		},
		{
			name: "read up to the redzone boundary is ok",
			prep: func(s *Shadow) {
				s.Unpoison(0x200, 48)
				s.Poison(0x200+48, 16, CodeHeapRedzone)
			},
			addr:   0x200,
			size:   48,
			wantOK: true,
		},
		{
			name: "read straddling the redzone boundary reports the first redzone byte",
			prep: func(s *Shadow) {
				s.Unpoison(0x200, 48)
				s.Poison(0x200+48, 16, CodeHeapRedzone)
			},
			addr:   0x200 + 44,
			size:   8,
			wantOK: false, wantBad: 0x200 + 48,
		},
		{
			name: "straddle out of a sub-granule valid prefix",
			prep: func(s *Shadow) {
				// 13 valid bytes: granule 1 of the object keeps a validity
				// prefix of 5; byte 13 onward is an implicit redzone tail.
				s.Poison(0x300, 32, CodeHeapRedzone)
				s.Unpoison(0x300, 13)
			},
			addr:   0x300 + 10,
			size:   8,
			wantOK: false, wantBad: 0x300 + 13,
		},
		{
			name:   "last addressable byte of RAM is ok",
			prep:   func(s *Shadow) { s.Unpoison(ram-Granularity, Granularity) },
			addr:   ram - 1,
			size:   1,
			wantOK: true,
		},
		{
			name:   "poison covering the final granule flags the last byte",
			prep:   func(s *Shadow) { s.Poison(ram-Granularity, Granularity, CodeGlobalRedzone) },
			addr:   ram - 1,
			size:   1,
			wantOK: false, wantBad: ram - 1,
		},
		{
			name:   "access beyond shadow coverage is not judged",
			prep:   func(s *Shadow) {},
			addr:   ram + 64,
			size:   4,
			wantOK: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := NewShadow(ram)
			tc.prep(s)
			bad, code, ok := s.Check(tc.addr, tc.size)
			if ok != tc.wantOK {
				t.Fatalf("Check(%#x, %d): ok=%v code=%s, want ok=%v", tc.addr, tc.size, ok, CodeName(code), tc.wantOK)
			}
			if !ok && bad != tc.wantBad {
				t.Errorf("Check(%#x, %d): badAddr=%#x, want %#x", tc.addr, tc.size, bad, tc.wantBad)
			}
		})
	}
}

// TestShadowSnapshotRoundTripPoisoned: cloning a shadow with poisoned and
// partially valid granules and restoring through CopyFrom reproduces every
// verdict, including after the live shadow diverges.
func TestShadowSnapshotRoundTripPoisoned(t *testing.T) {
	const ram = 1 << 14
	s := NewShadow(ram)
	s.Poison(0x400, 128, CodeHeapRedzone)
	s.Unpoison(0x400, 29) // partial granule prefix
	s.Poison(ram-Granularity, Granularity, CodeStackRedzone)

	snap := s.Clone()

	verdict := func(sh *Shadow) [4]byte {
		var out [4]byte
		probes := []struct{ addr, size uint32 }{
			{0x400, 29}, {0x400 + 28, 4}, {ram - 1, 1}, {0x400 + 64, 8},
		}
		for i, p := range probes {
			_, code, ok := sh.Check(p.addr, p.size)
			if ok {
				out[i] = 0
			} else if code == 0 {
				out[i] = 1
			} else {
				out[i] = code
			}
		}
		return out
	}
	want := verdict(s)

	// Diverge the live shadow, then restore.
	s.Unpoison(0, ram)
	if got := verdict(s); got == want {
		t.Fatal("divergence probe did not change any verdict; test is vacuous")
	}
	s.CopyFrom(snap)
	if got := verdict(s); got != want {
		t.Errorf("verdicts after restore = %v, want %v", got, want)
	}

	// The snapshot itself must be unaffected by mutations to the original.
	s.Poison(0x400, 64, CodeHeapFree)
	if got := verdict(snap); got != want {
		t.Errorf("snapshot mutated through the original: %v, want %v", got, want)
	}
}
