package san

import (
	"testing"
	"testing/quick"
)

func TestShadowPoisonCheck(t *testing.T) {
	s := NewShadow(1 << 16)
	s.Poison(0x100, 0x100, CodeHeapUninit)

	if _, _, ok := s.Check(0x80, 8); !ok {
		t.Error("unpoisoned region flagged")
	}
	if bad, code, ok := s.Check(0x100, 4); ok || bad != 0x100 || code != CodeHeapUninit {
		t.Errorf("poisoned region not flagged: bad=%#x code=%#x ok=%v", bad, code, ok)
	}

	// Allocate 20 bytes inside: [0x100, 0x114).
	s.Unpoison(0x100, 20)
	if _, _, ok := s.Check(0x100, 20); !ok {
		t.Error("allocated object flagged")
	}
	if _, _, ok := s.Check(0x110, 4); !ok {
		t.Error("tail bytes 0x110..0x113 must be valid")
	}
	// Byte 20 (offset 0x114) is the granule's invalid tail.
	if bad, _, ok := s.Check(0x100, 21); ok || bad != 0x114 {
		t.Errorf("off-by-one not flagged: bad=%#x ok=%v", bad, ok)
	}
	if _, _, ok := s.Check(0x114, 1); ok {
		t.Error("slack byte not flagged")
	}
}

func TestShadowPartialLeadingGranule(t *testing.T) {
	s := NewShadow(1 << 16)
	// Valid everywhere; poison starting mid-granule.
	s.Poison(0x104, 12, CodeHeapRedzone)
	if _, _, ok := s.Check(0x100, 4); !ok {
		t.Error("bytes before mid-granule poison must stay valid")
	}
	if _, _, ok := s.Check(0x104, 1); ok {
		t.Error("mid-granule poison start not flagged")
	}
	if _, _, ok := s.Check(0x108, 8); ok {
		t.Error("following poisoned granule not flagged")
	}
}

func TestShadowRepoison(t *testing.T) {
	s := NewShadow(1 << 16)
	s.Poison(0x200, 64, CodeHeapUninit)
	s.Unpoison(0x200, 32)
	s.Poison(0x200, 32, CodeHeapFree)
	bad, code, ok := s.Check(0x200, 1)
	if ok || code != CodeHeapFree || bad != 0x200 {
		t.Errorf("freed object: bad=%#x code=%#x ok=%v", bad, code, ok)
	}
}

func TestShadowCodeNames(t *testing.T) {
	for _, c := range []byte{CodeStackRedzone, CodeGlobalRedzone, CodeHeapRedzone, CodeHeapFree, CodeHeapUninit, CodeNull} {
		name := CodeName(c)
		got, ok := CodeByName(name)
		if !ok || got != c {
			t.Errorf("CodeByName(CodeName(%#x)) = %#x, %v", c, got, ok)
		}
		if !IsPoison(c) {
			t.Errorf("IsPoison(%#x) = false", c)
		}
	}
	if IsPoison(0) || IsPoison(7) {
		t.Error("valid shadow bytes classified as poison")
	}
}

// Property: after poisoning a region and unpoisoning a sub-range, every
// access fully inside the sub-range is clean and every access crossing its
// end is flagged.
func TestQuickShadowAllocSemantics(t *testing.T) {
	f := func(rawBase uint16, rawSize uint8) bool {
		base := 0x1000 + uint32(rawBase&0x0FFF)&^7 // granule-aligned base
		size := uint32(rawSize%200) + 1
		s := NewShadow(1 << 16)
		s.Poison(0x1000, 0x2000, CodeHeapUninit)
		s.Unpoison(base, size)
		if _, _, ok := s.Check(base, size); !ok {
			return false
		}
		if _, _, ok := s.Check(base, size+1); ok {
			return false
		}
		_, _, ok := s.Check(base+size, 1)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowCloneRestore(t *testing.T) {
	s := NewShadow(1 << 12)
	s.Poison(0x100, 64, CodeHeapFree)
	snap := s.Clone()
	s.Unpoison(0x100, 64)
	if _, _, ok := s.Check(0x100, 8); !ok {
		t.Fatal("unpoison failed")
	}
	s.CopyFrom(snap)
	if _, _, ok := s.Check(0x100, 8); ok {
		t.Error("restore did not bring the poison back")
	}
}

func TestKASANEngineBasics(t *testing.T) {
	sh := NewShadow(1 << 16)
	k := NewKASAN(sh, 8)
	k.NoteHeapRegion(0x2000, 0x4000)

	k.OnAlloc(0x2000, 24, 0x111)
	if r := k.CheckAccess(0x2000, 24, true, 0x500, 0); r != nil {
		t.Errorf("in-bounds access flagged: %+v", r)
	}
	r := k.CheckAccess(0x2000+24, 1, true, 0x500, 0)
	if r == nil || r.Bug != BugOOB {
		t.Fatalf("OOB not flagged correctly: %+v", r)
	}
	if r.ChunkAddr != 0x2000 || r.ChunkSize != 24 || r.AllocPC != 0x111 {
		t.Errorf("OOB report lacks chunk context: %+v", r)
	}

	if r := k.OnFree(0x2000, 0x222, 0); r != nil {
		t.Fatalf("valid free reported: %+v", r)
	}
	r = k.CheckAccess(0x2008, 4, false, 0x501, 0)
	if r == nil || r.Bug != BugUAF || r.FreePC != 0x222 {
		t.Fatalf("UAF not flagged: %+v", r)
	}

	r = k.OnFree(0x2000, 0x333, 0)
	if r == nil || r.Bug != BugDoubleFree {
		t.Fatalf("double free not flagged: %+v", r)
	}
	r = k.OnFree(0x2F00, 0x444, 0)
	if r == nil || r.Bug != BugInvalidFree {
		t.Fatalf("invalid free not flagged: %+v", r)
	}

	if r := k.CheckAccess(0x10, 4, false, 0x502, 0); r == nil || r.Bug != BugNullDeref {
		t.Fatalf("null deref not flagged: %+v", r)
	}
}

func TestKASANSnapshotRestore(t *testing.T) {
	sh := NewShadow(1 << 16)
	k := NewKASAN(sh, 8)
	k.NoteHeapRegion(0x2000, 0x4000)
	k.OnAlloc(0x2000, 16, 1)
	st := k.Snapshot()
	shSnap := sh.Clone()

	k.OnFree(0x2000, 2, 0)
	k.OnAlloc(0x2100, 32, 3)
	k.RestoreState(st)
	sh.CopyFrom(shSnap)

	if k.LiveChunks() != 1 {
		t.Errorf("live chunks after restore = %d", k.LiveChunks())
	}
	if r := k.CheckAccess(0x2000, 16, false, 9, 0); r != nil {
		t.Errorf("restored alloc flagged: %+v", r)
	}
	if r := k.CheckAccess(0x2100, 8, false, 9, 0); r == nil {
		t.Error("rolled-back alloc still accessible")
	}
}

func TestKCSANRaceDetection(t *testing.T) {
	mem := map[uint32]uint32{}
	k := NewKCSAN(KCSANConfig{Slots: 2, SampleInterval: 1, Delay: 100},
		func(addr, size uint32) (uint32, bool) { return mem[addr], true })

	// Hart 0 samples a write -> watchpoint armed, stall requested.
	stall, rep := k.OnAccess(0x100, 4, true, 0x10, 0, false)
	if stall == 0 || rep != nil {
		t.Fatalf("expected stall: stall=%d rep=%v", stall, rep)
	}
	if k.ActiveWatchpoints() != 1 {
		t.Fatal("no watchpoint armed")
	}
	// Hart 1 writes the same word during the window -> race.
	_, rep = k.OnAccess(0x100, 4, true, 0x20, 1, false)
	if rep == nil || rep.Bug != BugRace || rep.OtherPC != 0x10 || rep.OtherHart != 0 {
		t.Fatalf("race not reported: %+v", rep)
	}
	// Hart 0 re-delivers through the spin window until finalisation.
	rep = redeliver(k, 0x100, 4, true, 0x10, 0)
	if rep == nil || rep.Bug != BugRace || rep.OtherPC != 0x20 {
		t.Fatalf("owner-side race not reported: %+v", rep)
	}
	if k.ActiveWatchpoints() != 0 {
		t.Error("watchpoint not consumed")
	}
}

// redeliver repeats an access until the engine stops requesting stalls,
// returning the final report (the emulator does this naturally by
// re-executing the stalled instruction).
func redeliver(k *KCSAN, addr, size uint32, write bool, pc uint32, hart int) *Report {
	for i := 0; i < 1000; i++ {
		stall, rep := k.OnAccess(addr, size, write, pc, hart, false)
		if stall == 0 {
			return rep
		}
	}
	return nil
}

func TestKCSANReadReadIsNotARace(t *testing.T) {
	k := NewKCSAN(KCSANConfig{Slots: 1, SampleInterval: 1, Delay: 100},
		func(addr, size uint32) (uint32, bool) { return 0, true })
	if stall, _ := k.OnAccess(0x100, 4, false, 0x10, 0, false); stall == 0 {
		t.Fatal("read not sampled")
	}
	_, rep := k.OnAccess(0x100, 4, false, 0x20, 1, false)
	if rep != nil {
		t.Fatalf("read/read flagged as race: %+v", rep)
	}
	if rep := redeliver(k, 0x100, 4, false, 0x10, 0); rep != nil {
		t.Fatalf("owner read/read flagged: %+v", rep)
	}
}

func TestKCSANValueChangeDetection(t *testing.T) {
	val := uint32(1)
	k := NewKCSAN(KCSANConfig{Slots: 1, SampleInterval: 1, Delay: 100},
		func(addr, size uint32) (uint32, bool) { return val, true })
	if stall, _ := k.OnAccess(0x200, 4, false, 0x10, 0, false); stall == 0 {
		t.Fatal("not sampled")
	}
	val = 2 // an uninstrumented writer changed the value during the window
	rep := redeliver(k, 0x200, 4, false, 0x10, 0)
	if rep == nil || rep.Bug != BugRace || rep.OtherHart != -1 {
		t.Fatalf("value-change race not reported: %+v", rep)
	}
}

func TestKCSANNonOverlappingAccess(t *testing.T) {
	k := NewKCSAN(KCSANConfig{Slots: 1, SampleInterval: 1, Delay: 100},
		func(addr, size uint32) (uint32, bool) { return 0, true })
	k.OnAccess(0x100, 4, true, 0x10, 0, false)
	_, rep := k.OnAccess(0x104, 4, true, 0x20, 1, false) // adjacent, no overlap
	if rep != nil {
		t.Fatalf("non-overlapping access flagged: %+v", rep)
	}
	_, rep = k.OnAccess(0x102, 4, true, 0x20, 1, false) // overlapping
	if rep == nil {
		t.Fatal("overlapping access not flagged")
	}
}

func TestReportSignatureAndFormat(t *testing.T) {
	r := &Report{
		Tool: ToolKASAN, Bug: BugUAF, Addr: 0x2000, Size: 4, Write: false,
		PC: 0x1234, Location: "ieee80211_scan_rx+0x24",
		ChunkAddr: 0x2000, ChunkSize: 64, AllocPC: 0x1100, FreePC: 0x1200,
	}
	if r.Signature() != "KASAN:use-after-free:ieee80211_scan_rx" {
		t.Errorf("signature = %q", r.Signature())
	}
	txt := r.Format(nil)
	for _, want := range []string{"BUG: KASAN: use-after-free", "Read of size 4", "Allocated at", "Freed at"} {
		if !contains(txt, want) {
			t.Errorf("report missing %q:\n%s", want, txt)
		}
	}
	race := &Report{Tool: ToolKCSAN, Bug: BugRace, Addr: 0x300, Size: 4, Write: true,
		PC: 1, OtherPC: 2, OtherHart: 1, OtherWrite: true, Location: "f"}
	if !contains(race.Format(nil), "race at addr") {
		t.Error("race report format wrong")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestBugTypeShortClasses(t *testing.T) {
	cases := map[BugType]string{
		BugOOB: "OOB Access", BugGlobalOOB: "OOB Access", BugWild: "OOB Access",
		BugUAF: "UAF", BugDoubleFree: "Double Free", BugRace: "Race",
		BugNullDeref: "Null Deref",
	}
	for b, want := range cases {
		if b.Short() != want {
			t.Errorf("%v.Short() = %q, want %q", b, b.Short(), want)
		}
	}
}
