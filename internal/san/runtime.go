package san

import (
	"fmt"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/obs"
)

// Native report kinds written to the SanDev by in-guest sanitizer runtimes.
const (
	NativeKindKASAN = 1 // Info carries the shadow poison code
	NativeKindKCSAN = 2 // Info carries the racing PC
)

// Options configures the Common Sanitizer Runtime for one machine.
type Options struct {
	// Spec is the merged sanitizer specification from the Distiller. It
	// decides which instruction classes and function interceptions are
	// hooked at all.
	Spec *dsl.Sanitizer
	// Platform is the probed platform configuration (heaps, allocator
	// interception points, suppression ranges). Required for EMBSAN-D.
	Platform *dsl.Platform
	// Init is the initial setup routine recorded during the dry run.
	Init *dsl.Init
	// Globals carries the EMBSAN-C build metadata for global redzones.
	Globals []kasm.GlobalMeta
	// Hypercalls enables the dummy sanitizer library fast path (EMBSAN-C).
	Hypercalls bool

	KCSAN        KCSANConfig
	Quarantine   int
	StopOnReport bool
}

// Runtime is the live sanitizer attached to a machine.
type Runtime struct {
	m    *emu.Machine
	opts Options

	kasan *KASAN
	kcsan *KCSAN
	ubsan bool // alignment checking (the adaptability demo of §5)

	// Which event classes the merged spec asked for.
	checkLoads   bool
	checkStores  bool
	checkAtomics bool
	trackAllocs  bool

	enabled  bool
	suppress []dsl.Region

	// raceSafe holds dispatch PCs the static lockset analysis proved can
	// never race (always-protected or hart-local); with elision on, the
	// concurrency sanitizer is not consulted at all for them. raceElided
	// counts the dispatches skipped this way. Safe behaviourally: those
	// sites carry arming weight 0 (so they never arm in any mode) and the
	// proof rules out the cross-hart overlaps phase 2 could observe.
	raceSafe   map[uint32]bool
	raceElided uint64

	pending map[pendKey][]pendingAlloc

	reports []*Report
	seen    map[string]bool

	// OnReport fires for every new (non-duplicate) report.
	OnReport func(*Report)

	// trace, when non-nil, receives allocator and report events.
	trace *obs.Ring

	// forensics arms full provenance capture: chunk alloc/free backtraces
	// (via the KASAN stacker) and EvFrame/EvQuarantine trace events. Off in
	// normal campaigns — the shadow stack itself is always maintained by
	// the emulator, but copying it per allocator event costs.
	forensics bool

	shadowSnap    *Shadow
	kasanSnap     *KASANState
	enabledAtSnap bool
}

type pendKey struct {
	hart  int
	entry uint32
}

type pendingAlloc struct {
	size uint32
	ra   uint32
}

// Attach builds the runtime from the DSL artefacts and hooks it into the
// machine: probes are inserted into the translation templates, function
// interception points become PC hooks, and (for EMBSAN-C firmware) the
// dummy sanitizer library hypercalls are redirected to the engines.
func Attach(m *emu.Machine, opts Options) (*Runtime, error) {
	if opts.Spec == nil {
		return nil, fmt.Errorf("san: no sanitizer specification")
	}
	rt := &Runtime{
		m:       m,
		opts:    opts,
		pending: make(map[pendKey][]pendingAlloc),
		seen:    make(map[string]bool),
	}

	wantsKASAN := false
	wantsKCSAN := false
	for _, it := range opts.Spec.Intercepts {
		for _, src := range it.Sources {
			switch src {
			case "kasan":
				wantsKASAN = true
			case "kcsan":
				wantsKCSAN = true
			case "ubsan":
				rt.ubsan = true
			}
		}
		switch it.Kind {
		case dsl.InterceptLoad:
			rt.checkLoads = true
		case dsl.InterceptStore:
			rt.checkStores = true
		case dsl.InterceptAtomic:
			rt.checkAtomics = true
		case dsl.InterceptFunc:
			if it.Action == dsl.ActionAlloc || it.Action == dsl.ActionFree {
				rt.trackAllocs = true
			}
		}
	}
	if !wantsKASAN && !wantsKCSAN && !rt.ubsan {
		// Single-sanitizer specs carry no source annotations; infer from name.
		switch opts.Spec.Name {
		case "kcsan":
			wantsKCSAN = true
		case "ubsan":
			rt.ubsan = true
		default:
			wantsKASAN = true
		}
	}

	shadow := NewShadow(m.RAMSize())
	if wantsKASAN {
		rt.kasan = NewKASAN(shadow, opts.Quarantine)
	}
	if wantsKCSAN {
		rt.kcsan = NewKCSAN(opts.KCSAN, func(addr, size uint32) (uint32, bool) {
			return m.Peek(addr, size)
		})
		// Deterministic guided sampling: arming is a pure function of the
		// machine's virtual clock, its live campaign seed, and the static
		// race-site priority map (installed later by the deployment layer;
		// lookups on an empty machine map are simply "no weight").
		rt.kcsan.SetGuidance(m.ICount, m.Seed, m.RaceSitePriority)
	}

	if opts.Platform != nil {
		rt.suppress = append(rt.suppress, opts.Platform.Suppress...)
	}

	// Instruction-class interception: probes in the translation templates.
	probes := emu.ProbeSet{}
	if rt.checkLoads || rt.checkStores || rt.checkAtomics {
		if opts.Hypercalls {
			// EMBSAN-C: only the compile-time SANCK sites trap; generic
			// load/store probes stay uninstalled, which is where the
			// EMBSAN-C speed advantage comes from.
			probes.Sanck = rt.onMem
		} else {
			probes.Mem = rt.onMem
		}
	}
	m.SetProbes(probes)

	// Function interception (EMBSAN-D): the Prober-discovered allocator
	// entry and exit points become PC hooks.
	if rt.trackAllocs && !opts.Hypercalls && opts.Platform != nil {
		for i := range opts.Platform.Allocs {
			a := opts.Platform.Allocs[i] // copy for closures
			sizeReg, ok := isa.RegByName(a.SizeArg)
			if !ok {
				return nil, fmt.Errorf("san: alloc %q: bad size register %q", a.Name, a.SizeArg)
			}
			retReg, ok := isa.RegByName(a.RetArg)
			if !ok {
				return nil, fmt.Errorf("san: alloc %q: bad ret register %q", a.Name, a.RetArg)
			}
			key := a.Entry
			m.HookPC(a.Entry, func(m *emu.Machine, h *emu.Hart) {
				if !rt.enabled {
					return
				}
				size := h.Regs[sizeReg]
				if rt.trace != nil {
					rt.trace.Emit(obs.Event{ICnt: m.ICount(), PC: key, Arg: size,
						Kind: obs.EvAllocEnter, Hart: uint8(h.ID)})
				}
				pk := pendKey{h.ID, key}
				rt.pending[pk] = append(rt.pending[pk], pendingAlloc{
					size: size,
					ra:   h.Regs[isa.RegRA],
				})
			})
			for _, exit := range a.Exits {
				m.HookPC(exit, func(m *emu.Machine, h *emu.Hart) {
					if !rt.enabled {
						return
					}
					pk := pendKey{h.ID, key}
					st := rt.pending[pk]
					if len(st) == 0 {
						return
					}
					p := st[len(st)-1]
					rt.pending[pk] = st[:len(st)-1]
					if rt.trace != nil {
						if rt.trace.Emit(obs.Event{ICnt: m.ICount(), PC: key, Addr: h.Regs[retReg],
							Arg: p.size, Kind: obs.EvAllocExit, Hart: uint8(h.ID)}) {
							rt.emitFrames(key, m.ICount(), h.ID)
						}
					}
					if rt.kasan != nil {
						rt.kasan.OnAlloc(h.Regs[retReg], p.size, p.ra)
					}
				})
			}
		}
		for i := range opts.Platform.Frees {
			f := opts.Platform.Frees[i]
			ptrReg, ok := isa.RegByName(f.PtrArg)
			if !ok {
				return nil, fmt.Errorf("san: free %q: bad ptr register %q", f.Name, f.PtrArg)
			}
			m.HookPC(f.Entry, func(m *emu.Machine, h *emu.Hart) {
				if !rt.enabled || rt.kasan == nil {
					return
				}
				ptr := h.Regs[ptrReg]
				if rt.trace != nil {
					if rt.trace.Emit(obs.Event{ICnt: m.ICount(), PC: f.Entry, Addr: ptr,
						Kind: obs.EvFree, Hart: uint8(h.ID)}) {
						rt.emitFrames(f.Entry, m.ICount(), h.ID)
					}
				}
				if r := rt.kasan.OnFree(ptr, h.Regs[isa.RegRA], h.ID); r != nil {
					rt.report(r)
				} else {
					rt.traceQuarantine(ptr, h.Regs[isa.RegRA], h.ID)
				}
			})
		}
	}

	// Dummy sanitizer library (EMBSAN-C): direct hypercall dispatch.
	if opts.Hypercalls {
		m.HandleHypercall(isa.HcallSanAlloc, func(m *emu.Machine, h *emu.Hart) {
			if rt.enabled && rt.kasan != nil {
				if rt.trace != nil {
					// The hypercall reports a completed allocation, so it maps
					// to the exit event alone.
					if rt.trace.Emit(obs.Event{ICnt: m.ICount(), PC: h.Regs[isa.RegRA],
						Addr: h.Regs[isa.RegA0], Arg: h.Regs[isa.RegA1],
						Kind: obs.EvAllocExit, Hart: uint8(h.ID)}) {
						rt.emitFrames(h.Regs[isa.RegRA], m.ICount(), h.ID)
					}
				}
				rt.kasan.OnAlloc(h.Regs[isa.RegA0], h.Regs[isa.RegA1], h.Regs[isa.RegRA])
			}
		})
		m.HandleHypercall(isa.HcallSanFree, func(m *emu.Machine, h *emu.Hart) {
			if !rt.enabled || rt.kasan == nil {
				return
			}
			if rt.trace != nil {
				if rt.trace.Emit(obs.Event{ICnt: m.ICount(), PC: h.Regs[isa.RegRA],
					Addr: h.Regs[isa.RegA0], Kind: obs.EvFree, Hart: uint8(h.ID)}) {
					rt.emitFrames(h.Regs[isa.RegRA], m.ICount(), h.ID)
				}
			}
			if r := rt.kasan.OnFree(h.Regs[isa.RegA0], h.Regs[isa.RegRA], h.ID); r != nil {
				rt.report(r)
			} else {
				rt.traceQuarantine(h.Regs[isa.RegA0], h.Regs[isa.RegRA], h.ID)
			}
		})
		m.HandleHypercall(isa.HcallSanPoison, func(m *emu.Machine, h *emu.Hart) {
			if rt.kasan != nil {
				rt.kasan.Shadow().Poison(h.Regs[isa.RegA0], h.Regs[isa.RegA1], byte(h.Regs[isa.RegA2]))
			}
		})
		m.HandleHypercall(isa.HcallSanUnpoison, func(m *emu.Machine, h *emu.Hart) {
			if rt.kasan != nil {
				rt.kasan.Shadow().Unpoison(h.Regs[isa.RegA0], h.Regs[isa.RegA1])
			}
		})
		// Range interceptors (__asan_memcpy-style library hooks).
		m.HandleHypercall(isa.HcallSanMemcpy, func(m *emu.Machine, h *emu.Hart) {
			rt.checkRange(h.Regs[isa.RegA0], h.Regs[isa.RegA2], true, h)
			rt.checkRange(h.Regs[isa.RegA1], h.Regs[isa.RegA2], false, h)
		})
		m.HandleHypercall(isa.HcallSanMemset, func(m *emu.Machine, h *emu.Hart) {
			rt.checkRange(h.Regs[isa.RegA0], h.Regs[isa.RegA2], true, h)
		})
	}

	// The sanitizer initialises at the firmware's ready-to-run point.
	prev := m.ReadyHook
	m.ReadyHook = func(m *emu.Machine) {
		if prev != nil {
			prev(m)
		}
		rt.applyInit()
		rt.enabled = true
	}
	return rt, nil
}

// applyInit executes the initial setup routine compiled by the Prober.
func (rt *Runtime) applyInit() {
	if rt.kasan == nil {
		return
	}
	sh := rt.kasan.Shadow()
	// The NULL guard page is always poisoned.
	sh.Poison(0, emu.NullGuardSize, CodeNull)
	// Compile-time global redzones (EMBSAN-C metadata).
	for _, g := range rt.opts.Globals {
		sh.Poison(g.Addr-g.Redzone, g.Redzone, CodeGlobalRedzone)
		sh.Poison(g.Addr+g.Size, g.Redzone, CodeGlobalRedzone)
	}
	// Heap regions from the platform configuration.
	if rt.opts.Platform != nil {
		for _, h := range rt.opts.Platform.Heaps {
			rt.kasan.NoteHeapRegion(h.Start, h.End)
		}
	}
	// The recorded dry-run actions.
	if rt.opts.Init != nil {
		for _, op := range rt.opts.Init.Ops {
			switch op.Kind {
			case dsl.InitShadow:
				// Shadow is pre-allocated; nothing to do.
			case dsl.InitPoison:
				code := CodeHeapUninit
				if c, ok := CodeByName(op.Code); ok {
					code = c
				}
				sh.Poison(op.Addr, op.Size, code)
			case dsl.InitUnpoison:
				sh.Unpoison(op.Addr, op.Size)
			case dsl.InitAlloc:
				rt.kasan.OnAlloc(op.Addr, op.Size, 0)
			}
		}
	}
}

// onMem handles both the generic translation probes (EMBSAN-D) and the
// SANCK trap path (EMBSAN-C).
func (rt *Runtime) onMem(ev *emu.MemEvent) {
	if !rt.enabled {
		return
	}
	if ev.Addr >= emu.MMIOBase {
		return // device memory is not sanitized
	}
	switch {
	case ev.Atomic:
		if !rt.checkAtomics {
			return
		}
	case ev.Write:
		if !rt.checkStores {
			return
		}
	default:
		if !rt.checkLoads {
			return
		}
	}
	for _, r := range rt.suppress {
		if r.Contains(ev.PC) {
			return
		}
	}
	if rt.ubsan && ev.Size > 1 && ev.Addr&(ev.Size-1) != 0 {
		rt.report(&Report{
			Tool: ToolUBSAN, Bug: BugMisaligned, Addr: ev.Addr, Size: ev.Size,
			Write: ev.Write, PC: ev.PC, Hart: ev.Hart,
		})
		if rt.opts.StopOnReport {
			return
		}
	}
	if rt.kasan != nil {
		if r := rt.kasan.CheckAccess(ev.Addr, ev.Size, ev.Write, ev.PC, ev.Hart); r != nil {
			r.Stack = rt.m.CallStack(ev.Hart)
			r.CallerPC = rt.callerPC(r.Stack, ev.Hart)
			rt.report(r)
			if rt.opts.StopOnReport {
				return
			}
		}
	}
	if rt.kcsan != nil {
		if rt.raceSafe != nil && rt.raceSafe[ev.PC] {
			rt.raceElided++
			return
		}
		stall, r := rt.kcsan.OnAccess(ev.Addr, ev.Size, ev.Write, ev.PC, ev.Hart, ev.Atomic)
		if r != nil {
			rt.report(r)
			if rt.opts.StopOnReport {
				return
			}
		}
		if stall > 0 {
			ev.StallInsts = stall
		}
	}
}

// SetRaceElisions installs (or, with nil, clears) the set of dispatch PCs
// proven race-free by the static lockset analysis: the concurrency
// sanitizer is skipped entirely for them. Callers must only pass sites
// whose arming weight is 0 in the machine's race-site priority map, so the
// skip cannot change any sampling decision elsewhere.
func (rt *Runtime) SetRaceElisions(pcs []uint32) {
	if len(pcs) == 0 {
		rt.raceSafe = nil
		return
	}
	rt.raceSafe = make(map[uint32]bool, len(pcs))
	for _, pc := range pcs {
		rt.raceSafe[pc] = true
	}
}

// RaceElided returns how many sanitizer dispatches were skipped outright at
// statically proven race-free sites (elision mode only).
func (rt *Runtime) RaceElided() uint64 { return rt.raceElided }

// checkRange validates a whole region at once (range interceptor path).
func (rt *Runtime) checkRange(addr, size uint32, write bool, h *emu.Hart) {
	if !rt.enabled || rt.kasan == nil || size == 0 || addr >= emu.MMIOBase {
		return
	}
	if r := rt.kasan.CheckAccess(addr, size, write, h.Regs[isa.RegRA], h.ID); r != nil {
		r.Stack = rt.m.CallStack(h.ID)
		r.CallerPC = rt.callerPC(r.Stack, h.ID)
		rt.report(r)
	}
}

// callerPC derives the return address of the innermost live frame: the
// shadow-stack top when frames are recorded (a call-site PC plus 4 is its
// return address), else the live RA register — the pre-shadow-stack
// behaviour, still needed with NoShadowStack or before the first call.
func (rt *Runtime) callerPC(stack []uint32, hart int) uint32 {
	if len(stack) > 0 {
		return stack[0] + 4
	}
	return rt.m.Hart(hart).Regs[isa.RegRA]
}

// emitFrames attaches the hart's current shadow call stack to the event
// just retained in the trace ring, one EvFrame per frame. Forensic arming
// only: callers gate on the parent event's retention so a filtered-out
// parent never leaves orphaned frames.
func (rt *Runtime) emitFrames(parentPC uint32, icnt uint64, hart int) {
	if !rt.forensics {
		return
	}
	for i, pc := range rt.m.CallStack(hart) {
		rt.trace.Emit(obs.Event{ICnt: icnt, PC: parentPC, Addr: pc,
			Arg: uint32(i), Kind: obs.EvFrame, Hart: uint8(hart)})
	}
}

// traceQuarantine records a chunk entering the quarantine after a clean
// free (forensic arming only).
func (rt *Runtime) traceQuarantine(ptr, pc uint32, hart int) {
	if !rt.forensics || rt.trace == nil || rt.kasan == nil {
		return
	}
	c := rt.kasan.ChunkAt(ptr)
	if c == nil || !c.Freed {
		return
	}
	rt.trace.Emit(obs.Event{ICnt: rt.m.ICount(), PC: pc, Addr: c.Addr,
		Arg: c.Size, Kind: obs.EvQuarantine, Hart: uint8(hart)})
}

// ArmForensics turns full provenance capture on or off: the KASAN engine
// stamps every chunk with alloc/free backtraces, and traced allocator,
// free and report events carry EvFrame children plus EvQuarantine
// transitions. The emulator's shadow call stack is maintained regardless —
// arming only changes what is copied out of it.
func (rt *Runtime) ArmForensics(on bool) {
	rt.forensics = on
	if rt.kasan == nil {
		return
	}
	if on {
		rt.kasan.SetStacker(func() []uint32 {
			return rt.m.CallStack(rt.m.CurrentHart().ID)
		})
	} else {
		rt.kasan.SetStacker(nil)
	}
}

// ForensicsArmed reports whether forensic capture is on.
func (rt *Runtime) ForensicsArmed() bool { return rt.forensics }

// libFrames are guest library routines whose reports are attributed to the
// caller (one-frame stack skipping).
var libFrames = map[string]bool{
	"memcpy": true, "memset": true, "bzero": true,
}

func (rt *Runtime) report(r *Report) {
	img := rt.m.Image()
	r.ICnt = rt.m.ICount()
	r.Location = img.Symbolize(r.PC)
	if r.CallerPC != 0 {
		if fn, ok := img.FuncAt(r.PC); ok {
			if libFrames[fn.Name] {
				r.Location = img.Symbolize(r.CallerPC)
			}
		} else if img.Stripped {
			// No symbols: keep both frames so distinct call sites of shared
			// helpers stay distinguishable.
			r.Location = fmt.Sprintf("%#08x<%#08x", r.PC, r.CallerPC)
		}
	}
	sig := r.Signature()
	if rt.seen[sig] {
		return
	}
	rt.seen[sig] = true
	// Free-path reports (double/invalid free) arrive without an access
	// stack; the freeing call chain is live right now, so capture it.
	if r.Stack == nil {
		r.Stack = rt.m.CallStack(r.Hart)
	}
	rt.reports = append(rt.reports, r)
	if rt.trace != nil {
		if rt.trace.Emit(obs.Event{ICnt: r.ICnt, PC: r.PC, Addr: r.Addr,
			Arg: uint32(r.Bug), Kind: obs.EvReport, Hart: uint8(r.Hart)}) && rt.forensics {
			for i, pc := range r.Stack {
				rt.trace.Emit(obs.Event{ICnt: r.ICnt, PC: r.PC, Addr: pc,
					Arg: uint32(i), Kind: obs.EvFrame, Hart: uint8(r.Hart)})
			}
		}
	}
	if rt.OnReport != nil {
		rt.OnReport(r)
	}
	if rt.opts.StopOnReport {
		rt.m.RequestStop()
	}
}

// SetTrace attaches (or, with nil, detaches) a trace ring. Allocator
// interceptions and new reports are emitted into it, and the shadow memory
// is wired to the same ring so poison/unpoison events land in one stream.
func (rt *Runtime) SetTrace(r *obs.Ring) {
	rt.trace = r
	if rt.kasan != nil {
		if r == nil {
			rt.kasan.Shadow().SetTrace(nil, nil)
		} else {
			rt.kasan.Shadow().SetTrace(r, rt.m.ICount)
		}
	}
}

// Reports returns all distinct reports so far.
func (rt *Runtime) Reports() []*Report { return rt.reports }

// Enabled reports whether the runtime has passed the ready point.
func (rt *Runtime) Enabled() bool { return rt.enabled }

// KASANEngine exposes the KASAN engine (nil when not configured).
func (rt *Runtime) KASANEngine() *KASAN { return rt.kasan }

// KCSANEngine exposes the KCSAN engine (nil when not configured).
func (rt *Runtime) KCSANEngine() *KCSAN { return rt.kcsan }

// InstallInlineFastPath arms the machine's in-template shadow fast path for
// the given access-site PCs (normally the profiler's hottest dispatch
// sites). It returns false — arming nothing — when skipping a clean
// dispatch would be observable: KCSAN samples watchpoints statefully on
// every access, UBSAN reports misalignment on perfectly addressable memory,
// and without KASAN there is no shadow to test. Suppressed sites are
// filtered out rather than armed, since their delegate deliberately ignores
// even poisoned accesses. For the surviving pure-KASAN sites, a dispatch
// whose access lies wholly in addressable shadow is a no-op in the
// delegate, so settling it in the template is behaviour-preserving.
func (rt *Runtime) InstallInlineFastPath(pcs []uint32) bool {
	if rt.kasan == nil || rt.kcsan != nil || rt.ubsan {
		return false
	}
	armed := make([]uint32, 0, len(pcs))
nextPC:
	for _, pc := range pcs {
		for _, r := range rt.suppress {
			if r.Contains(pc) {
				continue nextPC
			}
		}
		armed = append(armed, pc)
	}
	rt.m.SetInlineShadow(rt.kasan.Shadow().Bytes())
	rt.m.SetInlineMemPCs(armed)
	return true
}

// Snapshot captures the runtime state in lockstep with Machine.Snapshot.
func (rt *Runtime) Snapshot() {
	if rt.kasan != nil {
		rt.shadowSnap = rt.kasan.Shadow().Checkpoint()
		rt.kasanSnap = rt.kasan.Snapshot()
	}
	rt.enabledAtSnap = rt.enabled
}

// Restore rewinds the runtime state in lockstep with Machine.Restore.
func (rt *Runtime) Restore() {
	if rt.kasan != nil && rt.shadowSnap != nil {
		rt.kasan.Shadow().RestoreFrom(rt.shadowSnap)
		rt.kasan.RestoreState(rt.kasanSnap)
	}
	if rt.kcsan != nil {
		rt.kcsan.Reset()
	}
	rt.enabled = rt.enabledAtSnap
	rt.reports = nil
	rt.seen = make(map[string]bool)
	for k := range rt.pending {
		delete(rt.pending, k)
	}
}

// ConvertNative translates in-guest sanitizer reports (SanDev) into the
// host report format so native and EMBSAN findings compare directly.
func ConvertNative(img *kasm.Image, reps []emu.NativeReport) []*Report {
	var out []*Report
	for _, nr := range reps {
		r := &Report{PC: nr.PC, Addr: nr.Addr, Location: img.Symbolize(nr.PC)}
		switch nr.Kind {
		case NativeKindKCSAN:
			r.Tool = ToolKCSAN
			r.Bug = BugRace
			r.OtherPC = nr.Info
		default:
			r.Tool = ToolKASAN
			switch byte(nr.Info) {
			case CodeHeapFree:
				r.Bug = BugUAF
			case CodeGlobalRedzone:
				r.Bug = BugGlobalOOB
			case CodeStackRedzone:
				r.Bug = BugStackOOB
			case CodeNull:
				r.Bug = BugNullDeref
			case CodeHeapUninit:
				r.Bug = BugOOB
			default:
				r.Bug = BugOOB
			}
		}
		out = append(out, r)
	}
	return out
}
