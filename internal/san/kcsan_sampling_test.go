package san

import "testing"

// TestKCSANSamplingNoStrideAliasing: a loop body that issues exactly
// SampleInterval accesses per iteration pins every site to a fixed residue
// of the access counter. The old shared-modulus sampler (counter%interval
// == 0) would then arm only the one site sitting on residue zero and
// systematically shadow the other sixty forever. The hashed sampler gives
// every visit an independent pseudo-random decision, so over enough
// iterations every site in the loop must get armed.
func TestKCSANSamplingNoStrideAliasing(t *testing.T) {
	const interval = 61
	k := NewKCSAN(KCSANConfig{Slots: 4, SampleInterval: interval, Delay: 100},
		func(addr, size uint32) (uint32, bool) { return 0, true })

	armed := make([]int, interval)
	total := 0
	for iter := 0; iter < 400; iter++ {
		for pos := 0; pos < interval; pos++ {
			pc := uint32(0x1000 + 4*pos)
			addr := uint32(0x8000 + 4*pos)
			stall, rep := k.OnAccess(addr, 4, true, pc, 0, false)
			if rep != nil {
				t.Fatalf("single-hart loop produced a report: %+v", rep)
			}
			if stall != 0 {
				armed[pos]++
				total++
				// Drain the stall window so the slot frees up again.
				if rep := redeliver(k, addr, 4, true, pc, 0); rep != nil {
					t.Fatalf("single-hart finalisation produced a report: %+v", rep)
				}
			}
		}
	}

	for pos, n := range armed {
		if n == 0 {
			t.Errorf("site at loop position %d (stride aliasing the interval) was never sampled", pos)
		}
	}
	// The per-visit arming probability is 1/interval, so a 400-iteration
	// run should land near 400 total armings; an order-of-magnitude band
	// catches a sampler that degenerated to always or never.
	if total < 100 || total > 1600 {
		t.Errorf("sampling rate off: %d armings over %d visits (expected ~400)", total, 400*interval)
	}
}
