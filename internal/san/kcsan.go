package san

// KCSAN is the host-side concurrency-sanitizer engine. It implements the
// soft-watchpoint scheme of the kernel's KCSAN: a sampled access arms a
// watchpoint and stalls its hart; any overlapping access from another hart
// during the stall window is a data race (unless both are reads). A value
// change across the window catches races with uninstrumented writers.
type KCSAN struct {
	slots    []watchpoint
	interval uint64 // mean sampling period per unit of site weight
	delay    uint64 // stall length in global instructions
	counter  uint64 // fallback virtual clock when no machine clock is wired
	read     func(addr, size uint32) (uint32, bool)
	clock    func() uint64                 // retired-instruction clock (nil: internal counter)
	seed     func() uint64                 // live campaign seed (nil: 0)
	prio     func(pc uint32) (uint8, bool) // static site weights (nil: uniform)
	elided   uint64                        // weight-0 sites skipped by static proof
	evals    uint64                        // accesses that reached the arming decision
	armed    uint64                        // watchpoints actually armed
}

type watchpoint struct {
	active   bool
	addr     uint32
	size     uint32
	write    bool
	pc       uint32
	hart     int
	origVal  uint32
	spins    int // remaining re-delivery rounds of the delay window
	observed bool
	obsPC    uint32
	obsHart  int
	obsWrite bool
}

// spinChunk is the stall granted per re-delivery round. The owner hart
// re-executes its access once per chunk, so the delay window costs real
// execution work — modelling the busy udelay of the reference KCSAN.
const spinChunk = 50

// KCSANConfig tunes the engine.
type KCSANConfig struct {
	Slots          int    // concurrent watchpoints (default 4)
	SampleInterval uint64 // arm a watchpoint every Nth access (default 61)
	Delay          uint64 // stall window in instructions (default 1200)
}

// NewKCSAN creates the engine. read peeks guest memory for value-change
// detection.
func NewKCSAN(cfg KCSANConfig, read func(addr, size uint32) (uint32, bool)) *KCSAN {
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 61
	}
	if cfg.Delay == 0 {
		cfg.Delay = 1200
	}
	return &KCSAN{
		slots:    make([]watchpoint, cfg.Slots),
		interval: cfg.SampleInterval,
		delay:    cfg.Delay,
		read:     read,
	}
}

// SetGuidance wires the deterministic sampling sources: clock is the
// machine's retired-instruction counter, seed reads the live campaign seed,
// and prio is an optional static site-weight lookup from the lockset
// analysis — weight 0 marks a site proven race-free (never armed), weights
// above 1 arm preferentially at sites left unprotected. With these wired,
// every arming decision is a pure function of (seed, virtual clock, site):
// it does not depend on how many accesses were sampled before this one, so
// skipping a proven-safe site cannot shift any other site's decisions —
// the property the elision and worker-count byte-identity oracles rely on.
func (k *KCSAN) SetGuidance(clock, seed func() uint64, prio func(pc uint32) (uint8, bool)) {
	k.clock = clock
	k.seed = seed
	k.prio = prio
}

// sampleMix is the splitmix64 finalizer over (campaign seed, virtual
// clock, site). A shared modulus counter is deliberately avoided: a loop
// whose access stride divides the sample interval would park the counter
// on the same residues forever and systematically shadow a site.
func sampleMix(seed, tick uint64, pc uint32) uint64 {
	z := seed + 0x9E3779B97F4A7C15*tick + 0xBF58476D1CE4E5B9*uint64(pc)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// OnAccess processes one access. It returns a stall request (in
// instructions; 0 = none) and a race report (nil = none). The caller must
// re-deliver the access after a stall, at which point the engine finalises
// its own watchpoint. Atomic (marked) accesses never arm watchpoints and do
// not conflict with other marked accesses — the kernel's data-race rule.
func (k *KCSAN) OnAccess(addr, size uint32, write bool, pc uint32, hart int, atomic bool) (stall uint64, report *Report) {
	// 1) Our own armed watchpoint at this address? Either keep spinning
	// through the delay window or finalise.
	for i := range k.slots {
		w := &k.slots[i]
		if w.active && w.hart == hart && w.addr == addr && w.pc == pc {
			if w.spins > 0 {
				w.spins--
				return spinChunk, nil
			}
			w.active = false
			if w.observed {
				return 0, &Report{
					Tool: ToolKCSAN, Bug: BugRace, Addr: addr, Size: size,
					Write: write, PC: pc, Hart: hart,
					OtherPC: w.obsPC, OtherHart: w.obsHart, OtherWrite: w.obsWrite,
				}
			}
			// Value-change detection: a concurrent uninstrumented writer.
			if cur, ok := k.read(addr, size); ok && cur != w.origVal && !write {
				return 0, &Report{
					Tool: ToolKCSAN, Bug: BugRace, Addr: addr, Size: size,
					Write: write, PC: pc, Hart: hart,
					OtherPC: 0, OtherHart: -1, OtherWrite: true,
				}
			}
			return 0, nil
		}
	}

	// 2) Does this access collide with another hart's armed watchpoint?
	for i := range k.slots {
		w := &k.slots[i]
		if !w.active || w.hart == hart {
			continue
		}
		if overlap(addr, size, w.addr, w.size) && (w.write || write) {
			w.observed = true
			w.obsPC = pc
			w.obsHart = hart
			w.obsWrite = write
			// Report from the observer side immediately; the owner will
			// also produce a report at finalisation, which dedup folds.
			return 0, &Report{
				Tool: ToolKCSAN, Bug: BugRace, Addr: addr, Size: size,
				Write: write, PC: pc, Hart: hart,
				OtherPC: w.pc, OtherHart: w.hart, OtherWrite: w.write,
			}
		}
	}

	// 3) Sampling: arm a watchpoint on a pseudo-random subset of eligible
	// accesses, hashed from (seed, clock, site) so decisions at one site
	// never perturb another's. A site of weight w arms with probability
	// w/interval; weight 0 is a statically proven race-free site.
	if atomic {
		return 0, nil
	}
	weight := uint64(1)
	if k.prio != nil {
		if w, ok := k.prio(pc); ok {
			weight = uint64(w)
		}
	}
	if weight == 0 {
		k.elided++
		return 0, nil
	}
	k.evals++
	var tick uint64
	if k.clock != nil {
		tick = k.clock()
	} else {
		k.counter++
		tick = k.counter
	}
	var seed uint64
	if k.seed != nil {
		seed = k.seed()
	}
	if sampleMix(seed, tick, pc)%k.interval >= weight {
		return 0, nil
	}
	for i := range k.slots {
		w := &k.slots[i]
		if w.active {
			continue
		}
		orig, _ := k.read(addr, size)
		*w = watchpoint{
			active: true, addr: addr, size: size, write: write,
			pc: pc, hart: hart, origVal: orig,
			spins: int(k.delay / spinChunk),
		}
		k.armed++
		return spinChunk, nil
	}
	return 0, nil
}

func overlap(a1, s1, a2, s2 uint32) bool {
	return a1 < a2+s2 && a2 < a1+s1
}

// Reset clears all watchpoints and the sampling counter.
func (k *KCSAN) Reset() {
	for i := range k.slots {
		k.slots[i] = watchpoint{}
	}
	k.counter = 0
}

// Elided returns how many eligible accesses were skipped because their
// site carried a static weight of 0 (proven always-protected/hart-local).
func (k *KCSAN) Elided() uint64 {
	return k.elided
}

// Sampling returns the cumulative arming accounting: how many eligible
// accesses reached the sampling decision and how many armed a
// watchpoint. Like Elided, the counts survive Reset (they accumulate
// across a campaign's executions) — the timeline sampler's "KCSAN
// arming rate" metric reads them.
func (k *KCSAN) Sampling() (evals, armed uint64) {
	return k.evals, k.armed
}

// ActiveWatchpoints returns the number of armed watchpoints (test hook).
func (k *KCSAN) ActiveWatchpoints() int {
	n := 0
	for i := range k.slots {
		if k.slots[i].active {
			n++
		}
	}
	return n
}
