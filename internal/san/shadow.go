// Package san is EMBSAN's Common Sanitizer Runtime: de-coupled, on-host
// implementations of the KASAN and KCSAN feature sets, driven by the
// emulator's instrumentation probes (EMBSAN-D) or by trapping SANCK
// instructions and dummy-library hypercalls (EMBSAN-C). All sanitizer
// functionalities share one unified shadow memory.
package san

import (
	"fmt"

	"embsan/internal/obs"
)

// Granularity is the shadow granule size: one shadow byte per 8 guest bytes,
// matching KASAN's generic mode.
const Granularity = 8

// Shadow byte values. 0 means the whole granule is addressable; 1..7 mean
// the first N bytes are addressable; values >= 0x80 are poison codes.
// These values are shared with the in-guest native KASAN runtime so both
// implementations speak the same shadow encoding.
const (
	CodeStackRedzone  byte = 0xF8
	CodeGlobalRedzone byte = 0xF9
	CodeHeapRedzone   byte = 0xFA
	CodeHeapFree      byte = 0xFB
	CodeHeapUninit    byte = 0xFC // heap memory never handed out by the allocator
	CodeNull          byte = 0xFE
)

// IsPoison reports whether a shadow byte is a poison code.
func IsPoison(b byte) bool { return b >= 0x80 }

// CodeName returns a human-readable poison code name (as used in the DSL).
func CodeName(b byte) string {
	switch b {
	case CodeStackRedzone:
		return "stack_redzone"
	case CodeGlobalRedzone:
		return "global_redzone"
	case CodeHeapRedzone:
		return "heap_redzone"
	case CodeHeapFree:
		return "heap_free"
	case CodeHeapUninit:
		return "heap_uninit"
	case CodeNull:
		return "null"
	}
	return fmt.Sprintf("code_%#02x", b)
}

// CodeByName is the inverse of CodeName for the DSL poison codes.
func CodeByName(name string) (byte, bool) {
	switch name {
	case "stack_redzone":
		return CodeStackRedzone, true
	case "global_redzone":
		return CodeGlobalRedzone, true
	case "heap_redzone", "heap":
		return CodeHeapRedzone, true
	case "heap_free":
		return CodeHeapFree, true
	case "heap_uninit":
		return CodeHeapUninit, true
	case "null":
		return CodeNull, true
	}
	return 0, false
}

// Shadow is the unified shadow memory covering all of guest RAM. It records
// addressability state for every sanitizer functionality in one place,
// conserving host memory and keeping the DSL-to-state transformation simple.
type Shadow struct {
	bytes []byte
	size  uint32 // covered guest bytes

	// Mutation window: the inclusive granule range touched by Poison or
	// Unpoison since the last Checkpoint. RestoreFrom copies only this
	// window back — the shadow analogue of the machine's dirty-page
	// restore. Empty is encoded as mutLo > mutHi.
	mutLo, mutHi uint32

	// Optional trace sink. clock supplies the virtual timestamp (the
	// machine's instruction counter); both are nil unless tracing is on.
	trace *obs.Ring
	clock func() uint64
}

// NewShadow creates shadow memory covering ramSize guest bytes.
func NewShadow(ramSize uint32) *Shadow {
	return &Shadow{bytes: make([]byte, ramSize/Granularity), size: ramSize, mutLo: ^uint32(0)}
}

// Bytes exposes the live shadow byte array (one byte per 8-byte granule).
// The machine's in-template fast path reads it directly; callers must not
// retain it across a shadow of different size and must never write to it.
func (s *Shadow) Bytes() []byte { return s.bytes }

// Clone deep-copies the shadow (snapshot support).
func (s *Shadow) Clone() *Shadow {
	out := &Shadow{bytes: make([]byte, len(s.bytes)), size: s.size, mutLo: ^uint32(0)}
	copy(out.bytes, s.bytes)
	return out
}

// CopyFrom restores this shadow from a clone of equal size.
func (s *Shadow) CopyFrom(o *Shadow) {
	copy(s.bytes, o.bytes)
	s.mutLo, s.mutHi = ^uint32(0), 0
}

// Checkpoint deep-copies the shadow and resets the mutation window, so a
// later RestoreFrom of the returned snapshot needs to copy back only the
// granules poisoned or unpoisoned since this call.
func (s *Shadow) Checkpoint() *Shadow {
	out := s.Clone()
	s.mutLo, s.mutHi = ^uint32(0), 0
	return out
}

// RestoreFrom rewinds the shadow to a Checkpoint snapshot, copying only the
// granule window mutated since. With a typical execution touching a tiny
// fraction of guest RAM, this is far cheaper than the full-array CopyFrom.
func (s *Shadow) RestoreFrom(snap *Shadow) {
	lo, hi := s.mutLo, s.mutHi
	s.mutLo, s.mutHi = ^uint32(0), 0
	if hi >= uint32(len(s.bytes)) {
		hi = uint32(len(s.bytes)) - 1
	}
	if lo > hi {
		return // no granule inside coverage was touched
	}
	copy(s.bytes[lo:hi+1], snap.bytes[lo:hi+1])
}

// noteMut widens the mutation window to include granules [first, last].
func (s *Shadow) noteMut(first, last uint32) {
	if first < s.mutLo {
		s.mutLo = first
	}
	if last > s.mutHi {
		s.mutHi = last
	}
}

// SetTrace attaches (or, with nil arguments, detaches) a trace ring and the
// virtual clock that timestamps poison/unpoison events.
func (s *Shadow) SetTrace(r *obs.Ring, clock func() uint64) {
	s.trace = r
	s.clock = clock
}

// Poison marks [addr, addr+size) with the given poison code. Partial leading
// granules keep their validity prefix; partial trailing granules are wholly
// poisoned (conservative, like KASAN's kasan_poison).
func (s *Shadow) Poison(addr, size uint32, code byte) {
	if size == 0 {
		return
	}
	if s.trace != nil {
		s.trace.Emit(obs.Event{ICnt: s.clock(), PC: uint32(code), Addr: addr, Arg: size, Kind: obs.EvPoison})
	}
	end := addr + size
	first := addr / Granularity
	last := (end - 1) / Granularity
	s.noteMut(first, last)
	for g := first; g <= last && g < uint32(len(s.bytes)); g++ {
		gStart := g * Granularity
		if gStart < addr {
			// Leading partial granule: the first addr-gStart bytes stay
			// addressable only if they were before.
			prev := s.bytes[g]
			valid := uint32(0)
			if prev == 0 {
				valid = Granularity
			} else if prev < Granularity {
				valid = uint32(prev)
			}
			if keep := addr - gStart; keep < valid {
				valid = keep
			}
			if valid == 0 {
				s.bytes[g] = code
			} else {
				s.bytes[g] = byte(valid)
			}
			continue
		}
		s.bytes[g] = code
	}
}

// Unpoison marks [addr, addr+size) addressable. A trailing partial granule
// records the number of valid bytes, enabling sub-granule redzone checks.
func (s *Shadow) Unpoison(addr, size uint32) {
	if size == 0 {
		return
	}
	if s.trace != nil {
		s.trace.Emit(obs.Event{ICnt: s.clock(), Addr: addr, Arg: size, Kind: obs.EvUnpoison})
	}
	end := addr + size
	first := addr / Granularity
	last := (end - 1) / Granularity
	s.noteMut(first, last)
	for g := first; g <= last && g < uint32(len(s.bytes)); g++ {
		gStart := g * Granularity
		gEnd := gStart + Granularity
		if gEnd <= end {
			s.bytes[g] = 0
			continue
		}
		s.bytes[g] = byte(end - gStart)
	}
}

// Get returns the shadow byte for addr.
func (s *Shadow) Get(addr uint32) byte {
	g := addr / Granularity
	if g >= uint32(len(s.bytes)) {
		return 0
	}
	return s.bytes[g]
}

// Check validates an access of size bytes at addr. It returns ok=true when
// every byte is addressable; otherwise it returns the first offending
// address and its shadow code.
func (s *Shadow) Check(addr, size uint32) (badAddr uint32, code byte, ok bool) {
	if size == 0 {
		return 0, 0, true
	}
	end := addr + size
	for a := addr; a < end; {
		g := a / Granularity
		if g >= uint32(len(s.bytes)) {
			return a, 0, true // outside shadow coverage: not ours to judge
		}
		sb := s.bytes[g]
		gStart := g * Granularity
		switch {
		case sb == 0:
			a = gStart + Granularity
		case sb < Granularity:
			// First sb bytes of the granule are valid.
			validEnd := gStart + uint32(sb)
			if a < validEnd {
				if end <= validEnd {
					return 0, 0, true
				}
				a = validEnd
				continue
			}
			// Access touches the invalid tail: the poison kind is whatever
			// the *next* region's code is, best described as a redzone hit;
			// report the granule's implicit redzone.
			return a, s.tailCode(g), false
		default:
			return a, sb, false
		}
	}
	return 0, 0, true
}

// tailCode guesses the poison kind of a partial granule's invalid tail by
// looking at the following granule (which carries the explicit code).
func (s *Shadow) tailCode(g uint32) byte {
	if g+1 < uint32(len(s.bytes)) && IsPoison(s.bytes[g+1]) {
		return s.bytes[g+1]
	}
	return CodeHeapRedzone
}
