package san

// KASAN is the host-side address-sanitizer engine. It consumes allocator
// events (from dummy-library hypercalls under EMBSAN-C, or from Prober-
// discovered interception points under EMBSAN-D) and validates every memory
// access against the unified shadow.
type KASAN struct {
	shadow *Shadow
	chunks map[uint32]*Chunk
	// Quarantine delays the logical reuse of freed chunk metadata so that a
	// use-after-free arriving shortly after a reallocation of the same slot
	// can still name the original free site.
	quarantine []uint32
	quarCap    int
	heapLow    uint32
	heapHigh   uint32

	// stacker, when installed (forensic arming), captures the current
	// shadow call stack; allocations and frees stamp their chunk with it so
	// a later report can show full alloc/free backtraces. Off by default:
	// stamping every allocation costs a slice per event.
	stacker func() []uint32
}

// Chunk is one live or quarantined heap object. AllocStack and FreeStack
// are filled only under forensic arming; once stamped they are never
// mutated in place, so snapshot copies may share their backing arrays.
type Chunk struct {
	Addr       uint32
	Size       uint32
	Freed      bool
	AllocPC    uint32
	FreePC     uint32
	AllocStack []uint32
	FreeStack  []uint32
}

// NewKASAN creates the engine on top of a shadow.
func NewKASAN(shadow *Shadow, quarantineCap int) *KASAN {
	if quarantineCap <= 0 {
		quarantineCap = 256
	}
	return &KASAN{
		shadow:  shadow,
		chunks:  make(map[uint32]*Chunk),
		quarCap: quarantineCap,
	}
}

// Shadow exposes the underlying shadow memory.
func (k *KASAN) Shadow() *Shadow { return k.shadow }

// SetStacker installs (or, with nil, removes) the backtrace capture hook
// consulted on every allocation and free.
func (k *KASAN) SetStacker(f func() []uint32) { k.stacker = f }

// ChunkAt returns the chunk whose base address is exactly ptr (live or
// quarantined), or nil.
func (k *KASAN) ChunkAt(ptr uint32) *Chunk { return k.chunks[ptr] }

// NoteHeapRegion widens the engine's notion of where heap objects live, and
// poisons the region as never-allocated.
func (k *KASAN) NoteHeapRegion(start, end uint32) {
	if k.heapLow == 0 || start < k.heapLow {
		k.heapLow = start
	}
	if end > k.heapHigh {
		k.heapHigh = end
	}
	k.shadow.Poison(start, end-start, CodeHeapUninit)
}

// InHeap reports whether addr falls inside a known heap region.
func (k *KASAN) InHeap(addr uint32) bool {
	return addr >= k.heapLow && addr < k.heapHigh && k.heapLow != k.heapHigh
}

// OnAlloc records an allocation of size bytes at ptr.
func (k *KASAN) OnAlloc(ptr, size, pc uint32) {
	if ptr == 0 {
		return // failed allocation
	}
	k.shadow.Unpoison(ptr, size)
	// Poison the tail up to the next granule boundary explicitly (handled by
	// Unpoison's partial encoding) — nothing more to do for the slack: the
	// rest of the heap is already poisoned as uninit/free.
	c := &Chunk{Addr: ptr, Size: size, AllocPC: pc}
	if k.stacker != nil {
		c.AllocStack = k.stacker()
	}
	k.chunks[ptr] = c
}

// OnFree records a deallocation of ptr. It returns a report when the free
// itself is a bug (double free / invalid free).
func (k *KASAN) OnFree(ptr, pc uint32, hart int) *Report {
	if ptr == 0 {
		return nil
	}
	c, ok := k.chunks[ptr]
	switch {
	case !ok:
		return &Report{
			Tool: ToolKASAN, Bug: BugInvalidFree, Addr: ptr, PC: pc, Hart: hart,
		}
	case c.Freed:
		return &Report{
			Tool: ToolKASAN, Bug: BugDoubleFree, Addr: ptr, PC: pc, Hart: hart,
			ChunkAddr: c.Addr, ChunkSize: c.Size, AllocPC: c.AllocPC, FreePC: c.FreePC,
			AllocStack: c.AllocStack, FreeStack: c.FreeStack,
		}
	}
	c.Freed = true
	c.FreePC = pc
	if k.stacker != nil {
		c.FreeStack = k.stacker()
	}
	k.shadow.Poison(c.Addr, c.Size, CodeHeapFree)
	k.quarantine = append(k.quarantine, ptr)
	if len(k.quarantine) > k.quarCap {
		evict := k.quarantine[0]
		k.quarantine = k.quarantine[1:]
		if ec, ok := k.chunks[evict]; ok && ec.Freed {
			delete(k.chunks, evict)
		}
	}
	return nil
}

// CheckAccess validates one access; nil means clean.
func (k *KASAN) CheckAccess(addr, size uint32, write bool, pc uint32, hart int) *Report {
	if addr < 0x1000 {
		return &Report{
			Tool: ToolKASAN, Bug: BugNullDeref, Addr: addr, Size: size,
			Write: write, PC: pc, Hart: hart,
		}
	}
	bad, code, ok := k.shadow.Check(addr, size)
	if ok {
		return nil
	}
	r := &Report{
		Tool: ToolKASAN, Addr: bad, Size: size, Write: write, PC: pc, Hart: hart,
	}
	// Heap violations are classified by object context first: shadow codes
	// can be stale in reused slots (a live object's slack keeps the FREE
	// code of its predecessor), but the chunk table knows the truth.
	if code == CodeHeapFree || code == CodeHeapUninit || code == CodeHeapRedzone {
		if c := k.chunkFor(bad); c != nil {
			r.ChunkAddr, r.ChunkSize = c.Addr, c.Size
			r.AllocPC, r.FreePC = c.AllocPC, c.FreePC
			r.AllocStack, r.FreeStack = c.AllocStack, c.FreeStack
			if c.Freed && bad >= c.Addr && bad < c.Addr+c.Size {
				r.Bug = BugUAF
				return r
			}
			if !c.Freed && bad >= c.Addr+c.Size {
				r.Bug = BugOOB
				return r
			}
		}
	}
	switch code {
	case CodeHeapFree:
		r.Bug = BugUAF
	case CodeGlobalRedzone:
		r.Bug = BugGlobalOOB
	case CodeStackRedzone:
		r.Bug = BugStackOOB
	case CodeHeapUninit:
		if c := k.nearestChunk(bad); c != nil {
			r.Bug = BugOOB
		} else {
			r.Bug = BugWild
		}
	case CodeNull:
		r.Bug = BugNullDeref
	default:
		r.Bug = BugOOB
	}
	if c := k.chunkFor(bad); c != nil {
		r.ChunkAddr, r.ChunkSize = c.Addr, c.Size
		r.AllocPC, r.FreePC = c.AllocPC, c.FreePC
		r.AllocStack, r.FreeStack = c.AllocStack, c.FreeStack
	} else if c := k.nearestChunk(bad); c != nil {
		r.ChunkAddr, r.ChunkSize = c.Addr, c.Size
		r.AllocPC, r.FreePC = c.AllocPC, c.FreePC
		r.AllocStack, r.FreeStack = c.AllocStack, c.FreeStack
	}
	return r
}

// chunkFor finds the chunk containing addr.
func (k *KASAN) chunkFor(addr uint32) *Chunk {
	// Chunks are small; probe backwards over plausible base addresses at
	// granule steps. Bounded scan keeps this O(1) in practice.
	base := addr &^ (Granularity - 1)
	for i := uint32(0); i <= 512; i += Granularity {
		if c, ok := k.chunks[base-i]; ok {
			if addr >= c.Addr && addr < c.Addr+c.Size+Granularity {
				return c
			}
			return nil
		}
	}
	return nil
}

// nearestChunk finds a chunk whose end is just before addr (OOB overflow
// attribution).
func (k *KASAN) nearestChunk(addr uint32) *Chunk {
	base := addr &^ (Granularity - 1)
	for i := uint32(0); i <= 256; i += Granularity {
		if c, ok := k.chunks[base-i]; ok {
			return c
		}
	}
	return nil
}

// Snapshot captures engine state.
func (k *KASAN) Snapshot() *KASANState {
	st := &KASANState{
		chunks:     make(map[uint32]Chunk, len(k.chunks)),
		quarantine: append([]uint32(nil), k.quarantine...),
		heapLow:    k.heapLow,
		heapHigh:   k.heapHigh,
	}
	for a, c := range k.chunks {
		st.chunks[a] = *c
	}
	return st
}

// RestoreState rewinds engine state to a snapshot.
func (k *KASAN) RestoreState(st *KASANState) {
	k.chunks = make(map[uint32]*Chunk, len(st.chunks))
	for a, c := range st.chunks {
		cc := c
		k.chunks[a] = &cc
	}
	k.quarantine = append(k.quarantine[:0], st.quarantine...)
	k.heapLow, k.heapHigh = st.heapLow, st.heapHigh
}

// KASANState is an opaque engine snapshot.
type KASANState struct {
	chunks     map[uint32]Chunk
	quarantine []uint32
	heapLow    uint32
	heapHigh   uint32
}

// LiveChunks returns the number of live (non-freed) chunks (test hook).
func (k *KASAN) LiveChunks() int {
	n := 0
	for _, c := range k.chunks {
		if !c.Freed {
			n++
		}
	}
	return n
}
