package san

import (
	"fmt"
	"strings"

	"embsan/internal/kasm"
)

// Tool identifies which sanitizer functionality produced a report.
type Tool uint8

const (
	ToolKASAN Tool = iota
	ToolKCSAN
	ToolUBSAN
)

func (t Tool) String() string {
	switch t {
	case ToolKCSAN:
		return "KCSAN"
	case ToolUBSAN:
		return "UBSAN"
	}
	return "KASAN"
}

// BugType classifies a detected violation, following the taxonomy of the
// paper's evaluation tables.
type BugType uint8

const (
	BugOOB BugType = iota // heap/slab out-of-bounds
	BugGlobalOOB
	BugStackOOB
	BugUAF
	BugDoubleFree
	BugInvalidFree
	BugNullDeref
	BugWild // access to never-allocated heap memory
	BugRace
	BugMisaligned // UBSAN-style alignment violation
)

func (b BugType) String() string {
	switch b {
	case BugOOB:
		return "slab-out-of-bounds"
	case BugGlobalOOB:
		return "global-out-of-bounds"
	case BugStackOOB:
		return "stack-out-of-bounds"
	case BugUAF:
		return "use-after-free"
	case BugDoubleFree:
		return "double-free"
	case BugInvalidFree:
		return "invalid-free"
	case BugNullDeref:
		return "null-ptr-deref"
	case BugWild:
		return "wild-memory-access"
	case BugRace:
		return "data-race"
	case BugMisaligned:
		return "misaligned-access"
	}
	return "unknown"
}

// Short returns the coarse class used by the evaluation tables.
func (b BugType) Short() string {
	switch b {
	case BugOOB, BugGlobalOOB, BugStackOOB, BugWild:
		return "OOB Access"
	case BugUAF:
		return "UAF"
	case BugDoubleFree, BugInvalidFree:
		return "Double Free"
	case BugRace:
		return "Race"
	case BugNullDeref:
		return "Null Deref"
	case BugMisaligned:
		return "Misaligned"
	}
	return "Other"
}

// Report is one sanitizer finding.
type Report struct {
	Tool  Tool
	Bug   BugType
	Addr  uint32
	Size  uint32
	Write bool
	PC    uint32
	Hart  int

	// KASAN object context.
	ChunkAddr uint32
	ChunkSize uint32
	AllocPC   uint32
	FreePC    uint32

	// CallerPC is the return address live at the access — the one-frame
	// backtrace used to attribute violations inside library routines
	// (memcpy and friends) to their caller, like KASAN's stack skipping.
	CallerPC uint32

	// KCSAN second party.
	OtherPC    uint32
	OtherHart  int
	OtherWrite bool

	// Symbolised location (function containing PC), filled by the runtime.
	Location string

	// ICnt is the guest instruction counter at detection time — the virtual
	// timestamp correlating the report with obs trace events. Worker is the
	// scheduler worker that produced the report (filled by the campaign
	// executor; 0 outside one). Neither participates in Signature, Title or
	// Format, so report text and dedup stay byte-identical.
	ICnt   uint64
	Worker int
}

// Signature returns the deduplication key: tool, bug type and the function
// the violation occurred in — the granularity syzkaller-style dedup uses.
func (r *Report) Signature() string {
	loc := r.Location
	if i := strings.IndexByte(loc, '+'); i > 0 {
		loc = loc[:i]
	}
	return fmt.Sprintf("%s:%s:%s", r.Tool, r.Bug, loc)
}

// Title is the one-line summary.
func (r *Report) Title() string {
	return fmt.Sprintf("BUG: %s: %s in %s", r.Tool, r.Bug, r.Location)
}

// Format renders the full kernel-log-style report.
func (r *Report) Format(img *kasm.Image) string {
	var b strings.Builder
	line := strings.Repeat("=", 67)
	b.WriteString(line + "\n")
	b.WriteString(r.Title() + "\n")
	dir := "Read"
	if r.Write {
		dir = "Write"
	}
	if r.Bug == BugRace {
		fmt.Fprintf(&b, "race at addr %#08x between:\n", r.Addr)
		fmt.Fprintf(&b, "  %s of size %d by hart %d at %s\n",
			dir, r.Size, r.Hart, sym(img, r.PC))
		odir := "read"
		if r.OtherWrite {
			odir = "write"
		}
		fmt.Fprintf(&b, "  %s by hart %d at %s\n", odir, r.OtherHart, sym(img, r.OtherPC))
	} else {
		fmt.Fprintf(&b, "%s of size %d at addr %#08x by hart %d\n", dir, r.Size, r.Addr, r.Hart)
		fmt.Fprintf(&b, "pc: %s\n", sym(img, r.PC))
		if r.ChunkAddr != 0 {
			fmt.Fprintf(&b, "The buggy address belongs to the object at %#08x (size %d)\n",
				r.ChunkAddr, r.ChunkSize)
		}
		if r.AllocPC != 0 {
			fmt.Fprintf(&b, "Allocated at %s\n", sym(img, r.AllocPC))
		}
		if r.FreePC != 0 {
			fmt.Fprintf(&b, "Freed at %s\n", sym(img, r.FreePC))
		}
	}
	b.WriteString(line + "\n")
	return b.String()
}

func sym(img *kasm.Image, pc uint32) string {
	if img == nil {
		return fmt.Sprintf("%#08x", pc)
	}
	return img.Symbolize(pc)
}
