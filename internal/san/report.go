package san

import (
	"fmt"
	"strings"

	"embsan/internal/kasm"
)

// Tool identifies which sanitizer functionality produced a report.
type Tool uint8

const (
	ToolKASAN Tool = iota
	ToolKCSAN
	ToolUBSAN
)

func (t Tool) String() string {
	switch t {
	case ToolKCSAN:
		return "KCSAN"
	case ToolUBSAN:
		return "UBSAN"
	}
	return "KASAN"
}

// BugType classifies a detected violation, following the taxonomy of the
// paper's evaluation tables.
type BugType uint8

const (
	BugOOB BugType = iota // heap/slab out-of-bounds
	BugGlobalOOB
	BugStackOOB
	BugUAF
	BugDoubleFree
	BugInvalidFree
	BugNullDeref
	BugWild // access to never-allocated heap memory
	BugRace
	BugMisaligned // UBSAN-style alignment violation
)

func (b BugType) String() string {
	switch b {
	case BugOOB:
		return "slab-out-of-bounds"
	case BugGlobalOOB:
		return "global-out-of-bounds"
	case BugStackOOB:
		return "stack-out-of-bounds"
	case BugUAF:
		return "use-after-free"
	case BugDoubleFree:
		return "double-free"
	case BugInvalidFree:
		return "invalid-free"
	case BugNullDeref:
		return "null-ptr-deref"
	case BugWild:
		return "wild-memory-access"
	case BugRace:
		return "data-race"
	case BugMisaligned:
		return "misaligned-access"
	}
	return "unknown"
}

// Short returns the coarse class used by the evaluation tables.
func (b BugType) Short() string {
	switch b {
	case BugOOB, BugGlobalOOB, BugStackOOB, BugWild:
		return "OOB Access"
	case BugUAF:
		return "UAF"
	case BugDoubleFree, BugInvalidFree:
		return "Double Free"
	case BugRace:
		return "Race"
	case BugNullDeref:
		return "Null Deref"
	case BugMisaligned:
		return "Misaligned"
	}
	return "Other"
}

// Report is one sanitizer finding.
type Report struct {
	Tool  Tool
	Bug   BugType
	Addr  uint32
	Size  uint32
	Write bool
	PC    uint32
	Hart  int

	// KASAN object context.
	ChunkAddr uint32
	ChunkSize uint32
	AllocPC   uint32
	FreePC    uint32

	// CallerPC is the return address of the innermost live frame at the
	// access — taken from the shadow call stack when available (immune to a
	// clobbered RA register), falling back to the live RA. It drives the
	// caller attribution of violations inside library routines (memcpy and
	// friends), like KASAN's stack skipping.
	CallerPC uint32

	// Stack is the full shadow call stack at the access: call-site PCs,
	// innermost first, excluding the faulting PC itself. AllocStack and
	// FreeStack are the stacks recorded when the faulting chunk was
	// allocated and freed (captured only under forensic arming —
	// Runtime.ArmForensics — since stamping every allocation costs).
	Stack      []uint32
	AllocStack []uint32
	FreeStack  []uint32

	// Timeline is the faulting chunk's reconstructed lifetime and
	// LastWriters the trailing accesses to the faulting address, both
	// filled from the obs event stream by the forensics layer. They render
	// as appended report sections and never affect Signature or Title.
	Timeline    []TimelineEntry
	LastWriters []TimelineEntry

	// KCSAN second party.
	OtherPC    uint32
	OtherHart  int
	OtherWrite bool

	// Symbolised location (function containing PC), filled by the runtime.
	Location string

	// ICnt is the guest instruction counter at detection time — the virtual
	// timestamp correlating the report with obs trace events. Worker is the
	// scheduler worker that produced the report (filled by the campaign
	// executor; 0 outside one). Neither participates in Signature, Title or
	// Format, so report text and dedup stay byte-identical.
	ICnt   uint64
	Worker int
}

// TimelineEntry is one reconstructed step in an object's or address's
// history: an allocator event, a shadow poison transition, or a memory
// access, on the virtual clock.
type TimelineEntry struct {
	ICnt  uint64
	Event string // alloc, free, quarantine, poison, unpoison, realloc, write, read
	PC    uint32
	Addr  uint32
	Size  uint32
	Hart  uint8
	// Stack carries the event's attached backtrace frames (call-site PCs,
	// innermost first) when the trace recorded them.
	Stack []uint32
}

// Signature returns the deduplication key: tool, bug type and the function
// the violation occurred in — the granularity syzkaller-style dedup uses.
func (r *Report) Signature() string {
	loc := r.Location
	if i := strings.IndexByte(loc, '+'); i > 0 {
		loc = loc[:i]
	}
	return fmt.Sprintf("%s:%s:%s", r.Tool, r.Bug, loc)
}

// Title is the one-line summary.
func (r *Report) Title() string {
	return fmt.Sprintf("BUG: %s: %s in %s", r.Tool, r.Bug, r.Location)
}

// Format renders the full kernel-log-style report.
func (r *Report) Format(img *kasm.Image) string {
	var b strings.Builder
	line := strings.Repeat("=", 67)
	b.WriteString(line + "\n")
	b.WriteString(r.Title() + "\n")
	dir := "Read"
	if r.Write {
		dir = "Write"
	}
	if r.Bug == BugRace {
		fmt.Fprintf(&b, "race at addr %#08x between:\n", r.Addr)
		fmt.Fprintf(&b, "  %s of size %d by hart %d at %s\n",
			dir, r.Size, r.Hart, sym(img, r.PC))
		odir := "read"
		if r.OtherWrite {
			odir = "write"
		}
		fmt.Fprintf(&b, "  %s by hart %d at %s\n", odir, r.OtherHart, sym(img, r.OtherPC))
	} else {
		fmt.Fprintf(&b, "%s of size %d at addr %#08x by hart %d\n", dir, r.Size, r.Addr, r.Hart)
		fmt.Fprintf(&b, "pc: %s\n", sym(img, r.PC))
		if r.ChunkAddr != 0 {
			fmt.Fprintf(&b, "The buggy address belongs to the object at %#08x (size %d)\n",
				r.ChunkAddr, r.ChunkSize)
		}
		if r.AllocPC != 0 {
			fmt.Fprintf(&b, "Allocated at %s\n", sym(img, r.AllocPC))
		}
		if r.FreePC != 0 {
			fmt.Fprintf(&b, "Freed at %s\n", sym(img, r.FreePC))
		}
	}
	// Forensic sections are strictly additive: a report without captured
	// stacks or timelines renders byte-identically to the pre-forensics
	// format, which is what keeps the Table 3/4 oracles and dedup stable.
	if len(r.Stack) > 0 {
		b.WriteString("Access backtrace:\n")
		fmt.Fprintf(&b, " %s\n", sym(img, r.PC))
		writeFrames(&b, img, r.Stack)
	}
	if len(r.AllocStack) > 0 {
		b.WriteString("Allocation backtrace:\n")
		writeFrames(&b, img, r.AllocStack)
	}
	if len(r.FreeStack) > 0 {
		b.WriteString("Free backtrace:\n")
		writeFrames(&b, img, r.FreeStack)
	}
	if len(r.Timeline) > 0 {
		b.WriteString("Object timeline:\n")
		for _, te := range r.Timeline {
			fmt.Fprintf(&b, " icnt %d: %s", te.ICnt, te.Event)
			if te.Size != 0 {
				fmt.Fprintf(&b, " size %d", te.Size)
			}
			if te.PC != 0 {
				fmt.Fprintf(&b, " at %s", sym(img, te.PC))
			}
			b.WriteByte('\n')
			for _, pc := range te.Stack {
				fmt.Fprintf(&b, "   %s\n", sym(img, pc))
			}
		}
	}
	if len(r.LastWriters) > 0 {
		fmt.Fprintf(&b, "Last writers of %#08x:\n", r.Addr)
		for _, te := range r.LastWriters {
			fmt.Fprintf(&b, " icnt %d: hart %d %s of size %d at %s\n",
				te.ICnt, te.Hart, te.Event, te.Size, sym(img, te.PC))
		}
	}
	b.WriteString(line + "\n")
	return b.String()
}

// writeFrames renders backtrace frames, one call site per line, innermost
// first.
func writeFrames(b *strings.Builder, img *kasm.Image, frames []uint32) {
	for _, pc := range frames {
		fmt.Fprintf(b, " %s\n", sym(img, pc))
	}
}

func sym(img *kasm.Image, pc uint32) string {
	if img == nil {
		return fmt.Sprintf("%#08x", pc)
	}
	return img.Symbolize(pc)
}
