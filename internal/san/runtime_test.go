package san

import (
	"testing"

	"embsan/internal/dsl"
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

const (
	rZ  = isa.RegZero
	rRA = isa.RegRA
	rSP = isa.RegSP
	rA0 = isa.RegA0
	rA1 = isa.RegA1
	rA2 = isa.RegA2
	rT0 = isa.RegT0
	rT1 = isa.RegT1
)

// buildScenario constructs a miniature firmware with a bump allocator and
// one triggered bug, in the given sanitize mode.
func buildScenario(t *testing.T, mode kasm.SanitizeMode, scenario string) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})
	b.GlobalRaw("stack", 4096)
	b.GlobalRaw("heap", 4096)
	b.GlobalRaw("heap_next", 4)
	b.Global("gbuf", 24) // redzoned in EMBSAN-C builds

	b.Func("_start")
	b.La(rSP, "stack")
	b.ADDI(rSP, rSP, 2044)
	// Initialise the bump pointer.
	b.NoSan(func() {
		b.La(rT0, "heap_next")
		b.La(rT1, "heap")
		b.SW(rT1, rT0, 0)
	})
	b.Ready()
	b.Call("scenario")
	b.Li(rA0, 0)
	b.HCALL(isa.HcallExit)

	// kmalloc: a0 = size -> a0 = ptr (16-byte aligned bump).
	b.Func("kmalloc")
	b.NoSan(func() {
		b.MV(rA1, rA0) // keep size for the hook
		b.La(rT0, "heap_next")
		b.LW(rT1, rT0, 0)
		b.ADDI(rA0, rA1, 15)
		b.SRLI(rA0, rA0, 4)
		b.SLLI(rA0, rA0, 4)
		b.ADD(rA0, rA0, rT1)
		b.SW(rA0, rT0, 0)
		b.MV(rA0, rT1)
	})
	b.SanAllocHook() // a0 = ptr, a1 = size (EMBSAN-C / native builds)
	b.Ret()
	b.MarkAlloc("kmalloc")

	// kfree: a0 = ptr (bump allocators never reuse; good enough here).
	b.Func("kfree")
	b.SanFreeHook()
	b.Ret()
	b.MarkFree("kfree")

	b.Func("scenario")
	b.Prologue(16)
	switch scenario {
	case "heap_oob":
		b.Li(rA0, 24)
		b.Call("kmalloc")
		b.Li(rT0, 0x5A)
		b.SB(rT0, rA0, 24) // one past the object
	case "uaf":
		b.Li(rA0, 16)
		b.Call("kmalloc")
		b.SW(rA0, rSP, 0)
		b.Call("kfree")
		b.LW(rA0, rSP, 0)
		b.LW(rT0, rA0, 0) // read after free
	case "double_free":
		b.Li(rA0, 16)
		b.Call("kmalloc")
		b.SW(rA0, rSP, 0)
		b.Call("kfree")
		b.LW(rA0, rSP, 0)
		b.Call("kfree")
	case "null":
		b.Li(rT0, 0x10)
		b.LW(rT1, rT0, 0)
	case "global_oob":
		b.La(rT0, "gbuf")
		b.Li(rT1, 0x77)
		b.SB(rT1, rT0, 24) // one past the global
	case "stack_oob":
		// A guarded on-stack buffer, overflowed by one byte. Only
		// compile-time-instrumented builds lay down stack redzones.
		b.ADDI(rSP, rSP, -64)
		b.GuardedBuffer(16, 24, rA1)
		b.Li(rT1, 0x21)
		b.SB(rT1, rA1, 23) // in bounds
		b.SB(rT1, rA1, 24) // one past
		b.UnguardBuffer(16, 24)
		b.ADDI(rSP, rSP, 64)
	case "invalid_free":
		b.La(rA0, "gbuf") // not a heap pointer
		b.Call("kfree")
	case "clean":
		b.Li(rA0, 32)
		b.Call("kmalloc")
		b.Li(rT0, 1)
		b.SW(rT0, rA0, 0)
		b.LW(rT1, rA0, 28)
	default:
		t.Fatalf("unknown scenario %q", scenario)
	}
	b.Epilogue(16)

	img, err := b.Link("scenario-" + scenario)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

// findExits locates the return instructions of a function (what the Prober
// does with its static pass).
func findExits(t *testing.T, img *kasm.Image, fn string) []uint32 {
	t.Helper()
	s, ok := img.Lookup(fn)
	if !ok {
		t.Fatalf("no symbol %s", fn)
	}
	var exits []uint32
	for pc := s.Addr; pc < s.Addr+s.Size; pc += 4 {
		w := img.Arch.Word(img.Text[pc-img.Base:])
		in, err := isa.Decode(w, img.Arch)
		if err == nil && in.Op == isa.OpJALR && in.Rd == rZ && in.Rs1 == rRA {
			exits = append(exits, pc)
		}
	}
	return exits
}

func kasanSpec(t *testing.T) *dsl.Sanitizer {
	t.Helper()
	f, err := dsl.Parse(`
sanitizer kasan {
  intercept load(addr: ptr, size: u32) -> check;
  intercept store(addr: ptr, size: u32) -> check;
  intercept atomic(addr: ptr, size: u32) -> check;
  intercept func kmalloc(size: u32) ret ptr -> alloc;
  intercept func kfree(ptr: ptr) -> free;
  resource shadow { granularity = 8; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	return f.Sanitizers[0]
}

// platformFor builds the D-mode platform config the Prober would emit.
func platformFor(t *testing.T, img *kasm.Image) *dsl.Platform {
	t.Helper()
	heap, _ := img.Lookup("heap")
	km, _ := img.Lookup("kmalloc")
	kf, _ := img.Lookup("kfree")
	return &dsl.Platform{
		Name:  img.Name,
		Arch:  img.Arch.String(),
		RAM:   emu.DefaultRAMSize,
		Heaps: []dsl.Region{{Start: heap.Addr, End: heap.Addr + heap.Size}},
		Allocs: []dsl.AllocFn{{
			Name: "kmalloc", Entry: km.Addr, Exits: findExits(t, img, "kmalloc"),
			SizeArg: "a0", RetArg: "a0",
		}},
		Frees: []dsl.FreeFn{{Name: "kfree", Entry: kf.Addr, PtrArg: "a0"}},
		Suppress: []dsl.Region{
			{Start: km.Addr, End: km.Addr + km.Size},
			{Start: kf.Addr, End: kf.Addr + kf.Size},
		},
	}
}

// runScenario runs one scenario in the given mode and returns the reports.
func runScenario(t *testing.T, mode kasm.SanitizeMode, scenario string) []*Report {
	t.Helper()
	img := buildScenario(t, mode, scenario)
	m, err := emu.New(img, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Spec: kasanSpec(t), Quarantine: 16}
	if mode == kasm.SanEmbsanC {
		opts.Hypercalls = true
		opts.Globals = img.Meta.Globals
		heap, _ := img.Lookup("heap")
		opts.Platform = &dsl.Platform{
			Name: img.Name, Arch: img.Arch.String(),
			Heaps: []dsl.Region{{Start: heap.Addr, End: heap.Addr + heap.Size}},
		}
	} else {
		opts.Platform = platformFor(t, img)
	}
	rt, err := Attach(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Run(1_000_000); r != emu.StopExit {
		// Null scenario faults after the report unless stopped; that is fine
		// as long as the report exists.
		if r != emu.StopFault && r != emu.StopRequest {
			t.Fatalf("%s/%s: stop = %v fault=%v", mode, scenario, r, m.Fault())
		}
	}
	return rt.Reports()
}

func TestRuntimeDetectionMatrix(t *testing.T) {
	// scenario -> expected bug under each mode; "" means no report expected.
	type want struct{ d, c BugType }
	none := BugType(255)
	cases := map[string]want{
		"heap_oob":    {BugOOB, BugOOB},
		"uaf":         {BugUAF, BugUAF},
		"double_free": {BugDoubleFree, BugDoubleFree},
		"null":        {BugNullDeref, BugNullDeref},
		// The capability split of Table 2: global and stack OOB need
		// compile-time redzones, so EMBSAN-D misses them and EMBSAN-C
		// catches them.
		"global_oob":   {none, BugGlobalOOB},
		"stack_oob":    {none, BugStackOOB},
		"invalid_free": {BugInvalidFree, BugInvalidFree},
		"clean":        {none, none},
	}
	for scenario, w := range cases {
		dRep := runScenario(t, kasm.SanNone, scenario)
		cRep := runScenario(t, kasm.SanEmbsanC, scenario)
		check := func(mode string, reps []*Report, wantBug BugType) {
			if wantBug == none {
				if len(reps) != 0 {
					t.Errorf("%s/%s: unexpected reports: %v", scenario, mode, reps[0].Title())
				}
				return
			}
			if len(reps) == 0 {
				t.Errorf("%s/%s: no report", scenario, mode)
				return
			}
			if reps[0].Bug != wantBug {
				t.Errorf("%s/%s: bug = %v, want %v", scenario, mode, reps[0].Bug, wantBug)
			}
			if reps[0].Location == "" {
				t.Errorf("%s/%s: no symbolized location", scenario, mode)
			}
		}
		check("EMBSAN-D", dRep, w.d)
		check("EMBSAN-C", cRep, w.c)
	}
}

func TestRuntimeReportContext(t *testing.T) {
	reps := runScenario(t, kasm.SanNone, "uaf")
	if len(reps) == 0 {
		t.Fatal("no UAF report")
	}
	r := reps[0]
	if r.ChunkSize != 16 || r.AllocPC == 0 || r.FreePC == 0 {
		t.Errorf("UAF report lacks object context: %+v", r)
	}
	if r.Location[:8] != "scenario" {
		t.Errorf("UAF location = %q, want inside scenario", r.Location)
	}
}

func TestRuntimeDisabledBeforeReady(t *testing.T) {
	// A bug triggered before the ready point must not be reported: the
	// sanitizer initialises at ready, like the paper's boot-phase split.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 0x10)
	b.LW(rT1, rT0, 0) // pre-ready null read
	b.Ready()
	b.Li(rA0, 0)
	b.HCALL(isa.HcallExit)
	img, err := b.Link("preready")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{})
	rt, err := Attach(m, Options{Spec: kasanSpec(t)})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0) // will fault on the null guard, which is expected
	if len(rt.Reports()) != 0 {
		t.Errorf("pre-ready access reported: %v", rt.Reports()[0].Title())
	}
}

func TestRuntimeStopOnReport(t *testing.T) {
	img := buildScenario(t, kasm.SanNone, "heap_oob")
	m, _ := emu.New(img, emu.Config{})
	opts := Options{Spec: kasanSpec(t), Platform: platformFor(t, img), StopOnReport: true}
	rt, err := Attach(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Run(0); r != emu.StopRequest {
		t.Fatalf("stop = %v, want request", r)
	}
	if len(rt.Reports()) != 1 {
		t.Fatalf("reports = %d", len(rt.Reports()))
	}
}

func TestRuntimeSnapshotRestore(t *testing.T) {
	img := buildScenario(t, kasm.SanNone, "uaf")
	m, _ := emu.New(img, emu.Config{})
	rt, err := Attach(m, Options{Spec: kasanSpec(t), Platform: platformFor(t, img)})
	if err != nil {
		t.Fatal(err)
	}
	m.ReadyHook = chainReady(m.ReadyHook, func(mm *emu.Machine) {
		mm.Snapshot()
		rt.Snapshot()
	})
	for i := 0; i < 3; i++ {
		if i > 0 {
			m.Restore()
			rt.Restore()
		}
		m.Run(1_000_000)
		if len(rt.Reports()) != 1 || rt.Reports()[0].Bug != BugUAF {
			t.Fatalf("run %d: reports = %v", i, rt.Reports())
		}
	}
}

func chainReady(prev func(*emu.Machine), next func(*emu.Machine)) func(*emu.Machine) {
	return func(m *emu.Machine) {
		if prev != nil {
			prev(m)
		}
		next(m)
	}
}

func TestRuntimeRaceDetection(t *testing.T) {
	// Two harts pound the same word without synchronisation; the merged
	// KASAN+KCSAN spec must produce a data-race report.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("shared", 4)
	b.GlobalRaw("stk1", 1024)
	b.Func("_start")
	b.Ready()
	b.Li(rA0, 1)
	b.La(rA1, "pound")
	b.La(rA2, "stk1")
	b.ADDI(rA2, rA2, 1020)
	b.HCALL(isa.HcallSpawn)
	b.Call("pound")
	b.Li(rA0, 0)
	b.HCALL(isa.HcallExit)
	b.Func("pound")
	b.La(rT0, "shared")
	b.Li(rT1, 2000)
	b.Label("l")
	b.LW(rA0, rT0, 0)
	b.ADDI(rA0, rA0, 1)
	b.SW(rA0, rT0, 0)
	b.ADDI(rT1, rT1, -1)
	b.BNEZ(rT1, "l")
	b.Ret()
	img, err := b.Link("race")
	if err != nil {
		t.Fatal(err)
	}

	f, err := dsl.Parse(`
sanitizer kcsan {
  intercept load(addr: ptr, size: u32) -> check [kcsan];
  intercept store(addr: ptr, size: u32) -> check [kcsan];
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(img, emu.Config{Seed: 42})
	rt, err := Attach(m, Options{
		Spec:  f.Sanitizers[0],
		KCSAN: KCSANConfig{Slots: 4, SampleInterval: 7, Delay: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10_000_000)
	var races int
	for _, r := range rt.Reports() {
		if r.Bug == BugRace {
			races++
		}
	}
	if races == 0 {
		t.Error("no data race detected")
	}
}

// TestRuntimeUBSANAdaptability exercises the paper's §5 adaptability claim:
// a third sanitizer (an alignment checker) plugs into the same pipeline —
// distilled spec, merged with KASAN, runtime logic in the host — without
// touching the guest.
func TestRuntimeUBSANAdaptability(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("data", 16)
	b.Func("_start")
	b.Ready()
	b.La(rA1, "data")
	b.LW(rT0, rA1, 0) // aligned: fine
	b.LW(rT0, rA1, 2) // misaligned word load
	b.LH(rT0, rA1, 5) // misaligned halfword load
	b.Li(rA0, 0)
	b.HCALL(isa.HcallExit)
	img, err := b.Link("align")
	if err != nil {
		t.Fatal(err)
	}

	run := func(sanitizers []*dsl.Sanitizer) []*Report {
		spec := sanitizers[0]
		if len(sanitizers) > 1 {
			spec = dsl.MergeSanitizers("merged", sanitizers)
		}
		m, _ := emu.New(img, emu.Config{})
		rt, err := Attach(m, Options{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1_000_000)
		return rt.Reports()
	}

	ubsanFile, err := dsl.Parse(`
sanitizer ubsan {
  intercept load(addr: ptr, size: u32, type: u32) -> check [ubsan];
  intercept store(addr: ptr, size: u32, type: u32) -> check [ubsan];
}`)
	if err != nil {
		t.Fatal(err)
	}
	kasanFile, err := dsl.Parse(`
sanitizer kasan {
  intercept load(addr: ptr, size: u32) -> check [kasan];
  intercept store(addr: ptr, size: u32) -> check [kasan];
}`)
	if err != nil {
		t.Fatal(err)
	}

	// KASAN alone is silent on misalignment.
	if reps := run(kasanFile.Sanitizers); len(reps) != 0 {
		t.Errorf("kasan-only reported misalignment: %v", reps[0].Title())
	}
	// The merged kasan+ubsan spec reports the misalignment (both sites sit
	// in the same function, so report-once dedup folds them into one).
	reps := run([]*dsl.Sanitizer{kasanFile.Sanitizers[0], ubsanFile.Sanitizers[0]})
	var misaligned int
	for _, r := range reps {
		if r.Bug == BugMisaligned && r.Tool == ToolUBSAN {
			misaligned++
		}
	}
	if misaligned != 1 {
		t.Errorf("misaligned reports = %d, want 1 (got %d total)", misaligned, len(reps))
	}
}

func TestConvertNative(t *testing.T) {
	img := buildScenario(t, kasm.SanNone, "clean")
	reps := ConvertNative(img, []emu.NativeReport{
		{Addr: 0x2000, Info: uint32(CodeHeapFree), PC: img.Entry, Kind: NativeKindKASAN},
		{Addr: 0x3000, Info: 0x1234, PC: img.Entry + 4, Kind: NativeKindKCSAN},
	})
	if len(reps) != 2 {
		t.Fatal("conversion count")
	}
	if reps[0].Bug != BugUAF || reps[0].Tool != ToolKASAN {
		t.Errorf("native kasan report: %+v", reps[0])
	}
	if reps[1].Bug != BugRace || reps[1].Tool != ToolKCSAN || reps[1].OtherPC != 0x1234 {
		t.Errorf("native kcsan report: %+v", reps[1])
	}
	if reps[0].Location == "" {
		t.Error("native report not symbolized")
	}
}
