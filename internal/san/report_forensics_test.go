package san

import (
	"strings"
	"testing"
)

// TestReportFormatAdditive is the compatibility contract of the forensic
// report fields: a report with backtraces and timelines attached renders
// as the old report text with sections appended before the closing rule —
// nothing in the pre-forensics text moves — and Signature/Title are
// untouched by any forensic field.
func TestReportFormatAdditive(t *testing.T) {
	base := Report{
		Tool: ToolKASAN, Bug: BugUAF, Addr: 0x2000, Size: 4, Write: false,
		PC: 0x1540, Hart: 0, ChunkAddr: 0x2000, ChunkSize: 48,
		AllocPC: 0x1500, FreePC: 0x1520, Location: "st7789_draw+0x3c",
	}
	old := base.Format(nil)

	rich := base
	rich.Stack = []uint32{0x1500, 0x1400}
	rich.AllocStack = []uint32{0x1504, 0x1400}
	rich.FreeStack = []uint32{0x1524, 0x1400}
	rich.Timeline = []TimelineEntry{
		{ICnt: 100, Event: "alloc", PC: 0x900, Addr: 0x2000, Size: 48, Stack: []uint32{0x1504}},
		{ICnt: 150, Event: "free", PC: 0x910, Addr: 0x2000},
		{ICnt: 150, Event: "quarantine", Addr: 0x2000, Size: 48},
	}
	rich.LastWriters = []TimelineEntry{
		{ICnt: 140, Event: "write", PC: 0x1510, Addr: 0x2000, Size: 1},
	}
	enriched := rich.Format(nil)

	if enriched == old {
		t.Fatal("forensic fields did not change the rendered report")
	}
	oldLines := strings.Split(old, "\n")
	newLines := strings.Split(enriched, "\n")
	// Every pre-forensics line except the closing rule is preserved
	// verbatim, in place, as a prefix of the enriched report.
	prefix := oldLines[:len(oldLines)-2] // drop closing "===..." and trailing ""
	for i, line := range prefix {
		if newLines[i] != line {
			t.Fatalf("line %d changed: %q -> %q", i, line, newLines[i])
		}
	}
	// The closing rule is still the last line.
	if newLines[len(newLines)-2] != oldLines[len(oldLines)-2] {
		t.Errorf("closing rule moved: %q", newLines[len(newLines)-2])
	}
	// The appended region contains exactly the forensic sections.
	appended := strings.Join(newLines[len(prefix):len(newLines)-2], "\n")
	for _, section := range []string{"Access backtrace:", "Allocation backtrace:",
		"Free backtrace:", "Object timeline:", "Last writers of 0x00002000:"} {
		if !strings.Contains(appended, section) {
			t.Errorf("appended region missing %q:\n%s", section, appended)
		}
	}
	if strings.Contains(old, "backtrace") || strings.Contains(old, "timeline") {
		t.Errorf("pre-forensics report already contains forensic sections:\n%s", old)
	}

	if rich.Signature() != base.Signature() {
		t.Errorf("Signature changed: %q vs %q", rich.Signature(), base.Signature())
	}
	if rich.Title() != base.Title() {
		t.Errorf("Title changed: %q vs %q", rich.Title(), base.Title())
	}
}
