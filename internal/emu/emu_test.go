package emu

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

const (
	rZ  = isa.RegZero
	rSP = isa.RegSP
	rA0 = isa.RegA0
	rA1 = isa.RegA1
	rA2 = isa.RegA2
	rA3 = isa.RegA3
	rT0 = isa.RegT0
	rT1 = isa.RegT1
)

func mustLink(t *testing.T, b *kasm.Builder, name string) *kasm.Image {
	t.Helper()
	img, err := b.Link(name)
	if err != nil {
		t.Fatalf("link %s: %v", name, err)
	}
	return img
}

func newMachine(t *testing.T, img *kasm.Image) *Machine {
	t.Helper()
	m, err := New(img, Config{})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

// exitWith builds the common epilogue: hcall exit with a0.
func exitWith(b *kasm.Builder) { b.HCALL(isa.HcallExit) }

func TestArithmeticAndCalls(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		b := kasm.NewBuilder(kasm.Target{Arch: arch})
		b.GlobalRaw("stack", 4096)
		b.Func("_start")
		b.La(rSP, "stack")
		b.ADDI(rSP, rSP, 2044)
		b.Li(rA0, 5)
		b.Li(rA1, 7)
		b.Call("addmul")
		exitWith(b)
		b.Func("addmul") // returns (a0+a1)*2
		b.ADD(rA0, rA0, rA1)
		b.SLLI(rA0, rA0, 1)
		b.Ret()
		m := newMachine(t, mustLink(t, b, "arith"))
		if r := m.Run(10000); r != StopExit {
			t.Fatalf("%s: stop = %v, fault = %v", arch, r, m.Fault())
		}
		if m.ExitCode() != 24 {
			t.Errorf("%s: exit = %d, want 24", arch, m.ExitCode())
		}
	}
}

func TestLoopsLoadsStores(t *testing.T) {
	// Sum 1..10 into a global, then read it back.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("acc", 4)
	b.Func("_start")
	b.Li(rT0, 1)
	b.Li(rT1, 11)
	b.La(rA1, "acc")
	b.Label("loop")
	b.LW(rA0, rA1, 0)
	b.ADD(rA0, rA0, rT0)
	b.SW(rA0, rA1, 0)
	b.ADDI(rT0, rT0, 1)
	b.BNE(rT0, rT1, "loop")
	b.LW(rA0, rA1, 0)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "loop"))
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v", r)
	}
	if m.ExitCode() != 55 {
		t.Errorf("exit = %d, want 55", m.ExitCode())
	}
}

func TestByteHalfAccessAndSignExtension(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E} {
		b := kasm.NewBuilder(kasm.Target{Arch: arch})
		b.GlobalRaw("buf", 16)
		b.Func("_start")
		b.La(rA1, "buf")
		b.Li(rT0, -2) // 0xFFFFFFFE
		b.SB(rT0, rA1, 0)
		b.LB(rA0, rA1, 0) // sign-extended -2
		b.LBU(rT1, rA1, 0)
		b.ADD(rA0, rA0, rT1) // -2 + 254 = 252
		b.SH(rT0, rA1, 4)
		b.LH(rT1, rA1, 4) // -2
		b.ADD(rA0, rA0, rT1)
		exitWith(b)
		m := newMachine(t, mustLink(t, b, "bytes"))
		if r := m.Run(0); r != StopExit {
			t.Fatalf("%s: stop = %v fault=%v", arch, r, m.Fault())
		}
		if m.ExitCode() != 250 {
			t.Errorf("%s: exit = %d, want 250", arch, m.ExitCode())
		}
	}
}

func TestNullDerefFaults(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.LW(rA0, rZ, 16) // load from address 16 -> null guard page
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "null"))
	if r := m.Run(0); r != StopFault {
		t.Fatalf("stop = %v, want fault", r)
	}
	f := m.Fault()
	if f.Kind != FaultNullDeref || f.Addr != 16 {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnmappedFaults(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA1, 0x2000000) // past 16MiB RAM
	b.LW(rA0, rA1, 0)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "unmapped"))
	if r := m.Run(0); r != StopFault || m.Fault().Kind != FaultUnmapped {
		t.Fatalf("stop = %v fault = %+v", r, m.Fault())
	}
}

func TestUARTOutput(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA1, int32(int64(UARTBase)-(1<<32)))
	for _, c := range "hi" {
		b.Li(rT0, int32(c))
		b.SB(rT0, rA1, 0)
	}
	b.Li(rA0, 0)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "uart"))
	m.Run(0)
	if got := m.UART.String(); got != "hi" {
		t.Errorf("uart = %q", got)
	}
}

func TestHypercallPutcAndHalt(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA0, 'X')
	b.HCALL(isa.HcallPutc)
	b.HALT()
	m := newMachine(t, mustLink(t, b, "putc"))
	if r := m.Run(0); r != StopHalted {
		t.Fatalf("stop = %v", r)
	}
	if m.UART.String() != "X" {
		t.Errorf("uart = %q", m.UART.String())
	}
}

func TestMultiHartSpawnAndAtomics(t *testing.T) {
	// Hart 0 spawns hart 1; both atomically add to a counter; hart 0 waits
	// for the flag then exits with the counter value.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("counter", 4)
	b.GlobalRaw("flag", 4)
	b.GlobalRaw("stack1", 4096)
	b.Func("_start")
	b.Li(rA0, 1)
	b.La(rA1, "worker")
	b.La(rA2, "stack1")
	b.ADDI(rA2, rA2, 2044)
	b.HCALL(isa.HcallSpawn)
	b.La(rT0, "counter")
	b.Li(rT1, 100)
	b.AMOADDW(rZ, rT0, rT1)
	b.La(rT0, "flag")
	b.Label("wait")
	b.YIELD()
	b.LW(rA0, rT0, 0)
	b.BEQZ(rA0, "wait")
	b.La(rT0, "counter")
	b.LW(rA0, rT0, 0)
	exitWith(b)
	b.Func("worker")
	b.La(rT0, "counter")
	b.Li(rT1, 23)
	b.AMOADDW(rZ, rT0, rT1)
	b.La(rT0, "flag")
	b.Li(rT1, 1)
	b.SW(rT1, rT0, 0)
	b.HALT()
	m := newMachine(t, mustLink(t, b, "smp"))
	if r := m.Run(100000); r != StopExit {
		t.Fatalf("stop = %v fault=%v", r, m.Fault())
	}
	if m.ExitCode() != 123 {
		t.Errorf("exit = %d, want 123", m.ExitCode())
	}
}

func TestLRSCConflict(t *testing.T) {
	// SC without a reservation must fail.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("w", 4)
	b.Func("_start")
	b.La(rA1, "w")
	b.Li(rT0, 9)
	b.SCW(rA0, rA1, rT0) // no LR -> rd = 1 (failure)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "sc"))
	m.Run(0)
	if m.ExitCode() != 1 {
		t.Errorf("sc without reservation = %d, want 1", m.ExitCode())
	}

	// LR/SC pair succeeds and stores.
	b2 := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b2.GlobalRaw("w", 4)
	b2.Func("_start")
	b2.La(rA1, "w")
	b2.LRW(rT0, rA1)
	b2.Li(rT0, 7)
	b2.SCW(rA0, rA1, rT0)
	b2.LW(rT1, rA1, 0)
	b2.ADD(rA0, rA0, rT1) // 0 + 7
	exitWith(b2)
	m2 := newMachine(t, mustLink(t, b2, "sc2"))
	m2.Run(0)
	if m2.ExitCode() != 7 {
		t.Errorf("lr/sc = %d, want 7", m2.ExitCode())
	}
}

func TestMemProbeFiresAndCanStop(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("buf", 8)
	b.Func("_start")
	b.La(rA1, "buf")
	b.Li(rT0, 1)
	b.SW(rT0, rA1, 0)
	b.LW(rT1, rA1, 0)
	b.Li(rA0, 0)
	exitWith(b)
	img := mustLink(t, b, "probe")
	m := newMachine(t, img)
	var events []MemEvent
	m.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		events = append(events, *ev)
	}})
	m.Run(0)
	if len(events) != 2 {
		t.Fatalf("probe fired %d times, want 2", len(events))
	}
	if !events[0].Write || events[1].Write {
		t.Error("probe direction flags wrong")
	}
	buf, _ := img.Lookup("buf")
	if events[0].Addr != buf.Addr || events[0].Size != 4 {
		t.Errorf("probe addr/size = %#x/%d", events[0].Addr, events[0].Size)
	}

	// A probe requesting stop must prevent the access.
	m2 := newMachine(t, img)
	m2.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		if ev.Write {
			m2.RequestStop()
		}
	}})
	if r := m2.Run(0); r != StopRequest {
		t.Fatalf("stop = %v", r)
	}
	w, _ := m2.ReadWord(buf.Addr)
	if w != 0 {
		t.Error("store executed despite probe stop")
	}
}

func TestSanckProbe(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanEmbsanC})
	b.GlobalRaw("buf", 8)
	b.Func("_start")
	b.La(rA1, "buf")
	b.Li(rT0, 42)
	b.SW(rT0, rA1, 4)
	b.Li(rA0, 0)
	exitWith(b)
	img := mustLink(t, b, "sanck")
	m := newMachine(t, img)
	var got []MemEvent
	m.SetProbes(ProbeSet{Sanck: func(ev *MemEvent) { got = append(got, *ev) }})
	m.Run(0)
	buf, _ := img.Lookup("buf")
	if len(got) != 1 || got[0].Addr != buf.Addr+4 || !got[0].Write || got[0].Size != 4 {
		t.Errorf("sanck events = %+v", got)
	}
}

func TestPCHook(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA0, 1)
	b.Call("victim")
	exitWith(b)
	b.Func("victim")
	b.ADDI(rA0, rA0, 1)
	b.Ret()
	img := mustLink(t, b, "hook")
	m := newMachine(t, img)
	v, _ := img.Lookup("victim")
	var hits int
	m.HookPC(v.Addr, func(m *Machine, h *Hart) {
		hits++
		if h.Regs[rA0] != 1 {
			t.Errorf("a0 at hook = %d", h.Regs[rA0])
		}
	})
	m.Run(0)
	if hits != 1 {
		t.Errorf("hook hits = %d", hits)
	}
	if m.ExitCode() != 2 {
		t.Errorf("exit = %d", m.ExitCode())
	}
}

func TestStallProbe(t *testing.T) {
	// Probe stalls hart 0 on its first store; hart 1 (spawned) runs during
	// the stall window; afterwards the store completes.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("a", 4)
	b.GlobalRaw("bvar", 4)
	b.GlobalRaw("stk", 1024)
	b.Func("_start")
	b.Li(rA0, 1)
	b.La(rA1, "worker")
	b.La(rA2, "stk")
	b.ADDI(rA2, rA2, 1020)
	b.HCALL(isa.HcallSpawn)
	b.La(rT0, "a")
	b.Li(rT1, 5)
	b.SW(rT1, rT0, 0) // stalled here
	b.La(rT0, "bvar")
	b.LW(rA0, rT0, 0) // should observe worker's write after the stall
	exitWith(b)
	b.Func("worker")
	b.La(rT0, "bvar")
	b.Li(rT1, 77)
	b.SW(rT1, rT0, 0)
	b.HALT()
	img := mustLink(t, b, "stall")
	m := newMachine(t, img)
	stalled := false
	aSym, _ := img.Lookup("a")
	m.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		if ev.Write && ev.Addr == aSym.Addr && !stalled {
			stalled = true
			ev.StallInsts = 500
		}
	}})
	if r := m.Run(100000); r != StopExit {
		t.Fatalf("stop = %v fault=%v", r, m.Fault())
	}
	if !stalled {
		t.Fatal("probe never stalled")
	}
	if m.ExitCode() != 77 {
		t.Errorf("exit = %d, want 77 (worker ran during stall)", m.ExitCode())
	}
	w, _ := m.ReadWord(aSym.Addr)
	if w != 5 {
		t.Errorf("stalled store lost: a = %d", w)
	}
}

func TestMailboxRoundTrip(t *testing.T) {
	// Guest waits for a mailbox input, sums its bytes, writes the sum to
	// the done register.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA1, int32(int64(MailboxBase)-(1<<32)))
	b.Label("poll")
	b.YIELD()
	b.LW(rT0, rA1, 0)
	b.BEQZ(rT0, "poll")
	b.LW(rA2, rA1, 4) // len
	b.Li(rA3, int32(int64(MailboxData)-(1<<32)))
	b.Li(rA0, 0)
	b.Li(rT0, 0)
	b.Label("sum")
	b.BGE(rT0, rA2, "done")
	b.ADD(rT1, rA3, rT0)
	b.LBU(rT1, rT1, 0)
	b.ADD(rA0, rA0, rT1)
	b.ADDI(rT0, rT0, 1)
	b.J("sum")
	b.Label("done")
	b.SW(rA0, rA1, 8)
	b.J("poll")
	m := newMachine(t, mustLink(t, b, "mbox"))
	m.Mailbox.Post([]byte{1, 2, 3, 4})
	// Writing the done register stops the machine so the host regains
	// control immediately.
	if r := m.Run(100000); r != StopRequest {
		t.Fatalf("stop = %v", r)
	}
	done, code := m.Mailbox.Done()
	if !done || code != 10 {
		t.Errorf("done=%v code=%d, want true,10", done, code)
	}
	// And the machine is resumable for the next input.
	m.Mailbox.Post([]byte{5, 5})
	if r := m.Run(100000); r != StopRequest {
		t.Fatalf("second stop = %v", r)
	}
	if _, code := m.Mailbox.Done(); code != 10 {
		t.Errorf("second code = %d", code)
	}
}

func TestSnapshotRestore(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("g", 4)
	b.Func("_start")
	b.Ready()
	b.La(rA1, "g")
	b.LW(rA0, rA1, 0)
	b.ADDI(rA0, rA0, 1)
	b.SW(rA0, rA1, 0)
	exitWith(b)
	img := mustLink(t, b, "snap")
	m := newMachine(t, img)
	m.ReadyHook = func(m *Machine) { m.Snapshot() }
	gSym, _ := img.Lookup("g")
	for run := 0; run < 3; run++ {
		if run > 0 {
			m.Restore()
		}
		if r := m.Run(0); r != StopExit {
			t.Fatalf("run %d: stop = %v", run, r)
		}
		// Every run starts from g==0, so the exit code is always 1.
		if m.ExitCode() != 1 {
			t.Errorf("run %d: exit = %d, want 1", run, m.ExitCode())
		}
		w, _ := m.ReadWord(gSym.Addr)
		if w != 1 {
			t.Errorf("run %d: g = %d", run, w)
		}
		if !m.ReadyReached {
			t.Error("ready flag lost")
		}
	}
}

func TestCoverageHook(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 3)
	b.Label("spin")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "spin")
	b.Li(rA0, 0)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "cov"))
	pcs := map[uint32]int{}
	m.CoverageHook = func(pc uint32) { pcs[pc]++ }
	m.Run(0)
	if len(pcs) < 2 {
		t.Errorf("coverage saw %d blocks", len(pcs))
	}
}

func TestCSRs(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.CSRR(rA0, isa.CSRHartID)
	b.CSRR(rT0, isa.CSRNHarts)
	b.SLLI(rT0, rT0, 4)
	b.OR(rA0, rA0, rT0)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "csr"))
	m.Run(0)
	if m.ExitCode() != 0x20 { // hart 0, 2 harts
		t.Errorf("exit = %#x, want 0x20", m.ExitCode())
	}
}

func TestRunBudgetResumes(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 1000)
	b.Label("spin")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "spin")
	b.Li(rA0, 42)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "budget"))
	if r := m.Run(100); r != StopBudget {
		t.Fatalf("stop = %v", r)
	}
	if r := m.Run(0); r != StopExit || m.ExitCode() != 42 {
		t.Fatalf("resume: stop = %v exit = %d", r, m.ExitCode())
	}
}

func TestTestDevExitAndEvents(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA1, int32(int64(TestDevBase)-(1<<32)))
	b.Li(rT0, 7)
	b.SW(rT0, rA1, 4) // event
	b.Li(rT0, 3)
	b.SW(rT0, rA1, 0) // exit 3
	b.HALT()
	m := newMachine(t, mustLink(t, b, "testdev"))
	if r := m.Run(0); r != StopExit || m.ExitCode() != 3 {
		t.Fatalf("stop=%v exit=%d", r, m.ExitCode())
	}
	if len(m.TestDev.Events) != 1 || m.TestDev.Events[0] != 7 {
		t.Errorf("events = %v", m.TestDev.Events)
	}
}
