package emu

import "bytes"

// UART is a write-only console device; everything the guest prints lands in
// a host-side buffer.
type UART struct {
	buf bytes.Buffer
}

func (u *UART) Name() string                  { return "uart" }
func (u *UART) Contains(addr uint32) bool     { return addr >= UARTBase && addr < UARTBase+0x100 }
func (u *UART) Read(addr, size uint32) uint32 { return 0 }
func (u *UART) Write(addr, size, val uint32) {
	if addr == UARTBase {
		u.buf.WriteByte(byte(val))
	}
}
func (u *UART) Reset()         { u.buf.Reset() }
func (u *UART) String() string { return u.buf.String() }

// Bytes returns the console output so far.
func (u *UART) Bytes() []byte { return u.buf.Bytes() }

// Mailbox register offsets (from MailboxBase).
const (
	mbRegStatus = 0 // guest reads 1 when input is pending
	mbRegLen    = 4 // length of pending input
	mbRegDone   = 8 // guest writes its result code here to complete
)

// Mailbox is the host↔guest command channel the fuzzers use: the host
// deposits an input, rings the doorbell, and the guest executor signals
// completion through the done register — which also stops the machine so
// the host regains control immediately.
type Mailbox struct {
	machine  *Machine
	input    []byte
	pending  bool
	done     bool
	doneCode uint32
}

func (m *Mailbox) Name() string { return "mailbox" }
func (m *Mailbox) Contains(addr uint32) bool {
	return (addr >= MailboxBase && addr < MailboxBase+0x100) ||
		(addr >= MailboxData && addr < MailboxData+MailboxSize)
}

func (m *Mailbox) Read(addr, size uint32) uint32 {
	if addr >= MailboxData {
		off := addr - MailboxData
		var v uint32
		for i := uint32(0); i < size; i++ {
			if int(off+i) < len(m.input) {
				v |= uint32(m.input[off+i]) << (8 * i)
			}
		}
		return v
	}
	switch addr - MailboxBase {
	case mbRegStatus:
		if m.pending {
			return 1
		}
		return 0
	case mbRegLen:
		return uint32(len(m.input))
	}
	return 0
}

func (m *Mailbox) Write(addr, size, val uint32) {
	if addr-MailboxBase == mbRegDone {
		m.pending = false
		m.done = true
		m.doneCode = val
		if m.machine != nil {
			m.machine.RequestStop()
		}
	}
}

func (m *Mailbox) Reset() {
	m.input = nil
	m.pending = false
	m.done = false
	m.doneCode = 0
}

// Post deposits an input and rings the doorbell.
func (m *Mailbox) Post(input []byte) {
	if len(input) > MailboxSize {
		input = input[:MailboxSize]
	}
	m.input = append(m.input[:0], input...)
	m.pending = true
	m.done = false
}

// Done reports whether the guest completed the pending input, and the
// guest-reported result code.
func (m *Mailbox) Done() (bool, uint32) { return m.done, m.doneCode }

// TestDev register offsets.
const (
	tdRegExit  = 0 // write: stop the machine with this exit code
	tdRegEvent = 4 // write: append a test event value
)

// TestDev lets the guest stop the machine and emit test events.
type TestDev struct {
	machine *Machine
	Events  []uint32
}

func (t *TestDev) Name() string                  { return "testdev" }
func (t *TestDev) Contains(addr uint32) bool     { return addr >= TestDevBase && addr < TestDevBase+0x100 }
func (t *TestDev) Read(addr, size uint32) uint32 { return 0 }
func (t *TestDev) Write(addr, size, val uint32) {
	switch addr - TestDevBase {
	case tdRegExit:
		t.machine.Exit(int32(val))
	case tdRegEvent:
		t.Events = append(t.Events, val)
	}
}
func (t *TestDev) Reset() { t.Events = nil }

// SanDev register offsets. Natively-sanitized guests report violations by
// writing the fields then committing; the host collects NativeReport values.
const (
	sdRegAddr   = 0
	sdRegInfo   = 4
	sdRegPC     = 8
	sdRegKind   = 12
	sdRegCommit = 16
)

// NativeReport is one violation reported by an in-guest sanitizer runtime.
type NativeReport struct {
	Addr uint32
	Info uint32 // shadow code (KASAN) or racing PC (KCSAN)
	PC   uint32
	Kind uint32 // guest-defined report kind
}

// SanDev is the report channel for natively-sanitized firmware.
type SanDev struct {
	staged  NativeReport
	Reports []NativeReport
}

func (s *SanDev) Name() string                  { return "sandev" }
func (s *SanDev) Contains(addr uint32) bool     { return addr >= SanDevBase && addr < SanDevBase+0x100 }
func (s *SanDev) Read(addr, size uint32) uint32 { return 0 }
func (s *SanDev) Write(addr, size, val uint32) {
	switch addr - SanDevBase {
	case sdRegAddr:
		s.staged.Addr = val
	case sdRegInfo:
		s.staged.Info = val
	case sdRegPC:
		s.staged.PC = val
	case sdRegKind:
		s.staged.Kind = val
	case sdRegCommit:
		s.Reports = append(s.Reports, s.staged)
		s.staged = NativeReport{}
	}
}
func (s *SanDev) Reset() {
	s.staged = NativeReport{}
	s.Reports = nil
}
