package emu

import (
	"bytes"
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// fuzzImage wraps raw fuzzer bytes into a loadable image: word-aligned text
// at a base past the null guard, capped so a run stays cheap. Returns nil
// when the input cannot form even one instruction word.
func fuzzImage(code []byte) *kasm.Image {
	const maxText = 1024
	if len(code) > maxText {
		code = code[:maxText]
	}
	code = code[:len(code)&^3]
	if len(code) == 0 {
		return nil
	}
	return &kasm.Image{
		Name:  "fuzz",
		Arch:  isa.ArchARM32E,
		Base:  NullGuardSize,
		Entry: NullGuardSize,
		Text:  code,
	}
}

// encodeProgram assembles a builder program and returns its text bytes — the
// seed-corpus path from structured programs into the fuzzer's byte domain.
func encodeProgram(f *testing.F, build func(b *kasm.Builder)) []byte {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	build(b)
	img, err := b.Link("seed")
	if err != nil {
		f.Fatal(err)
	}
	return img.Text
}

// FuzzChainedExecution runs arbitrary short programs on the chained and the
// unchained engine in lockstep and requires identical outcomes: stop reason,
// fault, retired-instruction count, every register of every hart, and the
// final RAM contents. Random words decode into branch sprays, self-loops,
// overlapping blocks and mid-block jump targets — exactly the block-graph
// shapes where a bad successor computation or a stale chain link would
// diverge first.
func FuzzChainedExecution(f *testing.F) {
	f.Add(uint8(0), encodeProgram(f, func(b *kasm.Builder) {
		b.Func("_start") // counted self-loop: the canonical chain
		b.Li(rT0, 40)
		b.Label("loop")
		b.ADDI(rA0, rA0, 1)
		b.ADDI(rT0, rT0, -1)
		b.BNEZ(rT0, "loop")
		b.HCALL(isa.HcallExit)
	}))
	f.Add(uint8(3), encodeProgram(f, func(b *kasm.Builder) {
		b.Func("_start") // call/return: JAL chain in, JALR (unchained) out
		b.Li(rT0, 10)
		b.Label("loop")
		b.Call("leaf")
		b.ADDI(rT0, rT0, -1)
		b.BNEZ(rT0, "loop")
		b.HCALL(isa.HcallExit)
		b.Func("leaf")
		b.ADDI(rA0, rA0, 3)
		b.Ret()
	}))
	f.Add(uint8(7), encodeProgram(f, func(b *kasm.Builder) {
		b.Func("_start") // branch ladder: both exits of each block exercised
		b.Li(rT0, 6)
		b.Label("a")
		b.ADDI(rT0, rT0, -1)
		b.BEQZ(rT0, "done")
		b.ANDI(rT1, rT0, 1)
		b.BNEZ(rT1, "a")
		b.ADDI(rA0, rA0, 1)
		b.J("a")
		b.Label("done")
		b.HCALL(isa.HcallExit)
	}))
	f.Add(uint8(1), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, seed uint8, code []byte) {
		img := fuzzImage(code)
		if img == nil {
			t.Skip()
		}
		const budget = 4096
		run := func(noChain bool) *Machine {
			m, err := New(img, Config{
				RAMSize: 1 << 20, MaxHarts: 2, Seed: uint64(seed),
				NoChain: noChain, NoSharedTB: true,
			})
			if err != nil {
				t.Skip() // image rejected (e.g. doesn't fit): nothing to compare
			}
			m.Run(budget)
			return m
		}
		chained := run(false)
		plain := run(true)

		if chained.StopReason() != plain.StopReason() {
			t.Fatalf("stop diverged: chained %v, plain %v", chained.StopReason(), plain.StopReason())
		}
		if chained.ExitCode() != plain.ExitCode() {
			t.Fatalf("exit diverged: chained %d, plain %d", chained.ExitCode(), plain.ExitCode())
		}
		if chained.ICount() != plain.ICount() {
			t.Fatalf("icnt diverged: chained %d, plain %d", chained.ICount(), plain.ICount())
		}
		cf, pf := chained.Fault(), plain.Fault()
		if (cf == nil) != (pf == nil) {
			t.Fatalf("fault diverged: chained %+v, plain %+v", cf, pf)
		}
		if cf != nil && *cf != *pf {
			t.Fatalf("fault diverged: chained %+v, plain %+v", cf, pf)
		}
		for i := 0; i < chained.NumHarts(); i++ {
			ch, ph := chained.Hart(i), plain.Hart(i)
			if ch.PC != ph.PC || ch.Regs != ph.Regs || ch.Active != ph.Active || ch.Halted != ph.Halted {
				t.Fatalf("hart %d diverged:\nchained pc=%#x regs=%v\nplain   pc=%#x regs=%v",
					i, ch.PC, ch.Regs, ph.PC, ph.Regs)
			}
		}
		cram, err1 := chained.ReadBytes(NullGuardSize, chained.RAMSize()-NullGuardSize)
		pram, err2 := plain.ReadBytes(NullGuardSize, plain.RAMSize()-NullGuardSize)
		if err1 != nil || err2 != nil {
			t.Fatalf("ram read: %v / %v", err1, err2)
		}
		if !bytes.Equal(cram, pram) {
			t.Fatal("final RAM diverged between chained and unchained execution")
		}
		if plain.Counters().ChainHits != 0 {
			t.Fatalf("NoChain engine followed %d exit links", plain.Counters().ChainHits)
		}
	})
}
