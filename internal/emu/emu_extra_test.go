package emu

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// TestSelfModifyingCodeInvalidatesTBs: a guest that patches its own text
// must observe the new instruction after the write (page-generation
// invalidation).
func TestSelfModifyingCodeInvalidatesTBs(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	// Patch the target instruction from "li a0, 1" to "li a0, 2", run it
	// twice and sum the results: 1 + 2 = 3.
	b.Li(rA2, 0)
	b.Call("victim")
	b.ADD(rA2, rA2, rA0)
	// patch: victim's first word becomes addi a0, zero, 2
	b.La(rT0, "victim")
	b.La(rT1, "patch_word")
	b.LW(rT1, rT1, 0)
	b.SW(rT1, rT0, 0)
	b.Call("victim")
	b.ADD(rA0, rA2, rA0)
	exitWith(b)
	b.Func("victim")
	b.Li(rA0, 1)
	b.Ret()
	patched, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rA0, Rs1: rZ, Imm: 2}, isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}
	b.DataWords("patch_word", []uint32{patched})
	m := newMachine(t, mustLink(t, b, "smc"))
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop=%v fault=%v", r, m.Fault())
	}
	if m.ExitCode() != 3 {
		t.Errorf("exit = %d, want 3 (stale translation executed)", m.ExitCode())
	}
}

// TestNoTBCacheEquivalence: disabling the TB cache must not change results.
func TestNoTBCacheEquivalence(t *testing.T) {
	build := func() *kasm.Image {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
		b.GlobalRaw("acc", 4)
		b.Func("_start")
		b.Li(rT0, 50)
		b.La(rA1, "acc")
		b.Label("l")
		b.LW(rA0, rA1, 0)
		b.ADD(rA0, rA0, rT0)
		b.SW(rA0, rA1, 0)
		b.ADDI(rT0, rT0, -1)
		b.BNEZ(rT0, "l")
		b.LW(rA0, rA1, 0)
		exitWith(b)
		img, err := b.Link("cache-eq")
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	img := build()
	var results [2]int32
	var insts [2]uint64
	for i, noCache := range []bool{false, true} {
		m, err := New(img, Config{NoTBCache: noCache})
		if err != nil {
			t.Fatal(err)
		}
		m.Run(0)
		results[i] = m.ExitCode()
		insts[i] = m.ICount()
	}
	if results[0] != results[1] || insts[0] != insts[1] {
		t.Errorf("cache changed semantics: exit %d/%d, insts %d/%d",
			results[0], results[1], insts[0], insts[1])
	}
}

// TestDeterministicInterleaving: identical seeds give identical schedules.
func TestDeterministicInterleaving(t *testing.T) {
	build := func() *kasm.Image {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
		b.GlobalRaw("word", 4)
		b.GlobalRaw("stk", 1024)
		b.Func("_start")
		b.Li(rA0, 1)
		b.La(rA1, "other")
		b.La(rA2, "stk")
		b.ADDI(rA2, rA2, 1020)
		b.HCALL(isa.HcallSpawn)
		b.La(rT0, "word")
		b.Li(rT1, 400)
		b.Label("l")
		b.LW(rA0, rT0, 0)
		b.SLLI(rA0, rA0, 1)
		b.ADDI(rA0, rA0, 1)
		b.SW(rA0, rT0, 0)
		b.ADDI(rT1, rT1, -1)
		b.BNEZ(rT1, "l")
		b.LW(rA0, rT0, 0)
		exitWith(b)
		b.Func("other")
		b.La(rT0, "word")
		b.Label("o")
		b.LW(rT1, rT0, 0)
		b.XORI(rT1, rT1, 0x55)
		b.SW(rT1, rT0, 0)
		b.J("o")
		img, err := b.Link("det")
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	img := build()
	run := func(seed uint64) (int32, uint64) {
		m, _ := New(img, Config{Seed: seed, MaxHarts: 2})
		m.Run(10_000_000)
		return m.ExitCode(), m.ICount()
	}
	e1, i1 := run(99)
	e2, i2 := run(99)
	if e1 != e2 || i1 != i2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", e1, i1, e2, i2)
	}
	e3, _ := run(100)
	_ = e3 // different seeds may or may not differ; only determinism is asserted
}

// TestBigEndianDataAccess: the mips32e frontend stores data big-endian.
func TestBigEndianDataAccess(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchMIPS32E})
	b.GlobalRaw("w", 4)
	b.Func("_start")
	b.La(rA1, "w")
	b.Li(rT0, 0x11223344)
	b.SW(rT0, rA1, 0)
	b.LBU(rA0, rA1, 0) // big-endian: most significant byte first
	exitWith(b)
	img := mustLink(t, b, "be")
	m := newMachine(t, img)
	m.Run(0)
	if m.ExitCode() != 0x11 {
		t.Errorf("first byte = %#x, want 0x11 (big-endian)", m.ExitCode())
	}
	// And the host sees it consistently through ReadWord.
	w, _ := img.Lookup("w")
	v, _ := m.ReadWord(w.Addr)
	if v != 0x11223344 {
		t.Errorf("ReadWord = %#x", v)
	}
}

// TestPeek does not fault on bad addresses.
func TestPeek(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.HALT()
	m := newMachine(t, mustLink(t, b, "peek"))
	if _, ok := m.Peek(0x10, 4); ok {
		t.Error("peek into the null guard page succeeded")
	}
	if _, ok := m.Peek(0xFFFFFFFC, 4); ok {
		t.Error("peek past RAM succeeded")
	}
	if v, ok := m.Peek(m.Image().Base, 4); !ok || v == 0 {
		t.Errorf("peek at text = %#x, %v", v, ok)
	}
}

// TestHookAddRemove: removing a PC hook stops it firing.
func TestHookAddRemove(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 3)
	b.Label("loop")
	b.Call("fn")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	b.Li(rA0, 0)
	exitWith(b)
	b.Func("fn")
	b.Ret()
	img := mustLink(t, b, "hookrm")
	m := newMachine(t, img)
	fn, _ := img.Lookup("fn")
	hits := 0
	m.HookPC(fn.Addr, func(m *Machine, h *Hart) {
		hits++
		if hits == 2 {
			m.UnhookPC(fn.Addr)
		}
	})
	m.Run(0)
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (unhook ignored)", hits)
	}
}

// TestSpawnInvalidHart: out-of-range spawn requests are ignored.
func TestSpawnInvalidHart(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rA0, 99)
	b.La(rA1, "_start")
	b.HCALL(isa.HcallSpawn)
	b.Li(rA0, 7)
	exitWith(b)
	m := newMachine(t, mustLink(t, b, "badspawn"))
	if r := m.Run(0); r != StopExit || m.ExitCode() != 7 {
		t.Errorf("stop=%v exit=%d", r, m.ExitCode())
	}
}
