package emu

import (
	"fmt"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/obs"
)

// Config sizes a machine.
type Config struct {
	RAMSize  uint32 // defaults to 16 MiB
	MaxHarts int    // defaults to 2
	Quantum  int    // instructions per scheduling slice; defaults to 64
	Seed     uint64 // non-zero enables interleaving jitter
	// NoTBCache disables the translation-block cache (ablation): every
	// block is re-decoded on entry. It implies NoChain and NoSharedTB —
	// chain links would pin stale blocks, and there is no local cache to
	// share into.
	NoTBCache bool
	// NoChain disables TB exit chaining (ablation / differential testing):
	// every block transfer goes through the dispatcher.
	NoChain bool
	// NoSharedTB keeps this machine off the process-global translation
	// cache: it neither consumes nor publishes shared blocks.
	NoSharedTB bool
	// NoShadowStack disables shadow call-stack maintenance (ablation /
	// overhead measurement): JAL/JALR retire without recording call edges
	// and CallStack returns nothing. Translation is unaffected either way.
	NoShadowStack bool
	// Devices appends extra memory-mapped peripherals after the platform
	// set. Factories run at the end of New so a device can hold the machine
	// it serves (the rehosting bridge uses this to forward console bytes to
	// the UART and request stops). Extra devices never affect translation —
	// MMIO dispatch happens on the bus, not in the templates — so they are
	// invisible to the shared-cache signature.
	Devices []DeviceFactory
}

// DeviceFactory builds one extra peripheral for the machine being
// constructed. The returned device joins bus dispatch immediately and its
// Reset participates in Snapshot/Restore like the platform devices.
type DeviceFactory func(*Machine) Device

// DefaultRAMSize is 16 MiB.
const DefaultRAMSize = 16 << 20

// Hart is one hardware thread.
type Hart struct {
	ID       int
	Regs     [isa.NumRegs]uint32
	PC       uint32
	Scratch  [2]uint32 // per-hart scratch CSRs
	Active   bool
	Halted   bool
	resValid bool
	resAddr  uint32
	resumeAt uint64 // suspended until the global instruction counter reaches this

	// Shadow call stack (see stack.go): a circular buffer of call-site PCs
	// for the hart's live frames. Embedded by value so Snapshot/Restore,
	// which copy harts wholesale, carry it with no extra bookkeeping.
	css      [ShadowStackDepth]uint32
	cssStart uint16
	cssDepth uint16
}

// StopReason reports why Run returned.
type StopReason uint8

const (
	StopNone    StopReason = iota
	StopExit               // guest requested exit
	StopFault              // guest hardware fault (crash oracle)
	StopBudget             // instruction budget exhausted
	StopHalted             // every hart halted
	StopRequest            // host requested stop (e.g. sanitizer report)
)

func (s StopReason) String() string {
	switch s {
	case StopExit:
		return "exit"
	case StopFault:
		return "fault"
	case StopBudget:
		return "budget"
	case StopHalted:
		return "halted"
	case StopRequest:
		return "request"
	}
	return "running"
}

// MemEvent is passed to memory probes. Probes may set StallInsts to suspend
// the hart *before* the access executes — the mechanism KCSAN-style delayed
// watchpoints are built on. The machine reuses one event value across
// dispatches to keep the hot path allocation-free, so the pointer is valid
// only for the duration of the callback: copy the value to retain it.
type MemEvent struct {
	Hart   int
	PC     uint32
	Addr   uint32
	Size   uint32
	Write  bool
	Atomic bool

	StallInsts uint64 // out-parameter
}

// ProbeSet is the instrumentation the EMBSAN runtime registers. When a field
// is nil, translated code contains no callback for that event class at all —
// probe insertion happens inside the translation templates.
type ProbeSet struct {
	// Mem fires before every load, store and atomic (EMBSAN-D path).
	Mem func(*MemEvent)
	// Sanck fires for every SANCK trap instruction (EMBSAN-C path).
	Sanck func(*MemEvent)
}

// HookFn is invoked when execution reaches a hooked PC, before the
// instruction at that address runs.
type HookFn func(m *Machine, h *Hart)

// HyperFn handles one hypercall number.
type HyperFn func(m *Machine, h *Hart)

// Machine is a complete emulated system.
type Machine struct {
	cfg   Config
	arch  isa.Arch
	image *kasm.Image
	bus   bus

	harts []Hart
	cur   int
	icnt  uint64
	rng   uint64

	probes    ProbeSet
	pcHooks   map[uint32]HookFn
	hypers    map[int32]HyperFn
	tbs       map[uint32]*tb
	pageGen   []uint32
	globalGen uint32
	// chainGen stamps TB exit links; bumping it (Restore, any TB flush)
	// severs every installed chain at once without walking the cache.
	chainGen uint32

	// sharedTBs is this image's slot in the process-global translation
	// cache (nil with NoSharedTB); sharedSig keys the machine's
	// translation-relevant configuration within it and is recomputed lazily
	// after every flush.
	sharedTBs   *sharedImageCache
	sharedSig   uint64
	sharedSigOK bool

	// inlineShadow/inlineMem arm the in-template shadow fast path: for
	// access-site PCs in inlineMem, translated code tests the common
	// fully-addressable case against inlineShadow (the sanitizer's live
	// shadow array) and skips delegate dispatch when it cannot act.
	inlineShadow []byte
	inlineMem    map[uint32]bool

	// safeMem marks access PCs the static prover showed can never touch
	// invalid or poisoned memory; translation skips the Mem probe for them
	// (EMBSAN-D TB specialization). elided marks FENCE pads left where the
	// link-time pass dropped a SANCK, so avoided traps can be counted.
	safeMem map[uint32]bool
	elided  map[uint32]bool

	// racePrio carries the lockset analysis' per-site arming weights for
	// the concurrency sanitizer (0 = proven race-free, >1 = preferential).
	// Pure guidance data: translation is unaffected, the sanitizer runtime
	// reads it through RaceSitePriority on each sampled dispatch.
	racePrio map[uint32]uint8

	stop     StopReason
	exitCode int32
	fault    *Fault

	// ReadyReached is set once the firmware issues the ready-to-run
	// hypercall; ReadyHook (if set) fires at that moment.
	ReadyReached bool
	ReadyHook    func(m *Machine)

	// CoverageHook fires on every translation-block entry — the OS-agnostic
	// coverage mechanism the Tardis frontend relies on.
	CoverageHook func(pc uint32)

	// CmpHook fires on every failed equality branch (BEQ/BNE with unequal
	// operands), exposing both operand values — the comparison feedback
	// Redqueen-style mutators harvest magic constants from.
	CmpHook func(a, b uint32)

	// TraceHook, when set, fires before every retired instruction — the
	// debugging firehose behind `embsan -trace`. Expensive; leave nil in
	// measurement runs.
	TraceHook func(hart int, pc uint32, inst isa.Inst)

	UART    *UART
	Mailbox *Mailbox
	TestDev *TestDev
	SanDev  *SanDev

	pristine  []byte
	snapHarts []Hart
	snapReady bool
	snapICnt  uint64
	hasSnap   bool

	// Runtime accounting lives in named obs instruments (registered in the
	// machine's metrics registry); ctr caches the pointers for the hot
	// paths. trace/prof are the opt-in observability hooks: nil (the
	// default) means the interpreter loop pays one pointer compare and
	// nothing else.
	metrics *obs.Registry
	ctr     machineCounters
	trace   *obs.Ring
	prof    *obs.Profile

	// memEv is the scratch event handed to Mem/Sanck probes; reusing it
	// keeps sanitizer dispatch off the heap (see the MemEvent contract).
	memEv MemEvent

	// jmpCache chains indirect transfers (JALR exits, quantum resumption):
	// a direct-mapped PC-indexed table consulted before the dispatcher,
	// severed by the same chainGen bump as the exit links.
	jmpCache [jmpCacheSize]jmpEntry
}

// machineCounters caches the machine's registered instruments so hot paths
// bump a pointer instead of looking names up.
type machineCounters struct {
	tbHits, tbMisses, transInsts *obs.Counter
	restores, restorePages       *obs.Counter
	sanckTraps, sanckElided      *obs.Counter
	memProbes, memElided         *obs.Counter
	dispatches, chainHits        *obs.Counter
	inlineFast, inlineSlow       *obs.Counter
	sharedHits                   *obs.Counter
	devReads, devWrites          *obs.Counter
}

// Counters is a point-in-time snapshot of the machine's runtime accounting:
// translation-block cache behaviour, snapshot restores and sanitizer
// dispatches. The campaign scheduler diffs these to attribute work to its
// pool workers; the live values are named instruments in Metrics().
type Counters struct {
	TBHits     uint64 // translation blocks served from the cache
	TBMisses   uint64 // translation blocks decoded fresh
	TransInsts uint64 // instructions decoded while translating (translate-phase work)
	Restores   uint64 // snapshot restores performed
	// RestorePages counts dirty pages copied back by restores — the
	// snapshot-phase virtual work unit of the campaign phase breakdown.
	RestorePages uint64

	// Sanitizer dispatch accounting, split by instrumentation mode. The
	// *Elided counters tally dispatches that static safety proofs removed:
	// executed FENCE pads standing where a SANCK was dropped at link time
	// (EMBSAN-C), and proven accesses whose Mem probe the translator
	// skipped (EMBSAN-D). Elided counts only accumulate while the matching
	// probe is registered, so trap+elided is comparable across runs.
	SanckTraps  uint64 // SANCK instructions dispatched to the Sanck probe
	SanckElided uint64 // elision pads executed in lieu of a SANCK trap
	MemProbes   uint64 // accesses dispatched to the Mem probe
	MemElided   uint64 // proven accesses that skipped the Mem probe

	// Fast-path accounting. Dispatches counts dispatcher entries (tbFor
	// calls); ChainHits counts block transfers that followed a patched exit
	// link instead. InlineFast/InlineSlow split inline-armed dispatches by
	// whether the in-template shadow test settled them; SharedTBHits counts
	// blocks consumed from the process-global translation cache (schedule-
	// dependent across worker pools — diagnostic only).
	Dispatches   uint64
	ChainHits    uint64
	InlineFast   uint64
	InlineSlow   uint64
	SharedTBHits uint64

	// MMIO dispatch accounting: data accesses that reached a device (the
	// platform peripherals or any Config.Devices extra).
	DeviceReads  uint64
	DeviceWrites uint64
}

// Sub returns the field-wise difference c-o: the accounting accumulated
// between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		TBHits:       c.TBHits - o.TBHits,
		TBMisses:     c.TBMisses - o.TBMisses,
		TransInsts:   c.TransInsts - o.TransInsts,
		Restores:     c.Restores - o.Restores,
		RestorePages: c.RestorePages - o.RestorePages,
		SanckTraps:   c.SanckTraps - o.SanckTraps,
		SanckElided:  c.SanckElided - o.SanckElided,
		MemProbes:    c.MemProbes - o.MemProbes,
		MemElided:    c.MemElided - o.MemElided,
		Dispatches:   c.Dispatches - o.Dispatches,
		ChainHits:    c.ChainHits - o.ChainHits,
		InlineFast:   c.InlineFast - o.InlineFast,
		InlineSlow:   c.InlineSlow - o.InlineSlow,
		SharedTBHits: c.SharedTBHits - o.SharedTBHits,
		DeviceReads:  c.DeviceReads - o.DeviceReads,
		DeviceWrites: c.DeviceWrites - o.DeviceWrites,
	}
}

// New creates a machine and loads the firmware image.
func New(img *kasm.Image, cfg Config) (*Machine, error) {
	if cfg.RAMSize == 0 {
		cfg.RAMSize = DefaultRAMSize
	}
	if cfg.MaxHarts <= 0 {
		cfg.MaxHarts = 2
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.NoTBCache {
		cfg.NoChain = true
		cfg.NoSharedTB = true
	}
	if img.MemTop() > cfg.RAMSize {
		return nil, fmt.Errorf("emu: image needs %#x bytes of RAM, machine has %#x", img.MemTop(), cfg.RAMSize)
	}
	m := &Machine{
		cfg:     cfg,
		arch:    img.Arch,
		image:   img,
		pcHooks: make(map[uint32]HookFn),
		hypers:  make(map[int32]HyperFn),
		tbs:     make(map[uint32]*tb),
		rng:     cfg.Seed | 1,
		metrics: obs.NewRegistry(),
	}
	m.ctr = machineCounters{
		tbHits:       m.metrics.Counter("emu.tb.hits"),
		tbMisses:     m.metrics.Counter("emu.tb.misses"),
		transInsts:   m.metrics.Counter("emu.translate.insts"),
		restores:     m.metrics.Counter("emu.snapshot.restores"),
		restorePages: m.metrics.Counter("emu.snapshot.restore_pages"),
		sanckTraps:   m.metrics.Counter("emu.sanck.traps"),
		sanckElided:  m.metrics.Counter("emu.sanck.elided"),
		memProbes:    m.metrics.Counter("emu.mem.probes"),
		memElided:    m.metrics.Counter("emu.mem.elided"),
		dispatches:   m.metrics.Counter("emu.dispatch.entries"),
		chainHits:    m.metrics.Counter("emu.chain.hits"),
		inlineFast:   m.metrics.Counter("emu.inline.fast"),
		inlineSlow:   m.metrics.Counter("emu.inline.slow"),
		sharedHits:   m.metrics.Counter("emu.tbcache.shared_hits"),
		devReads:     m.metrics.Counter("emu.mmio.reads"),
		devWrites:    m.metrics.Counter("emu.mmio.writes"),
	}
	if !cfg.NoSharedTB {
		m.sharedTBs = sharedCacheFor(imageIDFor(img))
	}
	m.bus.ram = make([]byte, cfg.RAMSize)
	m.bus.devReads = m.ctr.devReads
	m.bus.devWrites = m.ctr.devWrites
	m.bus.order = img.Arch.ByteOrder()
	m.bus.dirty = make([]uint64, (cfg.RAMSize>>pageShift+63)/64)
	m.pageGen = make([]uint32, cfg.RAMSize>>pageShift)

	m.UART = &UART{}
	m.Mailbox = &Mailbox{machine: m}
	m.TestDev = &TestDev{machine: m}
	m.SanDev = &SanDev{}
	m.bus.devices = []Device{m.UART, m.Mailbox, m.TestDev, m.SanDev}
	for _, f := range cfg.Devices {
		if d := f(m); d != nil {
			m.bus.devices = append(m.bus.devices, d)
		}
	}

	copy(m.bus.ram[img.Base:], img.Text)
	copy(m.bus.ram[img.DataAddr:], img.Data)

	m.harts = make([]Hart, cfg.MaxHarts)
	for i := range m.harts {
		m.harts[i].ID = i
	}
	m.harts[0].PC = img.Entry
	m.harts[0].Active = true

	if len(img.Meta.Elisions) > 0 {
		m.elided = make(map[uint32]bool, len(img.Meta.Elisions))
		for _, e := range img.Meta.Elisions {
			m.elided[e.Site] = true
		}
	}

	m.installPlatformHypercalls()
	return m, nil
}

// SetSafeAccessPCs installs the set of access PCs the static prover showed
// are always in-bounds: translation blocks skip Mem-probe dispatch for
// them (the EMBSAN-D specialization). Passing an empty set reverts to full
// interception. All code is retranslated.
func (m *Machine) SetSafeAccessPCs(pcs []uint32) {
	if len(pcs) == 0 {
		m.safeMem = nil
	} else {
		m.safeMem = make(map[uint32]bool, len(pcs))
		for _, pc := range pcs {
			m.safeMem[pc] = true
		}
	}
	m.flushTBs()
}

// SetRaceSitePriorities installs the static race-triage priority map: for
// each sanitizer dispatch PC, the arming weight the concurrency sanitizer
// should use (0 = site proven always-protected or hart-local, never armed;
// above 1 = unprotected/mixed site, armed preferentially). Unlike the
// safe-site sets this is pure guidance data — no code is retranslated, and
// sites absent from the map keep the default weight of 1. Passing nil
// reverts to uniform sampling.
func (m *Machine) SetRaceSitePriorities(prio map[uint32]uint8) {
	if len(prio) == 0 {
		m.racePrio = nil
		return
	}
	m.racePrio = make(map[uint32]uint8, len(prio))
	for pc, w := range prio {
		m.racePrio[pc] = w
	}
}

// RaceSitePriority reports the static arming weight for a dispatch PC and
// whether the site appears in the installed priority map.
func (m *Machine) RaceSitePriority(pc uint32) (uint8, bool) {
	w, ok := m.racePrio[pc]
	return w, ok
}

// Seed returns the machine's current interleaving seed (as set by Config or
// the latest Reseed) — the campaign identity deterministic samplers mix in.
func (m *Machine) Seed() uint64 { return m.cfg.Seed }

// SetInlineShadow installs (or, with nil, removes) the shadow byte array the
// in-template fast path tests against. The caller — normally the sanitizer
// runtime — must pass its live backing array, not a copy: the template reads
// it on every armed dispatch and must observe poison changes immediately.
func (m *Machine) SetInlineShadow(shadow []byte) {
	m.inlineShadow = shadow
}

// SetInlineMemPCs arms the in-template shadow fast path for the given
// access-site PCs (nil or empty disarms all sites). All code is
// retranslated. The behavioural contract — an armed site whose access lies
// fully in addressable shadow must be indistinguishable from a delegated
// dispatch — is the caller's responsibility; san.Runtime.InstallInlineFastPath
// enforces it by refusing engine mixes that observe clean dispatches.
func (m *Machine) SetInlineMemPCs(pcs []uint32) {
	if len(pcs) == 0 {
		m.inlineMem = nil
	} else {
		m.inlineMem = make(map[uint32]bool, len(pcs))
		for _, pc := range pcs {
			m.inlineMem[pc] = true
		}
	}
	m.flushTBs()
}

// Image returns the loaded firmware image.
func (m *Machine) Image() *kasm.Image { return m.image }

// Arch returns the guest architecture.
func (m *Machine) Arch() isa.Arch { return m.arch }

// ICount returns the number of retired guest instructions.
func (m *Machine) ICount() uint64 { return m.icnt }

// RAMSize returns the machine's RAM size.
func (m *Machine) RAMSize() uint32 { return m.cfg.RAMSize }

// Counters returns a snapshot of the accumulated runtime accounting.
func (m *Machine) Counters() Counters {
	return Counters{
		TBHits:       m.ctr.tbHits.Value(),
		TBMisses:     m.ctr.tbMisses.Value(),
		TransInsts:   m.ctr.transInsts.Value(),
		Restores:     m.ctr.restores.Value(),
		RestorePages: m.ctr.restorePages.Value(),
		SanckTraps:   m.ctr.sanckTraps.Value(),
		SanckElided:  m.ctr.sanckElided.Value(),
		MemProbes:    m.ctr.memProbes.Value(),
		MemElided:    m.ctr.memElided.Value(),
		Dispatches:   m.ctr.dispatches.Value(),
		ChainHits:    m.ctr.chainHits.Value(),
		InlineFast:   m.ctr.inlineFast.Value(),
		InlineSlow:   m.ctr.inlineSlow.Value(),
		SharedTBHits: m.ctr.sharedHits.Value(),
		DeviceReads:  m.ctr.devReads.Value(),
		DeviceWrites: m.ctr.devWrites.Value(),
	}
}

// Metrics returns the machine's instrument registry (named counters backing
// the Counters snapshot).
func (m *Machine) Metrics() *obs.Registry { return m.metrics }

// SetTrace attaches (or, with nil, detaches) a virtual-time event ring. The
// machine emits TB enter/exit, sanitizer dispatch and snapshot/restore
// events into it; the sanitizer runtime shares the same ring for allocator,
// shadow and report events. The caller owns the ring's goroutine affinity.
func (m *Machine) SetTrace(r *obs.Ring) { m.trace = r }

// Trace returns the attached event ring (nil when tracing is off).
func (m *Machine) Trace() *obs.Ring { return m.trace }

// SetProfile attaches (or, with nil, detaches) a guest PC profiler that
// accumulates per-block instruction cost and per-site dispatch counts.
func (m *Machine) SetProfile(p *obs.Profile) { m.prof = p }

// Reseed re-seeds the interleaving-jitter RNG. A pooled machine is reused
// across campaigns via Restore + Reseed: after both, its observable
// behaviour is a pure function of the snapshot and the new seed, regardless
// of what ran on it before. Seed 0 disables jitter, as in Config.
func (m *Machine) Reseed(seed uint64) {
	m.cfg.Seed = seed
	m.rng = seed | 1
}

// Stop state accessors.
func (m *Machine) StopReason() StopReason { return m.stop }
func (m *Machine) ExitCode() int32        { return m.exitCode }
func (m *Machine) Fault() *Fault          { return m.fault }

// Exit stops the machine with the given exit code.
func (m *Machine) Exit(code int32) {
	m.stop = StopExit
	m.exitCode = code
}

// RequestStop stops the machine from a probe or hook.
func (m *Machine) RequestStop() {
	if m.stop == StopNone {
		m.stop = StopRequest
	}
}

// ClearStop resumes a machine stopped with StopBudget or StopRequest.
func (m *Machine) ClearStop() {
	if m.stop == StopBudget || m.stop == StopRequest {
		m.stop = StopNone
	}
}

// SetProbes installs the instrumentation probe set, retranslating all code.
func (m *Machine) SetProbes(p ProbeSet) {
	m.probes = p
	m.flushTBs()
}

// HookPC arranges for fn to run whenever any hart reaches pc.
func (m *Machine) HookPC(pc uint32, fn HookFn) {
	m.pcHooks[pc] = fn
	m.flushTBs()
}

// UnhookPC removes a PC hook.
func (m *Machine) UnhookPC(pc uint32) {
	delete(m.pcHooks, pc)
	m.flushTBs()
}

// HandleHypercall registers a handler for hypercall number n.
func (m *Machine) HandleHypercall(n int32, fn HyperFn) { m.hypers[n] = fn }

// MarkReady records the firmware as ready-to-run exactly as the ready
// hypercall would: foreign binaries have no hypercalls, so a rehosted
// device calls this when the guest first polls for input. Idempotent; the
// hook fires once.
func (m *Machine) MarkReady() {
	if !m.ReadyReached {
		m.ReadyReached = true
		if m.ReadyHook != nil {
			m.ReadyHook(m)
		}
	}
}

func (m *Machine) flushTBs() {
	m.globalGen++
	// Every cached block is now stale, so every installed exit link is too.
	m.chainGen++
	// The translation signature depends on what flushed (probes, hooks,
	// safe/inline sets); recompute it on the next shared-cache touch.
	m.sharedSigOK = false
}

// FlushTBs invalidates every cached translation block and severs all exit
// chains, returning the machine to a cold-translation state. Guest-visible
// behaviour is unchanged — only the translate/chain accounting moves.
// Campaign drivers that sample engine counters into determinism-bearing
// artifacts (the progress timeline) call it at campaign start so a pooled
// machine's translation and chaining counters evolve identically however
// many campaigns warmed it before.
func (m *Machine) FlushTBs() { m.flushTBs() }

// Hart returns hart i.
func (m *Machine) Hart(i int) *Hart { return &m.harts[i] }

// NumHarts returns the number of harts.
func (m *Machine) NumHarts() int { return len(m.harts) }

// CurrentHart returns the hart currently scheduled.
func (m *Machine) CurrentHart() *Hart { return &m.harts[m.cur] }

// SuspendHart stalls hart h for n instructions of global progress.
func (m *Machine) SuspendHart(h *Hart, n uint64) { h.resumeAt = m.icnt + n }

func (m *Machine) installPlatformHypercalls() {
	m.hypers[isa.HcallExit] = func(m *Machine, h *Hart) {
		m.Exit(int32(h.Regs[isa.RegA0]))
	}
	m.hypers[isa.HcallPutc] = func(m *Machine, h *Hart) {
		m.UART.Write(UARTBase, 1, h.Regs[isa.RegA0])
	}
	m.hypers[isa.HcallReady] = func(m *Machine, h *Hart) {
		m.MarkReady()
	}
	m.hypers[isa.HcallSpawn] = func(m *Machine, h *Hart) {
		id := int(h.Regs[isa.RegA0])
		if id <= 0 || id >= len(m.harts) {
			return
		}
		t := &m.harts[id]
		t.PC = h.Regs[isa.RegA1]
		t.Regs = [isa.NumRegs]uint32{}
		t.Regs[isa.RegSP] = h.Regs[isa.RegA2]
		t.Active = true
		t.Halted = false
		t.resumeAt = 0
		// A spawned hart starts a fresh call chain; frames recorded by a
		// previous occupant of the slot must not leak into its backtraces.
		t.resetCallStack()
	}
}

// ---- host memory access ----

// ReadBytes copies n guest bytes at addr (RAM only).
func (m *Machine) ReadBytes(addr, n uint32) ([]byte, error) {
	if !m.bus.inRAM(addr, n) {
		return nil, fmt.Errorf("emu: ReadBytes out of RAM: %#x+%d", addr, n)
	}
	out := make([]byte, n)
	copy(out, m.bus.ram[addr:])
	return out, nil
}

// WriteBytes stores host bytes into guest RAM.
func (m *Machine) WriteBytes(addr uint32, b []byte) error {
	if !m.bus.inRAM(addr, uint32(len(b))) {
		return fmt.Errorf("emu: WriteBytes out of RAM: %#x+%d", addr, len(b))
	}
	copy(m.bus.ram[addr:], b)
	m.bus.markDirty(addr, uint32(len(b)))
	m.invalidateRange(addr, uint32(len(b)))
	return nil
}

// Peek reads up to 4 bytes without fault side effects; ok is false when the
// address is not plain RAM.
func (m *Machine) Peek(addr, size uint32) (uint32, bool) {
	if !m.bus.inRAM(addr, size) {
		return 0, false
	}
	v, _ := m.bus.read(addr, size)
	return v, true
}

// ReadWord reads a data word with the guest byte order.
func (m *Machine) ReadWord(addr uint32) (uint32, error) {
	v, f := m.bus.read(addr, 4)
	if f != FaultNone {
		return 0, fmt.Errorf("emu: ReadWord fault at %#x: %s", addr, f)
	}
	return v, nil
}

// WriteWord writes a data word with the guest byte order.
func (m *Machine) WriteWord(addr, v uint32) error {
	if f := m.bus.write(addr, 4, v); f != FaultNone {
		return fmt.Errorf("emu: WriteWord fault at %#x: %s", addr, f)
	}
	return nil
}

// ---- snapshot / restore ----

// Snapshot captures the current machine state as the restore point. The
// dirty-page bitmap is reset so Restore only copies pages written since.
func (m *Machine) Snapshot() {
	if m.pristine == nil {
		m.pristine = make([]byte, len(m.bus.ram))
	}
	copy(m.pristine, m.bus.ram)
	m.snapHarts = append(m.snapHarts[:0], m.harts...)
	m.snapReady = m.ReadyReached
	m.snapICnt = m.icnt
	for i := range m.bus.dirty {
		m.bus.dirty[i] = 0
	}
	m.hasSnap = true
	if m.trace != nil {
		m.trace.Emit(obs.Event{ICnt: m.icnt, Kind: obs.EvSnapshot, Hart: uint8(m.cur)})
	}
}

// Restore rewinds RAM (dirty pages only), harts and devices to the snapshot.
func (m *Machine) Restore() {
	if !m.hasSnap {
		return
	}
	for wi, w := range m.bus.dirty {
		if w == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if w&(1<<b) == 0 {
				continue
			}
			p := uint32(wi*64 + b)
			off := p << pageShift
			copy(m.bus.ram[off:off+pageSize], m.pristine[off:off+pageSize])
			m.ctr.restorePages.Inc()
			// Reverting the page's bytes is a write like any other: if the
			// page holds text that was modified after the snapshot, every TB
			// translated from the modified bytes is now stale and must not
			// serve the restored code. invalidateRange bumps the page
			// generation (it early-returns for pure data pages), which kills
			// both the dispatcher's cached TBs and any exit links into them.
			m.invalidateRange(off, pageSize)
		}
		m.bus.dirty[wi] = 0
	}
	copy(m.harts, m.snapHarts)
	m.ReadyReached = m.snapReady
	// Rewinding the global instruction counter keeps icnt-derived state
	// (CSRCycles reads, suspend deadlines) identical on every restore, so a
	// pooled machine behaves the same however many campaigns preceded it.
	m.icnt = m.snapICnt
	// TB exit links deliberately survive the rewind: a chain transfer
	// re-validates its target's generations against the same staleness rules
	// the dispatcher applies, and any text the rewind reverted had its page
	// generation bumped above. Keeping healthy links is what makes replay
	// loops (Restore+Exec per input) run chained nearly end to end.
	m.ctr.restores.Inc()
	m.stop = StopNone
	m.fault = nil
	m.exitCode = 0
	m.cur = 0
	for _, d := range m.bus.devices {
		d.Reset()
	}
	// Emitted after the rewind so the event's virtual timestamp (and hence
	// the whole subsequent stream) is a pure function of the snapshot, not
	// of whatever ran on a pooled machine before.
	if m.trace != nil {
		m.trace.Emit(obs.Event{ICnt: m.icnt, Kind: obs.EvRestore})
	}
}

func (m *Machine) nextRand() uint32 {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	return uint32(m.rng)
}
