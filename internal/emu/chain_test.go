package emu

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// chainLoopImage builds the canonical chaining workload: a counted loop whose
// body block's taken exit points back at itself, so a chained run follows the
// self-link on every iteration while an unchained run re-enters the
// dispatcher each time.
func chainLoopImage(t *testing.T, iters int32) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, iters)
	b.Li(rA0, 0)
	b.Label("loop")
	b.ADDI(rA0, rA0, 1)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	exitWith(b)
	return mustLink(t, b, "chainloop")
}

// TestChainingEquivalenceAndCounters: the chained and the unchained engine
// retire the same instructions to the same exit state; only the dispatcher
// accounting moves. The chained run must settle almost every block transfer
// through exit links — the dispatcher is entered once per quantum at most.
func TestChainingEquivalenceAndCounters(t *testing.T) {
	img := chainLoopImage(t, 5000)

	fast, err := New(img, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := fast.Run(0); r != StopExit || fast.ExitCode() != 5000 {
		t.Fatalf("fast: stop=%v exit=%d", r, fast.ExitCode())
	}
	slow, err := New(img, Config{NoChain: true, NoSharedTB: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := slow.Run(0); r != StopExit || slow.ExitCode() != 5000 {
		t.Fatalf("slow: stop=%v exit=%d", r, slow.ExitCode())
	}
	if fast.ICount() != slow.ICount() {
		t.Errorf("icnt diverged: fast %d, slow %d", fast.ICount(), slow.ICount())
	}
	fc, sc := fast.Counters(), slow.Counters()
	if fc.ChainHits == 0 {
		t.Error("chained run followed no exit links")
	}
	if sc.ChainHits != 0 {
		t.Errorf("NoChain run followed %d exit links", sc.ChainHits)
	}
	// ~5000 block transfers: unchained, each is a dispatcher entry; chained,
	// only quantum boundaries (64 insts apart) re-enter the dispatcher.
	if fc.Dispatches*10 > sc.Dispatches {
		t.Errorf("chaining barely moved dispatch count: %d chained vs %d unchained",
			fc.Dispatches, sc.Dispatches)
	}
	if fc.ChainHits+fc.Dispatches != sc.Dispatches {
		t.Errorf("block transfers not conserved: %d chained + %d dispatched != %d unchained dispatches",
			fc.ChainHits, fc.Dispatches, sc.Dispatches)
	}
}

// TestChainSurvivesRestore: Restore keeps healthy exit links and jump-cache
// entries alive — a chain transfer re-validates its target's generations, so
// there is nothing a rewind of data pages can make stale (reverted text pages
// bump their generation inside Restore itself). The proof is two-sided:
// behaviour from the snapshot is bit-identical on every replay, and warm
// replays run fully chained — zero dispatcher entries beyond the first run's.
func TestChainSurvivesRestore(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Ready()
	b.Li(rT0, 2000)
	b.Li(rA0, 0)
	b.Label("loop")
	b.ADDI(rA0, rA0, 1)
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	exitWith(b)
	img := mustLink(t, b, "restorechain")
	m := newMachine(t, img)
	m.ReadyHook = func(m *Machine) { m.Snapshot() }

	deltas := make([]Counters, 3)
	var prev Counters
	for run := 0; run < 3; run++ {
		if run > 0 {
			m.Restore()
		}
		if r := m.Run(0); r != StopExit || m.ExitCode() != 2000 {
			t.Fatalf("run %d: stop=%v exit=%d", run, r, m.ExitCode())
		}
		cur := m.Counters()
		deltas[run] = cur.Sub(prev)
		prev = cur
	}
	if deltas[0].ChainHits == 0 {
		t.Fatal("no chaining installed on the first run")
	}
	// Warm replays must be in steady state: identical accounting run to run.
	if d1, d2 := deltas[1], deltas[2]; d1.ChainHits != d2.ChainHits || d1.Dispatches != d2.Dispatches {
		t.Errorf("warm replays diverged: run1 chain=%d dispatch=%d, run2 chain=%d dispatch=%d",
			d1.ChainHits, d1.Dispatches, d2.ChainHits, d2.Dispatches)
	}
	// Links installed on run 0 must carry over: a replay re-dispatches at
	// most through quantum boundaries already primed in the jump cache, so
	// it resolves strictly fewer transfers through the dispatcher map.
	if deltas[1].Dispatches >= deltas[0].Dispatches {
		t.Errorf("replay dispatched %d >= first run's %d — links did not survive Restore",
			deltas[1].Dispatches, deltas[0].Dispatches)
	}
	if deltas[1].ChainHits == 0 {
		t.Error("replay ran unchained")
	}
}

// TestHookOnChainedTB: installing a PC hook mid-run must take effect even
// when the hooked PC is inside a block reachable only through installed
// chain links; removing it must take effect the same way. A stale chained
// block without the hook flag slipping past the flush would miss the hook.
func TestHookOnChainedTB(t *testing.T) {
	img := chainLoopImage(t, 4000)
	m := newMachine(t, img)
	// Let the loop chain onto itself for a while.
	if r := m.Run(1000); r != StopBudget {
		t.Fatalf("stop=%v", r)
	}
	if m.Counters().ChainHits == 0 {
		t.Fatal("loop did not chain")
	}
	loopPC := m.CurrentHart().PC // mid-loop: the body is the live chained block
	hits := 0
	m.HookPC(loopPC, func(m *Machine, h *Hart) { hits++ })
	if r := m.Run(1000); r != StopBudget {
		t.Fatalf("stop=%v", r)
	}
	if hits == 0 {
		t.Error("hook on chained block never fired")
	}
	m.UnhookPC(loopPC)
	before := hits
	if r := m.Run(1000); r != StopBudget {
		t.Fatalf("stop=%v", r)
	}
	if hits != before {
		t.Errorf("hook fired %d more times after UnhookPC", hits-before)
	}
	if r := m.Run(0); r != StopExit || m.ExitCode() != 4000 {
		t.Errorf("stop=%v exit=%d, want exit 4000", r, m.ExitCode())
	}
}

// TestSelfModifyingChainTarget: patching text mid-run must invalidate both
// the cached block and every chain link into it. The loop calls victim every
// iteration, so the loop block's JAL exit holds a chain link to victim's
// block; victim's ADDI #1 is overwritten (host-side, as a firmware loader
// would) with an ADDI #2 word, and iterations after the patch add 2 — only
// observable if the stale chained translation dies.
func TestSelfModifyingChainTarget(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 1000)
	b.Li(rA0, 0)
	b.Label("loop")
	b.Call("victim")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	exitWith(b)
	b.Func("victim")
	b.ADDI(rA0, rA0, 1)
	b.Ret()
	img := mustLink(t, b, "selfmod")
	m := newMachine(t, img)

	victim, ok := img.Lookup("victim")
	if !ok {
		t.Fatal("victim not linked")
	}
	if r := m.Run(600); r != StopBudget { // mid-loop, chains installed
		t.Fatalf("stop=%v", r)
	}
	if m.Counters().ChainHits == 0 {
		t.Fatal("loop did not chain before the patch")
	}
	patched, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rA0, Rs1: rA0, Imm: 2}, isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}
	var word [4]byte
	img.Arch.ByteOrder().PutUint32(word[:], patched)
	if err := m.WriteBytes(victim.Addr, word[:]); err != nil {
		t.Fatal(err)
	}
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop=%v fault=%v", r, m.Fault())
	}
	got := m.ExitCode()
	// k pre-patch iterations contribute 1 each, the rest 2: exit in (1000, 2000].
	if got <= 1000 || got > 2000 {
		t.Errorf("exit=%d, want in (1000, 2000] — stale translation executed", got)
	}
}

// TestSelfModifyingFaultThroughChain: when the patched chain target no
// longer decodes, the fault must surface identically whether the transfer
// re-resolves through the dispatcher or through chainNext — same kind, same
// PC.
func TestSelfModifyingFaultThroughChain(t *testing.T) {
	run := func(noChain bool) (*Machine, *kasm.Image) {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
		b.Func("_start")
		b.Li(rT0, 1000)
		b.Label("loop")
		b.Call("victim")
		b.ADDI(rT0, rT0, -1)
		b.BNEZ(rT0, "loop")
		exitWith(b)
		b.Func("victim")
		b.ADDI(rA0, rA0, 1)
		b.Ret()
		img := mustLink(t, b, "selfmodfault")
		m, err := New(img, Config{NoChain: noChain, NoSharedTB: true})
		if err != nil {
			t.Fatal(err)
		}
		if r := m.Run(500); r != StopBudget {
			t.Fatalf("stop=%v", r)
		}
		victim, _ := img.Lookup("victim")
		if err := m.WriteBytes(victim.Addr, []byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
			t.Fatal(err)
		}
		if r := m.Run(0); r != StopFault {
			t.Fatalf("noChain=%v: stop=%v, want fault", noChain, r)
		}
		return m, img
	}
	chained, _ := run(false)
	plain, _ := run(true)
	cf, pf := chained.Fault(), plain.Fault()
	if cf.Kind != pf.Kind || cf.PC != pf.PC || cf.Addr != pf.Addr {
		t.Errorf("fault diverged: chained %+v, unchained %+v", cf, pf)
	}
	if chained.ICount() != plain.ICount() {
		t.Errorf("icnt at fault diverged: chained %d, unchained %d", chained.ICount(), plain.ICount())
	}
}

// padImage builds an image whose text spans several full pages (the shared
// translation cache only publishes blocks from pages lying entirely inside
// the text section), with an executed loop in the padded region.
func padImage(t *testing.T) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Li(rT0, 300)
	b.Li(rA0, 0)
	b.Label("loop")
	b.Call("work")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	exitWith(b)
	b.Func("work") // ~3 pages of straight-line text
	for i := 0; i < 3000; i++ {
		b.ADDI(rA0, rA0, 1)
	}
	b.Ret()
	return mustLink(t, b, "padded")
}

// TestSharedTranslationCache: a second machine on the same image content and
// configuration consumes the first machine's published translations instead
// of decoding its own, with identical observable behaviour; a NoSharedTB
// machine stays off the cache entirely.
func TestSharedTranslationCache(t *testing.T) {
	img := padImage(t)
	m1, err := New(img, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := m1.Run(0); r != StopExit {
		t.Fatalf("m1: stop=%v fault=%v", r, m1.Fault())
	}
	m2, err := New(img, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r := m2.Run(0); r != StopExit {
		t.Fatalf("m2: stop=%v", r)
	}
	if m2.ExitCode() != m1.ExitCode() || m2.ICount() != m1.ICount() {
		t.Errorf("shared-cache consumer diverged: exit %d/%d icnt %d/%d",
			m1.ExitCode(), m2.ExitCode(), m1.ICount(), m2.ICount())
	}
	c2 := m2.Counters()
	if c2.SharedTBHits == 0 {
		t.Error("second machine consumed nothing from the shared cache")
	}
	if c2.TransInsts != m1.Counters().TransInsts {
		t.Errorf("translate-phase accounting depends on cache luck: %d vs %d",
			c2.TransInsts, m1.Counters().TransInsts)
	}
	m3, err := New(img, Config{NoSharedTB: true})
	if err != nil {
		t.Fatal(err)
	}
	m3.Run(0)
	if h := m3.Counters().SharedTBHits; h != 0 {
		t.Errorf("NoSharedTB machine hit the shared cache %d times", h)
	}
}

// TestInlineFastPathCounters: an armed access site settles clean accesses in
// the template (InlineFast, no delegate call) and falls back to the delegate
// the moment its shadow granule is poisoned (InlineSlow). Dispatch
// accounting is identical either way.
func TestInlineFastPathCounters(t *testing.T) {
	build := func() *kasm.Image {
		b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
		b.GlobalRaw("buf", 8)
		b.Func("_start")
		b.La(rA1, "buf")
		b.Li(rT0, 200)
		b.Label("loop")
		b.SW(rT0, rA1, 0)
		b.ADDI(rT0, rT0, -1)
		b.BNEZ(rT0, "loop")
		b.Li(rA0, 0)
		exitWith(b)
		return mustLink(t, b, "inline")
	}

	// Reference run: find the store's dispatch site and delegate call count.
	img := build()
	buf, _ := img.Lookup("buf")
	m1 := newMachine(t, img)
	var sitePC uint32
	calls1 := 0
	m1.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		if ev.Addr == buf.Addr {
			sitePC = ev.PC
			calls1++
		}
	}})
	if r := m1.Run(0); r != StopExit {
		t.Fatalf("m1: stop=%v", r)
	}
	if sitePC == 0 || calls1 != 200 {
		t.Fatalf("reference run: site=%#x calls=%d", sitePC, calls1)
	}

	// Armed with a clean shadow: the template settles every dispatch.
	shadow := make([]byte, m1.RAMSize()/8)
	m2 := newMachine(t, img)
	calls2 := 0
	m2.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		if ev.Addr == buf.Addr {
			calls2++
		}
	}})
	m2.SetInlineShadow(shadow)
	m2.SetInlineMemPCs([]uint32{sitePC})
	if r := m2.Run(0); r != StopExit {
		t.Fatalf("m2: stop=%v", r)
	}
	c2 := m2.Counters()
	if calls2 != 0 || c2.InlineFast != 200 || c2.InlineSlow != 0 {
		t.Errorf("clean shadow: delegate calls=%d inlineFast=%d inlineSlow=%d, want 0/200/0",
			calls2, c2.InlineFast, c2.InlineSlow)
	}
	if c2.MemProbes != m1.Counters().MemProbes {
		t.Errorf("dispatch accounting diverged: %d vs %d probes", c2.MemProbes, m1.Counters().MemProbes)
	}

	// Poisoned granule: every armed dispatch must fall back to the delegate.
	m3 := newMachine(t, img)
	calls3 := 0
	m3.SetProbes(ProbeSet{Mem: func(ev *MemEvent) {
		if ev.Addr == buf.Addr {
			calls3++
		}
	}})
	poisoned := make([]byte, m1.RAMSize()/8)
	poisoned[buf.Addr/8] = 0xFA
	m3.SetInlineShadow(poisoned)
	m3.SetInlineMemPCs([]uint32{sitePC})
	if r := m3.Run(0); r != StopExit {
		t.Fatalf("m3: stop=%v", r)
	}
	c3 := m3.Counters()
	if calls3 != 200 || c3.InlineFast != 0 || c3.InlineSlow != 200 {
		t.Errorf("poisoned shadow: delegate calls=%d inlineFast=%d inlineSlow=%d, want 200/0/200",
			calls3, c3.InlineFast, c3.InlineSlow)
	}
}
