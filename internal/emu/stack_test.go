package emu

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// nestedCallImage builds _start -> f1 -> f2 with proper frames; hooking f2's
// entry observes the point where both call frames are live.
func nestedCallImage(t *testing.T) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("stack", 4096)
	b.Func("_start")
	b.La(rSP, "stack")
	b.ADDI(rSP, rSP, 2044)
	b.Call("f1")
	b.Li(rA0, 0)
	exitWith(b)
	b.Func("f1")
	b.Prologue(16)
	b.Call("f2")
	b.Epilogue(16)
	b.Func("f2")
	b.ADDI(rA0, rA0, 1)
	b.Ret()
	return mustLink(t, b, "nested")
}

func TestShadowStackCallChain(t *testing.T) {
	img := nestedCallImage(t)
	m := newMachine(t, img)
	probe, _ := img.Lookup("f2")
	var got []uint32
	m.HookPC(probe.Addr, func(m *Machine, h *Hart) {
		got = m.CallStack(h.ID)
	})
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v fault=%v", r, m.Fault())
	}
	if len(got) != 2 {
		t.Fatalf("frames inside f2 = %v, want 2", got)
	}
	// Innermost first: f1's call to f2, then _start's call to f1. Each frame
	// is the call-site PC, so frame+4 must land inside the caller.
	f1, _ := img.Lookup("f1")
	f2, _ := img.Lookup("f2")
	if !(got[0] > f1.Addr && got[0] < f2.Addr) {
		t.Errorf("frame 0 = %#x, want call site inside f1 [%#x,%#x)", got[0], f1.Addr, f2.Addr)
	}
	if !(got[1] >= img.Entry && got[1] < f1.Addr) {
		t.Errorf("frame 1 = %#x, want call site inside _start", got[1])
	}
	// After f2 and f1 return, the chain is unwound to the empty stack.
	if d := m.CallStackDepth(0); d != 0 {
		t.Errorf("depth at exit = %d, want 0", d)
	}
}

func TestShadowStackDisabled(t *testing.T) {
	img := nestedCallImage(t)
	m, err := New(img, Config{NoShadowStack: true})
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := img.Lookup("f2")
	m.HookPC(probe.Addr, func(m *Machine, h *Hart) {
		if d := m.CallStackDepth(h.ID); d != 0 {
			t.Errorf("NoShadowStack recorded %d frames", d)
		}
	})
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v", r)
	}
}

func TestShadowStackOverflowKeepsInnermost(t *testing.T) {
	// Recurse far past ShadowStackDepth; at the bottom the stack must hold
	// exactly ShadowStackDepth frames, all of them the recursive call site.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("stack", 1<<15)
	b.Func("_start")
	b.La(rSP, "stack")
	b.Li(rT0, 1<<14)
	b.ADD(rSP, rSP, rT0)
	b.Li(rA0, 200) // depth
	b.Call("rec")
	b.Li(rA0, 0)
	exitWith(b)
	b.Func("rec")
	b.BEQZ(rA0, "bottom")
	b.Prologue(16)
	b.ADDI(rA0, rA0, -1)
	b.Call("rec")
	b.Epilogue(16)
	b.Label("bottom")
	b.Ret()
	img := mustLink(t, b, "deep")
	m := newMachine(t, img)
	rec, _ := img.Lookup("rec")
	var atBottom []uint32
	// The recursion bottoms out when a0 reaches zero at rec's entry; capture
	// the stack there, with all 200 calls outstanding.
	m.HookPC(rec.Addr, func(m *Machine, h *Hart) {
		if atBottom == nil && h.Regs[rA0] == 0 {
			atBottom = m.CallStack(h.ID)
		}
	})
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v fault=%v", r, m.Fault())
	}
	if len(atBottom) != ShadowStackDepth {
		t.Fatalf("depth at bottom = %d, want %d", len(atBottom), ShadowStackDepth)
	}
	// Every retained frame is the same recursive call site inside rec.
	for i, pc := range atBottom {
		if pc != atBottom[0] || pc <= rec.Addr {
			t.Fatalf("frame %d = %#x, want uniform recursive site past %#x", i, pc, rec.Addr)
		}
	}
	// The overflow dropped outer frames, so the returns above the retained
	// window find no matching frame and leave the stack alone — but nothing
	// may underflow or crash, and execution completes normally.
}

func TestShadowStackSnapshotRestore(t *testing.T) {
	img := nestedCallImage(t)
	m := newMachine(t, img)
	probe, _ := img.Lookup("f2")
	var snapped []uint32
	m.HookPC(probe.Addr, func(m *Machine, h *Hart) {
		if snapped == nil {
			snapped = m.CallStack(h.ID)
			m.Snapshot()
		}
	})
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v", r)
	}
	if len(snapped) != 2 {
		t.Fatalf("frames at snapshot = %d, want 2", len(snapped))
	}
	// The run unwound the stack to empty; Restore must bring the two live
	// frames back exactly, however many rewinds happen.
	for round := 0; round < 3; round++ {
		m.Restore()
		got := m.CallStack(0)
		if len(got) != len(snapped) {
			t.Fatalf("round %d: depth after restore = %d, want %d", round, len(got), len(snapped))
		}
		for i := range got {
			if got[i] != snapped[i] {
				t.Fatalf("round %d: frame %d = %#x, want %#x", round, i, got[i], snapped[i])
			}
		}
		if r := m.Run(0); r != StopExit {
			t.Fatalf("round %d: stop = %v", round, r)
		}
	}
}

func TestShadowStackTailJumpTolerated(t *testing.T) {
	// An indirect jump that is neither a call nor a matching return (a jump
	// table through T1) must leave the recorded frames intact.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.GlobalRaw("stack", 4096)
	b.Func("_start")
	b.La(rSP, "stack")
	b.ADDI(rSP, rSP, 2044)
	b.Call("outer")
	b.Li(rA0, 0)
	exitWith(b)
	b.Func("outer")
	b.Prologue(16)
	b.La(rT1, "case0")
	b.JALR(isa.RegZero, rT1, 0) // dispatch, not a return
	b.Func("case0")
	b.ADDI(rA0, rA0, 1)
	b.Epilogue(16) // outer's frame is still open; return through it
	img := mustLink(t, b, "tailjmp")
	m := newMachine(t, img)
	inside, _ := img.Lookup("case0")
	depth := -1
	m.HookPC(inside.Addr, func(m *Machine, h *Hart) {
		depth = m.CallStackDepth(h.ID)
	})
	if r := m.Run(0); r != StopExit {
		t.Fatalf("stop = %v fault=%v", r, m.Fault())
	}
	if depth != 1 {
		t.Errorf("depth after jump-table dispatch = %d, want 1 (outer frame intact)", depth)
	}
	if d := m.CallStackDepth(0); d != 0 {
		t.Errorf("depth at exit = %d, want 0", d)
	}
}
