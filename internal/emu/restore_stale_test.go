package emu

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

func TestRestoreRevertsPatchedText(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Ready()
	b.Li(rT0, 100)
	b.Li(rA0, 0)
	b.Label("loop")
	b.Call("victim")
	b.ADDI(rT0, rT0, -1)
	b.BNEZ(rT0, "loop")
	exitWith(b)
	b.Func("victim")
	b.ADDI(rA0, rA0, 1)
	b.Ret()
	img := mustLink(t, b, "restorestale")
	m := newMachine(t, img)
	m.ReadyHook = func(m *Machine) { m.Snapshot() }
	if r := m.Run(0); r != StopExit || m.ExitCode() != 100 {
		t.Fatalf("original run: stop=%v exit=%d", r, m.ExitCode())
	}
	victim, _ := img.Lookup("victim")
	patched, err := isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: rA0, Rs1: rA0, Imm: 2}, isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}
	var word [4]byte
	img.Arch.ByteOrder().PutUint32(word[:], patched)
	m.Restore()
	if err := m.WriteBytes(victim.Addr, word[:]); err != nil {
		t.Fatal(err)
	}
	if r := m.Run(0); r != StopExit || m.ExitCode() != 200 {
		t.Fatalf("patched run: stop=%v exit=%d, want 200", r, m.ExitCode())
	}
	m.Restore() // reverts the patch: victim adds 1 again
	if r := m.Run(0); r != StopExit || m.ExitCode() != 100 {
		t.Errorf("restored run: stop=%v exit=%d, want 100 — stale translation of patched text survived Restore",
			r, m.ExitCode())
	}
}
