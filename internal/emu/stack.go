package emu

// Shadow call stack: a per-hart, bounded record of the guest's live call
// frames, maintained by the interpreter from retired JAL/JALR edges. It is
// the provenance substrate behind sanitizer backtraces — every report,
// allocator intercept and free can be attributed to a full guest call chain
// instead of the single live RA register.
//
// Design constraints, in order:
//
//   - Determinism. The stack is pure dynamic state derived from retired
//     instructions, so it is a function of the execution alone. It lives
//     inside Hart, which Snapshot/Restore copy wholesale, so a pooled
//     machine rewound between campaigns carries the bit-identical stack the
//     snapshot had — replays on any worker see the same frames.
//   - Zero translation impact. Maintenance happens in the JAL/JALR
//     interpreter cases only; no template changes, so the shared-cache
//     signature, TB chaining and the lockstep oracles are untouched, and
//     Config.NoShadowStack can flip it off without retranslating anything.
//   - Bounded cost. A call edge is one bounds check and one store; a
//     matching return is one compare and a decrement. Deep recursion wraps
//     the circular buffer, keeping the innermost ShadowStackDepth frames —
//     the ones a backtrace wants.
//
// Call/return discrimination follows the link-register convention the
// toolchain emits (kasm.Builder.Call / Ret): a JAL or JALR that writes RA
// is a call and pushes its own PC (the call site); any other JALR is a
// potential return and pops the frame whose return address matches the
// transfer target. Non-matching indirect jumps (jump tables, tail calls,
// context switches) unwind to the deepest matching frame or, absent one,
// leave the stack alone — every rule a pure function of the event, so two
// identical executions reconstruct identical stacks.

// ShadowStackDepth bounds the per-hart shadow call stack. Overflowing
// frames drop from the outermost end, so the innermost window survives.
const ShadowStackDepth = 64

// callPush records a call edge: pc is the call-site PC (the JAL/JALR that
// linked RA). When the buffer is full the outermost frame is overwritten.
func (h *Hart) callPush(pc uint32) {
	if int(h.cssDepth) < ShadowStackDepth {
		h.css[(h.cssStart+h.cssDepth)%ShadowStackDepth] = pc
		h.cssDepth++
		return
	}
	h.css[h.cssStart] = pc
	h.cssStart = (h.cssStart + 1) % ShadowStackDepth
}

// callRet unwinds the stack at a non-linking JALR. The frame whose return
// address (call site + 4) matches the transfer target is popped along with
// everything above it; an unmatched target (longjmp into unrecorded depth,
// jump table, task switch) leaves the stack untouched.
func (h *Hart) callRet(target uint32) {
	for d := h.cssDepth; d > 0; d-- {
		if h.css[(h.cssStart+d-1)%ShadowStackDepth]+4 == target {
			h.cssDepth = d - 1
			return
		}
	}
}

// resetCallStack empties the hart's shadow stack (hart spawn).
func (h *Hart) resetCallStack() {
	h.cssStart, h.cssDepth = 0, 0
}

// CallStackDepth returns the number of retained frames on hart's shadow
// call stack.
func (m *Machine) CallStackDepth(hart int) int {
	if hart < 0 || hart >= len(m.harts) {
		return 0
	}
	return int(m.harts[hart].cssDepth)
}

// CallStack returns hart's shadow call stack as a fresh slice of call-site
// PCs, innermost first: element 0 is the most recent unreturned call. Empty
// when the stack is empty or the shadow stack is disabled
// (Config.NoShadowStack). The virtual PC of the faulting access itself is
// not included — a full backtrace is the access PC followed by this slice.
func (m *Machine) CallStack(hart int) []uint32 {
	if hart < 0 || hart >= len(m.harts) {
		return nil
	}
	h := &m.harts[hart]
	out := make([]uint32, h.cssDepth)
	for i := range out {
		out[i] = h.css[(h.cssStart+h.cssDepth-1-uint16(i))%ShadowStackDepth]
	}
	return out
}
