package emu

import (
	"math"

	"embsan/internal/isa"
	"embsan/internal/obs"
)

// Translation-block engine. Guest code is decoded once per (pc, generation)
// into a block of steps; instrumentation callbacks are attached to the steps
// while translating — the direct analogue of EMBSAN modifying QEMU/TCG's
// translation templates. Code with no registered probes carries no probe
// flags and pays nothing at execution time.
//
// Three fast paths keep the dispatch loop off the hot path (docs/TRANSLATE.md):
//
//   - TB chaining: blocks record their static successor PCs at translation
//     time, and runHart patches executed exits with direct links to the
//     successor TB, so straight-line code transfers block-to-block without
//     re-entering the dispatcher. Indirect exits (JALR — function returns and
//     pointer calls) have no static successor to patch, so they go through a
//     direct-mapped jump cache keyed by target PC instead. Links and jump
//     cache entries are invalidated wholesale by bumping chainGen (any TB
//     flush) and individually by the target's gen/pgen going stale (page
//     invalidation — including text pages reverted by Restore). Healthy
//     links survive Restore, so replay loops run chained end to end.
//   - Inline shadow checks: access sites armed via SetInlineMemPCs test the
//     common fully-addressable case against the sanitizer shadow inside the
//     translated template and skip the delegate call entirely when it cannot
//     observably act. Dispatch accounting (counters, trace, profile) is
//     identical on both paths, so fast-path runs stay byte-comparable.
//   - Shared translation cache: machines running the same image content with
//     the same translation-relevant configuration publish and consume
//     immutable step slices through a process-global cache (shared.go), so a
//     worker pool translates each firmware once per process.

const maxTBLen = 64

type stepFlags uint8

const (
	stepMem stepFlags = 1 << iota
	stepSanck
	stepHook
	stepMemSafe // access proven safe: Mem probe skipped, counted as elided
	stepElided  // FENCE pad left by link-time SANCK elision
	stepInline  // access site armed with the in-template shadow fast path
)

type step struct {
	inst  isa.Inst
	pc    uint32
	flags stepFlags
}

type tb struct {
	pc    uint32
	steps []step
	gen   uint32 // globalGen at translation time
	pgen  uint32 // pageGen of the block's page at translation time

	// Static successor PCs, 0 = none. A conditional branch has both; a JAL
	// or a block that simply runs off its end has one; indirect or
	// exceptional exits (JALR, ECALL, EBREAK, HALT, YIELD) have neither.
	succTaken uint32
	succFall  uint32

	// Chain links to the successor TBs, valid only while the stamped
	// chainGen is current and the target's own generations still hold.
	linkTaken, linkFall *tb
	cgenTaken, cgenFall uint32
}

func (m *Machine) tbFor(pc uint32) (*tb, FaultKind) {
	m.ctr.dispatches.Inc()
	if !m.cfg.NoTBCache {
		if t := m.tbs[pc]; t != nil && t.gen == m.globalGen && t.pgen == m.pageGen[pc>>pageShift] {
			m.ctr.tbHits.Inc()
			return t, FaultNone
		}
		if m.sharedTBs != nil && m.pageGen[pc>>pageShift] == 0 && m.sharedPageOK(pc) {
			if e := m.sharedTBs.get(m.sharedSigNow(), pc); e != nil {
				m.ctr.sharedHits.Inc()
				// Count the acquired steps as translate-phase work exactly as
				// a local decode would, so the phase attribution is a pure
				// function of the executed code, not of cache luck (which is
				// schedule-dependent across worker counts).
				m.ctr.transInsts.Add(uint64(len(e.steps)))
				t := &tb{pc: pc, steps: e.steps, gen: m.globalGen,
					succTaken: e.succTaken, succFall: e.succFall}
				m.tbs[pc] = t
				return t, FaultNone
			}
		}
	}
	m.ctr.tbMisses.Inc()
	t, f := m.translate(pc)
	if f != FaultNone {
		return nil, f
	}
	if !m.cfg.NoTBCache {
		m.tbs[pc] = t
		if m.sharedTBs != nil && t.pgen == 0 && m.sharedPageOK(pc) {
			m.sharedTBs.put(m.sharedSigNow(), pc,
				&sharedTB{steps: t.steps, succTaken: t.succTaken, succFall: t.succFall})
		}
	}
	return t, FaultNone
}

// jmpCacheSize is the direct-mapped jump cache's entry count (power of two).
// 1024 entries cover the return sites of a deep call tree; collisions just
// cost a dispatcher trip, exactly like an unchained transfer.
const jmpCacheSize = 1024

type jmpEntry struct {
	t    *tb
	cgen uint32 // chainGen at install time, same severing rule as exit links
}

// lookupTB resolves a transfer that arrives without an exit link: indirect
// exits (JALR returns, function-pointer calls), quantum resumption, and the
// first entry into a block graph. With chaining enabled it consults the jump
// cache first — the indirect-exit analogue of the patched exit links, under
// the identical validity rule — and falls back to the dispatcher, installing
// the resolved block for next time. Counter semantics match edge chaining:
// every transfer is either a chain hit or a dispatcher entry, never both.
func (m *Machine) lookupTB(pc uint32) (*tb, FaultKind) {
	if m.cfg.NoChain || m.cfg.NoTBCache {
		return m.tbFor(pc)
	}
	e := &m.jmpCache[(pc>>2)&(jmpCacheSize-1)]
	if t := e.t; t != nil && t.pc == pc && e.cgen == m.chainGen &&
		t.gen == m.globalGen && t.pgen == m.pageGen[pc>>pageShift] {
		m.ctr.chainHits.Inc()
		return t, FaultNone
	}
	t, f := m.tbFor(pc)
	if f != FaultNone {
		return nil, f
	}
	e.t, e.cgen = t, m.chainGen
	return t, FaultNone
}

// chainNext resolves the successor TB for the exit edge the block just took:
// through the patched link when it is still valid, or through the dispatcher
// (installing the link for next time) otherwise.
func (m *Machine) chainNext(t *tb, h *Hart, taken bool) (*tb, FaultKind) {
	var nt *tb
	var cgen uint32
	if taken {
		nt, cgen = t.linkTaken, t.cgenTaken
	} else {
		nt, cgen = t.linkFall, t.cgenFall
	}
	if nt != nil && cgen == m.chainGen && nt.gen == m.globalGen && nt.pgen == m.pageGen[nt.pc>>pageShift] {
		m.ctr.chainHits.Inc()
		return nt, FaultNone
	}
	nt, f := m.tbFor(h.PC)
	if f != FaultNone {
		return nil, f
	}
	if taken {
		t.linkTaken, t.cgenTaken = nt, m.chainGen
	} else {
		t.linkFall, t.cgenFall = nt, m.chainGen
	}
	return nt, FaultNone
}

func (m *Machine) translate(pc uint32) (*tb, FaultKind) {
	if pc&3 != 0 || pc < NullGuardSize || uint64(pc)+4 > uint64(len(m.bus.ram)) {
		return nil, FaultBadFetch
	}
	t := &tb{pc: pc, gen: m.globalGen, pgen: m.pageGen[pc>>pageShift]}
	pageEnd := (pc &^ (pageSize - 1)) + pageSize
	for cur := pc; cur < pageEnd && len(t.steps) < maxTBLen; cur += 4 {
		word := m.arch.Word(m.bus.ram[cur:])
		inst, err := isa.Decode(word, m.arch)
		if err != nil {
			if cur == pc {
				return nil, FaultIllegalInst
			}
			break // let execution fault when (if) it reaches the bad word
		}
		var fl stepFlags
		switch isa.ClassOf(inst.Op) {
		case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
			if m.probes.Mem != nil {
				if m.safeMem != nil && m.safeMem[cur] {
					fl |= stepMemSafe
				} else {
					fl |= stepMem
					if m.inlineMem != nil && m.inlineMem[cur] {
						fl |= stepInline
					}
				}
			}
		case isa.ClassSanck:
			if m.probes.Sanck != nil {
				fl |= stepSanck
				if m.inlineMem != nil && m.inlineMem[cur] {
					fl |= stepInline
				}
			}
		default:
			if inst.Op == isa.OpFENCE && m.probes.Sanck != nil && m.elided != nil && m.elided[cur] {
				fl |= stepElided
			}
		}
		if _, hooked := m.pcHooks[cur]; hooked {
			fl |= stepHook
		}
		t.steps = append(t.steps, step{inst: inst, pc: cur, flags: fl})
		if isa.Terminates(inst.Op) {
			break
		}
	}
	if len(t.steps) == 0 {
		return nil, FaultBadFetch
	}
	last := t.steps[len(t.steps)-1]
	switch last.inst.Op {
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		t.succTaken = last.pc + uint32(last.inst.Imm)*4
		t.succFall = last.pc + 4
	case isa.OpJAL:
		t.succTaken = last.pc + uint32(last.inst.Imm)*4
	case isa.OpJALR, isa.OpECALL, isa.OpEBREAK, isa.OpHALT, isa.OpYIELD:
		// Indirect or exceptional exit: no static successor to chain to.
	default:
		// The block ran off its end (page boundary, length cap, or a word
		// that will fault if reached): execution falls through to last.pc+4.
		t.succFall = last.pc + 4
	}
	m.ctr.transInsts.Add(uint64(len(t.steps)))
	return t, FaultNone
}

// invalidateRange bumps the generation of code pages overlapping the range.
func (m *Machine) invalidateRange(addr, size uint32) {
	textStart, textEnd := m.image.Base, m.image.TextEnd()
	if addr >= textEnd || addr+size <= textStart {
		return
	}
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for p := first; p <= last; p++ {
		m.pageGen[p]++
	}
}

type tbExit uint8

const (
	tbDone tbExit = iota
	tbYield
	tbStall
	tbStop
	tbHalt
)

// Run executes until the machine stops or the budget (0 = unlimited) of
// retired instructions is consumed. It returns the stop reason; a budget
// stop leaves the machine resumable by calling Run again.
func (m *Machine) Run(budget uint64) StopReason {
	if m.stop == StopBudget || m.stop == StopRequest {
		m.stop = StopNone
	}
	target := uint64(math.MaxUint64)
	if budget > 0 {
		target = m.icnt + budget
	}
	for m.stop == StopNone {
		h := m.pickHart()
		if h == nil {
			// Nothing runnable now: either everything halted, or every
			// active hart is suspended — fast-forward time to the earliest
			// resume point.
			earliest := uint64(math.MaxUint64)
			for i := range m.harts {
				hh := &m.harts[i]
				if hh.Active && !hh.Halted && hh.resumeAt > m.icnt {
					if hh.resumeAt < earliest {
						earliest = hh.resumeAt
					}
				}
			}
			if earliest == math.MaxUint64 {
				m.stop = StopHalted
				break
			}
			m.icnt = earliest
			continue
		}
		quantum := uint64(m.cfg.Quantum)
		if m.cfg.Seed != 0 {
			quantum = quantum/2 + uint64(m.nextRand())%quantum
		}
		m.runHart(h, quantum, target)
		if m.stop == StopNone && m.icnt >= target {
			m.stop = StopBudget
		}
	}
	return m.stop
}

func (m *Machine) pickHart() *Hart {
	n := len(m.harts)
	for i := 1; i <= n; i++ {
		idx := (m.cur + i) % n
		h := &m.harts[idx]
		if h.Active && !h.Halted && h.resumeAt <= m.icnt {
			m.cur = idx
			return h
		}
	}
	return nil
}

func (m *Machine) runHart(h *Hart, quantum, target uint64) {
	end := m.icnt + quantum
	if end > target {
		end = target
	}
	// t carries the block resolved by the previous iteration's chain link;
	// nil sends the transfer through the dispatcher. Per-block work other
	// than the lookup — coverage, trace events, profiling — runs identically
	// on both paths, which is what keeps traces byte-identical with chaining
	// on or off.
	var t *tb
	for m.stop == StopNone && m.icnt < end {
		if t == nil {
			var f FaultKind
			t, f = m.lookupTB(h.PC)
			if f != FaultNone {
				m.raiseFault(f, h, h.PC, h.PC)
				return
			}
		}
		if m.CoverageHook != nil {
			m.CoverageHook(h.PC)
		}
		enterPC := h.PC
		start := m.icnt
		if m.trace != nil {
			m.trace.Emit(obs.Event{ICnt: start, PC: enterPC, Kind: obs.EvTBEnter, Hart: uint8(h.ID)})
		}
		ex := m.execTB(h, t, end)
		if m.prof != nil {
			m.prof.AddInsts(enterPC, m.icnt-start)
		}
		if m.trace != nil {
			m.trace.Emit(obs.Event{ICnt: m.icnt, PC: enterPC, Arg: uint32(ex), Kind: obs.EvTBExit, Hart: uint8(h.ID)})
		}
		switch ex {
		case tbYield, tbStall, tbStop, tbHalt:
			return
		}
		cur := t
		t = nil
		// Follow a chain link only for a completed block exit that will
		// actually execute next (same guard as the loop head): a budget stop
		// leaves h.PC mid-block, where a coincidental match with a static
		// successor must not bypass the dispatcher.
		if !m.cfg.NoChain && m.stop == StopNone && m.icnt < end {
			var f FaultKind
			if cur.succTaken != 0 && h.PC == cur.succTaken {
				t, f = m.chainNext(cur, h, true)
			} else if cur.succFall != 0 && h.PC == cur.succFall {
				t, f = m.chainNext(cur, h, false)
			}
			if f != FaultNone {
				m.raiseFault(f, h, h.PC, h.PC)
				return
			}
		}
	}
}

func (m *Machine) raiseFault(kind FaultKind, h *Hart, pc, addr uint32) {
	m.fault = &Fault{Kind: kind, Hart: h.ID, PC: pc, Addr: addr}
	m.stop = StopFault
}

func setReg(h *Hart, rd uint8, v uint32) {
	if rd != 0 {
		h.Regs[rd] = v
	}
}

// execTB runs the steps of t on hart h until the block ends, the
// per-quantum instruction limit is hit, or something exceptional happens.
func (m *Machine) execTB(h *Hart, t *tb, end uint64) tbExit {
	for _, s := range t.steps {
		if m.icnt >= end {
			h.PC = s.pc
			return tbDone
		}
		if s.flags&stepHook != 0 {
			m.pcHooks[s.pc](m, h)
			if m.stop != StopNone {
				h.PC = s.pc
				return tbStop
			}
		}
		if m.TraceHook != nil {
			m.TraceHook(h.ID, s.pc, s.inst)
		}
		in := s.inst
		r := &h.Regs
		m.icnt++
		switch in.Op {
		// ---- ALU reg-reg ----
		case isa.OpADD:
			setReg(h, in.Rd, r[in.Rs1]+r[in.Rs2])
		case isa.OpSUB:
			setReg(h, in.Rd, r[in.Rs1]-r[in.Rs2])
		case isa.OpAND:
			setReg(h, in.Rd, r[in.Rs1]&r[in.Rs2])
		case isa.OpOR:
			setReg(h, in.Rd, r[in.Rs1]|r[in.Rs2])
		case isa.OpXOR:
			setReg(h, in.Rd, r[in.Rs1]^r[in.Rs2])
		case isa.OpSLL:
			setReg(h, in.Rd, r[in.Rs1]<<(r[in.Rs2]&31))
		case isa.OpSRL:
			setReg(h, in.Rd, r[in.Rs1]>>(r[in.Rs2]&31))
		case isa.OpSRA:
			setReg(h, in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)))
		case isa.OpMUL:
			setReg(h, in.Rd, r[in.Rs1]*r[in.Rs2])
		case isa.OpMULHU:
			setReg(h, in.Rd, uint32((uint64(r[in.Rs1])*uint64(r[in.Rs2]))>>32))
		case isa.OpDIV:
			a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
			if b == 0 {
				setReg(h, in.Rd, 0xFFFFFFFF)
			} else if a == math.MinInt32 && b == -1 {
				setReg(h, in.Rd, uint32(a))
			} else {
				setReg(h, in.Rd, uint32(a/b))
			}
		case isa.OpDIVU:
			if r[in.Rs2] == 0 {
				setReg(h, in.Rd, 0xFFFFFFFF)
			} else {
				setReg(h, in.Rd, r[in.Rs1]/r[in.Rs2])
			}
		case isa.OpREM:
			a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
			if b == 0 {
				setReg(h, in.Rd, uint32(a))
			} else if a == math.MinInt32 && b == -1 {
				setReg(h, in.Rd, 0)
			} else {
				setReg(h, in.Rd, uint32(a%b))
			}
		case isa.OpREMU:
			if r[in.Rs2] == 0 {
				setReg(h, in.Rd, r[in.Rs1])
			} else {
				setReg(h, in.Rd, r[in.Rs1]%r[in.Rs2])
			}
		case isa.OpSLT:
			setReg(h, in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])))
		case isa.OpSLTU:
			setReg(h, in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))

		// ---- ALU reg-imm ----
		case isa.OpADDI:
			setReg(h, in.Rd, r[in.Rs1]+uint32(in.Imm))
		case isa.OpANDI:
			setReg(h, in.Rd, r[in.Rs1]&uint32(in.Imm))
		case isa.OpORI:
			setReg(h, in.Rd, r[in.Rs1]|uint32(in.Imm))
		case isa.OpXORI:
			setReg(h, in.Rd, r[in.Rs1]^uint32(in.Imm))
		case isa.OpSLLI:
			setReg(h, in.Rd, r[in.Rs1]<<(uint32(in.Imm)&31))
		case isa.OpSRLI:
			setReg(h, in.Rd, r[in.Rs1]>>(uint32(in.Imm)&31))
		case isa.OpSRAI:
			setReg(h, in.Rd, uint32(int32(r[in.Rs1])>>(uint32(in.Imm)&31)))
		case isa.OpSLTI:
			setReg(h, in.Rd, b2u(int32(r[in.Rs1]) < in.Imm))
		case isa.OpSLTIU:
			setReg(h, in.Rd, b2u(r[in.Rs1] < uint32(in.Imm)))
		case isa.OpLUI:
			setReg(h, in.Rd, uint32(in.Imm)<<12)
		case isa.OpAUIPC:
			setReg(h, in.Rd, s.pc+uint32(in.Imm)<<12)

		// ---- loads ----
		case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLRW:
			addr := r[in.Rs1] + uint32(in.Imm)
			size := isa.AccessSize(in.Op)
			if s.flags&stepMem != 0 {
				if ex := m.fireMem(h, s.pc, addr, size, false, in.Op == isa.OpLRW, s.flags&stepInline != 0); ex != tbDone {
					return ex
				}
			} else if s.flags&stepMemSafe != 0 {
				m.ctr.memElided.Inc()
			}
			v, f := m.bus.read(addr, size)
			if f != FaultNone {
				m.raiseFault(f, h, s.pc, addr)
				return tbStop
			}
			switch in.Op {
			case isa.OpLB:
				v = uint32(int32(int8(v)))
			case isa.OpLH:
				v = uint32(int32(int16(v)))
			}
			if in.Op == isa.OpLRW {
				h.resValid, h.resAddr = true, addr
			}
			setReg(h, in.Rd, v)

		// ---- stores ----
		case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSCW:
			addr := r[in.Rs1] + uint32(in.Imm)
			if in.Op == isa.OpSCW {
				addr = r[in.Rs1]
				if !h.resValid || h.resAddr != addr {
					h.resValid = false
					setReg(h, in.Rd, 1)
					break
				}
			}
			size := isa.AccessSize(in.Op)
			if s.flags&stepMem != 0 {
				if ex := m.fireMem(h, s.pc, addr, size, true, in.Op == isa.OpSCW, s.flags&stepInline != 0); ex != tbDone {
					return ex
				}
			} else if s.flags&stepMemSafe != 0 {
				m.ctr.memElided.Inc()
			}
			if f := m.bus.write(addr, size, r[in.Rs2]); f != FaultNone {
				m.raiseFault(f, h, s.pc, addr)
				return tbStop
			}
			m.clearReservations(addr, h)
			m.invalidateRange(addr, size)
			if in.Op == isa.OpSCW {
				h.resValid = false
				setReg(h, in.Rd, 0)
			}

		// ---- atomics ----
		case isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW:
			addr := r[in.Rs1]
			if s.flags&stepMem != 0 {
				if ex := m.fireMem(h, s.pc, addr, 4, true, true, s.flags&stepInline != 0); ex != tbDone {
					return ex
				}
			} else if s.flags&stepMemSafe != 0 {
				m.ctr.memElided.Inc()
			}
			old, f := m.bus.read(addr, 4)
			if f != FaultNone {
				m.raiseFault(f, h, s.pc, addr)
				return tbStop
			}
			var nv uint32
			switch in.Op {
			case isa.OpAMOADDW:
				nv = old + r[in.Rs2]
			case isa.OpAMOSWAPW:
				nv = r[in.Rs2]
			case isa.OpAMOORW:
				nv = old | r[in.Rs2]
			case isa.OpAMOANDW:
				nv = old & r[in.Rs2]
			}
			if f := m.bus.write(addr, 4, nv); f != FaultNone {
				m.raiseFault(f, h, s.pc, addr)
				return tbStop
			}
			m.clearReservations(addr, h)
			setReg(h, in.Rd, old)

		// ---- branches ----
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
			var take bool
			a, b := r[in.Rs1], r[in.Rs2]
			if m.CmpHook != nil && a != b && (in.Op == isa.OpBEQ || in.Op == isa.OpBNE) {
				m.CmpHook(a, b)
			}
			switch in.Op {
			case isa.OpBEQ:
				take = a == b
			case isa.OpBNE:
				take = a != b
			case isa.OpBLT:
				take = int32(a) < int32(b)
			case isa.OpBGE:
				take = int32(a) >= int32(b)
			case isa.OpBLTU:
				take = a < b
			case isa.OpBGEU:
				take = a >= b
			}
			if take {
				h.PC = s.pc + uint32(in.Imm)*4
			} else {
				h.PC = s.pc + 4
			}
			return tbDone

		// ---- jumps ----
		case isa.OpJAL:
			if in.Rd == isa.RegRA && !m.cfg.NoShadowStack {
				h.callPush(s.pc)
			}
			setReg(h, in.Rd, s.pc+4)
			h.PC = s.pc + uint32(in.Imm)*4
			return tbDone
		case isa.OpJALR:
			target := (r[in.Rs1] + uint32(in.Imm)) &^ 1
			if !m.cfg.NoShadowStack {
				if in.Rd == isa.RegRA {
					h.callPush(s.pc)
				} else {
					h.callRet(target)
				}
			}
			setReg(h, in.Rd, s.pc+4)
			h.PC = target
			return tbDone

		// ---- system ----
		case isa.OpHCALL:
			if fn, ok := m.hypers[in.Imm]; ok {
				h.PC = s.pc // give handlers an accurate PC
				fn(m, h)
				if m.stop != StopNone {
					h.PC = s.pc + 4
					return tbStop
				}
			}
		case isa.OpECALL:
			m.raiseFault(FaultIllegalInst, h, s.pc, s.pc)
			return tbStop
		case isa.OpEBREAK:
			m.raiseFault(FaultBreakpoint, h, s.pc, s.pc)
			return tbStop
		case isa.OpHALT:
			h.Halted = true
			h.PC = s.pc
			return tbHalt
		case isa.OpYIELD:
			h.PC = s.pc + 4
			return tbYield
		case isa.OpFENCE:
			// ordering no-op; an elision pad counts the trap it replaced
			if s.flags&stepElided != 0 {
				m.ctr.sanckElided.Inc()
			}
		case isa.OpCSRR:
			var v uint32
			switch in.Imm {
			case isa.CSRHartID:
				v = uint32(h.ID)
			case isa.CSRCycles:
				v = uint32(m.icnt)
			case isa.CSRNHarts:
				v = uint32(len(m.harts))
			case isa.CSRRand:
				v = m.nextRand()
			case isa.CSRScratch0:
				v = h.Scratch[0]
			case isa.CSRScratch1:
				v = h.Scratch[1]
			}
			setReg(h, in.Rd, v)
		case isa.OpCSRW:
			switch in.Imm {
			case isa.CSRScratch0:
				h.Scratch[0] = r[in.Rs1]
			case isa.CSRScratch1:
				h.Scratch[1] = r[in.Rs1]
			}

		case isa.OpSANCK:
			if s.flags&stepSanck != 0 {
				m.ctr.sanckTraps.Inc()
				addr := r[in.Rs1] + uint32(in.Imm)
				size, write, atomic := isa.SanckDecode(in.Rd)
				if m.trace != nil {
					m.trace.Emit(obs.Event{ICnt: m.icnt, PC: s.pc, Addr: addr,
						Arg: obs.PackAccess(uint32(size), write, atomic), Kind: obs.EvSanck, Hart: uint8(h.ID)})
				}
				if m.prof != nil {
					m.prof.AddDispatch(s.pc)
				}
				if s.flags&stepInline != 0 {
					if m.inlineClean(addr, size) {
						m.ctr.inlineFast.Inc()
						break
					}
					m.ctr.inlineSlow.Inc()
				}
				m.memEv = MemEvent{Hart: h.ID, PC: s.pc, Addr: addr, Size: size, Write: write, Atomic: atomic}
				m.probes.Sanck(&m.memEv)
				if m.memEv.StallInsts > 0 {
					h.PC = s.pc
					h.resumeAt = m.icnt + m.memEv.StallInsts
					return tbStall
				}
				if m.stop != StopNone {
					h.PC = s.pc + 4
					return tbStop
				}
			}

		default:
			m.raiseFault(FaultIllegalInst, h, s.pc, s.pc)
			return tbStop
		}
	}
	h.PC = t.steps[len(t.steps)-1].pc + 4
	return tbDone
}

// fireMem invokes the memory probe and translates its outcome. It returns
// tbDone when execution should proceed with the access. An inline-armed site
// performs the full dispatch accounting, then settles the common clean case
// against the shadow in place and skips only the delegate call itself.
func (m *Machine) fireMem(h *Hart, pc, addr, size uint32, write, atomic, inline bool) tbExit {
	m.ctr.memProbes.Inc()
	if m.trace != nil {
		m.trace.Emit(obs.Event{ICnt: m.icnt, PC: pc, Addr: addr,
			Arg: obs.PackAccess(size, write, atomic), Kind: obs.EvMemProbe, Hart: uint8(h.ID)})
	}
	if m.prof != nil {
		m.prof.AddDispatch(pc)
	}
	if inline {
		if m.inlineClean(addr, size) {
			m.ctr.inlineFast.Inc()
			return tbDone
		}
		m.ctr.inlineSlow.Inc()
	}
	m.memEv = MemEvent{Hart: h.ID, PC: pc, Addr: addr, Size: size, Write: write, Atomic: atomic}
	m.probes.Mem(&m.memEv)
	if m.memEv.StallInsts > 0 {
		h.PC = pc
		h.resumeAt = m.icnt + m.memEv.StallInsts
		// Undo the retired-instruction count for the access we did not run.
		m.icnt--
		return tbStall
	}
	if m.stop != StopNone {
		h.PC = pc
		return tbStop
	}
	return tbDone
}

// inlineClean is the in-template shadow test: true only when the access
// provably needs no sanitizer attention — at or above the null guard, fully
// covered by the shadow, and with both boundary granules completely
// addressable (shadow byte 0). Accesses are at most 4 bytes, so they span at
// most two 8-byte granules. Partially-valid granules (codes 1..7), poison,
// MMIO and out-of-shadow addresses all fall through to the delegate; a nil
// inline shadow makes the bounds test fail, so an armed site without an
// installed shadow degrades to the plain dispatch path.
func (m *Machine) inlineClean(addr, size uint32) bool {
	sh := m.inlineShadow
	last := (addr + size - 1) >> 3
	return addr >= NullGuardSize && last < uint32(len(sh)) && sh[addr>>3]|sh[last] == 0
}

func (m *Machine) clearReservations(addr uint32, except *Hart) {
	for i := range m.harts {
		hh := &m.harts[i]
		if hh != except && hh.resValid && hh.resAddr == addr {
			hh.resValid = false
		}
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
