// Package emu is the full-system emulator EMBSAN attaches to. It models the
// role QEMU/TCG plays in the paper: guest code is decoded into translation
// blocks, instrumentation probes are inserted into the translation templates
// exactly where a registered probe set asks for them, and hypercalls give
// compile-time-instrumented firmware a direct trap into the host.
package emu

import (
	"encoding/binary"
	"fmt"

	"embsan/internal/obs"
)

// Physical memory map. RAM occupies [0, RAMSize); the first page is never
// mapped, giving a NULL guard page; devices live high in the address space.
const (
	NullGuardSize = 0x1000

	MMIOBase    = 0xF000_0000
	UARTBase    = 0xF000_0000
	MailboxBase = 0xF000_2000
	MailboxData = 0xF000_3000
	MailboxSize = 0x1000
	TestDevBase = 0xF000_4000
	SanDevBase  = 0xF000_5000

	pageShift = 12
	pageSize  = 1 << pageShift
)

// FaultKind classifies a bus fault.
type FaultKind uint8

const (
	FaultNone FaultKind = iota
	FaultNullDeref
	FaultUnmapped
	FaultBadFetch
	FaultIllegalInst
	FaultBreakpoint
)

func (k FaultKind) String() string {
	switch k {
	case FaultNullDeref:
		return "null-pointer dereference"
	case FaultUnmapped:
		return "access to unmapped address"
	case FaultBadFetch:
		return "instruction fetch fault"
	case FaultIllegalInst:
		return "illegal instruction"
	case FaultBreakpoint:
		return "breakpoint"
	}
	return "no fault"
}

// Fault describes a guest hardware fault (what a crash looks like without a
// sanitizer: the raw oracle fuzzers fall back to).
type Fault struct {
	Kind FaultKind
	Hart int
	PC   uint32
	Addr uint32
}

func (f *Fault) Error() string {
	return fmt.Sprintf("guest fault: %s at pc=%#x addr=%#x (hart %d)", f.Kind, f.PC, f.Addr, f.Hart)
}

// Device is a memory-mapped peripheral.
type Device interface {
	Name() string
	// Contains reports whether the device decodes addr.
	Contains(addr uint32) bool
	Read(addr, size uint32) uint32
	Write(addr, size, val uint32)
	Reset()
}

// bus performs all data accesses: RAM with dirty-page tracking, MMIO
// dispatch, and NULL/unmapped fault generation.
type bus struct {
	ram     []byte
	order   binary.ByteOrder
	dirty   []uint64 // one bit per RAM page, set on write
	devices []Device

	// MMIO dispatch accounting (accesses that reached a device), surfaced
	// as Counters.DeviceReads/DeviceWrites.
	devReads, devWrites *obs.Counter
}

func (b *bus) inRAM(addr, size uint32) bool {
	return addr >= NullGuardSize && uint64(addr)+uint64(size) <= uint64(len(b.ram))
}

func (b *bus) device(addr uint32) Device {
	for _, d := range b.devices {
		if d.Contains(addr) {
			return d
		}
	}
	return nil
}

func (b *bus) markDirty(addr, size uint32) {
	first := addr >> pageShift
	last := (addr + size - 1) >> pageShift
	for p := first; p <= last; p++ {
		b.dirty[p>>6] |= 1 << (p & 63)
	}
}

// read returns the value at addr. A non-nil fault kind signals a bus error.
func (b *bus) read(addr, size uint32) (uint32, FaultKind) {
	if b.inRAM(addr, size) {
		switch size {
		case 1:
			return uint32(b.ram[addr]), FaultNone
		case 2:
			return uint32(b.order.Uint16(b.ram[addr:])), FaultNone
		default:
			return b.order.Uint32(b.ram[addr:]), FaultNone
		}
	}
	if addr >= MMIOBase {
		if d := b.device(addr); d != nil {
			b.devReads.Inc()
			return d.Read(addr, size), FaultNone
		}
		return 0, FaultUnmapped
	}
	if addr < NullGuardSize {
		return 0, FaultNullDeref
	}
	return 0, FaultUnmapped
}

func (b *bus) write(addr, size, val uint32) FaultKind {
	if b.inRAM(addr, size) {
		b.markDirty(addr, size)
		switch size {
		case 1:
			b.ram[addr] = byte(val)
		case 2:
			b.order.PutUint16(b.ram[addr:], uint16(val))
		default:
			b.order.PutUint32(b.ram[addr:], val)
		}
		return FaultNone
	}
	if addr >= MMIOBase {
		if d := b.device(addr); d != nil {
			b.devWrites.Inc()
			d.Write(addr, size, val)
			return FaultNone
		}
		return FaultUnmapped
	}
	if addr < NullGuardSize {
		return FaultNullDeref
	}
	return FaultUnmapped
}
