package emu

import (
	"sync"

	"embsan/internal/kasm"
)

// Process-global shared translation cache. A worker pool runs many machines
// over the same firmware; decoding each block once per machine is pure waste,
// so machines publish their translations here and consume each other's.
//
// Safety rests on three restrictions:
//
//   - Entries are keyed by the image's content digest and by a signature of
//     everything translation reads besides the code bytes (probe presence,
//     safe/elided/hook/inline PC sets, RAM size). Two machines with equal
//     keys produce bit-identical step slices, so whose translation a machine
//     ends up with is unobservable.
//   - Only blocks whose whole page lies inside the image's text segment are
//     shared, and only while the consuming/publishing machine's pageGen for
//     that page is 0 — i.e. the page still holds pristine image bytes. Self-
//     modifying or data-resident code never enters the cache.
//   - Entries are immutable after publication. The mutable per-machine parts
//     of a tb (generation stamps, chain links) live in a machine-local
//     wrapper; only the decoded steps and static successor PCs are shared.
//
// Which machine translates first — and therefore who publishes and who
// consumes — is schedule-dependent, so the shared-hit counter is a
// diagnostic and must never feed a byte-compared artifact.

// sharedTB is the immutable published form of a translation block.
type sharedTB struct {
	steps     []step
	succTaken uint32
	succFall  uint32
}

type sharedKey struct {
	sig uint64
	pc  uint32
}

// maxSharedBlocks bounds one image's cache. Text segments are a few
// thousand blocks at most; the cap only guards against a pathological
// signature churn filling the process with dead entries. Insertion simply
// stops at the cap — eviction would thrash exactly when the cap matters.
const maxSharedBlocks = 1 << 14

type sharedImageCache struct {
	mu     sync.RWMutex
	blocks map[sharedKey]*sharedTB
}

func (c *sharedImageCache) get(sig uint64, pc uint32) *sharedTB {
	c.mu.RLock()
	e := c.blocks[sharedKey{sig: sig, pc: pc}]
	c.mu.RUnlock()
	return e
}

func (c *sharedImageCache) put(sig uint64, pc uint32, e *sharedTB) {
	k := sharedKey{sig: sig, pc: pc}
	c.mu.Lock()
	if len(c.blocks) < maxSharedBlocks {
		if _, ok := c.blocks[k]; !ok {
			c.blocks[k] = e
		}
	}
	c.mu.Unlock()
}

var (
	sharedMu     sync.Mutex
	sharedCaches = map[string]*sharedImageCache{}

	// imageIDs memoizes content digests per image pointer; images are
	// immutable after construction, so the pointer identifies the content.
	imageIDs sync.Map // *kasm.Image -> string
)

func sharedCacheFor(imageID string) *sharedImageCache {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	c, ok := sharedCaches[imageID]
	if !ok {
		c = &sharedImageCache{blocks: make(map[sharedKey]*sharedTB)}
		sharedCaches[imageID] = c
	}
	return c
}

func imageIDFor(img *kasm.Image) string {
	if v, ok := imageIDs.Load(img); ok {
		return v.(string)
	}
	id := img.ContentID()
	imageIDs.Store(img, id)
	return id
}

// sharedPageOK reports whether pc's whole page lies inside the image's text
// segment. Only such pages are shareable: a block near the text boundary may
// decode into adjacent data bytes, which differ between same-text images,
// and writes outside the text range never bump pageGen.
func (m *Machine) sharedPageOK(pc uint32) bool {
	ps := pc &^ (pageSize - 1)
	return ps >= m.image.Base && ps+pageSize <= m.image.TextEnd()
}

// sharedSigNow returns the machine's translation signature: a digest of
// every translation input other than the code bytes themselves. Machines
// with equal image content and equal signatures translate identically, which
// is the shared cache's correctness condition. The signature is invalidated
// by flushTBs, the single choke point every input mutation goes through.
func (m *Machine) sharedSigNow() uint64 {
	if !m.sharedSigOK {
		sig := uint64(0x9E3779B97F4A7C15)
		if m.probes.Mem != nil {
			sig ^= 0xA5
		}
		if m.probes.Sanck != nil {
			sig ^= 0x5A00
		}
		sig = mix64(sig ^ uint64(m.cfg.RAMSize)<<16)
		sig ^= pcSetSig(m.safeMem, 1)
		sig ^= pcSetSig(m.elided, 2)
		sig ^= pcSetSig(m.inlineMem, 3)
		sig ^= hookSetSig(m.pcHooks)
		m.sharedSig = sig
		m.sharedSigOK = true
	}
	return m.sharedSig
}

// pcSetSig folds a PC set into an order-independent digest (map iteration
// order must not matter), salted so e.g. a safe set and an identical elided
// set do not cancel.
func pcSetSig(set map[uint32]bool, salt uint64) uint64 {
	var s uint64
	for pc := range set {
		s += mix64(uint64(pc) | salt<<40)
	}
	return s
}

func hookSetSig(hooks map[uint32]HookFn) uint64 {
	var s uint64
	for pc := range hooks {
		s += mix64(uint64(pc) | 4<<40)
	}
	return s
}

// mix64 is the splitmix64 finalizer — a cheap bijective scrambler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
