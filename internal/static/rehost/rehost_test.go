package rehost

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"embsan/internal/emu"
	"embsan/internal/guest/mystery"
	"embsan/internal/guest/vxworks"
	"embsan/internal/isa"
)

var update = flag.Bool("update", false, "rewrite golden files")

func liftMystery(t *testing.T, arch isa.Arch) (*mystery.Firmware, *Profile) {
	t.Helper()
	fw, err := mystery.Build("Mystery", arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lift(fw.Image)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return fw, p
}

func findReg(p *Profile, addr uint32) *Register {
	for i := range p.Registers {
		if p.Registers[i].Addr == addr {
			return &p.Registers[i]
		}
	}
	return nil
}

// TestLiftMysteryGroundTruth compares the inferred map against the mystery
// guest's ground-truth constants — which the lifter never sees: it gets the
// stripped image only.
func TestLiftMysteryGroundTruth(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		t.Run(arch.String(), func(t *testing.T) {
			fw, p := liftMystery(t, arch)

			// The top-ranked allocator candidate must be the real one
			// (checked against the unstripped image's symbols).
			var allocAddr uint32
			for _, s := range fw.FullImage.Symbols {
				if s.Name == "mys_alloc" {
					allocAddr = s.Addr
				}
			}
			if len(p.Allocs) == 0 || p.Allocs[0].Entry != allocAddr {
				t.Errorf("top alloc candidate %+v, want entry %#x (mys_alloc)", p.Allocs, allocAddr)
			}

			if p.StackTop != mystery.StackTop {
				t.Errorf("stack top %#x, want %#x", p.StackTop, mystery.StackTop)
			}
			checks := []struct {
				addr uint32
				role Role
			}{
				{mystery.RegClkStatus, RoleBootStatus},
				{mystery.RegCtrl, RoleControl},
				{mystery.RegConsole, RoleConsole},
				{mystery.RegRxStatus, RoleRxStatus},
				{mystery.RegRxLen, RoleRxLen},
				{mystery.RegDone, RoleDone},
			}
			for _, c := range checks {
				r := findReg(p, c.addr)
				if r == nil {
					t.Errorf("register %#x not recovered", c.addr)
					continue
				}
				if r.Role != c.role {
					t.Errorf("register %#x role %s, want %s", c.addr, r.Role, c.role)
				}
			}
			if len(p.Registers) != len(checks) {
				t.Errorf("recovered %d registers, want %d: %+v", len(p.Registers), len(checks), p.Registers)
			}
			if len(p.Windows) != 1 {
				t.Fatalf("recovered %d windows, want 1: %+v", len(p.Windows), p.Windows)
			}
			w := p.Windows[0]
			if w.Base != mystery.Window || w.Size != mystery.WindowSize || !w.Read {
				t.Errorf("window %#x+%#x r=%v, want %#x+%#x readable",
					w.Base, w.Size, w.Read, uint32(mystery.Window), uint32(mystery.WindowSize))
			}
			clk := findReg(p, mystery.RegClkStatus)
			if clk != nil && (!clk.Poll || clk.Exit == 0) {
				t.Errorf("clk poll not recovered: %+v", clk)
			}
		})
	}
}

// TestLiftedDeviceBoots boots the stripped image on a stock machine plus
// only the synthesized bridge — no ground-truth device, no metadata.
func TestLiftedDeviceBoots(t *testing.T) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		t.Run(arch.String(), func(t *testing.T) {
			fw, p := liftMystery(t, arch)
			m, err := emu.New(fw.Image, emu.Config{Devices: []emu.DeviceFactory{Device(p)}})
			if err != nil {
				t.Fatal(err)
			}
			m.ReadyHook = func(m *emu.Machine) { m.RequestStop() }
			if r := m.Run(50_000_000); r != emu.StopRequest {
				t.Fatalf("boot stopped with %v (fault %v)", r, m.Fault())
			}
			if out := m.UART.String(); !strings.Contains(out, "mys v1") {
				t.Fatalf("console missing banner: %q", out)
			}

			// Drive one echo frame end to end through the bridge.
			m.ClearStop()
			m.Mailbox.Post([]byte{0x41, 10, 20, 30})
			if r := m.Run(50_000_000); r != emu.StopRequest {
				t.Fatalf("exec stopped with %v (fault %v)", r, m.Fault())
			}
			done, code := m.Mailbox.Done()
			if !done || code != 60 {
				t.Fatalf("echo via lifted device: done=%v code=%d, want 60", done, code)
			}
		})
	}
}

// TestLiftDeterminism: same image, byte-identical profile and stub.
func TestLiftDeterminism(t *testing.T) {
	fw, err := mystery.Build("Mystery", isa.ArchX86E)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Lift(fw.Image)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lift(fw.Image)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("two lifts of the same image render differently")
	}
	if a.RenderStub() != b.RenderStub() {
		t.Fatal("two lifts of the same image generate different stubs")
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenMysteryProfile(t *testing.T) {
	_, p := liftMystery(t, isa.ArchX86E)
	checkGolden(t, "mystery_x86e.profile", []byte(p.Render()))
	checkGolden(t, "mystery_x86e.stub.go.txt", []byte(p.RenderStub()))
}

// TestGoldenVxworksProfile lifts the other closed guest's stripped image.
// It talks to the standard platform devices, so the profile records mailbox
// and UART traffic under their real addresses — and no foreign windows.
func TestGoldenVxworksProfile(t *testing.T) {
	fw, err := vxworks.Build("VxWorks", isa.ArchARM32E)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lift(fw.Image)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "vxworks.profile", []byte(p.Render()))
}
