// Package rehost lifts a foreign, metadata-free firmware image into a
// runnable EMBSAN-D personality. It runs an interprocedural interval
// analysis over the CFGs recovered by internal/static and infers, from the
// binary alone:
//
//   - the reset vector and the boot stack (the entry block's constant
//     store to SP);
//   - the MMIO register map: every device access whose address resolves to
//     a single location becomes a register, classified by access width,
//     polarity and role; accesses through loop-carried pointers become
//     data windows;
//   - status-poll loops (a read whose value gates the loop back-edge),
//     together with the value that releases each poll — so a synthesized
//     device can feed boot progress instead of hanging the firmware;
//   - allocator entry candidates from the static ranking, for the Prober
//     to confirm behaviourally.
//
// The result is a Profile; Device bridges it onto the platform devices so
// the image boots under EMBSAN-D, and RenderStub emits the equivalent
// device source for inspection.
package rehost

import (
	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

const (
	maxSpan    = 0x1000 // widest tracked interval; anything wider is unknown
	maxPasses  = 8      // dataflow passes per function (bounded widening)
	maxAllocs  = 4      // ranked allocator candidates kept in the profile
	pageMask   = 0xFFF
	windowPage = 0x1000
)

// ---- interval domain ----

// A val abstracts one register's contents as an unsigned interval. The
// analysis only needs to separate "one exact address" (a register access)
// from "a small range of addresses" (a window walked by a loop) from
// "anything" — so intervals wider than maxSpan collapse to unknown.
type val struct {
	known  bool
	lo, hi uint32
}

func exact(v uint32) val { return val{known: true, lo: v, hi: v} }

func (v val) isExact() bool { return v.known && v.lo == v.hi }

// norm builds a val from 64-bit bounds, wrapping a fully out-of-range pair
// back into 32 bits and dropping straddles and wide spans.
func norm(lo, hi uint64) val {
	const wrap = 1 << 32
	if hi < lo || hi-lo > maxSpan {
		return val{}
	}
	if lo >= wrap {
		lo -= wrap
		hi -= wrap
	}
	if hi >= wrap {
		return val{}
	}
	return val{known: true, lo: uint32(lo), hi: uint32(hi)}
}

func merge(a, b val) val {
	if !a.known || !b.known {
		return val{}
	}
	lo, hi := a.lo, a.hi
	if b.lo < lo {
		lo = b.lo
	}
	if b.hi > hi {
		hi = b.hi
	}
	if hi-lo > maxSpan {
		return val{}
	}
	return val{known: true, lo: lo, hi: hi}
}

func addImm(v val, imm int32) val {
	if !v.known {
		return val{}
	}
	lo := int64(v.lo) + int64(imm)
	hi := int64(v.hi) + int64(imm)
	if lo < 0 {
		lo += 1 << 32
		hi += 1 << 32
	}
	if lo < 0 {
		return val{}
	}
	return norm(uint64(lo), uint64(hi))
}

func addVals(a, b val) val {
	if !a.known || !b.known {
		return val{}
	}
	if a.isExact() && b.isExact() {
		return exact(a.lo + b.lo) // wrapping: self-relative table idiom
	}
	return norm(uint64(a.lo)+uint64(b.lo), uint64(a.hi)+uint64(b.hi))
}

func subVals(a, b val) val {
	if !a.known || !b.known {
		return val{}
	}
	if a.isExact() && b.isExact() {
		return exact(a.lo - b.lo)
	}
	lo := int64(a.lo) - int64(b.hi)
	hi := int64(a.hi) - int64(b.lo)
	if lo < 0 {
		return val{}
	}
	return norm(uint64(lo), uint64(hi))
}

func aluExact(op isa.Op, x, y uint32) (uint32, bool) {
	switch op {
	case isa.OpAND:
		return x & y, true
	case isa.OpOR:
		return x | y, true
	case isa.OpXOR:
		return x ^ y, true
	case isa.OpSLL:
		return x << (y & 31), true
	case isa.OpSRL:
		return x >> (y & 31), true
	case isa.OpSRA:
		return uint32(int32(x) >> (y & 31)), true
	case isa.OpMUL:
		return x * y, true
	case isa.OpSLT:
		if int32(x) < int32(y) {
			return 1, true
		}
		return 0, true
	case isa.OpSLTU:
		if x < y {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

const (
	maxFrame = 4096 // deepest tracked stack-slot offset
	maxSlots = 64   // most tracked slots per state
)

// state is the abstract machine state: one interval per register, plus the
// SP displacement from function entry and the word slots spilled through
// it. Slot tracking is what lets a pointer survive the save/reload pair
// that real code wraps around calls.
type state struct {
	r     [16]val
	spOk  bool  // SP is a known displacement from the function-entry SP
	spOff int32 // that displacement
	slots map[int32]val
}

func entryState() state { return state{spOk: true} }

func (s *state) get(r uint8) val {
	if r == isa.RegZero {
		return exact(0)
	}
	return s.r[r]
}

func (s *state) set(r uint8, v val) {
	if r != isa.RegZero {
		s.r[r] = v
	}
}

func (s *state) slot(off int32) val {
	if v, ok := s.slots[off]; ok {
		return v
	}
	return val{}
}

func (s *state) setSlot(off int32, v val) {
	if off < -maxFrame || off > maxFrame {
		return
	}
	if s.slots == nil {
		s.slots = map[int32]val{}
	}
	if len(s.slots) >= maxSlots {
		if _, ok := s.slots[off]; !ok {
			return
		}
	}
	s.slots[off] = v
}

func cloneState(s state) state {
	if s.slots != nil {
		m := make(map[int32]val, len(s.slots))
		for k, v := range s.slots {
			m[k] = v
		}
		s.slots = m
	}
	return s
}

func mergeState(a, b state) state {
	var out state
	for i := range out.r {
		out.r[i] = merge(a.r[i], b.r[i])
	}
	if a.spOk && b.spOk && a.spOff == b.spOff {
		out.spOk, out.spOff = true, a.spOff
		for off, av := range a.slots {
			bv, ok := b.slots[off]
			if !ok {
				continue
			}
			if m := merge(av, bv); m.known {
				if out.slots == nil {
					out.slots = map[int32]val{}
				}
				out.slots[off] = m
			}
		}
	}
	return out
}

func stateEq(a, b state) bool {
	if a.r != b.r || a.spOk != b.spOk || a.spOff != b.spOff {
		return false
	}
	if len(a.slots) != len(b.slots) {
		return false
	}
	for k, v := range a.slots {
		if bv, ok := b.slots[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// step is the abstract transfer function for one instruction. Calls keep
// callee state except the link and return-value registers: the lifter has
// no ABI metadata, and assuming preservation recovers far more of the
// pointer flow than clobbering everything (documented heuristic).
func step(s *state, in isa.Inst, pc uint32) {
	// Track the SP displacement: balanced prologue/epilogue arithmetic
	// keeps slot addressing valid; anything else abandons the frame.
	if in.Rd == isa.RegSP && writesRd(in.Op) {
		if in.Op == isa.OpADDI && in.Rs1 == isa.RegSP && s.spOk {
			s.spOff += in.Imm
		} else {
			s.spOk = false
			s.slots = nil
		}
	}
	switch in.Op {
	case isa.OpSW:
		if in.Rs1 == isa.RegSP && s.spOk {
			s.setSlot(s.spOff+in.Imm, s.get(in.Rs2))
		}
		return
	case isa.OpSB, isa.OpSH:
		if in.Rs1 == isa.RegSP && s.spOk {
			delete(s.slots, s.spOff+in.Imm) // partial overwrite: slot dies
		}
		return
	case isa.OpLUI:
		s.set(in.Rd, exact(uint32(in.Imm)<<12))
	case isa.OpAUIPC:
		s.set(in.Rd, exact(pc+uint32(in.Imm)<<12))
	case isa.OpADDI:
		s.set(in.Rd, addImm(s.get(in.Rs1), in.Imm))
	case isa.OpANDI:
		v := s.get(in.Rs1)
		switch {
		case v.isExact():
			s.set(in.Rd, exact(v.lo&uint32(in.Imm)))
		case in.Imm > 0 && in.Imm <= maxSpan:
			s.set(in.Rd, val{known: true, lo: 0, hi: uint32(in.Imm)})
		default:
			s.set(in.Rd, val{})
		}
	case isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpSLTIU:
		v := s.get(in.Rs1)
		if !v.isExact() {
			s.set(in.Rd, val{})
			break
		}
		x, imm := v.lo, uint32(in.Imm)
		switch in.Op {
		case isa.OpORI:
			s.set(in.Rd, exact(x|imm))
		case isa.OpXORI:
			s.set(in.Rd, exact(x^imm))
		case isa.OpSLLI:
			s.set(in.Rd, exact(x<<(imm&31)))
		case isa.OpSRLI:
			s.set(in.Rd, exact(x>>(imm&31)))
		case isa.OpSRAI:
			s.set(in.Rd, exact(uint32(int32(x)>>(imm&31))))
		case isa.OpSLTI:
			s.set(in.Rd, boolVal(int32(x) < in.Imm))
		case isa.OpSLTIU:
			s.set(in.Rd, boolVal(x < imm))
		}
	case isa.OpADD:
		s.set(in.Rd, addVals(s.get(in.Rs1), s.get(in.Rs2)))
	case isa.OpSUB:
		s.set(in.Rd, subVals(s.get(in.Rs1), s.get(in.Rs2)))
	case isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
		isa.OpMUL, isa.OpSLT, isa.OpSLTU:
		a, b := s.get(in.Rs1), s.get(in.Rs2)
		if a.isExact() && b.isExact() {
			if r, ok := aluExact(in.Op, a.lo, b.lo); ok {
				s.set(in.Rd, exact(r))
				break
			}
		}
		s.set(in.Rd, val{})
	case isa.OpLW:
		if in.Rs1 == isa.RegSP && s.spOk {
			s.set(in.Rd, s.slot(s.spOff+in.Imm))
		} else {
			s.set(in.Rd, val{})
		}
	case isa.OpMULHU, isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
		isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLRW,
		isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW,
		isa.OpSCW, isa.OpCSRR:
		s.set(in.Rd, val{})
	case isa.OpJAL, isa.OpJALR:
		s.set(in.Rd, exact(pc+4))
		if in.Rd == isa.RegRA {
			s.set(isa.RegA0, val{}) // call: return value is clobbered
		}
	}
}

func boolVal(b bool) val {
	if b {
		return exact(1)
	}
	return exact(0)
}

// ---- per-function dataflow ----

// flowFunc computes block in-states for one function by forward dataflow
// with hull merging, bounded at maxPasses (loop-carried pointers widen a
// little each pass, which is exactly what separates them from exact
// register addresses).
func flowFunc(an *static.Analysis, f *static.Func) map[uint32]state {
	in := map[uint32]state{}
	if len(f.Blocks) == 0 {
		return in
	}
	in[f.Blocks[0].Start] = entryState()
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, b := range f.Blocks {
			cur, have := in[b.Start]
			if !have {
				continue
			}
			s := cloneState(cur)
			for pc := b.Start; pc < b.End; pc += 4 {
				if inst, ok := an.InstAt(pc); ok {
					step(&s, inst, pc)
				}
			}
			for _, succ := range b.Succs {
				if succ < f.Entry || succ >= f.End {
					continue
				}
				prev, have := in[succ]
				if !have {
					in[succ] = cloneState(s)
					changed = true
				} else if m := mergeState(prev, s); !stateEq(m, prev) {
					in[succ] = m
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// access is one MMIO load/store with its resolved address interval.
type access struct {
	pc    uint32
	fn    uint32 // containing function entry
	addr  val
	size  uint32
	read  bool
	write bool

	// Poll shape, for reads whose value gates the block's back-edge.
	poll  bool
	exit  uint32
	stall uint32
	// looped: the poll itself sits inside an enclosing loop — it is
	// served repeatedly (an input wait), not once (a boot gate).
	looped bool
}

// collect replays each block with its computed in-state and records every
// access that lands in MMIO space.
func collect(an *static.Analysis, f *static.Func, flow map[uint32]state) []access {
	var out []access
	for _, b := range f.Blocks {
		cur, ok := flow[b.Start]
		if !ok {
			continue // unreached block
		}
		s := cloneState(cur)
		for pc := b.Start; pc < b.End; pc += 4 {
			in, ok := an.InstAt(pc)
			if !ok {
				continue
			}
			if sz := isa.AccessSize(in.Op); sz != 0 {
				imm := in.Imm
				if isa.ClassOf(in.Op) == isa.ClassAtomic {
					imm = 0
				}
				addr := addImm(s.get(in.Rs1), imm)
				if addr.known && addr.lo >= emu.MMIOBase {
					ac := access{
						pc: pc, fn: f.Entry, addr: addr, size: sz,
						read:  !isa.IsWrite(in.Op) || isa.ClassOf(in.Op) == isa.ClassAtomic,
						write: isa.IsWrite(in.Op),
					}
					if ac.read && addr.isExact() {
						var backTo uint32
						ac.poll, ac.exit, ac.stall, backTo = pollShape(an, f, b, pc, in.Rd)
						if ac.poll {
							ac.looped = enclosed(f, b, backTo)
						}
					}
					out = append(out, ac)
				}
			}
			step(&s, in, pc)
		}
	}
	return out
}

// enclosed reports whether some later block jumps back to the poll head —
// the poll is re-armed after the work that follows it, i.e. it waits for
// input repeatedly rather than gating the boot once.
func enclosed(f *static.Func, poll static.Block, head uint32) bool {
	for _, b := range f.Blocks {
		if b.Start < poll.End {
			continue
		}
		for _, succ := range b.Succs {
			if succ == head {
				return true
			}
		}
	}
	return false
}

// pollShape detects the status-poll idiom: the block ends in a conditional
// branch back to (or before) the read, and the branch compares the loaded
// value — directly or through one AND mask — against zero. It returns the
// value that releases the loop, the value that keeps it spinning, and the
// loop head the back-edge targets.
func pollShape(an *static.Analysis, f *static.Func, b static.Block, readPC uint32, rd uint8) (bool, uint32, uint32, uint32) {
	if rd == isa.RegZero {
		return false, 0, 0, 0
	}
	carriers := map[uint8]uint32{rd: 0} // reg -> AND mask (0 = unmasked)
	for pc := readPC + 4; pc < b.End; pc += 4 {
		in, ok := an.InstAt(pc)
		if !ok {
			return false, 0, 0, 0
		}
		switch in.Op {
		case isa.OpBEQ, isa.OpBNE:
			mask, hit := branchCarrier(carriers, in)
			if !hit {
				return false, 0, 0, 0
			}
			t := pc + uint32(in.Imm)*4
			if t > readPC || t < f.Entry {
				return false, 0, 0, 0 // not a back-edge over the read
			}
			exitv := mask
			if exitv == 0 {
				exitv = 1
			}
			if in.Op == isa.OpBEQ {
				return true, exitv, 0, t // spins while zero
			}
			return true, 0, exitv, t // spins while nonzero
		case isa.OpANDI:
			if m, ok := carriers[in.Rs1]; ok && m == 0 && in.Imm > 0 && in.Rd != isa.RegZero {
				carriers[in.Rd] = uint32(in.Imm)
				continue
			}
			delete(carriers, in.Rd)
		case isa.OpADD:
			if m, ok := carriers[in.Rs1]; ok && in.Rs2 == isa.RegZero && in.Rd != isa.RegZero {
				carriers[in.Rd] = m
				continue
			}
			if m, ok := carriers[in.Rs2]; ok && in.Rs1 == isa.RegZero && in.Rd != isa.RegZero {
				carriers[in.Rd] = m
				continue
			}
			delete(carriers, in.Rd)
		default:
			if isa.Terminates(in.Op) {
				return false, 0, 0, 0
			}
			if writesRd(in.Op) {
				delete(carriers, in.Rd)
			}
		}
		if len(carriers) == 0 {
			return false, 0, 0, 0
		}
	}
	return false, 0, 0, 0
}

// writesRd reports whether op defines its Rd field (stores and branches
// carry source registers there instead).
func writesRd(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassStore, isa.ClassBranch, isa.ClassSanck:
		return false
	}
	switch op {
	case isa.OpHALT, isa.OpFENCE, isa.OpYIELD, isa.OpHCALL,
		isa.OpECALL, isa.OpEBREAK, isa.OpCSRW:
		return false
	}
	return true
}

// branchCarrier reports whether the branch compares a carrier register
// against the zero register, and with which mask.
func branchCarrier(carriers map[uint8]uint32, in isa.Inst) (uint32, bool) {
	if m, ok := carriers[in.Rs1]; ok && in.Rs2 == isa.RegZero {
		return m, true
	}
	if m, ok := carriers[in.Rs2]; ok && in.Rs1 == isa.RegZero {
		return m, true
	}
	return 0, false
}

// ---- lifting ----

// Lift runs the full rehosting analysis over one image. It needs no
// symbols and no link metadata: the stripped binary is enough.
func Lift(img *kasm.Image) (*Profile, error) {
	an, err := static.Analyze(img)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Name:           img.Name,
		Arch:           img.Arch,
		Entry:          img.Entry,
		ImageBase:      img.Base,
		ImageEnd:       img.BSSAddr + img.BSSSize,
		FuncsRecovered: len(an.Funcs),
	}

	var accs []access
	for _, f := range an.Funcs {
		if !an.FuncReachable(f.Entry) {
			continue
		}
		p.FuncsReachable++
		accs = append(accs, collect(an, f, flowFunc(an, f))...)
	}

	p.Windows, p.Registers = classify(accs)
	p.StackTop = recoverStack(an, img.Entry)

	for _, c := range an.RankAllocCandidates() {
		if len(p.Allocs) == maxAllocs || c.Score <= 0 {
			break
		}
		p.Allocs = append(p.Allocs, AllocCandidate{
			Entry: c.Entry, Name: c.Name, Score: c.Score, Shaped: c.Shaped,
		})
	}
	return p, nil
}

// classify turns the raw access list into windows (loop-carried pointers)
// and registers (exact addresses), assigning each register a role.
func classify(accs []access) ([]Window, []Register) {
	// Windows first: every non-exact access claims the pages its interval
	// touches; overlapping claims coalesce.
	type rawWin struct {
		base        uint32
		end         uint64 // exclusive; may be 1<<32 at the top of the space
		read, write bool
		pcs         []uint32
		fns         map[uint32]bool
	}
	var raws []rawWin
	for _, ac := range accs {
		if ac.addr.isExact() {
			continue
		}
		base := ac.addr.lo &^ uint32(pageMask)
		end64 := ((uint64(ac.addr.hi) + uint64(ac.size) - 1) | pageMask) + 1
		if end64 > 1<<32 {
			end64 = 1 << 32
		}
		if end64-uint64(base) >= 1<<32 {
			continue // degenerate: the window would cover everything
		}
		raws = append(raws, rawWin{
			base: base, end: end64, read: ac.read, write: ac.write,
			pcs: []uint32{ac.pc}, fns: map[uint32]bool{ac.fn: true},
		})
	}
	for i := 0; i < len(raws); i++ {
		for j := i + 1; j < len(raws); j++ {
			if uint64(raws[i].base) < raws[j].end && uint64(raws[j].base) < raws[i].end {
				if raws[j].base < raws[i].base {
					raws[i].base = raws[j].base
				}
				if raws[j].end > raws[i].end {
					raws[i].end = raws[j].end
				}
				raws[i].read = raws[i].read || raws[j].read
				raws[i].write = raws[i].write || raws[j].write
				raws[i].pcs = append(raws[i].pcs, raws[j].pcs...)
				for fn := range raws[j].fns {
					raws[i].fns[fn] = true
				}
				raws = append(raws[:j], raws[j+1:]...)
				j = i // rescan: the grown window may now overlap earlier ones
			}
		}
	}

	inWindow := func(addr uint32) int {
		for i, w := range raws {
			if addr >= w.base && uint64(addr) < w.end {
				return i
			}
		}
		return -1
	}

	// inputFns: functions on the input path — they read a window, or they
	// host a poll that is re-armed by an enclosing loop (frame service
	// without a data window, e.g. a register-only mailbox). Exact accesses
	// landing inside a window page fold into the window.
	inputFns := map[uint32]bool{}
	for _, ac := range accs {
		if ac.poll && ac.looped {
			inputFns[ac.fn] = true
		}
	}
	type rawReg struct {
		read, write bool
		sizes       map[uint32]bool
		fns         map[uint32]bool
		pcs         []uint32
		poll        bool
		exit, stall uint32
	}
	regs := map[uint32]*rawReg{}
	for _, ac := range accs {
		if !ac.addr.isExact() {
			if ac.read {
				inputFns[ac.fn] = true
			}
			continue
		}
		if wi := inWindow(ac.addr.lo); wi >= 0 {
			raws[wi].read = raws[wi].read || ac.read
			raws[wi].write = raws[wi].write || ac.write
			raws[wi].pcs = append(raws[wi].pcs, ac.pc)
			raws[wi].fns[ac.fn] = true
			if ac.read {
				inputFns[ac.fn] = true
			}
			continue
		}
		r := regs[ac.addr.lo]
		if r == nil {
			r = &rawReg{sizes: map[uint32]bool{}, fns: map[uint32]bool{}}
			regs[ac.addr.lo] = r
		}
		r.read = r.read || ac.read
		r.write = r.write || ac.write
		r.sizes[ac.size] = true
		r.fns[ac.fn] = true
		r.pcs = append(r.pcs, ac.pc)
		if ac.poll && !r.poll {
			r.poll, r.exit, r.stall = true, ac.exit, ac.stall
		}
	}

	var wins []Window
	for _, w := range raws {
		wins = append(wins, Window{
			Base: w.base, Size: uint32(w.end - uint64(w.base)),
			Read: w.read, Write: w.write, PCs: sortU32(w.pcs),
		})
	}
	sortWindows(wins)

	var out []Register
	for addr, r := range regs {
		onInput := false
		for fn := range r.fns {
			if inputFns[fn] {
				onInput = true
				break
			}
		}
		reg := Register{
			Addr: addr, Read: r.read, Write: r.write,
			Sizes: sortU32(sizesOf(r.sizes)), PCs: sortU32(r.pcs),
			Poll: r.poll, Exit: r.exit, Stall: r.stall,
		}
		switch {
		case r.poll && onInput:
			reg.Role = RoleRxStatus
		case r.poll:
			reg.Role = RoleBootStatus
		case r.read && onInput:
			reg.Role = RoleRxLen
		case !r.read && allByte(reg.Sizes):
			reg.Role = RoleConsole
		case r.write && onInput:
			reg.Role = RoleDone
		case r.write:
			reg.Role = RoleControl
		default:
			reg.Role = RoleScratch
		}
		out = append(out, reg)
	}
	sortRegisters(out)
	return wins, out
}

func allByte(sizes []uint32) bool {
	for _, s := range sizes {
		if s != 1 {
			return false
		}
	}
	return len(sizes) > 0
}

func sizesOf(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	return out
}

func sortWindows(w []Window) {
	for i := 1; i < len(w); i++ {
		for j := i; j > 0 && w[j].Base < w[j-1].Base; j-- {
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

func sortRegisters(r []Register) {
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && r[j].Addr < r[j-1].Addr; j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// recoverStack reads the stack pointer out of the entry function's first
// block: the boot stack is the first thing real reset code materialises.
func recoverStack(an *static.Analysis, entry uint32) uint32 {
	f, ok := an.FuncAt(entry)
	if !ok {
		f, ok = an.FuncContaining(entry)
	}
	if !ok || len(f.Blocks) == 0 {
		return 0
	}
	var s state
	b := f.Blocks[0]
	for pc := b.Start; pc < b.End; pc += 4 {
		if in, ok := an.InstAt(pc); ok {
			step(&s, in, pc)
		}
	}
	if sp := s.get(isa.RegSP); sp.isExact() && sp.lo != 0 && sp.lo < emu.MMIOBase {
		return sp.lo
	}
	return 0
}
