rehost profile v1
name:  Mystery
arch:  x86e
entry: 0x0000001000
image: 0x0000001000..0x0000011388
stack: 0x0000100000
funcs: 10 recovered, 10 reachable
registers: 6
  0x00f1000000 r- w4 boot-status poll(exit=0x1 stall=0x0) sites=1
  0x00f1000004 -w w4 control     sites=2
  0x00f1000008 -w w1 console     sites=1
  0x00f1000010 r- w4 rx-status   poll(exit=0x1 stall=0x0) sites=1
  0x00f1000014 r- w4 rx-len      sites=1
  0x00f1000018 -w w4 done        sites=2
windows: 1
  0x00f1001000 +0x1000 r- sites=1
alloc candidates: 4
  0x00000010b4 score=17 shaped fn_0x10b4
  0x0000001010 score=9 - fn_0x1010
  0x000000112c score=9 - fn_0x112c
  0x0000001200 score=9 - fn_0x1200
