rehost profile v1
name:  VxWorks
arch:  arm32e
entry: 0x0000001000
image: 0x0000001000..0x000001d4c8
stack: 0x00000054b0
funcs: 12 recovered, 11 reachable
registers: 3
  0x00f0002000 r- w4 rx-status   poll(exit=0x1 stall=0x0) sites=1
  0x00f0002004 r- w4 rx-len      sites=1
  0x00f0002008 -w w4 done        sites=1
windows: 0
alloc candidates: 4
  0x000000117c score=16 shaped fn_0x117c
  0x0000001144 score=9 - fn_0x1144
  0x000000123c score=9 - fn_0x123c
  0x00000012fc score=9 - fn_0x12fc
