package rehost

import (
	"fmt"
	"sort"
	"strings"

	"embsan/internal/emu"
	"embsan/internal/isa"
)

// Role classifies one inferred MMIO register by how the firmware uses it —
// which decides how the synthesized device bridges it onto the platform.
type Role uint8

const (
	// RoleBootStatus is polled outside the input path (clock/PLL/reset
	// gates). The device feeds the poll's exit value so boot progresses.
	RoleBootStatus Role = iota
	// RoleRxStatus is polled on the input path; bridged to the mailbox
	// pending flag, and its first read marks the ready point.
	RoleRxStatus
	// RoleRxLen is a scalar read on the input path; bridged to the pending
	// frame length.
	RoleRxLen
	// RoleDone is written on the input path; bridged to the mailbox done
	// register so a result write ends the frame.
	RoleDone
	// RoleConsole is a byte-wide write-only register; bridged to the UART.
	RoleConsole
	// RoleControl covers remaining writes; the device absorbs them.
	RoleControl
	// RoleScratch covers remaining reads; the device serves zero.
	RoleScratch
)

func (r Role) String() string {
	switch r {
	case RoleBootStatus:
		return "boot-status"
	case RoleRxStatus:
		return "rx-status"
	case RoleRxLen:
		return "rx-len"
	case RoleDone:
		return "done"
	case RoleConsole:
		return "console"
	case RoleControl:
		return "control"
	case RoleScratch:
		return "scratch"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Register is one inferred device register: an MMIO address every access of
// which resolves to a single exact location.
type Register struct {
	Addr  uint32
	Role  Role
	Read  bool
	Write bool
	Sizes []uint32 // distinct access widths, sorted

	// Poll carries the recovered status-poll shape: a read in a loop whose
	// value gates the back-edge. Exit is the value that releases the loop,
	// Stall the value that keeps it spinning.
	Poll  bool
	Exit  uint32
	Stall uint32

	PCs []uint32 // access sites, sorted
}

// Window is one inferred device data window: a page range the firmware
// accesses through a varying (loop-carried) pointer. Reads are bridged to
// the mailbox data window.
type Window struct {
	Base  uint32
	Size  uint32
	Read  bool
	Write bool
	PCs   []uint32
}

// AllocCandidate is one statically ranked allocator entry, kept for the
// Prober to confirm behaviourally.
type AllocCandidate struct {
	Entry  uint32
	Name   string
	Score  int
	Shaped bool
}

// Profile is everything the lifter recovered from a metadata-free image:
// enough to synthesize a device, boot the firmware, and point the Prober at
// the allocator.
type Profile struct {
	Name  string
	Arch  isa.Arch
	Entry uint32

	// RAM layout.
	ImageBase uint32
	ImageEnd  uint32 // end of bss
	StackTop  uint32 // 0 when not recovered from the entry block

	Registers []Register // sorted by Addr
	Windows   []Window   // sorted by Base, non-overlapping

	Allocs []AllocCandidate

	// Provenance.
	FuncsRecovered int
	FuncsReachable int
}

// Validate checks the internal consistency every lifted profile must have,
// whatever bytes went in. The fuzz target runs it on arbitrary inputs.
func (p *Profile) Validate() error {
	if p.Entry%4 != 0 {
		return fmt.Errorf("rehost: entry %#x misaligned", p.Entry)
	}
	for i, w := range p.Windows {
		if w.Size == 0 || w.Base%0x1000 != 0 {
			return fmt.Errorf("rehost: window %#x+%#x not page-shaped", w.Base, w.Size)
		}
		if w.Base < emu.MMIOBase {
			return fmt.Errorf("rehost: window %#x below MMIO space", w.Base)
		}
		if !w.Read && !w.Write {
			return fmt.Errorf("rehost: window %#x never accessed", w.Base)
		}
		if i > 0 && w.Base < p.Windows[i-1].Base+p.Windows[i-1].Size {
			return fmt.Errorf("rehost: windows overlap at %#x", w.Base)
		}
		if err := checkPCs(w.PCs); err != nil {
			return fmt.Errorf("rehost: window %#x: %w", w.Base, err)
		}
	}
	for i, r := range p.Registers {
		if r.Addr < emu.MMIOBase {
			return fmt.Errorf("rehost: register %#x below MMIO space", r.Addr)
		}
		if i > 0 && r.Addr <= p.Registers[i-1].Addr {
			return fmt.Errorf("rehost: registers unsorted at %#x", r.Addr)
		}
		for _, w := range p.Windows {
			if r.Addr >= w.Base && r.Addr < w.Base+w.Size {
				return fmt.Errorf("rehost: register %#x inside window %#x", r.Addr, w.Base)
			}
		}
		if !r.Read && !r.Write {
			return fmt.Errorf("rehost: register %#x never accessed", r.Addr)
		}
		if r.Poll && !r.Read {
			return fmt.Errorf("rehost: polled register %#x has no reads", r.Addr)
		}
		if r.Poll && r.Exit == r.Stall {
			return fmt.Errorf("rehost: register %#x poll exit == stall", r.Addr)
		}
		if len(r.Sizes) == 0 {
			return fmt.Errorf("rehost: register %#x has no access widths", r.Addr)
		}
		for j, s := range r.Sizes {
			if s != 1 && s != 2 && s != 4 {
				return fmt.Errorf("rehost: register %#x width %d", r.Addr, s)
			}
			if j > 0 && s <= r.Sizes[j-1] {
				return fmt.Errorf("rehost: register %#x widths unsorted", r.Addr)
			}
		}
		if err := checkPCs(r.PCs); err != nil {
			return fmt.Errorf("rehost: register %#x: %w", r.Addr, err)
		}
	}
	for i, c := range p.Allocs {
		if i > 0 && c.Score > p.Allocs[i-1].Score {
			return fmt.Errorf("rehost: alloc candidates unsorted at %#x", c.Entry)
		}
	}
	return nil
}

func checkPCs(pcs []uint32) error {
	for i, pc := range pcs {
		if i > 0 && pc <= pcs[i-1] {
			return fmt.Errorf("access sites unsorted at %#x", pc)
		}
	}
	return nil
}

// Render produces the deterministic textual form of the profile: the golden
// artefact, and what `embsan rehost` prints.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rehost profile v1\n")
	fmt.Fprintf(&b, "name:  %s\n", p.Name)
	fmt.Fprintf(&b, "arch:  %s\n", p.Arch)
	fmt.Fprintf(&b, "entry: %#010x\n", p.Entry)
	fmt.Fprintf(&b, "image: %#010x..%#010x\n", p.ImageBase, p.ImageEnd)
	if p.StackTop != 0 {
		fmt.Fprintf(&b, "stack: %#010x\n", p.StackTop)
	} else {
		fmt.Fprintf(&b, "stack: unrecovered\n")
	}
	fmt.Fprintf(&b, "funcs: %d recovered, %d reachable\n", p.FuncsRecovered, p.FuncsReachable)
	fmt.Fprintf(&b, "registers: %d\n", len(p.Registers))
	for _, r := range p.Registers {
		fmt.Fprintf(&b, "  %#010x %s %s %-11s", r.Addr, rw(r.Read, r.Write), widths(r.Sizes), r.Role)
		if r.Poll {
			fmt.Fprintf(&b, " poll(exit=%#x stall=%#x)", r.Exit, r.Stall)
		}
		fmt.Fprintf(&b, " sites=%d\n", len(r.PCs))
	}
	fmt.Fprintf(&b, "windows: %d\n", len(p.Windows))
	for _, w := range p.Windows {
		fmt.Fprintf(&b, "  %#010x +%#x %s sites=%d\n", w.Base, w.Size, rw(w.Read, w.Write), len(w.PCs))
	}
	fmt.Fprintf(&b, "alloc candidates: %d\n", len(p.Allocs))
	for _, c := range p.Allocs {
		shaped := "-"
		if c.Shaped {
			shaped = "shaped"
		}
		fmt.Fprintf(&b, "  %#010x score=%d %s %s\n", c.Entry, c.Score, shaped, c.Name)
	}
	return b.String()
}

func rw(r, w bool) string {
	s := [2]byte{'-', '-'}
	if r {
		s[0] = 'r'
	}
	if w {
		s[1] = 'w'
	}
	return string(s[:])
}

func widths(sizes []uint32) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return "w" + strings.Join(parts, "/")
}

// sortU32 sorts a slice of addresses in place and drops duplicates.
func sortU32(v []uint32) []uint32 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	var last uint32
	for i, x := range v {
		if i > 0 && x == last {
			continue
		}
		out = append(out, x)
		last = x
	}
	return out
}
