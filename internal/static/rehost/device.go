package rehost

import "embsan/internal/emu"

// Device returns a factory for the synthesized bridge device: an emu.Device
// that serves the inferred register map by forwarding the input path onto
// the platform mailbox, the console onto the UART, and feeding each status
// poll its recovered exit value. With it attached, a foreign image boots on
// an otherwise stock machine.
func Device(p *Profile) emu.DeviceFactory {
	return func(m *emu.Machine) emu.Device {
		return &bridge{m: m, p: p}
	}
}

type bridge struct {
	m *emu.Machine
	p *Profile
}

func (d *bridge) Name() string { return "rehost:" + d.p.Name }

func (d *bridge) Contains(addr uint32) bool {
	for i := range d.p.Windows {
		w := &d.p.Windows[i]
		if addr >= w.Base && addr-w.Base < w.Size {
			return true
		}
	}
	for i := range d.p.Registers {
		r := &d.p.Registers[i]
		if addr >= r.Addr && addr < r.Addr+4 {
			return true
		}
	}
	return false
}

func (d *bridge) reg(addr uint32) *Register {
	for i := range d.p.Registers {
		r := &d.p.Registers[i]
		if addr >= r.Addr && addr < r.Addr+4 {
			return r
		}
	}
	return nil
}

func (d *bridge) Read(addr, size uint32) uint32 {
	for i := range d.p.Windows {
		w := &d.p.Windows[i]
		if addr >= w.Base && addr-w.Base < w.Size {
			return d.m.Mailbox.Read(emu.MailboxData+(addr-w.Base), size)
		}
	}
	r := d.reg(addr)
	if r == nil {
		return 0
	}
	switch r.Role {
	case RoleBootStatus:
		return r.Exit
	case RoleRxStatus:
		// The firmware has reached its input poll: the boot is done.
		d.m.MarkReady()
		if d.m.Mailbox.Read(emu.MailboxBase, size) != 0 {
			return r.Exit
		}
		return r.Stall
	case RoleRxLen:
		return d.m.Mailbox.Read(emu.MailboxBase+4, size)
	}
	return 0
}

func (d *bridge) Write(addr, size, val uint32) {
	r := d.reg(addr)
	if r == nil {
		return
	}
	switch r.Role {
	case RoleConsole:
		d.m.UART.Write(emu.UARTBase, 1, val)
	case RoleDone:
		d.m.Mailbox.Write(emu.MailboxBase+8, size, val)
	}
	// Control writes (and window writes) are absorbed.
}

// Reset: the bridge is stateless — all frame state lives in the platform
// mailbox, which the machine resets itself.
func (d *bridge) Reset() {}
