package static

import "sort"

// Candidate is one statically ranked allocator candidate.
type Candidate struct {
	Entry     uint32
	Name      string // recovered name ("fn_%#x" when stripped)
	Score     int
	FanIn     int
	Reachable bool
	Shaped    bool    // alloc-shaped dataflow summary
	Summary   Summary // the light dataflow summary it was scored from
}

// Scoring weights. Symbol-name evidence dominates (when symbols survive,
// the shared name table is authoritative); behavioural shape comes next,
// then popularity and reachability.
const (
	scoreNameMatch = 16
	scorePtrReturn = 4
	scoreSizeArg   = 2
	scoreReachable = 4
	fanInCap       = 8
)

// RankAllocCandidates scores every recovered function as a potential
// allocator entry point and returns candidates in descending score order
// (ties broken by ascending entry address, so the ranking is deterministic
// for a given image). Functions whose summary shows no pointer return and
// no fan-in score zero and are omitted.
func (a *Analysis) RankAllocCandidates() []Candidate {
	var out []Candidate
	for _, f := range a.Funcs {
		sum := a.Summarize(f)
		c := Candidate{
			Entry:     f.Entry,
			Name:      f.Name,
			FanIn:     f.FanIn,
			Reachable: a.FuncReachable(f.Entry),
			Shaped:    sum.AllocShaped(),
			Summary:   sum,
		}
		if _, ok := MatchAllocName(f.Name); ok {
			c.Score += scoreNameMatch
		}
		if sum.PointerReturn {
			c.Score += scorePtrReturn
		}
		for _, s := range sum.SizeLike {
			if s {
				c.Score += scoreSizeArg
			}
		}
		if c.Reachable {
			c.Score += scoreReachable
		}
		if f.FanIn > fanInCap {
			c.Score += fanInCap
		} else {
			c.Score += f.FanIn
		}
		// A function that neither returns a pointer nor is ever called is
		// not worth a dry-run slot.
		if !sum.PointerReturn && f.FanIn == 0 {
			continue
		}
		if c.Score > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry < out[j].Entry
	})
	return out
}
