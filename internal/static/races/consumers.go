package races

import (
	"fmt"
	"sort"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// eventPCs returns the pcs the sanitizer runtime will see for the access at
// pc: the access pc itself, plus the preceding SANCK's pc for EMBSAN-C
// builds (compile-time probe events carry the check's pc, not the access's).
func (r *Result) eventPCs(pc uint32) []uint32 {
	pcs := []uint32{pc}
	if in, ok := r.An.InstAt(pc - 4); ok && in.Op == isa.OpSANCK {
		pcs = append(pcs, pc-4)
	}
	return pcs
}

// SitePriorities builds the KCSAN arming-weight map: accesses of
// unprotected/mixed objects get the boost weight, accesses of proven
// always-protected or hart-local objects get weight 0 (never armed).
// Unresolved accesses stay at the default weight 1 (absent from the map).
// The map is applied in guided deployments regardless of elision mode, so
// elide-on and elide-off campaigns arm identically.
func (r *Result) SitePriorities(boost uint8) map[uint32]uint8 {
	if boost == 0 {
		boost = DefaultBoost
	}
	prio := map[uint32]uint8{}
	for _, o := range r.Objects {
		var w uint8
		switch o.Class {
		case ClassRacy:
			w = boost
		case ClassProtected, ClassHartLocal:
			w = 0
		default:
			continue
		}
		for _, ai := range o.Accesses {
			for _, pc := range r.eventPCs(r.Accesses[ai].PC) {
				prio[pc] = w
			}
		}
	}
	return prio
}

// Elisions returns the accesses safe to skip KCSAN processing outright
// (including the cross-hart observation phase), as link-metadata records
// plus the event-pc set the runtime keys its skip table on.
//
// Always-protected objects qualify unconditionally: mutual exclusion makes
// temporal overlap with any resolved access impossible (unresolved-pointer
// aliasing is an assumed-out boundary, checked empirically by the elide
// byte-identity oracle). Hart-local objects additionally require that no
// unresolved access can execute on a different hart than the object's —
// otherwise an aliasing watchpoint armed elsewhere could go unobserved.
func (r *Result) Elisions() ([]kasm.RaceElision, []uint32) {
	var recs []kasm.RaceElision
	var pcs []uint32
	for _, o := range r.Objects {
		if !r.elidable(o) {
			continue
		}
		for _, ai := range o.Accesses {
			acc := &r.Accesses[ai]
			recs = append(recs, kasm.RaceElision{
				Site: acc.PC, Kind: o.Class.String(), Object: o.Name,
			})
			pcs = append(pcs, r.eventPCs(acc.PC)...)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Site < recs[j].Site })
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return recs, pcs
}

func (r *Result) elidable(o *Object) bool {
	switch o.Class {
	case ClassProtected:
		return true
	case ClassHartLocal:
		if len(o.Accesses) == 0 {
			return false
		}
		objHarts := map[int]bool{}
		for _, ai := range o.Accesses {
			for _, h := range r.Accesses[ai].Harts {
				objHarts[h] = true
			}
		}
		for _, h := range r.UnresolvedHarts {
			if h == -1 || !objHarts[h] {
				return false
			}
		}
		return true
	}
	return false
}

// Stats summarises the analysis for audits and lint output.
type Stats struct {
	Objects    int
	Protected  int
	HartLocal  int
	Racy       int
	Accesses   int
	Unresolved int
	Pairs      int
	Widened    int
}

// Stats computes summary counts over the result.
func (r *Result) Stats() Stats {
	s := Stats{
		Objects:    len(r.Objects),
		Accesses:   len(r.Accesses),
		Unresolved: r.Unresolved,
		Pairs:      len(r.Pairs),
		Widened:    len(r.Widened),
	}
	for _, o := range r.Objects {
		switch o.Class {
		case ClassProtected:
			s.Protected++
		case ClassHartLocal:
			s.HartLocal++
		case ClassRacy:
			s.Racy++
		}
	}
	return s
}

// DescribePair renders one candidate race pair with symbol xrefs.
func (r *Result) DescribePair(p Pair) string {
	o := r.Objects[p.Object]
	return fmt.Sprintf("%s: %s <-> %s", o.Name, r.describeAccess(p.A, o), r.describeAccess(p.B, o))
}

func (r *Result) describeAccess(idx int, o *Object) string {
	acc := &r.Accesses[idx]
	rw := "read"
	if acc.Write {
		rw = "write"
	}
	off := "+?"
	if acc.Off != OffUnknown {
		off = fmt.Sprintf("+%#x", acc.Off)
	}
	return fmt.Sprintf("%s%s @ %#x (%s)", rw, off, acc.PC, acc.Func)
}

// Audit re-derives the lockset proofs and checks every recorded race
// elision against them: the analysis must be deterministic across runs and
// every metadata record must still be provable. Returns the re-derived
// result and the first inconsistency found.
func Audit(r *Result, again *Result, meta []kasm.RaceElision) error {
	recs, _ := r.Elisions()
	recs2, _ := again.Elisions()
	if len(recs) != len(recs2) {
		return fmt.Errorf("races: nondeterministic analysis: %d vs %d elisions", len(recs), len(recs2))
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			return fmt.Errorf("races: nondeterministic analysis at site %#x", recs[i].Site)
		}
	}
	derived := map[uint32]kasm.RaceElision{}
	for _, e := range recs {
		derived[e.Site] = e
	}
	for _, e := range meta {
		d, ok := derived[e.Site]
		if !ok {
			return fmt.Errorf("races: recorded elision at %#x (%s %s) is not re-derivable", e.Site, e.Kind, e.Object)
		}
		if d != e {
			return fmt.Errorf("races: recorded elision at %#x disagrees with proof: have %s %s, want %s %s",
				e.Site, e.Kind, e.Object, d.Kind, d.Object)
		}
	}
	return nil
}
