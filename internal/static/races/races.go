// Package races is the interprocedural lockset and shared-state analysis
// over the recovered binary (PR 2's internal/static CFGs). It identifies
// synchronization primitives from instruction patterns — the EVA32 spinlock
// idiom is an AMOSWAPW exchanging a nonzero token with a branch on the old
// value; the same pattern against a constant global covers irq-mask and
// scheduler-off words — runs a forward must-lockset fixpoint per basic
// block (meet = intersection, call-edge propagation with bounded context,
// iteration caps as the widening surrogate on loops), and classifies every
// shared-memory access as always-protected, hart-local or unprotected/
// mixed. Candidate race pairs (write-write and read-write on overlapping
// intervals with disjoint locksets, reachable from different harts) are
// emitted symbol-addressed.
//
// Three consumers sit on top of it: the KCSAN watchpoint priority map
// (emu.Machine.SetRaceSitePriorities — weight 0 at proven-safe sites,
// boosted weights at racy ones), the concurrency-elision record in link
// metadata (kasm.Metadata.RaceElisions, skipped outright by the sanitizer
// runtime), and the `embsan lint -races` audit.
//
// Known unsoundness boundaries (documented in docs/STATIC.md): unresolved
// pointer accesses are never paired and never elided, but they are assumed
// not to alias lock-protected objects; frame slots are assumed
// single-assignment per offset within a function; callees are assumed not
// to write the caller's frame except through passed pointers; indirect
// calls conservatively clobber the lockset.
package races

import (
	"fmt"
	"sort"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// Class is the shared-state classification of one object.
type Class uint8

const (
	ClassUnknown   Class = iota // no resolved accesses
	ClassProtected              // common nonempty lockset, or marked-atomic-only
	ClassHartLocal              // every access provably on one hart
	ClassRacy                   // unprotected or mixed
)

func (c Class) String() string {
	switch c {
	case ClassProtected:
		return "protected"
	case ClassHartLocal:
		return "hart-local"
	case ClassRacy:
		return "racy"
	}
	return "unknown"
}

// DefaultBoost is the arming weight guided deployments give accesses of
// unprotected/mixed objects (proven-safe sites get weight 0, everything
// else keeps the default weight 1).
const DefaultBoost = 8

// Access is one resolved shared-memory access site.
type Access struct {
	PC     uint32
	Func   string
	Object int    // index into Result.Objects
	Off    uint32 // offset within the object; OffUnknown = whole object
	Size   uint32
	Write  bool
	Atomic bool
	Locks  []uint32 // must-held lock word addresses, sorted
	Harts  []int    // hart ids this site can execute on (-1 = unknown)
}

// OffUnknown marks an access whose base object is known but whose offset
// within it is dynamic; it conservatively spans the whole object.
const OffUnknown = ^uint32(0)

// Object is one shared-memory object: a data symbol or a probed heap range.
type Object struct {
	Name     string
	Addr     uint32
	Size     uint32
	Class    Class
	Accesses []int // indices into Result.Accesses
	Lockset  []uint32
}

// Pair is one candidate race: two accesses to overlapping intervals of the
// same object with disjoint locksets, at least one write, not both marked
// atomic, executable on different harts.
type Pair struct {
	Object int
	A, B   int // indices into Result.Accesses, A.PC < B.PC
}

// Options tunes the analysis.
type Options struct {
	// Taint lists probed heap regions treated as shared objects.
	Taint []kasm.AddrRange
	// Rounds bounds the interprocedural context propagation (default 4).
	Rounds int
	// MaxBlockIters caps the per-function block fixpoint; on overflow
	// (irreducible or adversarial CFGs) the function degrades to the empty
	// lockset — the widening surrogate guaranteeing termination.
	MaxBlockIters int
}

// Result is the full lockset and shared-state analysis of one image.
type Result struct {
	An       *static.Analysis
	Accesses []Access
	Objects  []*Object
	Pairs    []Pair

	// Unresolved counts reachable accesses whose target could not be
	// resolved to an object; UnresolvedHarts is the union of hart ids that
	// can execute one (the hart-local elision guard).
	Unresolved      int
	UnresolvedHarts []int

	// UnknownSpawn is set when a task-spawn hypercall's entry PC did not
	// resolve: hart-locality can then never be proven.
	UnknownSpawn bool

	// Widened lists functions whose block fixpoint hit the iteration cap
	// and degraded to the empty lockset.
	Widened []string
}

// ---- abstract values (linear per-function value tracking) ----

type vkind uint8

const (
	vUnk vkind = iota
	vConst
	vArg // incoming a0 + offset
	vSP  // stack pointer + offset
)

type aval struct {
	kind vkind
	off  int32 // vConst: absolute address; vArg/vSP: offset from base
	dyn  bool  // a dynamic amount was added; base preserved, offset not
}

func (v aval) add(c int32) aval {
	if v.kind == vUnk {
		return v
	}
	v.off += c
	return v
}

func avalEq(a, b aval) bool { return a == b }

// vstate is the per-point tracker state: registers plus frame slots.
type vstate struct {
	regs  [isa.NumRegs]aval
	slots map[int32]aval
}

func (s *vstate) clone() *vstate {
	n := &vstate{regs: s.regs}
	if s.slots != nil {
		n.slots = make(map[int32]aval, len(s.slots))
		for k, v := range s.slots {
			n.slots[k] = v
		}
	}
	return n
}

// meet intersects two states: disagreeing registers and slots go unknown.
// Reports whether the receiver changed.
func (s *vstate) meet(o *vstate) bool {
	changed := false
	for i := range s.regs {
		if s.regs[i].kind != vUnk && !avalEq(s.regs[i], o.regs[i]) {
			s.regs[i] = aval{}
			changed = true
		}
	}
	for k, v := range s.slots {
		ov, ok := o.slots[k]
		if !ok || !avalEq(v, ov) {
			delete(s.slots, k)
			changed = true
		}
	}
	return changed
}

// ---- lockset states ----

// Lock identities are uint64 keys: a resolved lock word address, or argLock
// for "the lock word the function's first argument points at".
const argLock = uint64(1) << 33

type lockset map[uint64]bool

func (l lockset) clone() lockset {
	n := make(lockset, len(l))
	for k := range l {
		n[k] = true
	}
	return n
}

func locksetEq(a, b lockset) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// lstate is the relative must-lockset at a program point: locks certainly
// acquired since function entry (plus) and entry locks possibly released
// (minus). clobber marks an unknown release — every entry lock is lost.
type lstate struct {
	plus    lockset
	minus   lockset
	clobber bool
}

func newLstate() *lstate { return &lstate{plus: lockset{}, minus: lockset{}} }

func (s *lstate) clone() *lstate {
	return &lstate{plus: s.plus.clone(), minus: s.minus.clone(), clobber: s.clobber}
}

// meet is the must-analysis join: plus = intersection (held on all paths),
// minus = union (released on any path). Reports change.
func (s *lstate) meet(o *lstate) bool {
	changed := false
	for k := range s.plus {
		if !o.plus[k] {
			delete(s.plus, k)
			changed = true
		}
	}
	for k := range o.minus {
		if !s.minus[k] {
			s.minus[k] = true
			changed = true
		}
	}
	if o.clobber && !s.clobber {
		s.clobber = true
		changed = true
	}
	return changed
}

func (s *lstate) acquire(id uint64) {
	if id == 0 {
		return // unresolved lock: must-analysis cannot add it
	}
	s.plus[id] = true
	delete(s.minus, id)
}

func (s *lstate) release(id uint64) {
	if id == 0 {
		// Unknown release: conservatively drop everything.
		s.plus = lockset{}
		s.clobber = true
		return
	}
	delete(s.plus, id)
	s.minus[id] = true
}

// ---- per-instruction facts ----

type factKind uint8

const (
	factNone factKind = iota
	factAcquire
	factRelease
	factCall     // direct call; lock = callee entry, arg = resolved a0
	factIndirect // indirect call: clobbers the lockset
	factAccess
	factSpawn
)

type fact struct {
	kind   factKind
	lock   uint64 // acquire/release lock id (0 = unresolved), or callee entry
	arg    aval   // resolved a0 at a call/spawn site
	spawn  aval   // resolved a1 (entry pc) at a spawn site
	target aval   // access target
	size   uint32
	write  bool
	atomic bool
}

// ---- per-function analysis state ----

type funcInfo struct {
	f     *static.Func
	insts []instRef // instruction pcs in address order
	facts map[uint32]fact

	// Interprocedural context (bounded rounds).
	entryLS  lockset // absolute lockset on entry; nil = TOP (not yet seeded)
	argVal   aval    // incoming a0 binding; argTop until first call site seen
	argTop   bool
	argMulti bool // call sites disagree: a0 unknown

	// Summary delta: net effect of a call to this function.
	delta lstate

	ctx     uint32 // context bits (bit 0 = boot hart, bit i+1 = spawn i)
	widened bool
}

type instRef struct {
	pc uint32
	in isa.Inst
}

// Analyze runs the lockset and shared-state analysis over an.
func Analyze(an *static.Analysis, opts Options) *Result {
	if opts.Rounds <= 0 {
		opts.Rounds = 4
	}
	r := &Result{An: an}
	a := &analyzer{an: an, opts: opts, res: r, infos: map[uint32]*funcInfo{}}
	a.collectFuncs()
	a.buildObjects()
	a.assignContexts()
	a.fixpoint()
	a.collectAccesses()
	a.classify()
	return r
}

type analyzer struct {
	an    *static.Analysis
	opts  Options
	res   *Result
	infos map[uint32]*funcInfo
	order []*funcInfo

	objects []*Object
	objIdx  map[string]int

	spawnEntries []uint32       // resolved task entry pcs, sorted
	spawnHarts   map[uint32]int // task entry -> const hart id (-1 unknown)
}

func (a *analyzer) info(entry uint32) *funcInfo {
	fi := a.infos[entry]
	return fi
}

func (a *analyzer) collectFuncs() {
	for _, f := range a.an.Funcs {
		if !a.an.FuncReachable(f.Entry) {
			continue
		}
		fi := &funcInfo{f: f, facts: map[uint32]fact{}, argTop: true, delta: *newLstate()}
		for pc := f.Entry; pc < f.End; pc += 4 {
			if in, ok := a.an.InstAt(pc); ok {
				fi.insts = append(fi.insts, instRef{pc: pc, in: in})
			}
		}
		a.infos[f.Entry] = fi
		a.order = append(a.order, fi)
	}
}

// ---- object table ----

func (a *analyzer) buildObjects() {
	a.objIdx = map[string]int{}
	img := a.an.Image
	for _, s := range img.Symbols {
		if s.Kind != kasm.SymObject || s.Size == 0 {
			continue
		}
		a.addObject(&Object{Name: s.Name, Addr: s.Addr, Size: s.Size})
	}
	for _, t := range a.opts.Taint {
		if t.End <= t.Start {
			continue
		}
		a.addObject(&Object{
			Name: fmt.Sprintf("heap[%#x..%#x]", t.Start, t.End),
			Addr: t.Start, Size: t.End - t.Start,
		})
	}
	sort.Slice(a.objects, func(i, j int) bool { return a.objects[i].Addr < a.objects[j].Addr })
	for i, o := range a.objects {
		a.objIdx[o.Name] = i
	}
	a.res.Objects = a.objects
}

func (a *analyzer) addObject(o *Object) {
	if _, dup := a.objIdx[o.Name]; dup {
		return
	}
	a.objIdx[o.Name] = len(a.objects)
	a.objects = append(a.objects, o)
}

// objectAt maps an absolute address to the object containing it.
func (a *analyzer) objectAt(addr uint32) (int, bool) {
	lo, hi := 0, len(a.objects)
	for lo < hi {
		mid := (lo + hi) / 2
		o := a.objects[mid]
		if addr < o.Addr {
			hi = mid
		} else if addr >= o.Addr+o.Size {
			lo = mid + 1
		} else {
			return mid, true
		}
	}
	return 0, false
}

// ---- contexts (hart reachability) ----

// assignContexts finds task-spawn sites, then BFSes the call graph from the
// boot roots (image entry + indirect targets) and from each spawned task
// entry, tagging every function with the execution contexts it can run in.
func (a *analyzer) assignContexts() {
	a.spawnHarts = map[uint32]int{}
	// A first linear value pass per function resolves HCALL spawn operands;
	// the full flow-sensitive pass runs later, but spawn sites in this
	// codebase materialize their operands immediately before the hypercall.
	for _, fi := range a.order {
		st := entryState()
		for _, ir := range fi.insts {
			if ir.in.Op == isa.OpHCALL && ir.in.Imm == isa.HcallSpawn {
				entry := st.regs[isa.RegA1]
				hart := st.regs[isa.RegA0]
				if entry.kind == vConst && !entry.dyn {
					e := uint32(entry.off)
					if _, ok := a.spawnHarts[e]; !ok {
						a.spawnHarts[e] = -1
					}
					if hart.kind == vConst && !hart.dyn {
						a.spawnHarts[e] = int(int32(hart.off))
					}
				} else {
					a.res.UnknownSpawn = true
				}
			}
			stepValue(st, ir.pc, ir.in)
		}
	}
	for e := range a.spawnHarts {
		a.spawnEntries = append(a.spawnEntries, e)
	}
	sort.Slice(a.spawnEntries, func(i, j int) bool { return a.spawnEntries[i] < a.spawnEntries[j] })

	spawnSet := map[uint32]bool{}
	for _, e := range a.spawnEntries {
		spawnSet[e] = true
	}
	var bootRoots []uint32
	if f, ok := a.an.FuncContaining(a.an.Image.Entry); ok {
		bootRoots = append(bootRoots, f.Entry)
	}
	for _, t := range a.an.IndirectTargets() {
		if f, ok := a.an.FuncAt(t); ok && !spawnSet[f.Entry] {
			bootRoots = append(bootRoots, f.Entry)
		}
	}
	a.mark(bootRoots, 1)
	for i, e := range a.spawnEntries {
		bit := uint32(2) << uint(i%30)
		a.mark([]uint32{e}, bit)
	}
}

func (a *analyzer) mark(roots []uint32, bit uint32) {
	work := append([]uint32(nil), roots...)
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		fi := a.infos[e]
		if fi == nil || fi.ctx&bit != 0 {
			continue
		}
		fi.ctx |= bit
		work = append(work, fi.f.Callees...)
	}
}

// hartsOf translates a context bitmask into the set of hart ids it can run
// on (-1 = unknown).
func (a *analyzer) hartsOf(ctx uint32) []int {
	set := map[int]bool{}
	if ctx&1 != 0 {
		set[0] = true
	}
	for i, e := range a.spawnEntries {
		if ctx&(uint32(2)<<uint(i%30)) != 0 {
			set[a.spawnHarts[e]] = true
		}
	}
	if a.res.UnknownSpawn {
		set[-1] = true
	}
	ids := make([]int, 0, len(set))
	for h := range set {
		ids = append(ids, h)
	}
	sort.Ints(ids)
	return ids
}

// ---- value tracking (flow-sensitive, per function) ----

func entryState() *vstate {
	st := &vstate{slots: map[int32]aval{}}
	st.regs[isa.RegZero] = aval{kind: vConst}
	st.regs[isa.RegA0] = aval{kind: vArg}
	st.regs[isa.RegSP] = aval{kind: vSP}
	return st
}

func setReg(st *vstate, rd uint8, v aval) {
	if rd == isa.RegZero {
		return
	}
	st.regs[rd] = v
}

// stepValue advances the value state over one instruction.
func stepValue(st *vstate, pc uint32, in isa.Inst) {
	v := func(r uint8) aval { return st.regs[r] }
	switch in.Op {
	case isa.OpLUI:
		setReg(st, in.Rd, aval{kind: vConst, off: in.Imm << 12})
	case isa.OpAUIPC:
		setReg(st, in.Rd, aval{kind: vConst, off: int32(pc) + in.Imm<<12})
	case isa.OpADDI:
		setReg(st, in.Rd, v(in.Rs1).add(in.Imm))
	case isa.OpADD:
		a, b := v(in.Rs1), v(in.Rs2)
		switch {
		case a.kind == vConst && !a.dyn && b.kind == vConst && !b.dyn:
			setReg(st, in.Rd, aval{kind: vConst, off: a.off + b.off})
		case a.kind == vConst && !a.dyn && b.kind != vUnk:
			setReg(st, in.Rd, b.add(a.off))
		case b.kind == vConst && !b.dyn && a.kind != vUnk:
			setReg(st, in.Rd, a.add(b.off))
		case a.kind == vConst || a.kind == vArg:
			// base + dynamic amount: object known, offset not. SP-relative
			// bases lose entirely (dynamic stack addressing).
			setReg(st, in.Rd, aval{kind: a.kind, off: a.off, dyn: true})
		case b.kind == vConst || b.kind == vArg:
			setReg(st, in.Rd, aval{kind: b.kind, off: b.off, dyn: true})
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpSUB:
		a, b := v(in.Rs1), v(in.Rs2)
		if b.kind == vConst && !b.dyn && a.kind != vUnk {
			setReg(st, in.Rd, a.add(-b.off))
		} else {
			setReg(st, in.Rd, aval{})
		}
	case isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI,
		isa.OpSLTI, isa.OpSLTIU:
		a := v(in.Rs1)
		if a.kind == vConst && !a.dyn {
			setReg(st, in.Rd, aval{kind: vConst, off: constALU(in.Op, a.off, in.Imm)})
		} else {
			setReg(st, in.Rd, aval{})
		}
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLRW:
		base := v(in.Rs1)
		if base.kind == vSP && !base.dyn && in.Op == isa.OpLW {
			if sv, ok := st.slots[base.off+in.Imm]; ok {
				setReg(st, in.Rd, sv)
				return
			}
		}
		setReg(st, in.Rd, aval{})
	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSCW:
		base := v(in.Rs1)
		if base.kind == vSP && !base.dyn && in.Op == isa.OpSW {
			st.slots[base.off+in.Imm] = v(in.Rs2)
		}
		if in.Op == isa.OpSCW {
			setReg(st, in.Rd, aval{})
		}
	case isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW:
		setReg(st, in.Rd, aval{})
	case isa.OpJAL:
		if in.Rd == isa.RegRA {
			clobberCall(st)
		}
	case isa.OpJALR:
		if !(in.Rd == isa.RegZero && in.Rs1 == isa.RegRA) {
			clobberCall(st)
		}
	case isa.OpCSRR:
		setReg(st, in.Rd, aval{})
	default:
		// Remaining ALU ops: result unknown.
		switch isa.ClassOf(in.Op) {
		case isa.ClassALU:
			setReg(st, in.Rd, aval{})
		}
	}
}

func constALU(op isa.Op, a, imm int32) int32 {
	switch op {
	case isa.OpANDI:
		return a & imm
	case isa.OpORI:
		return a | imm
	case isa.OpXORI:
		return a ^ imm
	case isa.OpSLLI:
		return a << uint(imm&31)
	case isa.OpSRLI:
		return int32(uint32(a) >> uint(imm&31))
	case isa.OpSRAI:
		return a >> uint(imm&31)
	case isa.OpSLTI:
		if a < imm {
			return 1
		}
		return 0
	case isa.OpSLTIU:
		if uint32(a) < uint32(imm) {
			return 1
		}
		return 0
	}
	return 0
}

// clobberCall applies the call-clobber convention: ra, a0–a7, t0, t1 are
// caller-saved; sp and the k-registers survive. Frame slots survive —
// callees do not write the caller's frame (documented assumption).
func clobberCall(st *vstate) {
	for _, r := range []uint8{isa.RegRA, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3,
		isa.RegA4, isa.RegA5, isa.RegA6, isa.RegA7, isa.RegT0, isa.RegT1} {
		st.regs[r] = aval{}
	}
}

// valueFixpoint computes per-block entry value states for fi.
func (a *analyzer) valueFixpoint(fi *funcInfo) map[uint32]*vstate {
	blocks := fi.f.Blocks
	if len(blocks) == 0 {
		return nil
	}
	in := map[uint32]*vstate{blocks[0].Start: entryState()}
	cap := a.opts.MaxBlockIters
	if cap <= 0 {
		cap = 4*len(blocks) + 64
	}
	work := []uint32{blocks[0].Start}
	blkIdx := map[uint32]*static.Block{}
	for i := range blocks {
		blkIdx[blocks[i].Start] = &blocks[i]
	}
	for iter := 0; len(work) > 0 && iter < cap; iter++ {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		blk := blkIdx[start]
		if blk == nil || in[start] == nil {
			continue
		}
		st := in[start].clone()
		for pc := blk.Start; pc < blk.End; pc += 4 {
			if inst, ok := a.an.InstAt(pc); ok {
				stepValue(st, pc, inst)
			}
		}
		for _, succ := range blk.Succs {
			if cur, ok := in[succ]; !ok {
				in[succ] = st.clone()
				work = append(work, succ)
			} else if cur.meet(st) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// ---- fact extraction ----

// extractFacts walks fi with stabilized value states and records the
// lockset-relevant fact at each instruction.
func (a *analyzer) extractFacts(fi *funcInfo) {
	in := a.valueFixpoint(fi)
	fi.facts = map[uint32]fact{}
	for bi := range fi.f.Blocks {
		blk := &fi.f.Blocks[bi]
		st, ok := in[blk.Start]
		if !ok {
			continue
		}
		st = st.clone()
		for pc := blk.Start; pc < blk.End; pc += 4 {
			inst, ok := a.an.InstAt(pc)
			if !ok {
				continue
			}
			if f := a.factAt(fi, st, pc, inst); f.kind != factNone {
				fi.facts[pc] = f
			}
			stepValue(st, pc, inst)
		}
	}
}

// lockIDOf translates an abstract lock-word address into a lock identity.
func lockIDOf(v aval) uint64 {
	switch {
	case v.kind == vConst && !v.dyn:
		return uint64(uint32(v.off))
	case v.kind == vArg && !v.dyn && v.off == 0:
		return argLock
	}
	return 0
}

func (a *analyzer) factAt(fi *funcInfo, st *vstate, pc uint32, in isa.Inst) fact {
	switch in.Op {
	case isa.OpAMOSWAPW:
		// Spinlock primitive recognition. Release: store the zero register
		// into the lock word. Acquire: exchange a nonzero token and branch
		// on the old value within the next few instructions (the spin/irq
		// retry shapes both match).
		if in.Rd == isa.RegZero && in.Rs2 == isa.RegZero {
			return fact{kind: factRelease, lock: lockIDOf(st.regs[in.Rs1])}
		}
		if in.Rd != isa.RegZero && in.Rs2 != isa.RegZero && a.branchesOn(fi, pc, in.Rd) {
			return fact{kind: factAcquire, lock: lockIDOf(st.regs[in.Rs1])}
		}
		return fact{kind: factAccess, target: st.regs[in.Rs1], size: 4, write: true, atomic: true}
	case isa.OpAMOADDW, isa.OpAMOORW, isa.OpAMOANDW:
		return fact{kind: factAccess, target: st.regs[in.Rs1], size: 4, write: true, atomic: true}
	case isa.OpLRW:
		return fact{kind: factAccess, target: st.regs[in.Rs1], size: 4, atomic: true}
	case isa.OpSCW:
		return fact{kind: factAccess, target: st.regs[in.Rs1], size: 4, write: true, atomic: true}
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		return fact{kind: factAccess, target: st.regs[in.Rs1].add(in.Imm),
			size: isa.AccessSize(in.Op)}
	case isa.OpSB, isa.OpSH, isa.OpSW:
		return fact{kind: factAccess, target: st.regs[in.Rs1].add(in.Imm),
			size: isa.AccessSize(in.Op), write: true}
	case isa.OpJAL:
		if in.Rd != isa.RegRA {
			return fact{}
		}
		target := uint32(int64(pc) + int64(in.Imm)*4)
		if _, ok := a.infos[target]; ok {
			return fact{kind: factCall, lock: uint64(target), arg: st.regs[isa.RegA0]}
		}
		return fact{kind: factIndirect}
	case isa.OpJALR:
		if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
			return fact{} // return
		}
		return fact{kind: factIndirect}
	case isa.OpHCALL:
		if in.Imm == isa.HcallSpawn {
			return fact{kind: factSpawn, arg: st.regs[isa.RegA0], spawn: st.regs[isa.RegA1]}
		}
	}
	return fact{}
}

// branchesOn reports whether rd feeds a BEQ/BNE-against-zero within the
// next three instructions — the spin/irq retry test.
func (a *analyzer) branchesOn(fi *funcInfo, pc uint32, rd uint8) bool {
	for off := uint32(4); off <= 12; off += 4 {
		in, ok := a.an.InstAt(pc + off)
		if !ok || pc+off >= fi.f.End {
			return false
		}
		if in.Op == isa.OpBEQ || in.Op == isa.OpBNE {
			if (in.Rs1 == rd && in.Rs2 == isa.RegZero) || (in.Rs1 == isa.RegZero && in.Rs2 == rd) {
				return true
			}
		}
	}
	return false
}

// ---- lockset fixpoint ----

// substLock resolves a callee-relative lock id in a caller context: the
// callee's argLock becomes whatever the caller passed in a0.
func substLock(id uint64, arg aval) uint64 {
	if id != argLock {
		return id
	}
	return lockIDOf(arg)
}

// applyDelta applies a callee's summary delta to the caller's state,
// substituting the callee's argument lock.
func applyDelta(st *lstate, d *lstate, arg aval) {
	if d.clobber {
		st.release(0)
	}
	for k := range d.minus {
		st.release(substLock(k, arg))
	}
	for k := range d.plus {
		st.acquire(substLock(k, arg))
	}
}

// lockFixpoint runs the per-block must-lockset analysis over fi's recorded
// facts and returns per-block entry lstates. The iteration cap degrades the
// function to empty locksets — termination on irreducible CFGs.
func (a *analyzer) lockFixpoint(fi *funcInfo) map[uint32]*lstate {
	blocks := fi.f.Blocks
	if len(blocks) == 0 {
		return nil
	}
	in := map[uint32]*lstate{blocks[0].Start: newLstate()}
	blkIdx := map[uint32]*static.Block{}
	for i := range blocks {
		blkIdx[blocks[i].Start] = &blocks[i]
	}
	capIters := a.opts.MaxBlockIters
	if capIters <= 0 {
		capIters = 4*len(blocks) + 64
	}
	work := []uint32{blocks[0].Start}
	iters := 0
	for len(work) > 0 {
		if iters++; iters > capIters {
			// Widening surrogate: degrade every block to the empty relative
			// lockset with a full clobber — sound (fewer must-held locks)
			// and trivially a fixpoint.
			fi.widened = true
			for start := range in {
				in[start] = &lstate{plus: lockset{}, minus: lockset{}, clobber: true}
			}
			break
		}
		start := work[len(work)-1]
		work = work[:len(work)-1]
		blk := blkIdx[start]
		if blk == nil || in[start] == nil {
			continue
		}
		st := in[start].clone()
		a.stepLocksBlock(fi, blk, st, nil)
		for _, succ := range blk.Succs {
			if cur, ok := in[succ]; !ok {
				in[succ] = st.clone()
				work = append(work, succ)
			} else if cur.meet(st) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// stepLocksBlock advances st across blk's facts; when visit is non-nil it is
// called with the state before each instruction.
func (a *analyzer) stepLocksBlock(fi *funcInfo, blk *static.Block, st *lstate, visit func(pc uint32, f fact, st *lstate)) {
	for pc := blk.Start; pc < blk.End; pc += 4 {
		f, ok := fi.facts[pc]
		if !ok {
			continue
		}
		if visit != nil {
			visit(pc, f, st)
		}
		switch f.kind {
		case factAcquire:
			st.acquire(f.lock)
		case factRelease:
			st.release(f.lock)
		case factCall:
			if callee := a.infos[uint32(f.lock)]; callee != nil {
				applyDelta(st, &callee.delta, f.arg)
			}
		case factIndirect:
			// Unknown callee: it may release anything.
			st.release(0)
		}
	}
}

// absolute resolves a relative lstate against fi's entry lockset and
// argument binding into the set of concrete lock word addresses must-held.
func (a *analyzer) absolute(fi *funcInfo, st *lstate) []uint32 {
	held := map[uint32]bool{}
	if !st.clobber && fi.entryLS != nil {
		for k := range fi.entryLS {
			if k < 1<<32 && !st.minus[k] {
				held[uint32(k)] = true
			}
		}
	}
	for k := range st.plus {
		k = substLockBind(k, fi)
		if k != 0 && k < 1<<32 {
			held[uint32(k)] = true
		}
	}
	out := make([]uint32, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// substLockBind resolves fi's own argLock through its interprocedural
// argument binding (the unique constant every call site passes, if any).
func substLockBind(id uint64, fi *funcInfo) uint64 {
	if id != argLock {
		return id
	}
	if !fi.argTop && !fi.argMulti {
		return lockIDOf(fi.argVal)
	}
	return 0
}

// fixpoint runs the bounded-context interprocedural rounds: each round
// recomputes facts and summaries, then propagates call-site locksets and
// argument bindings into callees.
func (a *analyzer) fixpoint() {
	// Seed the roots: the boot entry, indirect targets and spawned tasks
	// all start with no locks held.
	for _, fi := range a.order {
		if fi.ctx != 0 {
			continue
		}
	}
	seed := func(entry uint32) {
		if fi := a.infos[entry]; fi != nil {
			fi.entryLS = lockset{}
			fi.argTop = false
			fi.argMulti = true
		}
	}
	if f, ok := a.an.FuncContaining(a.an.Image.Entry); ok {
		seed(f.Entry)
	}
	for _, t := range a.an.IndirectTargets() {
		if f, ok := a.an.FuncAt(t); ok {
			seed(f.Entry)
		}
	}
	for _, e := range a.spawnEntries {
		seed(e)
	}

	for round := 0; round < a.opts.Rounds; round++ {
		for _, fi := range a.order {
			a.extractFacts(fi)
			in := a.lockFixpoint(fi)
			// Summary delta: meet of the states at every return site.
			var exit *lstate
			blkIdx := map[uint32]*static.Block{}
			for i := range fi.f.Blocks {
				blkIdx[fi.f.Blocks[i].Start] = &fi.f.Blocks[i]
			}
			for _, blk := range fi.f.Blocks {
				st, ok := in[blk.Start]
				if !ok {
					continue
				}
				st = st.clone()
				endsInRet := false
				a.stepLocksBlock(fi, &blk, st, nil)
				if inst, ok := a.an.InstAt(blk.End - 4); ok &&
					inst.Op == isa.OpJALR && inst.Rd == isa.RegZero && inst.Rs1 == isa.RegRA {
					endsInRet = true
				}
				if !endsInRet {
					continue
				}
				if exit == nil {
					exit = st
				} else {
					exit.meet(st)
				}
			}
			if exit != nil {
				fi.delta = *exit
			}
			// Call-edge propagation: push this function's context into its
			// callees (entry lockset = intersection over call sites, arg
			// binding = unique value or unknown).
			for _, blk := range fi.f.Blocks {
				st, ok := in[blk.Start]
				if !ok {
					continue
				}
				st = st.clone()
				a.stepLocksBlock(fi, &blk, st, func(pc uint32, f fact, cur *lstate) {
					if f.kind != factCall {
						return
					}
					callee := a.infos[uint32(f.lock)]
					if callee == nil || fi.entryLS == nil {
						return
					}
					abs := a.absolute(fi, cur)
					ls := lockset{}
					for _, addr := range abs {
						ls[uint64(addr)] = true
					}
					if callee.entryLS == nil {
						callee.entryLS = ls
					} else {
						for k := range callee.entryLS {
							if !ls[k] {
								delete(callee.entryLS, k)
							}
						}
					}
					// Argument binding: resolve the caller's a0 through the
					// caller's own binding first.
					av := f.arg
					if av.kind == vArg {
						if !fi.argTop && !fi.argMulti && fi.argVal.kind == vConst && !av.dyn {
							av = aval{kind: vConst, off: fi.argVal.off + av.off, dyn: fi.argVal.dyn}
						} else {
							av = aval{}
						}
					}
					if callee.argTop {
						callee.argTop = false
						callee.argVal = av
					} else if !avalEq(callee.argVal, av) {
						callee.argMulti = true
					}
				})
			}
		}
	}
	for _, fi := range a.order {
		if fi.widened {
			a.res.Widened = append(a.res.Widened, fi.f.Name)
		}
	}
	sort.Strings(a.res.Widened)
}

// ---- access collection ----

func (a *analyzer) collectAccesses() {
	unresolvedHarts := map[int]bool{}
	for _, fi := range a.order {
		in := a.lockFixpoint(fi)
		harts := a.hartsOf(fi.ctx)
		for _, blk := range fi.f.Blocks {
			st, ok := in[blk.Start]
			if !ok {
				continue
			}
			st = st.clone()
			a.stepLocksBlock(fi, &blk, st, func(pc uint32, f fact, cur *lstate) {
				if f.kind != factAccess {
					return
				}
				obj, off, ok := a.resolveTarget(fi, f.target)
				if !ok {
					a.res.Unresolved++
					for _, h := range harts {
						unresolvedHarts[h] = true
					}
					return
				}
				if obj < 0 {
					return // own-frame access: inherently hart-local, not shared state
				}
				locks := a.absolute(fi, cur)
				idx := len(a.res.Accesses)
				a.res.Accesses = append(a.res.Accesses, Access{
					PC: pc, Func: fi.f.Name, Object: obj, Off: off,
					Size: f.size, Write: f.write, Atomic: f.atomic,
					Locks: locks, Harts: harts,
				})
				a.objects[obj].Accesses = append(a.objects[obj].Accesses, idx)
			})
		}
	}
	for h := range unresolvedHarts {
		a.res.UnresolvedHarts = append(a.res.UnresolvedHarts, h)
	}
	sort.Ints(a.res.UnresolvedHarts)
	sort.SliceStable(a.res.Accesses, func(i, j int) bool { return a.res.Accesses[i].PC < a.res.Accesses[j].PC })
	// Re-index objects' access lists after the sort.
	for _, o := range a.objects {
		o.Accesses = o.Accesses[:0]
	}
	for i := range a.res.Accesses {
		acc := &a.res.Accesses[i]
		a.objects[acc.Object].Accesses = append(a.objects[acc.Object].Accesses, i)
	}
}

// resolveTarget maps an abstract address to (object index, offset). An
// SP-relative target returns obj = -1 (own frame, never shared). ok=false
// means unresolved.
func (a *analyzer) resolveTarget(fi *funcInfo, t aval) (obj int, off uint32, ok bool) {
	switch t.kind {
	case vSP:
		return -1, 0, true
	case vConst:
		idx, found := a.objectAt(uint32(t.off))
		if !found {
			// A constant address outside every known object: device windows,
			// text-embedded tables. Not shared state we track.
			return -1, 0, true
		}
		if t.dyn {
			return idx, OffUnknown, true
		}
		return idx, uint32(t.off) - a.objects[idx].Addr, true
	case vArg:
		if fi.argTop || fi.argMulti || fi.argVal.kind != vConst {
			return 0, 0, false
		}
		base := fi.argVal.off + t.off
		idx, found := a.objectAt(uint32(base))
		if !found {
			return 0, 0, false
		}
		if t.dyn || fi.argVal.dyn {
			return idx, OffUnknown, true
		}
		return idx, uint32(base) - a.objects[idx].Addr, true
	}
	return 0, 0, false
}

// ---- classification & pairing ----

// maxPairsPerObject bounds the emitted candidate pairs per object; the count
// of suppressed pairs is visible through the object's class and accesses.
const maxPairsPerObject = 16

func (a *analyzer) classify() {
	for objIdx, o := range a.objects {
		if len(o.Accesses) == 0 {
			o.Class = ClassUnknown
			continue
		}
		allAtomic := true
		harts := map[int]bool{}
		var common []uint32
		first := true
		for _, ai := range o.Accesses {
			acc := &a.res.Accesses[ai]
			if !acc.Atomic {
				allAtomic = false
				if first {
					common = append([]uint32(nil), acc.Locks...)
					first = false
				} else {
					common = intersect(common, acc.Locks)
				}
			}
			for _, h := range acc.Harts {
				harts[h] = true
			}
		}
		switch {
		case allAtomic:
			// Marked-atomic discipline: atomics never arm watchpoints and
			// never conflict with each other.
			o.Class = ClassProtected
		case len(harts) == 1 && !harts[-1]:
			o.Class = ClassHartLocal
		case len(common) > 0:
			o.Class = ClassProtected
			o.Lockset = common
		default:
			o.Class = ClassRacy
			a.emitPairs(objIdx, o)
		}
	}
	sort.Slice(a.res.Pairs, func(i, j int) bool {
		pi, pj := a.res.Pairs[i], a.res.Pairs[j]
		ai, aj := a.res.Accesses[pi.A], a.res.Accesses[pj.A]
		if ai.PC != aj.PC {
			return ai.PC < aj.PC
		}
		return a.res.Accesses[pi.B].PC < a.res.Accesses[pj.B].PC
	})
}

func (a *analyzer) emitPairs(objIdx int, o *Object) {
	n := 0
	for x := 0; x < len(o.Accesses); x++ {
		for y := x + 1; y < len(o.Accesses); y++ {
			ai, bi := o.Accesses[x], o.Accesses[y]
			p, q := &a.res.Accesses[ai], &a.res.Accesses[bi]
			if !p.Write && !q.Write {
				continue
			}
			if p.Atomic && q.Atomic {
				continue
			}
			if !rangesOverlap(p, q, o) {
				continue
			}
			if len(intersect(p.Locks, q.Locks)) > 0 {
				continue
			}
			if !differentHartsPossible(p.Harts, q.Harts) {
				continue
			}
			if n >= maxPairsPerObject {
				return
			}
			n++
			a.res.Pairs = append(a.res.Pairs, Pair{Object: objIdx, A: ai, B: bi})
		}
	}
}

func rangesOverlap(p, q *Access, o *Object) bool {
	ps, pe := accRange(p, o)
	qs, qe := accRange(q, o)
	return ps < qe && qs < pe
}

func accRange(acc *Access, o *Object) (uint32, uint32) {
	if acc.Off == OffUnknown {
		return 0, o.Size
	}
	return acc.Off, acc.Off + acc.Size
}

func intersect(a, b []uint32) []uint32 {
	var out []uint32
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func differentHartsPossible(a, b []int) bool {
	for _, x := range a {
		if x == -1 {
			return true
		}
		for _, y := range b {
			if y == -1 || x != y {
				return true
			}
		}
	}
	return false
}
