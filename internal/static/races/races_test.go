package races_test

import (
	"testing"

	"embsan/internal/guest/elinux"
	"embsan/internal/guest/freertos"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/races"
)

func analyzeImage(t *testing.T, img *kasm.Image) *races.Result {
	t.Helper()
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("static.Analyze: %v", err)
	}
	return races.Analyze(an, races.Options{})
}

func objByName(t *testing.T, r *races.Result, name string) *races.Object {
	t.Helper()
	for _, o := range r.Objects {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("object %q not in result", name)
	return nil
}

// The stock freertos guest is clean: its queue is spinlock-protected, its
// display state is hart-0-only, and its sensor reading is published
// atomically. The analysis must prove all three and emit no pairs.
func TestFreertosClassification(t *testing.T) {
	fw, err := freertos.Build("races-freertos", isa.ArchARM32E, kasm.SanNone)
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeImage(t, fw.Image)

	if c := objByName(t, r, "xSensorQueue").Class; c != races.ClassProtected {
		t.Errorf("xSensorQueue: got %v, want protected", c)
	}
	if c := objByName(t, r, "frame_stat").Class; c != races.ClassHartLocal {
		t.Errorf("frame_stat: got %v, want hart-local", c)
	}
	if c := objByName(t, r, "hr_reading").Class; c != races.ClassProtected {
		t.Errorf("hr_reading (atomic-only): got %v, want protected", c)
	}
	if len(r.Pairs) != 0 {
		for _, p := range r.Pairs {
			t.Logf("unexpected pair: %s", r.DescribePair(p))
		}
		t.Errorf("clean guest produced %d candidate pairs", len(r.Pairs))
	}
	if r.UnknownSpawn {
		t.Error("sensor task spawn did not resolve")
	}
}

// The racy freertos twin shares an unlocked step counter between the
// sensor task (hart 1) and the display service (hart 0): the analysis must
// classify it racy and emit the write-write pair, while everything the
// stock guest proves safe stays proven.
func TestFreertosRacyTwinFlagged(t *testing.T) {
	fw, err := freertos.BuildRacy("races-freertos-racy", isa.ArchARM32E, kasm.SanNone)
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeImage(t, fw.Image)

	if c := objByName(t, r, "step_count").Class; c != races.ClassRacy {
		t.Fatalf("step_count: got %v, want racy", c)
	}
	found := false
	for _, p := range r.Pairs {
		if r.Objects[p.Object].Name == "step_count" {
			found = true
			t.Logf("pair: %s", r.DescribePair(p))
		}
	}
	if !found {
		t.Error("no candidate pair emitted for step_count")
	}
	if c := objByName(t, r, "xSensorQueue").Class; c != races.ClassProtected {
		t.Errorf("xSensorQueue in racy twin: got %v, want protected", c)
	}
}

// The elinux guest with a KindRace bug shares racy_stat between the
// syscall path (hart 0) and a kthread (hart 1) with no locking: the
// analysis must classify it racy and emit a cross-hart pair.
func TestElinuxSeededRaceFlagged(t *testing.T) {
	fw, err := elinux.Build(elinux.Board{
		Name: "races-elinux", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"btrfs_sync_log"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeImage(t, fw.Image)

	if c := objByName(t, r, "racy_stat").Class; c != races.ClassRacy {
		t.Fatalf("racy_stat: got %v, want racy", c)
	}
	crossHart := false
	for _, p := range r.Pairs {
		if r.Objects[p.Object].Name == "racy_stat" {
			crossHart = true
		}
	}
	if !crossHart {
		t.Error("no candidate pair emitted for racy_stat")
	}
}

// Guidance consistency: boosted sites are exactly the racy objects'
// accesses, weight-0 sites are elidable objects' accesses, and the two
// never overlap.
func TestSitePrioritiesDisjoint(t *testing.T) {
	fw, err := elinux.Build(elinux.Board{
		Name: "races-prio", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"btrfs_sync_log"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeImage(t, fw.Image)
	prio := r.SitePriorities(0)
	_, pcs := r.Elisions()
	boosted, zeroed := 0, 0
	for _, w := range prio {
		if w == 0 {
			zeroed++
		} else {
			boosted++
		}
	}
	if boosted == 0 {
		t.Error("no boosted sites despite a seeded race")
	}
	for _, pc := range pcs {
		if w, ok := prio[pc]; !ok || w != 0 {
			t.Errorf("elided pc %#x carries weight %d in the priority map", pc, w)
		}
	}
	if zeroed < len(pcs) {
		t.Errorf("priority map has %d weight-0 sites but elision set has %d", zeroed, len(pcs))
	}
}

// Audit accepts the analysis's own records and rejects planted ones.
func TestAuditRejectsBogusElision(t *testing.T) {
	fw, err := freertos.Build("races-audit", isa.ArchARM32E, kasm.SanNone)
	if err != nil {
		t.Fatal(err)
	}
	an, err := static.Analyze(fw.Image)
	if err != nil {
		t.Fatal(err)
	}
	r := races.Analyze(an, races.Options{})
	again := races.Analyze(an, races.Options{})
	recs, _ := r.Elisions()
	if len(recs) == 0 {
		t.Fatal("no elisions derived")
	}
	if err := races.Audit(r, again, recs); err != nil {
		t.Fatalf("audit rejected the analysis's own records: %v", err)
	}
	bogus := append(append([]kasm.RaceElision(nil), recs...),
		kasm.RaceElision{Site: 0xDEAD, Kind: "protected", Object: "ghost"})
	if err := races.Audit(r, again, bogus); err == nil {
		t.Fatal("audit accepted a planted elision record")
	}
}

// Termination on an irreducible CFG: two mutually-branching loop headers
// entered from distinct paths. The fixpoint must converge (or widen) and
// return, not spin.
func TestLocksetFixpointIrreducibleCFG(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNone})
	b.Global("g_state", 4)
	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.Li(11, 3) // t0 = counter
	b.BNEZ(11, "_start.h2")
	b.Label("_start.h1")
	b.La(12, "g_state")
	b.LW(4, 12, 0)
	b.ADDI(11, 11, -1)
	b.BNEZ(11, "_start.h2")
	b.J("_start.done")
	b.Label("_start.h2")
	b.La(12, "g_state")
	b.SW(11, 12, 0)
	b.ADDI(11, 11, -1)
	b.BNEZ(11, "_start.h1")
	b.Label("_start.done")
	b.HALT()
	img, err := b.Link("irreducible-cfg")
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeImage(t, img)
	if o := objByName(t, r, "g_state"); o.Class != races.ClassHartLocal {
		t.Errorf("g_state: got %v, want hart-local (single-hart image)", o.Class)
	}
}
