package static_test

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// buildMini builds a small firmware with a bump allocator, an instrumented
// counter function, and a dead function — enough structure to exercise
// function recovery, the dataflow summary, ranking, reachability and lint.
func buildMini(t *testing.T, arch isa.Arch, mode kasm.SanitizeMode) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: mode})

	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.Call("kinit")
	b.Li(isa.RegA1, 24)
	b.Call("alloc")
	b.Li(isa.RegA1, 64)
	b.Call("alloc")
	b.Call("touch")
	b.Ready()
	b.HALT()

	b.Func("kinit")
	b.La(isa.RegT0, "heap_next")
	b.La(isa.RegT1, "heap")
	b.SW(isa.RegT1, isa.RegT0, 0)
	b.Ret()

	// Bump allocator: size in a1, pointer out in a0, 16-byte granules.
	b.Func("alloc")
	b.NoSan(func() {
		b.La(isa.RegT0, "heap_next")
		b.LW(isa.RegA0, isa.RegT0, 0)
		b.ADDI(isa.RegT1, isa.RegA1, 15)
		b.SRLI(isa.RegT1, isa.RegT1, 4)
		b.SLLI(isa.RegT1, isa.RegT1, 4)
		b.ADD(isa.RegT1, isa.RegA0, isa.RegT1)
		b.SW(isa.RegT1, isa.RegT0, 0)
	})
	b.Ret()

	b.Func("touch")
	b.La(isa.RegT0, "counter")
	b.LW(isa.RegT1, isa.RegT0, 0)
	b.ADDI(isa.RegT1, isa.RegT1, 1)
	b.SW(isa.RegT1, isa.RegT0, 0)
	b.Ret()

	b.Func("dead")
	b.Li(isa.RegA0, 0)
	b.Ret()

	b.Global("counter", 4)
	b.GlobalRaw("heap_next", 4)
	b.GlobalRaw("heap", 4096)

	img, err := b.Link("static-mini")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func TestAnalyzeRecoversFunctions(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanNone)
	a, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, name := range []string{"_start", "kinit", "alloc", "touch", "dead"} {
		sym, ok := img.Lookup(name)
		if !ok {
			t.Fatalf("symbol %s missing", name)
		}
		f, ok := a.FuncAt(sym.Addr)
		if !ok {
			t.Fatalf("function %s not recovered at %#x", name, sym.Addr)
		}
		if f.Name != name {
			t.Fatalf("function at %#x named %q, want %q", sym.Addr, f.Name, name)
		}
		if len(f.Blocks) == 0 {
			t.Fatalf("function %s has no blocks", name)
		}
		if name != "_start" && len(f.Exits) == 0 {
			t.Fatalf("function %s has no recovered exits", name)
		}
	}

	start, _ := img.Lookup("_start")
	f, _ := a.FuncAt(start.Addr)
	kinit, _ := img.Lookup("kinit")
	alloc, _ := img.Lookup("alloc")
	wantCallees := map[uint32]bool{}
	for _, c := range f.Callees {
		wantCallees[c] = true
	}
	if !wantCallees[kinit.Addr] || !wantCallees[alloc.Addr] {
		t.Fatalf("_start callees %#x missing kinit/alloc", f.Callees)
	}

	af, _ := a.FuncAt(alloc.Addr)
	if af.FanIn != 2 {
		t.Fatalf("alloc fan-in = %d, want 2", af.FanIn)
	}
}

func TestSummaryAllocShaped(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanNone)
	a, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	alloc, _ := img.Lookup("alloc")
	f, _ := a.FuncAt(alloc.Addr)
	sum := a.Summarize(f)
	if !sum.PointerReturn {
		t.Fatalf("alloc summary has no pointer return: %+v", sum)
	}
	if !sum.SizeLike[1] {
		t.Fatalf("alloc summary does not mark a1 size-like: %+v", sum)
	}
	if !sum.AllocShaped() {
		t.Fatalf("alloc summary not alloc-shaped: %+v", sum)
	}

	kinit, _ := img.Lookup("kinit")
	kf, _ := a.FuncAt(kinit.Addr)
	if a.Summarize(kf).AllocShaped() {
		t.Fatalf("kinit wrongly classified alloc-shaped")
	}
}

// TestSummarizeSizeArgMovedBeforeUse pins the provenance fix: a size
// argument copied to a temporary register before the bound compare must
// still be recognised as size-like, whether the compare is a branch or its
// branchless slt form.
func TestSummarizeSizeArgMovedBeforeUse(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNone})
	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.La(isa.RegA0, "limit")
	b.Li(isa.RegA1, 24)
	b.Call("fits")
	b.Ready()
	b.HALT()

	b.Func("fits")
	b.MV(isa.RegT0, isa.RegA1)              // size arg moved away
	b.LW(isa.RegT1, isa.RegA0, 0)           // loaded heap bound
	b.SLTU(isa.RegA4, isa.RegT0, isa.RegT1) // branchless fit test
	b.OR(isa.RegA2, isa.RegA3, isa.RegZero) // or-form move of a3
	b.LW(isa.RegT1, isa.RegA0, 0)
	b.BLTU(isa.RegA2, isa.RegT1, "fits_ok")
	b.Label("fits_ok")
	b.Ret()

	b.GlobalRaw("limit", 4)
	img, err := b.Link("summarize-move")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	a, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	fits, _ := img.Lookup("fits")
	f, _ := a.FuncAt(fits.Addr)
	sum := a.Summarize(f)
	if !sum.SizeLike[1] {
		t.Fatalf("a1 moved through mv lost its size-likeness: %+v", sum)
	}
	if !sum.SizeLike[3] {
		t.Fatalf("a3 moved through or lost its size-likeness: %+v", sum)
	}
	if sum.SizeLike[0] {
		t.Fatalf("pointer arg a0 wrongly marked size-like: %+v", sum)
	}
}

func TestRankAllocCandidatesStripped(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanNone)
	alloc, _ := img.Lookup("alloc")
	stripped := img.Strip()

	a, err := static.Analyze(stripped)
	if err != nil {
		t.Fatalf("analyze stripped: %v", err)
	}
	cands := a.RankAllocCandidates()
	if len(cands) == 0 {
		t.Fatalf("no candidates ranked")
	}
	if cands[0].Entry != alloc.Addr {
		t.Fatalf("top candidate %#x (%s, score %d), want alloc at %#x",
			cands[0].Entry, cands[0].Name, cands[0].Score, alloc.Addr)
	}
	if !cands[0].Shaped {
		t.Fatalf("top candidate not alloc-shaped")
	}

	// Determinism: a second analysis ranks identically.
	a2, _ := static.Analyze(stripped)
	cands2 := a2.RankAllocCandidates()
	if len(cands) != len(cands2) {
		t.Fatalf("candidate count changed between runs: %d vs %d", len(cands), len(cands2))
	}
	for i := range cands {
		if cands[i] != cands2[i] {
			t.Fatalf("candidate %d differs between runs: %+v vs %+v", i, cands[i], cands2[i])
		}
	}
}

func TestReachabilityReport(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanNone)
	a, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	dead, _ := img.Lookup("dead")
	if a.FuncReachable(dead.Addr) {
		t.Fatalf("dead function marked reachable")
	}
	for _, name := range []string{"_start", "kinit", "alloc", "touch"} {
		s, _ := img.Lookup(name)
		if !a.FuncReachable(s.Addr) {
			t.Fatalf("%s not reachable", name)
		}
	}
	r := a.Reach()
	if r.TotalFuncs != 5 || r.ReachableFuncs != 4 {
		t.Fatalf("reach report funcs %d/%d, want 4/5", r.ReachableFuncs, r.TotalFuncs)
	}
	if r.ReachableBlocks == 0 || r.ReachableBlocks >= r.TotalBlocks {
		t.Fatalf("reach report blocks %d/%d not a proper subset", r.ReachableBlocks, r.TotalBlocks)
	}
	if r.ReachableInsts == 0 || r.ReachableInsts > r.TotalInsts {
		t.Fatalf("reach report insts %d/%d inconsistent", r.ReachableInsts, r.TotalInsts)
	}
}

// TestAnalyzeAllFrontends re-runs recovery on the other two frontends: the
// analyzer must decode mips32e (big-endian, rotated opcodes) and x86e
// (XOR-scrambled opcodes) identically.
func TestAnalyzeAllFrontends(t *testing.T) {
	var blocks [3]int
	for arch := isa.Arch(0); arch < isa.NumArchs; arch++ {
		img := buildMini(t, arch, kasm.SanNone)
		a, err := static.Analyze(img)
		if err != nil {
			t.Fatalf("%s: analyze: %v", arch, err)
		}
		r := a.Reach()
		blocks[arch] = r.TotalBlocks
		alloc, _ := img.Lookup("alloc")
		f, ok := a.FuncAt(alloc.Addr)
		if !ok || !a.Summarize(f).AllocShaped() {
			t.Fatalf("%s: alloc not recovered as alloc-shaped", arch)
		}
	}
	if blocks[0] != blocks[1] || blocks[1] != blocks[2] {
		t.Fatalf("block counts differ across frontends: %v", blocks)
	}
}

// buildPIC builds a firmware that dispatches through a self-relative data
// table addressed PC-relatively (auipc+addi) — the position-independent
// idiom of the non-mips toolchains that recovery used to miss entirely:
// the handlers are reached only through the table, never by a direct call.
func buildPIC(t *testing.T, arch isa.Arch) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: arch, Sanitize: kasm.SanNone})

	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.Ready()
	// idx in a1: target = table + table[idx] (mod 2^32).
	b.ANDI(isa.RegA1, isa.RegA1, 1)
	b.SLLI(isa.RegA1, isa.RegA1, 2)
	b.LaPC(isa.RegT0, "handlers")
	b.ADD(isa.RegA1, isa.RegT0, isa.RegA1)
	b.LW(isa.RegA1, isa.RegA1, 0)
	b.ADD(isa.RegA1, isa.RegT0, isa.RegA1)
	b.JALR(isa.RegRA, isa.RegA1, 0)
	b.HALT()

	b.Func("h_one")
	b.Li(isa.RegA0, 1)
	b.Ret()

	b.Func("h_two")
	b.Li(isa.RegA0, 2)
	b.Ret()

	b.DataWordRel("handlers", []string{"h_one", "h_two"})

	img, err := b.Link("pic-" + arch.String())
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

// TestRecoverSelfRelativeTable: handlers referenced only through a
// PC-relative self-relative table must be recovered as reachable function
// entries on every frontend, even from a stripped image.
func TestRecoverSelfRelativeTable(t *testing.T) {
	for arch := isa.Arch(0); arch < isa.NumArchs; arch++ {
		img := buildPIC(t, arch)
		h1, _ := img.Lookup("h_one")
		h2, _ := img.Lookup("h_two")
		a, err := static.Analyze(img.Strip())
		if err != nil {
			t.Fatalf("%s: analyze: %v", arch, err)
		}
		for _, h := range []uint32{h1.Addr, h2.Addr} {
			if _, ok := a.FuncAt(h); !ok {
				t.Fatalf("%s: handler %#x not recovered as a function entry", arch, h)
			}
			if !a.FuncReachable(h) {
				t.Fatalf("%s: handler %#x not reachable", arch, h)
			}
			found := false
			for _, tgt := range a.IndirectTargets() {
				if tgt == h {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: handler %#x missing from indirect targets", arch, h)
			}
		}
	}
}

// TestRecoverAuipcMaterialisation: a code address materialised with
// auipc+addi (no table involved) must become an indirect target, mirroring
// the existing lui+addi recovery.
func TestRecoverAuipcMaterialisation(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchX86E, Sanitize: kasm.SanNone})
	b.Func("_start")
	b.LaPC(isa.RegT0, "callee")
	b.JALR(isa.RegRA, isa.RegT0, 0)
	b.HALT()
	b.Func("callee")
	b.Ret()
	img, err := b.Link("auipc-mat")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	callee, _ := img.Lookup("callee")
	a, err := static.Analyze(img.Strip())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !a.FuncReachable(callee.Addr) {
		t.Fatalf("auipc-materialised callee %#x not reachable", callee.Addr)
	}
}

// TestAbsoluteTableStillRecovered: the pre-existing absolute idiom
// (DataWordSyms holding absolute text addresses) must keep working on the
// mips frontend alongside the new relative scan, with no cross-talk: the
// relative interpretation of an absolute table must add no entries.
func TestAbsoluteTableStillRecovered(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchMIPS32E, Sanitize: kasm.SanNone})
	b.Func("_start")
	b.La(isa.RegT0, "abs_tab")
	b.LW(isa.RegT0, isa.RegT0, 0)
	b.JALR(isa.RegRA, isa.RegT0, 0)
	b.HALT()
	b.Func("h_abs")
	b.Ret()
	b.DataWordSyms("abs_tab", []string{"h_abs"})
	img, err := b.Link("abs-tab")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	h, _ := img.Lookup("h_abs")
	a, err := static.Analyze(img.Strip())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !a.FuncReachable(h.Addr) {
		t.Fatalf("absolute table target %#x not reachable", h.Addr)
	}
	for _, tgt := range a.IndirectTargets() {
		if tgt != h.Addr && tgt != img.Entry {
			t.Fatalf("relative misread of an absolute table produced %#x", tgt)
		}
	}
}
