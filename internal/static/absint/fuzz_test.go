package absint_test

import (
	"testing"

	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/absint"
)

// FuzzAbsint feeds arbitrary bytes to the safety prover as image text/data.
// Two properties are checked:
//
//  1. the analysis never panics, whatever the input decodes to;
//  2. soundness against the concrete machine — the image is single-stepped
//     and every executed access the prover marked safe is checked against
//     what actually happened: device proofs must access the device window,
//     global proofs must stay inside the named object's payload, and stack
//     proofs must stay inside the frame's [sp, entry-sp) as tracked by a
//     shadow call stack. The checks stop at the first violation of the
//     toolchain assumptions the proofs are conditional on (an indirect jump
//     to an unrecovered target, a store into text).
//
// The seed corpus is the three real firmware (one per frontend).
func FuzzAbsint(f *testing.F) {
	for _, name := range []string{
		"OpenWRT-armvirt", // arm32e
		"OpenWRT-bcm63xx", // mips32e
		"OpenWRT-x86_64",  // x86e
	} {
		fw, err := firmware.Build(name)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		f.Add(uint8(fw.Image.Arch), fw.Image.Entry, fw.Image.Text, fw.Image.Data)
	}
	f.Fuzz(func(t *testing.T, archB uint8, entry uint32, text, data []byte) {
		img := &kasm.Image{
			Name:     "fuzz",
			Arch:     isa.Arch(archB % uint8(isa.NumArchs)),
			Base:     kasm.DefaultBase,
			Entry:    entry,
			Text:     text,
			Data:     data,
			DataAddr: kasm.DefaultBase + uint32(len(text)) + 64,
		}
		an, err := static.Analyze(img)
		if err != nil {
			return
		}
		// MaxIters bounds the fixpoint on pathological mutated images (one
		// huge function → quadratic sweeps); unconverged functions get no
		// proofs, which property 2 then has nothing to check.
		res := absint.Analyze(an, absint.Options{MaxIters: 50}) // property 1: no panic
		if len(res.Accesses) == 0 {
			return
		}
		checkConcrete(t, img, an, res)
	})
}

// frame is one shadow-call-stack entry: where the call should return, what
// sp was at the callee's entry, and which function the frame belongs to.
type frame struct {
	ret     uint32
	entrySP uint32
	fn      uint32
}

// checkConcrete single-steps the image and asserts every executed proven
// access against the concrete machine state.
func checkConcrete(t *testing.T, img *kasm.Image, an *static.Analysis, res *absint.Result) {
	m, err := emu.New(img, emu.Config{MaxHarts: 1})
	if err != nil {
		return
	}
	h := m.Hart(0)
	startFn, ok := an.FuncAt(h.PC)
	if !ok {
		// The proofs assume functions are entered at their entries; a start
		// pc inside a block suffix runs with register state no analyzed
		// path produces, so nothing is claimed about it.
		return
	}
	shadow := []frame{{ret: 0, entrySP: h.Regs[isa.RegSP], fn: startFn.Entry}}
	textEnd := img.TextEnd()

	const maxSteps = 2000
	for step := 0; step < maxSteps; step++ {
		pc := h.PC
		if pc < img.Base || pc >= textEnd || pc%4 != 0 {
			return // leaving text: nothing the prover claimed applies
		}
		in, ok := an.InstAt(pc)
		if !ok {
			return
		}
		if cf, ok := an.FuncContaining(pc); !ok || cf.Entry != shadow[len(shadow)-1].fn {
			// Execution crossed into another function without a modeled
			// call or return (a fall-through off a function end, a direct
			// jump across a boundary): the frame bookkeeping the proofs
			// are phrased in no longer applies.
			return
		}

		if isa.IsWrite(in.Op) {
			// Self-modifying code voids every proof; stop checking.
			addr := h.Regs[in.Rs1]
			if isa.ClassOf(in.Op) == isa.ClassStore && in.Op != isa.OpSCW {
				addr += uint32(in.Imm)
			}
			if addr < textEnd && addr+isa.AccessSize(in.Op) > img.Base {
				return
			}
		}

		if a, ok := res.At(pc); ok && a.Kind != absint.ProofNone {
			base := h.Regs[in.Rs1]
			addr := base
			switch isa.ClassOf(in.Op) {
			case isa.ClassLoad, isa.ClassStore:
				if in.Op != isa.OpLRW && in.Op != isa.OpSCW {
					addr = base + uint32(in.Imm)
				}
			}
			lo, hi := uint64(addr), uint64(addr)+uint64(a.Size)
			switch a.Kind {
			case absint.ProofMMIO:
				if lo < uint64(emu.MMIOBase) {
					t.Fatalf("pc %#x: mmio proof but concrete access at %#x", pc, addr)
				}
			case absint.ProofGlobal:
				sym, ok := img.Lookup(a.Object)
				if !ok {
					t.Fatalf("pc %#x: global proof names unknown object %q", pc, a.Object)
				}
				if lo < uint64(sym.Addr) || hi > uint64(sym.Addr)+uint64(sym.Size) {
					t.Fatalf("pc %#x: global proof (%s [%#x,+%d)) but concrete access [%#x,%#x)",
						pc, a.Object, sym.Addr, sym.Size, lo, hi)
				}
			case absint.ProofStack:
				// Compare as signed deltas from the function-entry sp — the
				// prover's own coordinate system — so frames near address 0
				// wrap correctly.
				entry := shadow[len(shadow)-1].entrySP
				dsp := int64(int32(h.Regs[isa.RegSP] - entry))
				dlo := int64(int32(addr - entry))
				if dlo < dsp || dlo+int64(a.Size) > 0 {
					t.Fatalf("pc %#x: stack proof but access delta [%d,%d) outside frame [sp=%d, 0)",
						pc, dlo, dlo+int64(a.Size), dsp)
				}
			}
		}

		// Maintain the shadow call stack; on any violation of the control
		// assumptions the proofs are conditional on, stop checking.
		switch {
		case in.Op == isa.OpJAL && in.Rd == isa.RegRA:
			target := pc + uint32(in.Imm)*4
			tf, ok := an.FuncAt(target)
			if !ok {
				return
			}
			shadow = append(shadow, frame{ret: pc + 4, entrySP: h.Regs[isa.RegSP], fn: tf.Entry})
		case in.Op == isa.OpJALR && in.Rd == isa.RegRA:
			target := h.Regs[in.Rs1] + uint32(in.Imm)
			tf, ok := an.FuncAt(target)
			if !ok {
				return // wild indirect call
			}
			shadow = append(shadow, frame{ret: pc + 4, entrySP: h.Regs[isa.RegSP], fn: tf.Entry})
		case in.Op == isa.OpJALR:
			target := h.Regs[in.Rs1] + uint32(in.Imm)
			if len(shadow) > 1 && target == shadow[len(shadow)-1].ret {
				// Matched return. The proofs assume callees preserve sp
				// (the analyzer's call transfer keeps it); a callee that
				// returns with a shifted sp breaks that contract, and
				// nothing downstream is claimed.
				if h.Regs[isa.RegSP] != shadow[len(shadow)-1].entrySP {
					return
				}
				shadow = shadow[:len(shadow)-1]
			} else if tf, ok := an.FuncAt(target); !ok {
				return // wild jump (corrupted ra, table jump to non-entry)
			} else {
				// Tail call: the frame is reused.
				shadow[len(shadow)-1].entrySP = h.Regs[isa.RegSP]
				shadow[len(shadow)-1].fn = tf.Entry
			}
		}

		before := m.ICount()
		if r := m.Run(1); r != emu.StopBudget || m.ICount() == before {
			return // halted, faulted, or made no progress
		}
	}
}
