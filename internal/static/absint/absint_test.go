package absint_test

import (
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/absint"
)

// buildProofMini builds a firmware exercising every proof obligation: global
// hits and redzone straddles, own-frame spills and below-frame escapes,
// device-window stores, pointer chases, and a counted loop whose index must
// widen at the loop head.
func buildProofMini(t *testing.T, mode kasm.SanitizeMode) *kasm.Image {
	t.Helper()
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: mode})

	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.Call("globals")
	b.Call("spill")
	b.Call("mmio")
	b.Call("chase")
	b.Call("loop")
	b.Ready()
	b.HALT()

	b.Func("globals")
	b.La(isa.RegT0, "counter")
	b.LW(isa.RegT1, isa.RegT0, 0) // inside the payload: provable
	b.ADDI(isa.RegT1, isa.RegT1, 1)
	b.SW(isa.RegT1, isa.RegT0, 0) // inside the payload: provable
	b.LW(isa.RegA4, isa.RegT0, 2) // [2,6) straddles the payload end: never
	b.Ret()

	b.Func("spill")
	b.ADDI(isa.RegSP, isa.RegSP, -16)
	b.SW(isa.RegRA, isa.RegSP, 0) // own live frame: provable
	b.SW(isa.RegA0, isa.RegSP, 4)
	b.LW(isa.RegRA, isa.RegSP, 0)
	b.LW(isa.RegA0, isa.RegSP, -4) // below sp: outside the live frame
	b.ADDI(isa.RegSP, isa.RegSP, 16)
	b.Ret()

	b.Func("mmio")
	b.Li(isa.RegT0, -0x10000000) // 0xF0000000: the device window
	b.SW(isa.RegZero, isa.RegT0, 0)
	b.Ret()

	b.Func("chase")
	b.La(isa.RegT0, "ptr")
	b.LW(isa.RegT1, isa.RegT0, 0) // the global itself: provable
	b.LW(isa.RegA4, isa.RegT1, 0) // loaded pointer: must-check
	b.Ret()

	b.Func("loop")
	b.La(isa.RegT0, "arr")
	b.Li(isa.RegT1, 0)
	b.Li(isa.RegA3, 64)
	b.Label("loop_head")
	b.ADD(isa.RegA0, isa.RegT0, isa.RegT1)
	b.LW(isa.RegA1, isa.RegA0, 0) // index widens at the loop head: must-check
	b.LW(isa.RegA2, isa.RegT0, 0) // loop-invariant base: provable
	b.ADDI(isa.RegT1, isa.RegT1, 4)
	b.BLTU(isa.RegT1, isa.RegA3, "loop_head")
	b.Ret()

	b.Global("counter", 4)
	b.Global("arr", 64)
	b.GlobalRaw("ptr", 4)

	img, err := b.Link("absint-mini")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func analyzeMini(t *testing.T, img *kasm.Image) *absint.Result {
	t.Helper()
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return absint.Analyze(an, absint.Options{})
}

// funcAccesses returns the classified accesses inside the named function in
// program order, skipping the SANCK instrumentation.
func funcAccesses(t *testing.T, img *kasm.Image, res *absint.Result, name string) []absint.Access {
	t.Helper()
	sym, ok := img.Lookup(name)
	if !ok {
		t.Fatalf("symbol %s missing", name)
	}
	var out []absint.Access
	for _, a := range res.Accesses {
		if a.PC >= sym.Addr && a.PC < sym.Addr+sym.Size {
			out = append(out, a)
		}
	}
	return out
}

func TestProofClassification(t *testing.T) {
	for _, mode := range []kasm.SanitizeMode{kasm.SanNone, kasm.SanEmbsanC} {
		img := buildProofMini(t, mode)
		res := analyzeMini(t, img)

		globals := funcAccesses(t, img, res, "globals")
		if len(globals) != 3 {
			t.Fatalf("%s: globals has %d accesses, want 3", mode, len(globals))
		}
		for i, want := range []absint.ProofKind{absint.ProofGlobal, absint.ProofGlobal, absint.ProofNone} {
			if globals[i].Kind != want {
				t.Fatalf("%s: globals access %d at %#x proven %s, want %s",
					mode, i, globals[i].PC, globals[i].Kind, want)
			}
		}
		if globals[0].Object != "counter" || globals[1].Object != "counter" {
			t.Fatalf("%s: global proofs name %q/%q, want counter", mode, globals[0].Object, globals[1].Object)
		}

		spill := funcAccesses(t, img, res, "spill")
		if len(spill) != 4 {
			t.Fatalf("%s: spill has %d accesses, want 4", mode, len(spill))
		}
		for i, want := range []absint.ProofKind{absint.ProofStack, absint.ProofStack, absint.ProofStack, absint.ProofNone} {
			if spill[i].Kind != want {
				t.Fatalf("%s: spill access %d at %#x proven %s, want %s",
					mode, i, spill[i].PC, spill[i].Kind, want)
			}
		}

		mmio := funcAccesses(t, img, res, "mmio")
		if len(mmio) != 1 || mmio[0].Kind != absint.ProofMMIO {
			t.Fatalf("%s: mmio access not proven mmio: %+v", mode, mmio)
		}

		chase := funcAccesses(t, img, res, "chase")
		if len(chase) != 2 || chase[0].Kind != absint.ProofGlobal || chase[1].Kind != absint.ProofNone {
			t.Fatalf("%s: chase classification wrong: %+v", mode, chase)
		}
	}
}

// TestWideningLoopTerminates pins the loop-head behaviour: the fixpoint must
// converge (widening), the loop-varying index access must stay must-check,
// and the loop-invariant access must still be proven inside the loop body.
func TestWideningLoopTerminates(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	res := analyzeMini(t, img)
	loop := funcAccesses(t, img, res, "loop")
	if len(loop) != 2 {
		t.Fatalf("loop has %d accesses, want 2", len(loop))
	}
	if loop[0].Kind != absint.ProofNone {
		t.Fatalf("loop-varying access at %#x proven %s, want none", loop[0].PC, loop[0].Kind)
	}
	if loop[1].Kind != absint.ProofGlobal || loop[1].Object != "arr" {
		t.Fatalf("loop-invariant access at %#x proven %s/%q, want global/arr",
			loop[1].PC, loop[1].Kind, loop[1].Object)
	}
}

// TestStrippedImageDegrades pins the D-closed degradation: with the symbol
// table gone there are no objects, so no global proofs anywhere; every
// loaded-pointer access stays must-check. Stack and device proofs survive —
// they depend only on the code.
func TestStrippedImageDegrades(t *testing.T) {
	img := buildProofMini(t, kasm.SanNone).Strip()
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze stripped: %v", err)
	}
	res := absint.Analyze(an, absint.Options{})
	if res.Stats.Global != 0 {
		t.Fatalf("stripped image has %d global proofs", res.Stats.Global)
	}
	for _, a := range res.Accesses {
		if a.Kind == absint.ProofGlobal {
			t.Fatalf("stripped image proved global at %#x", a.PC)
		}
	}
	if res.Stats.Stack == 0 {
		t.Fatalf("stripped image lost its stack proofs: %+v", res.Stats)
	}
	if res.Stats.MMIO == 0 {
		t.Fatalf("stripped image lost its mmio proofs: %+v", res.Stats)
	}
}

// TestTaintDisqualifiesObjects: an object overlapping a caller-supplied
// taint range (a heap arena, an init poison) must never back a proof.
func TestTaintDisqualifiesObjects(t *testing.T) {
	img := buildProofMini(t, kasm.SanNone)
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	sym, ok := img.Lookup("counter")
	if !ok {
		t.Fatalf("counter missing")
	}
	res := absint.Analyze(an, absint.Options{
		Taint: []kasm.AddrRange{{Start: sym.Addr, End: sym.Addr + sym.Size}},
	})
	for _, a := range funcAccesses(t, img, res, "globals") {
		if a.Kind == absint.ProofGlobal {
			t.Fatalf("tainted counter still proven at %#x", a.PC)
		}
	}
	// The untainted arr proofs must survive.
	loop := funcAccesses(t, img, res, "loop")
	if loop[1].Kind != absint.ProofGlobal {
		t.Fatalf("untainted arr lost its proof: %+v", loop[1])
	}
}

// TestDeterminism: two full recovery+analysis runs must agree exactly.
func TestDeterminism(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	a := analyzeMini(t, img)
	b := analyzeMini(t, img)
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatalf("access counts differ: %d vs %d", len(a.Accesses), len(b.Accesses))
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a.Accesses[i], b.Accesses[i])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestGuardedBufferFrameUnproven: a function that poisons inside its own
// frame (the guarded stack-buffer pattern) must get no stack proofs — the
// runtime legitimately traps there.
func TestGuardedBufferFrameUnproven(t *testing.T) {
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanEmbsanC})
	b.Func("_start")
	b.Li(isa.RegSP, 0x8000)
	b.Call("guarded")
	b.Ready()
	b.HALT()

	b.Func("guarded")
	b.Prologue(64)
	b.GuardedBuffer(16, 16, isa.RegA0)
	b.SW(isa.RegZero, isa.RegSP, 16) // in-frame, but the frame is poisoned
	b.UnguardBuffer(16, 16)
	b.Epilogue(64)

	img, err := b.Link("absint-guarded")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := analyzeMini(t, img)
	for _, a := range funcAccesses(t, img, res, "guarded") {
		if a.Kind == absint.ProofStack {
			t.Fatalf("stack proof at %#x inside a poisoning function", a.PC)
		}
	}
}
