// Package absint is EMBSAN's static safety prover: a flow-sensitive
// interval abstract interpretation over the CFGs recovered by
// internal/static. It tracks, per basic block, each register as one of
// {constant/absolute interval, stack-relative interval, unknown} and
// classifies every memory access as provably-safe — the entire accessed
// range is inside a known object on every execution, away from redzones —
// or must-check.
//
// Three consumers sit on top of it:
//
//   - the link-time EMBSAN-C pass (kasm.Image.ElideSancks) drops the SANCK
//     trap in front of each proven access;
//   - the EMBSAN-D engine (emu.Machine.SetSafeAccessPCs) specializes
//     translation blocks to skip delegate dispatch for proven ops;
//   - `embsan lint -elide` re-derives the proofs and audits every recorded
//     elision (Audit).
//
// Soundness rests on the same assumptions the rest of the toolchain already
// makes: indirect control transfers only target recovered entries (address
// materialisations and data-word tables, both captured by the entry
// discovery), calls follow the ABI (callees preserve sp, clobber everything
// else), and stack discipline keeps [sp, entry-sp) private to the running
// function. Anything outside those assumptions degrades to must-check —
// never to a wrong proof: blocks entered by cross-function edges are
// re-analysed from a ⊤ state, unresolvable values widen to unknown, and
// stripped images (no symbols, no metadata) retain only stack and MMIO
// proofs.
package absint

import (
	"sort"

	"embsan/internal/emu"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// ProofKind classifies how an access was proven safe.
type ProofKind uint8

const (
	// ProofNone: must-check. The access keeps its sanitizer dispatch.
	ProofNone ProofKind = iota
	// ProofGlobal: the accessed range is inside one known global object's
	// payload on every execution.
	ProofGlobal
	// ProofStack: the access stays inside the enclosing function's own
	// live stack frame.
	ProofStack
	// ProofMMIO: the access targets device memory, which the sanitizer
	// runtime ignores by construction.
	ProofMMIO
)

func (k ProofKind) String() string {
	switch k {
	case ProofGlobal:
		return "global"
	case ProofStack:
		return "stack"
	case ProofMMIO:
		return "mmio"
	}
	return "none"
}

// Access is the classification of one load/store/atomic site.
type Access struct {
	PC        uint32
	Size      uint32
	Write     bool
	Kind      ProofKind
	Object    string // containing object for ProofGlobal
	Reachable bool   // the containing block is statically reachable
}

// Stats aggregates the classification over one image.
type Stats struct {
	Accesses          int // all load/store/atomic sites in text
	Proven            int
	ReachableAccesses int // sites in statically reachable blocks
	ReachableProven   int
	Global            int
	Stack             int
	MMIO              int
}

// Options tunes an analysis run.
type Options struct {
	// Taint lists address ranges that must never back a global proof:
	// heap arenas the runtime poisons, regions covered by recorded init
	// poison operations. Objects overlapping a tainted range (including
	// their redzones) are ineligible.
	Taint []kasm.AddrRange
	// MaxIters caps the fixpoint sweeps per function (safety valve; the
	// widening rule converges far earlier). A function that fails to
	// converge gets no proofs. Defaults to 50 + 10·blocks.
	MaxIters int
}

// Result is the full classification of one image, sorted by PC.
type Result struct {
	Accesses []Access
	Stats    Stats

	an *static.Analysis
}

// At returns the classification of the access at pc.
func (r *Result) At(pc uint32) (Access, bool) {
	i := sort.Search(len(r.Accesses), func(i int) bool { return r.Accesses[i].PC >= pc })
	if i < len(r.Accesses) && r.Accesses[i].PC == pc {
		return r.Accesses[i], true
	}
	return Access{}, false
}

// ---- abstract domain ----

// vkind distinguishes what an interval is relative to.
type vkind uint8

const (
	kUnknown vkind = iota // ⊤: any value
	kAbs                  // absolute value interval (constants, object addresses)
	kStack                // offset interval relative to the function-entry sp
)

// aval is one abstract register value: a closed interval [lo, hi] of the
// given kind. The zero value is ⊤.
type aval struct {
	k      vkind
	lo, hi int64
}

// wideLimit bounds stack-relative intervals; anything wider is ⊤.
const wideLimit = int64(1) << 40

// wideThreshold is the widening rule: once a block's in-state has been
// refined this many times, any register still changing jumps straight to ⊤,
// which bounds the fixpoint iteration.
const wideThreshold = 4

func exact(v uint32) aval { return aval{k: kAbs, lo: int64(v), hi: int64(v)} }

func (a aval) exactAbs() bool  { return a.k == kAbs && a.lo == a.hi }
func (a aval) exactZero() bool { return a.k == kAbs && a.lo == 0 && a.hi == 0 }

// norm canonicalises after arithmetic: exact absolute values wrap mod 2^32
// like the machine; non-exact intervals that leave the 32-bit range (where
// wraparound would fragment them) and oversized stack deltas widen to ⊤.
func norm(a aval) aval {
	switch a.k {
	case kAbs:
		if a.lo == a.hi {
			v := int64(uint32(a.lo))
			return aval{k: kAbs, lo: v, hi: v}
		}
		if a.lo < 0 || a.hi >= 1<<32 {
			return aval{}
		}
	case kStack:
		if a.lo < -wideLimit || a.hi > wideLimit {
			return aval{}
		}
	}
	return a
}

func addv(a, b aval) aval {
	if a.k == kUnknown || b.k == kUnknown || (a.k == kStack && b.k == kStack) {
		return aval{}
	}
	k := kAbs
	if a.k == kStack || b.k == kStack {
		k = kStack
	}
	return norm(aval{k: k, lo: a.lo + b.lo, hi: a.hi + b.hi})
}

func subv(a, b aval) aval {
	if a.k == kUnknown || b.k == kUnknown {
		return aval{}
	}
	var k vkind
	switch {
	case a.k == kStack && b.k == kStack:
		k = kAbs // delta difference is absolute
	case a.k == kStack:
		k = kStack
	case b.k == kStack:
		return aval{} // absolute minus stack-relative: meaningless
	default:
		k = kAbs
	}
	return norm(aval{k: k, lo: a.lo - b.hi, hi: a.hi - b.lo})
}

func addImm(a aval, imm int32) aval {
	if a.k == kUnknown {
		return aval{}
	}
	return norm(aval{k: a.k, lo: a.lo + int64(imm), hi: a.hi + int64(imm)})
}

// joinv is the lattice join: interval hull on matching kinds, ⊤ otherwise.
func joinv(a, b aval) aval {
	if a == b {
		return a
	}
	if a.k == kUnknown || b.k == kUnknown || a.k != b.k {
		return aval{}
	}
	j := a
	if b.lo < j.lo {
		j.lo = b.lo
	}
	if b.hi > j.hi {
		j.hi = b.hi
	}
	return norm(j)
}

// state is the per-program-point abstract machine: one aval per register.
// Index 0 (the zero register) is pinned to exact 0.
type state [isa.NumRegs]aval

func joinState(a, b state) state {
	var j state
	for i := range a {
		j[i] = joinv(a[i], b[i])
	}
	j[isa.RegZero] = exact(0)
	return j
}

// entryState is the sound assumption for any arrival at a function entry:
// nothing known except the architecture zero and sp ≡ entry-sp.
func entryState() state {
	var s state
	s[isa.RegZero] = exact(0)
	s[isa.RegSP] = aval{k: kStack}
	return s
}

// topState is the assumption for blocks entered by cross-function edges:
// even sp is foreign there.
func topState() state {
	var s state
	s[isa.RegZero] = exact(0)
	return s
}

// clobberCall models an ABI call returning: everything dead except sp.
func clobberCall(s state) state {
	var out state
	out[isa.RegZero] = exact(0)
	out[isa.RegSP] = s[isa.RegSP]
	return out
}

// ---- transfer functions ----

func getReg(st *state, r uint8) aval {
	if r == isa.RegZero || int(r) >= isa.NumRegs {
		return exact(0)
	}
	return st[r]
}

func setReg(st *state, rd uint8, v aval) {
	if rd != isa.RegZero && int(rd) < isa.NumRegs {
		st[rd] = norm(v)
	}
}

// binALU evaluates a reg-reg ALU op abstractly: exact operands compute the
// machine result exactly (mirroring emu semantics, including division by
// zero), identities with the zero register pass values through, and
// everything else is ⊤. ADD/SUB are handled by the caller via interval
// arithmetic.
func binALU(op isa.Op, a, b aval) aval {
	if a.exactAbs() && b.exactAbs() {
		return exact(concreteALU(op, uint32(a.lo), uint32(b.lo)))
	}
	switch op {
	case isa.OpOR, isa.OpXOR:
		if b.exactZero() {
			return a
		}
		if a.exactZero() {
			return b
		}
	case isa.OpAND:
		if a.exactZero() || b.exactZero() {
			return exact(0)
		}
	case isa.OpSLL, isa.OpSRL, isa.OpSRA:
		if b.exactZero() {
			return a
		}
	}
	return aval{}
}

func concreteALU(op isa.Op, x, y uint32) uint32 {
	switch op {
	case isa.OpAND:
		return x & y
	case isa.OpOR:
		return x | y
	case isa.OpXOR:
		return x ^ y
	case isa.OpSLL:
		return x << (y & 31)
	case isa.OpSRL:
		return x >> (y & 31)
	case isa.OpSRA:
		return uint32(int32(x) >> (y & 31))
	case isa.OpMUL:
		return x * y
	case isa.OpMULHU:
		return uint32((uint64(x) * uint64(y)) >> 32)
	case isa.OpDIV:
		a, b := int32(x), int32(y)
		switch {
		case b == 0:
			return 0xFFFFFFFF
		case a == -1<<31 && b == -1:
			return uint32(a)
		default:
			return uint32(a / b)
		}
	case isa.OpDIVU:
		if y == 0 {
			return 0xFFFFFFFF
		}
		return x / y
	case isa.OpREM:
		a, b := int32(x), int32(y)
		switch {
		case b == 0:
			return uint32(a)
		case a == -1<<31 && b == -1:
			return 0
		default:
			return uint32(a % b)
		}
	case isa.OpREMU:
		if y == 0 {
			return x
		}
		return x % y
	}
	return 0
}

// step applies one instruction's effect to st. Control transfer and memory
// side effects are handled by the caller; this only models register writes.
func step(st *state, in isa.Inst, pc uint32) {
	switch in.Op {
	case isa.OpLUI:
		setReg(st, in.Rd, exact(uint32(in.Imm)<<12))
	case isa.OpAUIPC:
		setReg(st, in.Rd, exact(pc+uint32(in.Imm)<<12))
	case isa.OpADDI:
		setReg(st, in.Rd, addImm(getReg(st, in.Rs1), in.Imm))
	case isa.OpADD:
		setReg(st, in.Rd, addv(getReg(st, in.Rs1), getReg(st, in.Rs2)))
	case isa.OpSUB:
		setReg(st, in.Rd, subv(getReg(st, in.Rs1), getReg(st, in.Rs2)))
	case isa.OpANDI:
		a := getReg(st, in.Rs1)
		switch {
		case a.exactAbs():
			setReg(st, in.Rd, exact(uint32(a.lo)&uint32(in.Imm)))
		case in.Imm >= 0:
			setReg(st, in.Rd, aval{k: kAbs, lo: 0, hi: int64(in.Imm)})
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpORI:
		a := getReg(st, in.Rs1)
		switch {
		case in.Imm == 0:
			setReg(st, in.Rd, a)
		case a.exactAbs():
			setReg(st, in.Rd, exact(uint32(a.lo)|uint32(in.Imm)))
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpXORI:
		a := getReg(st, in.Rs1)
		switch {
		case in.Imm == 0:
			setReg(st, in.Rd, a)
		case a.exactAbs():
			setReg(st, in.Rd, exact(uint32(a.lo)^uint32(in.Imm)))
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpSLLI:
		a := getReg(st, in.Rs1)
		sh := uint32(in.Imm) & 31
		switch {
		case a.exactAbs():
			setReg(st, in.Rd, exact(uint32(a.lo)<<sh))
		case sh == 0:
			setReg(st, in.Rd, a)
		case a.k == kAbs && a.lo >= 0 && a.hi<<sh < 1<<32:
			setReg(st, in.Rd, aval{k: kAbs, lo: a.lo << sh, hi: a.hi << sh})
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpSRLI:
		a := getReg(st, in.Rs1)
		sh := uint32(in.Imm) & 31
		switch {
		case a.exactAbs():
			setReg(st, in.Rd, exact(uint32(a.lo)>>sh))
		case sh == 0:
			setReg(st, in.Rd, a)
		case a.k == kAbs && a.lo >= 0:
			setReg(st, in.Rd, aval{k: kAbs, lo: a.lo >> sh, hi: a.hi >> sh})
		default:
			setReg(st, in.Rd, aval{})
		}
	case isa.OpSRAI:
		a := getReg(st, in.Rs1)
		if a.exactAbs() {
			setReg(st, in.Rd, exact(uint32(int32(uint32(a.lo))>>(uint32(in.Imm)&31))))
		} else if uint32(in.Imm)&31 == 0 {
			setReg(st, in.Rd, a)
		} else {
			setReg(st, in.Rd, aval{})
		}
	case isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
		isa.OpMUL, isa.OpMULHU, isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU:
		setReg(st, in.Rd, binALU(in.Op, getReg(st, in.Rs1), getReg(st, in.Rs2)))
	case isa.OpSLT, isa.OpSLTU, isa.OpSLTI, isa.OpSLTIU:
		setReg(st, in.Rd, aval{k: kAbs, lo: 0, hi: 1})
	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW, isa.OpLRW:
		setReg(st, in.Rd, aval{})
	case isa.OpSCW:
		setReg(st, in.Rd, aval{k: kAbs, lo: 0, hi: 1})
	case isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW:
		setReg(st, in.Rd, aval{})
	case isa.OpJAL, isa.OpJALR:
		setReg(st, in.Rd, exact(pc+4))
	case isa.OpCSRR:
		setReg(st, in.Rd, aval{})
	}
	// Stores, branches, FENCE, SANCK, CSRW, YIELD, HALT write no register;
	// hypercall handlers never write the current hart's registers.
}

// effImm is the address offset the hardware applies: the immediate for
// loads/stores (including LRW), zero for the register-addressed SCW/AMOs.
func effImm(in isa.Inst) int64 {
	switch in.Op {
	case isa.OpSCW, isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW:
		return 0
	}
	return int64(in.Imm)
}

// ---- analysis driver ----

// object is a candidate proof target: a named global with a known payload.
type object struct {
	name     string
	addr     uint32 // payload start
	size     uint32
	redzone  uint32
	eligible bool
}

func (o *object) footprint() (lo, hi int64) {
	return int64(o.addr) - int64(o.redzone), int64(o.addr) + int64(o.size) + int64(o.redzone)
}

type analyzer struct {
	an   *static.Analysis
	img  *kasm.Image
	opts Options

	objs     []object            // sorted by payload address
	poisonFn map[uint32]bool     // funcs containing runtime poison hypercalls
	hazardFn map[uint32]bool     // funcs whose address materialisations taint objects
	xtargets map[uint32][]uint32 // func entry -> cross-function edge targets inside it
}

// Analyze classifies every memory access of the analysed image. The result
// is deterministic: identical inputs produce identical proof sets.
func Analyze(an *static.Analysis, opts Options) *Result {
	az := &analyzer{
		an:       an,
		img:      an.Image,
		opts:     opts,
		poisonFn: map[uint32]bool{},
		hazardFn: map[uint32]bool{},
		xtargets: map[uint32][]uint32{},
	}
	az.buildObjects()
	az.scanFunctions()
	az.taintMaterialised()
	az.findCrossEdges()

	proofs := map[uint32]Access{}
	for _, f := range an.Funcs {
		az.analyzeFunc(f, proofs)
	}

	res := &Result{an: an}
	for pc := az.img.Base; pc < az.img.TextEnd(); pc += 4 {
		in, ok := an.InstAt(pc)
		if !ok || !isAccessOp(in.Op) {
			continue
		}
		acc := Access{
			PC:        pc,
			Size:      isa.AccessSize(in.Op),
			Write:     isa.IsWrite(in.Op),
			Reachable: an.BlockReachable(pc),
		}
		if p, ok := proofs[pc]; ok {
			acc.Kind, acc.Object = p.Kind, p.Object
		}
		res.Accesses = append(res.Accesses, acc)
		res.Stats.Accesses++
		if acc.Reachable {
			res.Stats.ReachableAccesses++
		}
		if acc.Kind != ProofNone {
			res.Stats.Proven++
			if acc.Reachable {
				res.Stats.ReachableProven++
			}
			switch acc.Kind {
			case ProofGlobal:
				res.Stats.Global++
			case ProofStack:
				res.Stats.Stack++
			case ProofMMIO:
				res.Stats.MMIO++
			}
		}
	}
	return res
}

func isAccessOp(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		return true
	}
	return false
}

// buildObjects collects named globals from the symbol table, overlaying
// redzone widths from the EMBSAN-C metadata, and marks objects overlapping
// caller-supplied taint ranges ineligible. Stripped images have no symbols,
// so no global proofs — exactly the D-closed degradation the paper expects.
func (az *analyzer) buildObjects() {
	rz := map[uint32]uint32{}
	for _, g := range az.img.Meta.Globals {
		rz[g.Addr] = g.Redzone
	}
	for _, s := range az.img.Symbols {
		if s.Kind != kasm.SymObject || s.Size == 0 {
			continue
		}
		az.objs = append(az.objs, object{
			name:     s.Name,
			addr:     s.Addr,
			size:     s.Size,
			redzone:  rz[s.Addr],
			eligible: true,
		})
	}
	sort.Slice(az.objs, func(i, j int) bool { return az.objs[i].addr < az.objs[j].addr })
	for i := range az.objs {
		o := &az.objs[i]
		lo, hi := o.footprint()
		for _, t := range az.opts.Taint {
			if int64(t.Start) < hi && int64(t.End) > lo {
				o.eligible = false
			}
		}
	}
}

// scanFunctions records which functions contain sanitizer-state hypercalls.
// Functions that poison (SanPoison/SanUnpoison — the guarded stack-buffer
// pattern) get no stack proofs: their own frames can legitimately trap.
// Those plus allocator hooks and hart spawns make a function hazardous for
// materialisation taint, as do direct callers of poisoning functions
// (a poison helper taking the region address as an argument).
func (az *analyzer) scanFunctions() {
	for _, f := range az.an.Funcs {
		for pc := f.Entry; pc < f.End; pc += 4 {
			in, ok := az.an.InstAt(pc)
			if !ok || in.Op != isa.OpHCALL {
				continue
			}
			switch in.Imm {
			case isa.HcallSanPoison, isa.HcallSanUnpoison:
				az.poisonFn[f.Entry] = true
				az.hazardFn[f.Entry] = true
			case isa.HcallSanAlloc, isa.HcallSanFree, isa.HcallSanCacheNew, isa.HcallSpawn:
				az.hazardFn[f.Entry] = true
			}
		}
	}
	for _, f := range az.an.Funcs {
		for _, c := range f.Callees {
			if az.poisonFn[c] {
				az.hazardFn[f.Entry] = true
			}
		}
	}
}

// taintMaterialised walks every lui+addi address materialisation (the La
// idiom). A global whose address is taken inside a hazardous function, a
// NoSan region (allocator internals), or into the stack pointer (stack
// backing store) is disqualified from global proofs: the runtime may
// poison inside it.
func (az *analyzer) taintMaterialised() {
	img := az.img
	for pc := img.Base; pc+4 < img.TextEnd(); pc += 4 {
		lui, ok1 := az.an.InstAt(pc)
		add, ok2 := az.an.InstAt(pc + 4)
		if !ok1 || !ok2 || lui.Op != isa.OpLUI || add.Op != isa.OpADDI ||
			add.Rd != lui.Rd || add.Rs1 != lui.Rd {
			continue
		}
		v := int64(uint32(lui.Imm)<<12 + uint32(add.Imm))
		hazard := lui.Rd == isa.RegSP || img.Meta.InNoSan(pc)
		if !hazard {
			if f, ok := az.an.FuncContaining(pc); ok && az.hazardFn[f.Entry] {
				hazard = true
			}
		}
		if !hazard {
			continue
		}
		for i := range az.objs {
			lo, hi := az.objs[i].footprint()
			if v >= lo && v < hi {
				az.objs[i].eligible = false
			}
		}
	}
}

// findCrossEdges records branch/jump targets that land inside a *different*
// function (not at its entry). The suffix from such a target runs with
// foreign register state, so it is re-analysed from ⊤ and its
// classifications are intersected with the intra-procedural ones.
func (az *analyzer) findCrossEdges() {
	seen := map[uint32]bool{}
	for _, f := range az.an.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				if s >= f.Entry && s < f.End {
					continue
				}
				g, ok := az.an.FuncContaining(s)
				if !ok || s == g.Entry || seen[s] {
					continue
				}
				seen[s] = true
				az.xtargets[g.Entry] = append(az.xtargets[g.Entry], s)
			}
		}
	}
	for e := range az.xtargets {
		sort.Slice(az.xtargets[e], func(i, j int) bool { return az.xtargets[e][i] < az.xtargets[e][j] })
	}
}

// node is one fixpoint unit: a real basic block, or a virtual suffix block
// modelling arrival from a cross-function edge.
type node struct {
	start, end uint32
	succs      []uint32 // in-function successor leaders
	call       bool     // ends in a call: the fall-through successor is clobbered
	virtual    bool
}

func (az *analyzer) makeNode(f *static.Func, b static.Block, start uint32, virtual bool) node {
	n := node{start: start, end: b.End, virtual: virtual}
	if last, ok := az.an.InstAt(b.End - 4); ok {
		n.call = (last.Op == isa.OpJAL || last.Op == isa.OpJALR) && last.Rd == isa.RegRA
	}
	for _, s := range b.Succs {
		if s >= f.Entry && s < f.End {
			n.succs = append(n.succs, s)
		}
	}
	return n
}

// walk runs a node's instructions over st, invoking visit (when non-nil)
// with the state *before* each instruction executes.
func (az *analyzer) walk(n node, st state, visit func(pc uint32, in isa.Inst, st *state)) state {
	for pc := n.start; pc < n.end; pc += 4 {
		in, ok := az.an.InstAt(pc)
		if !ok {
			break
		}
		if visit != nil {
			visit(pc, in, &st)
		}
		step(&st, in, pc)
	}
	return st
}

// analyzeFunc runs the per-function worklist fixpoint with widening, then a
// classification pass, merging proofs into the shared map. Iteration order
// is fully deterministic (sorted blocks, repeated sweeps).
func (az *analyzer) analyzeFunc(f *static.Func, proofs map[uint32]Access) {
	if len(f.Blocks) == 0 {
		return
	}
	nodes := make([]node, 0, len(f.Blocks)+len(az.xtargets[f.Entry]))
	idx := map[uint32]int{}
	for _, b := range f.Blocks {
		idx[b.Start] = len(nodes)
		nodes = append(nodes, az.makeNode(f, b, b.Start, false))
	}
	for _, s := range az.xtargets[f.Entry] {
		for _, b := range f.Blocks {
			if s > b.Start && s < b.End {
				nodes = append(nodes, az.makeNode(f, b, s, true))
				break
			}
		}
		if i, ok := idx[s]; ok {
			// The target is itself a leader: degrade that block's in-state.
			nodes[i].virtual = true
		}
	}

	nreal := len(f.Blocks)
	states := make([]state, len(nodes))
	reached := make([]bool, len(nodes))
	updates := make([]int, len(nodes))

	ei, ok := idx[f.Entry]
	if !ok {
		return
	}
	states[ei] = entryState()
	reached[ei] = true
	for i := range nodes {
		if !nodes[i].virtual {
			continue
		}
		if i < nreal {
			// A leader targeted by a cross-function edge: join ⊤ into its
			// normal in-state.
			states[i] = joinState(states[i], topState())
			if !reached[i] {
				states[i] = topState()
			}
		} else {
			states[i] = topState()
		}
		reached[i] = true
	}

	maxIters := az.opts.MaxIters
	if maxIters <= 0 {
		maxIters = 50 + 10*len(nodes)
	}
	converged := false
	for it := 0; it < maxIters; it++ {
		changed := false
		join := func(i int, s state) {
			if i >= nreal {
				return // virtual nodes have a fixed ⊤ in-state
			}
			if !reached[i] {
				states[i] = s
				reached[i] = true
				changed = true
				return
			}
			j := joinState(states[i], s)
			if j == states[i] {
				return
			}
			updates[i]++
			if updates[i] > wideThreshold {
				for r := 1; r < isa.NumRegs; r++ {
					if j[r] != states[i][r] {
						j[r] = aval{}
					}
				}
			}
			if j != states[i] {
				states[i] = j
				changed = true
			}
		}
		for i := range nodes {
			if !reached[i] {
				continue
			}
			out := az.walk(nodes[i], states[i], nil)
			succOut := out
			if nodes[i].call {
				succOut = clobberCall(out)
			}
			for _, s := range nodes[i].succs {
				if j, ok := idx[s]; ok {
					join(j, succOut)
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		return // safety valve: no proofs from an unconverged function
	}

	put := func(pc uint32, kind ProofKind, obj string) {
		if old, ok := proofs[pc]; ok {
			// A pc reachable both intra-procedurally and via a virtual
			// suffix keeps a proof only if every path agrees.
			if old.Kind != kind || old.Object != obj {
				proofs[pc] = Access{Kind: ProofNone}
			}
			return
		}
		proofs[pc] = Access{Kind: kind, Object: obj}
	}
	for i := range nodes {
		if !reached[i] {
			continue
		}
		az.walk(nodes[i], states[i], func(pc uint32, in isa.Inst, st *state) {
			if !isAccessOp(in.Op) {
				return
			}
			kind, obj := az.classify(f, in, st)
			put(pc, kind, obj)
		})
	}
}

// classify derives the proof obligation for one access under state st.
//
//	global: [base.lo+imm, base.hi+imm+size) ⊆ one eligible object payload
//	stack:  base is sp-relative, range within [current sp, entry sp)
//	mmio:   entire range at or above the device window
//
// Every obligation is evaluated over the full interval, so an access that
// could straddle a redzone boundary on any execution is never proven.
func (az *analyzer) classify(f *static.Func, in isa.Inst, st *state) (ProofKind, string) {
	base := getReg(st, in.Rs1)
	size := int64(isa.AccessSize(in.Op))
	imm := effImm(in)
	switch base.k {
	case kAbs:
		lo, hi := base.lo+imm, base.hi+imm+size
		if lo < 0 || hi > 1<<32 {
			return ProofNone, "" // could wrap: nothing provable
		}
		if lo >= int64(emu.MMIOBase) {
			return ProofMMIO, ""
		}
		if hi > int64(emu.MMIOBase) || lo < int64(emu.NullGuardSize) {
			return ProofNone, ""
		}
		if name, ok := az.containing(lo, hi); ok {
			return ProofGlobal, name
		}
	case kStack:
		if az.poisonFn[f.Entry] {
			return ProofNone, "" // the function poisons inside its own frame
		}
		spd := getReg(st, isa.RegSP)
		if spd.k != kStack {
			return ProofNone, ""
		}
		lo, hi := base.lo+imm, base.hi+imm+size
		if lo >= spd.hi && hi <= 0 {
			return ProofStack, ""
		}
	}
	return ProofNone, ""
}

// containing returns the eligible object whose payload contains [lo, hi).
func (az *analyzer) containing(lo, hi int64) (string, bool) {
	i := sort.Search(len(az.objs), func(i int) bool { return int64(az.objs[i].addr) > lo })
	for j := i - 1; j >= 0; j-- {
		o := &az.objs[j]
		if int64(o.addr)+int64(o.size) <= lo {
			break // sorted, non-overlapping: nothing earlier can reach lo
		}
		if hi <= int64(o.addr)+int64(o.size) && o.eligible {
			return o.name, true
		}
	}
	return "", false
}
