package absint

import (
	"fmt"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

// Lint rule identifiers for the elision audit.
const (
	// RuleElideProof: a recorded elision site lacks a re-derivable proof.
	RuleElideProof = "elide-proof"
	// RuleElideDeterminism: two analysis runs disagreed on the proof set.
	RuleElideDeterminism = "elide-determinism"
)

// Elisions converts the proven EMBSAN-C access sites into the link-time
// elision list for kasm.Image.ElideSancks: proven accesses immediately
// preceded by their matching SANCK probe. mmioOnly restricts to device
// proofs — the only kind that is dispatch-neutral under every sanitizer
// engine (the runtime ignores device addresses before any engine sees
// them), which deployments running KCSAN or UBSAN require.
func (r *Result) Elisions(mmioOnly bool) []kasm.Elision {
	img := r.an.Image
	var out []kasm.Elision
	for _, a := range r.Accesses {
		if a.Kind == ProofNone || (mmioOnly && a.Kind != ProofMMIO) {
			continue
		}
		if img.Meta.InNoSan(a.PC) {
			continue
		}
		in, _ := r.an.InstAt(a.PC)
		if in.Op == isa.OpLRW && in.Imm != 0 {
			continue // probe guards base+0, the access reads base+imm
		}
		prev, ok := r.an.InstAt(a.PC - 4)
		if !ok || prev.Op != isa.OpSANCK {
			continue
		}
		atomic := isa.ClassOf(in.Op) == isa.ClassAtomic
		if prev.Rd != isa.SanckInfo(a.Size, a.Write, atomic) ||
			prev.Rs1 != in.Rs1 || int64(prev.Imm) != effImm(in) {
			continue
		}
		out = append(out, kasm.Elision{
			Site:   a.PC - 4,
			Access: a.PC,
			Kind:   elideKind(a.Kind),
			Object: a.Object,
		})
	}
	return out
}

// SafeAccessPCs returns the proven access sites for the EMBSAN-D consumer
// (emu.Machine.SetSafeAccessPCs). mmioOnly as in Elisions.
func (r *Result) SafeAccessPCs(mmioOnly bool) []uint32 {
	var out []uint32
	for _, a := range r.Accesses {
		if a.Kind == ProofNone || (mmioOnly && a.Kind != ProofMMIO) {
			continue
		}
		out = append(out, a.PC)
	}
	return out
}

func elideKind(k ProofKind) kasm.ElideKind {
	switch k {
	case ProofGlobal:
		return kasm.ElideGlobal
	case ProofStack:
		return kasm.ElideStack
	case ProofMMIO:
		return kasm.ElideMMIO
	}
	return 0
}

func proofKind(k kasm.ElideKind) ProofKind {
	switch k {
	case kasm.ElideGlobal:
		return ProofGlobal
	case kasm.ElideStack:
		return ProofStack
	case kasm.ElideMMIO:
		return ProofMMIO
	}
	return ProofNone
}

// Audit is the `embsan lint -elide` core: it re-derives the safety proofs
// for img and reports every recorded elision that lacks one, plus any
// nondeterminism between two independent analysis runs. The re-derivation
// is sound on already-elided images because SANCK and its FENCE pad are
// both register-transparent, so the abstract states are unchanged by the
// rewrite. Base lint diagnostics are included, making this a strict
// superset of `embsan lint`.
func Audit(img *kasm.Image, taint []kasm.AddrRange) ([]static.Diag, error) {
	diags, err := static.Lint(img)
	if err != nil {
		return nil, err
	}
	report := func(rule string, addr uint32, format string, args ...any) {
		diags = append(diags, static.Diag{
			Rule: rule,
			Addr: addr,
			Sym:  img.Symbolize(addr),
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	res, err := reprove(img, taint)
	if err != nil {
		return nil, err
	}
	// Determinism check: a second full recovery+analysis must produce the
	// identical proof set (guards against map-order nondeterminism).
	res2, err := reprove(img, taint)
	if err != nil {
		return nil, err
	}
	if len(res.Accesses) != len(res2.Accesses) {
		report(RuleElideDeterminism, img.Base,
			"analysis runs disagree: %d vs %d access sites", len(res.Accesses), len(res2.Accesses))
	} else {
		for i := range res.Accesses {
			if res.Accesses[i] != res2.Accesses[i] {
				report(RuleElideDeterminism, res.Accesses[i].PC,
					"analysis runs disagree at %#x: %v vs %v",
					res.Accesses[i].PC, res.Accesses[i].Kind, res2.Accesses[i].Kind)
				break
			}
		}
	}

	for _, e := range img.Meta.Elisions {
		pad, ok := res.an.InstAt(e.Site)
		if !ok || pad.Op != isa.OpFENCE {
			report(RuleElideProof, e.Site, "elision site holds %s, not the FENCE pad",
				disasmAt(res.an, e.Site))
			continue
		}
		if e.Access != e.Site+4 {
			report(RuleElideProof, e.Site, "elision claims access at %#x, not %#x", e.Access, e.Site+4)
			continue
		}
		a, ok := res.At(e.Access)
		if !ok {
			report(RuleElideProof, e.Site, "elided site guards no access")
			continue
		}
		if a.Kind == ProofNone {
			report(RuleElideProof, e.Site, "elided %s has no safety proof",
				disasmAt(res.an, e.Access))
			continue
		}
		if a.Kind != proofKind(e.Kind) || a.Object != e.Object {
			report(RuleElideProof, e.Site,
				"elision recorded as %s/%q but re-derivation proves %s/%q",
				e.Kind, e.Object, a.Kind, a.Object)
		}
	}
	return diags, nil
}

// reprove runs a fresh recovery and analysis over img.
func reprove(img *kasm.Image, taint []kasm.AddrRange) (*Result, error) {
	an, err := static.Analyze(img)
	if err != nil {
		return nil, err
	}
	return Analyze(an, Options{Taint: taint}), nil
}

func disasmAt(an *static.Analysis, pc uint32) string {
	in, ok := an.InstAt(pc)
	if !ok {
		return "an undecodable word"
	}
	return isa.Disasm(in, pc)
}
