package absint_test

import (
	"sort"
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/absint"
)

// TestElideRoundTrip: proofs → link-time elision → the elided image still
// lints clean (the pad sites are recorded) and the full audit re-derives
// every proof.
func TestElideRoundTrip(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res := absint.Analyze(an, absint.Options{})
	els := res.Elisions(false)
	if len(els) == 0 {
		t.Fatalf("no elisions derived from %d proven accesses", res.Stats.Proven)
	}
	elided, err := img.ElideSancks(els)
	if err != nil {
		t.Fatalf("elide: %v", err)
	}
	if len(elided.Meta.Elisions) != len(els) {
		t.Fatalf("metadata records %d elisions, want %d", len(elided.Meta.Elisions), len(els))
	}
	// Every pad really replaced a SANCK, 1-for-1: text lengths are equal and
	// exactly len(els) words differ.
	if len(elided.Text) != len(img.Text) {
		t.Fatalf("elision changed text size: %d vs %d", len(elided.Text), len(img.Text))
	}
	diff := 0
	for pc := img.Base; pc < img.TextEnd(); pc += 4 {
		if img.Arch.Word(img.Text[pc-img.Base:]) != elided.Arch.Word(elided.Text[pc-elided.Base:]) {
			diff++
		}
	}
	if diff != len(els) {
		t.Fatalf("%d words changed, want %d", diff, len(els))
	}

	diags, err := static.Lint(elided)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("elided image lints dirty: %v", diags)
	}
	adiags, err := absint.Audit(elided, nil)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(adiags) != 0 {
		t.Fatalf("elided image audits dirty: %v", adiags)
	}

	// The original (un-elided) image must also audit clean — no recorded
	// elisions means nothing to verify beyond base lint.
	odiags, err := absint.Audit(img, nil)
	if err != nil {
		t.Fatalf("audit original: %v", err)
	}
	if len(odiags) != 0 {
		t.Fatalf("original image audits dirty: %v", odiags)
	}
}

// TestElisionsMMIOOnly: the restricted mode (KCSAN/UBSAN deployments) keeps
// only device-window elisions.
func TestElisionsMMIOOnly(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res := absint.Analyze(an, absint.Options{})
	all := res.Elisions(false)
	mmio := res.Elisions(true)
	if len(mmio) == 0 || len(mmio) >= len(all) {
		t.Fatalf("mmio-only elisions %d not a proper non-empty subset of %d", len(mmio), len(all))
	}
	for _, e := range mmio {
		if e.Kind != kasm.ElideMMIO {
			t.Fatalf("restricted elision at %#x has kind %s", e.Site, e.Kind)
		}
	}
	pcs := res.SafeAccessPCs(false)
	if len(pcs) != res.Stats.Proven {
		t.Fatalf("safe-access set %d does not match %d proven", len(pcs), res.Stats.Proven)
	}
	if !sort.SliceIsSorted(pcs, func(i, j int) bool { return pcs[i] < pcs[j] }) {
		t.Fatalf("safe-access set not sorted")
	}
}

// TestAuditCatchesBogusElision: dropping a probe the prover could NOT
// discharge — recorded as if proven — must fail the audit.
func TestAuditCatchesBogusElision(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res := absint.Analyze(an, absint.Options{})

	var bogus kasm.Elision
	for _, a := range res.Accesses {
		if a.Kind != absint.ProofNone {
			continue
		}
		prev, ok := an.InstAt(a.PC - 4)
		if !ok || prev.Op != isa.OpSANCK {
			continue
		}
		bogus = kasm.Elision{Site: a.PC - 4, Access: a.PC, Kind: kasm.ElideGlobal, Object: "counter"}
		break
	}
	if bogus.Site == 0 {
		t.Fatalf("no unproven probe available")
	}

	broken := *img
	broken.Text = append([]byte(nil), img.Text...)
	pad, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, broken.Arch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	broken.Arch.PutWord(broken.Text[bogus.Site-broken.Base:], pad)
	broken.Meta.Elisions = []kasm.Elision{bogus}

	diags, err := absint.Audit(&broken, nil)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Rule == absint.RuleElideProof && d.Addr == bogus.Site {
			found = true
		}
	}
	if !found {
		t.Fatalf("bogus elision at %#x not reported: %v", bogus.Site, diags)
	}

	// A recorded elision whose site still holds the SANCK must also fail.
	stale := *img
	stale.Meta.Elisions = []kasm.Elision{{
		Site: bogus.Site, Access: bogus.Access, Kind: kasm.ElideGlobal, Object: "counter",
	}}
	diags, err = absint.Audit(&stale, nil)
	if err != nil {
		t.Fatalf("audit stale: %v", err)
	}
	found = false
	for _, d := range diags {
		if d.Rule == absint.RuleElideProof {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale elision record not reported: %v", diags)
	}
}

// TestElideSancksValidation: the link-time pass refuses mismatched input.
func TestElideSancksValidation(t *testing.T) {
	img := buildProofMini(t, kasm.SanEmbsanC)
	an, err := static.Analyze(img)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res := absint.Analyze(an, absint.Options{})
	els := res.Elisions(false)
	if len(els) == 0 {
		t.Fatalf("no elisions")
	}

	if _, err := img.ElideSancks([]kasm.Elision{els[0], els[0]}); err == nil {
		t.Fatalf("duplicate site accepted")
	}
	wrong := els[0]
	wrong.Access = wrong.Site + 8
	if _, err := img.ElideSancks([]kasm.Elision{wrong}); err == nil {
		t.Fatalf("mismatched access pc accepted")
	}
	notProbe := els[0]
	notProbe.Site, notProbe.Access = els[0].Access, els[0].Access+4
	if _, err := img.ElideSancks([]kasm.Elision{notProbe}); err == nil {
		t.Fatalf("non-SANCK site accepted")
	}
	plain := buildProofMini(t, kasm.SanNone)
	if _, err := plain.ElideSancks(nil); err == nil {
		t.Fatalf("non-embsan-c image accepted")
	}
	if _, err := img.Strip().ElideSancks(nil); err == nil {
		t.Fatalf("stripped image accepted")
	}
}
